//! Property-based tests (proptest) over the core data structures and
//! algorithms: algebraic identities, format round trips, and invariant
//! preservation under arbitrary sparse inputs.

use proptest::prelude::*;

use outerspace::outer;
use outerspace::prelude::*;
use outerspace::sparse::{ops, Coo};

/// Strategy: an arbitrary sparse matrix with dimensions in [1, 24] and up to
/// 60 entries (duplicates allowed — they exercise COO summation).
fn arb_matrix() -> impl Strategy<Value = Csr> {
    (1u32..24, 1u32..24).prop_flat_map(|(r, c)| {
        let entry = (0..r, 0..c, -4.0f64..4.0);
        proptest::collection::vec(entry, 0..60).prop_map(move |entries| {
            let mut coo = Coo::new(r, c);
            for (i, j, v) in entries {
                coo.push(i, j, v);
            }
            coo.to_csr()
        })
    })
}

/// Strategy: a pair of multiplicable matrices.
fn arb_mul_pair() -> impl Strategy<Value = (Csr, Csr)> {
    (1u32..20, 1u32..20, 1u32..20).prop_flat_map(|(m, k, n)| {
        let a = proptest::collection::vec((0..m, 0..k, -4.0f64..4.0), 0..50).prop_map(
            move |entries| {
                let mut coo = Coo::new(m, k);
                for (i, j, v) in entries {
                    coo.push(i, j, v);
                }
                coo.to_csr()
            },
        );
        let b = proptest::collection::vec((0..k, 0..n, -4.0f64..4.0), 0..50).prop_map(
            move |entries| {
                let mut coo = Coo::new(k, n);
                for (i, j, v) in entries {
                    coo.push(i, j, v);
                }
                coo.to_csr()
            },
        );
        (a, b)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn outer_product_matches_dense_oracle((a, b) in arb_mul_pair()) {
        let c = outer::spgemm(&a, &b).unwrap();
        let want = a.to_dense().matmul(&b.to_dense());
        prop_assert!(c.to_dense().approx_eq(&want, 1e-9));
    }

    #[test]
    fn transpose_is_involutive(m in arb_matrix()) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn csr_csc_round_trip(m in arb_matrix()) {
        prop_assert_eq!(m.to_csc().to_csr(), m);
    }

    #[test]
    fn conversion_via_identity_equals_transpose_path(m in arb_matrix()) {
        let (cc, _) = outer::csr_to_csc_via_outer(&m);
        prop_assert_eq!(cc, m.to_csc());
    }

    #[test]
    fn add_is_commutative(m in arb_matrix(), seed in 0u64..100) {
        let other = outerspace::gen::uniform::matrix(
            m.nrows(), m.ncols(),
            (m.nrows() as usize * m.ncols() as usize).min(16), seed);
        let ab = ops::add(&m, &other).unwrap();
        let ba = ops::add(&other, &m).unwrap();
        prop_assert!(ab.approx_eq(&ba, 1e-12));
    }

    #[test]
    fn identity_is_multiplicative_unit(m in arb_matrix()) {
        let left = outer::spgemm(&Csr::identity(m.nrows()), &m).unwrap();
        let right = outer::spgemm(&m, &Csr::identity(m.ncols())).unwrap();
        prop_assert!(left.approx_eq(&m, 1e-12));
        prop_assert!(right.approx_eq(&m, 1e-12));
    }

    #[test]
    fn distributive_over_addition((a, b) in arb_mul_pair(), seed in 0u64..100) {
        // A(B + C) = AB + AC, with C random of B's shape.
        let c = outerspace::gen::uniform::matrix(
            b.nrows(), b.ncols(),
            (b.nrows() as usize * b.ncols() as usize / 4).max(1), seed);
        let lhs = outer::spgemm(&a, &ops::add(&b, &c).unwrap()).unwrap();
        let rhs = ops::add(
            &outer::spgemm(&a, &b).unwrap(),
            &outer::spgemm(&a, &c).unwrap(),
        ).unwrap();
        prop_assert!(lhs.approx_eq(&rhs.pruned(0.0), 1e-9) || lhs.pruned(1e-12).approx_eq(&rhs.pruned(1e-12), 1e-9));
    }

    #[test]
    fn spmv_matches_spgemm_with_single_column((a, _b) in arb_mul_pair(), r in 0.0f64..1.0) {
        let x = outerspace::gen::vector::sparse(a.ncols(), r, 17);
        let (y, _) = outer::spmv(&a.to_csc(), &x).unwrap();
        let want = ops::spmv_reference(&a, &x.to_dense()).unwrap();
        let dense = y.to_dense();
        for i in 0..a.nrows() as usize {
            prop_assert!((dense[i] - want[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn merge_kinds_agree((a, b) in arb_mul_pair()) {
        let (c1, _) = outer::spgemm_with_stats(&a, &b, outer::MergeKind::Streaming).unwrap();
        let (c2, _) = outer::spgemm_with_stats(&a, &b, outer::MergeKind::SortBased).unwrap();
        prop_assert!(c1.approx_eq(&c2, 1e-12));
    }

    #[test]
    fn parallel_agrees_with_sequential((a, b) in arb_mul_pair()) {
        let c1 = outer::spgemm(&a, &b).unwrap();
        let (c2, _) = outer::spgemm_parallel(&a, &b, 3).unwrap();
        prop_assert!(c1.approx_eq(&c2, 1e-9));
    }

    #[test]
    fn matrix_market_round_trip(m in arb_matrix()) {
        let mut buf = Vec::new();
        outerspace::sparse::io::write_csr(&mut buf, &m).unwrap();
        let back = outerspace::sparse::io::read_coo(buf.as_slice()).unwrap().to_csr();
        prop_assert!(m.approx_eq(&back, 1e-12));
    }

    #[test]
    fn simulator_report_is_consistent(seed in 0u64..50) {
        let a = outerspace::gen::uniform::matrix(48, 48, 200, seed);
        let sim = Simulator::new(OuterSpaceConfig::default()).unwrap();
        let (c, rep) = sim.spgemm(&a, &a).unwrap();
        // Output entries equal the functional result's nnz.
        prop_assert_eq!(rep.merge.work_items as usize,
            (0..c.nrows()).filter(|&i| c.row_nnz(i) > 0).count());
        // Flops: multiply counts products, merge counts collisions.
        prop_assert_eq!(rep.multiply.flops - rep.merge.flops, c.nnz() as u64);
        // Phase cycles are positive when work exists.
        if c.nnz() > 0 {
            prop_assert!(rep.multiply.cycles > 0 && rep.merge.cycles > 0);
        }
    }
}
