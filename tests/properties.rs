//! Property tests over the core data structures and algorithms: algebraic
//! identities, format round trips, and invariant preservation under
//! randomized sparse inputs.
//!
//! Each property runs over a fixed number of seeded random cases (the
//! in-repo [`SmallRng`], no external property-testing framework), so
//! failures reproduce exactly from the printed seed.

use outerspace::gen::{Rng, SmallRng};
use outerspace::outer;
use outerspace::prelude::*;
use outerspace::sparse::{ops, Coo};

const CASES: u64 = 64;

/// An arbitrary sparse matrix with dimensions in `[1, 24]` and up to 60
/// entries (duplicates allowed — they exercise COO summation).
fn arb_matrix(rng: &mut SmallRng) -> Csr {
    let r = rng.gen_range(1u32..24);
    let c = rng.gen_range(1u32..24);
    random_matrix(rng, r, c, 60)
}

/// A pair of multiplicable matrices with inner dimension `k`.
fn arb_mul_pair(rng: &mut SmallRng) -> (Csr, Csr) {
    let m = rng.gen_range(1u32..20);
    let k = rng.gen_range(1u32..20);
    let n = rng.gen_range(1u32..20);
    (random_matrix(rng, m, k, 50), random_matrix(rng, k, n, 50))
}

fn random_matrix(rng: &mut SmallRng, r: u32, c: u32, max_entries: usize) -> Csr {
    let n = rng.gen_range(0usize..max_entries);
    let mut coo = Coo::new(r, c);
    for _ in 0..n {
        let i = rng.gen_range(0u32..r);
        let j = rng.gen_range(0u32..c);
        let v = rng.gen::<f64>() * 8.0 - 4.0;
        coo.push(i, j, v);
    }
    coo.to_csr()
}

/// Runs `f` over `CASES` seeded cases, labeling failures with the seed.
fn for_each_case(f: impl Fn(&mut SmallRng)) {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x70f2_99aa ^ seed);
        f(&mut rng);
    }
}

#[test]
fn outer_product_matches_dense_oracle() {
    for_each_case(|rng| {
        let (a, b) = arb_mul_pair(rng);
        let c = outer::spgemm(&a, &b).unwrap();
        let want = a.to_dense().matmul(&b.to_dense());
        assert!(c.to_dense().approx_eq(&want, 1e-9));
    });
}

#[test]
fn transpose_is_involutive() {
    for_each_case(|rng| {
        let m = arb_matrix(rng);
        assert_eq!(m.transpose().transpose(), m);
    });
}

#[test]
fn csr_csc_round_trip() {
    for_each_case(|rng| {
        let m = arb_matrix(rng);
        assert_eq!(m.to_csc().to_csr(), m);
    });
}

#[test]
fn conversion_via_identity_equals_transpose_path() {
    for_each_case(|rng| {
        let m = arb_matrix(rng);
        let (cc, _) = outer::csr_to_csc_via_outer(&m);
        assert_eq!(cc, m.to_csc());
    });
}

#[test]
fn add_is_commutative() {
    for_each_case(|rng| {
        let m = arb_matrix(rng);
        let seed = rng.gen_range(0u64..100);
        let other = outerspace::gen::uniform::matrix(
            m.nrows(),
            m.ncols(),
            (m.nrows() as usize * m.ncols() as usize).min(16),
            seed,
        );
        let ab = ops::add(&m, &other).unwrap();
        let ba = ops::add(&other, &m).unwrap();
        assert!(ab.approx_eq(&ba, 1e-12));
    });
}

#[test]
fn identity_is_multiplicative_unit() {
    for_each_case(|rng| {
        let m = arb_matrix(rng);
        let left = outer::spgemm(&Csr::identity(m.nrows()), &m).unwrap();
        let right = outer::spgemm(&m, &Csr::identity(m.ncols())).unwrap();
        assert!(left.approx_eq(&m, 1e-12));
        assert!(right.approx_eq(&m, 1e-12));
    });
}

#[test]
fn distributive_over_addition() {
    for_each_case(|rng| {
        // A(B + C) = AB + AC, with C random of B's shape.
        let (a, b) = arb_mul_pair(rng);
        let seed = rng.gen_range(0u64..100);
        let c = outerspace::gen::uniform::matrix(
            b.nrows(),
            b.ncols(),
            (b.nrows() as usize * b.ncols() as usize / 4).max(1),
            seed,
        );
        let lhs = outer::spgemm(&a, &ops::add(&b, &c).unwrap()).unwrap();
        let rhs = ops::add(
            &outer::spgemm(&a, &b).unwrap(),
            &outer::spgemm(&a, &c).unwrap(),
        )
        .unwrap();
        assert!(
            lhs.approx_eq(&rhs.pruned(0.0), 1e-9)
                || lhs.pruned(1e-12).approx_eq(&rhs.pruned(1e-12), 1e-9)
        );
    });
}

#[test]
fn spmv_matches_spgemm_with_single_column() {
    for_each_case(|rng| {
        let (a, _b) = arb_mul_pair(rng);
        let r = rng.gen::<f64>();
        let x = outerspace::gen::vector::sparse(a.ncols(), r, 17);
        let (y, _) = outer::spmv(&a.to_csc(), &x).unwrap();
        let want = ops::spmv_reference(&a, &x.to_dense()).unwrap();
        let dense = y.to_dense();
        for i in 0..a.nrows() as usize {
            assert!((dense[i] - want[i]).abs() < 1e-9);
        }
    });
}

#[test]
fn merge_kinds_agree() {
    for_each_case(|rng| {
        let (a, b) = arb_mul_pair(rng);
        let (c1, _) = outer::spgemm_with_stats(&a, &b, outer::MergeKind::Streaming).unwrap();
        let (c2, _) = outer::spgemm_with_stats(&a, &b, outer::MergeKind::SortBased).unwrap();
        assert!(c1.approx_eq(&c2, 1e-12));
    });
}

#[test]
fn parallel_agrees_with_sequential() {
    for_each_case(|rng| {
        let (a, b) = arb_mul_pair(rng);
        let c1 = outer::spgemm(&a, &b).unwrap();
        let (c2, _) = outer::spgemm_parallel(&a, &b, 3).unwrap();
        assert!(c1.approx_eq(&c2, 1e-9));
    });
}

#[test]
fn matrix_market_round_trip() {
    for_each_case(|rng| {
        let m = arb_matrix(rng);
        let mut buf = Vec::new();
        outerspace::sparse::io::write_csr(&mut buf, &m).unwrap();
        let back = outerspace::sparse::io::read_coo(buf.as_slice()).unwrap().to_csr();
        assert!(m.approx_eq(&back, 1e-12));
    });
}

#[test]
fn simulator_report_is_consistent() {
    for seed in 0..50u64 {
        let a = outerspace::gen::uniform::matrix(48, 48, 200, seed);
        let sim = Simulator::new(OuterSpaceConfig::default()).unwrap();
        let (c, rep) = sim.spgemm(&a, &a).unwrap();
        // Output entries equal the functional result's nnz.
        assert_eq!(
            rep.merge.work_items as usize,
            (0..c.nrows()).filter(|&i| c.row_nnz(i) > 0).count()
        );
        // Flops: multiply counts products, merge counts collisions.
        assert_eq!(rep.multiply.flops - rep.merge.flops, c.nnz() as u64);
        // Phase cycles are positive when work exists.
        if c.nnz() > 0 {
            assert!(rep.multiply.cycles > 0 && rep.merge.cycles > 0);
        }
    }
}
