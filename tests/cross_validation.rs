//! Cross-crate validation: every SpGEMM/SpMV implementation in the
//! workspace must agree on every workload family, and the simulator's
//! functional output must match the software pipeline.

use outerspace::prelude::*;
use outerspace::sparse::ops;

/// All SpGEMM implementations, invoked uniformly.
fn all_spgemm(a: &Csr, b: &Csr) -> Vec<(&'static str, Csr)> {
    vec![
        ("reference", ops::spgemm_reference(a, b).unwrap()),
        ("outer-seq", outerspace::outer::spgemm(a, b).unwrap()),
        ("outer-par", outerspace::outer::spgemm_parallel(a, b, 4).unwrap().0),
        (
            "outer-sort-merge",
            outerspace::outer::spgemm_with_stats(a, b, outerspace::outer::MergeKind::SortBased)
                .unwrap()
                .0,
        ),
        ("gustavson", outerspace::baselines::gustavson::spgemm(a, b).unwrap().0),
        ("gustavson-par", outerspace::baselines::gustavson::spgemm_parallel(a, b, 3).unwrap().0),
        ("hash", outerspace::baselines::hash::spgemm(a, b).unwrap().0),
        ("esc", outerspace::baselines::esc::spgemm(a, b).unwrap().0),
        ("inner", outerspace::baselines::inner::spgemm(a, &b.to_csc()).unwrap().0),
    ]
}

fn assert_all_agree(a: &Csr, b: &Csr, label: &str) {
    let results = all_spgemm(a, b);
    let (ref_name, reference) = &results[0];
    for (name, c) in &results[1..] {
        assert!(
            c.approx_eq(reference, 1e-9),
            "{label}: {name} disagrees with {ref_name} \
             ({} vs {} non-zeros)",
            c.nnz(),
            reference.nnz()
        );
    }
}

#[test]
fn all_algorithms_agree_on_uniform_random() {
    for seed in 0..3 {
        let a = outerspace::gen::uniform::matrix(128, 128, 1200, seed);
        let b = outerspace::gen::uniform::matrix(128, 128, 1200, seed + 50);
        assert_all_agree(&a, &b, "uniform");
    }
}

#[test]
fn all_algorithms_agree_on_rmat() {
    let g = outerspace::gen::rmat::graph500(256, 2500, 5);
    assert_all_agree(&g, &g, "rmat");
}

#[test]
fn all_algorithms_agree_on_power_law() {
    let g = outerspace::gen::powerlaw::graph(256, 3000, 6);
    assert_all_agree(&g, &g, "powerlaw");
}

#[test]
fn all_algorithms_agree_on_banded() {
    let m = outerspace::gen::banded::matrix(200, &[-3, -1, 0, 1, 3], 0.9, 7);
    assert_all_agree(&m, &m, "banded");
}

#[test]
fn all_algorithms_agree_on_stencil() {
    let m = outerspace::gen::stencil::grid3d(6, 6, 6, 1.0, 8);
    assert_all_agree(&m, &m, "grid3d");
}

#[test]
fn all_algorithms_agree_on_road_network() {
    let m = outerspace::gen::road::network(400, 1100, 9);
    assert_all_agree(&m, &m, "road");
}

#[test]
fn all_algorithms_agree_on_rectangular_chain() {
    let a = outerspace::gen::uniform::matrix(64, 96, 600, 10);
    let b = outerspace::gen::uniform::matrix(96, 48, 500, 11);
    assert_all_agree(&a, &b, "rectangular");
}

#[test]
fn simulator_is_functionally_exact() {
    let sim = Simulator::new(OuterSpaceConfig::default()).unwrap();
    for seed in 0..3 {
        let a = outerspace::gen::uniform::matrix(96, 96, 700, seed + 20);
        let (c_hw, _) = sim.spgemm(&a, &a).unwrap();
        let c_sw = outerspace::outer::spgemm(&a, &a).unwrap();
        assert!(c_hw.approx_eq(&c_sw, 0.0), "seed {seed}: simulator output differs");
    }
}

#[test]
fn spmv_implementations_agree() {
    let a = outerspace::gen::uniform::matrix(256, 256, 2500, 30);
    let a_cc = a.to_csc();
    for (i, r) in [0.01, 0.1, 0.5, 1.0].iter().enumerate() {
        let x = outerspace::gen::vector::sparse(256, *r, 40 + i as u64);
        let want = ops::spmv_reference(&a, &x.to_dense()).unwrap();

        let (y_outer, _) = outerspace::outer::spmv(&a_cc, &x).unwrap();
        let (y_mkl, _) = outerspace::baselines::spmv::spmv_dense_vector(&a, &x).unwrap();
        let (y_gpu, _) = outerspace::baselines::spmv::spmv_index_match(&a, &x).unwrap();

        let sim = Simulator::new(OuterSpaceConfig::default()).unwrap();
        let (y_hw, _) = sim.spmv(&a_cc, &x).unwrap();

        let dense_outer = y_outer.to_dense();
        let dense_gpu = y_gpu.to_dense();
        let dense_hw = y_hw.to_dense();
        for row in 0..256 {
            let w = want[row];
            assert!((dense_outer[row] - w).abs() < 1e-9, "outer r={r} row={row}");
            assert!((y_mkl[row] - w).abs() < 1e-9, "mkl r={r} row={row}");
            assert!((dense_gpu[row] - w).abs() < 1e-9, "gpu r={r} row={row}");
            assert!((dense_hw[row] - w).abs() < 1e-9, "sim r={r} row={row}");
        }
    }
}

#[test]
fn cc_mode_output_agrees_across_formats() {
    let a = outerspace::gen::uniform::matrix(80, 80, 640, 60);
    let cr = outerspace::outer::spgemm(&a, &a).unwrap();
    let cc = outerspace::outer::spgemm_cc(&a, &a).unwrap();
    assert!(cc.to_csr().approx_eq(&cr, 1e-9));
}

#[test]
fn matrix_market_round_trip_preserves_products() {
    let a = outerspace::gen::powerlaw::graph(100, 900, 70);
    let mut buf = Vec::new();
    outerspace::sparse::io::write_csr(&mut buf, &a).unwrap();
    let back = outerspace::sparse::io::read_coo(buf.as_slice()).unwrap().to_csr();
    assert!(a.approx_eq(&back, 1e-12));
    let c1 = outerspace::outer::spgemm(&a, &a).unwrap();
    let c2 = outerspace::outer::spgemm(&back, &back).unwrap();
    assert!(c1.approx_eq(&c2, 1e-9));
}
