//! Integration coverage for the extension subsystems: element-wise
//! simulation (§5.6), trace record/replay (§6 methodology), §8 scaling
//! configurations, and the energy reporting pipeline.

use outerspace::energy::AreaPowerModel;
use outerspace::prelude::*;
use outerspace::sim::trace::{record_multiply, replay_multiply};
use outerspace::sparse::ops;

#[test]
fn elementwise_sum_on_simulator_matches_reference() {
    let sim = Simulator::new(OuterSpaceConfig::default()).unwrap();
    let mats: Vec<Csr> =
        (0..3).map(|s| outerspace::gen::uniform::matrix(256, 256, 3000, s)).collect();
    let refs: Vec<&Csr> = mats.iter().collect();
    let (c, rep) = sim.elementwise_sum(&refs).unwrap();
    let mut want = mats[0].clone();
    for m in &mats[1..] {
        want = ops::add(&want, m).unwrap();
    }
    assert!(c.approx_eq(&want, 1e-12));
    assert!(rep.merge.cycles > 0, "element-wise ops run on the merge datapath");
    assert_eq!(rep.multiply.cycles, 0);
    // §5.6: "close to a one-to-one correspondence" with the merge phase —
    // flops equal the pattern overlap.
    let overlap: usize = mats.iter().map(|m| m.nnz()).sum::<usize>() - c.nnz();
    assert_eq!(rep.merge.flops, overlap as u64);
}

#[test]
fn elementwise_sum_rejects_bad_input() {
    let sim = Simulator::new(OuterSpaceConfig::default()).unwrap();
    assert!(sim.elementwise_sum(&[]).is_err());
    let a = Csr::identity(4);
    let b = Csr::identity(5);
    assert!(sim.elementwise_sum(&[&a, &b]).is_err());
}

#[test]
fn trace_replay_is_cycle_exact_through_public_api() {
    let cfg = OuterSpaceConfig::default();
    let a = outerspace::gen::rmat::graph500(512, 5000, 11);
    let (direct, _, trace) = record_multiply(&cfg, &a.to_csc(), &a).unwrap();
    let replayed = replay_multiply(&cfg, &trace);
    assert_eq!(direct.cycles, replayed.cycles);
    assert_eq!(direct.hbm_read_bytes, replayed.hbm_read_bytes);
    assert_eq!(direct.l0_hits, replayed.l0_hits);
}

#[test]
fn interposed_system_is_faster_on_big_workloads() {
    let a = outerspace::gen::uniform::matrix(8192, 8192, 120_000, 12);
    let base = Simulator::new(OuterSpaceConfig::default()).unwrap();
    let big = Simulator::new(OuterSpaceConfig::default().interposed_4x()).unwrap();
    let (c1, r1) = base.spgemm(&a, &a).unwrap();
    let (c2, r2) = big.spgemm(&a, &a).unwrap();
    assert!(c1.approx_eq(&c2, 0.0), "scaling must not change results");
    assert!(
        r2.total_cycles() < r1.total_cycles(),
        "4x resources must help: {} vs {}",
        r2.total_cycles(),
        r1.total_cycles()
    );
}

#[test]
fn torus_configs_stay_functionally_exact() {
    let a = outerspace::gen::powerlaw::graph(2048, 20_000, 13);
    let want = ops::spgemm_reference(&a, &a).unwrap();
    for nodes in [4u32, 16] {
        let sim = Simulator::new(OuterSpaceConfig::default().torus(nodes)).unwrap();
        let (c, rep) = sim.spgemm(&a, &a).unwrap();
        assert!(c.approx_eq(&want, 1e-9), "{nodes}-node torus result");
        assert!(rep.seconds() > 0.0);
    }
}

#[test]
fn energy_report_tracks_phase_split() {
    let cfg = OuterSpaceConfig::default();
    let sim = Simulator::new(cfg.clone()).unwrap();
    let model = AreaPowerModel::tsmc32nm();
    let a = outerspace::gen::uniform::matrix(4096, 4096, 50_000, 14);
    let (_, rep) = sim.spgemm(&a, &a).unwrap();
    let e = model.energy_report(&cfg, &rep);
    assert!(e.convert_j > 0.0, "asymmetric input charges conversion energy");
    assert!(e.multiply_j > 0.0 && e.merge_j > 0.0);
    // HBM idle power alone bounds average power from below.
    assert!(e.average_power_w > 5.0);
    // Energy-delay product consistency.
    let edp = e.total_j * rep.seconds();
    assert!((e.energy_delay_js - edp).abs() / edp < 1e-9);
}

#[test]
fn edge_list_to_simulation_pipeline() {
    // SNAP-format text -> matrix -> simulated SpGEMM, end to end.
    let text = "# tiny graph\n0 1\n1 2\n2 0\n2 3\n3 0\n";
    let g = outerspace::sparse::io::read_edge_list(text.as_bytes(), true)
        .unwrap()
        .to_csr();
    assert_eq!(g.nrows(), 4);
    let sim = Simulator::new(OuterSpaceConfig::default()).unwrap();
    let (c, rep) = sim.spgemm(&g, &g).unwrap();
    assert!(c.approx_eq(&ops::spgemm_reference(&g, &g).unwrap(), 1e-12));
    assert!(rep.convert.is_none(), "symmetric edge list skips conversion");
}

#[test]
fn matrix_power_runs_on_simulated_chain() {
    // A^4 via two simulated squarings with a CC-format intermediate —
    // the chained-multiplication amortization of §4.3.
    let a = outerspace::gen::uniform::matrix(128, 128, 500, 15);
    let sim = Simulator::new(OuterSpaceConfig::default()).unwrap();
    let (a2, r1) = sim.spgemm(&a, &a).unwrap();
    let (a4, r2) = sim.spgemm_cc_operand(&a2.to_csc(), &a2).unwrap();
    assert!(r1.convert.is_some());
    assert!(r2.convert.is_none(), "pre-converted operand skips conversion");
    let want = outerspace::matrix_power(&a, 4).unwrap();
    assert!(a4.approx_eq(&want, 1e-6));
}
