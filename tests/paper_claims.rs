//! Qualitative claims of the paper, asserted end-to-end.
//!
//! Each test pins one claim from the text to measurable behaviour of this
//! reproduction — the "shape" checks that EXPERIMENTS.md reports
//! quantitatively.

use outerspace::prelude::*;
use outerspace::sim::xmodels::{gpu::row_imbalance, CpuModel, GpuModel};

/// §4: the outer-product method eliminates index matching — every fetched
/// operand element produces output, unlike the inner product.
#[test]
fn outer_product_touches_fewer_bytes_than_inner_product() {
    let a = outerspace::gen::uniform::matrix(192, 192, 1600, 1);
    let (_, inner) = outerspace::baselines::inner::spgemm(&a, &a.to_csc()).unwrap();
    let (_, report) =
        outerspace::outer::spgemm_with_stats(&a, &a, outerspace::outer::MergeKind::Streaming)
            .unwrap();
    // Operand traffic only (the intermediate is the price paid instead).
    assert!(
        report.multiply.bytes_read < inner.traffic.bytes_touched / 4,
        "outer {} vs inner {}",
        report.multiply.bytes_read,
        inner.traffic.bytes_touched
    );
}

/// §1/§4.4.1: Gustavson re-reads rows of B redundantly; the outer product
/// reads each operand element once per outer product.
#[test]
fn gustavson_rereads_shared_rows() {
    let a = outerspace::gen::powerlaw::graph(256, 4000, 2);
    let (_, gus) = outerspace::baselines::gustavson::spgemm(&a, &a).unwrap();
    let (_, outer) =
        outerspace::outer::spgemm_with_stats(&a, &a, outerspace::outer::MergeKind::Streaming)
            .unwrap();
    assert!(gus.bytes_touched > 2 * outer.multiply.bytes_read);
}

/// §4.4.2 / Fig. 4: on the GPU model, the merge side dominates the outer
/// product, and it is divergence- not bandwidth-bound.
#[test]
fn gpu_outer_product_is_merge_dominated() {
    let a = outerspace::gen::uniform::matrix(8192, 8192, 120_000, 3);
    let (_, rep) =
        outerspace::outer::spgemm_with_stats(&a, &a, outerspace::outer::MergeKind::Streaming)
            .unwrap();
    let k40 = GpuModel::tesla_k40();
    let chunks = rep.multiply.chunks.max(1);
    let rows = a.nrows() as u64;
    let t = k40.outer_product_time(
        rep.multiply.bytes_read,
        rep.multiply.elementary_products,
        rep.multiply.elementary_products,
        chunks as f64 / rows as f64,
    );
    assert!(t.merge > t.expand, "merge {} <= expand {}", t.merge, t.expand);
}

/// §7.1.1 / Fig. 6: OuterSPACE's advantage over the CPU model is larger on
/// power-law (R-MAT) inputs than on matched uniform inputs.
#[test]
fn rmat_speedup_exceeds_uniform_speedup() {
    let sim = Simulator::new(OuterSpaceConfig::default()).unwrap();
    let cpu = CpuModel::xeon_e5_1650_v4();

    let speedup = |m: &Csr, reg: f64| {
        let (_, rep) = sim.spgemm(m, m).unwrap();
        let (_, gus) = outerspace::baselines::gustavson::spgemm(m, m).unwrap();
        let t_cpu = cpu.spgemm_seconds(
            &gus,
            12 * m.nnz() as u64,
            m.ncols() as u64,
            m.nrows() as u64,
            reg,
        );
        t_cpu / rep.seconds()
    };

    let rmat = outerspace::gen::rmat::graph500(4096, 30_000, 4);
    let uni = outerspace::gen::uniform::matrix(4096, 4096, rmat.nnz(), 4);
    let s_rmat = speedup(&rmat, 0.0);
    let s_uni = speedup(&uni, 0.0);
    assert!(
        s_rmat > s_uni,
        "R-MAT speedup {s_rmat:.1} should exceed uniform speedup {s_uni:.1}"
    );
}

/// §7.1.2: regular (diagonal-dominant) matrices yield smaller speedups over
/// the MKL model than irregular ones, because index-matching baselines like
/// them.
#[test]
fn regular_matrices_favour_the_baseline() {
    let sim = Simulator::new(OuterSpaceConfig::default()).unwrap();
    let cpu = CpuModel::xeon_e5_1650_v4();
    let run = |m: &Csr| {
        let profile = outerspace::sparse::stats::profile(m);
        let (_, rep) = sim.spgemm(m, m).unwrap();
        let (_, gus) = outerspace::baselines::gustavson::spgemm(m, m).unwrap();
        let t = cpu.spgemm_seconds(
            &gus,
            12 * m.nnz() as u64,
            m.ncols() as u64,
            m.nrows() as u64,
            profile.diagonal_fraction,
        );
        t / rep.seconds()
    };
    // Suite-scale workloads: the thrash/regularity effects only appear once
    // the baseline's working set exceeds its caches (the Table 4 matrices
    // all have 100 k - 16 M non-zeros).
    let regular = outerspace::gen::banded::matrix(
        16_384,
        &outerspace::gen::banded::spread_offsets(10, 256),
        1.0,
        5,
    );
    let irregular = outerspace::gen::powerlaw::graph(16_384, regular.nnz(), 5);
    assert!(run(&irregular) > run(&regular));
}

/// §7.2 / Table 5: outer-product SpMV speedup over the MKL model scales
/// roughly linearly with vector density.
#[test]
fn spmv_speedup_scales_with_vector_density() {
    let n: u32 = 16_384;
    let a = outerspace::gen::uniform::matrix(n, n, 100_000, 6);
    let a_cc = a.to_csc();
    let sim = Simulator::new(OuterSpaceConfig::default()).unwrap();
    let cpu = CpuModel::xeon_e5_1650_v4();
    let t_mkl = cpu.spmv_seconds(12 * a.nnz() as u64, n as u64); // density-independent

    let speedup_at = |r: f64| {
        let x = outerspace::gen::vector::sparse(n, r, 7);
        let (_, rep) = sim.spmv(&a_cc, &x).unwrap();
        t_mkl / rep.seconds()
    };
    let s_001 = speedup_at(0.01);
    let s_01 = speedup_at(0.1);
    let s_1 = speedup_at(1.0);
    assert!(s_001 > s_01 && s_01 > s_1, "{s_001:.1} > {s_01:.1} > {s_1:.1} expected");
    // Table 5: each 10x density reduction buys roughly 10x speedup.
    let ratio = s_001 / s_01;
    assert!((3.0..30.0).contains(&ratio), "scaling ratio {ratio:.1}");
}

/// §7.3: the dynamic-allocation request count collapses by α = 2 for
/// uniform matrices, and m133-b3's fixed-degree structure never spills.
#[test]
fn alloc_sweep_matches_section_7_3() {
    let a = outerspace::gen::uniform::matrix(2048, 2048, 32_768, 8);
    let reports = outerspace::sim::alloc::analyze(&a.to_csc(), &a, &[1.0, 2.0, 4.0]);
    assert!(reports[1].dynamic_requests * 5 < reports[0].dynamic_requests.max(1) * 100);
    let m133 = outerspace::gen::suite::by_name("m133-b3").unwrap().generate_scaled(64, 9);
    let r = outerspace::sim::alloc::analyze(&m133.to_csc(), &m133, &[1.0]);
    assert_eq!(r[0].dynamic_requests, 0, "m133-b3 must not spill at alpha=1");
}

/// §7.4: the accelerator's perf/W advantage over the GPU model is large
/// (paper: ~150x).
#[test]
fn performance_per_watt_advantage_over_gpu() {
    let a = outerspace::gen::rmat::graph500(8192, 60_000, 9);
    let sim = Simulator::new(OuterSpaceConfig::default()).unwrap();
    let (_, rep) = sim.spgemm(&a, &a).unwrap();
    let model = AreaPowerModel::tsmc32nm();
    let ours = model.gflops_per_watt(sim.config(), &rep);

    let (_, hash) = outerspace::baselines::hash::spgemm(&a, &a).unwrap();
    let t_gpu = GpuModel::tesla_k40()
        .cusparse_time(&hash, a.nrows() as u64, row_imbalance(&a, &a))
        .total();
    let gpu_gflops_w = hash.traffic.flops() as f64 / t_gpu / 1e9 / 85.0; // 85 W measured
    assert!(
        ours > 20.0 * gpu_gflops_w,
        "perf/W ratio only {:.0}x",
        ours / gpu_gflops_w
    );
}

/// §5.5: the intermediate footprint follows α·N + β·N²r + γ·N³r² — i.e. it
/// grows quadratically in density for fixed N.
#[test]
fn intermediate_footprint_scales_quadratically_in_density() {
    let n: u32 = 1024;
    let bytes_at = |nnz: usize| {
        let a = outerspace::gen::uniform::matrix(n, n, nnz, 10);
        let (_, rep) = outerspace::outer::spgemm_with_stats(
            &a,
            &a,
            outerspace::outer::MergeKind::Streaming,
        )
        .unwrap();
        rep.intermediate_bytes as f64
    };
    let b1 = bytes_at(4_096);
    let b4 = bytes_at(16_384);
    let growth = b4 / b1;
    assert!((8.0..32.0).contains(&growth), "4x nnz should give ~16x footprint, got {growth:.1}");
}
