//! Ablations over the simulator's design parameters — the knobs DESIGN.md
//! calls out (§5/§6 of the paper): merge-phase PE count, scratchpad
//! capacity, outstanding-queue depth, cache sizing, and tile count.

use outerspace::prelude::*;

fn workload(seed: u64) -> Csr {
    outerspace::gen::uniform::matrix(4096, 4096, 50_000, seed)
}

fn run(cfg: OuterSpaceConfig, a: &Csr) -> SimReport {
    let sim = Simulator::new(cfg).unwrap();
    sim.spgemm(a, a).unwrap().1
}

#[test]
fn simulation_is_deterministic() {
    let a = workload(1);
    let r1 = run(OuterSpaceConfig::default(), &a);
    let r2 = run(OuterSpaceConfig::default(), &a);
    assert_eq!(r1, r2);
}

/// §6: "enabling a greater number of PEs results in slight performance
/// degradation due to thrashing in the L1 cache" — at minimum, 16 active
/// merge PEs must not be dramatically better than 8, while halving to 4
/// costs real time.
#[test]
fn merge_pe_count_ablation() {
    // R-MAT's hub rows have deep merge fan-in, so the phase is PE-bound and
    // the knob actually binds (a uniform workload is bandwidth-bound here
    // and insensitive to the PE count).
    let a = outerspace::gen::rmat::graph500(2048, 40_000, 2);
    let cycles_with = |active: u32| {
        let cfg = OuterSpaceConfig { merge_active_pes_per_tile: active, ..Default::default() };
        run(cfg, &a).merge.cycles
    };
    let m4 = cycles_with(4);
    let m8 = cycles_with(8);
    let m16 = cycles_with(16);
    assert!(m4 > m8, "4 merge PEs ({m4}) should be slower than 8 ({m8})");
    // The paper picked 8: 16 must not bring a large win.
    assert!(
        (m16 as f64) > 0.6 * m8 as f64,
        "16 merge PEs ({m16}) should not crush 8 ({m8})"
    );
}

/// §5.4.2: an undersized scratchpad forces recursive sub-merges and extra
/// HBM round trips.
#[test]
fn scratchpad_capacity_ablation() {
    // Power-law input creates deep fan-in rows that stress the working set.
    let a = outerspace::gen::powerlaw::graph(4096, 60_000, 3);
    let traffic_with = |bytes: u32| {
        let cfg = OuterSpaceConfig { merge_scratchpad_bytes: bytes, ..Default::default() };
        let r = run(cfg, &a);
        r.merge.hbm_read_bytes
    };
    let tiny = traffic_with(128); // ~10 heads
    let table2 = traffic_with(2048); // 170 heads
    assert!(
        tiny > table2,
        "tiny scratchpad ({tiny} B read) must re-read more than Table 2's ({table2} B)"
    );
}

/// Outstanding-request queue depth gates memory-level parallelism.
#[test]
fn outstanding_queue_ablation() {
    let a = workload(4);
    let cycles_with = |q: u32| {
        let cfg = OuterSpaceConfig { outstanding_requests: q, ..Default::default() };
        run(cfg, &a).multiply.cycles
    };
    let shallow = cycles_with(2);
    let table2 = cycles_with(64);
    assert!(
        shallow > table2,
        "2-entry queues ({shallow}) must be slower than 64 ({table2})"
    );
}

/// Fewer tiles = less compute and less L0 capacity: must cost time.
#[test]
fn tile_count_ablation() {
    let a = workload(5);
    let cycles_with = |tiles: u32| {
        let cfg = OuterSpaceConfig { n_tiles: tiles, ..Default::default() };
        run(cfg, &a).total_cycles()
    };
    let quarter = cycles_with(4);
    let full = cycles_with(16);
    assert!(
        quarter > full,
        "4 tiles ({quarter}) must be slower than 16 ({full})"
    );
}

/// Larger L0s capture more B-row reuse in the multiply phase.
#[test]
fn l0_size_ablation() {
    // Dense columns force heavy row sharing.
    let a = outerspace::gen::powerlaw::graph(2048, 40_000, 6);
    let hit_rate_with = |bytes: u32| {
        let cfg = OuterSpaceConfig { l0_multiply_bytes: bytes, ..Default::default() };
        let r = run(cfg, &a);
        r.multiply.l0_hit_rate()
    };
    let small = hit_rate_with(1024);
    let table2 = hit_rate_with(16 * 1024);
    assert!(
        table2 > small,
        "16 kB L0 hit rate ({table2:.3}) must beat 1 kB ({small:.3})"
    );
}

/// Streaming merge vs sort-based merge: the paper's streaming choice moves
/// less data through local memory; in software stats, its sort-step count
/// is lower than the full sort's.
#[test]
fn merge_kind_ablation() {
    let a = workload(7);
    let (_, s_stream) = outerspace::outer::spgemm_with_stats(
        &a,
        &a,
        outerspace::outer::MergeKind::Streaming,
    )
    .unwrap();
    let (_, s_sort) =
        outerspace::outer::spgemm_with_stats(&a, &a, outerspace::outer::MergeKind::SortBased)
            .unwrap();
    assert!(s_stream.merge.sort_steps <= s_sort.merge.sort_steps);
    assert_eq!(s_stream.merge.output_entries, s_sort.merge.output_entries);
}

/// Halving HBM bandwidth must slow the (memory-bound) phases down.
#[test]
fn hbm_bandwidth_ablation() {
    let a = workload(8);
    let seconds_with = |mb: u32| {
        let cfg = OuterSpaceConfig { hbm_channel_mb_per_sec: mb, ..Default::default() };
        run(cfg, &a).seconds()
    };
    let half = seconds_with(4000);
    let full = seconds_with(8000);
    assert!(half > 1.2 * full, "half bandwidth {half} vs full {full}");
}
