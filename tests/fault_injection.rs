//! End-to-end tests of the fault-injection and graceful-degradation layer.
//!
//! Three properties anchor the design (see DESIGN.md):
//!
//! 1. **Zero-fault transparency** — a run with the fault layer configured
//!    but every knob at zero is cycle-identical to the baseline simulator.
//! 2. **Bit-correctness under faults** — injected timing faults (ECC
//!    retries, dropped responses, PE kills) never corrupt the functional
//!    result: the accelerator still computes exactly the software golden.
//! 3. **Monotone degradation** — every injected delay is non-decreasing in
//!    the fault rate (monotone coupling: the event set at rate p is a
//!    subset of the event set at rate p' > p). The makespan can still dip
//!    by a hair between adjacent rates on some workloads — greedy dispatch
//!    reroutes around a delayed PE (Graham's anomaly) — so the tests below
//!    pin workloads/seeds where the end-to-end ordering holds; see
//!    DESIGN.md §7.

use outerspace::prelude::*;
use outerspace::sparse::ops;

fn workload(seed: u64) -> Csr {
    outerspace::gen::uniform::matrix(512, 512, 6_000, seed)
}

fn cfg_with(faults: FaultModel) -> OuterSpaceConfig {
    OuterSpaceConfig { faults, ..Default::default() }
}

fn run(cfg: OuterSpaceConfig, a: &Csr) -> (Csr, SimReport) {
    Simulator::new(cfg).unwrap().spgemm(a, a).unwrap()
}

// --- Property 1: zero-fault transparency -------------------------------

#[test]
fn zero_fault_run_is_cycle_identical_to_baseline() {
    let a = workload(1);
    let (c_base, r_base) = run(OuterSpaceConfig::default(), &a);
    // A non-zero seed with every rate at zero must not perturb anything:
    // the injector consumes no randomness on the zero-fault path.
    let faults = FaultModel {
        seed: 0xdead_beef,
        ..FaultModel::default()
    };
    let (c, r) = run(cfg_with(faults), &a);
    assert_eq!(c, c_base);
    assert_eq!(r.total_cycles(), r_base.total_cycles());
    assert_eq!(r.multiply.cycles, r_base.multiply.cycles);
    assert_eq!(r.merge.cycles, r_base.merge.cycles);
    assert_eq!(r.fault_events(), 0);
    assert_eq!(r.fault_penalty_cycles(), 0);
}

// --- Property 2: bit-correctness under faults --------------------------

#[test]
fn faulty_runs_remain_bit_correct() {
    let a = workload(2);
    let golden = ops::spgemm_reference(&a, &a).unwrap();
    let faults = FaultModel {
        seed: 7,
        hbm_ber: 1e-5, // ~0.5% of block reads corrupted
        drop_rate: 0.01,
        pe_kill_count: 5,
        pe_kill_cycle: 10_000,
        ..FaultModel::default()
    };
    let (c, rep) = run(cfg_with(faults), &a);
    assert!(c.approx_eq(&golden, 1e-9), "faults must never corrupt the result");
    assert!(rep.fault_events() > 0, "this fault rate must actually fire");
}

#[test]
fn spmv_under_faults_matches_reference() {
    let a = outerspace::gen::uniform::matrix(1024, 1024, 16_384, 3).to_csc();
    let x = outerspace::gen::vector::sparse(1024, 0.2, 4);
    let faults = FaultModel {
        hbm_ber: 1e-5,
        ..FaultModel::default()
    };
    let sim = Simulator::new(cfg_with(faults)).unwrap();
    let (y, _) = sim.spmv(&a, &x).unwrap();
    let want = ops::spmv_reference(&a.to_csr(), &x.to_dense()).unwrap();
    let got = y.to_dense();
    for i in 0..1024usize {
        assert!((got[i] - want[i]).abs() < 1e-9);
    }
}

// --- Property 3: monotone degradation ----------------------------------

#[test]
fn cycles_are_monotone_in_hbm_ber() {
    let a = workload(5);
    let mut prev = 0u64;
    for ber in [0.0, 1e-6, 1e-5, 1e-4, 1e-3] {
        let faults = FaultModel {
            seed: 11,
            hbm_ber: ber,
            ..FaultModel::default()
        };
        let (_, rep) = run(cfg_with(faults), &a);
        assert!(
            rep.total_cycles() >= prev,
            "ber {ber}: cycles {} < previous {prev}",
            rep.total_cycles()
        );
        prev = rep.total_cycles();
    }
}

#[test]
fn cycles_are_monotone_in_drop_rate() {
    let a = workload(6);
    let mut prev = 0u64;
    for rate in [0.0, 1e-4, 1e-3, 1e-2] {
        let faults = FaultModel {
            seed: 13,
            drop_rate: rate,
            ..FaultModel::default()
        };
        let (_, rep) = run(cfg_with(faults), &a);
        assert!(
            rep.total_cycles() >= prev,
            "drop rate {rate}: cycles {} < previous {prev}",
            rep.total_cycles()
        );
        prev = rep.total_cycles();
    }
}

#[test]
fn penalty_cycles_grow_with_fault_rate() {
    let a = workload(7);
    let penalty = |ber: f64| {
        let faults = FaultModel {
            seed: 17,
            hbm_ber: ber,
            ..FaultModel::default()
        };
        run(cfg_with(faults), &a).1.fault_penalty_cycles()
    };
    assert_eq!(penalty(0.0), 0);
    let low = penalty(1e-6);
    let high = penalty(1e-4);
    assert!(high > low, "penalty {high} at 1e-4 should exceed {low} at 1e-6");
}

// --- Graceful degradation under PE kills --------------------------------

#[test]
fn killed_pes_are_reported_and_work_completes() {
    let a = workload(8);
    let golden = ops::spgemm_reference(&a, &a).unwrap();
    let faults = FaultModel {
        seed: 19,
        pe_kill_count: 32, // an eighth of the 256-PE array
        pe_kill_cycle: 1_000,
        ..FaultModel::default()
    };
    let (c, rep) = run(cfg_with(faults), &a);
    assert!(c.approx_eq(&golden, 1e-9));
    // Kills apply per phase instance; each phase that ran PEs reports them.
    assert_eq!(rep.multiply.killed_pes, 32);
    assert!(rep.multiply.requeued_work_items > 0, "dead PEs held work at cycle 1000");
    // Survivors absorb the work: the run is slower than fault-free.
    let (_, clean) = run(OuterSpaceConfig::default(), &a);
    assert!(rep.multiply.cycles >= clean.multiply.cycles);
}

#[test]
fn killing_every_pe_fails_typed_not_hangs() {
    let a = workload(9);
    let faults = FaultModel {
        pe_kill_count: u32::try_from(OuterSpaceConfig::default().total_pes()).unwrap(),
        pe_kill_cycle: 0,
        ..FaultModel::default()
    };
    let err = Simulator::new(cfg_with(faults)).unwrap().spgemm(&a, &a).unwrap_err();
    match err {
        SimError::AllPesFailed { .. } => {}
        other => panic!("expected AllPesFailed, got {other:?}"),
    }
}

#[test]
fn exhausted_retries_surface_memory_failure() {
    let a = workload(10);
    let faults = FaultModel {
        drop_rate: 1.0, // every response drops: retries must run out
        ..FaultModel::default()
    };
    let err = Simulator::new(cfg_with(faults)).unwrap().spgemm(&a, &a).unwrap_err();
    match err {
        SimError::MemoryFailure { attempts, .. } => {
            assert_eq!(attempts, FaultModel::default().max_retries + 1);
        }
        other => panic!("expected MemoryFailure, got {other:?}"),
    }
}

#[test]
fn watchdog_aborts_runaway_phase() {
    let a = workload(11);
    let faults = FaultModel {
        watchdog_cycles: 10, // absurdly tight: any real phase exceeds it
        ..FaultModel::default()
    };
    let err = Simulator::new(cfg_with(faults)).unwrap().spgemm(&a, &a).unwrap_err();
    match err {
        SimError::WatchdogTimeout { frontier, limit, .. } => {
            assert!(frontier > limit);
            assert_eq!(limit, 10);
        }
        other => panic!("expected WatchdogTimeout, got {other:?}"),
    }
}

// --- Reporting & config validation --------------------------------------

#[test]
fn report_exposes_fault_counters() {
    let a = workload(12);
    let faults = FaultModel {
        hbm_ber: 1e-4,
        drop_rate: 0.01,
        ..FaultModel::default()
    };
    let (_, rep) = run(cfg_with(faults), &a);
    assert!(rep.multiply.ecc_retries > 0);
    assert!(rep.multiply.dropped_responses > 0);
    assert!(rep.multiply.fault_penalty_cycles > 0);
    assert_eq!(
        rep.fault_events(),
        rep.convert.map_or(0, |c| c.fault_events())
            + rep.multiply.fault_events()
            + rep.merge.fault_events()
    );
}

#[test]
fn fault_counters_serialize_in_report_json() {
    use outerspace::json::ToJson;
    let a = workload(13);
    let faults = FaultModel {
        hbm_ber: 1e-4,
        ..FaultModel::default()
    };
    let (_, rep) = run(cfg_with(faults), &a);
    let json = rep.to_json().to_string_compact();
    assert!(json.contains("ecc_retries"));
    assert!(json.contains("fault_penalty_cycles"));
}

#[test]
fn invalid_fault_configs_are_rejected() {
    let faults = FaultModel {
        hbm_ber: 1.5,
        ..FaultModel::default()
    };
    assert!(matches!(
        Simulator::new(cfg_with(faults)),
        Err(ConfigError::BadFaultProbability { knob: "hbm_ber", .. })
    ));

    let faults = FaultModel {
        drop_rate: 0.1,
        max_retries: 0,
        timeout_cycles: 0,
        ..FaultModel::default()
    };
    assert!(matches!(Simulator::new(cfg_with(faults)), Err(ConfigError::BadRetryPolicy)));

    let faults = FaultModel {
        pe_kill_count: 100_000,
        ..FaultModel::default()
    };
    assert!(matches!(
        Simulator::new(cfg_with(faults)),
        Err(ConfigError::TooManyKilledPes { .. })
    ));
}
