//! End-to-end walkthrough of the paper's Fig. 2 worked example.
//!
//! Fig. 2 multiplies two 4×4 sparse matrices with three processing
//! elements, showing: decomposition into column/row pairs, the skipped
//! outer product for B's empty third row, the per-row chunk lists, and the
//! merged result. This test reconstructs matrices with the same structural
//! features and checks every intermediate property the figure illustrates.

use outerspace::outer::{merge, multiply, MergeKind};
use outerspace::prelude::*;
use outerspace::sparse::Dense;

/// A and B shaped like Fig. 2: B's third row is empty, A's third column is
/// empty (so outer product 2 vanishes from both sides).
fn fig2_matrices() -> (Csr, Csr) {
    let a = Dense::from_row_major(
        4,
        4,
        vec![
            2.0, 0.0, 0.0, 1.0, //
            0.0, 3.0, 0.0, 0.0, //
            4.0, 0.0, 0.0, 0.0, //
            0.0, 5.0, 0.0, 6.0,
        ],
    )
    .to_csr();
    let b = Dense::from_row_major(
        4,
        4,
        vec![
            0.0, 1.0, 2.0, 0.0, //
            3.0, 0.0, 0.0, 4.0, //
            0.0, 0.0, 0.0, 0.0, // empty row, as in the figure
            0.0, 5.0, 0.0, 0.0,
        ],
    )
    .to_csr();
    (a, b)
}

#[test]
fn empty_row_of_b_forms_no_outer_product() {
    let (a, b) = fig2_matrices();
    let (_, stats) = multiply(&a.to_csc(), &b).unwrap();
    // Columns of A: 0 -> {2,4}, 1 -> {3,5}, 2 -> {} and 3 -> {1,6}; rows of
    // B: 0,1 non-empty, 2 empty, 3 non-empty. Active products: k = 0, 1, 3.
    assert_eq!(stats.nonempty_outer_products, 3);
}

#[test]
fn chunk_lists_match_figure_layout() {
    let (a, b) = fig2_matrices();
    let (pp, stats) = multiply(&a.to_csc(), &b).unwrap();
    // One chunk per non-zero of each active column of A: 2 + 2 + 2 = 6.
    assert_eq!(stats.chunks, 6);
    // Result row 0 receives chunks from k=0 (a00=2) and k=3 (a03=1).
    assert_eq!(pp.row_chunks(0).len(), 2);
    // Result row 2 receives one chunk (a20=4 scaling row 0 of B).
    let r2 = pp.row_chunks(2);
    assert_eq!(r2.len(), 1);
    assert_eq!(r2[0].cols, vec![1, 2]);
    assert_eq!(r2[0].vals, vec![4.0, 8.0]);
}

#[test]
fn merged_result_matches_dense_oracle() {
    let (a, b) = fig2_matrices();
    let (pp, _) = multiply(&a.to_csc(), &b).unwrap();
    let (c, mstats) = merge(pp, MergeKind::Streaming);
    let want = a.to_dense().matmul(&b.to_dense());
    assert!(c.to_dense().approx_eq(&want, 1e-12));
    // Row 0 of C = 2*row0(B) + 1*row3(B) = [0,2,4,0] + [0,5,0,0]: one
    // collision at column 1.
    assert_eq!(c.get(0, 1), 7.0);
    assert!(mstats.collisions >= 1);
}

#[test]
fn cr_and_cc_modes_agree_on_fig2() {
    let (a, b) = fig2_matrices();
    let cr = outerspace::outer::spgemm(&a, &b).unwrap();
    let cc = outerspace::outer::spgemm_cc(&a, &b).unwrap();
    assert!(cc.to_csr().approx_eq(&cr, 1e-12));
}

#[test]
fn simulator_runs_fig2_with_three_pe_system() {
    // The figure uses three processing units; configure a tiny OuterSPACE
    // (1 tile, 3 PEs... keep 4 for the pair structure) and check the
    // result is still exact.
    let (a, b) = fig2_matrices();
    let cfg = OuterSpaceConfig {
        n_tiles: 1,
        pes_per_tile: 4,
        merge_active_pes_per_tile: 2,
        ..Default::default()
    };
    let sim = Simulator::new(cfg).unwrap();
    let (c, rep) = sim.spgemm(&a, &b).unwrap();
    let want = a.to_dense().matmul(&b.to_dense());
    assert!(c.to_dense().approx_eq(&want, 1e-12));
    assert!(rep.multiply.active_pes <= 4);
}

#[test]
fn conversion_via_identity_reproduces_cc_form() {
    // §4.3: I_CC x A_CR -> A_CC. Verify against the direct transpose path.
    let (a, _) = fig2_matrices();
    let (cc, stats) = outerspace::outer::csr_to_csc_via_outer(&a);
    assert_eq!(cc, a.to_csc());
    assert!(!stats.skipped_symmetric);
    assert_eq!(stats.entries as usize, a.nnz());
}
