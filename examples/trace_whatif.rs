//! Trace-driven what-if studies — the paper's own methodology (§6: "we
//! built an instruction trace generator for the PEs and ran the generated
//! traces through our gem5 model").
//!
//! This example records the multiply-phase PE trace of one workload once,
//! then *replays* it under modified hardware configurations (cache sizes,
//! queue depths, HBM speeds) without re-running the algorithm — the cheap
//! design-space exploration loop an architect would actually use.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example trace_whatif
//! ```

use outerspace::prelude::*;
use outerspace::sim::trace::{record_multiply, replay_multiply};

fn main() {
    // One workload, one recording.
    let a = outerspace::gen::powerlaw::graph(8192, 90_000, 7);
    let base_cfg = OuterSpaceConfig::default();
    let t0 = std::time::Instant::now();
    let (direct, _, trace) = record_multiply(&base_cfg, &a.to_csc(), &a).unwrap();
    println!(
        "recorded {} chunk items / {} MACs in {:?} (direct multiply phase: {} cycles)",
        trace.chunk_count(),
        trace.total_macs(),
        t0.elapsed(),
        direct.cycles,
    );

    // Sanity: replay on the recording configuration is cycle-exact.
    let replayed = replay_multiply(&base_cfg, &trace);
    assert_eq!(replayed.cycles, direct.cycles);

    // What-if sweep: replay the frozen schedule under hardware variants.
    println!(
        "\n{:<34} {:>12} {:>9} {:>8}",
        "configuration", "cycles", "vs base", "L0 hit"
    );
    let mut variants: Vec<(String, OuterSpaceConfig)> = Vec::new();
    for kb in [4u32, 16, 64] {
        let mut cfg = base_cfg.clone();
        cfg.l0_multiply_bytes = kb * 1024;
        variants.push((format!("L0 = {kb} kB"), cfg));
    }
    for q in [8u32, 64, 512] {
        let mut cfg = base_cfg.clone();
        cfg.outstanding_requests = q;
        variants.push((format!("outstanding queue = {q}"), cfg));
    }
    for mb in [4000u32, 8000, 16000] {
        let mut cfg = base_cfg.clone();
        cfg.hbm_channel_mb_per_sec = mb;
        variants.push((format!("HBM channel = {mb} MB/s"), cfg));
    }
    for ns in [60.0f64, 115.0, 300.0] {
        let mut cfg = base_cfg.clone();
        cfg.hbm_latency_min_ns = ns - 20.0;
        cfg.hbm_latency_max_ns = ns + 20.0;
        variants.push((format!("HBM latency ~{ns} ns"), cfg));
    }

    for (name, cfg) in variants {
        let t = std::time::Instant::now();
        let stats = replay_multiply(&cfg, &trace);
        println!(
            "{:<34} {:>12} {:>8.2}x {:>8.3}   (replayed in {:?})",
            name,
            stats.cycles,
            direct.cycles as f64 / stats.cycles as f64,
            stats.l0_hit_rate(),
            t.elapsed(),
        );
    }
    println!("\n(schedule frozen at record time: PE-count changes need a fresh recording)");
}
