//! Graph analytics on the outer-product pipeline: triangle counting.
//!
//! §2 of the paper motivates SpGEMM as the building block of graph kernels —
//! triangle counting among them (via Azad/Buluç/Gilbert's formulation: the
//! triangle count is `Σ (A² ∘ A) / 6` for an undirected graph). This example
//! counts triangles on an R-MAT graph three ways — reference Gustavson,
//! software outer product, and the simulated accelerator — and reports the
//! accelerator's predicted advantage.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```

use outerspace::prelude::*;
use outerspace::sparse::ops;
use outerspace::sim::xmodels::{gpu::row_imbalance, CpuModel, GpuModel};

/// Counts triangles as `sum(A² ∘ A) / 6`, returning the count and `A²`'s
/// non-zero count (a measure of the SpGEMM work involved).
fn triangles(a: &Csr, a_squared: &Csr) -> (u64, usize) {
    let masked = ops::hadamard(a_squared, a).expect("same shape");
    let total: f64 = masked.values().iter().sum();
    ((total / 6.0).round() as u64, a_squared.nnz())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An undirected scale-free graph: 8192 vertices, ~60k edges. Pattern
    // values are 1.0 so A² counts paths of length two.
    let mut g = outerspace::gen::rmat::RmatConfig::new(8192, 60_000).generate(11);
    // Binarize: triangle counting needs a 0/1 adjacency matrix.
    let ones = vec![1.0; g.nnz()];
    g = Csr::new(g.nrows(), g.ncols(), g.row_ptr().to_vec(), g.col_indices().to_vec(), ones)?;

    println!("graph: {} vertices, {} directed edges", g.nrows(), g.nnz());

    // --- Reference (Gustavson). ---
    let t0 = std::time::Instant::now();
    let (a2_ref, _) = outerspace::baselines::gustavson::spgemm(&g, &g)?;
    let host_ref = t0.elapsed();
    let (tri_ref, work) = triangles(&g, &a2_ref);

    // --- Software outer product. ---
    let t1 = std::time::Instant::now();
    let a2_outer = outerspace::outer::spgemm_parallel(&g, &g, 4)?.0;
    let host_outer = t1.elapsed();
    let (tri_outer, _) = triangles(&g, &a2_outer);
    assert_eq!(tri_ref, tri_outer, "algorithms must agree on the triangle count");

    println!(
        "triangles: {tri_ref}  (A^2 has {work} non-zeros; host Gustavson {host_ref:?}, host outer-product {host_outer:?})"
    );

    // --- Simulated accelerator + baseline machine models. ---
    let sim = Simulator::new(OuterSpaceConfig::default()).expect("valid config");
    let (a2_hw, rep) = sim.spgemm(&g, &g)?;
    assert_eq!(triangles(&g, &a2_hw).0, tri_ref);

    let (_, gus) = outerspace::baselines::gustavson::spgemm(&g, &g)?;
    let cpu = CpuModel::xeon_e5_1650_v4().spgemm_seconds(
        &gus,
        12 * g.nnz() as u64,
        g.ncols() as u64,
        g.nrows() as u64,
        0.0,
    );
    let (_, hash) = outerspace::baselines::hash::spgemm(&g, &g)?;
    let gpu = GpuModel::tesla_k40()
        .cusparse_time(&hash, g.nrows() as u64, row_imbalance(&g, &g))
        .total();

    println!(
        "simulated OuterSPACE: {:.3} ms ({:.2} GFLOPS) | Xeon+MKL model: {:.3} ms ({:.1}x) | K40+cuSPARSE model: {:.3} ms ({:.1}x)",
        rep.seconds() * 1e3,
        rep.gflops(),
        cpu * 1e3,
        cpu / rep.seconds(),
        gpu * 1e3,
        gpu / rep.seconds(),
    );
    Ok(())
}
