//! PageRank by repeated SpMV — the paper's flagship SpMV application (§2).
//!
//! The rank vector starts dense, but with a *personalized* restart set it
//! stays sparse for many iterations, which is exactly the regime where the
//! outer-product SpMV's traffic scales with `nnz(x)` (Table 5). This example
//! runs personalized PageRank on a web-graph stand-in and reports how the
//! simulated accelerator's per-iteration time tracks the rank vector's
//! density.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example pagerank
//! ```

use outerspace::prelude::*;

const DAMPING: f64 = 0.85;
const ITERATIONS: usize = 12;
const EPS: f64 = 1e-10;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Web-graph stand-in: power-law, 16k pages, ~90k links, column-stochastic.
    let n: u32 = 16_384;
    let raw = outerspace::gen::powerlaw::graph(n, 90_000, 3);
    let a = column_stochastic(&raw)?.to_csc();

    // Personalized restart: all mass on a handful of seed pages.
    let seeds = [3u32, 999, 7777];
    let mut x = SparseVector {
        len: n,
        indices: seeds.to_vec(),
        values: vec![1.0 / seeds.len() as f64; seeds.len()],
    };

    let sim = Simulator::new(OuterSpaceConfig::default()).expect("valid config");
    println!("iter  nnz(x)   density     simulated-us   accel-GFLOPS");
    for it in 0..ITERATIONS {
        let (ax, rep) = sim.spmv(&a, &x)?;
        // x' = (1-d) * restart + d * A x, pruning negligible mass to keep
        // the vector sparse (standard push-style personalized PageRank).
        let mut next = std::collections::BTreeMap::new();
        for (&i, &v) in ax.indices.iter().zip(&ax.values) {
            let m = DAMPING * v;
            if m > EPS {
                next.insert(i, m);
            }
        }
        for &s in &seeds {
            *next.entry(s).or_insert(0.0) += (1.0 - DAMPING) / seeds.len() as f64;
        }
        x = SparseVector {
            len: n,
            indices: next.keys().copied().collect(),
            values: next.values().copied().collect(),
        };
        println!(
            "{it:>4}  {:>6}   {:.5}    {:>10.1}     {:.3}",
            x.nnz(),
            x.density(),
            rep.seconds() * 1e6,
            rep.gflops(),
        );
    }

    let mut ranked: Vec<(u32, f64)> =
        x.indices.iter().copied().zip(x.values.iter().copied()).collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite ranks"));
    println!("top pages: {:?}", &ranked[..ranked.len().min(5)]);
    Ok(())
}

/// Normalizes each column of `g` to sum to 1 (dangling columns left empty).
fn column_stochastic(g: &Csr) -> Result<Csr, SparseError> {
    let gt = g.transpose(); // rows of gt = columns of g
    let mut sums = vec![0.0; g.ncols() as usize];
    for (r, _, v) in gt.iter() {
        sums[r as usize] += v;
    }
    let vals: Vec<f64> = g
        .iter()
        .map(|(_, c, v)| if sums[c as usize] > 0.0 { v / sums[c as usize] } else { 0.0 })
        .collect();
    Csr::new(
        g.nrows(),
        g.ncols(),
        g.row_ptr().to_vec(),
        g.col_indices().to_vec(),
        vals,
    )
}
