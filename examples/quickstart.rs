//! Quickstart: multiply two sparse matrices with the outer-product
//! algorithm, in software and on the simulated OuterSPACE accelerator.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use outerspace::energy::AreaPowerModel;
use outerspace::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Build inputs: a uniformly random 4096 x 4096 matrix with
    //        65 536 non-zeros (density 0.39 %). ---
    let n = 4096;
    let nnz = 65_536;
    let a = outerspace::gen::uniform::matrix(n, n, nnz, 7);
    let b = outerspace::gen::uniform::matrix(n, n, nnz, 8);
    println!("A, B: {n} x {n}, {nnz} non-zeros ({:.4} % dense)", a.density() * 100.0);

    // --- 2. Software outer-product SpGEMM (multiply phase + merge phase). ---
    let t0 = std::time::Instant::now();
    let (c, report) = outerspace::outer::spgemm_with_stats(
        &a,
        &b,
        outerspace::outer::MergeKind::Streaming,
    )?;
    println!(
        "software:  C has {} non-zeros; {} elementary products, {} merge collisions ({:?})",
        c.nnz(),
        report.multiply.elementary_products,
        report.merge.collisions,
        t0.elapsed(),
    );

    // --- 3. Same product on the simulated accelerator (Table 2 config). ---
    let sim = Simulator::new(OuterSpaceConfig::default()).expect("default config is valid");
    let (c_hw, hw) = sim.spgemm(&a, &b)?;
    assert!(c.approx_eq(&c_hw, 1e-9), "hardware model must compute the same product");
    println!(
        "simulated: {:.3} ms total ({:.3} ms multiply, {:.3} ms merge{}) at {:.2} GFLOPS",
        hw.seconds() * 1e3,
        hw.config.cycles_to_seconds(hw.multiply.cycles) * 1e3,
        hw.config.cycles_to_seconds(hw.merge.cycles) * 1e3,
        hw.convert
            .map(|c| format!(", {:.3} ms conversion", hw.config.cycles_to_seconds(c.cycles) * 1e3))
            .unwrap_or_default(),
        hw.gflops(),
    );
    println!(
        "           multiply-phase bandwidth {:.1} % of peak, merge-phase {:.1} %",
        hw.multiply.bandwidth_utilization(&hw.config) * 100.0,
        hw.merge.bandwidth_utilization(&hw.config) * 100.0,
    );

    // --- 4. Compare against the baselines the paper measures. ---
    let t1 = std::time::Instant::now();
    let (c_mkl, _) = outerspace::baselines::gustavson::spgemm(&a, &b)?;
    let mkl_host = t1.elapsed();
    assert!(c.approx_eq(&c_mkl, 1e-9));
    println!("baseline:  Gustavson (MKL analog) on this host: {mkl_host:?}");

    // --- 5. Power and area of the accelerator doing this work. ---
    let table6 = AreaPowerModel::tsmc32nm().table6(sim.config(), Some(&hw));
    println!(
        "power:     {:.2} W total in {:.2} mm^2 -> {:.3} GFLOPS/W",
        table6.total_power_w(),
        table6.total_area_mm2(),
        hw.gflops() / table6.total_power_w(),
    );
    Ok(())
}
