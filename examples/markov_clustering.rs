//! Markov clustering (MCL) — the paper cites van Dongen's MCL as a flagship
//! SpGEMM application (§2). MCL alternates *expansion* (matrix squaring,
//! pure SpGEMM) with *inflation* (element-wise powering + column
//! normalization + pruning), so it exercises chained multiplication, the
//! element-wise machinery, and format-conversion amortization (§4.3) in one
//! loop.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example markov_clustering
//! ```

use outerspace::prelude::*;

const INFLATION: f64 = 2.0;
const PRUNE: f64 = 1e-4;
const MAX_ITERS: usize = 16;

fn main() -> Result<(), SparseError> {
    // A small community-structured graph: four dense blocks with sparse
    // inter-block noise.
    let g = community_graph(400, 4, 9);
    println!("graph: {} vertices, {} edges", g.nrows(), g.nnz());

    let mut m = column_normalize(&add_self_loops(&g)?)?;
    for it in 0..MAX_ITERS {
        // Expansion: M <- M * M (outer-product SpGEMM).
        let expanded = outerspace::outer::spgemm(&m, &m)?;
        // Inflation: element-wise power, renormalize, prune.
        let inflated = map_values(&expanded, |v| v.powf(INFLATION))?;
        let next = column_normalize(&inflated.pruned(PRUNE))?;
        let delta = max_abs_diff(&m, &next)?;
        m = next;
        println!("iter {it:>2}: nnz = {:>6}, max delta = {delta:.2e}", m.nnz());
        if delta < 1e-6 {
            break;
        }
    }

    // Interpret: attractor rows with non-zero mass define the clusters.
    let clusters = extract_clusters(&m);
    println!("found {} clusters, sizes: {:?}", clusters.len(), {
        let mut sizes: Vec<usize> = clusters.iter().map(Vec::len).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    });
    Ok(())
}

/// Four planted communities of `n/blocks` vertices plus random noise edges.
fn community_graph(n: u32, blocks: u32, seed: u64) -> Csr {
    use outerspace::sparse::Coo;
    let mut rng_state = seed;
    let mut next = move || {
        rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (rng_state >> 33) as u32
    };
    let per = n / blocks;
    let mut coo = Coo::new(n, n);
    for b in 0..blocks {
        let base = b * per;
        // ~8 intra-community edges per vertex.
        for v in 0..per {
            for _ in 0..4 {
                let u = base + next() % per;
                let w = base + v;
                if u != w {
                    coo.push(w, u, 1.0);
                    coo.push(u, w, 1.0);
                }
            }
        }
    }
    for _ in 0..n / 8 {
        let (u, v) = (next() % n, next() % n);
        if u != v {
            coo.push(u, v, 1.0);
            coo.push(v, u, 1.0);
        }
    }
    coo.to_csr()
}

fn add_self_loops(g: &Csr) -> Result<Csr, SparseError> {
    outerspace::sparse::ops::add(g, &Csr::identity(g.nrows()))
}

/// Largest absolute element-wise difference between two equally-shaped
/// matrices (union pattern).
fn max_abs_diff(a: &Csr, b: &Csr) -> Result<f64, SparseError> {
    let diff = outerspace::sparse::ops::sub(a, b)?;
    Ok(diff.values().iter().fold(0.0, |m, &v| v.abs().max(m)))
}

fn map_values<F: Fn(f64) -> f64>(m: &Csr, f: F) -> Result<Csr, SparseError> {
    let vals = m.values().iter().map(|&v| f(v)).collect();
    Csr::new(m.nrows(), m.ncols(), m.row_ptr().to_vec(), m.col_indices().to_vec(), vals)
}

fn column_normalize(m: &Csr) -> Result<Csr, SparseError> {
    let mut sums = vec![0.0; m.ncols() as usize];
    for (_, c, v) in m.iter() {
        sums[c as usize] += v;
    }
    map_values_indexed(m, |c, v| if sums[c as usize] > 0.0 { v / sums[c as usize] } else { 0.0 })
}

fn map_values_indexed<F: Fn(u32, f64) -> f64>(m: &Csr, f: F) -> Result<Csr, SparseError> {
    let vals = m.iter().map(|(_, c, v)| f(c, v)).collect();
    Csr::new(m.nrows(), m.ncols(), m.row_ptr().to_vec(), m.col_indices().to_vec(), vals)
}

/// MCL interpretation: vertex `j` belongs to attractor `i` with the largest
/// `M[i, j]`.
fn extract_clusters(m: &Csr) -> Vec<Vec<u32>> {
    let mut owner = vec![u32::MAX; m.ncols() as usize];
    let mut best = vec![0.0f64; m.ncols() as usize];
    for (r, c, v) in m.iter() {
        if v > best[c as usize] {
            best[c as usize] = v;
            owner[c as usize] = r;
        }
    }
    let mut groups: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
    for (col, &attractor) in owner.iter().enumerate() {
        if attractor != u32::MAX {
            groups.entry(attractor).or_default().push(col as u32);
        }
    }
    groups.into_values().collect()
}
