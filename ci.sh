#!/usr/bin/env bash
# Continuous-integration gate. Everything runs offline: the workspace has no
# crates.io dependencies (see DESIGN.md §4), and pointing CARGO_HOME at an
# empty directory proves nothing sneaks in through a warm registry cache.
set -euo pipefail
cd "$(dirname "$0")"

HERMETIC_CARGO_HOME="$(mktemp -d)"
trap 'rm -rf "$HERMETIC_CARGO_HOME"' EXIT
export CARGO_HOME="$HERMETIC_CARGO_HOME"
export CARGO_NET_OFFLINE=true

echo "==> offline release build"
cargo build --release --offline

echo "==> test suite"
cargo test -q --offline

echo "==> clippy (warnings are errors)"
cargo clippy --offline --all-targets -- -D warnings

echo "==> runall --smoke (tiny-scale sweep + injected-fault isolation gate)"
SMOKE_OUT="$(mktemp -d)"
trap 'rm -rf "$HERMETIC_CARGO_HOME" "$SMOKE_OUT"' EXIT
# --smoke appends a harness with one deliberately panicking case. The driver
# must still exit 0 (set -e enforces this) with the failure *recorded* in the
# consolidated report rather than aborting the sweep.
./target/release/runall --smoke --out "$SMOKE_OUT"
grep -q '"harness": "smoke_fault"' "$SMOKE_OUT/runall.json"
grep -A6 '"harness": "smoke_fault"' "$SMOKE_OUT/runall.json" | grep -q '"panicked": 1'
for artifact in fig03 fig07 ablations runall; do
    test -s "$SMOKE_OUT/$artifact.json"
done

echo "==> ci.sh: all gates passed"
