#!/usr/bin/env bash
# Continuous-integration gate. Everything runs offline: the workspace has no
# crates.io dependencies (see DESIGN.md §4), and pointing CARGO_HOME at an
# empty directory proves nothing sneaks in through a warm registry cache.
set -euo pipefail
cd "$(dirname "$0")"

HERMETIC_CARGO_HOME="$(mktemp -d)"
trap 'rm -rf "$HERMETIC_CARGO_HOME"' EXIT
export CARGO_HOME="$HERMETIC_CARGO_HOME"
export CARGO_NET_OFFLINE=true

echo "==> offline release build"
cargo build --release --offline

echo "==> test suite"
cargo test -q --offline

echo "==> clippy (warnings are errors)"
cargo clippy --offline --all-targets -- -D warnings

echo "==> ci.sh: all gates passed"
