#!/usr/bin/env bash
# Continuous-integration gate. Everything runs offline: the workspace has no
# crates.io dependencies (see DESIGN.md §4), and pointing CARGO_HOME at an
# empty directory proves nothing sneaks in through a warm registry cache.
set -euo pipefail
cd "$(dirname "$0")"

HERMETIC_CARGO_HOME="$(mktemp -d)"
trap 'rm -rf "$HERMETIC_CARGO_HOME"' EXIT
export CARGO_HOME="$HERMETIC_CARGO_HOME"
export CARGO_NET_OFFLINE=true

echo "==> offline release build"
cargo build --release --offline

echo "==> test suite"
cargo test -q --offline

echo "==> clippy (warnings are errors)"
cargo clippy --offline --all-targets -- -D warnings

echo "==> runall --smoke (tiny-scale sweep + injected-fault isolation gate)"
SMOKE_OUT="$(mktemp -d)"
trap 'rm -rf "$HERMETIC_CARGO_HOME" "$SMOKE_OUT"' EXIT
# --smoke appends a harness with one deliberately panicking case. The driver
# must still exit 0 (set -e enforces this) with the failure *recorded* in the
# consolidated report rather than aborting the sweep.
./target/release/runall --smoke --out "$SMOKE_OUT"
grep -q '"harness": "smoke_fault"' "$SMOKE_OUT/runall.json"
grep -A6 '"harness": "smoke_fault"' "$SMOKE_OUT/runall.json" | grep -q '"panicked": 1'
for artifact in fig03 fig07 fig12 fig_sparch ablations kernels runall; do
    test -s "$SMOKE_OUT/$artifact.json"
done

echo "==> kernels perf gate (pinned cells vs the smoke trajectory; injected slowdown must fail)"
# The runall smoke sweep above appended one perf-trajectory entry to
# BENCH_kernels.json. Re-measuring the pinned cells minutes later on the same
# machine must stay inside the gate's tolerance (machine-probe calibration +
# retry-to-confirm absorb scheduler noise); a synthetic 100000x slowdown
# injected into one pinned cell must trip it. See DESIGN.md §14.
test -s "$SMOKE_OUT/BENCH_kernels.json"
# The gate re-measures wall-clock medians; on a shared/quota-throttled host
# a noise window can outlast the binary's own retry-to-confirm loop, so CI
# allows one spaced retry before declaring a regression. A real slowdown
# (like the injected one below, which is deterministic) fails both attempts.
if ! ./target/release/kernels_bench --scale 8 --check --out "$SMOKE_OUT"; then
    echo "# kernels perf gate tripped once; retrying after a quiet period" >&2
    sleep 60
    ./target/release/kernels_bench --scale 8 --check --out "$SMOKE_OUT"
fi
if BENCH_INJECT_SLOWDOWN="multiply_arena:100000" \
    ./target/release/kernels_bench --scale 8 --check --out "$SMOKE_OUT"; then
    echo "ERROR: perf gate did not flag an injected 100000x slowdown" >&2
    exit 1
fi

echo "==> fig_sparch --smoke (machine-model frontier: deterministic artifact)"
SPARCH_OUT="$(mktemp -d)"
trap 'rm -rf "$HERMETIC_CARGO_HOME" "$SMOKE_OUT" "$SPARCH_OUT"' EXIT
# The OuterSPACE-vs-SpArch head-to-head must produce its frontier artifact
# with both machines present, and two runs at the same scale + seed must be
# byte-identical (no wall-clock leaks into the frontier file).
./target/release/fig_sparch --smoke --out "$SPARCH_OUT/a"
./target/release/fig_sparch --smoke --out "$SPARCH_OUT/b"
test -s "$SPARCH_OUT/a/fig_sparch_frontier.json"
grep -q '"machine": "outer_space"' "$SPARCH_OUT/a/fig_sparch_frontier.json"
grep -q '"machine": "sparch"' "$SPARCH_OUT/a/fig_sparch_frontier.json"
diff "$SPARCH_OUT/a/fig_sparch_frontier.json" "$SPARCH_OUT/b/fig_sparch_frontier.json"

echo "==> oracle (clean differential sweep at tiny scale)"
ORACLE_OUT="$(mktemp -d)"
trap 'rm -rf "$HERMETIC_CARGO_HOME" "$SMOKE_OUT" "$SPARCH_OUT" "$ORACLE_OUT"' EXIT
# Every implementation vs the reference across all case families: must agree
# everywhere (set -e enforces exit 0) and leave no repro directory behind.
./target/release/oracle --seeds 32 --scale 48 \
    --out "$ORACLE_OUT/clean" --repro-dir "$ORACLE_OUT/clean_repros"
test ! -e "$ORACLE_OUT/clean_repros"

echo "==> oracle --inject-fault (mismatch must be detected, shrunk, replayable)"
# A deliberately broken implementation rides along; the oracle must exit
# non-zero, write a shrunk repro, and the repro must replay deterministically.
if ./target/release/oracle --seeds 2 --scale 48 --inject-fault \
    --out "$ORACLE_OUT/fault" --repro-dir "$ORACLE_OUT/fault_repros"; then
    echo "ERROR: oracle did not flag the injected fault" >&2
    exit 1
fi
REPRO_DIR="$(find "$ORACLE_OUT/fault_repros" -mindepth 1 -maxdepth 1 -type d | head -n1)"
test -n "$REPRO_DIR"
test -s "$REPRO_DIR/a.mtx" && test -s "$REPRO_DIR/b.mtx" && test -s "$REPRO_DIR/manifest.json"
grep -q '"impl": "injected_fault"' "$REPRO_DIR/manifest.json"
if ./target/release/oracle --replay "$REPRO_DIR" > "$ORACLE_OUT/replay1.txt"; then
    echo "ERROR: replayed repro no longer reproduces" >&2
    exit 1
fi
if ./target/release/oracle --replay "$REPRO_DIR" > "$ORACLE_OUT/replay2.txt"; then
    echo "ERROR: replayed repro no longer reproduces" >&2
    exit 1
fi
diff "$ORACLE_OUT/replay1.txt" "$ORACLE_OUT/replay2.txt"

echo "==> dse --smoke (deterministic sweep + memo-cache gate)"
DSE_OUT="$(mktemp -d)"
trap 'rm -rf "$HERMETIC_CARGO_HOME" "$SMOKE_OUT" "$SPARCH_OUT" "$ORACLE_OUT" "$DSE_OUT"' EXIT
# First run simulates every point of the bundled 64-point smoke grid; a
# second run with the same seed must (a) serve every point from the
# content-addressed cache (0 re-simulations) and (b) regenerate the Pareto
# report byte-identically. A third run against a *fresh* cache proves the
# bytes are a function of the spec + seed, not of cache state.
./target/release/dse --smoke --out "$DSE_OUT/a"
./target/release/dse --smoke --out "$DSE_OUT/a" | tee "$DSE_OUT/second_run.txt"
grep -q "0 simulated, 64 cache hits (100% hit rate)" "$DSE_OUT/second_run.txt"
cp "$DSE_OUT/a/dse_smoke_pareto.json" "$DSE_OUT/first_pareto.json"
./target/release/dse --smoke --out "$DSE_OUT/b"
diff "$DSE_OUT/first_pareto.json" "$DSE_OUT/b/dse_smoke_pareto.json"
diff "$DSE_OUT/first_pareto.json" "$DSE_OUT/a/dse_smoke_pareto.json"
# The full tier must also reproduce, byte for byte, the Pareto frontier
# pinned in the repo: the fast tiers may only ever add speed, never perturb
# the exact tier's results.
diff crates/dse/tests/golden/smoke_pareto_full.json "$DSE_OUT/a/dse_smoke_pareto.json"

echo "==> dse tiers (trace replay, interval + error bars, dominance abort)"
# Trace tier: records each schedule neighborhood's multiply trace once,
# then replays it for every point sharing the schedule. Must satisfy the
# same smoke assertions, including the accounting identity.
./target/release/dse --smoke --tier trace --out "$DSE_OUT/trace" \
    | tee "$DSE_OUT/trace_run.txt"
grep -q "== 64 points: ok" "$DSE_OUT/trace_run.txt"
# Interval tier with validation: a deterministic sample is re-run at full
# fidelity; the held-out half must land within its own error bars.
./target/release/dse --smoke --tier interval --validate 2 --min-within-bars 0.8 \
    --out "$DSE_OUT/interval" | tee "$DSE_OUT/interval_run.txt"
grep -q "== 64 points: ok" "$DSE_OUT/interval_run.txt"
# Dominance early-abort: with abort rounds enabled the accounting identity
# (evaluated + aborted + invalid + failed == points) must still partition
# every point. The kill path itself (a dominated point must abort, and must
# surface as a counted outcome) is pinned by the executor unit tests above.
./target/release/dse --smoke --tier interval --abort --out "$DSE_OUT/abort" \
    | tee "$DSE_OUT/abort_run.txt"
grep -q "== 64 points: ok" "$DSE_OUT/abort_run.txt"

echo "==> dse interval economics gate (>= 10x points/cpu-hour at <= 5% median cycle error)"
# The headline acceptance gate, on the bundled OuterSPACE-vs-SpArch space:
# the interval tier must evaluate >= 10x more points per CPU-hour than the
# full tier while its validated median |cycle error| stays <= 5%.
./target/release/dse --space sparch_vs_ospace --tier interval --validate 2 \
    --min-speedup 10 --max-median-err 0.05 --min-within-bars 0.8 \
    --out "$DSE_OUT/economics"

echo "==> serve --chaos (faults + overload: no panics, no hangs, airtight accounting)"
SERVE_OUT="$(mktemp -d)"
trap 'rm -rf "$HERMETIC_CARGO_HOME" "$SMOKE_OUT" "$SPARCH_OUT" "$ORACLE_OUT" "$DSE_OUT" "$SERVE_OUT"' EXIT
# The chaos preset injects accelerator faults, panicking and stalling kernels,
# and drives 2x overload through the bounded queue. The binary asserts the
# accounting identity and zero late deliveries itself (exit 2 on violation);
# the gate re-checks the written report and that it is well-formed JSON.
timeout 300 ./target/release/ospace-serve --chaos --requests 96 --scale 64 \
    --nnz 400 --deadline-ms 1000 --out "$SERVE_OUT/serve_chaos.json"
grep -q '"accounted_ok": true' "$SERVE_OUT/serve_chaos.json"
grep -q '"deadline_violations": 0' "$SERVE_OUT/serve_chaos.json"
grep -q '"throughput_rps"' "$SERVE_OUT/serve_chaos.json"

echo "==> serve --chaos-sdc (silent corruption: detected, quarantined, breaker recovers)"
# The SDC preset injects ECC-escape faults and forced corruption traffic at
# 2x overload, judges every delivered payload against an independent golden
# answer, then drills a breaker through trip -> half-open canary -> close.
# The binary asserts detection >= 99%, zero corrupted deliveries, the
# delivery accounting identity, and full breaker recovery (exit 1 on any
# violation); the gate re-checks the written report.
timeout 300 ./target/release/ospace-serve --chaos-sdc --requests 72 --scale 64 \
    --nnz 400 --deadline-ms 1500 --out "$SERVE_OUT/serve_sdc.json"
grep -q '"accounted_ok": true' "$SERVE_OUT/serve_sdc.json"
grep -q '"delivery_accounted_ok": true' "$SERVE_OUT/serve_sdc.json"
grep -q '"corrupted_deliveries": 0' "$SERVE_OUT/serve_sdc.json"
grep -q '"sdc_containment_ok": true' "$SERVE_OUT/serve_sdc.json"
grep -q '"breaker_recovered": true' "$SERVE_OUT/serve_sdc.json"

echo "==> ci.sh: all gates passed"
