//! End-to-end pipeline tests: spec → expansion → parallel memoized sweep →
//! Pareto report, including the crash-recovery and byte-determinism
//! properties the CI gate relies on.

use std::fs;
use std::path::PathBuf;

use outerspace_dse::{analyze, run_sweep, PointOutcome, SimCache, SpaceSpec};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("outerspace-dse-it-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_space() -> SpaceSpec {
    SpaceSpec::parse_str(
        r#"{
            "name": "it",
            "axes": [
                {"knob": "n_tiles", "values": [4, 8]},
                {"knob": "hbm_channels", "values": [4, 8]}
            ],
            "workloads": [
                {"kind": "uniform", "n": 64, "nnz": 320},
                {"kind": "rmat", "n": 64, "nnz": 256}
            ]
        }"#,
    )
    .unwrap()
}

/// Two sweeps from *fresh* caches and one from a warm cache must produce the
/// same Pareto bytes, and the warm run must simulate nothing.
#[test]
fn pareto_bytes_are_deterministic_and_cache_independent() {
    let spec = small_space();
    let points = spec.expand(None, 42).unwrap();
    assert_eq!(points.len(), 8);

    let dir_a = scratch("det-a");
    let mut cache_a = SimCache::open(&dir_a).unwrap();
    let sweep_a = run_sweep(&points, &mut cache_a, 2);
    assert_eq!(sweep_a.simulated, 8);
    let pareto_a = analyze(&points, &sweep_a.outcomes).to_json().to_string_pretty();

    // Fresh cache, different thread count: same bytes.
    let dir_b = scratch("det-b");
    let mut cache_b = SimCache::open(&dir_b).unwrap();
    let sweep_b = run_sweep(&points, &mut cache_b, 4);
    let pareto_b = analyze(&points, &sweep_b.outcomes).to_json().to_string_pretty();
    assert_eq!(pareto_a, pareto_b, "fresh-cache runs must agree byte-for-byte");

    // Warm cache: zero simulations, same bytes.
    let mut cache_w = SimCache::open(&dir_a).unwrap();
    let sweep_w = run_sweep(&points, &mut cache_w, 2);
    assert_eq!(sweep_w.simulated, 0);
    assert_eq!(sweep_w.cache_hits, 8);
    let pareto_w = analyze(&points, &sweep_w.outcomes).to_json().to_string_pretty();
    assert_eq!(pareto_a, pareto_w, "cached runs must agree byte-for-byte");

    let _ = fs::remove_dir_all(&dir_a);
    let _ = fs::remove_dir_all(&dir_b);
}

/// Crash-mid-append: tearing the cache's final line loses exactly one point;
/// the next sweep re-simulates only that point and heals the file.
#[test]
fn torn_cache_recovers_and_resimulates_only_the_lost_point() {
    let spec = small_space();
    let points = spec.expand(None, 42).unwrap();
    let dir = scratch("torn");
    {
        let mut cache = SimCache::open(&dir).unwrap();
        run_sweep(&points, &mut cache, 1);
    }
    let path = dir.join(SimCache::FILE);
    let text = fs::read_to_string(&path).unwrap();
    fs::write(&path, &text[..text.len() - 25]).unwrap(); // tear the tail

    let mut cache = SimCache::open(&dir).unwrap();
    assert_eq!(cache.len(), points.len() - 1, "exactly one entry lost");
    let sweep = run_sweep(&points, &mut cache, 2);
    assert_eq!(sweep.simulated, 1, "only the torn point re-simulates");
    assert_eq!(sweep.cache_hits, points.len() - 1);
    assert_eq!(sweep.failed + sweep.invalid, 0);

    // Healed: a third run is all hits.
    let mut cache2 = SimCache::open(&dir).unwrap();
    let sweep2 = run_sweep(&points, &mut cache2, 2);
    assert_eq!(sweep2.simulated, 0);
    let _ = fs::remove_dir_all(&dir);
}

/// The α and system-scale axes flow through the whole pipeline: alloc
/// metrics appear per point, and scaled systems report more PEs' worth of
/// area and (for fixed work) fewer cycles.
#[test]
fn alpha_and_system_scale_flow_end_to_end() {
    let spec = SpaceSpec::parse_str(
        r#"{
            "name": "it2",
            "axes": [{"knob": "system_scale", "values": [1, 4]}],
            "workloads": [{"kind": "powerlaw", "n": 96, "nnz": 600}],
            "alphas": [2.0]
        }"#,
    )
    .unwrap();
    let points = spec.expand(None, 7).unwrap();
    assert_eq!(points.len(), 2);
    let dir = scratch("axes");
    let mut cache = SimCache::open(&dir).unwrap();
    let sweep = run_sweep(&points, &mut cache, 2);
    let metrics: Vec<_> = sweep
        .outcomes
        .iter()
        .map(|o| match o {
            PointOutcome::Ok { metrics, .. } => metrics.clone(),
            other => panic!("expected ok, got {other:?}"),
        })
        .collect();
    for m in &metrics {
        let alloc = m.get("alloc").expect("alpha in spec => alloc block");
        assert!(alloc.get("dynamic_requests").is_some());
    }
    let area = |i: usize| metrics[i].get("area_mm2").unwrap().as_f64().unwrap();
    assert!(area(1) > 3.0 * area(0), "4x system must report ~4x area");

    // Both configs aggregate separately and both land on the frontier
    // (bigger area, fewer cycles: a genuine trade-off).
    let report = analyze(&points, &sweep.outcomes);
    assert_eq!(report.configs.len(), 2);
    assert!(!report.frontier.is_empty());
    let _ = fs::remove_dir_all(&dir);
}

/// The full-fidelity tier is the pre-tier executor, bit for bit: the smoke
/// spec's Pareto report must match the golden baseline pinned before the
/// tier subsystem landed. Any drift here means the fast-path work changed
/// full-tier semantics — exactly what the tier keying is meant to prevent.
#[test]
fn full_tier_matches_the_pinned_smoke_golden() {
    let dir = scratch("golden");
    let spec = SpaceSpec::bundled("smoke").unwrap();
    let points = spec.expand(None, 42).unwrap();
    let mut cache = SimCache::open(&dir).unwrap();
    let sweep = run_sweep(&points, &mut cache, 4);
    let mut pareto = analyze(&points, &sweep.outcomes).to_json().to_string_pretty();
    pareto.push('\n');
    let golden = include_str!("golden/smoke_pareto_full.json");
    assert_eq!(pareto, golden, "full tier drifted from the pinned baseline");
    let _ = fs::remove_dir_all(&dir);
}
