//! The parallel sweep executor: fans expanded [`DsePoint`]s over a
//! work-stealing pool of worker threads, memoizing every simulated point in
//! the [`SimCache`].
//!
//! Workers pull point indices from one shared atomic counter (work stealing
//! without queues: whichever thread frees up takes the next index), so an
//! expensive point never serializes the sweep behind it. Each point:
//!
//! 1. `validate()`s its config — invalid corners of the space are *skipped*,
//!    not fatal;
//! 2. probes the cache under its content address — a hit costs one hash;
//! 3. on a miss, synthesizes the workload and runs the configured machine
//!    model's phase pipeline (`sim::model::for_kind`) with cycle breakdowns,
//!    prices the design with the Table 6 area/power model, and appends the
//!    metrics to the cache.
//!
//! Outcomes are returned sorted by point index, and every metric is a pure
//! function of (config, workload, seed) — so a re-run with the same seed
//! produces byte-identical reports whether the numbers came from the
//! simulator or from the cache.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use outerspace_energy::AreaPowerModel;
use outerspace_json::{Json, ToJson};
use outerspace_sim::{alloc, model, SimReport};

use crate::cache::{key_material, SimCache};
use crate::spec::DsePoint;

/// What happened to one design point.
#[derive(Debug, Clone, PartialEq)]
pub enum PointOutcome {
    /// Simulated (or recalled) successfully.
    Ok {
        /// Point index in expansion order.
        index: usize,
        /// The deterministic metrics object (see [`module docs`](self)).
        metrics: Json,
        /// True when served from the memo cache without simulating.
        cached: bool,
    },
    /// The config failed `validate()`; the point was skipped.
    Invalid {
        /// Point index in expansion order.
        index: usize,
        /// The validation error.
        reason: String,
    },
    /// The simulator returned an error or panicked.
    Failed {
        /// Point index in expansion order.
        index: usize,
        /// What went wrong.
        error: String,
    },
}

impl PointOutcome {
    /// The point index this outcome belongs to.
    pub fn index(&self) -> usize {
        match *self {
            PointOutcome::Ok { index, .. }
            | PointOutcome::Invalid { index, .. }
            | PointOutcome::Failed { index, .. } => index,
        }
    }
}

/// Aggregate result of one sweep.
#[derive(Debug)]
pub struct SweepResult {
    /// One outcome per point, sorted by point index.
    pub outcomes: Vec<PointOutcome>,
    /// Points served from the cache.
    pub cache_hits: usize,
    /// Points actually simulated this run.
    pub simulated: usize,
    /// Points skipped because their config failed validation.
    pub invalid: usize,
    /// Points that errored or panicked.
    pub failed: usize,
}

impl SweepResult {
    /// `cache_hits / (cache_hits + simulated)`, or 1.0 for an empty sweep.
    pub fn hit_rate(&self) -> f64 {
        let evaluated = self.cache_hits + self.simulated;
        if evaluated == 0 {
            1.0
        } else {
            self.cache_hits as f64 / evaluated as f64
        }
    }
}

/// Runs every point, fanning across `threads` workers (≥ 1; a value of 0 is
/// treated as 1). The cache is shared under a mutex — held only around the
/// lookup and the insert, never across a simulation.
pub fn run_sweep(points: &[DsePoint], cache: &mut SimCache, threads: usize) -> SweepResult {
    let threads = threads.max(1).min(points.len().max(1));
    let next = AtomicUsize::new(0);
    let shared_cache = Mutex::new(&mut *cache);
    let outcomes_mx: Mutex<Vec<PointOutcome>> = Mutex::new(Vec::with_capacity(points.len()));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= points.len() {
                    break;
                }
                let outcome = evaluate(&points[i], &shared_cache);
                outcomes_mx.lock().unwrap().push(outcome);
            });
        }
    });

    let mut outcomes = outcomes_mx.into_inner().unwrap();
    outcomes.sort_by_key(PointOutcome::index);
    let cache_hits =
        outcomes.iter().filter(|o| matches!(o, PointOutcome::Ok { cached: true, .. })).count();
    let simulated =
        outcomes.iter().filter(|o| matches!(o, PointOutcome::Ok { cached: false, .. })).count();
    let invalid = outcomes.iter().filter(|o| matches!(o, PointOutcome::Invalid { .. })).count();
    let failed = outcomes.iter().filter(|o| matches!(o, PointOutcome::Failed { .. })).count();
    SweepResult { outcomes, cache_hits, simulated, invalid, failed }
}

fn evaluate(point: &DsePoint, cache: &Mutex<&mut SimCache>) -> PointOutcome {
    let index = point.index;
    if let Err(e) = point.config.validate() {
        return PointOutcome::Invalid { index, reason: e.to_string() };
    }
    // The workload seed folds in the generator identity via the manifest, so
    // two workloads in one spec get decorrelated streams from one sweep seed.
    let seed = point.workload_seed();
    let material = key_material(
        &point.config_canonical(),
        &point.workload.manifest(seed).to_string_compact(),
        point.alpha,
    );
    if let Some(metrics) = cache.lock().unwrap().lookup(&material) {
        return PointOutcome::Ok { index, metrics: metrics.clone(), cached: true };
    }
    let sim = panic::catch_unwind(AssertUnwindSafe(|| simulate_point(point, seed)));
    match sim {
        Ok(Ok(metrics)) => {
            if let Err(e) = cache.lock().unwrap().insert(&material, metrics.clone()) {
                return PointOutcome::Failed { index, error: format!("cache append: {e}") };
            }
            PointOutcome::Ok { index, metrics, cached: false }
        }
        Ok(Err(error)) => PointOutcome::Failed { index, error },
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic".to_string());
            PointOutcome::Failed { index, error: format!("panic: {msg}") }
        }
    }
}

impl DsePoint {
    /// The workload-synthesis seed for this point: the sweep-independent
    /// generator identity keeps distinct workloads on distinct streams.
    pub fn workload_seed(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.workload.label().bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Simulates one point end to end and flattens everything downstream
/// analysis needs into one deterministic metrics object (fixed key order,
/// pure function of the inputs).
fn simulate_point(point: &DsePoint, seed: u64) -> Result<Json, String> {
    let cfg = &point.config;
    let a = point.workload.generate(seed)?;

    // The machine model owns the phase pipeline (OuterSPACE: convert +
    // tiled multiply + streaming merge; SpArch: condensed multiply + merge
    // tree), so one executor serves every swept machine.
    let pipe = model::for_kind(cfg.machine)
        .spgemm(cfg, &a, &a)
        .map_err(|e| e.to_string())?;
    let (c, mult_bd, merge_bd) = (pipe.c, pipe.multiply_breakdown, pipe.merge_breakdown);

    let report = SimReport {
        convert: pipe.convert,
        multiply: pipe.multiply,
        merge: pipe.merge,
        config: cfg.clone(),
    };

    // Price the design: measured-activity power, config-only area, energy.
    let model = AreaPowerModel::tsmc32nm();
    let table6 = model.table6(cfg, Some(&report));
    let energy = model.energy_report(cfg, &report);

    let mut pairs = vec![
        ("cycles".to_string(), Json::UInt(report.total_cycles())),
        ("seconds".to_string(), Json::Float(report.seconds())),
        ("gflops".to_string(), Json::Float(report.gflops())),
        ("power_w".to_string(), Json::Float(table6.total_power_w())),
        ("area_mm2".to_string(), Json::Float(table6.total_area_mm2())),
        ("energy_j".to_string(), Json::Float(energy.total_j)),
        ("edp_js".to_string(), Json::Float(energy.energy_delay_js)),
        ("nj_per_flop".to_string(), Json::Float(energy.nj_per_flop)),
        (
            "convert_cycles".to_string(),
            Json::UInt(report.convert.as_ref().map_or(0, |p| p.cycles)),
        ),
        ("multiply_cycles".to_string(), Json::UInt(report.multiply.cycles)),
        ("merge_cycles".to_string(), Json::UInt(report.merge.cycles)),
        ("flops".to_string(), Json::UInt(report.flops())),
        ("hbm_bytes".to_string(), Json::UInt(report.hbm_bytes())),
        ("result_nnz".to_string(), Json::UInt(c.nnz() as u64)),
        (
            "multiply_l0_hit_rate".to_string(),
            Json::Float(report.multiply.l0_hit_rate()),
        ),
        (
            "multiply_busy_share".to_string(),
            Json::Float(mult_bd.busy_cycles as f64 / mult_bd.total_pe_cycles().max(1) as f64),
        ),
        (
            "merge_busy_share".to_string(),
            Json::Float(merge_bd.busy_cycles as f64 / merge_bd.total_pe_cycles().max(1) as f64),
        ),
        (
            "hbm_mean_occupancy".to_string(),
            Json::Float(mult_bd.mean_channel_occupancy()),
        ),
    ];

    if let Some(alpha) = point.alpha {
        let reports = alloc::analyze(&a.to_csc(), &a, &[alpha]);
        let r = reports.first().ok_or("alloc::analyze returned nothing")?;
        pairs.push((
            "alloc".to_string(),
            Json::Obj(vec![
                ("alpha".into(), Json::Float(r.alpha)),
                ("dynamic_requests".into(), Json::UInt(r.dynamic_requests)),
                ("static_elements".into(), Json::UInt(r.static_elements)),
                ("spilled_elements".into(), Json::UInt(r.spilled_elements)),
                ("wasted_elements".into(), Json::UInt(r.wasted_elements)),
            ]),
        ));
    }
    Ok(Json::Obj(pairs))
}

/// Serializes one outcome for reports (fixed field order; `metrics` omitted
/// for non-`Ok` outcomes).
pub fn outcome_json(point: &DsePoint, outcome: &PointOutcome) -> Json {
    let mut pairs = vec![
        ("index".to_string(), Json::UInt(point.index as u64)),
        ("workload".to_string(), Json::Str(point.workload.label())),
        ("knobs".to_string(), point.knobs_json()),
    ];
    if let Some(a) = point.alpha {
        pairs.push(("alpha".to_string(), Json::Float(a)));
    }
    match outcome {
        PointOutcome::Ok { metrics, cached, .. } => {
            pairs.push(("status".to_string(), Json::Str("ok".into())));
            pairs.push(("cached".to_string(), cached.to_json()));
            pairs.push(("metrics".to_string(), metrics.clone()));
        }
        PointOutcome::Invalid { reason, .. } => {
            pairs.push(("status".to_string(), Json::Str("invalid".into())));
            pairs.push(("reason".to_string(), Json::Str(reason.clone())));
        }
        PointOutcome::Failed { error, .. } => {
            pairs.push(("status".to_string(), Json::Str("failed".into())));
            pairs.push(("reason".to_string(), Json::Str(error.clone())));
        }
    }
    Json::Obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpaceSpec;
    use std::fs;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("outerspace-dse-exec-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tiny_spec() -> SpaceSpec {
        SpaceSpec::parse_str(
            r#"{"name":"t","axes":[{"knob":"n_tiles","values":[4,8]}],
              "workloads":[{"kind":"uniform","n":48,"nnz":200}]}"#,
        )
        .unwrap()
    }

    #[test]
    fn sweep_simulates_then_recalls_identically() {
        let dir = scratch("recall");
        let points = tiny_spec().expand(None, 9).unwrap();
        let mut cache = SimCache::open(&dir).unwrap();
        let first = run_sweep(&points, &mut cache, 2);
        assert_eq!(first.simulated, 2);
        assert_eq!(first.cache_hits, 0);
        assert_eq!(first.failed + first.invalid, 0);

        let mut cache2 = SimCache::open(&dir).unwrap();
        let second = run_sweep(&points, &mut cache2, 2);
        assert_eq!(second.simulated, 0, "rerun must be all cache hits");
        assert_eq!(second.cache_hits, 2);
        assert!((second.hit_rate() - 1.0).abs() < 1e-12);
        for (a, b) in first.outcomes.iter().zip(&second.outcomes) {
            let (PointOutcome::Ok { metrics: ma, .. }, PointOutcome::Ok { metrics: mb, .. }) =
                (a, b)
            else {
                panic!("non-ok outcome");
            };
            assert_eq!(
                ma.to_string_compact(),
                mb.to_string_compact(),
                "cached metrics must be byte-identical"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_points_are_skipped_not_fatal() {
        let dir = scratch("invalid");
        // l0_ways = 3 is not a power of two: validate() rejects it.
        let spec = SpaceSpec::parse_str(
            r#"{"name":"t","axes":[{"knob":"l0_ways","values":[3,4]}],
              "workloads":[{"kind":"uniform","n":48,"nnz":200}]}"#,
        )
        .unwrap();
        let points = spec.expand(None, 9).unwrap();
        let mut cache = SimCache::open(&dir).unwrap();
        let r = run_sweep(&points, &mut cache, 2);
        assert_eq!(r.invalid, 1);
        assert_eq!(r.simulated, 1);
        assert!(matches!(r.outcomes[0], PointOutcome::Invalid { .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn alpha_points_carry_allocation_analysis() {
        let dir = scratch("alpha");
        let spec = SpaceSpec::parse_str(
            r#"{"name":"t","axes":[],"alphas":[1.0,2.0],
              "workloads":[{"kind":"uniform","n":48,"nnz":200}]}"#,
        )
        .unwrap();
        let points = spec.expand(None, 9).unwrap();
        let mut cache = SimCache::open(&dir).unwrap();
        let r = run_sweep(&points, &mut cache, 1);
        assert_eq!(r.simulated, 2);
        for o in &r.outcomes {
            let PointOutcome::Ok { metrics, .. } = o else { panic!("non-ok") };
            let alloc = metrics.get("alloc").expect("alpha point has alloc block");
            assert!(alloc.get("alpha").and_then(Json::as_f64).unwrap() >= 1.0);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_workloads_use_distinct_seeds() {
        let spec = SpaceSpec::parse_str(
            r#"{"name":"t","axes":[],
              "workloads":[{"kind":"uniform","n":48,"nnz":200},
                           {"kind":"uniform","n":64,"nnz":200}]}"#,
        )
        .unwrap();
        let pts = spec.expand(None, 1).unwrap();
        assert_ne!(pts[0].workload_seed(), pts[1].workload_seed());
    }
}
