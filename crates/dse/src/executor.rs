//! The parallel sweep executor: fans expanded [`DsePoint`]s over a
//! work-stealing pool of worker threads, memoizing every evaluated point in
//! the [`SimCache`].
//!
//! Workers pull point indices from one shared atomic counter (work stealing
//! without queues: whichever thread frees up takes the next index), so an
//! expensive point never serializes the sweep behind it. Each point:
//!
//! 1. `validate()`s its config — invalid corners of the space are *counted
//!    and reported* ([`PointOutcome::Invalid`]), never silently dropped;
//! 2. probes the cache under its content address (which includes the
//!    evaluation tier tag) — a hit costs one hash;
//! 3. on a miss, synthesizes the workload and evaluates it through the
//!    sweep's [`EvalTier`]: the full phase pipeline, a trace replay, or a
//!    sampled-window interval estimate (see [`crate::tiers`]), priced by
//!    the Table 6 area/power model.
//!
//! With [`SweepOptions::abort`] set, points run in fixed-size rounds; a
//! [`FrontierTracker`] frozen during each round supplies dominance abort
//! thresholds, and points killed by it surface as
//! [`PointOutcome::Aborted`] — an explicit, counted outcome. The round
//! barrier keeps the abort decisions (and therefore the whole sweep)
//! deterministic for a given point order, independent of thread count.
//!
//! Outcomes are returned sorted by point index, and every metric is a pure
//! function of (config, workload, seed, tier) — so a re-run with the same
//! seed produces byte-identical reports whether the numbers came from the
//! simulator or from the cache.

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use outerspace_json::{Json, ToJson};
use outerspace_sparse::Csr;

use crate::cache::{key_material, SimCache, TraceStore};
use crate::spec::DsePoint;
use crate::tiers::{self, EvalTier, FrontierTracker, SweepOptions, TierFailure};

/// Points per abort round: long enough to keep every worker busy between
/// frontier refreshes, short enough that a freshly completed fast point
/// starts killing dominated stragglers within the same sweep.
const ABORT_ROUND: usize = 32;

/// What happened to one design point.
#[derive(Debug, Clone, PartialEq)]
pub enum PointOutcome {
    /// Simulated (or recalled) successfully.
    Ok {
        /// Point index in expansion order.
        index: usize,
        /// The deterministic metrics object (see [`module docs`](self)).
        metrics: Json,
        /// True when served from the memo cache without simulating.
        cached: bool,
    },
    /// The config failed `validate()`; the point was skipped.
    Invalid {
        /// Point index in expansion order.
        index: usize,
        /// The validation error.
        reason: String,
    },
    /// The dominance early-abort killed the point: its lower bound was
    /// already Pareto-dominated by a completed point of the same workload.
    Aborted {
        /// Point index in expansion order.
        index: usize,
        /// Why (which bound, against which frontier value).
        reason: String,
    },
    /// The simulator returned an error or panicked.
    Failed {
        /// Point index in expansion order.
        index: usize,
        /// What went wrong.
        error: String,
    },
}

impl PointOutcome {
    /// The point index this outcome belongs to.
    pub fn index(&self) -> usize {
        match *self {
            PointOutcome::Ok { index, .. }
            | PointOutcome::Invalid { index, .. }
            | PointOutcome::Aborted { index, .. }
            | PointOutcome::Failed { index, .. } => index,
        }
    }
}

/// Aggregate result of one sweep. The counters partition the point list:
/// `cache_hits + simulated + invalid + aborted + failed` always equals the
/// number of points swept (the accounting identity `ci.sh` asserts).
#[derive(Debug)]
pub struct SweepResult {
    /// One outcome per point, sorted by point index.
    pub outcomes: Vec<PointOutcome>,
    /// Points served from the cache.
    pub cache_hits: usize,
    /// Points actually simulated this run.
    pub simulated: usize,
    /// Points skipped because their config failed validation.
    pub invalid: usize,
    /// Points killed by the dominance early-abort.
    pub aborted: usize,
    /// Points that errored or panicked.
    pub failed: usize,
}

impl SweepResult {
    /// `cache_hits / (cache_hits + simulated)`, or 1.0 for an empty sweep.
    pub fn hit_rate(&self) -> f64 {
        let evaluated = self.cache_hits + self.simulated;
        if evaluated == 0 {
            1.0
        } else {
            self.cache_hits as f64 / evaluated as f64
        }
    }
}

/// Runs every point at full fidelity, fanning across `threads` workers
/// (≥ 1; a value of 0 is treated as 1) — [`run_sweep_opts`] with default
/// [`SweepOptions`]. The cache is shared under a mutex — held only around
/// the lookup and the insert, never across a simulation.
pub fn run_sweep(points: &[DsePoint], cache: &mut SimCache, threads: usize) -> SweepResult {
    run_sweep_opts(points, cache, threads, &SweepOptions::default())
}

/// [`run_sweep`] with explicit tier routing and early-abort control.
pub fn run_sweep_opts(
    points: &[DsePoint],
    cache: &mut SimCache,
    threads: usize,
    opts: &SweepOptions,
) -> SweepResult {
    let threads = threads.max(1).min(points.len().max(1));
    let store = TraceStore::open(cache.dir());
    let shared_cache = Mutex::new(&mut *cache);
    // Workload synthesis memo, keyed by manifest (generator + shape +
    // seed): a sweep re-visits each workload once per config combo, and
    // for the fast tiers generation is a visible share of the per-point
    // cost. Metrics stay pure functions of the manifest either way.
    let gen_memo: Mutex<HashMap<String, Arc<Csr>>> = Mutex::new(HashMap::new());
    let mut outcomes: Vec<PointOutcome> = Vec::with_capacity(points.len());
    let mut tracker = FrontierTracker::default();
    let round = if opts.abort {
        if opts.round > 0 { opts.round } else { ABORT_ROUND }
    } else {
        points.len().max(1)
    };

    let mut start = 0usize;
    while start < points.len() {
        let chunk = &points[start..(start + round).min(points.len())];
        let next = AtomicUsize::new(0);
        let chunk_mx: Mutex<Vec<PointOutcome>> = Mutex::new(Vec::with_capacity(chunk.len()));
        let frontier = opts.abort.then_some(&tracker);
        std::thread::scope(|scope| {
            for _ in 0..threads.min(chunk.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= chunk.len() {
                        break;
                    }
                    let outcome = evaluate(
                        &chunk[i],
                        &shared_cache,
                        &gen_memo,
                        &store,
                        opts,
                        frontier,
                    );
                    chunk_mx.lock().unwrap().push(outcome);
                });
            }
        });
        let mut chunk_outcomes = chunk_mx.into_inner().unwrap();
        chunk_outcomes.sort_by_key(PointOutcome::index);
        if opts.abort {
            // The frontier only advances at round barriers, so every point
            // in a round sees the same (frozen) thresholds regardless of
            // which worker ran it — abort decisions stay deterministic.
            for o in &chunk_outcomes {
                if let PointOutcome::Ok { metrics, .. } = o {
                    if let Some(p) = chunk.iter().find(|p| p.index == o.index()) {
                        tracker.record_metrics(p, metrics);
                    }
                }
            }
        }
        outcomes.extend(chunk_outcomes);
        start += chunk.len();
    }

    outcomes.sort_by_key(PointOutcome::index);
    let cache_hits =
        outcomes.iter().filter(|o| matches!(o, PointOutcome::Ok { cached: true, .. })).count();
    let simulated =
        outcomes.iter().filter(|o| matches!(o, PointOutcome::Ok { cached: false, .. })).count();
    let invalid = outcomes.iter().filter(|o| matches!(o, PointOutcome::Invalid { .. })).count();
    let aborted = outcomes.iter().filter(|o| matches!(o, PointOutcome::Aborted { .. })).count();
    let failed = outcomes.iter().filter(|o| matches!(o, PointOutcome::Failed { .. })).count();
    SweepResult { outcomes, cache_hits, simulated, invalid, aborted, failed }
}

fn evaluate(
    point: &DsePoint,
    cache: &Mutex<&mut SimCache>,
    gen_memo: &Mutex<HashMap<String, Arc<Csr>>>,
    store: &TraceStore,
    opts: &SweepOptions,
    frontier: Option<&FrontierTracker>,
) -> PointOutcome {
    let index = point.index;
    if let Err(e) = point.config.validate() {
        return PointOutcome::Invalid { index, reason: e.to_string() };
    }
    // The workload seed folds in the generator identity via the manifest, so
    // two workloads in one spec get decorrelated streams from one sweep seed.
    let seed = point.workload_seed();
    let manifest = point.workload.manifest(seed).to_string_compact();
    let material =
        key_material(&point.config_canonical(), &manifest, point.alpha, opts.tier.tag());
    if let Some(metrics) = cache.lock().unwrap().lookup(&material) {
        return PointOutcome::Ok { index, metrics: metrics.clone(), cached: true };
    }
    let memoized = gen_memo.lock().unwrap().get(&manifest).cloned();
    let a: Arc<Csr> = match memoized {
        Some(a) => a,
        None => match point.workload.generate(seed) {
            Ok(a) => {
                let a = Arc::new(a);
                gen_memo.lock().unwrap().insert(manifest.clone(), Arc::clone(&a));
                a
            }
            Err(e) => return PointOutcome::Failed { index, error: e },
        },
    };

    // Dominance pre-check on config-only + workload-shape lower bounds: a
    // point that cannot beat the frozen frontier is never simulated at all.
    let threshold = frontier.and_then(|t| {
        t.abort_threshold(
            &point.workload.label(),
            tiers::power_floor_w(&point.config),
            tiers::config_area_mm2(&point.config),
        )
    });
    if let Some(t) = threshold {
        let floor = tiers::apriori_cycle_floor(&point.config, &a);
        if floor > t {
            return PointOutcome::Aborted {
                index,
                reason: format!(
                    "dominated before simulation: cycle floor {floor} > frontier {t}"
                ),
            };
        }
    }

    let sim = panic::catch_unwind(AssertUnwindSafe(|| match opts.tier {
        EvalTier::Full => tiers::simulate_full_tier(point, &a).map_err(TierFailure::Error),
        EvalTier::Trace => {
            tiers::simulate_trace_tier(point, &a, &manifest, store).map_err(TierFailure::Error)
        }
        EvalTier::Interval => {
            tiers::simulate_interval_tier(point, &a, &opts.interval, threshold)
        }
    }));
    match sim {
        Ok(Ok(metrics)) => {
            if let Err(e) = cache.lock().unwrap().insert(&material, metrics.clone()) {
                return PointOutcome::Failed { index, error: format!("cache append: {e}") };
            }
            PointOutcome::Ok { index, metrics, cached: false }
        }
        // Aborted points are never cached: on a later run without (or with a
        // different) frontier they must be free to evaluate for real.
        Ok(Err(TierFailure::Aborted { frontier })) => PointOutcome::Aborted {
            index,
            reason: format!("dominated mid-simulation at cycle frontier {frontier}"),
        },
        Ok(Err(TierFailure::Error(error))) => PointOutcome::Failed { index, error },
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic".to_string());
            PointOutcome::Failed { index, error: format!("panic: {msg}") }
        }
    }
}

impl DsePoint {
    /// The workload-synthesis seed for this point: the sweep-independent
    /// generator identity keeps distinct workloads on distinct streams.
    pub fn workload_seed(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.workload.label().bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Serializes one outcome for reports (fixed field order; `metrics` omitted
/// for non-`Ok` outcomes).
pub fn outcome_json(point: &DsePoint, outcome: &PointOutcome) -> Json {
    let mut pairs = vec![
        ("index".to_string(), Json::UInt(point.index as u64)),
        ("workload".to_string(), Json::Str(point.workload.label())),
        ("knobs".to_string(), point.knobs_json()),
    ];
    if let Some(a) = point.alpha {
        pairs.push(("alpha".to_string(), Json::Float(a)));
    }
    match outcome {
        PointOutcome::Ok { metrics, cached, .. } => {
            pairs.push(("status".to_string(), Json::Str("ok".into())));
            pairs.push(("cached".to_string(), cached.to_json()));
            pairs.push(("metrics".to_string(), metrics.clone()));
        }
        PointOutcome::Invalid { reason, .. } => {
            pairs.push(("status".to_string(), Json::Str("invalid".into())));
            pairs.push(("reason".to_string(), Json::Str(reason.clone())));
        }
        PointOutcome::Aborted { reason, .. } => {
            pairs.push(("status".to_string(), Json::Str("aborted".into())));
            pairs.push(("reason".to_string(), Json::Str(reason.clone())));
        }
        PointOutcome::Failed { error, .. } => {
            pairs.push(("status".to_string(), Json::Str("failed".into())));
            pairs.push(("reason".to_string(), Json::Str(error.clone())));
        }
    }
    Json::Obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpaceSpec;
    use std::fs;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("outerspace-dse-exec-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tiny_spec() -> SpaceSpec {
        SpaceSpec::parse_str(
            r#"{"name":"t","axes":[{"knob":"n_tiles","values":[4,8]}],
              "workloads":[{"kind":"uniform","n":48,"nnz":200}]}"#,
        )
        .unwrap()
    }

    #[test]
    fn sweep_simulates_then_recalls_identically() {
        let dir = scratch("recall");
        let points = tiny_spec().expand(None, 9).unwrap();
        let mut cache = SimCache::open(&dir).unwrap();
        let first = run_sweep(&points, &mut cache, 2);
        assert_eq!(first.simulated, 2);
        assert_eq!(first.cache_hits, 0);
        assert_eq!(first.failed + first.invalid + first.aborted, 0);

        let mut cache2 = SimCache::open(&dir).unwrap();
        let second = run_sweep(&points, &mut cache2, 2);
        assert_eq!(second.simulated, 0, "rerun must be all cache hits");
        assert_eq!(second.cache_hits, 2);
        assert!((second.hit_rate() - 1.0).abs() < 1e-12);
        for (a, b) in first.outcomes.iter().zip(&second.outcomes) {
            let (PointOutcome::Ok { metrics: ma, .. }, PointOutcome::Ok { metrics: mb, .. }) =
                (a, b)
            else {
                panic!("non-ok outcome");
            };
            assert_eq!(
                ma.to_string_compact(),
                mb.to_string_compact(),
                "cached metrics must be byte-identical"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_points_are_skipped_not_fatal() {
        let dir = scratch("invalid");
        // l0_ways = 3 is not a power of two: validate() rejects it.
        let spec = SpaceSpec::parse_str(
            r#"{"name":"t","axes":[{"knob":"l0_ways","values":[3,4]}],
              "workloads":[{"kind":"uniform","n":48,"nnz":200}]}"#,
        )
        .unwrap();
        let points = spec.expand(None, 9).unwrap();
        let mut cache = SimCache::open(&dir).unwrap();
        let r = run_sweep(&points, &mut cache, 2);
        assert_eq!(r.invalid, 1);
        assert_eq!(r.simulated, 1);
        assert!(matches!(r.outcomes[0], PointOutcome::Invalid { .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn alpha_points_carry_allocation_analysis() {
        let dir = scratch("alpha");
        let spec = SpaceSpec::parse_str(
            r#"{"name":"t","axes":[],"alphas":[1.0,2.0],
              "workloads":[{"kind":"uniform","n":48,"nnz":200}]}"#,
        )
        .unwrap();
        let points = spec.expand(None, 9).unwrap();
        let mut cache = SimCache::open(&dir).unwrap();
        let r = run_sweep(&points, &mut cache, 1);
        assert_eq!(r.simulated, 2);
        for o in &r.outcomes {
            let PointOutcome::Ok { metrics, .. } = o else { panic!("non-ok") };
            let alloc = metrics.get("alloc").expect("alpha point has alloc block");
            assert!(alloc.get("alpha").and_then(Json::as_f64).unwrap() >= 1.0);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_workloads_use_distinct_seeds() {
        let spec = SpaceSpec::parse_str(
            r#"{"name":"t","axes":[],
              "workloads":[{"kind":"uniform","n":48,"nnz":200},
                           {"kind":"uniform","n":64,"nnz":200}]}"#,
        )
        .unwrap();
        let pts = spec.expand(None, 1).unwrap();
        assert_ne!(pts[0].workload_seed(), pts[1].workload_seed());
    }

    #[test]
    fn tiers_cache_separately_and_report_their_blocks() {
        let dir = scratch("tiers");
        let points = tiny_spec().expand(None, 9).unwrap();
        let mut cache = SimCache::open(&dir).unwrap();
        let full = run_sweep_opts(&points, &mut cache, 2, &SweepOptions::default());
        assert_eq!(full.simulated, 2);

        // A different tier misses the full tier's entries and re-evaluates.
        let interval_opts =
            SweepOptions { tier: EvalTier::Interval, ..SweepOptions::default() };
        let interval = run_sweep_opts(&points, &mut cache, 2, &interval_opts);
        assert_eq!(interval.cache_hits, 0, "tiers must not alias in the cache");
        assert_eq!(interval.simulated, 2);
        for o in &interval.outcomes {
            let PointOutcome::Ok { metrics, .. } = o else { panic!("non-ok") };
            assert!(metrics.get("interval").is_some(), "interval block present");
            assert!(metrics.get("cycles").is_some());
        }

        let trace_opts = SweepOptions { tier: EvalTier::Trace, ..SweepOptions::default() };
        let trace = run_sweep_opts(&points, &mut cache, 2, &trace_opts);
        assert_eq!(trace.cache_hits, 0);
        assert_eq!(trace.simulated, 2);
        for o in &trace.outcomes {
            let PointOutcome::Ok { metrics, .. } = o else { panic!("non-ok") };
            assert!(metrics.get("trace").is_some(), "trace block present");
        }

        // Re-running each tier is now all hits, tier by tier.
        let mut cache2 = SimCache::open(&dir).unwrap();
        for o in [&SweepOptions::default(), &interval_opts, &trace_opts] {
            let again = run_sweep_opts(&points, &mut cache2, 2, o);
            assert_eq!(again.cache_hits, 2, "{:?} rerun must hit", o.tier);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn abort_accounting_identity_holds_and_is_thread_independent() {
        // Point 0 is the paper default: fast and cheap. The monster point
        // (huge L0 leakage floor + 200x HBM latency) is strictly dominated
        // once point 0 completes — its zero-activity power floor already
        // exceeds point 0's measured power, its area is larger, and its
        // cycles blow past point 0's mid-estimate — so it must abort.
        let dir = scratch("abort");
        let spec = SpaceSpec::parse_str(
            r#"{"name":"t","axes":[
                {"knob":"hbm_latency_max_ns","values":[100.0,20000.0]},
                {"knob":"l0_multiply_bytes","values":[16384.0,16777216.0]}],
              "workloads":[{"kind":"uniform","n":96,"nnz":900}]}"#,
        )
        .unwrap();
        let points = spec.expand(None, 9).unwrap();
        let opts = SweepOptions {
            abort: true,
            round: 1,
            tier: EvalTier::Interval,
            interval: outerspace_sim::interval::IntervalOpts { windows: 16, stride: 1 },
        };
        let mut reference: Option<Vec<String>> = None;
        for threads in [1usize, 4] {
            let tdir = scratch(&format!("abort-{threads}"));
            let mut cache = SimCache::open(&tdir).unwrap();
            let r = run_sweep_opts(&points, &mut cache, threads, &opts);
            assert_eq!(
                r.cache_hits + r.simulated + r.invalid + r.aborted + r.failed,
                points.len(),
                "accounting identity"
            );
            let summary: Vec<String> = r
                .outcomes
                .iter()
                .map(|o| match o {
                    PointOutcome::Ok { index, metrics, .. } => format!(
                        "{index}:ok:{}",
                        metrics.get("cycles").and_then(Json::as_u64).unwrap()
                    ),
                    PointOutcome::Invalid { index, .. } => format!("{index}:invalid"),
                    PointOutcome::Aborted { index, .. } => format!("{index}:aborted"),
                    PointOutcome::Failed { index, error } => {
                        format!("{index}:failed:{error}")
                    }
                })
                .collect();
            assert!(r.aborted >= 1, "the dominated monster point must abort");
            match &reference {
                None => reference = Some(summary),
                Some(first) => {
                    assert_eq!(first, &summary, "abort outcomes depend on thread count")
                }
            }
            let _ = fs::remove_dir_all(&tdir);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn aborted_points_are_explicit_not_silent() {
        let p = tiny_spec().expand(None, 9).unwrap().remove(0);
        let o = PointOutcome::Aborted { index: p.index, reason: "dominated".into() };
        let j = outcome_json(&p, &o);
        assert_eq!(j.get("status").and_then(Json::as_str), Some("aborted"));
        assert_eq!(j.get("reason").and_then(Json::as_str), Some("dominated"));
    }
}
