//! Post-sweep analysis: per-config aggregation, the Pareto frontier over
//! {cycles, power, area}, per-knob sensitivity slopes, and the best config
//! per workload.
//!
//! Configs are compared on their *aggregate* behaviour across every workload
//! in the spec: geometric-mean cycles and power (the cross-workload average
//! the paper's Fig. 10/11 speedup summaries use), with silicon area taken
//! straight from the Table 6 model (it does not depend on the workload). A
//! config is on the frontier when no other config is at least as good on all
//! three axes and strictly better on one.
//!
//! Sensitivity is the marginal ln–ln least-squares slope of geomean cycles
//! (and power) against each swept knob across the whole space — an
//! elasticity: slope −0.8 on `pes_per_tile` reads "doubling the PEs cuts
//! cycles by ~2^0.8". Everything is emitted in fixed field order and
//! computed as a pure function of the outcomes, so reports are
//! byte-reproducible.

use std::collections::HashMap;

use outerspace_json::{Json, ToJson};
use outerspace_sim::OuterSpaceConfig;

use crate::executor::PointOutcome;
use crate::spec::DsePoint;

/// One config's cross-workload aggregate.
#[derive(Debug, Clone)]
pub struct ConfigAgg {
    /// Dense id in first-occurrence order (stable across runs).
    pub config_id: usize,
    /// Canonical compact config JSON (the grouping identity).
    pub canonical: String,
    /// The knob assignment that produced the config.
    pub knobs: Vec<(String, f64)>,
    /// Geometric-mean total cycles across its Ok points.
    pub geomean_cycles: f64,
    /// Geometric-mean total power (W) across its Ok points.
    pub geomean_power_w: f64,
    /// Table 6 area (mm²) — workload-independent.
    pub area_mm2: f64,
    /// Number of Ok points aggregated.
    pub n_points: usize,
    /// True when this config survives Pareto filtering.
    pub on_frontier: bool,
}

/// Where the paper-default (Table 2/3) config landed.
#[derive(Debug, Clone, PartialEq)]
pub enum DefaultStatus {
    /// The space never evaluated the default config.
    Absent,
    /// The default is itself Pareto-optimal.
    OnFrontier,
    /// The default is dominated by the named config ids.
    DominatedBy(Vec<usize>),
}

/// One knob's elasticities.
#[derive(Debug, Clone)]
pub struct Sensitivity {
    /// Knob name.
    pub knob: String,
    /// d ln(cycles) / d ln(knob).
    pub cycles_slope: f64,
    /// d ln(power) / d ln(knob).
    pub power_slope: f64,
    /// Configs the fit used.
    pub n: usize,
}

/// The winning config for one workload.
#[derive(Debug, Clone)]
pub struct BestForWorkload {
    /// Workload label.
    pub workload: String,
    /// Winning config id.
    pub config_id: usize,
    /// Its cycles on this workload.
    pub cycles: u64,
    /// Its power on this workload (W).
    pub power_w: f64,
}

/// The full analysis product.
#[derive(Debug)]
pub struct ParetoReport {
    /// Every aggregated config, id order.
    pub configs: Vec<ConfigAgg>,
    /// Ids of the frontier members, ascending.
    pub frontier: Vec<usize>,
    /// Where the paper default landed.
    pub default_status: DefaultStatus,
    /// Per-knob elasticities, knob-registry order.
    pub sensitivities: Vec<Sensitivity>,
    /// Best config per workload, workload first-occurrence order.
    pub best_per_workload: Vec<BestForWorkload>,
}

fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let s: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (s / values.len() as f64).exp()
}

/// `a` dominates `b` when it is no worse on all three axes and strictly
/// better on at least one (minimizing).
fn dominates(a: &ConfigAgg, b: &ConfigAgg) -> bool {
    let no_worse = a.geomean_cycles <= b.geomean_cycles
        && a.geomean_power_w <= b.geomean_power_w
        && a.area_mm2 <= b.area_mm2;
    let better = a.geomean_cycles < b.geomean_cycles
        || a.geomean_power_w < b.geomean_power_w
        || a.area_mm2 < b.area_mm2;
    no_worse && better
}

fn lnln_slope(xs: &[f64], ys: &[f64]) -> f64 {
    let lx: Vec<f64> = xs.iter().map(|&x| x.max(1e-300).ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|&y| y.max(1e-300).ln()).collect();
    let n = lx.len() as f64;
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let var: f64 = lx.iter().map(|x| (x - mx) * (x - mx)).sum();
    if var <= 0.0 {
        return 0.0;
    }
    let cov: f64 = lx.iter().zip(&ly).map(|(x, y)| (x - mx) * (y - my)).sum();
    cov / var
}

/// Runs the full analysis over a sweep's points and outcomes (parallel
/// slices, as the executor returns them).
pub fn analyze(points: &[DsePoint], outcomes: &[PointOutcome]) -> ParetoReport {
    assert_eq!(points.len(), outcomes.len(), "one outcome per point");

    // Group Ok points by canonical config, preserving first-occurrence order.
    let mut order: Vec<String> = Vec::new();
    let mut by_config: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, o) in outcomes.iter().enumerate() {
        if matches!(o, PointOutcome::Ok { .. }) {
            let canon = points[i].config_canonical();
            by_config.entry(canon.clone()).or_insert_with(|| {
                order.push(canon);
                Vec::new()
            });
            by_config.get_mut(&points[i].config_canonical()).unwrap().push(i);
        }
    }

    let metric = |i: usize, key: &str| -> f64 {
        match &outcomes[i] {
            PointOutcome::Ok { metrics, .. } => {
                metrics.get(key).and_then(Json::as_f64).unwrap_or(0.0)
            }
            _ => 0.0,
        }
    };

    let mut configs: Vec<ConfigAgg> = order
        .iter()
        .enumerate()
        .map(|(config_id, canon)| {
            let idxs = &by_config[canon];
            let cycles: Vec<f64> = idxs.iter().map(|&i| metric(i, "cycles")).collect();
            let power: Vec<f64> = idxs.iter().map(|&i| metric(i, "power_w")).collect();
            ConfigAgg {
                config_id,
                canonical: canon.clone(),
                knobs: points[idxs[0]].knobs.clone(),
                geomean_cycles: geomean(&cycles),
                geomean_power_w: geomean(&power),
                area_mm2: metric(idxs[0], "area_mm2"),
                n_points: idxs.len(),
                on_frontier: false,
            }
        })
        .collect();

    let frontier: Vec<usize> = (0..configs.len())
        .filter(|&i| !(0..configs.len()).any(|j| j != i && dominates(&configs[j], &configs[i])))
        .collect();
    for &i in &frontier {
        configs[i].on_frontier = true;
    }

    // The paper default's standing.
    let default_canon = OuterSpaceConfig::default().to_json().to_string_compact();
    let default_status = match configs.iter().find(|c| c.canonical == default_canon) {
        None => DefaultStatus::Absent,
        Some(d) if d.on_frontier => DefaultStatus::OnFrontier,
        Some(d) => DefaultStatus::DominatedBy(
            configs
                .iter()
                .filter(|c| dominates(c, d))
                .map(|c| c.config_id)
                .collect(),
        ),
    };

    // Marginal elasticities, in the stable knob-registry order.
    let mut sensitivities = Vec::new();
    for &knob in crate::knobs::KNOBS {
        let pts: Vec<(f64, f64, f64)> = configs
            .iter()
            .filter_map(|c| {
                c.knobs.iter().find(|(k, _)| k == knob).map(|&(_, v)| {
                    (v, c.geomean_cycles, c.geomean_power_w)
                })
            })
            .collect();
        let distinct = {
            let mut vs: Vec<f64> = pts.iter().map(|p| p.0).collect();
            vs.sort_by(f64::total_cmp);
            vs.dedup();
            vs.len()
        };
        if distinct < 2 {
            continue;
        }
        let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let cy: Vec<f64> = pts.iter().map(|p| p.1).collect();
        let pw: Vec<f64> = pts.iter().map(|p| p.2).collect();
        sensitivities.push(Sensitivity {
            knob: knob.to_string(),
            cycles_slope: lnln_slope(&xs, &cy),
            power_slope: lnln_slope(&xs, &pw),
            n: pts.len(),
        });
    }

    // Best config per workload (lowest cycles; ties to the lower point index).
    let id_of: HashMap<&str, usize> =
        configs.iter().map(|c| (c.canonical.as_str(), c.config_id)).collect();
    let mut wl_order: Vec<String> = Vec::new();
    let mut best: HashMap<String, (u64, f64, usize)> = HashMap::new();
    for (i, o) in outcomes.iter().enumerate() {
        if !matches!(o, PointOutcome::Ok { .. }) {
            continue;
        }
        let label = points[i].workload.label();
        let cycles = metric(i, "cycles") as u64;
        let power = metric(i, "power_w");
        let entry = best.entry(label.clone()).or_insert_with(|| {
            wl_order.push(label);
            (u64::MAX, 0.0, usize::MAX)
        });
        if cycles < entry.0 {
            *entry = (cycles, power, i);
        }
    }
    let best_per_workload: Vec<BestForWorkload> = wl_order
        .iter()
        .map(|label| {
            let (cycles, power_w, idx) = best[label];
            BestForWorkload {
                workload: label.clone(),
                config_id: id_of[points[idx].config_canonical().as_str()],
                cycles,
                power_w,
            }
        })
        .collect();

    ParetoReport { configs, frontier, default_status, sensitivities, best_per_workload }
}

impl ParetoReport {
    /// Serializes the report deterministically (fixed key order, no
    /// wall-clock fields) — the byte-reproducibility the CI gate diffs.
    pub fn to_json(&self) -> Json {
        let configs = self
            .configs
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("config_id".into(), Json::UInt(c.config_id as u64)),
                    (
                        "knobs".into(),
                        Json::Obj(
                            c.knobs
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Float(*v)))
                                .collect(),
                        ),
                    ),
                    ("geomean_cycles".into(), Json::Float(c.geomean_cycles)),
                    ("geomean_power_w".into(), Json::Float(c.geomean_power_w)),
                    ("area_mm2".into(), Json::Float(c.area_mm2)),
                    ("n_points".into(), Json::UInt(c.n_points as u64)),
                    ("on_frontier".into(), Json::Bool(c.on_frontier)),
                ])
            })
            .collect();
        let default_status = match &self.default_status {
            DefaultStatus::Absent => Json::Str("absent".into()),
            DefaultStatus::OnFrontier => Json::Str("on_frontier".into()),
            DefaultStatus::DominatedBy(ids) => Json::Obj(vec![(
                "dominated_by".into(),
                Json::Arr(ids.iter().map(|&i| Json::UInt(i as u64)).collect()),
            )]),
        };
        let sensitivities = self
            .sensitivities
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("knob".into(), Json::Str(s.knob.clone())),
                    ("cycles_slope".into(), Json::Float(s.cycles_slope)),
                    ("power_slope".into(), Json::Float(s.power_slope)),
                    ("n".into(), Json::UInt(s.n as u64)),
                ])
            })
            .collect();
        let best = self
            .best_per_workload
            .iter()
            .map(|b| {
                Json::Obj(vec![
                    ("workload".into(), Json::Str(b.workload.clone())),
                    ("config_id".into(), Json::UInt(b.config_id as u64)),
                    ("cycles".into(), Json::UInt(b.cycles)),
                    ("power_w".into(), Json::Float(b.power_w)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("configs".into(), Json::Arr(configs)),
            (
                "frontier".into(),
                Json::Arr(self.frontier.iter().map(|&i| Json::UInt(i as u64)).collect()),
            ),
            ("default_config".into(), default_status),
            ("sensitivities".into(), Json::Arr(sensitivities)),
            ("best_per_workload".into(), Json::Arr(best)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpaceSpec;

    fn fake_outcome(cycles: u64, power: f64, area: f64) -> Json {
        Json::Obj(vec![
            ("cycles".into(), Json::UInt(cycles)),
            ("power_w".into(), Json::Float(power)),
            ("area_mm2".into(), Json::Float(area)),
        ])
    }

    fn points_for(tiles: &[u32]) -> Vec<DsePoint> {
        let values: Vec<String> = tiles.iter().map(u32::to_string).collect();
        let spec = SpaceSpec::parse_str(&format!(
            r#"{{"name":"t","axes":[{{"knob":"n_tiles","values":[{}]}}],
               "workloads":[{{"kind":"uniform","n":48,"nnz":200}}]}}"#,
            values.join(",")
        ))
        .unwrap();
        spec.expand(None, 1).unwrap()
    }

    #[test]
    fn frontier_drops_dominated_configs() {
        // 16 tiles would *be* the paper default; keep the grid off it so
        // the default reads Absent.
        let points = points_for(&[4, 8, 32]);
        // Config 1 dominates config 0 on every axis; config 2 trades power
        // for cycles, so it survives.
        let outcomes = vec![
            PointOutcome::Ok { index: 0, metrics: fake_outcome(1000, 5.0, 10.0), cached: false },
            PointOutcome::Ok { index: 1, metrics: fake_outcome(900, 4.0, 9.0), cached: false },
            PointOutcome::Ok { index: 2, metrics: fake_outcome(500, 8.0, 12.0), cached: false },
        ];
        let r = analyze(&points, &outcomes);
        assert_eq!(r.frontier, vec![1, 2]);
        assert!(!r.configs[0].on_frontier);
        assert_eq!(r.default_status, DefaultStatus::Absent);
        assert_eq!(r.best_per_workload.len(), 1);
        assert_eq!(r.best_per_workload[0].config_id, 2);
    }

    #[test]
    fn sensitivity_recovers_a_power_law() {
        let points = points_for(&[2, 4, 8, 16]);
        // cycles = 16000 / tiles  =>  ln-ln slope exactly -1.
        let outcomes: Vec<PointOutcome> = points
            .iter()
            .map(|p| PointOutcome::Ok {
                index: p.index,
                metrics: fake_outcome(16_000 / p.config.n_tiles as u64, 5.0, 10.0),
                cached: false,
            })
            .collect();
        let r = analyze(&points, &outcomes);
        let s = r.sensitivities.iter().find(|s| s.knob == "n_tiles").unwrap();
        assert!((s.cycles_slope + 1.0).abs() < 1e-9, "slope {}", s.cycles_slope);
        assert!(s.power_slope.abs() < 1e-9);
    }

    #[test]
    fn invalid_and_failed_points_are_excluded() {
        let points = points_for(&[4, 8]);
        let outcomes = vec![
            PointOutcome::Invalid { index: 0, reason: "bad".into() },
            PointOutcome::Ok { index: 1, metrics: fake_outcome(900, 4.0, 9.0), cached: false },
        ];
        let r = analyze(&points, &outcomes);
        assert_eq!(r.configs.len(), 1);
        assert_eq!(r.frontier, vec![0]);
    }

    #[test]
    fn report_json_is_stable() {
        let points = points_for(&[4, 8]);
        let outcomes = vec![
            PointOutcome::Ok { index: 0, metrics: fake_outcome(1000, 5.0, 10.0), cached: false },
            PointOutcome::Ok { index: 1, metrics: fake_outcome(900, 4.0, 9.0), cached: true },
        ];
        let a = analyze(&points, &outcomes).to_json().to_string_pretty();
        let b = analyze(&points, &outcomes).to_json().to_string_pretty();
        assert_eq!(a, b);
        assert!(a.contains("\"frontier\""));
    }
}
