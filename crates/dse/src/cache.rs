//! Content-addressed memoization of simulated design points.
//!
//! A point's identity is the hash of everything that determines its metrics:
//! a code-version salt (bumped whenever the timing/energy models change
//! semantically), the canonical compact JSON of the fully-applied
//! [`OuterSpaceConfig`](outerspace_sim::OuterSpaceConfig), the workload
//! manifest (generator kind, shape, and seed), and the allocation-α, if any.
//! Re-running a sweep therefore only simulates points whose inputs actually
//! changed; everything else is served from disk.
//!
//! Storage is one append-only JSON-lines file (`sim_cache.jsonl`) written
//! through [`outerspace_json::dump::append_jsonl`] — each completed point
//! appends one line, so a crash mid-sweep loses at most the line being
//! written, and [`read_jsonl`](outerspace_json::dump::read_jsonl)'s
//! torn-tail tolerance recovers the rest on the next run. Every entry also
//! stores its full key *material*; a lookup whose material mismatches the
//! stored entry (a 128-bit hash collision, or a salt forgery) is treated as
//! a miss and overwritten, never returned.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

use outerspace_json::dump::{append_jsonl, read_jsonl};
use outerspace_json::Json;

/// Cache-key salt covering the simulator's semantics. Bump on any change to
/// the timing, energy, or area models that alters metrics for an unchanged
/// config + workload, or stale cached metrics will be served as fresh.
/// (v7: evaluation-tier tag joined the key material — full-fidelity results
/// and fast-path estimates can never alias.)
pub const CODE_VERSION: &str = "outerspace-sim-v7";

/// 128-bit content hash as 32 hex digits: two independent FNV-1a-64 streams
/// over the same bytes, decorrelated by distinct offset bases (the second is
/// additionally perturbed per byte so the streams do not merely differ by a
/// constant).
fn fnv128_hex(bytes: &[u8]) -> String {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut a: u64 = 0xcbf2_9ce4_8422_2325; // standard FNV-1a offset basis
    let mut b: u64 = 0x6c62_272e_07bb_0142; // low word of the FNV-1a-128 basis
    for (i, &byte) in bytes.iter().enumerate() {
        a = (a ^ byte as u64).wrapping_mul(PRIME);
        b = (b ^ byte as u64 ^ (i as u64).rotate_left(17)).wrapping_mul(PRIME);
    }
    format!("{a:016x}{b:016x}")
}

/// Builds the canonical key material for one design point.
///
/// `config_canonical` is the compact JSON of the fully-applied config,
/// `workload_manifest` the compact JSON of
/// [`WorkloadSpec::manifest`](crate::spec::WorkloadSpec::manifest),
/// `alpha` the allocation-α swept alongside (if any), and `tier` the
/// evaluation tier's tag ([`EvalTier::tag`](crate::tiers::EvalTier::tag)) —
/// part of the key so a fast-path *estimate* can never be served where a
/// full-fidelity result was asked for, or vice versa.
pub fn key_material(
    config_canonical: &str,
    workload_manifest: &str,
    alpha: Option<f64>,
    tier: &str,
) -> String {
    let alpha_tag = match alpha {
        Some(a) => format!("{a}"),
        None => "none".to_string(),
    };
    format!(
        "{CODE_VERSION}\u{1f}tier={tier}\u{1f}{config_canonical}\u{1f}{workload_manifest}\u{1f}{alpha_tag}"
    )
}

/// Hashes key material into the content address.
pub fn key_of(material: &str) -> String {
    fnv128_hex(material.as_bytes())
}

/// Content address of an arbitrary byte string — the same 128-bit FNV
/// construction [`key_of`] uses, exposed so other content-addressed stores
/// (e.g. the serving layer's result cache hashing matrix operands) share one
/// hash family.
pub fn content_hash(bytes: &[u8]) -> String {
    fnv128_hex(bytes)
}

/// In-memory content-addressed store: the collision-guarded core of
/// [`SimCache`], generalized so other subsystems (the serving layer's
/// result cache, for one) can memoize arbitrary values under the same
/// contract. Every entry keeps its full key *material*; a lookup whose
/// material mismatches the stored entry — a 128-bit collision, or key
/// forgery — is a miss, never a wrong answer.
#[derive(Debug, Default)]
pub struct MemoMap<V> {
    entries: HashMap<String, (String, V)>,
}

impl<V> MemoMap<V> {
    /// An empty map.
    pub fn new() -> MemoMap<V> {
        MemoMap { entries: HashMap::new() }
    }

    /// Number of entries held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the value stored for `material`. Returns `None` on a genuine
    /// miss *and* on a hash collision whose stored material differs.
    pub fn lookup(&self, material: &str) -> Option<&V> {
        let (stored, value) = self.entries.get(&key_of(material))?;
        (stored == material).then_some(value)
    }

    /// Stores `value` under `material`'s content address (last write wins on
    /// a collision), returning the displaced value if any.
    pub fn insert(&mut self, material: &str, value: V) -> Option<V> {
        self.entries
            .insert(key_of(material), (material.to_string(), value))
            .map(|(_, old)| old)
    }

    /// Removes and returns the value stored for `material`, honouring the
    /// same collision guard as [`MemoMap::lookup`].
    pub fn remove(&mut self, material: &str) -> Option<V> {
        let key = key_of(material);
        match self.entries.get(&key) {
            Some((stored, _)) if stored == material => {
                self.entries.remove(&key).map(|(_, v)| v)
            }
            _ => None,
        }
    }
}

/// The on-disk memo cache for simulated points.
#[derive(Debug)]
pub struct SimCache {
    path: PathBuf,
    entries: MemoMap<Json>,
    /// Lines present on disk that failed to decode (diagnostics only).
    pub skipped_lines: usize,
}

impl SimCache {
    /// File name of the cache inside its directory.
    pub const FILE: &'static str = "sim_cache.jsonl";

    /// Opens (or initializes) the cache under `dir`. A missing file is an
    /// empty cache; a torn final line is dropped; well-formed lines that are
    /// not cache entries are counted in `skipped_lines` and ignored.
    ///
    /// # Errors
    ///
    /// I/O failure or interior (non-tail) corruption of the cache file.
    pub fn open(dir: &Path) -> io::Result<SimCache> {
        let path = dir.join(Self::FILE);
        let mut entries = MemoMap::new();
        let mut skipped = 0usize;
        match read_jsonl(&path) {
            Ok(lines) => {
                for line in lines {
                    let key = line.get("key").and_then(Json::as_str);
                    let material = line.get("material").and_then(Json::as_str);
                    let metrics = line.get("metrics");
                    match (key, material, metrics) {
                        (Some(k), Some(m), Some(v)) if key_of(m) == k => {
                            entries.insert(m, v.clone());
                        }
                        _ => skipped += 1,
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(SimCache { path, entries, skipped_lines: skipped })
    }

    /// The directory holding the cache file — where sibling content-addressed
    /// stores (the [`TraceStore`]) live.
    pub fn dir(&self) -> &Path {
        self.path.parent().unwrap_or_else(|| Path::new("."))
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the metrics for `material`. Returns `None` on a genuine miss
    /// *and* on a hash collision whose stored material differs (the guard
    /// that makes a 128-bit collision produce a re-simulation, not a wrong
    /// answer).
    pub fn lookup(&self, material: &str) -> Option<&Json> {
        self.entries.lookup(material)
    }

    /// Records `metrics` for `material`: one appended line plus the in-memory
    /// index. Overwrites a colliding entry in memory (last write wins, which
    /// `open` reproduces by insertion order).
    ///
    /// # Errors
    ///
    /// I/O failure appending to the cache file.
    pub fn insert(&mut self, material: &str, metrics: Json) -> io::Result<()> {
        let key = key_of(material);
        append_jsonl(
            &self.path,
            &Json::Obj(vec![
                ("key".into(), Json::Str(key)),
                ("material".into(), Json::Str(material.to_string())),
                ("metrics".into(), metrics.clone()),
            ]),
        )?;
        self.entries.insert(material, metrics);
        Ok(())
    }
}

/// Content-addressed store for recorded multiply traces (the trace-replay
/// tier's artifacts). One JSON file per trace neighborhood —
/// `trace_<hash>.json` beside the memo cache — holding the full key
/// material (collision-guarded exactly like [`SimCache`]) plus an opaque
/// payload the tier layer interprets (the serialized
/// [`MultiplyTrace`](outerspace_sim::trace::MultiplyTrace) and the
/// neighborhood-baseline stats). Traces are whole-file atomic: a torn write
/// fails to parse and reads as a miss, forcing a clean re-record.
#[derive(Debug)]
pub struct TraceStore {
    dir: PathBuf,
}

impl TraceStore {
    /// A store rooted at `dir` (the cache directory; created on first use).
    pub fn open(dir: &Path) -> TraceStore {
        TraceStore { dir: dir.to_path_buf() }
    }

    fn path_for(&self, material: &str) -> PathBuf {
        self.dir.join(format!("trace_{}.json", key_of(material)))
    }

    /// Loads the payload stored under `material`, or `None` on a miss, a
    /// torn file, or a hash collision whose stored material differs.
    pub fn load(&self, material: &str) -> Option<Json> {
        let text = std::fs::read_to_string(self.path_for(material)).ok()?;
        let j = outerspace_json::parse(&text).ok()?;
        let stored = j.get("material").and_then(Json::as_str)?;
        if stored != material {
            return None;
        }
        j.get("payload").cloned()
    }

    /// Stores `payload` under `material`'s content address (atomic: write
    /// to a temp file, then rename).
    ///
    /// # Errors
    ///
    /// Filesystem failure creating the directory or writing the file.
    pub fn store(&self, material: &str, payload: Json) -> io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let doc = Json::Obj(vec![
            ("material".into(), Json::Str(material.to_string())),
            ("payload".into(), payload),
        ]);
        let path = self.path_for(material);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, doc.to_string_compact())?;
        std::fs::rename(&tmp, &path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("outerspace-dse-cache-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = scratch("rt");
        let mat = key_material("{\"n_tiles\":16}", "{\"kind\":\"uniform\"}", Some(2.0), "full");
        {
            let mut c = SimCache::open(&dir).unwrap();
            assert!(c.is_empty());
            assert!(c.lookup(&mat).is_none());
            c.insert(&mat, Json::Obj(vec![("cycles".into(), Json::UInt(123))]))
                .unwrap();
            assert_eq!(
                c.lookup(&mat).and_then(|m| m.get("cycles")).and_then(Json::as_u64),
                Some(123)
            );
        }
        let c = SimCache::open(&dir).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.lookup(&mat).and_then(|m| m.get("cycles")).and_then(Json::as_u64),
            Some(123)
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_material_gets_distinct_keys() {
        let a = key_material("{\"n_tiles\":16}", "{\"seed\":1}", None, "full");
        let b = key_material("{\"n_tiles\":16}", "{\"seed\":2}", None, "full");
        let c = key_material("{\"n_tiles\":32}", "{\"seed\":1}", None, "full");
        let d = key_material("{\"n_tiles\":16}", "{\"seed\":1}", Some(1.0), "full");
        let keys = [key_of(&a), key_of(&b), key_of(&c), key_of(&d)];
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j]);
            }
        }
        assert_eq!(key_of(&a), key_of(&a));
        assert_eq!(keys[0].len(), 32);
    }

    #[test]
    fn machine_model_is_keyed_by_config_not_by_the_salt() {
        use outerspace_json::ToJson;
        use outerspace_sim::{MachineKind, OuterSpaceConfig};
        let ospace = OuterSpaceConfig::default();
        let sparch =
            OuterSpaceConfig { machine: MachineKind::SpArch, ..OuterSpaceConfig::default() };
        let m_o = key_material(&ospace.to_json().to_string_compact(), "{}", None, "full");
        let m_s = key_material(&sparch.to_json().to_string_compact(), "{}", None, "full");
        assert_ne!(key_of(&m_o), key_of(&m_s));
        // The distinction must come from the config serialization itself,
        // not from the CODE_VERSION salt: strip the salt and the material
        // still differs, so a future salt bump cannot alias the machines.
        let tail = |m: &str| m.split_once('\u{1f}').unwrap().1.to_string();
        assert_ne!(tail(&m_o), tail(&m_s));
    }

    #[test]
    fn tiers_are_keyed_alongside_the_config() {
        use outerspace_json::ToJson;
        use outerspace_sim::OuterSpaceConfig;
        // Same config + workload + alpha under different evaluation tiers
        // must produce different content addresses: an interval-tier
        // *estimate* can never answer a full-fidelity lookup.
        let cfg = OuterSpaceConfig::default().to_json().to_string_compact();
        let wl = "{\"kind\":\"rmat\",\"n\":1024}";
        let tiers = ["full", "trace", "interval"];
        let keys: Vec<String> =
            tiers.iter().map(|t| key_of(&key_material(&cfg, wl, Some(2.0), t))).collect();
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j], "{} vs {}", tiers[i], tiers[j]);
            }
        }
        // And within one tier the config still distinguishes, so the tier
        // tag narrows the key rather than replacing it.
        let other = "{\"n_tiles\":4}";
        assert_ne!(
            key_of(&key_material(&cfg, wl, Some(2.0), "interval")),
            key_of(&key_material(other, wl, Some(2.0), "interval")),
        );
    }

    #[test]
    fn trace_store_round_trips_and_guards_material() {
        let dir = scratch("traces");
        let store = TraceStore::open(&dir);
        let mat = key_material("{\"cfg\":1}", "{\"wl\":1}", None, "trace");
        assert!(store.load(&mat).is_none());
        store.store(&mat, Json::Obj(vec![("macs".into(), Json::UInt(42))])).unwrap();
        let back = store.load(&mat).expect("stored payload must load");
        assert_eq!(back.get("macs").and_then(Json::as_u64), Some(42));
        // Forge the stored material: the guarded load must miss.
        let path = dir.join(format!("trace_{}.json", key_of(&mat)));
        let doc = Json::Obj(vec![
            ("material".into(), Json::Str("forged".into())),
            ("payload".into(), Json::UInt(1)),
        ]);
        fs::write(&path, doc.to_string_compact()).unwrap();
        assert!(store.load(&mat).is_none());
        // A torn file parses as garbage and reads as a miss, not an error.
        fs::write(&path, "{\"material\":").unwrap();
        assert!(store.load(&mat).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn memo_map_guards_collisions_and_supports_removal() {
        let mut m: MemoMap<u32> = MemoMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert("alpha", 1), None);
        assert_eq!(m.insert("beta", 2), None);
        assert_eq!(m.lookup("alpha"), Some(&1));
        assert_eq!(m.insert("alpha", 3), Some(1));
        assert_eq!(m.lookup("alpha"), Some(&3));
        assert_eq!(m.len(), 2);
        // Removal honours the collision guard: material must match.
        assert_eq!(m.remove("gamma"), None);
        assert_eq!(m.remove("beta"), Some(2));
        assert_eq!(m.len(), 1);
        assert!(m.lookup("beta").is_none());
    }

    #[test]
    fn collision_guard_refuses_mismatched_material() {
        let dir = scratch("guard");
        let mat = key_material("{}", "{}", None, "full");
        let mut c = SimCache::open(&dir).unwrap();
        c.insert(&mat, Json::UInt(1)).unwrap();
        // Forge an entry on disk whose key does not hash its material: it
        // must be skipped on load, not served.
        append_jsonl(
            &dir.join(SimCache::FILE),
            &Json::Obj(vec![
                ("key".into(), Json::Str(key_of(&mat))),
                ("material".into(), Json::Str("something else".into())),
                ("metrics".into(), Json::UInt(999)),
            ]),
        )
        .unwrap();
        let c2 = SimCache::open(&dir).unwrap();
        assert_eq!(c2.skipped_lines, 1);
        assert_eq!(c2.lookup(&mat), Some(&Json::UInt(1)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_recovers_earlier_entries() {
        let dir = scratch("torn");
        let mat_a = key_material("{\"a\":1}", "{}", None, "full");
        let mat_b = key_material("{\"b\":2}", "{}", None, "full");
        {
            let mut c = SimCache::open(&dir).unwrap();
            c.insert(&mat_a, Json::UInt(1)).unwrap();
            c.insert(&mat_b, Json::UInt(2)).unwrap();
        }
        // Simulate a crash mid-append: chop the final line short.
        let path = dir.join(SimCache::FILE);
        let text = fs::read_to_string(&path).unwrap();
        let keep = text.len() - 10;
        fs::write(&path, &text[..keep]).unwrap();
        let c = SimCache::open(&dir).unwrap();
        assert_eq!(c.len(), 1, "only the torn entry should be lost");
        assert_eq!(c.lookup(&mat_a), Some(&Json::UInt(1)));
        assert!(c.lookup(&mat_b).is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
