//! Tiered fast-path evaluation: route each design point through one of
//! three evaluation tiers that trade fidelity for points-per-CPU-hour.
//!
//! * [`EvalTier::Full`] — today's transaction-level simulation of every
//!   phase. Exact, byte-identical to the pre-tier executor, and the
//!   reference the other tiers are validated against.
//! * [`EvalTier::Trace`] — trace-replay what-if. One multiply trace is
//!   recorded per *config neighborhood* (the point with every replay-safe
//!   memory/bandwidth knob reset to its default) and content-addressed in
//!   the [`TraceStore`]; each point in the neighborhood then re-times the
//!   frozen schedule on its own cache/HBM parameters
//!   ([`outerspace_sim::trace::replay_multiply`]) instead of re-simulating,
//!   and scales the merge/convert phases by the replayed-to-recorded cycle
//!   ratio.
//! * [`EvalTier::Interval`] — sampled-window simulation
//!   ([`outerspace_sim::interval`]): simulate every stride-th column window
//!   of the outer-product work through the real machine pipeline and
//!   extrapolate by exact work weights, carrying a per-point sampling error
//!   bar.
//!
//! Fast-path estimates and full-fidelity results can never alias: the tier
//! tag is part of the memo-cache key material
//! ([`key_material`](crate::cache::key_material)).
//!
//! **Dominance early-abort.** When [`SweepOptions::abort`] is set, the
//! executor keeps a [`FrontierTracker`] of completed points per workload.
//! A candidate whose *lower bounds* — config-only power floor (zero-activity
//! Table 6), exact area, and the `elementary products / total PEs` cycle
//! roofline — are already strictly Pareto-dominated by a completed point of
//! the same workload is killed (before simulation, or mid-estimate through
//! [`interval::AbortProbe`]) and reported as an explicit
//! [`PointOutcome::Aborted`](crate::executor::PointOutcome) outcome, never a
//! silent skip. Soundness: the tracker only compares points of the *same
//! workload*, dominance requires the bound to strictly exceed a completed
//! point's cycles at no-worse power/area bounds, and aborted points are
//! excluded from (not mistaken in) the Pareto analysis — see `DESIGN.md`
//! §16 for the full argument and the cross-workload caveat.
//!
//! **Calibration and validation.** [`validate_interval`] re-runs a
//! deterministic sample of interval-tier points at full fidelity, splits it
//! into a calibration half (fits multiplicative factors hierarchically:
//! per (machine kind, workload) group, falling back to the machine-wide
//! factor) and a holdout half (scores calibrated error against each point's
//! own error bar), and reports the error distribution plus measured
//! full-simulation cost — the inputs to the harness's points-per-CPU-hour
//! and accuracy gates.

use std::collections::HashMap;

use outerspace_energy::{ActivityFactors, AreaPowerModel};
use outerspace_json::{Json, ToJson};
use outerspace_outer as outer;
use outerspace_sim::interval::{self, AbortProbe, IntervalOpts};
use outerspace_sim::trace::{record_multiply, replay_multiply, MultiplyTrace};
use outerspace_sim::{alloc, model, MachineKind, OuterSpaceConfig, PhaseStats, SimError, SimReport};
use outerspace_sparse::Csr;

use crate::cache::{key_material, key_of, SimCache, TraceStore};
use crate::executor::PointOutcome;
use crate::spec::DsePoint;

/// Which evaluation tier a sweep runs its points through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalTier {
    /// Full transaction-level simulation (exact; the reference).
    #[default]
    Full,
    /// Trace-replay what-if within a config neighborhood.
    Trace,
    /// Sampled-window interval estimation with error bars.
    Interval,
}

impl EvalTier {
    /// The stable tag used in cache key material, CLI flags, and reports.
    pub fn tag(self) -> &'static str {
        match self {
            EvalTier::Full => "full",
            EvalTier::Trace => "trace",
            EvalTier::Interval => "interval",
        }
    }

    /// Parses a [`tag`](Self::tag) back into a tier.
    pub fn parse(s: &str) -> Option<EvalTier> {
        match s {
            "full" => Some(EvalTier::Full),
            "trace" => Some(EvalTier::Trace),
            "interval" => Some(EvalTier::Interval),
            _ => None,
        }
    }
}

/// Options steering [`run_sweep_opts`](crate::executor::run_sweep_opts).
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepOptions {
    /// The evaluation tier every point routes through.
    pub tier: EvalTier,
    /// Enable dominance early-abort (see module docs).
    pub abort: bool,
    /// Points per abort round (frontier refresh interval); 0 = the
    /// executor's default. Only meaningful with `abort`.
    pub round: usize,
    /// Sampling parameters of the interval tier.
    pub interval: IntervalOpts,
}

/// Knobs a recorded trace can legally re-time without re-simulating: they
/// steer memory-system service latencies, bandwidth, and clocking, but not
/// the dispatch schedule the trace froze (tile/PE counts, machine kind,
/// merge shape). The neighborhood canonical config resets exactly these.
pub const REPLAY_SAFE_KNOBS: &[&str] = &[
    "l0_multiply_bytes",
    "l0_ways",
    "l0_mshrs_multiply",
    "l1_bytes",
    "l1_ways",
    "n_l1",
    "l1_mshrs",
    "block_bytes",
    "hbm_channels",
    "hbm_channel_mb_per_sec",
    "hbm_latency_min_ns",
    "hbm_latency_max_ns",
    "l0_hit_cycles",
    "l1_hit_cycles",
    "xbar_cycles",
    "clock_ghz",
    "outstanding_requests",
];

/// The canonical representative of `cfg`'s trace neighborhood: every
/// replay-safe knob reset to its default, everything else (the knobs that
/// change the recorded schedule itself) kept. Two configs with the same
/// neighborhood share one recorded trace.
pub fn neighborhood_config(cfg: &OuterSpaceConfig) -> OuterSpaceConfig {
    let d = OuterSpaceConfig::default();
    OuterSpaceConfig {
        l0_multiply_bytes: d.l0_multiply_bytes,
        l0_ways: d.l0_ways,
        l0_mshrs_multiply: d.l0_mshrs_multiply,
        l1_bytes: d.l1_bytes,
        l1_ways: d.l1_ways,
        n_l1: d.n_l1,
        l1_mshrs: d.l1_mshrs,
        block_bytes: d.block_bytes,
        hbm_channels: d.hbm_channels,
        hbm_channel_mb_per_sec: d.hbm_channel_mb_per_sec,
        hbm_latency_min_ns: d.hbm_latency_min_ns,
        hbm_latency_max_ns: d.hbm_latency_max_ns,
        l0_hit_cycles: d.l0_hit_cycles,
        l1_hit_cycles: d.l1_hit_cycles,
        xbar_cycles: d.xbar_cycles,
        clock_ghz: d.clock_ghz,
        outstanding_requests: d.outstanding_requests,
        ..cfg.clone()
    }
}

/// `v * num / den` in u128, round to nearest.
fn mul_div_round(v: u64, num: u64, den: u64) -> u64 {
    if den == 0 {
        return 0;
    }
    ((v as u128 * num as u128 + den as u128 / 2) / den as u128) as u64
}

/// Reads one `PhaseStats` back out of its `impl_to_json!` serialization.
/// Missing numeric fields read as 0 except `cycles`, which must be present
/// (a payload without it is corrupt, not merely old).
fn phase_from_json(j: &Json) -> Result<PhaseStats, String> {
    let u = |k: &str| j.get(k).and_then(Json::as_u64).unwrap_or(0);
    let cycles = j
        .get("cycles")
        .and_then(Json::as_u64)
        .ok_or("phase stats payload missing cycles")?;
    Ok(PhaseStats {
        cycles,
        flops: u("flops"),
        hbm_read_bytes: u("hbm_read_bytes"),
        hbm_write_bytes: u("hbm_write_bytes"),
        l0_hits: u("l0_hits"),
        l0_misses: u("l0_misses"),
        l1_hits: u("l1_hits"),
        l1_misses: u("l1_misses"),
        work_items: u("work_items"),
        active_pes: u("active_pes") as u32,
        busy_pe_cycles: u("busy_pe_cycles"),
        ecc_retries: u("ecc_retries"),
        dropped_responses: u("dropped_responses"),
        fault_penalty_cycles: u("fault_penalty_cycles"),
        silent_corruptions: u("silent_corruptions"),
        requeued_work_items: u("requeued_work_items"),
        killed_pes: u("killed_pes") as u32,
        stall_l0_cycles: u("stall_l0_cycles"),
        stall_l1_cycles: u("stall_l1_cycles"),
        stall_hbm_cycles: u("stall_hbm_cycles"),
        idle_pe_cycles: u("idle_pe_cycles"),
        lost_pe_cycles: u("lost_pe_cycles"),
    })
}

/// Prices one evaluated point into the canonical metrics object every tier
/// emits: fixed key order, identical schema whether the counters came from
/// a full run, a replayed trace, or an interval extrapolation (the
/// fast-path tiers append their own sub-block after these shared keys).
pub(crate) fn price_metrics(
    point: &DsePoint,
    report: &SimReport,
    result_nnz: u64,
    multiply_busy_share: f64,
    merge_busy_share: f64,
    hbm_mean_occupancy: f64,
    a: &Csr,
) -> Result<Json, String> {
    let cfg = &point.config;
    let model = AreaPowerModel::tsmc32nm();
    let table6 = model.table6(cfg, Some(report));
    let energy = model.energy_report(cfg, report);

    let mut pairs = vec![
        ("cycles".to_string(), Json::UInt(report.total_cycles())),
        ("seconds".to_string(), Json::Float(report.seconds())),
        ("gflops".to_string(), Json::Float(report.gflops())),
        ("power_w".to_string(), Json::Float(table6.total_power_w())),
        ("area_mm2".to_string(), Json::Float(table6.total_area_mm2())),
        ("energy_j".to_string(), Json::Float(energy.total_j)),
        ("edp_js".to_string(), Json::Float(energy.energy_delay_js)),
        ("nj_per_flop".to_string(), Json::Float(energy.nj_per_flop)),
        (
            "convert_cycles".to_string(),
            Json::UInt(report.convert.as_ref().map_or(0, |p| p.cycles)),
        ),
        ("multiply_cycles".to_string(), Json::UInt(report.multiply.cycles)),
        ("merge_cycles".to_string(), Json::UInt(report.merge.cycles)),
        ("flops".to_string(), Json::UInt(report.flops())),
        ("hbm_bytes".to_string(), Json::UInt(report.hbm_bytes())),
        ("result_nnz".to_string(), Json::UInt(result_nnz)),
        (
            "multiply_l0_hit_rate".to_string(),
            Json::Float(report.multiply.l0_hit_rate()),
        ),
        ("multiply_busy_share".to_string(), Json::Float(multiply_busy_share)),
        ("merge_busy_share".to_string(), Json::Float(merge_busy_share)),
        ("hbm_mean_occupancy".to_string(), Json::Float(hbm_mean_occupancy)),
    ];

    if let Some(alpha) = point.alpha {
        let reports = alloc::analyze(&a.to_csc(), a, &[alpha]);
        let r = reports.first().ok_or("alloc::analyze returned nothing")?;
        pairs.push((
            "alloc".to_string(),
            Json::Obj(vec![
                ("alpha".into(), Json::Float(r.alpha)),
                ("dynamic_requests".into(), Json::UInt(r.dynamic_requests)),
                ("static_elements".into(), Json::UInt(r.static_elements)),
                ("spilled_elements".into(), Json::UInt(r.spilled_elements)),
                ("wasted_elements".into(), Json::UInt(r.wasted_elements)),
            ]),
        ));
    }
    Ok(Json::Obj(pairs))
}

/// Full-fidelity evaluation of one point on its pre-generated workload:
/// the configured machine model's whole phase pipeline, priced by the
/// Table 6 area/power model. Exactly the pre-tier executor's path.
pub(crate) fn simulate_full_tier(point: &DsePoint, a: &Csr) -> Result<Json, String> {
    let cfg = &point.config;
    let pipe = model::for_kind(cfg.machine)
        .spgemm(cfg, a, a)
        .map_err(|e| e.to_string())?;
    let report = SimReport {
        convert: pipe.convert,
        multiply: pipe.multiply,
        merge: pipe.merge,
        config: cfg.clone(),
    };
    let mult_bd = &pipe.multiply_breakdown;
    let merge_bd = &pipe.merge_breakdown;
    price_metrics(
        point,
        &report,
        pipe.c.nnz() as u64,
        mult_bd.busy_cycles as f64 / mult_bd.total_pe_cycles().max(1) as f64,
        merge_bd.busy_cycles as f64 / merge_bd.total_pe_cycles().max(1) as f64,
        mult_bd.mean_channel_occupancy(),
        a,
    )
}

/// Records one neighborhood baseline: a full pipeline run for the exact
/// phase stats and functional result, plus the dispatch trace of the
/// multiply. Returned as the [`TraceStore`] payload.
fn record_neighborhood(ncfg: &OuterSpaceConfig, a: &Csr) -> Result<Json, String> {
    let pipe = model::for_kind(MachineKind::OuterSpace)
        .spgemm(ncfg, a, a)
        .map_err(|e| e.to_string())?;
    let (a_cc, _) = outer::csr_to_csc_via_outer(a);
    let (base_mult, _layout, trace) =
        record_multiply(ncfg, &a_cc, a).map_err(|e| e.to_string())?;
    let merge_bd = &pipe.merge_breakdown;
    Ok(Json::Obj(vec![
        ("trace".into(), trace.to_json()),
        (
            "convert".into(),
            pipe.convert.as_ref().map_or(Json::Null, ToJson::to_json),
        ),
        ("multiply".into(), base_mult.to_json()),
        ("merge".into(), pipe.merge.to_json()),
        ("result_nnz".into(), Json::UInt(pipe.c.nnz() as u64)),
        (
            "merge_busy_share".into(),
            Json::Float(merge_bd.busy_cycles as f64 / merge_bd.total_pe_cycles().max(1) as f64),
        ),
        (
            "hbm_mean_occupancy".into(),
            Json::Float(pipe.multiply_breakdown.mean_channel_occupancy()),
        ),
    ]))
}

/// Trace-replay evaluation: load (or record once) the neighborhood's
/// multiply trace, re-time it on this point's replay-safe knobs, and scale
/// the merge/convert phase cycles by the replayed-to-recorded multiply
/// ratio. SpArch points fall back to [`simulate_full_tier`] — the replayer
/// models the OuterSPACE multiply engine — which is exact, merely slower;
/// the result is still cached under the trace tag so the sweep stays
/// resumable.
pub(crate) fn simulate_trace_tier(
    point: &DsePoint,
    a: &Csr,
    workload_manifest: &str,
    store: &TraceStore,
) -> Result<Json, String> {
    let cfg = &point.config;
    if cfg.machine != MachineKind::OuterSpace {
        return simulate_full_tier(point, a);
    }
    let ncfg = neighborhood_config(cfg);
    let rec_material = key_material(
        &ncfg.to_json().to_string_compact(),
        workload_manifest,
        None,
        "trace-record",
    );
    // Concurrent recorders of the same neighborhood race harmlessly: both
    // produce identical bytes and the store's rename is atomic.
    let payload = match store.load(&rec_material) {
        Some(p) => p,
        None => {
            let p = record_neighborhood(&ncfg, a)?;
            store
                .store(&rec_material, p.clone())
                .map_err(|e| format!("trace store: {e}"))?;
            p
        }
    };

    let trace_json = payload.get("trace").ok_or("trace payload missing trace")?;
    let trace =
        MultiplyTrace::from_json(trace_json).ok_or("trace payload failed to parse")?;
    let base_mult = phase_from_json(payload.get("multiply").ok_or("payload missing multiply")?)?;
    let base_merge = phase_from_json(payload.get("merge").ok_or("payload missing merge")?)?;
    let base_convert = match payload.get("convert") {
        None | Some(Json::Null) => None,
        Some(j) => Some(phase_from_json(j)?),
    };
    let result_nnz =
        payload.get("result_nnz").and_then(Json::as_u64).ok_or("payload missing result_nnz")?;
    let merge_busy_share =
        payload.get("merge_busy_share").and_then(Json::as_f64).unwrap_or(0.0);
    let hbm_mean_occupancy =
        payload.get("hbm_mean_occupancy").and_then(Json::as_f64).unwrap_or(0.0);

    let replayed = replay_multiply(cfg, &trace);
    // Merge and convert respond to the same memory-system knobs the multiply
    // does (they stream through the identical HBM/cache hierarchy), so their
    // cycles scale by the replayed-to-recorded multiply ratio; every other
    // counter is schedule-determined and carries over exactly.
    let (num, den) = (replayed.cycles, base_mult.cycles.max(1));
    let scale_cycles = |base: &PhaseStats| {
        let mut s = *base;
        s.cycles = mul_div_round(base.cycles, num, den);
        s
    };
    let report = SimReport {
        convert: base_convert.as_ref().map(&scale_cycles),
        multiply: replayed,
        merge: scale_cycles(&base_merge),
        config: cfg.clone(),
    };
    let multiply_busy_share = replayed.busy_pe_cycles as f64
        / (replayed.cycles.saturating_mul(cfg.total_pes())).max(1) as f64;

    let mut metrics = price_metrics(
        point,
        &report,
        result_nnz,
        multiply_busy_share,
        merge_busy_share,
        hbm_mean_occupancy,
        a,
    )?;
    if let Json::Obj(pairs) = &mut metrics {
        pairs.push((
            "trace".to_string(),
            Json::Obj(vec![
                ("neighborhood".into(), Json::Str(key_of(&rec_material))),
                ("base_multiply_cycles".into(), Json::UInt(base_mult.cycles)),
                ("replayed_multiply_cycles".into(), Json::UInt(replayed.cycles)),
            ]),
        ));
    }
    Ok(metrics)
}

/// Why a tier evaluation did not produce metrics.
pub(crate) enum TierFailure {
    /// The dominance probe killed the point mid-estimate; `frontier` is the
    /// cycle lower bound at the kill.
    Aborted {
        /// Cycle lower bound when the probe fired.
        frontier: u64,
    },
    /// A simulator error.
    Error(String),
}

/// [`interval::AbortProbe`] against a frozen frontier threshold: fire once
/// the monotone cycle lower bound strictly exceeds it.
struct ThresholdProbe(Option<u64>);

impl AbortProbe for ThresholdProbe {
    fn should_abort(&mut self, cycles_lower_bound: u64) -> bool {
        self.0.is_some_and(|t| cycles_lower_bound > t)
    }
}

/// Interval-tier evaluation: sampled-window estimate plus the shared
/// metrics schema and an `interval` sub-block carrying the sampling
/// evidence (error bar, window and work coverage).
pub(crate) fn simulate_interval_tier(
    point: &DsePoint,
    a: &Csr,
    opts: &IntervalOpts,
    abort_threshold: Option<u64>,
) -> Result<Json, TierFailure> {
    let mut probe = ThresholdProbe(abort_threshold);
    let est = interval::estimate_spgemm(&point.config, a, a, opts, &mut probe).map_err(
        |e| match e {
            SimError::Aborted { frontier, .. } => TierFailure::Aborted { frontier },
            other => TierFailure::Error(other.to_string()),
        },
    )?;
    let mut metrics = price_metrics(
        point,
        &est.report,
        est.result_nnz,
        est.multiply_busy_share,
        est.merge_busy_share,
        est.hbm_mean_occupancy,
        a,
    )
    .map_err(TierFailure::Error)?;
    if let Json::Obj(pairs) = &mut metrics {
        pairs.push((
            "interval".to_string(),
            Json::Obj(vec![
                ("rel_err".into(), Json::Float(est.rel_err)),
                ("windows_total".into(), Json::UInt(est.windows_total as u64)),
                ("windows_nonempty".into(), Json::UInt(est.windows_nonempty as u64)),
                ("windows_sampled".into(), Json::UInt(est.windows_sampled as u64)),
                ("work_total".into(), Json::UInt(est.work_total)),
                ("work_sampled".into(), Json::UInt(est.work_sampled)),
            ]),
        ));
    }
    Ok(metrics)
}

/// Config-only lower bound on sustained power: the zero-activity Table 6
/// column. Every dynamic term of the power model is non-decreasing in its
/// activity factor (the crossbar clamps activity at 0.5 from below, still a
/// bound), so no run of this config can draw less.
pub fn power_floor_w(cfg: &OuterSpaceConfig) -> f64 {
    let idle = ActivityFactors {
        pe_busy: 0.0,
        l0_accesses_per_cycle: 0.0,
        l1_accesses_per_cycle: 0.0,
        bw_utilization: 0.0,
    };
    AreaPowerModel::tsmc32nm().table6_with_activity(cfg, &idle).total_power_w()
}

/// Exact area of a config (activity-independent).
pub fn config_area_mm2(cfg: &OuterSpaceConfig) -> f64 {
    AreaPowerModel::tsmc32nm().table6(cfg, None).total_area_mm2()
}

/// A-priori cycle lower bound for `C = A x A` on `cfg`: total elementary
/// products over total PEs — the 1-MAC-per-PE-per-cycle roofline, valid for
/// both machines (SpArch's multiplier array is a subset of the PE budget).
pub fn apriori_cycle_floor(cfg: &OuterSpaceConfig, a: &Csr) -> u64 {
    let a_cc = a.to_csc();
    let ep: u64 =
        (0..a.ncols()).map(|k| a_cc.col_nnz(k) as u64 * a.row_nnz(k) as u64).sum();
    ep / cfg.total_pes().max(1)
}

/// Per-workload record of completed points, frozen between executor rounds,
/// consulted by the dominance early-abort (see module docs for soundness).
#[derive(Debug, Default)]
pub struct FrontierTracker {
    completed: HashMap<String, Vec<(u64, f64, f64)>>,
}

impl FrontierTracker {
    /// Records one completed point's (cycles, power, area) under its
    /// workload label.
    pub fn record(&mut self, workload: &str, cycles: u64, power_w: f64, area_mm2: f64) {
        self.completed
            .entry(workload.to_string())
            .or_default()
            .push((cycles, power_w, area_mm2));
    }

    /// Records a completed point from its metrics object.
    pub fn record_metrics(&mut self, point: &DsePoint, metrics: &Json) {
        let (Some(c), Some(p), Some(ar)) = (
            metrics.get("cycles").and_then(Json::as_u64),
            metrics.get("power_w").and_then(Json::as_f64),
            metrics.get("area_mm2").and_then(Json::as_f64),
        ) else {
            return;
        };
        self.record(&point.workload.label(), c, p, ar);
    }

    /// The abort threshold for a candidate of `workload` whose power is at
    /// least `power_floor_w` and whose area is exactly `area_mm2`: the
    /// fewest cycles among completed same-workload points that are no worse
    /// on both other axes. A candidate whose cycle lower bound strictly
    /// exceeds this is Pareto-dominated no matter how it finishes.
    pub fn abort_threshold(
        &self,
        workload: &str,
        power_floor_w: f64,
        area_mm2: f64,
    ) -> Option<u64> {
        self.completed
            .get(workload)?
            .iter()
            .filter(|(_, p, ar)| *p <= power_floor_w && *ar <= area_mm2)
            .map(|(c, _, _)| *c)
            .min()
    }
}

/// FNV-1a over a little-endian u64 — the deterministic validation-sample
/// selector (`fnv64(index) % validate_every == 0`).
fn fnv64(x: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in x.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One validated point.
#[derive(Debug, Clone)]
pub struct ValidationSample {
    /// Point index in expansion order.
    pub index: usize,
    /// Machine kind tag.
    pub machine: String,
    /// `"calibration"` or `"holdout"`.
    pub role: String,
    /// Interval-tier cycle estimate (raw, uncalibrated).
    pub est_cycles: u64,
    /// Full-fidelity cycles.
    pub full_cycles: u64,
    /// The point's own error bar (holdout only; 0 for calibration).
    pub bar: f64,
    /// Relative error of the *calibrated* estimate against full.
    pub calibrated_err: f64,
    /// `|calibrated_err| <= bar` (holdout only; true for calibration).
    pub within: bool,
    /// Whether the full-fidelity result came from the memo cache.
    pub full_cached: bool,
}

/// Outcome of [`validate_interval`].
#[derive(Debug, Clone, Default)]
pub struct TierValidation {
    /// Points validated (calibration + holdout).
    pub validated: usize,
    /// Per-machine calibration: (machine tag, factor `full/est`, relative
    /// spread of the calibration ratios).
    pub calibration: Vec<(String, f64, f64)>,
    /// Median `|calibrated_err|` over the holdout half.
    pub median_abs_err: f64,
    /// Fraction of holdout points whose calibrated error lies within their
    /// own bar.
    pub within_bars_frac: f64,
    /// Wall seconds spent on full simulations run (not recalled) here —
    /// the measured cost basis for the full tier.
    pub full_wall_s: f64,
    /// Number of full simulations actually run (timed).
    pub full_timed: usize,
    /// Per-point details.
    pub samples: Vec<ValidationSample>,
}

impl TierValidation {
    /// Fixed-order JSON for the harness's tier report artifact.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("validated".into(), Json::UInt(self.validated as u64)),
            (
                "calibration".into(),
                Json::Arr(
                    self.calibration
                        .iter()
                        .map(|(m, f, s)| {
                            Json::Obj(vec![
                                ("machine".into(), Json::Str(m.clone())),
                                ("factor".into(), Json::Float(*f)),
                                ("spread".into(), Json::Float(*s)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("median_abs_err".into(), Json::Float(self.median_abs_err)),
            ("within_bars_frac".into(), Json::Float(self.within_bars_frac)),
            ("full_wall_s".into(), Json::Float(self.full_wall_s)),
            ("full_timed".into(), Json::UInt(self.full_timed as u64)),
            (
                "samples".into(),
                Json::Arr(
                    self.samples
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("index".into(), Json::UInt(s.index as u64)),
                                ("machine".into(), Json::Str(s.machine.clone())),
                                ("role".into(), Json::Str(s.role.clone())),
                                ("est_cycles".into(), Json::UInt(s.est_cycles)),
                                ("full_cycles".into(), Json::UInt(s.full_cycles)),
                                ("bar".into(), Json::Float(s.bar)),
                                ("calibrated_err".into(), Json::Float(s.calibrated_err)),
                                ("within".into(), Json::Bool(s.within)),
                                ("full_cached".into(), Json::Bool(s.full_cached)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Median of a non-empty slice (mean of the middle pair for even lengths).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = xs.len();
    if n == 0 {
        0.0
    } else if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

/// Error-bar floor: even a perfectly calibrated estimator keeps a ±3%
/// honesty margin against quantization and cross-window effects.
const BAR_FLOOR: f64 = 0.03;

/// Validates interval-tier outcomes against full-fidelity reruns.
///
/// Selects `Ok` outcomes with `fnv64(index) % validate_every == 0`
/// (deterministic, spec-independent), runs each at full fidelity *through
/// the memo cache* (so reruns are free and the full tier's own sweeps can
/// reuse them), then splits the sample by sorted position: even positions
/// calibrate multiplicative factors — hierarchically, per (machine kind,
/// workload) group with a per-machine fallback — and odd positions are
/// the holdout scored against each point's bar
/// `max(0.03, rel_err + 2 * machine_calibration_spread)`.
///
/// # Errors
///
/// Workload generation or full-simulation failures, and cache I/O.
pub fn validate_interval(
    points: &[DsePoint],
    outcomes: &[PointOutcome],
    cache: &mut SimCache,
    validate_every: usize,
) -> Result<TierValidation, String> {
    let validate_every = validate_every.max(1) as u64;
    let mut picked: Vec<(&DsePoint, u64, f64)> = Vec::new();
    for o in outcomes {
        let PointOutcome::Ok { index, metrics, .. } = o else { continue };
        if fnv64(*index as u64) % validate_every != 0 {
            continue;
        }
        let point = points
            .iter()
            .find(|p| p.index == *index)
            .ok_or("validation outcome without a matching point")?;
        let est = metrics
            .get("cycles")
            .and_then(Json::as_u64)
            .ok_or("interval metrics missing cycles")?;
        let rel_err = metrics
            .get("interval")
            .and_then(|b| b.get("rel_err"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        picked.push((point, est, rel_err));
    }

    let mut out = TierValidation { validated: picked.len(), ..TierValidation::default() };
    if picked.is_empty() {
        out.within_bars_frac = 1.0;
        return Ok(out);
    }

    // Full-fidelity reference for every picked point, through the cache.
    let mut fulls: Vec<(u64, bool)> = Vec::with_capacity(picked.len());
    for (p, _, _) in &picked {
        let seed = p.workload_seed();
        let manifest = p.workload.manifest(seed).to_string_compact();
        let material =
            key_material(&p.config_canonical(), &manifest, p.alpha, EvalTier::Full.tag());
        let cached_cycles = cache
            .lookup(&material)
            .and_then(|m| m.get("cycles"))
            .and_then(Json::as_u64);
        if let Some(c) = cached_cycles {
            fulls.push((c, true));
            continue;
        }
        let a = p.workload.generate(seed)?;
        let t0 = std::time::Instant::now();
        let metrics = simulate_full_tier(p, &a)?;
        out.full_wall_s += t0.elapsed().as_secs_f64();
        out.full_timed += 1;
        let cycles = metrics
            .get("cycles")
            .and_then(Json::as_u64)
            .ok_or("full metrics missing cycles")?;
        cache
            .insert(&material, metrics)
            .map_err(|e| format!("cache append: {e}"))?;
        fulls.push((cycles, false));
    }

    // Even sorted positions calibrate, odd positions hold out. `picked`
    // is already in index order because `outcomes` is. Factors are fitted
    // hierarchically: the finest (machine, workload) group with
    // calibration data wins — the estimator's residual bias is workload-
    // systematic (regime effects like hub skew), and it transfers across
    // the config axes the DSE actually sweeps — falling back to the
    // machine-wide factor for workloads never calibrated. Bars always use
    // the machine-wide spread, which stays conservative once the group
    // factor has removed the workload-systematic component.
    let mut ratios_by_machine: HashMap<String, Vec<f64>> = HashMap::new();
    let mut ratios_by_group: HashMap<(String, String), Vec<f64>> = HashMap::new();
    for (pos, ((p, est, _), (full, _))) in picked.iter().zip(&fulls).enumerate() {
        if pos % 2 == 0 && *est > 0 {
            let tag = format!("{:?}", p.config.machine);
            let r = *full as f64 / *est as f64;
            ratios_by_machine.entry(tag.clone()).or_default().push(r);
            ratios_by_group.entry((tag, p.workload.label())).or_default().push(r);
        }
    }
    let mut tags: Vec<String> = ratios_by_machine.keys().cloned().collect();
    tags.sort();
    let mut factors: HashMap<String, (f64, f64)> = HashMap::new();
    for tag in &tags {
        let rs = ratios_by_machine.get_mut(tag).unwrap();
        let med = median(rs);
        let mut devs: Vec<f64> =
            rs.iter().map(|r| (r / med - 1.0).abs()).collect();
        let spread = median(&mut devs);
        factors.insert(tag.clone(), (med, spread));
        out.calibration.push((tag.clone(), med, spread));
    }
    let mut group_factors: HashMap<(String, String), f64> = HashMap::new();
    let mut gkeys: Vec<(String, String)> = ratios_by_group.keys().cloned().collect();
    gkeys.sort();
    for key in &gkeys {
        let rs = ratios_by_group.get_mut(key).unwrap();
        let med = median(rs);
        let mut devs: Vec<f64> = rs.iter().map(|r| (r / med - 1.0).abs()).collect();
        let gspread = median(&mut devs);
        group_factors.insert(key.clone(), med);
        out.calibration.push((format!("{}/{}", key.0, key.1), med, gspread));
    }

    let mut holdout_errs: Vec<f64> = Vec::new();
    let mut within = 0usize;
    let mut holdout_n = 0usize;
    for (pos, ((p, est, rel_err), (full, cached))) in picked.iter().zip(&fulls).enumerate() {
        let tag = format!("{:?}", p.config.machine);
        let (mfactor, spread) = factors.get(&tag).copied().unwrap_or((1.0, 0.0));
        let factor = group_factors
            .get(&(tag.clone(), p.workload.label()))
            .copied()
            .unwrap_or(mfactor);
        let est_cal = *est as f64 * factor;
        let err = if *full > 0 { (est_cal - *full as f64) / *full as f64 } else { 0.0 };
        let is_holdout = pos % 2 == 1;
        let bar = if is_holdout { (rel_err + 2.0 * spread).max(BAR_FLOOR) } else { 0.0 };
        let ok = !is_holdout || err.abs() <= bar;
        if is_holdout {
            holdout_n += 1;
            holdout_errs.push(err.abs());
            within += ok as usize;
        }
        out.samples.push(ValidationSample {
            index: p.index,
            machine: tag,
            role: if is_holdout { "holdout" } else { "calibration" }.to_string(),
            est_cycles: *est,
            full_cycles: *full,
            bar,
            calibrated_err: err,
            within: ok,
            full_cached: *cached,
        });
    }
    out.median_abs_err = if holdout_errs.is_empty() {
        // Degenerate tiny samples: fall back to calibration residuals.
        let mut all: Vec<f64> =
            out.samples.iter().map(|s| s.calibrated_err.abs()).collect();
        median(&mut all)
    } else {
        median(&mut holdout_errs)
    };
    out.within_bars_frac =
        if holdout_n == 0 { 1.0 } else { within as f64 / holdout_n as f64 };
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_tags_round_trip() {
        for t in [EvalTier::Full, EvalTier::Trace, EvalTier::Interval] {
            assert_eq!(EvalTier::parse(t.tag()), Some(t));
        }
        assert_eq!(EvalTier::parse("nope"), None);
    }

    #[test]
    fn neighborhood_erases_exactly_the_replay_safe_knobs() {
        use crate::knobs;
        let base = OuterSpaceConfig::default();
        for &knob in REPLAY_SAFE_KNOBS {
            assert!(knobs::is_knob(knob), "{knob} is not a sweepable knob");
            // Perturbing a replay-safe knob does not change the neighborhood.
            let mut cfg = base.clone();
            knobs::apply(&mut cfg, knob, 2.0).unwrap();
            assert_eq!(
                neighborhood_config(&cfg).to_json().to_string_compact(),
                neighborhood_config(&base).to_json().to_string_compact(),
                "{knob} should be erased by the neighborhood"
            );
        }
        // Perturbing a schedule-affecting knob *does* change it.
        let mut cfg = base.clone();
        knobs::apply(&mut cfg, "n_tiles", 4.0).unwrap();
        assert_ne!(
            neighborhood_config(&cfg).to_json().to_string_compact(),
            neighborhood_config(&base).to_json().to_string_compact()
        );
    }

    #[test]
    fn phase_stats_json_round_trips() {
        let s = PhaseStats {
            cycles: 123,
            flops: 456,
            hbm_read_bytes: 7,
            hbm_write_bytes: 8,
            l0_hits: 9,
            l0_misses: 10,
            l1_hits: 11,
            l1_misses: 12,
            work_items: 13,
            active_pes: 14,
            busy_pe_cycles: 15,
            stall_hbm_cycles: 16,
            idle_pe_cycles: 17,
            ..PhaseStats::default()
        };
        let back = phase_from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        assert!(phase_from_json(&Json::Obj(vec![])).is_err(), "cycles is mandatory");
    }

    #[test]
    fn power_floor_is_below_measured_power() {
        let cfg = OuterSpaceConfig::default();
        let floor = power_floor_w(&cfg);
        let paper = AreaPowerModel::tsmc32nm()
            .table6_with_activity(&cfg, &ActivityFactors::paper_defaults())
            .total_power_w();
        assert!(floor > 0.0);
        assert!(floor < paper, "zero-activity floor {floor} vs paper activity {paper}");
    }

    #[test]
    fn frontier_tracker_thresholds_respect_dominance() {
        let mut t = FrontierTracker::default();
        t.record("w", 1000, 10.0, 50.0);
        t.record("w", 800, 12.0, 50.0);
        // Candidate floor power 11 W, area 50: only the 1000-cycle point has
        // power <= 11, so the threshold is 1000, not 800.
        assert_eq!(t.abort_threshold("w", 11.0, 50.0), Some(1000));
        // Power floor below both completed points: the faster one governs.
        assert_eq!(t.abort_threshold("w", 13.0, 50.0), Some(800));
        // Smaller candidate area than any completed point: no dominator.
        assert_eq!(t.abort_threshold("w", 13.0, 40.0), None);
        // Different workload: never compared.
        assert_eq!(t.abort_threshold("x", 13.0, 50.0), None);
    }

    #[test]
    fn validation_selector_is_deterministic() {
        let a: Vec<u64> = (0..100).filter(|i| fnv64(*i) % 4 == 0).collect();
        let b: Vec<u64> = (0..100).filter(|i| fnv64(*i) % 4 == 0).collect();
        assert_eq!(a, b);
        assert!(!a.is_empty() && a.len() < 100, "selector must thin the sample");
    }
}
