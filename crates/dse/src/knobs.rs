//! The knob registry: every `OuterSpaceConfig` field a space spec may sweep,
//! addressed by its JSON field name plus the `system_scale` pseudo-knob for
//! the §8 interposer/torus scaling study.
//!
//! Knob values travel as `f64` (one numeric axis type covers integer sizes,
//! latencies, and the clock); [`apply`] converts and range-checks per knob.
//! Integer knobs round to the nearest integer and reject negatives or values
//! beyond `u32`, so a malformed spec fails loudly at expansion time instead
//! of wrapping inside the simulator.

use outerspace_sim::{MachineKind, OuterSpaceConfig};

/// Every sweepable knob name, in the order reports list them.
pub const KNOBS: &[&str] = &[
    "clock_ghz",
    "n_tiles",
    "pes_per_tile",
    "outstanding_requests",
    "pe_scratchpad_bytes",
    "l0_multiply_bytes",
    "l0_ways",
    "l0_mshrs_multiply",
    "l0_merge_bytes",
    "merge_scratchpad_bytes",
    "l0_mshrs_merge",
    "merge_active_pes_per_tile",
    "l1_bytes",
    "l1_ways",
    "n_l1",
    "l1_mshrs",
    "block_bytes",
    "hbm_channels",
    "hbm_channel_mb_per_sec",
    "hbm_latency_min_ns",
    "hbm_latency_max_ns",
    "l0_hit_cycles",
    "l1_hit_cycles",
    "xbar_cycles",
    "machine_model",
    "merge_tree_ways",
    "sparch_mul_pes",
    "system_scale",
];

/// True when `knob` names a sweepable parameter.
pub fn is_knob(knob: &str) -> bool {
    KNOBS.contains(&knob)
}

fn as_u32(knob: &str, v: f64) -> Result<u32, String> {
    let r = v.round();
    if !v.is_finite() || r < 0.0 || r > u32::MAX as f64 {
        return Err(format!("knob '{knob}': {v} is outside the u32 range"));
    }
    Ok(r as u32)
}

fn as_u64(knob: &str, v: f64) -> Result<u64, String> {
    let r = v.round();
    if !v.is_finite() || r < 0.0 || r >= u64::MAX as f64 {
        return Err(format!("knob '{knob}': {v} is outside the u64 range"));
    }
    Ok(r as u64)
}

/// Applies one knob value to `cfg`.
///
/// `system_scale` is special-cased: `1` keeps the single-chip baseline, `4`
/// builds the §8 silicon-interposed chip, and `4 × nodes` (a power of two)
/// builds an interposed chip torus — matching the §8 scaling-study lineup.
/// It must be applied after the plain field knobs so the scaling multiplies
/// the swept (not default) resource counts; [`crate::spec`] guarantees that
/// ordering.
///
/// # Errors
///
/// Unknown knob name, non-finite/out-of-range value, or a `system_scale`
/// that is not 1, 4, or 4 × a power of two.
pub fn apply(cfg: &mut OuterSpaceConfig, knob: &str, v: f64) -> Result<(), String> {
    match knob {
        "clock_ghz" => cfg.clock_ghz = v,
        "n_tiles" => cfg.n_tiles = as_u32(knob, v)?,
        "pes_per_tile" => cfg.pes_per_tile = as_u32(knob, v)?,
        "outstanding_requests" => cfg.outstanding_requests = as_u32(knob, v)?,
        "pe_scratchpad_bytes" => cfg.pe_scratchpad_bytes = as_u32(knob, v)?,
        "l0_multiply_bytes" => cfg.l0_multiply_bytes = as_u32(knob, v)?,
        "l0_ways" => cfg.l0_ways = as_u32(knob, v)?,
        "l0_mshrs_multiply" => cfg.l0_mshrs_multiply = as_u32(knob, v)?,
        "l0_merge_bytes" => cfg.l0_merge_bytes = as_u32(knob, v)?,
        "merge_scratchpad_bytes" => cfg.merge_scratchpad_bytes = as_u32(knob, v)?,
        "l0_mshrs_merge" => cfg.l0_mshrs_merge = as_u32(knob, v)?,
        "merge_active_pes_per_tile" => cfg.merge_active_pes_per_tile = as_u32(knob, v)?,
        "l1_bytes" => cfg.l1_bytes = as_u32(knob, v)?,
        "l1_ways" => cfg.l1_ways = as_u32(knob, v)?,
        "n_l1" => cfg.n_l1 = as_u32(knob, v)?,
        "l1_mshrs" => cfg.l1_mshrs = as_u32(knob, v)?,
        "block_bytes" => cfg.block_bytes = as_u32(knob, v)?,
        "hbm_channels" => cfg.hbm_channels = as_u32(knob, v)?,
        "hbm_channel_mb_per_sec" => cfg.hbm_channel_mb_per_sec = as_u32(knob, v)?,
        "hbm_latency_min_ns" => cfg.hbm_latency_min_ns = v,
        "hbm_latency_max_ns" => cfg.hbm_latency_max_ns = v,
        "l0_hit_cycles" => cfg.l0_hit_cycles = as_u64(knob, v)?,
        "l1_hit_cycles" => cfg.l1_hit_cycles = as_u64(knob, v)?,
        "xbar_cycles" => cfg.xbar_cycles = as_u64(knob, v)?,
        "machine_model" => {
            if !v.is_finite() {
                return Err(format!("knob 'machine_model': {v} is not finite"));
            }
            // A numeric axis like every other knob: < 0.5 selects the
            // OuterSPACE baseline, anything else the SpArch analog.
            cfg.machine =
                if v < 0.5 { MachineKind::OuterSpace } else { MachineKind::SpArch };
        }
        "merge_tree_ways" => cfg.merge_tree_ways = as_u32(knob, v)?,
        "sparch_mul_pes" => cfg.sparch_mul_pes = as_u32(knob, v)?,
        "system_scale" => {
            let s = as_u32(knob, v)?;
            match s {
                1 => {}
                4 => *cfg = cfg.interposed_4x(),
                n if n >= 8 && n % 4 == 0 && (n / 4).is_power_of_two() => {
                    *cfg = cfg.torus(n / 4);
                }
                other => {
                    return Err(format!(
                        "knob 'system_scale': {other} is not 1, 4, or 4 x a power of two"
                    ))
                }
            }
        }
        other => return Err(format!("unknown knob '{other}'")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_knob_applies() {
        for &k in KNOBS {
            let mut cfg = OuterSpaceConfig::default();
            // 4.0 is in-range for every knob, including system_scale.
            apply(&mut cfg, k, 4.0).unwrap_or_else(|e| panic!("knob {k}: {e}"));
        }
    }

    #[test]
    fn plain_field_knob_lands_in_config() {
        let mut cfg = OuterSpaceConfig::default();
        apply(&mut cfg, "n_tiles", 32.0).unwrap();
        apply(&mut cfg, "clock_ghz", 2.0).unwrap();
        assert_eq!(cfg.n_tiles, 32);
        assert_eq!(cfg.clock_ghz, 2.0);
    }

    #[test]
    fn system_scale_matches_sec8_lineup() {
        let base = OuterSpaceConfig::default();
        let mut c4 = base.clone();
        apply(&mut c4, "system_scale", 4.0).unwrap();
        assert_eq!(c4, base.interposed_4x());
        let mut c16 = base.clone();
        apply(&mut c16, "system_scale", 16.0).unwrap();
        assert_eq!(c16, base.torus(4));
        let mut c64 = base.clone();
        apply(&mut c64, "system_scale", 64.0).unwrap();
        assert_eq!(c64, base.torus(16));
    }

    #[test]
    fn machine_model_knob_switches_machines() {
        let mut cfg = OuterSpaceConfig::default();
        apply(&mut cfg, "machine_model", 1.0).unwrap();
        assert_eq!(cfg.machine, MachineKind::SpArch);
        apply(&mut cfg, "machine_model", 0.0).unwrap();
        assert_eq!(cfg.machine, MachineKind::OuterSpace);
        apply(&mut cfg, "merge_tree_ways", 16.0).unwrap();
        apply(&mut cfg, "sparch_mul_pes", 32.0).unwrap();
        assert_eq!(cfg.merge_tree_ways, 16);
        assert_eq!(cfg.sparch_mul_pes, 32);
        assert!(apply(&mut cfg, "machine_model", f64::NAN).is_err());
    }

    #[test]
    fn rejects_bad_values_and_unknown_knobs() {
        let mut cfg = OuterSpaceConfig::default();
        assert!(apply(&mut cfg, "n_tiles", -1.0).is_err());
        assert!(apply(&mut cfg, "n_tiles", f64::NAN).is_err());
        assert!(apply(&mut cfg, "n_tiles", 2.0 * u32::MAX as f64).is_err());
        assert!(apply(&mut cfg, "system_scale", 6.0).is_err());
        assert!(apply(&mut cfg, "warp_core_temperature", 1.0).is_err());
        assert!(!is_knob("warp_core_temperature"));
        assert!(is_knob("hbm_channels"));
    }
}
