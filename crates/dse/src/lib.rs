//! Design-space exploration (DSE) for the OuterSPACE simulator.
//!
//! The paper reports one design point — Table 2's 16×16-PE, 16-channel HBM
//! chip — but nearly every argument in it (the reconfigurable cache, the
//! α-allocation policy, the §8 scaling projections) is really a claim about
//! the *neighbourhood* of that point. This crate makes the neighbourhood
//! first-class:
//!
//! * [`spec`] — declarative parameter spaces: grid, log-grid, and seeded
//!   random sampling over [`OuterSpaceConfig`](outerspace_sim::OuterSpaceConfig)
//!   knobs ([`knobs`]), crossed with workload axes from `outerspace-gen`
//!   and an optional allocation-α axis. Three spaces ship built in: the CI
//!   `smoke` grid, the §7.3 `sec73_alpha` sweep, and the §8 `sec8_scaling`
//!   study.
//! * [`executor`] — a work-stealing parallel sweep over the expanded
//!   points; each point runs through the sweep's evaluation tier and is
//!   priced by the Table 6 area/power model.
//! * [`tiers`] — tiered fast-path evaluation: full-fidelity simulation,
//!   trace-replay what-if within config neighborhoods, and sampled-window
//!   interval estimation with validated error bars, plus the dominance
//!   early-abort that kills Pareto-dominated points mid-flight (explicitly
//!   counted, never silent).
//! * [`cache`] — content-addressed memoization keyed on (code-version salt,
//!   evaluation tier, canonical config, workload manifest, α): re-runs only
//!   simulate points whose inputs changed, a crash mid-sweep costs at most
//!   one point, and a fast-path estimate can never alias a full result.
//! * [`pareto`] — the Pareto frontier over {cycles, power, area}, per-knob
//!   ln–ln sensitivity slopes, and the best config per workload.
//!
//! Everything downstream of the RNG seed is deterministic, and reports are
//! emitted in fixed field order — two runs of the same spec and seed produce
//! byte-identical Pareto files, which CI asserts. The `dse` binary in
//! `outerspace-bench` drives this crate from the command line.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod executor;
pub mod knobs;
pub mod pareto;
pub mod spec;
pub mod tiers;

pub use cache::{MemoMap, SimCache, TraceStore};
pub use executor::{run_sweep, run_sweep_opts, PointOutcome, SweepResult};
pub use pareto::{analyze, DefaultStatus, ParetoReport};
pub use spec::{Axis, AxisKind, DsePoint, SpaceSpec, WorkloadSpec};
pub use tiers::{
    validate_interval, EvalTier, FrontierTracker, SweepOptions, TierValidation,
    ValidationSample,
};
