//! Declarative parameter-space specs: which knobs to sweep, over which
//! values, against which workloads — plus expansion into concrete
//! [`DsePoint`]s by full cross-product or seeded random sampling.
//!
//! A spec is plain JSON:
//!
//! ```json
//! {
//!   "name": "smoke",
//!   "axes": [
//!     {"knob": "n_tiles", "values": [8, 16]},
//!     {"knob": "l0_multiply_bytes", "log2": {"from": 13, "to": 14}},
//!     {"knob": "hbm_channel_mb_per_sec", "range": {"min": 2000, "max": 16000}}
//!   ],
//!   "workloads": [{"kind": "uniform", "n": 96, "nnz": 700}],
//!   "alphas": [1.0, 2.0],
//!   "samples": 0
//! }
//! ```
//!
//! * `values` — an explicit grid;
//! * `log2` — the powers of two `2^from ..= 2^to` (a log-grid);
//! * `range` — a continuous interval, sampled only in random mode;
//! * `samples = 0` — full cross-product of all grid axes × workloads ×
//!   alphas (`range` axes are rejected: their cross-product is not finite);
//! * `samples = N` — N points drawn by seeded uniform sampling over every
//!   axis (grid axes draw one of their values, `range` axes a uniform
//!   point), deterministic in the sweep seed.
//!
//! Four specs ship with the crate (`SpaceSpec::bundled`): `smoke` (the CI
//! determinism gate), `sec73_alpha` (the §7.3 allocation-α sweep),
//! `sec8_scaling` (the §8 interposer/torus scaling study), and
//! `sparch_vs_ospace` (the OuterSPACE-vs-SpArch machine-model frontier).

use outerspace_gen::{powerlaw, rmat, suite, uniform, Rng, SmallRng};
use outerspace_json::{Json, ToJson};
use outerspace_sim::OuterSpaceConfig;
use outerspace_sparse::Csr;

use crate::knobs;

/// How one axis produces values.
#[derive(Debug, Clone, PartialEq)]
pub enum AxisKind {
    /// Explicit grid of values.
    Values(Vec<f64>),
    /// Log-grid: the powers of two `2^from ..= 2^to`.
    Log2 {
        /// Smallest exponent.
        from: u32,
        /// Largest exponent (inclusive).
        to: u32,
    },
    /// Continuous interval, usable only with random sampling.
    Range {
        /// Lower bound (inclusive).
        min: f64,
        /// Upper bound (inclusive).
        max: f64,
    },
}

/// One swept knob.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// Field of [`OuterSpaceConfig`] (or the `system_scale` pseudo-knob).
    pub knob: String,
    /// The values it takes.
    pub kind: AxisKind,
}

impl Axis {
    /// The finite grid of this axis, or `None` for a continuous range.
    pub fn grid(&self) -> Option<Vec<f64>> {
        match &self.kind {
            AxisKind::Values(v) => Some(v.clone()),
            AxisKind::Log2 { from, to } => {
                Some((*from..=*to).map(|e| (1u64 << e.min(63)) as f64).collect())
            }
            AxisKind::Range { .. } => None,
        }
    }

    fn sample(&self, rng: &mut SmallRng) -> f64 {
        match &self.kind {
            AxisKind::Range { min, max } => min + (max - min) * rng.gen::<f64>(),
            _ => {
                let grid = self.grid().expect("grid axes have grids");
                grid[rng.gen_range(0usize..grid.len())]
            }
        }
    }

    fn to_json(&self) -> Json {
        let kind = match &self.kind {
            AxisKind::Values(v) => ("values".to_string(), v.to_json()),
            AxisKind::Log2 { from, to } => (
                "log2".to_string(),
                Json::Obj(vec![
                    ("from".into(), Json::UInt(*from as u64)),
                    ("to".into(), Json::UInt(*to as u64)),
                ]),
            ),
            AxisKind::Range { min, max } => (
                "range".to_string(),
                Json::Obj(vec![
                    ("min".into(), Json::Float(*min)),
                    ("max".into(), Json::Float(*max)),
                ]),
            ),
        };
        Json::Obj(vec![("knob".into(), Json::Str(self.knob.clone())), kind])
    }

    fn from_json(j: &Json) -> Result<Axis, String> {
        let knob = j
            .get("knob")
            .and_then(Json::as_str)
            .ok_or("axis needs a 'knob' string")?
            .to_string();
        if !knobs::is_knob(&knob) {
            return Err(format!("axis sweeps unknown knob '{knob}'"));
        }
        let kind = if let Some(vals) = j.get("values").and_then(Json::as_array) {
            let vs: Option<Vec<f64>> = vals.iter().map(Json::as_f64).collect();
            let vs = vs.ok_or_else(|| format!("axis '{knob}': non-numeric grid value"))?;
            if vs.is_empty() {
                return Err(format!("axis '{knob}': empty grid"));
            }
            AxisKind::Values(vs)
        } else if let Some(l) = j.get("log2") {
            let from = l.get("from").and_then(Json::as_u64);
            let to = l.get("to").and_then(Json::as_u64);
            match (from, to) {
                (Some(f), Some(t)) if f <= t && t < 64 => {
                    AxisKind::Log2 { from: f as u32, to: t as u32 }
                }
                _ => return Err(format!("axis '{knob}': log2 needs from <= to < 64")),
            }
        } else if let Some(r) = j.get("range") {
            let min = r.get("min").and_then(Json::as_f64);
            let max = r.get("max").and_then(Json::as_f64);
            match (min, max) {
                (Some(min), Some(max)) if min.is_finite() && max.is_finite() && min <= max => {
                    AxisKind::Range { min, max }
                }
                _ => return Err(format!("axis '{knob}': range needs finite min <= max")),
            }
        } else {
            return Err(format!("axis '{knob}': needs 'values', 'log2', or 'range'"));
        };
        Ok(Axis { knob, kind })
    }
}

/// A workload axis: what matrix each point multiplies (`C = A × A`).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Generator family: `uniform`, `rmat`, `powerlaw`, `suite`, or `mtx`
    /// (a bundled Matrix Market fixture — a real parsed matrix, not a
    /// synthetic generator).
    pub kind: String,
    /// Table 4 matrix name (suite kind) or bundled fixture name (mtx kind);
    /// empty otherwise.
    pub name: String,
    /// Square dimension (synthetic kinds).
    pub n: u32,
    /// Non-zero target (synthetic kinds).
    pub nnz: usize,
    /// Suite workload divisor (suite kind; `generate_scaled` semantics).
    pub scale: u32,
}

impl WorkloadSpec {
    /// Stable human label used in reports and the per-workload ranking.
    pub fn label(&self) -> String {
        if self.kind == "suite" {
            format!("suite:{}/{}", self.name, self.scale)
        } else if self.kind == "mtx" {
            format!("mtx:{}", self.name)
        } else {
            format!("{}:{}x{}", self.kind, self.n, self.nnz)
        }
    }

    /// Shrinks the workload by `divisor` (for `--scale` / smoke runs):
    /// synthetic kinds divide dimension and nnz, suite kinds multiply the
    /// suite divisor. Deterministic and reflected in [`WorkloadSpec::label`],
    /// so scaled and unscaled sweeps never share cache entries.
    pub fn scaled(&self, divisor: u32) -> WorkloadSpec {
        let mut w = self.clone();
        // A fixture is a fixed real matrix (already small): scaling is a
        // no-op rather than a corruption of its manifest.
        if divisor <= 1 || w.kind == "mtx" {
            return w;
        }
        if w.kind == "suite" {
            w.scale = w.scale.saturating_mul(divisor);
        } else {
            w.n = (w.n / divisor).max(32);
            w.nnz = (w.nnz / divisor as usize).max(w.n as usize);
        }
        w
    }

    /// Synthesizes the matrix. Deterministic in `seed`.
    ///
    /// # Errors
    ///
    /// Unknown generator kind or a suite name missing from Table 4.
    pub fn generate(&self, seed: u64) -> Result<Csr, String> {
        match self.kind.as_str() {
            "uniform" => Ok(uniform::matrix(self.n, self.n, self.nnz, seed)),
            "rmat" => Ok(rmat::graph500(self.n, self.nnz, seed)),
            "powerlaw" => Ok(powerlaw::graph(self.n, self.nnz, seed)),
            "suite" => {
                let e = suite::by_name(&self.name)
                    .ok_or_else(|| format!("suite matrix '{}' not in Table 4", self.name))?;
                if self.scale == 0 || e.dim / self.scale == 0 {
                    return Err(format!("scale {} collapses {}", self.scale, self.name));
                }
                Ok(e.generate_scaled(self.scale, seed))
            }
            "mtx" => {
                let f = suite::fixture_by_name(&self.name)
                    .ok_or_else(|| format!("fixture '{}' not in the bundled corpus", self.name))?;
                Ok(f.load())
            }
            other => Err(format!("unknown workload kind '{other}'")),
        }
    }

    /// Canonical manifest (part of every cache key): the full generator
    /// identity plus the seed actually used.
    pub fn manifest(&self, seed: u64) -> Json {
        Json::Obj(vec![
            ("kind".into(), Json::Str(self.kind.clone())),
            ("name".into(), Json::Str(self.name.clone())),
            ("n".into(), Json::UInt(self.n as u64)),
            ("nnz".into(), Json::UInt(self.nnz as u64)),
            ("scale".into(), Json::UInt(self.scale as u64)),
            ("seed".into(), Json::UInt(seed)),
        ])
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("kind".into(), Json::Str(self.kind.clone())),
            ("name".into(), Json::Str(self.name.clone())),
            ("n".into(), Json::UInt(self.n as u64)),
            ("nnz".into(), Json::UInt(self.nnz as u64)),
            ("scale".into(), Json::UInt(self.scale as u64)),
        ])
    }

    fn from_json(j: &Json) -> Result<WorkloadSpec, String> {
        let kind = j
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("workload needs a 'kind' string")?
            .to_string();
        let w = WorkloadSpec {
            kind,
            name: j.get("name").and_then(Json::as_str).unwrap_or("").to_string(),
            n: j.get("n").and_then(Json::as_u64).unwrap_or(0) as u32,
            nnz: j.get("nnz").and_then(Json::as_u64).unwrap_or(0) as usize,
            scale: j.get("scale").and_then(Json::as_u64).unwrap_or(1) as u32,
        };
        match w.kind.as_str() {
            "suite" if w.name.is_empty() => Err("suite workload needs a 'name'".into()),
            "mtx" if w.name.is_empty() => Err("mtx workload needs a 'name'".into()),
            "uniform" | "rmat" | "powerlaw" if w.n == 0 || w.nnz == 0 => {
                Err(format!("{} workload needs n > 0 and nnz > 0", w.kind))
            }
            "suite" | "uniform" | "rmat" | "powerlaw" | "mtx" => Ok(w),
            other => Err(format!("unknown workload kind '{other}'")),
        }
    }
}

/// A full parameter-space specification.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceSpec {
    /// Spec name (artifact basenames derive from it).
    pub name: String,
    /// Swept config knobs.
    pub axes: Vec<Axis>,
    /// Workload axis (at least one).
    pub workloads: Vec<WorkloadSpec>,
    /// Allocation-α axis (§5.5/§7.3); empty = skip allocation analysis.
    pub alphas: Vec<f64>,
    /// Default sample count; 0 = full grid cross-product.
    pub samples: usize,
}

impl SpaceSpec {
    /// Serializes the spec (the inverse of [`SpaceSpec::from_json`]).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("axes".into(), Json::Arr(self.axes.iter().map(Axis::to_json).collect())),
            (
                "workloads".into(),
                Json::Arr(self.workloads.iter().map(WorkloadSpec::to_json).collect()),
            ),
            ("alphas".into(), self.alphas.to_json()),
            ("samples".into(), Json::UInt(self.samples as u64)),
        ])
    }

    /// Decodes a spec document.
    ///
    /// # Errors
    ///
    /// Human-readable description of the first malformed field.
    pub fn from_json(j: &Json) -> Result<SpaceSpec, String> {
        let name = j
            .get("name")
            .and_then(Json::as_str)
            .ok_or("spec needs a 'name' string")?
            .to_string();
        let axes = j
            .get("axes")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
            .map(Axis::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let workloads = j
            .get("workloads")
            .and_then(Json::as_array)
            .ok_or("spec needs a 'workloads' array")?
            .iter()
            .map(WorkloadSpec::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if workloads.is_empty() {
            return Err("spec needs at least one workload".into());
        }
        let alphas = j
            .get("alphas")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
            .map(|v| v.as_f64().ok_or("non-numeric alpha"))
            .collect::<Result<Vec<_>, _>>()?;
        if alphas.iter().any(|&a| !a.is_finite() || a <= 0.0) {
            return Err("alphas must be positive and finite".into());
        }
        let samples = j.get("samples").and_then(Json::as_u64).unwrap_or(0) as usize;
        Ok(SpaceSpec { name, axes, workloads, alphas, samples })
    }

    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// Parse errors or malformed fields, as [`SpaceSpec::from_json`].
    pub fn parse_str(text: &str) -> Result<SpaceSpec, String> {
        let j = outerspace_json::parse(text).map_err(|e| format!("spec is not JSON: {e}"))?;
        SpaceSpec::from_json(&j)
    }

    /// The specs bundled with the crate: `smoke`, `sec73_alpha`,
    /// `sec8_scaling`, `sparch_vs_ospace`, `fixtures`.
    pub fn bundled(name: &str) -> Option<SpaceSpec> {
        let text = match name {
            "smoke" => include_str!("../specs/smoke.json"),
            "sec73_alpha" => include_str!("../specs/sec73_alpha.json"),
            "sec8_scaling" => include_str!("../specs/sec8_scaling.json"),
            "sparch_vs_ospace" => include_str!("../specs/sparch_vs_ospace.json"),
            "fixtures" => include_str!("../specs/fixtures.json"),
            _ => return None,
        };
        Some(SpaceSpec::parse_str(text).expect("bundled specs are valid"))
    }

    /// Names of the bundled specs.
    pub const BUNDLED: &'static [&'static str] =
        &["smoke", "sec73_alpha", "sec8_scaling", "sparch_vs_ospace", "fixtures"];

    /// Expands the spec into concrete points.
    ///
    /// `samples` overrides the spec's own `samples` field when `Some`; the
    /// effective value selects grid (0) or random (N) mode. `seed` drives
    /// both the sampler and, ultimately, workload synthesis. Knob axes are
    /// applied in spec order with `system_scale` forced last, so scaling
    /// multiplies the swept resource counts.
    ///
    /// # Errors
    ///
    /// A `range` axis in grid mode, a knob value out of range, or an empty
    /// expansion.
    pub fn expand(&self, samples: Option<usize>, seed: u64) -> Result<Vec<DsePoint>, String> {
        let n_samples = samples.unwrap_or(self.samples);
        let assignments: Vec<Vec<(String, f64)>> = if n_samples == 0 {
            let mut grids = Vec::with_capacity(self.axes.len());
            for ax in &self.axes {
                let g = ax.grid().ok_or_else(|| {
                    format!(
                        "axis '{}' is a continuous range: grid expansion needs --samples",
                        ax.knob
                    )
                })?;
                grids.push((ax.knob.clone(), g));
            }
            let mut combos: Vec<Vec<(String, f64)>> = vec![Vec::new()];
            for (knob, grid) in &grids {
                let mut next = Vec::with_capacity(combos.len() * grid.len());
                for combo in &combos {
                    for &v in grid {
                        let mut c = combo.clone();
                        c.push((knob.clone(), v));
                        next.push(c);
                    }
                }
                combos = next;
            }
            combos
        } else {
            // Decorrelate the sampler stream from workload-synthesis streams
            // that also derive from the sweep seed.
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xd5e5_eed0_5a3c_e001);
            (0..n_samples)
                .map(|_| {
                    self.axes
                        .iter()
                        .map(|ax| (ax.knob.clone(), ax.sample(&mut rng)))
                        .collect()
                })
                .collect()
        };

        let alphas: Vec<Option<f64>> = if self.alphas.is_empty() {
            vec![None]
        } else {
            self.alphas.iter().copied().map(Some).collect()
        };

        let mut points = Vec::new();
        for assignment in &assignments {
            for w in &self.workloads {
                for &alpha in &alphas {
                    let mut cfg = OuterSpaceConfig::default();
                    // Plain knobs first, system_scale last (see above).
                    for (k, v) in assignment.iter().filter(|(k, _)| k != "system_scale") {
                        knobs::apply(&mut cfg, k, *v)?;
                    }
                    for (k, v) in assignment.iter().filter(|(k, _)| k == "system_scale") {
                        knobs::apply(&mut cfg, k, *v)?;
                    }
                    points.push(DsePoint {
                        index: points.len(),
                        config: cfg,
                        knobs: assignment.clone(),
                        workload: w.clone(),
                        alpha,
                    });
                }
            }
        }
        if points.is_empty() {
            return Err("spec expands to zero points".into());
        }
        Ok(points)
    }

    /// Returns a copy with every workload shrunk by `divisor`
    /// (see [`WorkloadSpec::scaled`]).
    pub fn scaled(&self, divisor: u32) -> SpaceSpec {
        let mut s = self.clone();
        s.workloads = s.workloads.iter().map(|w| w.scaled(divisor)).collect();
        s
    }
}

/// One concrete point of an expanded space.
#[derive(Debug, Clone, PartialEq)]
pub struct DsePoint {
    /// Position in expansion order (stable across runs with the same seed).
    pub index: usize,
    /// The fully-applied configuration.
    pub config: OuterSpaceConfig,
    /// The knob assignment that produced it (for sensitivity analysis).
    pub knobs: Vec<(String, f64)>,
    /// The workload this point simulates.
    pub workload: WorkloadSpec,
    /// Allocation-α analyzed alongside the run, when the spec sweeps it.
    pub alpha: Option<f64>,
}

impl DsePoint {
    /// Canonical compact JSON of the configuration — one half of the cache
    /// key, and the config identity used for per-config aggregation.
    pub fn config_canonical(&self) -> String {
        self.config.to_json().to_string_compact()
    }

    /// The knob assignment as a JSON object (reports).
    pub fn knobs_json(&self) -> Json {
        Json::Obj(
            self.knobs
                .iter()
                .map(|(k, v)| (k.clone(), Json::Float(*v)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(text: &str) -> SpaceSpec {
        SpaceSpec::parse_str(text).unwrap()
    }

    #[test]
    fn grid_expansion_is_a_cross_product() {
        let s = spec(
            r#"{"name":"t","axes":[
                {"knob":"n_tiles","values":[8,16]},
                {"knob":"l0_multiply_bytes","log2":{"from":13,"to":14}}],
              "workloads":[{"kind":"uniform","n":64,"nnz":300}]}"#,
        );
        let pts = s.expand(None, 1).unwrap();
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0].index, 0);
        let tiles: Vec<u32> = pts.iter().map(|p| p.config.n_tiles).collect();
        assert_eq!(tiles, vec![8, 8, 16, 16]);
        assert!(pts.iter().any(|p| p.config.l0_multiply_bytes == 8192));
    }

    #[test]
    fn random_sampling_is_deterministic_in_seed() {
        let s = spec(
            r#"{"name":"t","axes":[
                {"knob":"n_tiles","values":[4,8,16,32]},
                {"knob":"hbm_channel_mb_per_sec","range":{"min":2000,"max":16000}}],
              "workloads":[{"kind":"uniform","n":64,"nnz":300}]}"#,
        );
        let a = s.expand(Some(20), 7).unwrap();
        let b = s.expand(Some(20), 7).unwrap();
        let c = s.expand(Some(20), 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 20);
        // Range axis produced in-bounds values.
        assert!(a
            .iter()
            .all(|p| (2000..=16000).contains(&p.config.hbm_channel_mb_per_sec)));
    }

    #[test]
    fn range_axis_requires_samples_in_grid_mode() {
        let s = spec(
            r#"{"name":"t","axes":[{"knob":"clock_ghz","range":{"min":1.0,"max":2.0}}],
              "workloads":[{"kind":"uniform","n":64,"nnz":300}]}"#,
        );
        assert!(s.expand(None, 1).unwrap_err().contains("--samples"));
        assert_eq!(s.expand(Some(5), 1).unwrap().len(), 5);
    }

    #[test]
    fn alpha_axis_multiplies_points() {
        let s = spec(
            r#"{"name":"t","axes":[],"alphas":[1.0,2.0,4.0],
              "workloads":[{"kind":"uniform","n":64,"nnz":300}]}"#,
        );
        let pts = s.expand(None, 1).unwrap();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[2].alpha, Some(4.0));
    }

    #[test]
    fn spec_round_trips_through_json() {
        let s = spec(
            r#"{"name":"rt","axes":[
                {"knob":"n_tiles","values":[8,16]},
                {"knob":"l1_bytes","log2":{"from":12,"to":13}},
                {"knob":"clock_ghz","range":{"min":1.0,"max":2.0}}],
              "workloads":[{"kind":"suite","name":"wiki-Vote","scale":4}],
              "alphas":[2.0],"samples":10}"#,
        );
        let back = SpaceSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn bad_specs_are_rejected_with_reasons() {
        for (text, needle) in [
            (r#"{"axes":[],"workloads":[]}"#, "name"),
            (r#"{"name":"x","workloads":[]}"#, "at least one workload"),
            (
                r#"{"name":"x","axes":[{"knob":"bogus","values":[1]}],
                   "workloads":[{"kind":"uniform","n":8,"nnz":8}]}"#,
                "unknown knob",
            ),
            (
                r#"{"name":"x","axes":[{"knob":"n_tiles","values":[]}],
                   "workloads":[{"kind":"uniform","n":8,"nnz":8}]}"#,
                "empty grid",
            ),
            (
                r#"{"name":"x","axes":[],"workloads":[{"kind":"martian","n":8,"nnz":8}]}"#,
                "unknown workload kind",
            ),
            (
                r#"{"name":"x","axes":[],"alphas":[-1.0],
                   "workloads":[{"kind":"uniform","n":8,"nnz":8}]}"#,
                "positive",
            ),
        ] {
            let err = SpaceSpec::parse_str(text).unwrap_err();
            assert!(err.contains(needle), "{text} -> {err}");
        }
    }

    #[test]
    fn bundled_specs_parse_and_expand() {
        for &name in SpaceSpec::BUNDLED {
            let s = SpaceSpec::bundled(name).unwrap_or_else(|| panic!("missing {name}"));
            let pts = s.expand(None, 42).unwrap();
            assert!(!pts.is_empty(), "{name} expands to zero points");
        }
        assert!(SpaceSpec::bundled("nope").is_none());
        // The CI gate needs >= 64 points and the paper-default config.
        let smoke = SpaceSpec::bundled("smoke").unwrap();
        let pts = smoke.expand(None, 42).unwrap();
        assert!(pts.len() >= 64, "smoke has {} points", pts.len());
        let default_json = OuterSpaceConfig::default().to_json().to_string_compact();
        assert!(
            pts.iter().any(|p| p.config_canonical() == default_json),
            "smoke must include the Table 2 default design point"
        );
    }

    #[test]
    fn workload_scaling_changes_label_and_shrinks() {
        let w = WorkloadSpec {
            kind: "uniform".into(),
            name: String::new(),
            n: 1024,
            nnz: 8192,
            scale: 1,
        };
        let s = w.scaled(4);
        assert_eq!(s.n, 256);
        assert_ne!(w.label(), s.label());
        let suite = WorkloadSpec {
            kind: "suite".into(),
            name: "wiki-Vote".into(),
            n: 0,
            nnz: 0,
            scale: 4,
        };
        assert_eq!(suite.scaled(4).scale, 16);
        assert!(suite.generate(1).is_ok());
    }
}
