//! Structural statistics of sparse matrices.
//!
//! These drive workload characterization in the experiment harness (Table 4
//! reports dimension, `nnz`, and `nnz/row`; Fig. 7's analysis ties speedups
//! to regularity and to power-law row distributions) and let the synthetic
//! stand-in generator verify that generated matrices match their targets.

use crate::{Csr, Index};

/// Summary statistics of a matrix's non-zero structure.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Number of rows.
    pub nrows: Index,
    /// Number of columns.
    pub ncols: Index,
    /// Stored entries.
    pub nnz: usize,
    /// `nnz / (nrows · ncols)`.
    pub density: f64,
    /// Mean entries per row (the paper's `nnzav`).
    pub nnz_per_row_mean: f64,
    /// Maximum entries in any row.
    pub nnz_per_row_max: usize,
    /// Standard deviation of entries per row.
    pub nnz_per_row_std: f64,
    /// Gini coefficient of the per-row nnz distribution — 0 for perfectly
    /// uniform rows, → 1 for extreme skew. Power-law graphs score high.
    pub row_gini: f64,
    /// Fraction of nnz within `bandwidth` of the diagonal (see
    /// [`diagonal_fraction`]); near 1.0 for the "regular" matrices the paper
    /// singles out (filter3D, roadNet-CA).
    pub diagonal_fraction: f64,
    /// Fraction of rows with no entries at all.
    pub empty_row_fraction: f64,
}

/// Computes the [`Profile`] of `m`, using a diagonal band of
/// `max(1, ncols/64)` for [`Profile::diagonal_fraction`].
pub fn profile(m: &Csr) -> Profile {
    let band = ((m.ncols() / 64).max(1)) as i64;
    let row_nnz: Vec<usize> = (0..m.nrows()).map(|r| m.row_nnz(r)).collect();
    let mean = m.nnz_per_row();
    let var = if m.nrows() == 0 {
        0.0
    } else {
        row_nnz.iter().map(|&n| (n as f64 - mean).powi(2)).sum::<f64>() / m.nrows() as f64
    };
    Profile {
        nrows: m.nrows(),
        ncols: m.ncols(),
        nnz: m.nnz(),
        density: m.density(),
        nnz_per_row_mean: mean,
        nnz_per_row_max: row_nnz.iter().copied().max().unwrap_or(0),
        nnz_per_row_std: var.sqrt(),
        row_gini: gini(&row_nnz),
        diagonal_fraction: diagonal_fraction(m, band),
        empty_row_fraction: if m.nrows() == 0 {
            0.0
        } else {
            row_nnz.iter().filter(|&&n| n == 0).count() as f64 / m.nrows() as f64
        },
    }
}

/// Gini coefficient of a distribution of non-negative counts.
///
/// Returns 0.0 for an empty or all-zero distribution.
pub fn gini(counts: &[usize]) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    let total: f64 = counts.iter().map(|&c| c as f64).sum();
    if total == 0.0 {
        return 0.0;
    }
    let mut sorted: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("counts are finite"));
    let n = sorted.len() as f64;
    let weighted: f64 =
        sorted.iter().enumerate().map(|(i, &x)| (i as f64 + 1.0) * x).sum();
    (2.0 * weighted) / (n * total) - (n + 1.0) / n
}

/// Fraction of stored entries `(r, c)` with `|r - c| <= band`.
///
/// "Regular" matrices in the paper's sense (most non-zeros along the
/// diagonal) have a fraction near 1.
pub fn diagonal_fraction(m: &Csr, band: i64) -> f64 {
    if m.nnz() == 0 {
        return 0.0;
    }
    let near = m
        .iter()
        .filter(|&(r, c, _)| (r as i64 - c as i64).abs() <= band)
        .count();
    near as f64 / m.nnz() as f64
}

/// Histogram of per-row nnz in power-of-two buckets:
/// bucket `k` counts rows with `2^(k-1) < nnz <= 2^k` (bucket 0 = empty rows,
/// bucket 1 = exactly 1).
pub fn row_nnz_histogram(m: &Csr) -> Vec<usize> {
    let mut hist = vec![0usize; 2];
    for r in 0..m.nrows() {
        let n = m.row_nnz(r);
        let bucket = if n == 0 {
            0
        } else {
            (usize::BITS - (n - 1).leading_zeros()) as usize + 1
        };
        if bucket >= hist.len() {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Coo, Csr};

    #[test]
    fn gini_of_uniform_is_zero() {
        assert!(gini(&[5, 5, 5, 5]).abs() < 1e-12);
    }

    #[test]
    fn gini_of_concentrated_is_high() {
        let g = gini(&[0, 0, 0, 100]);
        assert!(g > 0.7, "got {g}");
    }

    #[test]
    fn gini_edge_cases() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0]), 0.0);
        assert!(gini(&[7]).abs() < 1e-12);
    }

    #[test]
    fn diagonal_fraction_of_identity_is_one() {
        let eye = Csr::identity(32);
        assert_eq!(diagonal_fraction(&eye, 0), 1.0);
    }

    #[test]
    fn diagonal_fraction_of_antidiagonal_is_low() {
        let mut coo = Coo::new(32, 32);
        for i in 0..32 {
            coo.push(i, 31 - i, 1.0);
        }
        let m = coo.to_csr();
        assert!(diagonal_fraction(&m, 1) < 0.2);
    }

    #[test]
    fn profile_counts_empty_rows() {
        let mut coo = Coo::new(4, 4);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 1.0);
        let p = profile(&coo.to_csr());
        assert_eq!(p.empty_row_fraction, 0.75);
        assert_eq!(p.nnz_per_row_max, 2);
        assert_eq!(p.nnz, 2);
    }

    #[test]
    fn histogram_buckets() {
        let mut coo = Coo::new(4, 16);
        // Row 0: empty; row 1: 1 entry; row 2: 2 entries; row 3: 5 entries.
        coo.push(1, 0, 1.0);
        coo.push(2, 0, 1.0);
        coo.push(2, 1, 1.0);
        for c in 0..5 {
            coo.push(3, c, 1.0);
        }
        let h = row_nnz_histogram(&coo.to_csr());
        assert_eq!(h[0], 1); // empty
        assert_eq!(h[1], 1); // ==1
        assert_eq!(h[2], 1); // ==2
        assert_eq!(h[4], 1); // 5..=8
    }

    #[test]
    fn profile_of_empty_matrix() {
        let p = profile(&Csr::zero(0, 0));
        assert_eq!(p.nnz, 0);
        assert_eq!(p.density, 0.0);
        assert_eq!(p.nnz_per_row_mean, 0.0);
    }
}
