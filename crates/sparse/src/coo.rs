use crate::{Csc, Csr, Dense, Index, SparseError, Value};

/// A sparse matrix in coordinate (triplet) format.
///
/// `Coo` is the construction format: entries may be pushed in any order and
/// duplicates are permitted (they are summed on conversion to a compressed
/// format, matching Matrix Market semantics). All algorithm and simulator
/// code in this workspace operates on [`Csr`] ("CR" in the paper) or
/// [`Csc`] ("CC"); `Coo` exists to build those.
///
/// # Example
///
/// ```
/// use outerspace_sparse::Coo;
///
/// let mut m = Coo::new(2, 2);
/// m.push(0, 1, 2.5);
/// m.push(0, 1, 0.5); // duplicate: summed on compression
/// let csr = m.to_csr();
/// assert_eq!(csr.nnz(), 1);
/// assert_eq!(csr.get(0, 1), 3.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Coo {
    nrows: Index,
    ncols: Index,
    rows: Vec<Index>,
    cols: Vec<Index>,
    vals: Vec<Value>,
}

impl Coo {
    /// Creates an empty `nrows` × `ncols` matrix.
    pub fn new(nrows: Index, ncols: Index) -> Self {
        Coo { nrows, ncols, rows: Vec::new(), cols: Vec::new(), vals: Vec::new() }
    }

    /// Creates an empty matrix with room for `cap` entries.
    pub fn with_capacity(nrows: Index, ncols: Index, cap: usize) -> Self {
        Coo {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Builds a `Coo` from parallel triplet arrays.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if any coordinate is outside
    /// the matrix, and [`SparseError::ShapeMismatch`] if the arrays disagree
    /// in length.
    pub fn from_triplets(
        nrows: Index,
        ncols: Index,
        rows: Vec<Index>,
        cols: Vec<Index>,
        vals: Vec<Value>,
    ) -> Result<Self, SparseError> {
        if rows.len() != cols.len() || rows.len() != vals.len() {
            return Err(SparseError::ShapeMismatch {
                left: (rows.len() as u64, cols.len() as u64),
                right: (vals.len() as u64, 0),
                op: "from_triplets",
            });
        }
        if let Some(&r) = rows.iter().find(|&&r| r >= nrows) {
            return Err(SparseError::IndexOutOfBounds {
                index: r as u64,
                bound: nrows as u64,
                axis: "row",
            });
        }
        if let Some(&c) = cols.iter().find(|&&c| c >= ncols) {
            return Err(SparseError::IndexOutOfBounds {
                index: c as u64,
                bound: ncols as u64,
                axis: "col",
            });
        }
        Ok(Coo { nrows, ncols, rows, cols, vals })
    }

    /// Number of rows.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Number of stored entries, *including* duplicates not yet merged.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Appends an entry.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds — pushing is a hot
    /// construction path, so errors here are programming bugs rather than
    /// recoverable conditions.
    pub fn push(&mut self, row: Index, col: Index, val: Value) {
        assert!(row < self.nrows, "row {row} out of bounds ({} rows)", self.nrows);
        assert!(col < self.ncols, "col {col} out of bounds ({} cols)", self.ncols);
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
    }

    /// Iterates over the stored `(row, col, value)` triplets.
    pub fn iter(&self) -> impl Iterator<Item = (Index, Index, Value)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Converts to CSR, summing duplicate coordinates and dropping entries
    /// whose accumulated value is exactly zero is *not* performed (explicit
    /// zeros are preserved, as in Matrix Market).
    pub fn to_csr(&self) -> Csr {
        // Counting sort by row, then sort each row segment by column and
        // merge duplicates. O(nnz + nrows) + per-row sort.
        let n = self.nrows as usize;
        let mut counts = vec![0usize; n + 1];
        for &r in &self.rows {
            counts[r as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut cols = vec![0 as Index; self.nnz()];
        let mut vals = vec![0.0 as Value; self.nnz()];
        let mut cursor = counts.clone();
        for ((&r, &c), &v) in self.rows.iter().zip(&self.cols).zip(&self.vals) {
            let slot = cursor[r as usize];
            cols[slot] = c;
            vals[slot] = v;
            cursor[r as usize] += 1;
        }
        // Sort each row segment by column index and merge duplicates.
        let mut out_ptr = vec![0usize; n + 1];
        let mut out_cols = Vec::with_capacity(self.nnz());
        let mut out_vals = Vec::with_capacity(self.nnz());
        let mut scratch: Vec<(Index, Value)> = Vec::new();
        for row in 0..n {
            let (lo, hi) = (counts[row], counts[row + 1]);
            scratch.clear();
            scratch.extend(cols[lo..hi].iter().copied().zip(vals[lo..hi].iter().copied()));
            // Stable sort: duplicates keep insertion order, so their values
            // are summed in a deterministic order (floating-point addition
            // is order-sensitive; this keeps mirrored entries bitwise equal).
            scratch.sort_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let (c, mut v) = scratch[i];
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                out_cols.push(c);
                out_vals.push(v);
                i = j;
            }
            out_ptr[row + 1] = out_cols.len();
        }
        // Invariants guaranteed by construction.
        Csr::new(self.nrows, self.ncols, out_ptr, out_cols, out_vals)
            .expect("coo-to-csr construction preserves invariants")
    }

    /// Converts to CSC (via the transpose of the CSR conversion).
    pub fn to_csc(&self) -> Csc {
        let t = Coo {
            nrows: self.ncols,
            ncols: self.nrows,
            rows: self.cols.clone(),
            cols: self.rows.clone(),
            vals: self.vals.clone(),
        };
        t.to_csr().into_csc_transposed()
    }

    /// Converts to a dense matrix (duplicates summed). Intended for tests.
    pub fn to_dense(&self) -> Dense {
        let mut d = Dense::zeros(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            *d.get_mut(r, c) += v;
        }
        d
    }
}

impl Extend<(Index, Index, Value)> for Coo {
    fn extend<T: IntoIterator<Item = (Index, Index, Value)>>(&mut self, iter: T) {
        for (r, c, v) in iter {
            self.push(r, c, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_compresses() {
        let m = Coo::new(4, 5);
        let csr = m.to_csr();
        assert_eq!(csr.nrows(), 4);
        assert_eq!(csr.ncols(), 5);
        assert_eq!(csr.nnz(), 0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut m = Coo::new(3, 3);
        m.push(1, 1, 1.0);
        m.push(1, 1, 2.0);
        m.push(1, 0, 5.0);
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(1, 1), 3.0);
        assert_eq!(csr.get(1, 0), 5.0);
    }

    #[test]
    fn rows_sorted_after_compression() {
        let mut m = Coo::new(2, 8);
        for c in [7u32, 3, 5, 0, 2] {
            m.push(0, c, c as f64);
        }
        let csr = m.to_csr();
        let (cols, _) = csr.row(0);
        assert_eq!(cols, &[0, 2, 3, 5, 7]);
    }

    #[test]
    fn push_out_of_bounds_panics() {
        let result = std::panic::catch_unwind(|| {
            let mut m = Coo::new(2, 2);
            m.push(2, 0, 1.0);
        });
        assert!(result.is_err());
    }

    #[test]
    fn from_triplets_validates() {
        let err = Coo::from_triplets(2, 2, vec![0], vec![5], vec![1.0]).unwrap_err();
        assert!(matches!(err, SparseError::IndexOutOfBounds { axis: "col", .. }));
        let err = Coo::from_triplets(2, 2, vec![0, 1], vec![0], vec![1.0]).unwrap_err();
        assert!(matches!(err, SparseError::ShapeMismatch { .. }));
    }

    #[test]
    fn csc_matches_dense_oracle() {
        let mut m = Coo::new(3, 4);
        m.push(0, 3, 1.0);
        m.push(2, 0, -2.0);
        m.push(1, 1, 4.0);
        m.push(2, 3, 7.0);
        let d = m.to_dense();
        let csc = m.to_csc();
        for r in 0..3 {
            for c in 0..4 {
                assert_eq!(csc.get(r, c), d.get(r, c), "mismatch at ({r},{c})");
            }
        }
    }

    #[test]
    fn extend_works() {
        let mut m = Coo::new(2, 2);
        m.extend(vec![(0, 0, 1.0), (1, 1, 2.0)]);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn explicit_zero_is_preserved() {
        let mut m = Coo::new(1, 1);
        m.push(0, 0, 0.0);
        assert_eq!(m.to_csr().nnz(), 1);
    }
}
