use crate::{Coo, Csr, Index, Value};

/// A dense row-major matrix.
///
/// Used exclusively as a *test oracle*: sparse kernels are verified against
/// straightforward dense arithmetic on small inputs. Not intended for large
/// matrices.
///
/// # Example
///
/// ```
/// use outerspace_sparse::Dense;
///
/// let mut m = Dense::zeros(2, 2);
/// *m.get_mut(0, 1) = 3.0;
/// assert_eq!(m.get(0, 1), 3.0);
/// let c = m.matmul(&m);
/// assert_eq!(c.get(0, 1), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    nrows: Index,
    ncols: Index,
    data: Vec<Value>,
}

impl Dense {
    /// An all-zero `nrows` × `ncols` matrix.
    pub fn zeros(nrows: Index, ncols: Index) -> Self {
        Dense { nrows, ncols, data: vec![0.0; nrows as usize * ncols as usize] }
    }

    /// Builds from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_row_major(nrows: Index, ncols: Index, data: Vec<Value>) -> Self {
        assert_eq!(
            data.len(),
            nrows as usize * ncols as usize,
            "data length must be nrows * ncols"
        );
        Dense { nrows, ncols, data }
    }

    /// Number of rows.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// The value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, row: Index, col: Index) -> Value {
        assert!(row < self.nrows && col < self.ncols, "index out of bounds");
        self.data[row as usize * self.ncols as usize + col as usize]
    }

    /// Mutable access to the value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get_mut(&mut self, row: Index, col: Index) -> &mut Value {
        assert!(row < self.nrows && col < self.ncols, "index out of bounds");
        &mut self.data[row as usize * self.ncols as usize + col as usize]
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows`.
    pub fn row(&self, i: Index) -> &[Value] {
        let w = self.ncols as usize;
        &self.data[i as usize * w..(i as usize + 1) * w]
    }

    /// Dense matrix product `self × rhs` (inner-product formulation, the
    /// classical triple loop).
    ///
    /// # Panics
    ///
    /// Panics if `self.ncols != rhs.nrows`.
    pub fn matmul(&self, rhs: &Dense) -> Dense {
        assert_eq!(self.ncols, rhs.nrows, "inner dimensions must agree");
        let mut out = Dense::zeros(self.nrows, rhs.ncols);
        for i in 0..self.nrows as usize {
            for k in 0..self.ncols as usize {
                let a = self.data[i * self.ncols as usize + k];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k as Index);
                let orow = &mut out.data[i * rhs.ncols as usize..(i + 1) * rhs.ncols as usize];
                for (o, &b) in orow.iter_mut().zip(rrow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Dense matrix-vector product `self × x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn matvec(&self, x: &[Value]) -> Vec<Value> {
        assert_eq!(x.len(), self.ncols as usize, "vector length must equal ncols");
        (0..self.nrows)
            .map(|i| self.row(i).iter().zip(x).map(|(&a, &b)| a * b).sum())
            .collect()
    }

    /// Converts to CSR, dropping exact zeros.
    pub fn to_csr(&self) -> Csr {
        let mut coo = Coo::new(self.nrows, self.ncols);
        for r in 0..self.nrows {
            for c in 0..self.ncols {
                let v = self.get(r, c);
                if v != 0.0 {
                    coo.push(r, c, v);
                }
            }
        }
        coo.to_csr()
    }

    /// True when all entries agree within `tol`.
    pub fn approx_eq(&self, other: &Dense, tol: Value) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.data.iter().zip(&other.data).all(|(a, b)| (a - b).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Dense::from_row_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Dense::from_row_major(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.get(0, 0), 19.0);
        assert_eq!(c.get(0, 1), 22.0);
        assert_eq!(c.get(1, 0), 43.0);
        assert_eq!(c.get(1, 1), 50.0);
    }

    #[test]
    fn matvec_known_product() {
        let a = Dense::from_row_major(2, 3, vec![1.0, 0.0, 2.0, 0.0, 3.0, 0.0]);
        let y = a.matvec(&[1.0, 10.0, 100.0]);
        assert_eq!(y, vec![201.0, 30.0]);
    }

    #[test]
    fn csr_round_trip() {
        let a = Dense::from_row_major(2, 3, vec![1.0, 0.0, 2.0, 0.0, 3.0, 0.0]);
        let csr = a.to_csr();
        assert_eq!(csr.nnz(), 3);
        assert!(csr.to_dense().approx_eq(&a, 0.0));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_checked() {
        let a = Dense::zeros(2, 3);
        let b = Dense::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Dense::from_row_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let eye = Csr::identity(2).to_dense();
        assert!(a.matmul(&eye).approx_eq(&a, 0.0));
        assert!(eye.matmul(&a).approx_eq(&a, 0.0));
    }
}
