//! Sparse matrix substrate for the OuterSPACE reproduction.
//!
//! The OuterSPACE paper (Pal et al., HPCA 2018) stores matrices in the
//! *Compressed Row* (CR) and *Compressed Column* (CC) formats — row (column)
//! pointers into contiguous arrays of column-index/value (row-index/value)
//! pairs. These are structurally identical to the classical CSR/CSC formats,
//! so this crate names the types [`Csr`] and [`Csc`] and the rest of the
//! workspace treats "CR" ≡ [`Csr`], "CC" ≡ [`Csc`].
//!
//! Provided here:
//!
//! * [`Coo`] — coordinate (triplet) format, the usual construction and
//!   interchange format.
//! * [`Csr`] / [`Csc`] — the compressed formats the accelerator operates on.
//! * [`Dense`] — a dense row-major matrix used as a test oracle.
//! * [`io`] — Matrix Market (`.mtx`) reading and writing, so real SuiteSparse
//!   matrices can be fed to the simulator when available.
//! * [`ops`] — reference kernels (Gustavson SpGEMM, SpMV, element-wise ops,
//!   transposition) used as golden models by the algorithm and simulator
//!   crates.
//! * [`stats`] — structural statistics (density, nnz/row distribution, …)
//!   used by the workload generators and the experiment harness.
//!
//! # Example
//!
//! ```
//! use outerspace_sparse::{Coo, Csr, ops};
//!
//! # fn main() -> Result<(), outerspace_sparse::SparseError> {
//! let mut coo = Coo::new(3, 3);
//! coo.push(0, 0, 1.0);
//! coo.push(0, 2, 2.0);
//! coo.push(2, 1, 3.0);
//! let a: Csr = coo.to_csr();
//! let c = ops::spgemm_reference(&a, &a)?;
//! assert_eq!(c.nnz(), 3); // row 0 of C = [1, 6, 2]
//! assert_eq!(c.get(0, 1), 6.0); // a[0,2] * a[2,1] = 2 * 3
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod coo;
mod csc;
mod csr;
mod dense;
mod error;
pub mod io;
pub mod ops;
pub mod stats;
mod vector;

pub use coo::Coo;
pub use csc::Csc;
pub use csr::Csr;
pub use dense::Dense;
pub use error::{DimError, SparseError};
pub use vector::SparseVector;

/// Column/row index type used across the workspace.
///
/// 32-bit indices match the paper's memory-traffic accounting (a
/// double-precision value plus an index is 12 bytes per element) and
/// comfortably cover the largest evaluated matrices (8.4 M rows).
pub type Index = u32;

/// Scalar value type. The paper evaluates double-precision throughput.
pub type Value = f64;
