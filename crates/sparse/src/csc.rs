use crate::{Csr, Index, SparseError, Value};

/// A sparse matrix in Compressed Sparse Column format — the paper's
/// *Compressed Column (CC)* format.
///
/// The dual of [`Csr`]: `col_ptr` delimits, for each column, a contiguous
/// slice of row-index/value pairs in strictly increasing row order.
///
/// In the outer-product algorithm the *first* operand (`A`) is consumed in
/// this format, one column per outer product (§4.1 of the paper).
///
/// # Example
///
/// ```
/// use outerspace_sparse::{Csc, Csr};
///
/// let a = Csr::identity(2).to_csc();
/// assert_eq!(a.col(1).0, &[1]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csc {
    nrows: Index,
    ncols: Index,
    col_ptr: Vec<usize>,
    rows: Vec<Index>,
    vals: Vec<Value>,
}

impl Csc {
    /// Builds a CSC matrix from raw arrays, validating all invariants.
    ///
    /// # Errors
    ///
    /// Mirrors [`Csr::new`]: malformed pointers, out-of-bounds row indices,
    /// or unsorted rows within a column.
    pub fn new(
        nrows: Index,
        ncols: Index,
        col_ptr: Vec<usize>,
        rows: Vec<Index>,
        vals: Vec<Value>,
    ) -> Result<Self, SparseError> {
        // Validate by borrowing the CSR checker on the transposed labelling.
        let as_csr = Csr::new(ncols, nrows, col_ptr, rows, vals)?;
        Ok(as_csr.into_csc_transposed())
    }

    /// Builds a CSC matrix without validating invariants.
    ///
    /// # Safety
    ///
    /// Not memory-unsafe, but all operations assume [`Csc::new`] invariants;
    /// violating them yields wrong results or panics later.
    pub fn from_raw_parts_unchecked(
        nrows: Index,
        ncols: Index,
        col_ptr: Vec<usize>,
        rows: Vec<Index>,
        vals: Vec<Value>,
    ) -> Self {
        Csc { nrows, ncols, col_ptr, rows, vals }
    }

    /// An empty (all-zero) matrix.
    pub fn zero(nrows: Index, ncols: Index) -> Self {
        Csc {
            nrows,
            ncols,
            col_ptr: vec![0; ncols as usize + 1],
            rows: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// The `n` × `n` identity matrix.
    pub fn identity(n: Index) -> Self {
        Csr::identity(n).into_csc_transposed()
    }

    /// Number of rows.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Fraction of entries that are stored.
    pub fn density(&self) -> f64 {
        if self.nrows == 0 || self.ncols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.nrows as f64 * self.ncols as f64)
    }

    /// The column-pointer array (`ncols + 1` entries).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// All row indices, column-major.
    pub fn row_indices(&self) -> &[Index] {
        &self.rows
    }

    /// All values, column-major.
    pub fn values(&self) -> &[Value] {
        &self.vals
    }

    /// The row indices and values of column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= ncols`.
    pub fn col(&self, j: Index) -> (&[Index], &[Value]) {
        let lo = self.col_ptr[j as usize];
        let hi = self.col_ptr[j as usize + 1];
        (&self.rows[lo..hi], &self.vals[lo..hi])
    }

    /// Number of stored entries in column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= ncols`.
    pub fn col_nnz(&self, j: Index) -> usize {
        self.col_ptr[j as usize + 1] - self.col_ptr[j as usize]
    }

    /// The value at `(row, col)`, or `0.0` when not stored.
    ///
    /// # Panics
    ///
    /// Panics if `row >= nrows` or `col >= ncols`.
    pub fn get(&self, row: Index, col: Index) -> Value {
        assert!(row < self.nrows, "row {row} out of bounds ({} rows)", self.nrows);
        let (rows, vals) = self.col(col);
        match rows.binary_search(&row) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// Iterates over stored entries as `(row, col, value)`, column-major.
    pub fn iter(&self) -> impl Iterator<Item = (Index, Index, Value)> + '_ {
        (0..self.ncols).flat_map(move |c| {
            let (rows, vals) = self.col(c);
            rows.iter().zip(vals).map(move |(&r, &v)| (r, c, v))
        })
    }

    /// Converts to CSR — the inverse of [`Csr::to_csc`].
    pub fn to_csr(&self) -> Csr {
        self.clone().into_csr_transposed().transpose()
    }

    /// Reinterprets `self` as the CSR representation of `selfᵀ` (zero-cost).
    pub fn into_csr_transposed(self) -> Csr {
        Csr::from_raw_parts_unchecked(self.ncols, self.nrows, self.col_ptr, self.rows, self.vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_csr() -> Csr {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 0 3 4 ]
        Csr::new(3, 3, vec![0, 2, 2, 4], vec![0, 2, 1, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap()
    }

    #[test]
    fn csc_validates_like_csr() {
        let err = Csc::new(2, 1, vec![0, 2], vec![1, 0], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, SparseError::UnsortedIndices { .. }));
    }

    #[test]
    fn column_access() {
        let m = sample_csr().to_csc();
        assert_eq!(m.col_nnz(0), 1);
        assert_eq!(m.col_nnz(2), 2);
        let (rows, vals) = m.col(2);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[2.0, 4.0]);
    }

    #[test]
    fn round_trip_csr_csc_csr() {
        let m = sample_csr();
        assert_eq!(m.to_csc().to_csr(), m);
    }

    #[test]
    fn iter_is_column_major() {
        let m = sample_csr().to_csc();
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(entries[0], (0, 0, 1.0));
        assert_eq!(entries[1], (2, 1, 3.0));
        assert_eq!(entries[2], (0, 2, 2.0));
        assert_eq!(entries[3], (2, 2, 4.0));
    }

    #[test]
    fn identity_diag() {
        let eye = Csc::identity(4);
        for i in 0..4 {
            assert_eq!(eye.get(i, i), 1.0);
        }
        assert_eq!(eye.nnz(), 4);
    }

    #[test]
    fn zero_has_no_entries() {
        let z = Csc::zero(3, 2);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.col_ptr().len(), 3);
    }
}
