use std::error::Error;
use std::fmt;

/// Errors produced while constructing or operating on sparse matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SparseError {
    /// An index array refers to a row or column outside the matrix bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: u64,
        /// The bound it must be strictly below.
        bound: u64,
        /// Human-readable name of the axis ("row" or "col").
        axis: &'static str,
    },
    /// A pointer array (row-ptrs / col-ptrs) is malformed: wrong length,
    /// non-monotone, or does not end at `nnz`.
    MalformedPointers(String),
    /// Column indices within a row (or row indices within a column) are not
    /// strictly increasing.
    UnsortedIndices {
        /// The row (for CSR) or column (for CSC) where order is violated.
        lane: u64,
    },
    /// The operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Shape of the left operand.
        left: (u64, u64),
        /// Shape of the right operand.
        right: (u64, u64),
        /// The operation that was attempted.
        op: &'static str,
    },
    /// A parsing problem in Matrix Market input.
    Parse {
        /// 1-based line number where the problem occurred, if known.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An underlying I/O error (message only, so the error stays `Clone`).
    Io(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds { index, bound, axis } => {
                write!(f, "{axis} index {index} out of bounds (must be < {bound})")
            }
            SparseError::MalformedPointers(msg) => {
                write!(f, "malformed pointer array: {msg}")
            }
            SparseError::UnsortedIndices { lane } => {
                write!(f, "indices within lane {lane} are not strictly increasing")
            }
            SparseError::ShapeMismatch { left, right, op } => write!(
                f,
                "shape mismatch for {op}: ({} x {}) vs ({} x {})",
                left.0, left.1, right.0, right.1
            ),
            SparseError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            SparseError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(err: std::io::Error) -> Self {
        SparseError::Io(err.to_string())
    }
}

/// A typed operand-dimension mismatch.
///
/// Every SpGEMM/SpMV entry point in the workspace validates its operands
/// through the shared guards [`crate::ops::check_spgemm_dims`] /
/// [`crate::ops::check_spmv_dims`], which produce this type; `?` converts it
/// into [`SparseError::ShapeMismatch`] at the public boundaries. Keeping the
/// guard centralized means every implementation classifies malformed inputs
/// identically — a property the differential-testing oracle asserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimError {
    /// Shape of the left operand (rows, cols).
    pub left: (u64, u64),
    /// Shape of the right operand (rows, cols); vectors report `(len, 1)`.
    pub right: (u64, u64),
    /// The operation that was attempted ("spgemm" or "spmv").
    pub op: &'static str,
}

impl fmt::Display for DimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dimension mismatch for {}: ({} x {}) is incompatible with ({} x {})",
            self.op, self.left.0, self.left.1, self.right.0, self.right.1
        )
    }
}

impl Error for DimError {}

impl From<DimError> for SparseError {
    fn from(e: DimError) -> Self {
        SparseError::ShapeMismatch { left: e.left, right: e.right, op: e.op }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = SparseError::IndexOutOfBounds { index: 9, bound: 4, axis: "row" };
        let s = e.to_string();
        assert!(s.contains("row index 9"));
        assert!(s.contains("< 4"));
        assert_eq!(s, s.trim_end_matches('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: SparseError = io.into();
        assert!(matches!(e, SparseError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn shape_mismatch_display() {
        let e = SparseError::ShapeMismatch { left: (2, 3), right: (4, 5), op: "spgemm" };
        assert!(e.to_string().contains("spgemm"));
        assert!(e.to_string().contains("(2 x 3)"));
    }

    #[test]
    fn dim_error_converts_to_shape_mismatch() {
        let d = DimError { left: (2, 3), right: (4, 5), op: "spgemm" };
        assert!(d.to_string().contains("(2 x 3)"));
        assert!(d.to_string().contains("(4 x 5)"));
        let e: SparseError = d.into();
        assert!(matches!(
            e,
            SparseError::ShapeMismatch { left: (2, 3), right: (4, 5), op: "spgemm" }
        ));
    }
}
