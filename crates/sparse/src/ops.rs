//! Reference sparse kernels used as golden models.
//!
//! These implementations optimize for clarity and obvious correctness, not
//! speed; the algorithm crates (`outerspace-outer`, `outerspace-baselines`)
//! are validated against them, and they in turn are validated against dense
//! arithmetic in the unit tests.

use crate::{Csr, DimError, Index, SparseError, Value};

/// Reference SpGEMM (`C = A × B`) using Gustavson's row-wise formulation
/// with a dense accumulator.
///
/// For each row *i* of `A`, scatter `a_ik · row_k(B)` into a dense
/// accumulator, then gather the touched columns in sorted order. This is the
/// textbook golden model — O(flops + nrows) time, O(ncols) workspace.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `a.ncols() != b.nrows()`.
///
/// # Example
///
/// ```
/// use outerspace_sparse::{Csr, ops};
///
/// # fn main() -> Result<(), outerspace_sparse::SparseError> {
/// let a = Csr::identity(3);
/// let c = ops::spgemm_reference(&a, &a)?;
/// assert!(c.approx_eq(&a, 0.0));
/// # Ok(())
/// # }
/// ```
pub fn spgemm_reference(a: &Csr, b: &Csr) -> Result<Csr, SparseError> {
    check_mul_shapes(a, b)?;
    let n_out_cols = b.ncols() as usize;
    let mut acc = vec![0.0 as Value; n_out_cols];
    let mut touched: Vec<Index> = Vec::new();

    let mut row_ptr = Vec::with_capacity(a.nrows() as usize + 1);
    row_ptr.push(0usize);
    let mut cols: Vec<Index> = Vec::new();
    let mut vals: Vec<Value> = Vec::new();

    for i in 0..a.nrows() {
        let (a_cols, a_vals) = a.row(i);
        for (&k, &a_ik) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(k);
            for (&j, &b_kj) in b_cols.iter().zip(b_vals) {
                if acc[j as usize] == 0.0 && !touched.contains(&j) {
                    touched.push(j);
                }
                acc[j as usize] += a_ik * b_kj;
            }
        }
        touched.sort_unstable();
        for &j in &touched {
            cols.push(j);
            vals.push(acc[j as usize]);
            acc[j as usize] = 0.0;
        }
        touched.clear();
        row_ptr.push(cols.len());
    }
    Ok(Csr::from_raw_parts_unchecked(a.nrows(), b.ncols(), row_ptr, cols, vals))
}

/// Reference SpMV (`y = A × x`) with a dense vector.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `x.len() != a.ncols()`.
pub fn spmv_reference(a: &Csr, x: &[Value]) -> Result<Vec<Value>, SparseError> {
    check_spmv_dims((a.nrows(), a.ncols()), x.len() as Index)?;
    let mut y = vec![0.0 as Value; a.nrows() as usize];
    for (yi, i) in y.iter_mut().zip(0..a.nrows()) {
        let (cols, vals) = a.row(i);
        *yi = cols.iter().zip(vals).map(|(&c, &v)| v * x[c as usize]).sum();
    }
    Ok(y)
}

/// Element-wise combination of two equally-shaped matrices:
/// `C[i,j] = op(A[i,j], B[i,j])` over the union of the two patterns.
///
/// The paper (§5.6) notes element-wise routines (`+`, `-`, `×`, `/`, `==`)
/// share their structure with the merge phase; this is the golden model for
/// them. Result entries that are exactly zero are kept (pattern union), so
/// callers control pruning.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if the shapes differ.
pub fn elementwise<F>(a: &Csr, b: &Csr, mut op: F) -> Result<Csr, SparseError>
where
    F: FnMut(Value, Value) -> Value,
{
    if a.nrows() != b.nrows() || a.ncols() != b.ncols() {
        return Err(SparseError::ShapeMismatch {
            left: (a.nrows() as u64, a.ncols() as u64),
            right: (b.nrows() as u64, b.ncols() as u64),
            op: "elementwise",
        });
    }
    let mut row_ptr = Vec::with_capacity(a.nrows() as usize + 1);
    row_ptr.push(0usize);
    let mut cols: Vec<Index> = Vec::new();
    let mut vals: Vec<Value> = Vec::new();
    for i in 0..a.nrows() {
        let (ac, av) = a.row(i);
        let (bc, bv) = b.row(i);
        let (mut p, mut q) = (0usize, 0usize);
        // Two-pointer union merge of the sorted rows.
        while p < ac.len() || q < bc.len() {
            let take_a = q >= bc.len() || (p < ac.len() && ac[p] <= bc[q]);
            let take_b = p >= ac.len() || (q < bc.len() && bc[q] <= ac[p]);
            match (take_a, take_b) {
                (true, true) => {
                    cols.push(ac[p]);
                    vals.push(op(av[p], bv[q]));
                    p += 1;
                    q += 1;
                }
                (true, false) => {
                    cols.push(ac[p]);
                    vals.push(op(av[p], 0.0));
                    p += 1;
                }
                (false, true) => {
                    cols.push(bc[q]);
                    vals.push(op(0.0, bv[q]));
                    q += 1;
                }
                (false, false) => unreachable!("one side must advance"),
            }
        }
        row_ptr.push(cols.len());
    }
    Ok(Csr::from_raw_parts_unchecked(a.nrows(), a.ncols(), row_ptr, cols, vals))
}

/// Element-wise sum `A + B`.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if the shapes differ.
pub fn add(a: &Csr, b: &Csr) -> Result<Csr, SparseError> {
    elementwise(a, b, |x, y| x + y)
}

/// Element-wise difference `A - B`.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if the shapes differ.
pub fn sub(a: &Csr, b: &Csr) -> Result<Csr, SparseError> {
    elementwise(a, b, |x, y| x - y)
}

/// Element-wise (Hadamard) product `A ∘ B`. The result pattern is the
/// *intersection* of the operands (zeros from the union pattern are pruned).
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if the shapes differ.
pub fn hadamard(a: &Csr, b: &Csr) -> Result<Csr, SparseError> {
    Ok(elementwise(a, b, |x, y| x * y)?.pruned(0.0))
}

/// Total floating-point operations (multiplies + adds) that any
/// Gustavson/outer-product style SpGEMM performs for `C = A × B`:
/// `2 × Σ_k nnz(col_k(A)) · nnz(row_k(B))` minus the first write per output
/// entry is *not* subtracted — the paper counts multiply-and-accumulate pairs,
/// i.e. 2 flops per elementary product, which this mirrors.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `a.ncols() != b.nrows()`.
pub fn spgemm_flops(a: &Csr, b: &Csr) -> Result<u64, SparseError> {
    check_mul_shapes(a, b)?;
    let at = a.transpose(); // column nnz counts of A = row nnz counts of Aᵀ
    let mut flops = 0u64;
    for k in 0..b.nrows() {
        flops += 2 * (at.row_nnz(k) as u64) * (b.row_nnz(k) as u64);
    }
    Ok(flops)
}

/// The shared SpGEMM operand guard: `C = A × B` requires
/// `a.ncols() == b.nrows()`. Shape-only, so it takes the shapes directly and
/// works for CR and CC operands alike.
///
/// # Errors
///
/// Returns a typed [`DimError`] (convertible to
/// [`SparseError::ShapeMismatch`] via `?`) when the inner dimensions differ.
pub fn check_spgemm_dims(
    a_shape: (Index, Index),
    b_shape: (Index, Index),
) -> Result<(), DimError> {
    if a_shape.1 != b_shape.0 {
        return Err(DimError {
            left: (a_shape.0 as u64, a_shape.1 as u64),
            right: (b_shape.0 as u64, b_shape.1 as u64),
            op: "spgemm",
        });
    }
    Ok(())
}

/// The shared SpMV operand guard: `y = A × x` requires
/// `x_len == a_shape.1` (the vector is reported as an `x_len × 1` operand).
///
/// # Errors
///
/// Returns a typed [`DimError`] when the vector length differs from the
/// matrix column count.
pub fn check_spmv_dims(a_shape: (Index, Index), x_len: Index) -> Result<(), DimError> {
    if x_len != a_shape.1 {
        return Err(DimError {
            left: (a_shape.0 as u64, a_shape.1 as u64),
            right: (x_len as u64, 1),
            op: "spmv",
        });
    }
    Ok(())
}

fn check_mul_shapes(a: &Csr, b: &Csr) -> Result<(), SparseError> {
    check_spgemm_dims((a.nrows(), a.ncols()), (b.nrows(), b.ncols()))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dense;

    fn sample_a() -> Csr {
        // Fig. 2 of the paper uses 4x4 matrices; use a similar shape here.
        Dense::from_row_major(
            4,
            4,
            vec![
                1.0, 0.0, 2.0, 0.0, //
                0.0, 3.0, 0.0, 0.0, //
                4.0, 0.0, 0.0, 5.0, //
                0.0, 6.0, 0.0, 7.0,
            ],
        )
        .to_csr()
    }

    fn sample_b() -> Csr {
        Dense::from_row_major(
            4,
            4,
            vec![
                0.0, 1.0, 0.0, 2.0, //
                3.0, 0.0, 0.0, 0.0, //
                0.0, 0.0, 0.0, 0.0, // empty row, like Fig. 2
                0.0, 4.0, 5.0, 0.0,
            ],
        )
        .to_csr()
    }

    #[test]
    fn spgemm_matches_dense() {
        let (a, b) = (sample_a(), sample_b());
        let c = spgemm_reference(&a, &b).unwrap();
        let want = a.to_dense().matmul(&b.to_dense());
        assert!(c.to_dense().approx_eq(&want, 1e-12));
    }

    #[test]
    fn spgemm_shape_mismatch() {
        let a = Csr::zero(2, 3);
        let b = Csr::zero(2, 3);
        assert!(matches!(
            spgemm_reference(&a, &b),
            Err(SparseError::ShapeMismatch { op: "spgemm", .. })
        ));
    }

    #[test]
    fn spgemm_identity() {
        let a = sample_a();
        let eye = Csr::identity(4);
        assert!(spgemm_reference(&a, &eye).unwrap().approx_eq(&a, 0.0));
        assert!(spgemm_reference(&eye, &a).unwrap().approx_eq(&a, 0.0));
    }

    #[test]
    fn spmv_matches_dense() {
        let a = sample_a();
        let x = [1.0, -1.0, 0.5, 2.0];
        let y = spmv_reference(&a, &x).unwrap();
        let want = a.to_dense().matvec(&x);
        assert_eq!(y, want);
    }

    #[test]
    fn spmv_shape_mismatch() {
        let a = sample_a();
        assert!(spmv_reference(&a, &[1.0]).is_err());
    }

    #[test]
    fn add_and_sub_cancel() {
        let (a, b) = (sample_a(), sample_b());
        let sum = add(&a, &b).unwrap();
        let back = sub(&sum, &b).unwrap();
        assert!(back.approx_eq(&a, 1e-12));
    }

    #[test]
    fn hadamard_intersects_patterns() {
        let (a, b) = (sample_a(), sample_b());
        let h = hadamard(&a, &b).unwrap();
        // A and B overlap only where both non-zero: check against dense.
        for (r, c, v) in h.iter() {
            assert_eq!(v, a.get(r, c) * b.get(r, c));
            assert!(a.get(r, c) != 0.0 && b.get(r, c) != 0.0);
        }
    }

    #[test]
    fn flop_count_matches_manual() {
        let (a, b) = (sample_a(), sample_b());
        // Column nnz of A: [2,2,1,2]; row nnz of B: [2,1,0,2].
        // Sum of products = 2*2 + 2*1 + 1*0 + 2*2 = 10; flops = 20.
        assert_eq!(spgemm_flops(&a, &b).unwrap(), 20);
    }

    #[test]
    fn elementwise_equality_indicator() {
        let (a, b) = (sample_a(), sample_a());
        let eq = elementwise(&a, &b, |x, y| if x == y { 1.0 } else { 0.0 }).unwrap();
        assert!(eq.iter().all(|(_, _, v)| v == 1.0));
    }
}
