use crate::{Csc, Dense, Index, SparseError, Value};

/// A sparse matrix in Compressed Sparse Row format — the paper's
/// *Compressed Row (CR)* format.
///
/// Three arrays: `row_ptr` (length `nrows + 1`) delimits, for each row, a
/// contiguous slice of the `cols`/`vals` arrays holding that row's
/// column-index/value pairs in strictly increasing column order.
///
/// In the outer-product algorithm the *second* operand (`B`) is consumed in
/// this format, one row per outer product (§4.1 of the paper).
///
/// # Example
///
/// ```
/// use outerspace_sparse::Csr;
///
/// let eye = Csr::identity(3);
/// assert_eq!(eye.nnz(), 3);
/// assert_eq!(eye.get(1, 1), 1.0);
/// assert_eq!(eye.get(0, 1), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    nrows: Index,
    ncols: Index,
    row_ptr: Vec<usize>,
    cols: Vec<Index>,
    vals: Vec<Value>,
}

impl Csr {
    /// Builds a CSR matrix from its raw arrays, validating every invariant:
    /// pointer monotonicity, bounds, and strictly increasing column indices
    /// within each row.
    ///
    /// # Errors
    ///
    /// * [`SparseError::MalformedPointers`] — `row_ptr` has the wrong length,
    ///   does not start at 0, is non-monotone, or does not end at
    ///   `cols.len()`; or `cols` and `vals` disagree in length.
    /// * [`SparseError::IndexOutOfBounds`] — a column index ≥ `ncols`.
    /// * [`SparseError::UnsortedIndices`] — a row's columns are not strictly
    ///   increasing.
    pub fn new(
        nrows: Index,
        ncols: Index,
        row_ptr: Vec<usize>,
        cols: Vec<Index>,
        vals: Vec<Value>,
    ) -> Result<Self, SparseError> {
        if row_ptr.len() != nrows as usize + 1 {
            return Err(SparseError::MalformedPointers(format!(
                "row_ptr length {} != nrows + 1 = {}",
                row_ptr.len(),
                nrows + 1
            )));
        }
        if cols.len() != vals.len() {
            return Err(SparseError::MalformedPointers(format!(
                "cols length {} != vals length {}",
                cols.len(),
                vals.len()
            )));
        }
        if row_ptr[0] != 0 || *row_ptr.last().expect("non-empty") != cols.len() {
            return Err(SparseError::MalformedPointers(format!(
                "row_ptr must span [0, {}], got [{}, {}]",
                cols.len(),
                row_ptr[0],
                row_ptr.last().expect("non-empty")
            )));
        }
        for (i, w) in row_ptr.windows(2).enumerate() {
            if w[0] > w[1] {
                return Err(SparseError::MalformedPointers(format!(
                    "row_ptr not monotone at row {i}"
                )));
            }
            let row = &cols[w[0]..w[1]];
            for pair in row.windows(2) {
                if pair[0] >= pair[1] {
                    return Err(SparseError::UnsortedIndices { lane: i as u64 });
                }
            }
        }
        if let Some(&c) = cols.iter().find(|&&c| c >= ncols) {
            return Err(SparseError::IndexOutOfBounds {
                index: c as u64,
                bound: ncols as u64,
                axis: "col",
            });
        }
        Ok(Csr { nrows, ncols, row_ptr, cols, vals })
    }

    /// Builds a CSR matrix without validating invariants.
    ///
    /// # Safety
    ///
    /// This function is not memory-unsafe, but every public operation assumes
    /// the [`Csr::new`] invariants; violating them yields wrong results or
    /// panics later. Callers must guarantee: `row_ptr.len() == nrows + 1`,
    /// `row_ptr` monotone from 0 to `cols.len()`, `cols.len() == vals.len()`,
    /// all column indices `< ncols` and strictly increasing within each row.
    pub fn from_raw_parts_unchecked(
        nrows: Index,
        ncols: Index,
        row_ptr: Vec<usize>,
        cols: Vec<Index>,
        vals: Vec<Value>,
    ) -> Self {
        debug_assert!(
            Csr::new(nrows, ncols, row_ptr.clone(), cols.clone(), vals.clone()).is_ok(),
            "from_raw_parts_unchecked invariant violation"
        );
        Csr { nrows, ncols, row_ptr, cols, vals }
    }

    /// An empty (all-zero) matrix.
    pub fn zero(nrows: Index, ncols: Index) -> Self {
        Csr {
            nrows,
            ncols,
            row_ptr: vec![0; nrows as usize + 1],
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// The `n` × `n` identity matrix.
    pub fn identity(n: Index) -> Self {
        Csr {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n as usize).collect(),
            cols: (0..n).collect(),
            vals: vec![1.0; n as usize],
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Number of stored (structurally non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Fraction of entries that are stored: `nnz / (nrows * ncols)`.
    pub fn density(&self) -> f64 {
        if self.nrows == 0 || self.ncols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.nrows as f64 * self.ncols as f64)
    }

    /// Average number of stored entries per row (the paper's `nnzav`).
    pub fn nnz_per_row(&self) -> f64 {
        if self.nrows == 0 {
            return 0.0;
        }
        self.nnz() as f64 / self.nrows as f64
    }

    /// The row-pointer array (`nrows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// All column indices, row-major.
    pub fn col_indices(&self) -> &[Index] {
        &self.cols
    }

    /// All values, row-major.
    pub fn values(&self) -> &[Value] {
        &self.vals
    }

    /// Mutable view of all values, row-major. Only the *values* are exposed:
    /// the structural invariants (`row_ptr` monotonicity, sorted column
    /// indices) cannot be violated through this accessor, so it is safe for
    /// in-place rescaling and for the fault model's silent-corruption hook.
    pub fn values_mut(&mut self) -> &mut [Value] {
        &mut self.vals
    }

    /// The column indices and values of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows`.
    pub fn row(&self, i: Index) -> (&[Index], &[Value]) {
        let lo = self.row_ptr[i as usize];
        let hi = self.row_ptr[i as usize + 1];
        (&self.cols[lo..hi], &self.vals[lo..hi])
    }

    /// Number of stored entries in row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows`.
    pub fn row_nnz(&self, i: Index) -> usize {
        self.row_ptr[i as usize + 1] - self.row_ptr[i as usize]
    }

    /// The value at `(row, col)`, or `0.0` when the entry is not stored.
    ///
    /// Binary-searches within the row: O(log nnz(row)).
    ///
    /// # Panics
    ///
    /// Panics if `row >= nrows` or `col >= ncols`.
    pub fn get(&self, row: Index, col: Index) -> Value {
        assert!(col < self.ncols, "col {col} out of bounds ({} cols)", self.ncols);
        let (cols, vals) = self.row(row);
        match cols.binary_search(&col) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// Iterates over stored entries as `(row, col, value)`, row-major.
    pub fn iter(&self) -> impl Iterator<Item = (Index, Index, Value)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// The transpose, as CSR. O(nnz + nrows + ncols).
    pub fn transpose(&self) -> Csr {
        let n = self.ncols as usize;
        let mut ptr = vec![0usize; n + 1];
        for &c in &self.cols {
            ptr[c as usize + 1] += 1;
        }
        for i in 0..n {
            ptr[i + 1] += ptr[i];
        }
        let mut cols = vec![0 as Index; self.nnz()];
        let mut vals = vec![0.0 as Value; self.nnz()];
        let mut cursor = ptr.clone();
        for (r, c, v) in self.iter() {
            let slot = cursor[c as usize];
            cols[slot] = r;
            vals[slot] = v;
            cursor[c as usize] += 1;
        }
        // Row-major traversal writes each transposed lane in increasing
        // original-row order, so indices are already strictly increasing.
        Csr { nrows: self.ncols, ncols: self.nrows, row_ptr: ptr, cols, vals }
    }

    /// Converts to CSC — the paper's *format conversion* (§4.3) that the
    /// accelerator performs as `I_CC × A_CR`. This is the direct
    /// (software-oracle) version.
    pub fn to_csc(&self) -> Csc {
        self.transpose().into_csc_transposed()
    }

    /// Reinterprets `self` as the CSC representation of `selfᵀ` — a zero-cost
    /// relabelling of the arrays (row pointers become column pointers).
    pub fn into_csc_transposed(self) -> Csc {
        Csc::from_raw_parts_unchecked(self.ncols, self.nrows, self.row_ptr, self.cols, self.vals)
    }

    /// Converts to a dense matrix. Intended for tests and tiny examples.
    pub fn to_dense(&self) -> Dense {
        let mut d = Dense::zeros(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            *d.get_mut(r, c) = v;
        }
        d
    }

    /// True when the matrix equals its transpose (pattern *and* values).
    pub fn is_symmetric(&self) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        *self == self.transpose()
    }

    /// Returns a copy with entries of magnitude `<= eps` removed.
    pub fn pruned(&self, eps: Value) -> Csr {
        let mut row_ptr = Vec::with_capacity(self.row_ptr.len());
        row_ptr.push(0usize);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for r in 0..self.nrows {
            let (rc, rv) = self.row(r);
            for (&c, &v) in rc.iter().zip(rv) {
                if v.abs() > eps {
                    cols.push(c);
                    vals.push(v);
                }
            }
            row_ptr.push(cols.len());
        }
        Csr { nrows: self.nrows, ncols: self.ncols, row_ptr, cols, vals }
    }

    /// True when every stored value of `self` and `other` agrees within
    /// `tol`, and the patterns match after pruning exact zeros.
    pub fn approx_eq(&self, other: &Csr, tol: Value) -> bool {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return false;
        }
        let a = self.pruned(0.0);
        let b = other.pruned(0.0);
        if a.nnz() != b.nnz() {
            return false;
        }
        let equal = a
            .iter()
            .zip(b.iter())
            .all(|((r1, c1, v1), (r2, c2, v2))| r1 == r2 && c1 == c2 && (v1 - v2).abs() <= tol);
        equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 0 3 4 ]
        Csr::new(3, 3, vec![0, 2, 2, 4], vec![0, 2, 1, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap()
    }

    #[test]
    fn construction_validates_pointer_length() {
        let err = Csr::new(2, 2, vec![0, 0], vec![], vec![]).unwrap_err();
        assert!(matches!(err, SparseError::MalformedPointers(_)));
    }

    #[test]
    fn construction_validates_monotonicity() {
        let err = Csr::new(2, 2, vec![0, 1, 0], vec![0], vec![1.0]);
        assert!(err.is_err());
    }

    #[test]
    fn construction_validates_terminal_pointer() {
        let err = Csr::new(1, 4, vec![0, 3], vec![0, 1], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, SparseError::MalformedPointers(_)));
    }

    #[test]
    fn construction_rejects_unsorted_rows() {
        let err = Csr::new(1, 4, vec![0, 2], vec![2, 1], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, SparseError::UnsortedIndices { lane: 0 }));
    }

    #[test]
    fn construction_rejects_duplicate_columns() {
        let err = Csr::new(1, 4, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, SparseError::UnsortedIndices { .. }));
    }

    #[test]
    fn construction_rejects_out_of_bounds_column() {
        let err = Csr::new(1, 2, vec![0, 1], vec![5], vec![1.0]).unwrap_err();
        assert!(matches!(err, SparseError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn get_and_row_access() {
        let m = sample();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(2, 2), 4.0);
        assert_eq!(m.row_nnz(1), 0);
        let (cols, vals) = m.row(2);
        assert_eq!(cols, &[1, 2]);
        assert_eq!(vals, &[3.0, 4.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_matches_dense() {
        let m = sample();
        let t = m.transpose();
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(t.get(r, c), m.get(c, r));
            }
        }
    }

    #[test]
    fn identity_is_symmetric() {
        assert!(Csr::identity(5).is_symmetric());
        assert!(!sample().is_symmetric());
    }

    #[test]
    fn csc_round_trip_preserves_entries() {
        let m = sample();
        let csc = m.to_csc();
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(csc.get(r, c), m.get(r, c));
            }
        }
    }

    #[test]
    fn density_and_nnz_per_row() {
        let m = sample();
        assert!((m.density() - 4.0 / 9.0).abs() < 1e-12);
        assert!((m.nnz_per_row() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(Csr::zero(0, 0).density(), 0.0);
    }

    #[test]
    fn pruned_removes_small_entries() {
        let m =
            Csr::new(1, 3, vec![0, 3], vec![0, 1, 2], vec![1e-12, 5.0, -1e-12]).unwrap();
        let p = m.pruned(1e-9);
        assert_eq!(p.nnz(), 1);
        assert_eq!(p.get(0, 1), 5.0);
    }

    #[test]
    fn approx_eq_tolerates_jitter() {
        let a = sample();
        let mut vals = a.values().to_vec();
        vals[0] += 1e-13;
        let b = Csr::new(3, 3, a.row_ptr().to_vec(), a.col_indices().to_vec(), vals).unwrap();
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&b, 1e-15));
    }

    #[test]
    fn zero_matrix_iterates_nothing() {
        assert_eq!(Csr::zero(4, 4).iter().count(), 0);
    }
}
