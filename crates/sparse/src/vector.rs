use crate::{Index, Value};

/// A sparse vector as parallel index/value arrays, indices strictly
/// increasing.
///
/// The SpMV experiments of Table 5 sweep the vector density `r` from 0.01 to
/// 1.0; the outer-product SpMV algorithm touches only the matrix columns
/// matching these indices.
///
/// # Example
///
/// ```
/// use outerspace_sparse::SparseVector;
///
/// let v = SparseVector { len: 4, indices: vec![1, 3], values: vec![2.0, -1.0] };
/// assert_eq!(v.nnz(), 2);
/// assert_eq!(v.to_dense(), vec![0.0, 2.0, 0.0, -1.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseVector {
    /// Logical length of the vector.
    pub len: Index,
    /// Indices of the stored entries, strictly increasing.
    pub indices: Vec<Index>,
    /// Values of the stored entries.
    pub values: Vec<Value>,
}

impl SparseVector {
    /// Builds a sparse vector from a dense slice, dropping exact zeros.
    pub fn from_dense(dense: &[Value]) -> Self {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, &v) in dense.iter().enumerate() {
            if v != 0.0 {
                indices.push(i as Index);
                values.push(v);
            }
        }
        SparseVector { len: dense.len() as Index, indices, values }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Density `nnz / len`.
    pub fn density(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.len as f64
        }
    }

    /// Expands to a dense vector.
    pub fn to_dense(&self) -> Vec<Value> {
        let mut out = vec![0.0; self.len as usize];
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            out[i as usize] = v;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_dense_round_trip() {
        let d = vec![0.0, 1.5, 0.0, -2.0, 0.0];
        let v = SparseVector::from_dense(&d);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.indices, vec![1, 3]);
        assert_eq!(v.to_dense(), d);
    }

    #[test]
    fn empty_vector() {
        let v = SparseVector::default();
        assert_eq!(v.nnz(), 0);
        assert_eq!(v.density(), 0.0);
        assert!(v.to_dense().is_empty());
    }

    #[test]
    fn density_computation() {
        let v = SparseVector { len: 8, indices: vec![0, 7], values: vec![1.0, 1.0] };
        assert_eq!(v.density(), 0.25);
    }
}
