//! Matrix Market (`.mtx`) I/O.
//!
//! The evaluation matrices of the paper (Table 4) come from the SuiteSparse
//! collection and SNAP, both distributed in Matrix Market coordinate format.
//! This module reads the common variants (real / integer / pattern ×
//! general / symmetric) and writes `coordinate real general` files, so users
//! with local copies of the collections can run the harness on the genuine
//! matrices instead of the synthetic stand-ins.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::{Coo, Csr, Index, SparseError, Value};

/// Symmetry declared in a Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

/// Reads a Matrix Market *coordinate* stream into a [`Coo`] matrix.
///
/// Supported qualifiers: field ∈ {`real`, `double`, `integer`, `pattern`}
/// (pattern entries get value 1.0) and symmetry ∈ {`general`, `symmetric`,
/// `skew-symmetric`} (the mirrored triangle is materialized). `complex` and
/// `hermitian` files are rejected.
///
/// A mutable reference works as the reader: `read_coo(&mut file)`.
///
/// # Errors
///
/// [`SparseError::Parse`] on malformed content, [`SparseError::Io`] on read
/// failures.
pub fn read_coo<R: Read>(reader: R) -> Result<Coo, SparseError> {
    let mut lines = BufReader::new(reader).lines().enumerate();

    // --- Header line ---
    let (line_no, header) = loop {
        match lines.next() {
            Some((i, line)) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break (i + 1, line);
                }
            }
            None => {
                return Err(SparseError::Parse { line: 1, message: "empty input".into() })
            }
        }
    };
    let header_lc = header.to_ascii_lowercase();
    let tokens: Vec<&str> = header_lc.split_whitespace().collect();
    if tokens.len() < 5 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(SparseError::Parse {
            line: line_no,
            message: format!("expected '%%MatrixMarket matrix ...' header, got: {header}"),
        });
    }
    if tokens[2] != "coordinate" {
        return Err(SparseError::Parse {
            line: line_no,
            message: format!("only 'coordinate' format is supported, got '{}'", tokens[2]),
        });
    }
    let pattern = match tokens[3] {
        "real" | "double" | "integer" => false,
        "pattern" => true,
        other => {
            return Err(SparseError::Parse {
                line: line_no,
                message: format!("unsupported field type '{other}'"),
            })
        }
    };
    let symmetry = match tokens[4] {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        "skew-symmetric" => Symmetry::SkewSymmetric,
        other => {
            return Err(SparseError::Parse {
                line: line_no,
                message: format!("unsupported symmetry '{other}'"),
            })
        }
    };

    // --- Size line (first non-comment, non-blank line) ---
    let (size_line_no, size_line) = loop {
        match lines.next() {
            Some((i, line)) => {
                let line = line?;
                let t = line.trim();
                if !t.is_empty() && !t.starts_with('%') {
                    break (i + 1, line);
                }
            }
            None => {
                return Err(SparseError::Parse {
                    line: line_no,
                    message: "missing size line".into(),
                })
            }
        }
    };
    let dims: Vec<&str> = size_line.split_whitespace().collect();
    if dims.len() != 3 {
        return Err(SparseError::Parse {
            line: size_line_no,
            message: format!("size line must have 3 fields, got {}", dims.len()),
        });
    }
    let parse_dim = |s: &str, what: &str| -> Result<u64, SparseError> {
        s.parse::<u64>().map_err(|_| SparseError::Parse {
            line: size_line_no,
            message: format!("invalid {what}: '{s}'"),
        })
    };
    let nrows = parse_dim(dims[0], "row count")?;
    let ncols = parse_dim(dims[1], "column count")?;
    let nnz = usize::try_from(parse_dim(dims[2], "entry count")?).map_err(|_| {
        SparseError::Parse {
            line: size_line_no,
            message: "entry count exceeds addressable memory".into(),
        }
    })?;
    if nrows > Index::MAX as u64 || ncols > Index::MAX as u64 {
        return Err(SparseError::Parse {
            line: size_line_no,
            message: "matrix dimensions exceed 32-bit index range".into(),
        });
    }

    let cap = match symmetry {
        Symmetry::General => nnz,
        _ => nnz.checked_mul(2).ok_or_else(|| SparseError::Parse {
            line: size_line_no,
            message: format!("entry count {nnz} overflows mirrored capacity"),
        })?,
    };
    // The header is untrusted input: a file declaring the whole address
    // space as its entry count must not abort the process in the allocator.
    // Pre-allocate a bounded amount and let `Vec` growth absorb honest
    // large files.
    const MAX_PREALLOC_ENTRIES: usize = 1 << 24;
    let mut coo =
        Coo::with_capacity(nrows as Index, ncols as Index, cap.min(MAX_PREALLOC_ENTRIES));
    let mut seen = 0usize;
    for (i, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut fields = t.split_whitespace();
        let (r, c) = match (fields.next(), fields.next()) {
            (Some(r), Some(c)) => (r, c),
            _ => {
                return Err(SparseError::Parse {
                    line: i + 1,
                    message: "entry line needs at least 'row col'".into(),
                })
            }
        };
        let r: u64 = r.parse().map_err(|_| SparseError::Parse {
            line: i + 1,
            message: format!("invalid row index '{r}'"),
        })?;
        let c: u64 = c.parse().map_err(|_| SparseError::Parse {
            line: i + 1,
            message: format!("invalid column index '{c}'"),
        })?;
        if r == 0 || c == 0 || r > nrows || c > ncols {
            return Err(SparseError::Parse {
                line: i + 1,
                message: format!("entry ({r},{c}) outside 1..={nrows} x 1..={ncols}"),
            });
        }
        let v: Value = if pattern {
            1.0
        } else {
            let raw = fields.next().ok_or_else(|| SparseError::Parse {
                line: i + 1,
                message: "missing value field".into(),
            })?;
            raw.parse().map_err(|_| SparseError::Parse {
                line: i + 1,
                message: format!("invalid value '{raw}'"),
            })?
        };
        let (r0, c0) = ((r - 1) as Index, (c - 1) as Index);
        coo.push(r0, c0, v);
        if r0 != c0 {
            match symmetry {
                Symmetry::General => {}
                Symmetry::Symmetric => coo.push(c0, r0, v),
                Symmetry::SkewSymmetric => coo.push(c0, r0, -v),
            }
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::Parse {
            line: size_line_no,
            message: format!("size line declared {nnz} entries but file contains {seen}"),
        });
    }
    Ok(coo)
}

/// Reads a Matrix Market file from `path` into CSR.
///
/// # Errors
///
/// Propagates [`read_coo`] errors and I/O failures.
pub fn read_csr<P: AsRef<Path>>(path: P) -> Result<Csr, SparseError> {
    let file = std::fs::File::open(path)?;
    Ok(read_coo(file)?.to_csr())
}

/// Writes `m` as `matrix coordinate real general` to `writer`.
///
/// A mutable reference works as the writer: `write_csr(&mut buf, &m)`.
///
/// # Errors
///
/// [`SparseError::Io`] on write failures.
pub fn write_csr<W: Write>(mut writer: W, m: &Csr) -> Result<(), SparseError> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "% generated by outerspace-sparse")?;
    writeln!(writer, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for (r, c, v) in m.iter() {
        writeln!(writer, "{} {} {v:e}", r + 1, c + 1)?;
    }
    Ok(())
}

/// Reads a SNAP-style edge list: one `src dst` pair per line (whitespace
/// separated), `#`-prefixed comment lines ignored, node ids 0-based. This is
/// the distribution format of the Stanford Network Analysis Project graphs
/// the paper evaluates (Table 4's SNAP entries).
///
/// The matrix dimension is `max node id + 1`; every edge gets value 1.0;
/// `symmetric` mirrors each edge (for undirected graphs stored one-way).
///
/// # Errors
///
/// [`SparseError::Parse`] on malformed lines, [`SparseError::Io`] on read
/// failures.
pub fn read_edge_list<R: Read>(reader: R, symmetric: bool) -> Result<Coo, SparseError> {
    let mut edges: Vec<(u64, u64)> = Vec::new();
    let mut max_id = 0u64;
    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut fields = t.split_whitespace();
        let (u, v) = match (fields.next(), fields.next()) {
            (Some(u), Some(v)) => (u, v),
            _ => {
                return Err(SparseError::Parse {
                    line: i + 1,
                    message: "edge line needs 'src dst'".into(),
                })
            }
        };
        let u: u64 = u.parse().map_err(|_| SparseError::Parse {
            line: i + 1,
            message: format!("invalid source id '{u}'"),
        })?;
        let v: u64 = v.parse().map_err(|_| SparseError::Parse {
            line: i + 1,
            message: format!("invalid target id '{v}'"),
        })?;
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
    }
    if max_id >= Index::MAX as u64 {
        return Err(SparseError::Parse {
            line: 0,
            message: "node ids exceed 32-bit index range".into(),
        });
    }
    let n = if edges.is_empty() { 0 } else { max_id as Index + 1 };
    let cap = if symmetric { edges.len().saturating_mul(2) } else { edges.len() };
    let mut coo = Coo::with_capacity(n, n, cap);
    for (u, v) in edges {
        coo.push(u as Index, v as Index, 1.0);
        if symmetric && u != v {
            coo.push(v as Index, u as Index, 1.0);
        }
    }
    Ok(coo)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GENERAL: &str = "%%MatrixMarket matrix coordinate real general\n\
        % a comment\n\
        3 3 3\n\
        1 1 2.0\n\
        2 3 -1.5\n\
        3 1 4\n";

    #[test]
    fn reads_general_real() {
        let m = read_coo(GENERAL.as_bytes()).unwrap().to_csr();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(1, 2), -1.5);
        assert_eq!(m.get(2, 0), 4.0);
    }

    #[test]
    fn reads_symmetric_and_mirrors() {
        let src = "%%MatrixMarket matrix coordinate real symmetric\n\
            2 2 2\n\
            1 1 1.0\n\
            2 1 5.0\n";
        let m = read_coo(src.as_bytes()).unwrap().to_csr();
        assert_eq!(m.nnz(), 3); // diagonal not duplicated
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.get(1, 0), 5.0);
    }

    #[test]
    fn reads_skew_symmetric() {
        let src = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
            2 2 1\n\
            2 1 3.0\n";
        let m = read_coo(src.as_bytes()).unwrap().to_csr();
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.get(0, 1), -3.0);
    }

    #[test]
    fn reads_pattern_as_ones() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n\
            2 2 2\n\
            1 2\n\
            2 1\n";
        let m = read_coo(src.as_bytes()).unwrap().to_csr();
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 0), 1.0);
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_coo("%%NotMM\n1 1 0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, SparseError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_array_format() {
        let err =
            read_coo("%%MatrixMarket matrix array real general\n1 1\n1.0\n".as_bytes())
                .unwrap_err();
        assert!(err.to_string().contains("coordinate"));
    }

    #[test]
    fn rejects_out_of_range_entry() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_coo(src.as_bytes()).is_err());
    }

    #[test]
    fn rejects_wrong_entry_count() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        let err = read_coo(src.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("declared 2"));
    }

    #[test]
    fn one_based_indices_rejected_at_zero() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_coo(src.as_bytes()).is_err());
    }

    #[test]
    fn write_read_round_trip() {
        let m = read_coo(GENERAL.as_bytes()).unwrap().to_csr();
        let mut buf = Vec::new();
        write_csr(&mut buf, &m).unwrap();
        let back = read_coo(buf.as_slice()).unwrap().to_csr();
        assert!(m.approx_eq(&back, 1e-12));
    }

    #[test]
    fn edge_list_reads_snap_format() {
        let src = "# Directed graph\n# Nodes: 4 Edges: 3\n0\t1\n2 3\n3\t0\n";
        let m = read_edge_list(src.as_bytes(), false).unwrap().to_csr();
        assert_eq!(m.nrows(), 4);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(3, 0), 1.0);
    }

    #[test]
    fn edge_list_symmetric_mirrors() {
        let m = read_edge_list("0 1\n1 2\n".as_bytes(), true).unwrap().to_csr();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m, m.transpose());
    }

    #[test]
    fn edge_list_duplicate_edges_merge() {
        let m = read_edge_list("0 1\n0 1\n".as_bytes(), false).unwrap().to_csr();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 1), 2.0);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(read_edge_list("0 x\n".as_bytes(), false).is_err());
        assert!(read_edge_list("lonely\n".as_bytes(), false).is_err());
    }

    #[test]
    fn empty_edge_list_is_empty_matrix() {
        let m = read_edge_list("# nothing\n".as_bytes(), false).unwrap();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.nrows(), 0);
    }

    #[test]
    fn adversarial_entry_count_does_not_abort_allocation() {
        // A header may declare the entire 64-bit space as its entry count;
        // the reader must fail with a parse error, not abort inside the
        // allocator trying to pre-reserve it.
        let src = format!(
            "%%MatrixMarket matrix coordinate real general\n2 2 {}\n1 1 1.0\n",
            u64::MAX
        );
        let err = read_coo(src.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("declared"), "got: {err}");
    }

    #[test]
    fn symmetric_mirror_capacity_overflow_is_rejected() {
        // Mirroring doubles the capacity; nnz values near usize::MAX must be
        // rejected by the checked multiply instead of wrapping.
        let src = format!(
            "%%MatrixMarket matrix coordinate real symmetric\n2 2 {}\n1 1 1.0\n",
            u64::MAX
        );
        let err = read_coo(src.as_bytes()).unwrap_err();
        assert!(
            err.to_string().contains("overflow") || err.to_string().contains("addressable"),
            "got: {err}"
        );
    }

    #[test]
    fn scientific_notation_values_parse() {
        let src = "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 6.02e23\n";
        let m = read_coo(src.as_bytes()).unwrap().to_csr();
        assert_eq!(m.get(0, 0), 6.02e23);
    }
}
