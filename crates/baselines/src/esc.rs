//! Expansion–Sorting–Compression (ESC) SpGEMM — the CUSP analog.
//!
//! CUSP materializes every elementary product as an (row, col, value) triple
//! in an intermediate COO buffer ("possible duplicates"), sorts the buffer,
//! and compresses duplicate coordinates by summation (§1 of the paper, and
//! Bell/Dalton/Olson's exposed fine-grained formulation). The intermediate
//! is large — `flops/2` triples at 16 B of coordinate+value each — which is
//! the memory-overhead weakness the paper attributes to CUSP (§10).
//!
//! The three phases are timed separately because Fig. 4 plots the
//! multiply/merge split: ESC's sort+compress corresponds to the merge side.

use std::time::{Duration, Instant};

use outerspace_sparse::{Coo, Csr, SparseError};

use crate::TrafficStats;

/// Statistics and phase timings for an ESC run.
#[derive(Debug, Clone, Copy, Default)]
pub struct EscStats {
    /// Shared traffic counters (expansion reads + output writes).
    pub traffic: TrafficStats,
    /// Triples in the intermediate buffer.
    pub expanded_triples: u64,
    /// Wall time of the expansion phase.
    pub expand_time: Duration,
    /// Wall time of the sort phase.
    pub sort_time: Duration,
    /// Wall time of the compression phase.
    pub compress_time: Duration,
}

/// ESC SpGEMM (`C = A × B`).
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `a.ncols() != b.nrows()`.
///
/// # Example
///
/// ```
/// use outerspace_sparse::Csr;
/// use outerspace_baselines::esc;
///
/// # fn main() -> Result<(), outerspace_sparse::SparseError> {
/// let a = Csr::identity(2);
/// let (c, stats) = esc::spgemm(&a, &a)?;
/// assert_eq!(c.nnz(), 2);
/// assert_eq!(stats.expanded_triples, 2);
/// # Ok(())
/// # }
/// ```
pub fn spgemm(a: &Csr, b: &Csr) -> Result<(Csr, EscStats), SparseError> {
    outerspace_sparse::ops::check_spgemm_dims(
        (a.nrows(), a.ncols()),
        (b.nrows(), b.ncols()),
    )?;
    let mut stats = EscStats::default();

    // --- Expansion: materialize every elementary product. ---
    let t0 = Instant::now();
    let mut triples: Vec<(u64, f64)> = Vec::new();
    for i in 0..a.nrows() {
        let (a_cols, a_vals) = a.row(i);
        stats.traffic.bytes_touched += 12 * a_cols.len() as u64;
        for (&k, &a_ik) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(k);
            stats.traffic.bytes_touched += 12 * b_cols.len() as u64;
            for (&j, &b_kj) in b_cols.iter().zip(b_vals) {
                stats.traffic.multiplies += 1;
                // Pack (row, col) into one u64 key for a cheap sort.
                triples.push((((i as u64) << 32) | j as u64, a_ik * b_kj));
            }
        }
    }
    stats.expanded_triples = triples.len() as u64;
    stats.traffic.bytes_written += 16 * triples.len() as u64; // intermediate
    stats.expand_time = t0.elapsed();

    // --- Sorting: order the intermediate by (row, col). ---
    let t1 = Instant::now();
    triples.sort_by_key(|&(key, _)| key); // stable: deterministic summation
    stats.traffic.bytes_touched += 16 * triples.len() as u64; // re-read
    stats.sort_time = t1.elapsed();

    // --- Compression: sum duplicates, build CSR. ---
    let t2 = Instant::now();
    let mut row_ptr = vec![0usize; a.nrows() as usize + 1];
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    let mut idx = 0usize;
    while idx < triples.len() {
        let (key, mut v) = triples[idx];
        let mut j = idx + 1;
        while j < triples.len() && triples[j].0 == key {
            v += triples[j].1;
            stats.traffic.additions += 1;
            j += 1;
        }
        let row = (key >> 32) as usize;
        cols.push((key & 0xFFFF_FFFF) as u32);
        vals.push(v);
        row_ptr[row + 1] = cols.len();
        idx = j;
    }
    // Forward-fill row_ptr for empty rows.
    for r in 1..row_ptr.len() {
        if row_ptr[r] < row_ptr[r - 1] {
            row_ptr[r] = row_ptr[r - 1];
        }
    }
    stats.traffic.bytes_written += 12 * cols.len() as u64;
    stats.compress_time = t2.elapsed();

    Ok((Csr::from_raw_parts_unchecked(a.nrows(), b.ncols(), row_ptr, cols, vals), stats))
}

/// Intermediate-buffer footprint in bytes for an ESC run on `a × b` —
/// the CUSP memory overhead the paper contrasts with the outer-product
/// intermediate (§10).
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `a.ncols() != b.nrows()`.
pub fn intermediate_bytes(a: &Csr, b: &Csr) -> Result<u64, SparseError> {
    let flops = outerspace_sparse::ops::spgemm_flops(a, b)?;
    Ok((flops / 2) * 16)
}

/// Reference COO equivalent of the ESC intermediate, exposed for tests that
/// verify the duplicate-then-compress semantics.
pub fn expand_to_coo(a: &Csr, b: &Csr) -> Result<Coo, SparseError> {
    outerspace_sparse::ops::check_spgemm_dims(
        (a.nrows(), a.ncols()),
        (b.nrows(), b.ncols()),
    )?;
    let mut coo = Coo::new(a.nrows(), b.ncols());
    for i in 0..a.nrows() {
        let (a_cols, a_vals) = a.row(i);
        for (&k, &a_ik) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(k);
            for (&j, &b_kj) in b_cols.iter().zip(b_vals) {
                coo.push(i, j, a_ik * b_kj);
            }
        }
    }
    Ok(coo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_gen::uniform;
    use outerspace_sparse::ops;

    #[test]
    fn matches_reference() {
        let a = uniform::matrix(72, 72, 700, 1);
        let b = uniform::matrix(72, 72, 700, 2);
        let (c, _) = spgemm(&a, &b).unwrap();
        let want = ops::spgemm_reference(&a, &b).unwrap();
        assert!(c.approx_eq(&want, 1e-9));
    }

    #[test]
    fn expanded_triples_equal_half_flops() {
        let a = uniform::matrix(64, 64, 512, 3);
        let b = uniform::matrix(64, 64, 512, 4);
        let (_, stats) = spgemm(&a, &b).unwrap();
        let flops = ops::spgemm_flops(&a, &b).unwrap();
        assert_eq!(stats.expanded_triples, flops / 2);
        assert_eq!(intermediate_bytes(&a, &b).unwrap(), (flops / 2) * 16);
    }

    #[test]
    fn coo_expansion_compresses_to_same_result() {
        let a = uniform::matrix(48, 48, 400, 5);
        let coo = expand_to_coo(&a, &a).unwrap();
        let via_coo = coo.to_csr();
        let (via_esc, _) = spgemm(&a, &a).unwrap();
        assert!(via_coo.approx_eq(&via_esc, 1e-9));
    }

    #[test]
    fn empty_rows_handled() {
        // Matrix with empty rows in the middle.
        let a = Csr::new(4, 4, vec![0, 1, 1, 1, 2], vec![2, 0], vec![1.0, 2.0]).unwrap();
        let (c, _) = spgemm(&a, &a).unwrap();
        let want = ops::spgemm_reference(&a, &a).unwrap();
        assert!(c.approx_eq(&want, 1e-12));
    }

    #[test]
    fn rectangular() {
        let a = uniform::matrix(20, 50, 200, 7);
        let b = uniform::matrix(50, 30, 300, 8);
        let (c, _) = spgemm(&a, &b).unwrap();
        assert_eq!((c.nrows(), c.ncols()), (20, 30));
        assert!(c.approx_eq(&ops::spgemm_reference(&a, &b).unwrap(), 1e-9));
    }
}
