//! Baseline SpMV kernels for the Table 5 comparison.
//!
//! The paper observes (§7.2) that MKL's sparse matrix-vector method
//! "performs the best when the vector is treated as a dense vector
//! regardless of the number of zeros in the vector" — its run time is flat
//! across vector densities. cuSPARSE's kernel scales with vector density but
//! still reads the whole matrix. Both behaviours are reproduced here and
//! contrasted with the outer-product SpMV, whose traffic scales with
//! `nnz(x)`.

use outerspace_sparse::{Csr, SparseError, SparseVector, Value};

use crate::TrafficStats;

/// MKL-analog SpMV: the vector is densified and the *entire* matrix is
/// streamed row by row, regardless of vector sparsity.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `x.len != a.ncols()`.
pub fn spmv_dense_vector(
    a: &Csr,
    x: &SparseVector,
) -> Result<(Vec<Value>, TrafficStats), SparseError> {
    outerspace_sparse::ops::check_spmv_dims((a.nrows(), a.ncols()), x.len)?;
    let dense = x.to_dense();
    // Whole matrix + whole dense vector are touched, always.
    let mut stats = TrafficStats {
        bytes_touched: 12 * a.nnz() as u64 + 8 * dense.len() as u64,
        ..Default::default()
    };
    let mut y = vec![0.0 as Value; a.nrows() as usize];
    for (i, yi) in y.iter_mut().enumerate() {
        let (cols, vals) = a.row(i as u32);
        let mut acc = 0.0;
        for (&c, &v) in cols.iter().zip(vals) {
            acc += v * dense[c as usize];
            stats.multiplies += 1;
            stats.additions += 1;
        }
        *yi = acc;
    }
    stats.bytes_written = 8 * y.len() as u64;
    Ok((y, stats))
}

/// cuSPARSE-analog sparse-vector SpMV: rows are scanned and each matrix
/// entry is index-matched against the sparse vector (binary search), so
/// compute scales with vector density but the whole matrix is still read.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `x.len != a.ncols()`.
pub fn spmv_index_match(
    a: &Csr,
    x: &SparseVector,
) -> Result<(SparseVector, TrafficStats), SparseError> {
    outerspace_sparse::ops::check_spmv_dims((a.nrows(), a.ncols()), x.len)?;
    let mut stats = TrafficStats {
        bytes_touched: 12 * a.nnz() as u64 + 12 * x.nnz() as u64,
        ..Default::default()
    };
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for i in 0..a.nrows() {
        let (cols, vals) = a.row(i);
        let mut acc = 0.0;
        let mut hit = false;
        for (&c, &v) in cols.iter().zip(vals) {
            if let Ok(pos) = x.indices.binary_search(&c) {
                acc += v * x.values[pos];
                stats.multiplies += 1;
                if hit {
                    stats.additions += 1;
                }
                hit = true;
            }
        }
        if hit {
            indices.push(i);
            values.push(acc);
        }
    }
    stats.bytes_written = 12 * indices.len() as u64;
    Ok((SparseVector { len: a.nrows(), indices, values }, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_gen::{uniform, vector};
    use outerspace_sparse::ops;

    #[test]
    fn dense_vector_path_matches_reference() {
        let a = uniform::matrix(64, 64, 512, 1);
        let x = vector::sparse(64, 0.3, 2);
        let (y, _) = spmv_dense_vector(&a, &x).unwrap();
        let want = ops::spmv_reference(&a, &x.to_dense()).unwrap();
        for (got, want) in y.iter().zip(&want) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn index_match_path_matches_reference() {
        let a = uniform::matrix(64, 64, 512, 3);
        let x = vector::sparse(64, 0.1, 4);
        let (y, _) = spmv_index_match(&a, &x).unwrap();
        let want = ops::spmv_reference(&a, &x.to_dense()).unwrap();
        let dense_y = y.to_dense();
        for i in 0..64 {
            assert!((dense_y[i] - want[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn mkl_analog_traffic_is_density_independent() {
        let a = uniform::matrix(128, 128, 1024, 5);
        let (_, s1) = spmv_dense_vector(&a, &vector::sparse(128, 0.01, 6)).unwrap();
        let (_, s2) = spmv_dense_vector(&a, &vector::sparse(128, 1.0, 6)).unwrap();
        assert_eq!(s1.bytes_touched, s2.bytes_touched);
    }

    #[test]
    fn index_match_compute_scales_with_density() {
        let a = uniform::matrix(256, 256, 4096, 7);
        let (_, s_sparse) = spmv_index_match(&a, &vector::sparse(256, 0.05, 8)).unwrap();
        let (_, s_dense) = spmv_index_match(&a, &vector::sparse(256, 1.0, 8)).unwrap();
        assert!(s_dense.multiplies > 10 * s_sparse.multiplies);
        // ...but matrix traffic does not shrink.
        assert!(s_sparse.bytes_touched as f64 > 0.9 * (12 * a.nnz() as usize) as f64);
    }

    #[test]
    fn shape_mismatch() {
        let a = uniform::matrix(8, 8, 16, 1);
        let x = vector::sparse(9, 0.5, 2);
        assert!(spmv_dense_vector(&a, &x).is_err());
        assert!(spmv_index_match(&a, &x).is_err());
    }
}
