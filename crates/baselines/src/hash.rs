//! Row-parallel hash-based SpGEMM — the cuSPARSE analog.
//!
//! cuSPARSE's generalized SpGEMM assigns output rows to thread groups and
//! merges each row's partial products through a hash table keyed by column
//! index (§1 of the paper). This module reproduces that structure with an
//! open-addressing table per worker; insert/probe counts are reported so the
//! GPU model can charge hash-probe divergence.

use outerspace_sparse::{Csr, Index, SparseError, Value};

use crate::TrafficStats;

/// Statistics specific to the hash-merge algorithm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HashStats {
    /// Shared traffic counters.
    pub traffic: TrafficStats,
    /// Hash-table probe steps (1 per access + extras on collision chains).
    pub probes: u64,
    /// Table growth events (rehash everything).
    pub rehashes: u64,
}

/// A fixed-capacity open-addressing accumulator for one output row.
#[derive(Debug)]
struct RowTable {
    keys: Vec<Index>,
    vals: Vec<Value>,
    mask: usize,
    len: usize,
}

const EMPTY: Index = Index::MAX;

impl RowTable {
    fn with_capacity(cap: usize) -> Self {
        let size = (cap.max(8) * 2).next_power_of_two();
        RowTable { keys: vec![EMPTY; size], vals: vec![0.0; size], mask: size - 1, len: 0 }
    }

    /// Accumulates `v` at `key`, returning probe count and whether a grow is
    /// needed (load factor > 0.7).
    fn upsert(&mut self, key: Index, v: Value, stats: &mut HashStats) {
        if (self.len + 1) * 10 > self.keys.len() * 7 {
            self.grow(stats);
        }
        let mut slot = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) as usize & self.mask;
        loop {
            stats.probes += 1;
            if self.keys[slot] == EMPTY {
                self.keys[slot] = key;
                self.vals[slot] = v;
                self.len += 1;
                return;
            }
            if self.keys[slot] == key {
                self.vals[slot] += v;
                stats.traffic.additions += 1;
                return;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    fn grow(&mut self, stats: &mut HashStats) {
        stats.rehashes += 1;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; 0]);
        let old_vals = std::mem::take(&mut self.vals);
        let new_size = (old_keys.len() * 2).max(16);
        self.keys = vec![EMPTY; new_size];
        self.vals = vec![0.0; new_size];
        self.mask = new_size - 1;
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY {
                // Re-insert without counting a fresh addition.
                let mut slot =
                    (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) as usize & self.mask;
                while self.keys[slot] != EMPTY {
                    slot = (slot + 1) & self.mask;
                }
                self.keys[slot] = k;
                self.vals[slot] = v;
                self.len += 1;
            }
        }
    }

    /// Drains the table into sorted (col, val) pairs.
    fn drain_sorted(&mut self, out: &mut Vec<(Index, Value)>) {
        out.clear();
        for (i, &k) in self.keys.iter().enumerate() {
            if k != EMPTY {
                out.push((k, self.vals[i]));
            }
        }
        out.sort_unstable_by_key(|&(c, _)| c);
        for k in self.keys.iter_mut() {
            *k = EMPTY;
        }
        self.len = 0;
    }
}

/// Hash-merge SpGEMM (`C = A × B`), sequential.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `a.ncols() != b.nrows()`.
pub fn spgemm(a: &Csr, b: &Csr) -> Result<(Csr, HashStats), SparseError> {
    outerspace_sparse::ops::check_spgemm_dims(
        (a.nrows(), a.ncols()),
        (b.nrows(), b.ncols()),
    )?;
    let mut stats = HashStats::default();
    let avg_row = (b.nnz() as f64 / b.nrows().max(1) as f64).ceil() as usize;
    let mut table = RowTable::with_capacity(avg_row.max(8) * 4);
    let mut sorted: Vec<(Index, Value)> = Vec::new();
    let mut row_ptr = vec![0usize];
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for i in 0..a.nrows() {
        let (a_cols, a_vals) = a.row(i);
        stats.traffic.bytes_touched += 12 * a_cols.len() as u64;
        for (&k, &a_ik) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(k);
            stats.traffic.bytes_touched += 12 * b_cols.len() as u64;
            for (&j, &b_kj) in b_cols.iter().zip(b_vals) {
                stats.traffic.multiplies += 1;
                table.upsert(j, a_ik * b_kj, &mut stats);
            }
        }
        table.drain_sorted(&mut sorted);
        for &(c, v) in &sorted {
            cols.push(c);
            vals.push(v);
        }
        row_ptr.push(cols.len());
    }
    stats.traffic.bytes_written = 12 * cols.len() as u64;
    Ok((Csr::from_raw_parts_unchecked(a.nrows(), b.ncols(), row_ptr, cols, vals), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_gen::{powerlaw, uniform};
    use outerspace_sparse::ops;

    #[test]
    fn matches_reference() {
        let a = uniform::matrix(80, 80, 800, 1);
        let b = uniform::matrix(80, 80, 800, 2);
        let (c, _) = spgemm(&a, &b).unwrap();
        let want = ops::spgemm_reference(&a, &b).unwrap();
        assert!(c.approx_eq(&want, 1e-9));
    }

    #[test]
    fn handles_hub_rows_with_rehash() {
        let a = powerlaw::graph(512, 8000, 3);
        let (c, stats) = spgemm(&a, &a).unwrap();
        let want = ops::spgemm_reference(&a, &a).unwrap();
        assert!(c.approx_eq(&want, 1e-9));
        assert!(stats.rehashes > 0, "hub rows should overflow the initial table");
    }

    #[test]
    fn probes_at_least_one_per_product() {
        let a = uniform::matrix(64, 64, 512, 5);
        let (_, stats) = spgemm(&a, &a).unwrap();
        assert!(stats.probes >= stats.traffic.multiplies);
    }

    #[test]
    fn empty_matrix() {
        let z = Csr::zero(8, 8);
        let (c, _) = spgemm(&z, &z).unwrap();
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn shape_mismatch() {
        assert!(spgemm(&Csr::zero(2, 3), &Csr::zero(4, 4)).is_err());
    }
}
