//! Naive inner-product SpGEMM with explicit index matching.
//!
//! The motivating strawman of §2–§4: `c_ij = Σ_k a_ik · b_kj` computed as
//! sparse dot products between rows-of-`A` and columns-of-`B`. Most index
//! comparisons match nothing, so the kernel fetches operand elements that
//! produce no output — the redundant-access pathology the outer-product
//! method exists to remove. Exposed so the benchmark suite can quantify the
//! index-matching overhead directly.

use outerspace_sparse::{Csc, Csr, Index, SparseError, Value};

use crate::TrafficStats;

/// Inner-product statistics: traffic plus match-efficiency counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InnerStats {
    /// Shared traffic counters.
    pub traffic: TrafficStats,
    /// Index comparisons performed while intersecting rows and columns.
    pub comparisons: u64,
    /// Comparisons that produced a multiply (matched indices).
    pub matches: u64,
}

/// Inner-product SpGEMM (`C = A × B`), `A` in CSR and `B` in CSC so that
/// rows and columns are both contiguous.
///
/// Only the output positions `(i, j)` where row `i` of `A` and column `j` of
/// `B` might overlap are evaluated; each evaluation is a sorted-list
/// intersection.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `a.ncols() != b.nrows()`.
pub fn spgemm(a: &Csr, b: &Csc) -> Result<(Csr, InnerStats), SparseError> {
    outerspace_sparse::ops::check_spgemm_dims(
        (a.nrows(), a.ncols()),
        (b.nrows(), b.ncols()),
    )?;
    let mut stats = InnerStats::default();
    let mut row_ptr = vec![0usize];
    let mut cols: Vec<Index> = Vec::new();
    let mut vals: Vec<Value> = Vec::new();
    for i in 0..a.nrows() {
        let (a_cols, a_vals) = a.row(i);
        for j in 0..b.ncols() {
            let (b_rows, b_vals) = b.col(j);
            if a_cols.is_empty() || b_rows.is_empty() {
                continue;
            }
            // Sorted intersection with index matching.
            stats.traffic.bytes_touched += 12 * (a_cols.len() + b_rows.len()) as u64;
            let (mut p, mut q) = (0usize, 0usize);
            let mut acc = 0.0;
            let mut hit = false;
            while p < a_cols.len() && q < b_rows.len() {
                stats.comparisons += 1;
                match a_cols[p].cmp(&b_rows[q]) {
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                    std::cmp::Ordering::Equal => {
                        stats.matches += 1;
                        stats.traffic.multiplies += 1;
                        if hit {
                            stats.traffic.additions += 1;
                        }
                        acc += a_vals[p] * b_vals[q];
                        hit = true;
                        p += 1;
                        q += 1;
                    }
                }
            }
            if hit {
                cols.push(j);
                vals.push(acc);
            }
        }
        row_ptr.push(cols.len());
    }
    stats.traffic.bytes_written = 12 * cols.len() as u64;
    Ok((Csr::from_raw_parts_unchecked(a.nrows(), b.ncols(), row_ptr, cols, vals), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_gen::uniform;
    use outerspace_sparse::ops;

    #[test]
    fn matches_reference() {
        let a = uniform::matrix(40, 40, 300, 1);
        let b = uniform::matrix(40, 40, 300, 2);
        let (c, _) = spgemm(&a, &b.to_csc()).unwrap();
        let want = ops::spgemm_reference(&a, &b).unwrap();
        assert!(c.approx_eq(&want, 1e-9));
    }

    #[test]
    fn most_comparisons_miss_when_sparse() {
        let a = uniform::matrix(128, 128, 512, 3); // density 3%
        let (_, stats) = spgemm(&a, &a.to_csc()).unwrap();
        let hit_rate = stats.matches as f64 / stats.comparisons as f64;
        assert!(hit_rate < 0.3, "hit rate {hit_rate} unexpectedly high");
    }

    #[test]
    fn traffic_dwarfs_gustavson_traffic() {
        let a = uniform::matrix(128, 128, 512, 4);
        let (_, inner_stats) = spgemm(&a, &a.to_csc()).unwrap();
        let (_, gus_stats) = crate::gustavson::spgemm(&a, &a).unwrap();
        assert!(inner_stats.traffic.bytes_touched > 2 * gus_stats.bytes_touched);
    }

    #[test]
    fn zero_cancellation_is_kept() {
        // acc may sum to exactly 0.0; pattern decision is match-driven.
        let a = Csr::new(1, 2, vec![0, 2], vec![0, 1], vec![1.0, -1.0]).unwrap();
        let b = Csr::new(2, 1, vec![0, 1, 2], vec![0, 0], vec![1.0, 1.0]).unwrap();
        let (c, _) = spgemm(&a, &b.to_csc()).unwrap();
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 0), 0.0);
    }
}
