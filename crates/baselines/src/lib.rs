//! Baseline sparse kernels the OuterSPACE paper compares against.
//!
//! The paper's evaluation (§6, §7) measures Intel MKL on a Xeon CPU and
//! NVIDIA cuSPARSE/CUSP on a K40 GPU. Neither library's source is available,
//! but their *algorithms* are published, and this crate re-implements them
//! faithfully so the harness can reproduce the comparison shape:
//!
//! * [`gustavson`] — row-wise SpGEMM with a dense accumulator, the
//!   algorithm underlying MKL's `mkl_sparse_spmm` (vectorized Gustavson).
//!   The MKL analog for Figs. 3, 6, 7 and Table 1.
//! * [`hash`] — row-parallel SpGEMM using a hash table to merge the partial
//!   products of each output row, as cuSPARSE does (§1: "cuSPARSE applies
//!   row-by-row parallelism and uses a hash table").
//! * [`esc`] — expansion / sorting / compression, CUSP's fine-grained
//!   formulation (§1: intermediate COO with duplicates, sorted and
//!   compressed). Phase-separated for Fig. 4.
//! * [`inner`] — textbook inner-product SpGEMM with explicit index matching,
//!   quantifying the redundant-access problem motivating the paper (§2).
//! * [`spmv`] — row-wise CSR SpMV baselines, including MKL's
//!   treat-the-vector-as-dense behaviour that Table 5 exploits.
//!
//! All kernels count the bytes of matrix data they touch, enabling the
//! bandwidth-utilization analysis of Table 1 without hardware counters.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod esc;
pub mod gustavson;
pub mod hash;
pub mod inner;
pub mod spmv;

/// Memory-traffic counters shared by the baseline kernels.
///
/// `bytes_touched` counts every operand element *access* at 12 B (value +
/// index), including repeated accesses to the same data — the quantity whose
/// inflation by redundant reads the paper identifies as the key SpGEMM
/// bottleneck (§1). Compulsory traffic (each element once) is available from
/// the matrix sizes; the ratio of the two measures redundancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Operand element accesses × 12 B (includes redundant re-reads).
    pub bytes_touched: u64,
    /// Bytes written to the output (and intermediates, for ESC).
    pub bytes_written: u64,
    /// Multiply flops.
    pub multiplies: u64,
    /// Add flops.
    pub additions: u64,
}

impl TrafficStats {
    /// Total useful flops (multiplies + additions), the paper's GFLOPS basis.
    pub fn flops(&self) -> u64 {
        self.multiplies + self.additions
    }
}
