//! Row-wise Gustavson SpGEMM — the Intel MKL analog.
//!
//! For each output row `i`, scatter `a_ik · row_k(B)` into a dense
//! accumulator and gather the touched columns. MKL's SpGEMM is a heavily
//! vectorized variant of exactly this; its key behaviours reproduced here
//! are (a) run time proportional to flops with cache-friendly streaming of
//! `B`'s rows when the matrix is regular, and (b) repeated fetches of the
//! same rows-of-`B` across different output rows — the redundant traffic the
//! outer-product method eliminates.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use outerspace_sparse::{ops, Csr, Index, SparseError, Value};

use crate::TrafficStats;

/// Sequential Gustavson SpGEMM with a dense accumulator.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `a.ncols() != b.nrows()`.
///
/// # Example
///
/// ```
/// use outerspace_sparse::Csr;
/// use outerspace_baselines::gustavson;
///
/// # fn main() -> Result<(), outerspace_sparse::SparseError> {
/// let a = Csr::identity(3);
/// let (c, stats) = gustavson::spgemm(&a, &a)?;
/// assert!(c.approx_eq(&a, 0.0));
/// assert_eq!(stats.multiplies, 3);
/// # Ok(())
/// # }
/// ```
pub fn spgemm(a: &Csr, b: &Csr) -> Result<(Csr, TrafficStats), SparseError> {
    check_shapes(a, b)?;
    let mut stats = TrafficStats::default();
    let mut acc = vec![0.0 as Value; b.ncols() as usize];
    let mut flags = vec![false; b.ncols() as usize];
    let mut touched: Vec<Index> = Vec::new();
    let mut row_ptr = vec![0usize];
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for i in 0..a.nrows() {
        row_into(
            a, b, i, &mut acc, &mut flags, &mut touched, &mut cols, &mut vals, &mut stats,
        );
        row_ptr.push(cols.len());
    }
    stats.bytes_written += 12 * cols.len() as u64;
    Ok((Csr::from_raw_parts_unchecked(a.nrows(), b.ncols(), row_ptr, cols, vals), stats))
}

/// Multi-threaded Gustavson SpGEMM: output rows are claimed greedily in
/// blocks by `n_threads` workers, each with a private dense accumulator —
/// the OpenMP threading structure of MKL's SpGEMM.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `a.ncols() != b.nrows()`.
///
/// # Panics
///
/// Panics if `n_threads == 0`.
pub fn spgemm_parallel(
    a: &Csr,
    b: &Csr,
    n_threads: usize,
) -> Result<(Csr, TrafficStats), SparseError> {
    assert!(n_threads > 0, "need at least one thread");
    check_shapes(a, b)?;
    const BLOCK: u32 = 128;
    let next_block = AtomicU32::new(0);
    let n_blocks = a.nrows().div_ceil(BLOCK);

    type BlockOut = (u32, Vec<usize>, Vec<Index>, Vec<Value>);
    let results: Mutex<Vec<BlockOut>> = Mutex::new(Vec::new());
    let total_stats: Mutex<TrafficStats> = Mutex::new(TrafficStats::default());

    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            let next_block = &next_block;
            let results = &results;
            let total_stats = &total_stats;
            scope.spawn(move || {
                let mut acc = vec![0.0 as Value; b.ncols() as usize];
                let mut flags = vec![false; b.ncols() as usize];
                let mut touched: Vec<Index> = Vec::new();
                let mut stats = TrafficStats::default();
                loop {
                    let blk = next_block.fetch_add(1, Ordering::Relaxed);
                    if blk >= n_blocks {
                        break;
                    }
                    let lo = blk * BLOCK;
                    let hi = ((blk + 1) * BLOCK).min(a.nrows());
                    let mut cols = Vec::new();
                    let mut vals = Vec::new();
                    let mut sizes = Vec::with_capacity((hi - lo) as usize);
                    for i in lo..hi {
                        let before = cols.len();
                        row_into(
                            a, b, i, &mut acc, &mut flags, &mut touched, &mut cols,
                            &mut vals, &mut stats,
                        );
                        sizes.push(cols.len() - before);
                    }
                    results.lock().expect("poisoned").push((blk, sizes, cols, vals));
                }
                let mut t = total_stats.lock().expect("poisoned");
                t.bytes_touched += stats.bytes_touched;
                t.multiplies += stats.multiplies;
                t.additions += stats.additions;
            });
        }
    });

    let mut blocks = results.into_inner().expect("poisoned");
    blocks.sort_by_key(|&(idx, ..)| idx);
    let mut row_ptr = vec![0usize];
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for (_, sizes, bcols, bvals) in blocks {
        for s in sizes {
            row_ptr.push(row_ptr.last().expect("non-empty") + s);
        }
        cols.extend_from_slice(&bcols);
        vals.extend_from_slice(&bvals);
    }
    let mut stats = total_stats.into_inner().expect("poisoned");
    stats.bytes_written = 12 * cols.len() as u64;
    Ok((Csr::from_raw_parts_unchecked(a.nrows(), b.ncols(), row_ptr, cols, vals), stats))
}

/// Two-phase Gustavson SpGEMM: a *symbolic* pass computes the exact output
/// pattern size per row (no values), then a *numeric* pass fills
/// exactly-sized arrays. This is the inspector-executor structure of MKL's
/// two-stage `mkl_sparse_sp2m` API: twice the traversal work, but no
/// reallocation and a reusable inspection for repeated products with the
/// same pattern.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `a.ncols() != b.nrows()`.
pub fn spgemm_two_phase(a: &Csr, b: &Csr) -> Result<(Csr, TrafficStats), SparseError> {
    check_shapes(a, b)?;
    let mut stats = TrafficStats::default();

    // --- Symbolic pass: per-row output nnz via a visited-flag accumulator.
    let mut flags = vec![false; b.ncols() as usize];
    let mut touched: Vec<Index> = Vec::new();
    let mut row_ptr = vec![0usize; a.nrows() as usize + 1];
    for i in 0..a.nrows() {
        let (a_cols, _) = a.row(i);
        stats.bytes_touched += 12 * a_cols.len() as u64;
        for &k in a_cols {
            let (b_cols, _) = b.row(k);
            // Symbolic pass touches indices only: 4 B per entry.
            stats.bytes_touched += 4 * b_cols.len() as u64;
            for &j in b_cols {
                if !flags[j as usize] {
                    flags[j as usize] = true;
                    touched.push(j);
                }
            }
        }
        row_ptr[i as usize + 1] = row_ptr[i as usize] + touched.len();
        for &j in &touched {
            flags[j as usize] = false;
        }
        touched.clear();
    }

    // --- Numeric pass: fill pre-sized arrays.
    let total = row_ptr[a.nrows() as usize];
    let mut cols = vec![0 as Index; total];
    let mut vals = vec![0.0 as Value; total];
    let mut acc = vec![0.0 as Value; b.ncols() as usize];
    let mut cursor = 0usize;
    for i in 0..a.nrows() {
        let (a_cols, a_vals) = a.row(i);
        stats.bytes_touched += 12 * a_cols.len() as u64;
        for (&k, &a_ik) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(k);
            stats.bytes_touched += 12 * b_cols.len() as u64;
            for (&j, &b_kj) in b_cols.iter().zip(b_vals) {
                if !flags[j as usize] {
                    flags[j as usize] = true;
                    touched.push(j);
                    acc[j as usize] = a_ik * b_kj;
                } else {
                    acc[j as usize] += a_ik * b_kj;
                    stats.additions += 1;
                }
                stats.multiplies += 1;
            }
        }
        touched.sort_unstable();
        for &j in touched.iter() {
            cols[cursor] = j;
            vals[cursor] = acc[j as usize];
            flags[j as usize] = false;
            cursor += 1;
        }
        debug_assert_eq!(cursor, row_ptr[i as usize + 1]);
        touched.clear();
    }
    stats.bytes_written = 12 * total as u64;
    Ok((Csr::from_raw_parts_unchecked(a.nrows(), b.ncols(), row_ptr, cols, vals), stats))
}

/// Computes one output row into `cols`/`vals` using the dense accumulator.
#[allow(clippy::too_many_arguments)]
fn row_into(
    a: &Csr,
    b: &Csr,
    i: Index,
    acc: &mut [Value],
    flags: &mut [bool],
    touched: &mut Vec<Index>,
    cols: &mut Vec<Index>,
    vals: &mut Vec<Value>,
    stats: &mut TrafficStats,
) {
    let (a_cols, a_vals) = a.row(i);
    stats.bytes_touched += 12 * a_cols.len() as u64;
    for (&k, &a_ik) in a_cols.iter().zip(a_vals) {
        let (b_cols, b_vals) = b.row(k);
        // Every output row touching k re-reads row_k(B): the redundancy.
        stats.bytes_touched += 12 * b_cols.len() as u64;
        for (&j, &b_kj) in b_cols.iter().zip(b_vals) {
            let slot = j as usize;
            if !flags[slot] {
                flags[slot] = true;
                touched.push(j);
                acc[slot] = a_ik * b_kj;
            } else {
                acc[slot] += a_ik * b_kj;
                stats.additions += 1;
            }
            stats.multiplies += 1;
        }
    }
    touched.sort_unstable();
    for &j in touched.iter() {
        cols.push(j);
        vals.push(acc[j as usize]);
        flags[j as usize] = false;
    }
    touched.clear();
}

fn check_shapes(a: &Csr, b: &Csr) -> Result<(), SparseError> {
    ops::check_spgemm_dims((a.nrows(), a.ncols()), (b.nrows(), b.ncols()))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_gen::uniform;
    use outerspace_sparse::ops;

    #[test]
    fn matches_reference() {
        for seed in 0..4 {
            let a = uniform::matrix(96, 96, 900, seed);
            let b = uniform::matrix(96, 96, 900, seed + 10);
            let (c, _) = spgemm(&a, &b).unwrap();
            let want = ops::spgemm_reference(&a, &b).unwrap();
            assert!(c.approx_eq(&want, 1e-9), "seed {seed}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let a = uniform::matrix(200, 200, 3000, 1);
        let b = uniform::matrix(200, 200, 3000, 2);
        let (c1, s1) = spgemm(&a, &b).unwrap();
        let (c2, s2) = spgemm_parallel(&a, &b, 4).unwrap();
        assert!(c1.approx_eq(&c2, 1e-9));
        assert_eq!(s1.multiplies, s2.multiplies);
        assert_eq!(s1.bytes_touched, s2.bytes_touched);
    }

    #[test]
    fn traffic_exceeds_compulsory_on_shared_rows() {
        // A dense column in A forces row 0 of B to be fetched once per
        // output row: traffic >> compulsory.
        let n = 64u32;
        let mut coo = outerspace_sparse::Coo::new(n, n);
        for i in 0..n {
            coo.push(i, 0, 1.0); // column 0 of A fully dense
        }
        let a = coo.to_csr();
        let mut coo_b = outerspace_sparse::Coo::new(n, n);
        for j in 0..n {
            coo_b.push(0, j, 1.0); // row 0 of B fully dense
        }
        let b = coo_b.to_csr();
        let (_, stats) = spgemm(&a, &b).unwrap();
        let compulsory = 12 * (a.nnz() + b.nnz()) as u64;
        assert!(
            stats.bytes_touched > 10 * compulsory,
            "touched {} vs compulsory {compulsory}",
            stats.bytes_touched
        );
    }

    #[test]
    fn flop_count_matches_formula() {
        let a = uniform::matrix(64, 64, 512, 3);
        let b = uniform::matrix(64, 64, 512, 4);
        let (_, stats) = spgemm(&a, &b).unwrap();
        let flops = ops::spgemm_flops(&a, &b).unwrap();
        // The formula counts 2 flops per elementary product; Gustavson's
        // first write per slot is a multiply without an addition.
        assert_eq!(stats.multiplies * 2, flops);
        assert!(stats.additions < stats.multiplies);
    }

    #[test]
    fn two_phase_matches_single_phase() {
        let a = uniform::matrix(120, 120, 1400, 8);
        let b = uniform::matrix(120, 120, 1400, 9);
        let (c1, s1) = spgemm(&a, &b).unwrap();
        let (c2, s2) = spgemm_two_phase(&a, &b).unwrap();
        assert!(c1.approx_eq(&c2, 1e-12));
        assert_eq!(s1.multiplies, s2.multiplies);
        // The symbolic pass adds index traffic on top of the numeric pass.
        assert!(s2.bytes_touched > s1.bytes_touched);
    }

    #[test]
    fn two_phase_handles_empty_rows() {
        let a = Csr::new(3, 3, vec![0, 0, 2, 2], vec![0, 2], vec![1.0, 2.0]).unwrap();
        let (c, _) = spgemm_two_phase(&a, &a).unwrap();
        let want = outerspace_sparse::ops::spgemm_reference(&a, &a).unwrap();
        assert!(c.approx_eq(&want, 1e-12));
    }

    #[test]
    fn shape_mismatch() {
        let a = Csr::zero(3, 4);
        let b = Csr::zero(3, 3);
        assert!(spgemm(&a, &b).is_err());
    }

    #[test]
    fn identity_product() {
        let eye = Csr::identity(32);
        let (c, _) = spgemm_parallel(&eye, &eye, 3).unwrap();
        assert!(c.approx_eq(&eye, 0.0));
    }
}
