//! Filesystem dump helpers for crash-safe result files.
//!
//! The benchmark harnesses checkpoint partial results after every case; a
//! torn write would make the checkpoint unreadable and defeat `--resume`.
//! [`write_atomic`] therefore writes through a temp file in the same
//! directory, fsyncs it, and renames it over the destination, so readers
//! only ever observe the old or the new contents — never a prefix. For
//! streaming logs where rewriting the whole file per event would be
//! quadratic, [`append_jsonl`]/[`read_jsonl`] provide an append-safe
//! JSON-lines format (one compact value per line; a torn tail line is
//! skipped on read instead of poisoning the whole log).

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

use crate::{parse, Json};

/// Per-path append locks: two in-process appenders to one JSONL file must
/// never interleave (a torn or spliced record would poison the log for every
/// reader). Keyed on the canonicalized path so aliases (`./log`, absolute
/// path) share one lock. Cross-*process* writers remain single-writer by
/// contract, as before.
fn append_lock(path: &Path) -> Arc<Mutex<()>> {
    static LOCKS: OnceLock<Mutex<HashMap<PathBuf, Arc<Mutex<()>>>>> = OnceLock::new();
    // Canonicalize through the parent (the file itself may not exist yet);
    // fall back to the raw path if the parent cannot be resolved.
    let key = match (path.parent(), path.file_name()) {
        (Some(dir), Some(name)) if !dir.as_os_str().is_empty() => dir
            .canonicalize()
            .map(|d| d.join(name))
            .unwrap_or_else(|_| path.to_path_buf()),
        _ => path.to_path_buf(),
    };
    let mut map = LOCKS
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    map.entry(key).or_default().clone()
}

/// Builds the sibling temp path used by [`write_atomic`]: same directory
/// (renames across filesystems are not atomic), name prefixed with a dot and
/// suffixed with the pid so concurrent writers do not trample each other.
fn temp_sibling(path: &Path) -> PathBuf {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("dump");
    path.with_file_name(format!(".{name}.tmp.{}", std::process::id()))
}

/// Writes `contents` to `path` atomically: temp file in the same directory,
/// `sync_all`, then rename. Creates parent directories as needed. On any
/// failure the destination is left untouched (the temp file is removed
/// best-effort).
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    let tmp = temp_sibling(path);
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Serializes `value` (pretty) to `path` via [`write_atomic`].
pub fn write_json_atomic(path: &Path, value: &Json) -> io::Result<()> {
    let mut text = value.to_string_pretty();
    text.push('\n');
    write_atomic(path, &text)
}

/// Appends `value` as one compact JSON line to `path` (creating it and any
/// parent directories if missing). Append-safe: an interrupted write can only
/// corrupt the final line, which [`read_jsonl`] tolerates.
///
/// If the file does not currently end in a newline — the torn tail of a
/// writer that crashed mid-append — the fragment is truncated away before
/// writing. [`read_jsonl`] would have dropped it anyway; repairing it here
/// keeps the "every line is complete" invariant so the fragment cannot
/// become loud *interior* corruption once this append lands after it.
///
/// Concurrency: in-process appenders are serialized through a per-path lock
/// (see [`append_lock`]), and each record lands as a single `O_APPEND`
/// write of one complete line, so racing threads can never interleave a
/// torn record or truncate each other's tails. Writers in *different
/// processes* remain single-writer by contract.
pub fn append_jsonl(path: &Path, value: &Json) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    let lock = append_lock(path);
    let _serialized = lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut f = OpenOptions::new().create(true).append(true).read(true).open(path)?;
    truncate_torn_tail(&mut f)?;
    let mut line = value.to_string_compact();
    line.push('\n');
    f.write_all(line.as_bytes())
}

/// Drops any trailing partial line (bytes after the last `\n`) from `f`.
/// Scans backwards in chunks, so a large intact log is not re-read.
fn truncate_torn_tail(f: &mut File) -> io::Result<()> {
    use std::io::{Read as _, Seek as _, SeekFrom};
    const CHUNK: u64 = 4096;
    let len = f.seek(SeekFrom::End(0))?;
    if len == 0 {
        return Ok(());
    }
    let mut end = len;
    loop {
        let start = end.saturating_sub(CHUNK);
        let mut buf = vec![0u8; (end - start) as usize];
        f.seek(SeekFrom::Start(start))?;
        f.read_exact(&mut buf)?;
        if let Some(i) = buf.iter().rposition(|&b| b == b'\n') {
            let keep = start + i as u64 + 1;
            if keep != len {
                f.set_len(keep)?;
            }
            return Ok(());
        }
        if start == 0 {
            // No newline anywhere: the whole file is one torn fragment.
            f.set_len(0)?;
            return Ok(());
        }
        end = start;
    }
}

/// Reads a JSON-lines file written by [`append_jsonl`]. Blank lines are
/// skipped; a malformed *final* line (torn tail from an interrupted append)
/// is dropped silently, while malformed interior lines are an error.
pub fn read_jsonl(path: &Path) -> io::Result<Vec<Json>> {
    let text = fs::read_to_string(path)?;
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut out = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        match parse(line) {
            Ok(v) => out.push(v),
            Err(_) if i + 1 == lines.len() => break, // torn tail
            Err(e) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: line {}: {e}", path.display(), i + 1),
                ))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("outerspace-json-dump-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_atomic_round_trips_and_overwrites() {
        let dir = scratch("atomic");
        let path = dir.join("nested/out.json");
        write_atomic(&path, "{\"a\":1}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"a\":1}");
        write_atomic(&path, "{\"a\":2}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"a\":2}");
        // No temp residue.
        let leftovers: Vec<_> = fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(leftovers.len(), 1, "temp residue: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn jsonl_append_and_read_back() {
        let dir = scratch("jsonl");
        let path = dir.join("log.jsonl");
        for i in 0..3u64 {
            append_jsonl(&path, &Json::Obj(vec![("i".into(), Json::UInt(i))])).unwrap();
        }
        let vals = read_jsonl(&path).unwrap();
        assert_eq!(vals.len(), 3);
        assert_eq!(vals[2].get("i").and_then(Json::as_u64), Some(2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn jsonl_tolerates_torn_tail_but_not_torn_middle() {
        let dir = scratch("torn");
        let path = dir.join("log.jsonl");
        fs::create_dir_all(&dir).unwrap();
        fs::write(&path, "{\"i\":0}\n{\"i\":1}\n{\"i\":2").unwrap();
        // `{"i":2` lacks the closing brace: a torn final append.
        assert_eq!(read_jsonl(&path).unwrap().len(), 2);
        fs::write(&path, "{\"i\":0}\n{bad\n{\"i\":2}\n").unwrap();
        assert!(read_jsonl(&path).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    /// Crash-mid-append leaves a prefix of the last line. Every truncation
    /// point of the final record must be recoverable: the earlier records
    /// survive, the torn tail is dropped.
    #[test]
    fn jsonl_recovers_at_every_truncation_point_of_the_tail() {
        let dir = scratch("truncate");
        let path = dir.join("log.jsonl");
        fs::create_dir_all(&dir).unwrap();
        let intact = "{\"keep\":1}\n{\"keep\":2}\n";
        // A tail with strings, escapes, floats, and nesting — the parser
        // must reject every proper prefix, never mis-parse one as complete.
        let tail = "{\"s\":\"a\\\"b\\\\\",\"f\":-1.5e3,\"arr\":[1,{\"x\":null}]}";
        for cut in 1..tail.len() {
            fs::write(&path, format!("{intact}{}", &tail[..cut])).unwrap();
            let vals = read_jsonl(&path).unwrap_or_else(|e| panic!("cut {cut}: {e}"));
            assert_eq!(vals.len(), 2, "cut at byte {cut} lost intact records");
            assert_eq!(vals[1].get("keep").and_then(Json::as_u64), Some(2));
        }
        // The full tail parses once the append completes.
        fs::write(&path, format!("{intact}{tail}\n")).unwrap();
        assert_eq!(read_jsonl(&path).unwrap().len(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Appending after a crash resumes a readable log: the torn fragment
    /// (a JSON prefix or plain garbage, with no trailing newline) is
    /// repaired away and the new record lands as a complete line — so the
    /// fragment can never resurface as loud interior corruption.
    #[test]
    fn jsonl_append_after_torn_tail_resumes_cleanly() {
        let dir = scratch("resume");
        let path = dir.join("log.jsonl");
        fs::create_dir_all(&dir).unwrap();
        for fragment in ["not json at all", "{\"torn\":", "{\"s\":\"half"] {
            fs::write(&path, format!("{{\"i\":0}}\n{fragment}")).unwrap();
            assert_eq!(read_jsonl(&path).unwrap().len(), 1);
            append_jsonl(&path, &Json::Obj(vec![("i".into(), Json::UInt(1))])).unwrap();
            append_jsonl(&path, &Json::Obj(vec![("i".into(), Json::UInt(2))])).unwrap();
            let vals = read_jsonl(&path).unwrap_or_else(|e| panic!("{fragment:?}: {e}"));
            assert_eq!(vals.len(), 3, "fragment {fragment:?} not repaired");
            assert_eq!(vals[2].get("i").and_then(Json::as_u64), Some(2));
        }
        // A file that is nothing *but* a torn fragment is also repaired.
        fs::write(&path, "garbage with no newline").unwrap();
        append_jsonl(&path, &Json::Obj(vec![("i".into(), Json::UInt(7))])).unwrap();
        let vals = read_jsonl(&path).unwrap();
        assert_eq!(vals.len(), 1);
        assert_eq!(vals[0].get("i").and_then(Json::as_u64), Some(7));
        // An intact log is left untouched (no spurious truncation).
        fs::write(&path, "{\"i\":0}\n").unwrap();
        append_jsonl(&path, &Json::Obj(vec![("i".into(), Json::UInt(1))])).unwrap();
        assert_eq!(read_jsonl(&path).unwrap().len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Racing appenders on one events file must never interleave a torn
    /// record: every line parses, every record survives, and path aliases
    /// (relative vs absolute) share the same lock.
    #[test]
    fn jsonl_concurrent_appenders_never_tear_records() {
        const WRITERS: u64 = 8;
        const APPENDS: u64 = 50;
        let dir = scratch("race");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        // Seed the file with a torn tail so the repair path races too.
        fs::write(&path, "{\"i\":").unwrap();
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(WRITERS as usize));
        let workers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let barrier = barrier.clone();
                // Half the writers address the file through a `..`-style
                // alias to prove the lock keys on the resolved path.
                let path = if w % 2 == 0 {
                    path.clone()
                } else {
                    dir.join("sub/..").join("events.jsonl")
                };
                std::thread::spawn(move || {
                    barrier.wait();
                    for i in 0..APPENDS {
                        append_jsonl(
                            &path,
                            &Json::Obj(vec![
                                ("w".into(), Json::UInt(w)),
                                ("i".into(), Json::UInt(i)),
                                // Padding makes a spliced write visibly torn.
                                ("pad".into(), Json::Str("x".repeat(64))),
                            ]),
                        )
                        .unwrap();
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        // Interior corruption would fail the read outright.
        let vals = read_jsonl(&path).unwrap();
        assert_eq!(vals.len(), (WRITERS * APPENDS) as usize);
        // Every (writer, index) pair arrived exactly once.
        let mut seen: Vec<(u64, u64)> = vals
            .iter()
            .map(|v| {
                (
                    v.get("w").and_then(Json::as_u64).unwrap(),
                    v.get("i").and_then(Json::as_u64).unwrap(),
                )
            })
            .collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), (WRITERS * APPENDS) as usize, "duplicate or spliced records");
        let _ = fs::remove_dir_all(&dir);
    }

    /// Degenerate shapes: empty file, whitespace-only file, a file that is
    /// nothing but one torn line, and a missing file's error kind.
    #[test]
    fn jsonl_degenerate_files() {
        let dir = scratch("degenerate");
        let path = dir.join("log.jsonl");
        fs::create_dir_all(&dir).unwrap();
        fs::write(&path, "").unwrap();
        assert!(read_jsonl(&path).unwrap().is_empty());
        fs::write(&path, "\n  \n\n").unwrap();
        assert!(read_jsonl(&path).unwrap().is_empty());
        fs::write(&path, "{\"only\":").unwrap();
        assert!(read_jsonl(&path).unwrap().is_empty());
        let missing = read_jsonl(&dir.join("nope.jsonl")).unwrap_err();
        assert_eq!(missing.kind(), std::io::ErrorKind::NotFound);
        let _ = fs::remove_dir_all(&dir);
    }
}
