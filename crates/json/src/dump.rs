//! Filesystem dump helpers for crash-safe result files.
//!
//! The benchmark harnesses checkpoint partial results after every case; a
//! torn write would make the checkpoint unreadable and defeat `--resume`.
//! [`write_atomic`] therefore writes through a temp file in the same
//! directory, fsyncs it, and renames it over the destination, so readers
//! only ever observe the old or the new contents — never a prefix. For
//! streaming logs where rewriting the whole file per event would be
//! quadratic, [`append_jsonl`]/[`read_jsonl`] provide an append-safe
//! JSON-lines format (one compact value per line; a torn tail line is
//! skipped on read instead of poisoning the whole log).

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use crate::{parse, Json};

/// Builds the sibling temp path used by [`write_atomic`]: same directory
/// (renames across filesystems are not atomic), name prefixed with a dot and
/// suffixed with the pid so concurrent writers do not trample each other.
fn temp_sibling(path: &Path) -> PathBuf {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("dump");
    path.with_file_name(format!(".{name}.tmp.{}", std::process::id()))
}

/// Writes `contents` to `path` atomically: temp file in the same directory,
/// `sync_all`, then rename. Creates parent directories as needed. On any
/// failure the destination is left untouched (the temp file is removed
/// best-effort).
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    let tmp = temp_sibling(path);
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Serializes `value` (pretty) to `path` via [`write_atomic`].
pub fn write_json_atomic(path: &Path, value: &Json) -> io::Result<()> {
    let mut text = value.to_string_pretty();
    text.push('\n');
    write_atomic(path, &text)
}

/// Appends `value` as one compact JSON line to `path` (creating it and any
/// parent directories if missing). Append-safe: an interrupted write can only
/// corrupt the final line, which [`read_jsonl`] tolerates.
pub fn append_jsonl(path: &Path, value: &Json) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    let mut f = OpenOptions::new().create(true).append(true).open(path)?;
    let mut line = value.to_string_compact();
    line.push('\n');
    f.write_all(line.as_bytes())
}

/// Reads a JSON-lines file written by [`append_jsonl`]. Blank lines are
/// skipped; a malformed *final* line (torn tail from an interrupted append)
/// is dropped silently, while malformed interior lines are an error.
pub fn read_jsonl(path: &Path) -> io::Result<Vec<Json>> {
    let text = fs::read_to_string(path)?;
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut out = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        match parse(line) {
            Ok(v) => out.push(v),
            Err(_) if i + 1 == lines.len() => break, // torn tail
            Err(e) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: line {}: {e}", path.display(), i + 1),
                ))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("outerspace-json-dump-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_atomic_round_trips_and_overwrites() {
        let dir = scratch("atomic");
        let path = dir.join("nested/out.json");
        write_atomic(&path, "{\"a\":1}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"a\":1}");
        write_atomic(&path, "{\"a\":2}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"a\":2}");
        // No temp residue.
        let leftovers: Vec<_> = fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(leftovers.len(), 1, "temp residue: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn jsonl_append_and_read_back() {
        let dir = scratch("jsonl");
        let path = dir.join("log.jsonl");
        for i in 0..3u64 {
            append_jsonl(&path, &Json::Obj(vec![("i".into(), Json::UInt(i))])).unwrap();
        }
        let vals = read_jsonl(&path).unwrap();
        assert_eq!(vals.len(), 3);
        assert_eq!(vals[2].get("i").and_then(Json::as_u64), Some(2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn jsonl_tolerates_torn_tail_but_not_torn_middle() {
        let dir = scratch("torn");
        let path = dir.join("log.jsonl");
        fs::create_dir_all(&dir).unwrap();
        fs::write(&path, "{\"i\":0}\n{\"i\":1}\n{\"i\":2").unwrap();
        // `{"i":2` lacks the closing brace: a torn final append.
        assert_eq!(read_jsonl(&path).unwrap().len(), 2);
        fs::write(&path, "{\"i\":0}\n{bad\n{\"i\":2}\n").unwrap();
        assert!(read_jsonl(&path).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
