//! A tiny, dependency-free JSON library: a [`Json`] value type, compact and
//! pretty emitters, a strict parser, and a [`ToJson`] conversion trait with an
//! [`impl_to_json!`] helper macro for plain structs.
//!
//! This exists so the workspace builds and tests with **no network access**:
//! simulator reports, benchmark rows, and traces are serialized through this
//! crate instead of `serde`/`serde_json`. It intentionally supports only the
//! subset of JSON the workspace emits: finite numbers (non-finite floats
//! serialize as `null`), UTF-8 strings, arrays, and string-keyed objects with
//! preserved insertion order.

use std::fmt::Write as _;

pub mod dump;

/// A JSON value.
///
/// Integers keep their own variants so that values such as `16` are emitted
/// as `16`, never `16.0` — downstream tooling (and the repo's own tests)
/// match on exact integer formatting.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(String, Json)>) -> Json {
        Json::Obj(pairs)
    }

    /// Look up a key in an object; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one (or a non-negative
    /// signed integer).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(u) => Some(u),
            Json::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as a float; integers widen losslessly where possible.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Float(f) => Some(f),
            Json::Int(i) => Some(i as f64),
            Json::UInt(u) => Some(u as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact (single-line) serialization.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Pretty serialization with two-space indentation, matching the layout
    /// `serde_json::to_string_pretty` produced for the benchmark artifacts.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(f) => write_float(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let _ = write!(out, "{f}");
        // `{}` for f64 drops ".0" on whole numbers; that is still valid JSON.
    } else {
        // JSON has no NaN/Infinity literal.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

macro_rules! to_json_unsigned {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
    )*};
}

macro_rules! to_json_signed {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}

to_json_unsigned!(u8, u16, u32, u64, usize);
to_json_signed!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(*self as f64)
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

/// Implement [`ToJson`] for a struct by listing its fields:
///
/// ```
/// use outerspace_json::{impl_to_json, Json, ToJson};
/// struct Row { name: &'static str, cycles: u64 }
/// impl_to_json!(Row { name, cycles });
/// let j = Row { name: "x", cycles: 3 }.to_json();
/// assert_eq!(j.to_string_compact(), r#"{"name":"x","cycles":3}"#);
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $( (stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)) ),+
                ])
            }
        }
    };
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Parse a JSON document. Trailing non-whitespace input is an error.
pub fn parse(input: &str) -> Result<Json, JsonParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after value"));
    }
    Ok(value)
}

fn err(offset: usize, message: &str) -> JsonParseError {
    JsonParseError {
        offset,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonParseError> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected '{}'", c as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: Json,
) -> Result<Json, JsonParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected '{lit}'")))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonParseError> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(err(*pos, "expected ',' or '}' in object")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonParseError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "non-ascii \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogate pairs are not needed for simulator output.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err(*pos, "invalid utf-8"))?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad number"))?;
    if text.is_empty() || text == "-" {
        return Err(err(start, "expected a number"));
    }
    if !is_float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Json::UInt(u));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Json::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| err(start, "malformed number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_emit_without_decimal_point() {
        let j = Json::Obj(vec![
            ("n_tiles".to_string(), 16u32.to_json()),
            ("clock".to_string(), 1.5f64.to_json()),
        ]);
        assert_eq!(j.to_string_compact(), r#"{"n_tiles":16,"clock":1.5}"#);
    }

    #[test]
    fn round_trip_compact_and_pretty() {
        let j = Json::Obj(vec![
            ("name".to_string(), Json::Str("a \"b\"\n".to_string())),
            (
                "xs".to_string(),
                Json::Arr(vec![Json::UInt(1), Json::Int(-2), Json::Float(0.5)]),
            ),
            ("none".to_string(), Json::Null),
            ("ok".to_string(), Json::Bool(true)),
            ("empty".to_string(), Json::Arr(vec![])),
        ]);
        for text in [j.to_string_compact(), j.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), j);
        }
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1.2.3", "[1] x", "\"ab"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn non_finite_floats_emit_null() {
        assert_eq!(Json::Float(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn nested_macro_structs() {
        struct Inner {
            v: u64,
        }
        impl_to_json!(Inner { v });
        struct Outer {
            inner: Inner,
            tag: String,
            pairs: Vec<(f64, u64)>,
            triple: [f64; 3],
        }
        impl ToJson for Outer {
            fn to_json(&self) -> Json {
                Json::Obj(vec![
                    ("inner".to_string(), self.inner.to_json()),
                    ("tag".to_string(), self.tag.to_json()),
                    ("pairs".to_string(), self.pairs.to_json()),
                    ("triple".to_string(), self.triple.to_json()),
                ])
            }
        }
        let o = Outer {
            inner: Inner { v: 9 },
            tag: "t".to_string(),
            pairs: vec![(0.5, 2)],
            triple: [1.0, 2.5, 3.0],
        };
        assert_eq!(
            o.to_json().to_string_compact(),
            r#"{"inner":{"v":9},"tag":"t","pairs":[[0.5,2]],"triple":[1,2.5,3]}"#
        );
    }
}
