//! Power and area model of the OuterSPACE accelerator — Table 6 (§7.4).
//!
//! The paper derives its estimates from CACTI 6.5 (caches), published 32 nm
//! ARM Cortex-A5+VFPv4 data (cores, from the swizzle-switch paper [53]),
//! the JEDEC HBM specification (memory), and swizzle-switch crossbar
//! characterization. Those tools' outputs for the paper's exact
//! configuration are quoted in Table 6; this crate encodes per-unit
//! constants *calibrated to reproduce that table* at the default
//! [`OuterSpaceConfig`], and scales first-order with configuration changes
//! (unit counts, cache sizes, port counts, bandwidth utilization), so
//! ablation studies get sane area/power deltas.
//!
//! ```
//! use outerspace_energy::AreaPowerModel;
//! use outerspace_sim::OuterSpaceConfig;
//!
//! let model = AreaPowerModel::tsmc32nm();
//! let table6 = model.table6(&OuterSpaceConfig::default(), None);
//! // The paper totals: 86.74 mm², 23.99 W.
//! assert!((table6.total_area_mm2() - 86.74).abs() < 2.0);
//! assert!((table6.total_power_w() - 23.99).abs() < 2.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use outerspace_json::impl_to_json;
use outerspace_sim::engine::CycleBreakdown;
use outerspace_sim::{MachineKind, OuterSpaceConfig, PhaseStats, SimReport};

/// The activity factors Table 6's dynamic-power terms consume: how hard
/// each component actually works. One value of this type fully determines
/// the power column for a given configuration, so the paper's suite-average
/// assumptions, whole-run measurements and single-phase engine breakdowns
/// all feed the same [`AreaPowerModel::table6_with_activity`] path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityFactors {
    /// Mean fraction of PEs doing useful work, in [0, 1].
    pub pe_busy: f64,
    /// System-wide L0 accesses per cycle.
    pub l0_accesses_per_cycle: f64,
    /// System-wide L1 accesses per cycle.
    pub l1_accesses_per_cycle: f64,
    /// Achieved fraction of peak HBM bandwidth, in [0, 1].
    pub bw_utilization: f64,
}

impl ActivityFactors {
    /// The paper's suite averages: PEs near fully busy, ~6.8 L0 accesses
    /// per cycle system-wide, ~0.55 L1, ~0.6 of peak bandwidth — the
    /// activity that reproduces Table 6's power column.
    pub fn paper_defaults() -> Self {
        ActivityFactors {
            pe_busy: 1.0,
            l0_accesses_per_cycle: 6.8,
            l1_accesses_per_cycle: 0.55,
            bw_utilization: 0.6,
        }
    }

    /// Suite-average activity for `kind` when no measured report exists.
    /// OuterSPACE uses the paper's Table 6 assumptions; the SpArch analog
    /// touches its small condensed working set less (fewer, wider streams
    /// through L0/L1) but keeps HBM hotter — partials stream to and from
    /// DRAM instead of parking in per-tile caches.
    pub fn defaults_for(kind: MachineKind) -> Self {
        match kind {
            MachineKind::OuterSpace => Self::paper_defaults(),
            MachineKind::SpArch => ActivityFactors {
                pe_busy: 0.9,
                l0_accesses_per_cycle: 4.0,
                l1_accesses_per_cycle: 0.3,
                bw_utilization: 0.8,
            },
        }
    }

    /// Measured activity of a whole simulated run (multiply + merge).
    pub fn from_report(cfg: &OuterSpaceConfig, r: &SimReport) -> Self {
        let cyc = r.total_cycles().max(1) as f64;
        let busy = (r.multiply.busy_pe_cycles + r.merge.busy_pe_cycles) as f64
            / (cyc * cfg.total_pes() as f64);
        let l0 = (r.multiply.l0_hits
            + r.multiply.l0_misses
            + r.merge.l0_hits
            + r.merge.l0_misses) as f64
            / cyc;
        let l1 = (r.multiply.l1_hits
            + r.multiply.l1_misses
            + r.merge.l1_hits
            + r.merge.l1_misses) as f64
            / cyc;
        let bw = (r.hbm_bytes() as f64 / r.seconds())
            / cfg.hbm_total_bandwidth_bytes_per_sec() as f64;
        ActivityFactors {
            pe_busy: busy.min(1.0),
            l0_accesses_per_cycle: l0,
            l1_accesses_per_cycle: l1,
            bw_utilization: bw.min(1.0),
        }
    }

    /// Measured activity of one phase, from the engine's hierarchical
    /// cycle breakdown: the busy share and per-channel occupancy come
    /// straight from the [`CycleBreakdown`], the cache rates from the
    /// phase counters over its makespan.
    pub fn from_phase(
        _cfg: &OuterSpaceConfig,
        stats: &PhaseStats,
        breakdown: &CycleBreakdown,
    ) -> Self {
        let cyc = breakdown.makespan.max(1) as f64;
        ActivityFactors {
            pe_busy: breakdown.shares().busy.min(1.0),
            l0_accesses_per_cycle: (stats.l0_hits + stats.l0_misses) as f64 / cyc,
            l1_accesses_per_cycle: (stats.l1_hits + stats.l1_misses) as f64 / cyc,
            bw_utilization: breakdown.mean_channel_occupancy().min(1.0),
        }
    }
}

impl_to_json!(ActivityFactors {
    pe_busy,
    l0_accesses_per_cycle,
    l1_accesses_per_cycle,
    bw_utilization,
});

/// One row of Table 6.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentEstimate {
    /// Component name, matching Table 6's rows.
    pub name: String,
    /// Area in mm² (`None` for off-chip HBM, reported as "N/A").
    pub area_mm2: Option<f64>,
    /// Power in W at the modeled activity.
    pub power_w: f64,
}

/// The complete Table 6 estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct Table6 {
    /// Per-component rows, in the paper's order.
    pub components: Vec<ComponentEstimate>,
}

impl Table6 {
    /// Total on-chip area (excludes HBM, as the paper does).
    pub fn total_area_mm2(&self) -> f64 {
        self.components.iter().filter_map(|c| c.area_mm2).sum()
    }

    /// Total system power including HBM.
    pub fn total_power_w(&self) -> f64 {
        self.components.iter().map(|c| c.power_w).sum()
    }
}

/// Technology constants, calibrated against Table 6 at the paper's 32 nm
/// node and default configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaPowerModel {
    /// Area of one PE (ARM Cortex-A5-class core + FPU + queues + 1 kB
    /// scratchpad), mm².
    pub core_area_mm2: f64,
    /// Static + average dynamic power of one fully-busy core, W.
    pub core_power_w: f64,
    /// Idle (leakage) fraction of core power.
    pub core_idle_fraction: f64,
    /// SRAM area slope per kB, mm²/kB (the paper's L0/L1 are internally
    /// banked single-ported arrays behind a crossbar, so area is linear in
    /// capacity).
    pub sram_mm2_per_kb: f64,
    /// Fixed per-cache-instance overhead (controller, MSHRs, tag logic),
    /// mm². Together with the slope this reproduces CACTI's Table 6 output
    /// for both the 16 kB L0 (2.15 mm²) and the 4 kB L1 (0.78 mm²).
    pub sram_overhead_mm2: f64,
    /// SRAM leakage per kB, W.
    pub sram_leak_w_per_kb: f64,
    /// SRAM dynamic energy per 64 B access, J.
    pub sram_access_j: f64,
    /// Crossbar area per bit-slice-port², mm² (swizzle-switch, [53]).
    pub xbar_area_mm2: f64,
    /// Crossbar power at full utilization, W (both levels combined).
    pub xbar_power_w: f64,
    /// HBM standby power, W (PHY + refresh + controllers).
    pub hbm_idle_w: f64,
    /// HBM additional power at 100 % bandwidth utilization, W.
    pub hbm_active_w: f64,
}

impl AreaPowerModel {
    /// The paper's 32 nm calibration.
    pub fn tsmc32nm() -> Self {
        AreaPowerModel {
            core_area_mm2: 0.18,
            core_power_w: 0.0292,
            core_idle_fraction: 0.25,
            sram_mm2_per_kb: 0.114,
            sram_overhead_mm2: 0.3265,
            sram_leak_w_per_kb: 0.8e-3,
            sram_access_j: 60e-12,
            xbar_area_mm2: 0.07,
            xbar_power_w: 0.53,
            hbm_idle_w: 6.2,
            hbm_active_w: 14.0,
        }
    }

    /// Number of cores in the system. OuterSPACE: PEs plus one LCP per tile
    /// plus the CCP. SpArch: the condensed-multiply PEs, one comparator node
    /// per internal merge-tree level fan-in (`ways − 1`), and a control core.
    fn n_cores(cfg: &OuterSpaceConfig) -> u64 {
        match cfg.machine {
            MachineKind::OuterSpace => cfg.total_pes() + cfg.n_tiles as u64 + 1,
            MachineKind::SpArch => {
                cfg.sparch_mul_pes as u64 + (cfg.merge_tree_ways as u64).saturating_sub(1) + 1
            }
        }
    }

    /// Area of one banked cache instance of `kb` kilobytes.
    pub fn cache_area_mm2(&self, kb: f64) -> f64 {
        self.sram_overhead_mm2 + self.sram_mm2_per_kb * kb
    }

    /// Produces the Table 6 estimate for `cfg`.
    ///
    /// When a [`SimReport`] is given, dynamic power uses its measured
    /// activity (PE busy fraction, cache accesses per cycle, bandwidth
    /// utilization); otherwise the paper's suite-average activity factors
    /// are assumed.
    pub fn table6(&self, cfg: &OuterSpaceConfig, report: Option<&SimReport>) -> Table6 {
        let activity = match report {
            Some(r) => ActivityFactors::from_report(cfg, r),
            None => ActivityFactors::defaults_for(cfg.machine),
        };
        self.table6_with_activity(cfg, &activity)
    }

    /// [`table6`](Self::table6) at an explicit activity level — the entry
    /// point single-phase estimates use via [`ActivityFactors::from_phase`].
    pub fn table6_with_activity(
        &self,
        cfg: &OuterSpaceConfig,
        activity: &ActivityFactors,
    ) -> Table6 {
        let n_cores = Self::n_cores(cfg) as f64;
        let l0_kb_total = (cfg.n_tiles * cfg.l0_multiply_bytes) as f64 / 1024.0;
        let l1_kb_total = (cfg.n_l1 * cfg.l1_bytes) as f64 / 1024.0;
        let ActivityFactors {
            pe_busy,
            l0_accesses_per_cycle: l0_apc,
            l1_accesses_per_cycle: l1_apc,
            bw_utilization: bw_util,
        } = *activity;

        let core_power = n_cores
            * self.core_power_w
            * (self.core_idle_fraction + (1.0 - self.core_idle_fraction) * pe_busy);

        let clock_hz = cfg.clock_ghz * 1e9;
        let l0_area =
            cfg.n_tiles as f64 * self.cache_area_mm2(cfg.l0_multiply_bytes as f64 / 1024.0);
        let l0_power =
            l0_kb_total * self.sram_leak_w_per_kb + l0_apc * clock_hz * self.sram_access_j;
        let l1_area =
            cfg.n_l1 as f64 * self.cache_area_mm2(cfg.l1_bytes as f64 / 1024.0);
        let l1_power =
            l1_kb_total * self.sram_leak_w_per_kb + l1_apc * clock_hz * self.sram_access_j;

        let hbm_power = self.hbm_idle_w + self.hbm_active_w * bw_util;

        // SpArch has no swizzle-switch crossbars: its comparator array is
        // already counted in the core row, so the crossbar row zeroes out.
        let (xbar_area, xbar_power) = match cfg.machine {
            MachineKind::OuterSpace => {
                (self.xbar_area_mm2, self.xbar_power_w * pe_busy.max(0.5))
            }
            MachineKind::SpArch => (0.0, 0.0),
        };

        Table6 {
            components: vec![
                ComponentEstimate {
                    name: "All PEs, LCPs, CCP".into(),
                    area_mm2: Some(n_cores * self.core_area_mm2),
                    power_w: core_power,
                },
                ComponentEstimate {
                    name: "All L0 caches/scratchpads".into(),
                    area_mm2: Some(l0_area),
                    power_w: l0_power,
                },
                ComponentEstimate {
                    name: "All L1 caches".into(),
                    area_mm2: Some(l1_area),
                    power_w: l1_power,
                },
                ComponentEstimate {
                    name: "All crossbars".into(),
                    area_mm2: Some(xbar_area),
                    power_w: xbar_power,
                },
                ComponentEstimate { name: "Main memory".into(), area_mm2: None, power_w: hbm_power },
            ],
        }
    }

    /// GFLOPS/W for a simulated run — the paper reports 0.12 GFLOPS/W
    /// average and a ~150× perf/W advantage over the K40 (§7.4).
    pub fn gflops_per_watt(&self, cfg: &OuterSpaceConfig, report: &SimReport) -> f64 {
        let t6 = self.table6(cfg, Some(report));
        report.gflops() / t6.total_power_w()
    }

    /// Energy of one simulated phase in joules: leakage over the phase
    /// duration plus per-event dynamic energy (core busy cycles, cache
    /// accesses, HBM bytes at the JEDEC ~7 pJ/bit transfer energy).
    pub fn phase_energy_joules(
        &self,
        cfg: &OuterSpaceConfig,
        phase: &outerspace_sim::PhaseStats,
    ) -> f64 {
        let secs = cfg.cycles_to_seconds(phase.cycles);
        let n_cores = Self::n_cores(cfg) as f64;
        let sram_kb = (cfg.n_tiles * cfg.l0_multiply_bytes + cfg.n_l1 * cfg.l1_bytes) as f64
            / 1024.0;
        let leakage_w = n_cores * self.core_power_w * self.core_idle_fraction
            + sram_kb * self.sram_leak_w_per_kb
            + self.hbm_idle_w;
        let core_dyn_j = phase.busy_pe_cycles as f64 / (cfg.clock_ghz * 1e9)
            * self.core_power_w
            * (1.0 - self.core_idle_fraction);
        let cache_accesses =
            (phase.l0_hits + phase.l0_misses + phase.l1_hits + phase.l1_misses) as f64;
        let sram_dyn_j = cache_accesses * self.sram_access_j;
        let hbm_dyn_j = phase.hbm_bytes() as f64 * 8.0 * 7e-12;
        leakage_w * secs + core_dyn_j + sram_dyn_j + hbm_dyn_j
    }

    /// Full energy report for a simulated run.
    pub fn energy_report(&self, cfg: &OuterSpaceConfig, report: &SimReport) -> EnergyReport {
        let convert_j =
            report.convert.as_ref().map(|p| self.phase_energy_joules(cfg, p)).unwrap_or(0.0);
        let multiply_j = self.phase_energy_joules(cfg, &report.multiply);
        let merge_j = self.phase_energy_joules(cfg, &report.merge);
        let total_j = convert_j + multiply_j + merge_j;
        let secs = report.seconds();
        EnergyReport {
            convert_j,
            multiply_j,
            merge_j,
            total_j,
            average_power_w: if secs > 0.0 { total_j / secs } else { 0.0 },
            energy_delay_js: total_j * secs,
            nj_per_flop: if report.flops() > 0 {
                total_j * 1e9 / report.flops() as f64
            } else {
                0.0
            },
        }
    }
}

/// Per-phase energy of one simulated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Conversion-phase energy (0 when skipped), J.
    pub convert_j: f64,
    /// Multiply-phase energy, J.
    pub multiply_j: f64,
    /// Merge-phase energy, J.
    pub merge_j: f64,
    /// Total energy, J.
    pub total_j: f64,
    /// Average power over the run, W.
    pub average_power_w: f64,
    /// Energy-delay product, J·s.
    pub energy_delay_js: f64,
    /// Energy per useful flop, nJ.
    pub nj_per_flop: f64,
}

impl_to_json!(ComponentEstimate { name, area_mm2, power_w });
impl_to_json!(Table6 { components });
impl_to_json!(EnergyReport {
    convert_j,
    multiply_j,
    merge_j,
    total_j,
    average_power_w,
    energy_delay_js,
    nj_per_flop,
});

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_sim::Simulator;

    #[test]
    fn default_config_reproduces_table6_areas() {
        let m = AreaPowerModel::tsmc32nm();
        let t = m.table6(&OuterSpaceConfig::default(), None);
        let area = |name: &str| {
            t.components
                .iter()
                .find(|c| c.name.contains(name))
                .and_then(|c| c.area_mm2)
                .unwrap()
        };
        // Paper: 49.14 / 34.40 / 3.13 / 0.07 mm².
        assert!((area("PEs") - 49.14).abs() < 1.0, "cores {}", area("PEs"));
        assert!((area("L0") - 34.40).abs() < 2.0, "l0 {}", area("L0"));
        assert!((area("L1") - 3.13).abs() < 1.0, "l1 {}", area("L1"));
        assert!((area("crossbars") - 0.07).abs() < 0.01);
        assert!((t.total_area_mm2() - 86.74).abs() < 2.5, "total {}", t.total_area_mm2());
    }

    #[test]
    fn default_activity_reproduces_table6_power() {
        let m = AreaPowerModel::tsmc32nm();
        let t = m.table6(&OuterSpaceConfig::default(), None);
        // Paper total: 23.99 W.
        assert!((t.total_power_w() - 23.99).abs() < 2.0, "total {}", t.total_power_w());
        let hbm = t.components.last().unwrap();
        assert!((hbm.power_w - 14.60).abs() < 1.0, "hbm {}", hbm.power_w);
    }

    #[test]
    fn power_scales_with_measured_activity() {
        let m = AreaPowerModel::tsmc32nm();
        let cfg = OuterSpaceConfig::default();
        let sim = Simulator::new(cfg.clone()).unwrap();
        let a = outerspace_gen::uniform::matrix(1024, 1024, 16_384, 1);
        let (_, rep) = sim.spgemm(&a, &a).unwrap();
        let with = m.table6(&cfg, Some(&rep));
        assert!(with.total_power_w() > 5.0);
        assert!(with.total_power_w() < 30.0);
    }

    #[test]
    fn gflops_per_watt_in_paper_ballpark() {
        let m = AreaPowerModel::tsmc32nm();
        let cfg = OuterSpaceConfig::default();
        let sim = Simulator::new(cfg.clone()).unwrap();
        let a = outerspace_gen::uniform::matrix(8192, 8192, 131_072, 2);
        let (_, rep) = sim.spgemm(&a, &a).unwrap();
        let gpw = m.gflops_per_watt(&cfg, &rep);
        // Paper: 0.12 GFLOPS/W on the suite; allow a broad band for the
        // small calibration matrix.
        assert!((0.005..1.0).contains(&gpw), "GFLOPS/W {gpw}");
    }

    #[test]
    fn bigger_caches_cost_more_area() {
        let m = AreaPowerModel::tsmc32nm();
        let mut cfg = OuterSpaceConfig::default();
        let base = m.table6(&cfg, None).total_area_mm2();
        cfg.l0_multiply_bytes *= 2;
        let bigger = m.table6(&cfg, None).total_area_mm2();
        assert!(bigger > base + 10.0);
    }

    #[test]
    fn energy_report_is_consistent() {
        let m = AreaPowerModel::tsmc32nm();
        let cfg = OuterSpaceConfig::default();
        let sim = Simulator::new(cfg.clone()).unwrap();
        let a = outerspace_gen::uniform::matrix(2048, 2048, 24_000, 3);
        let (_, rep) = sim.spgemm(&a, &a).unwrap();
        let e = m.energy_report(&cfg, &rep);
        assert!(e.total_j > 0.0);
        assert!((e.convert_j + e.multiply_j + e.merge_j - e.total_j).abs() < 1e-12);
        // Average power must sit between idle and the Table 6 envelope.
        assert!(
            (3.0..35.0).contains(&e.average_power_w),
            "avg power {} W",
            e.average_power_w
        );
        assert!(e.nj_per_flop > 0.0);
    }

    #[test]
    fn more_work_costs_more_energy() {
        let m = AreaPowerModel::tsmc32nm();
        let cfg = OuterSpaceConfig::default();
        let sim = Simulator::new(cfg.clone()).unwrap();
        let small = outerspace_gen::uniform::matrix(1024, 1024, 8_000, 4);
        let big = outerspace_gen::uniform::matrix(1024, 1024, 32_000, 4);
        let (_, r1) = sim.spgemm(&small, &small).unwrap();
        let (_, r2) = sim.spgemm(&big, &big).unwrap();
        let e1 = m.energy_report(&cfg, &r1).total_j;
        let e2 = m.energy_report(&cfg, &r2).total_j;
        assert!(e2 > 2.0 * e1, "{e2} vs {e1}");
    }

    #[test]
    fn explicit_activity_matches_the_delegating_paths() {
        let m = AreaPowerModel::tsmc32nm();
        let cfg = OuterSpaceConfig::default();
        assert_eq!(
            m.table6(&cfg, None),
            m.table6_with_activity(&cfg, &ActivityFactors::paper_defaults())
        );
        let sim = Simulator::new(cfg.clone()).unwrap();
        let a = outerspace_gen::uniform::matrix(512, 512, 6_000, 5);
        let (_, rep) = sim.spgemm(&a, &a).unwrap();
        assert_eq!(
            m.table6(&cfg, Some(&rep)),
            m.table6_with_activity(&cfg, &ActivityFactors::from_report(&cfg, &rep))
        );
    }

    #[test]
    fn phase_breakdown_drives_a_sane_power_estimate() {
        let m = AreaPowerModel::tsmc32nm();
        let cfg = OuterSpaceConfig::default();
        let a = outerspace_gen::uniform::matrix(1024, 1024, 16_384, 6);
        let (stats, _, bd) = outerspace_sim::phases::multiply::simulate_multiply_with_breakdown(
            &cfg,
            &a.to_csc(),
            &a,
        )
        .unwrap();
        let af = ActivityFactors::from_phase(&cfg, &stats, &bd);
        assert!((0.0..=1.0).contains(&af.pe_busy), "pe_busy {}", af.pe_busy);
        assert!((0.0..=1.0).contains(&af.bw_utilization));
        assert!(af.l0_accesses_per_cycle > 0.0);
        let t = m.table6_with_activity(&cfg, &af);
        let idle = m.table6_with_activity(
            &cfg,
            &ActivityFactors {
                pe_busy: 0.0,
                l0_accesses_per_cycle: 0.0,
                l1_accesses_per_cycle: 0.0,
                bw_utilization: 0.0,
            },
        );
        assert!(t.total_power_w() > idle.total_power_w());
        assert!(t.total_power_w() < 30.0);
    }

    #[test]
    fn sparch_machine_reshapes_the_estimate() {
        let m = AreaPowerModel::tsmc32nm();
        let cfg =
            OuterSpaceConfig { machine: MachineKind::SpArch, ..OuterSpaceConfig::default() };
        let sparch = m.table6(&cfg, None);
        let ospace = m.table6(&OuterSpaceConfig::default(), None);
        // 16 mul PEs + 63 comparators + control ≪ 256 PEs + 17 control
        // cores, and no crossbar: the SpArch die is markedly smaller (the
        // shared L0/L1 arrays stay, so the gap is the core estate).
        assert!(
            sparch.total_area_mm2() < ospace.total_area_mm2() * 0.7,
            "sparch {} vs outerspace {}",
            sparch.total_area_mm2(),
            ospace.total_area_mm2()
        );
        let xbar = |t: &Table6| {
            t.components.iter().find(|c| c.name.contains("crossbars")).unwrap().power_w
        };
        assert_eq!(xbar(&sparch), 0.0);
        assert!(xbar(&ospace) > 0.0);
        // Each machine gets its own default activity surface.
        assert_eq!(
            ActivityFactors::defaults_for(MachineKind::OuterSpace),
            ActivityFactors::paper_defaults()
        );
        assert_ne!(
            ActivityFactors::defaults_for(MachineKind::SpArch),
            ActivityFactors::paper_defaults()
        );
    }

    #[test]
    fn table_serializes() {
        let m = AreaPowerModel::tsmc32nm();
        let t = m.table6(&OuterSpaceConfig::default(), None);
        let json = outerspace_json::ToJson::to_json(&t).to_string_compact();
        assert!(json.contains("Main memory"));
    }
}
