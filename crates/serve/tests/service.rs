//! End-to-end robustness tests for the request service: typed shedding at a
//! full queue, deadline expiry while queued and mid-compute, panicking
//! worker isolation, draining and aborting shutdown with zero dropped
//! requests, deterministic fault-retry accounting, and the silent-data-
//! corruption defense (quarantine, cache hygiene, circuit breakers).

use std::sync::Arc;
use std::time::Duration;

use outerspace_serve::kernels;
use outerspace_serve::{
    Op, OpOutput, Rejected, RejectReason, Server, ServerConfig, ServeError, SubmitOpts, Ticket,
};
use outerspace_sim::{FaultModel, OuterSpaceConfig};

fn op(seed: u64) -> Op {
    let a = Arc::new(outerspace_gen::uniform::matrix(48, 48, 300, seed));
    Op::Spgemm { a: a.clone(), b: a }
}

fn slow(ms: u64, deadline_ms: u64) -> SubmitOpts {
    SubmitOpts {
        deadline: Some(Duration::from_millis(deadline_ms)),
        force_kernel: Some(format!("chaos_sleep:{ms}")),
    }
}

#[test]
fn full_queue_sheds_with_typed_rejection() {
    // One worker, queue of 2, every request pinned to a 200 ms stall: the
    // worker is busy with #1 while #2/#3 fill the queue, so #4+ must shed.
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_cap: 2,
        admission_guard: false,
        ..ServerConfig::default()
    });
    let mut tickets: Vec<Ticket> = Vec::new();
    let mut sheds: Vec<Rejected> = Vec::new();
    for i in 0..8 {
        match server.submit_opts(op(i), slow(200, 10_000)) {
            Ok(t) => tickets.push(t),
            Err(r) => sheds.push(r),
        }
    }
    assert!(!sheds.is_empty(), "a 2-deep queue must shed an 8-burst");
    for shed in &sheds {
        assert_eq!(shed.reason, RejectReason::QueueFull);
        assert!(shed.retry_after_hint >= Duration::from_millis(1));
    }
    for t in tickets {
        assert!(t.wait().result.is_ok(), "admitted requests must complete");
    }
    let snap = server.shutdown();
    assert!(snap.accounted_ok(), "identity must hold: {snap:?}");
    assert_eq!(snap.submitted, 8);
    assert_eq!(snap.rejected_queue_full, snap.rejected());
}

#[test]
fn deadline_expires_mid_compute_without_wedging_the_pool() {
    let server = Server::start(ServerConfig {
        workers: 1,
        admission_guard: false,
        ..ServerConfig::default()
    });
    // 2 s stall against a 60 ms deadline: the watchdog must cut it off.
    let t = server.submit_opts(op(1), slow(2_000, 60)).unwrap();
    let resp = t.wait();
    match resp.result {
        Err(ServeError::DeadlineExceeded { deadline, waited }) => {
            assert_eq!(deadline, Duration::from_millis(60));
            assert!(waited >= deadline, "cut off before the deadline?");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    // The sole worker must already be free (the stalled compute thread was
    // abandoned, not waited on): a healthy request completes promptly.
    let healthy = server.submit(op(2)).unwrap().wait();
    assert!(healthy.result.is_ok(), "pool wedged after a timeout");
    let snap = server.shutdown();
    assert!(snap.accounted_ok());
    assert_eq!(snap.timed_out, 1);
    assert_eq!(snap.deadline_violations, 0);
}

#[test]
fn deadline_expires_while_queued() {
    let server = Server::start(ServerConfig {
        workers: 1,
        admission_guard: false,
        ..ServerConfig::default()
    });
    // #1 occupies the worker for ~300 ms; #2's 50 ms deadline lapses in the
    // queue behind it.
    let t1 = server.submit_opts(op(1), slow(300, 10_000)).unwrap();
    let t2 = server.submit_opts(op(2), SubmitOpts {
        deadline: Some(Duration::from_millis(50)),
        force_kernel: None,
    });
    let t2 = t2.unwrap();
    assert!(t1.wait().result.is_ok());
    match t2.wait().result {
        Err(ServeError::DeadlineExceeded { .. }) => {}
        other => panic!("expected queued-expiry DeadlineExceeded, got {other:?}"),
    }
    let snap = server.shutdown();
    assert!(snap.accounted_ok());
    assert_eq!(snap.timed_out, 1);
}

#[test]
fn panicking_kernel_is_isolated_to_a_failed_response() {
    let server = Server::start(ServerConfig {
        workers: 2,
        admission_guard: false,
        ..ServerConfig::default()
    });
    let panic_opts = SubmitOpts {
        deadline: Some(Duration::from_secs(10)),
        force_kernel: Some("chaos_panic".into()),
    };
    let t = server.submit_opts(op(1), panic_opts.clone()).unwrap();
    match t.wait().result {
        Err(ServeError::Failed { message }) => {
            assert!(message.contains("panic"), "panic cause lost: {message}");
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    // Workers survive repeated panics and keep serving healthy traffic.
    for i in 0..4 {
        let _ = server.submit_opts(op(100 + i), panic_opts.clone()).unwrap().wait();
    }
    let healthy = server.submit(op(2)).unwrap().wait();
    assert!(healthy.result.is_ok(), "pool died after panics");
    let snap = server.shutdown();
    assert!(snap.accounted_ok());
    assert_eq!(snap.failed, 5);
    assert_eq!(snap.completed_ok, 1);
}

#[test]
fn draining_shutdown_drops_nothing() {
    let server = Server::start(ServerConfig {
        workers: 2,
        queue_cap: 64,
        admission_guard: false,
        ..ServerConfig::default()
    });
    // Queue up more work than the pool has started on, then drain.
    let tickets: Vec<Ticket> =
        (0..16).map(|i| server.submit_opts(op(i), slow(10, 30_000)).unwrap()).collect();
    let snap = server.shutdown();
    assert!(snap.accounted_ok(), "identity must hold after drain: {snap:?}");
    assert_eq!(snap.submitted, 16);
    assert_eq!(snap.completed_ok, 16, "drain must finish every admitted request");
    // Every ticket has its response waiting — zero dropped.
    for t in tickets {
        assert!(t.wait().result.is_ok());
    }
}

#[test]
fn aborting_shutdown_terminally_rejects_the_backlog() {
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_cap: 64,
        admission_guard: false,
        ..ServerConfig::default()
    });
    // A slow head-of-line plus a backlog the abort must flush.
    let tickets: Vec<Ticket> =
        (0..8).map(|i| server.submit_opts(op(i), slow(150, 30_000)).unwrap()).collect();
    let snap = server.abort();
    assert!(snap.accounted_ok(), "identity must hold after abort: {snap:?}");
    assert_eq!(snap.submitted, 8);
    assert!(snap.rejected_shutting_down > 0, "abort should flush the backlog");
    let mut ok = 0u64;
    let mut shed = 0u64;
    for t in tickets {
        match t.wait().result {
            Ok(_) => ok += 1,
            Err(ServeError::Rejected(r)) => {
                assert_eq!(r.reason, RejectReason::ShuttingDown);
                shed += 1;
            }
            Err(other) => panic!("unexpected terminal outcome: {other:?}"),
        }
    }
    // Every ticket resolved one way or the other — zero silent drops.
    assert_eq!(ok, snap.completed_ok);
    assert_eq!(shed, snap.rejected_shutting_down);
}

#[test]
fn fault_retries_are_deterministic_per_request() {
    // Aggressive response-dropping on the accelerator path with a tight sim
    // retry budget: some attempts abort with the transient MemoryFailure
    // the service retries. Per-request fault streams derive from
    // split_seed(base, request_id) ⊕ attempt, so two fresh servers fed the
    // same sequence must retry identically.
    let run_once = || {
        let server = Server::start(ServerConfig {
            workers: 1,
            cache_cap: 0,
            admission_guard: false,
            backoff_base: Duration::from_micros(100),
            backoff_cap: Duration::from_millis(1),
            fault_model: FaultModel {
                seed: 7,
                drop_rate: 0.35,
                max_retries: 1,
                ..FaultModel::default()
            },
            ..ServerConfig::default()
        });
        let retries: Vec<u32> = (0..6)
            .map(|i| {
                let opts = SubmitOpts {
                    deadline: Some(Duration::from_secs(120)),
                    force_kernel: Some("sim".into()),
                };
                server.submit_opts(op(i), opts).unwrap().wait().meta.retries
            })
            .collect();
        let snap = server.shutdown();
        assert!(snap.accounted_ok());
        retries
    };
    let first = run_once();
    let second = run_once();
    assert_eq!(first, second, "fault retry schedule must be reproducible");
    assert!(
        first.iter().sum::<u32>() > 0,
        "fault model too gentle — no retries fired, the test is vacuous"
    );
}

fn sdc_opts() -> SubmitOpts {
    SubmitOpts {
        deadline: Some(Duration::from_secs(30)),
        force_kernel: Some("chaos_sdc".into()),
    }
}

fn golden_for(op: &Op) -> OpOutput {
    let kernel = match op {
        Op::Spgemm { .. } => kernels::CHEAPEST_SPGEMM,
        Op::Spmv { .. } => kernels::CHEAPEST_SPMV,
    };
    kernels::run_op(kernel, op, &OuterSpaceConfig::default()).unwrap()
}

#[test]
fn corrupted_result_is_quarantined_and_clean_fallback_delivered() {
    let server = Server::start(ServerConfig {
        workers: 1,
        admission_guard: false,
        ..ServerConfig::default()
    });
    // The chaos_sdc hook computes the right answer and silently flips a
    // mantissa bit. Verification must catch it, the corrupted payload must
    // never surface, and the software re-execution must be what's delivered.
    let request = op(3);
    let golden = golden_for(&request);
    let resp = server.submit_opts(request, sdc_opts()).unwrap().wait();
    let out = resp.result.expect("quarantine must recover, not fail");
    assert_eq!(*out, golden, "a corrupted payload escaped to the client");
    assert!(resp.meta.verified, "the delivered payload must carry an attestation");
    assert!(resp.meta.fallback, "recovery must be marked as a fallback");
    let snap = server.shutdown();
    assert!(snap.accounted_ok());
    assert!(snap.delivery_accounted_ok(), "delivery identity broke: {snap:?}");
    assert_eq!(snap.sdc_detected, 1);
    assert_eq!(snap.quarantined_recoveries, 1);
    assert_eq!(snap.chaos_sdc_executed, 1);
    assert_eq!(snap.chaos_sdc_detected, 1);
    assert_eq!(snap.chaos_sdc_detection_rate(), 1.0);
}

#[test]
fn corrupted_result_never_poisons_the_cache() {
    let server = Server::start(ServerConfig {
        workers: 1,
        admission_guard: false,
        ..ServerConfig::default()
    });
    let request = op(4);
    let golden = golden_for(&request);
    // First submission is forced through the corrupting hook; whatever lands
    // in the cache must be the verified clean recovery, not the corruption.
    let first = server.submit_opts(request.clone(), sdc_opts()).unwrap().wait();
    assert_eq!(*first.result.unwrap(), golden);
    // Second submission of the identical op takes the normal path — if the
    // corrupted result had been cached, this is where it would be served.
    let second = server.submit(request).unwrap().wait();
    let resp = second;
    assert_eq!(*resp.result.unwrap(), golden, "the cache served a poisoned entry");
    assert!(resp.meta.verified, "cached entries are attested at insert time");
    let snap = server.shutdown();
    assert!(snap.delivery_accounted_ok());
    assert_eq!(snap.cache_hits, 1, "the clean recovery should have been cached");
}

#[test]
fn breaker_trips_reroutes_and_half_open_canary_recovers() {
    let server = Server::start(ServerConfig {
        workers: 1,
        admission_guard: false,
        breaker: outerspace_serve::BreakerConfig {
            cooldown: Duration::from_millis(40),
            canary_interval: Duration::from_millis(10),
            ..outerspace_serve::BreakerConfig::default()
        },
        ..ServerConfig::default()
    });
    // Trip the always-corrupting family: every forced request fails
    // verification, so the third one opens the breaker.
    for i in 0..3 {
        let resp = server.submit_opts(op(10 + i), sdc_opts()).unwrap().wait();
        assert!(resp.result.is_ok(), "quarantine should recover each request");
    }
    assert_ne!(server.breaker_state("chaos_sdc"), "closed", "3 failures must trip");
    // While tripped, even a forced request is routed around the kernel — it
    // computes on a healthy kernel and verifies cleanly.
    let rerouted = server.submit_opts(op(20), sdc_opts()).unwrap().wait();
    assert!(rerouted.result.is_ok());
    assert!(
        !rerouted.meta.impl_name.starts_with("chaos_sdc"),
        "tripped kernel still routed: {}",
        rerouted.meta.impl_name
    );
    // chaos_sdc corrupts unconditionally, so its canaries keep failing and it
    // must never re-close — the breaker stays open/half-open indefinitely.
    std::thread::sleep(Duration::from_millis(150));
    assert_ne!(server.breaker_state("chaos_sdc"), "closed");
    // The burst drill proves the full arc on a kernel that *does* heal:
    // trip via a corruption burst, run dry, canaries close the breaker.
    assert!(
        outerspace_serve::loadgen::exercise_breaker_recovery(&server),
        "breaker drill failed: trip -> half-open -> close did not complete"
    );
    assert_eq!(server.breaker_state("chaos_sdc_burst"), "closed");
    let breaker = server.breaker_snapshot();
    assert!(breaker.counters.trips >= 2);
    assert!(breaker.counters.closes >= 1);
    assert!(breaker.counters.canary_passes >= 2);
    let snap = server.shutdown();
    assert!(snap.accounted_ok());
    assert!(snap.delivery_accounted_ok());
}

#[test]
fn sampled_scrubbing_partitions_deliveries() {
    // Software kernels are only scrub-verified every Nth request; both
    // delivery buckets must fill and their sum must equal the successes.
    let mut cfg = ServerConfig {
        workers: 1,
        cache_cap: 0,
        admission_guard: false,
        ..ServerConfig::default()
    };
    cfg.verify.scrub_every = 4;
    let server = Server::start(cfg);
    let software = SubmitOpts {
        deadline: Some(Duration::from_secs(30)),
        force_kernel: Some(kernels::CHEAPEST_SPGEMM.to_string()),
    };
    for i in 0..8 {
        let resp = server.submit_opts(op(30 + i), software.clone()).unwrap().wait();
        assert!(resp.result.is_ok());
    }
    let snap = server.shutdown();
    assert_eq!(snap.completed_ok, 8);
    assert!(snap.delivery_accounted_ok(), "delivery identity broke: {snap:?}");
    assert!(snap.verified_ok > 0, "scrubbing never sampled: {snap:?}");
    assert!(snap.unverified_pass > 0, "every request verified despite sampling: {snap:?}");
    assert_eq!(snap.sdc_detected, 0);
}

#[test]
fn submissions_after_shutdown_are_shed() {
    let server = Server::start(ServerConfig { workers: 1, ..ServerConfig::default() });
    // Drain an empty server, then observe that the front door is closed.
    let probe = server.submit(op(1)).unwrap();
    assert!(probe.wait().result.is_ok());
    // `shutdown` consumes the server; test the flag through abort instead.
    let snap = server.abort();
    assert!(snap.accounted_ok());
}
