//! Load generator and chaos harness driver.
//!
//! Traffic is **open loop**: arrivals follow a fixed schedule (a Poisson-ish
//! constant rate, or one burst) regardless of how the server is coping, which
//! is what makes overload and shedding observable — a closed loop would
//! politely slow down instead. The op pool is smaller than the request count
//! on purpose, so repeated products exercise the content-addressed cache the
//! way real traffic would.
//!
//! Chaos knobs force every Nth request onto the `chaos_panic` /
//! `chaos_sleep:<ms>` / `chaos_sdc` hook kernels, injecting worker panics,
//! guaranteed mid-compute deadline expiries, and silent data corruption on
//! top of whatever `FaultModel` the server itself injects into the
//! accelerator path. With `golden_check` on, every delivered payload is
//! compared against an independently computed golden answer — the
//! ground-truth judge for the "zero corrupted deliveries" containment gate.

use std::sync::Arc;
use std::time::{Duration, Instant};

use outerspace_gen::{powerlaw, rmat, uniform, vector};
use outerspace_json::Json;
use outerspace_sim::OuterSpaceConfig;

use crate::kernels;
use crate::metrics::Snapshot;
use crate::request::{Op, OpOutput, ServeError, Ticket};
use crate::server::{Server, SubmitOpts};

/// Arrival process for the open-loop schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrivals {
    /// Constant-rate arrivals: request `k` is submitted at `k / rps`.
    Rate {
        /// Requests per second.
        rps: f64,
    },
    /// Everything at once — guarantees queue pressure and shedding.
    Burst,
}

/// One load/chaos run, fully described (and so fully reproducible).
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Total requests submitted.
    pub requests: usize,
    /// Distinct ops in the pool (requests cycle through it; smaller pool →
    /// more cache hits).
    pub pool: usize,
    /// Matrix dimension of generated operands.
    pub scale: u32,
    /// Non-zeros per generated operand.
    pub nnz: usize,
    /// Fraction of the pool that is SpMV (the rest is SpGEMM).
    pub spmv_fraction: f64,
    /// Base seed for operand generation.
    pub seed: u64,
    /// Arrival process.
    pub arrivals: Arrivals,
    /// Per-request deadline.
    pub deadline: Duration,
    /// Every Nth request runs the always-panicking hook kernel (0 = off).
    pub chaos_panic_every: usize,
    /// Every Nth request runs the stalling hook kernel (0 = off).
    pub chaos_sleep_every: usize,
    /// Stall length for the sleep hook — set it beyond `deadline` to force
    /// mid-compute expiry.
    pub chaos_sleep_ms: u64,
    /// Every Nth request runs the silently-corrupting hook kernel (0 = off).
    /// Panic and sleep forcing take precedence on colliding indices.
    pub chaos_sdc_every: usize,
    /// Compare every delivered payload against an independently computed
    /// golden answer and count mismatches as `corrupted_deliveries`.
    pub golden_check: bool,
}

impl Default for Scenario {
    fn default() -> Scenario {
        Scenario {
            requests: 64,
            pool: 12,
            scale: 96,
            nnz: 900,
            spmv_fraction: 0.25,
            seed: 1,
            arrivals: Arrivals::Burst,
            deadline: Duration::from_secs(2),
            chaos_panic_every: 0,
            chaos_sleep_every: 0,
            chaos_sleep_ms: 0,
            chaos_sdc_every: 0,
            golden_check: false,
        }
    }
}

/// Builds the deterministic op pool for a scenario.
pub fn make_pool(sc: &Scenario) -> Vec<Op> {
    let pool = sc.pool.max(1);
    let spmv_count = (sc.spmv_fraction * pool as f64).round() as usize;
    (0..pool)
        .map(|i| {
            let seed = sc.seed.wrapping_add(1 + i as u64);
            let a = Arc::new(match i % 3 {
                0 => uniform::matrix(sc.scale, sc.scale, sc.nnz, seed),
                1 => rmat::graph500(sc.scale, sc.nnz, seed),
                _ => powerlaw::graph(sc.scale, sc.nnz, seed),
            });
            if i < spmv_count {
                let x = Arc::new(vector::sparse(sc.scale, 0.3, seed));
                Op::Spmv { a, x }
            } else {
                let b = Arc::new(uniform::matrix(sc.scale, sc.scale, sc.nnz, seed ^ 0x9e37));
                Op::Spgemm { a, b }
            }
        })
        .collect()
}

/// Client-side view of one run (the server keeps its own counters; the two
/// are cross-checked in the report).
#[derive(Debug, Clone, Default)]
pub struct ClientTally {
    /// Requests the client attempted to submit.
    pub submitted: u64,
    /// Admission-time sheds observed by the client.
    pub rejected: u64,
    /// Successful responses.
    pub ok: u64,
    /// Terminal failures.
    pub failed: u64,
    /// Deadline expiries (and post-admission sheds).
    pub timed_out: u64,
    /// Post-admission sheds (abort-mode leftovers), a subset bucket.
    pub late_rejected: u64,
    /// Successful responses whose payload carried a verification attestation.
    pub verified: u64,
    /// Successful responses delivered without verification (sampled scrub
    /// skips on software kernels).
    pub unverified: u64,
    /// Delivered payloads that disagreed with the independently computed
    /// golden answer. Only counted when [`Scenario::golden_check`] is on;
    /// the SDC containment gate requires this to be exactly zero.
    pub corrupted_deliveries: u64,
    /// Wall-clock of the whole run (submission through collection).
    pub wall_s: f64,
}

/// Computes the ground-truth answer for each pool op on the cheapest
/// software kernel with a clean (fault-free) configuration.
fn make_goldens(pool: &[Op]) -> Vec<Option<OpOutput>> {
    let clean = OuterSpaceConfig::default();
    pool.iter()
        .map(|op| {
            let kernel = match op {
                Op::Spgemm { .. } => kernels::CHEAPEST_SPGEMM,
                Op::Spmv { .. } => kernels::CHEAPEST_SPMV,
            };
            kernels::run_op(kernel, op, &clean).ok()
        })
        .collect()
}

/// Loose elementwise agreement with the golden answer. The tolerance is far
/// wider than any legitimate cross-kernel float drift and far tighter than
/// the mantissa-bit flips the silent fault model injects, so it cleanly
/// separates "different summation order" from "corrupted".
fn matches_golden(got: &OpOutput, want: &OpOutput) -> bool {
    match (got, want) {
        (OpOutput::Matrix(c), OpOutput::Matrix(g)) => c.approx_eq(g, 1e-6),
        (OpOutput::Vector(y), OpOutput::Vector(g)) => {
            let (yd, gd) = (y.to_dense(), g.to_dense());
            yd.len() == gd.len()
                && yd
                    .iter()
                    .zip(&gd)
                    .all(|(p, q)| (p - q).abs() <= 1e-6 * q.abs().max(1.0))
        }
        _ => false,
    }
}

/// Drives `sc` against a running server and collects every ticket.
pub fn run(server: &Server, sc: &Scenario) -> ClientTally {
    let pool = make_pool(sc);
    let goldens = if sc.golden_check { make_goldens(&pool) } else { Vec::new() };
    let started = Instant::now();
    let mut tally = ClientTally::default();
    let mut tickets: Vec<(Ticket, usize)> = Vec::with_capacity(sc.requests);
    for k in 0..sc.requests {
        if let Arrivals::Rate { rps } = sc.arrivals {
            if rps > 0.0 {
                let due = Duration::from_secs_f64(k as f64 / rps);
                let now = started.elapsed();
                if due > now {
                    std::thread::sleep(due - now);
                }
            }
        }
        let mut opts = SubmitOpts { deadline: Some(sc.deadline), force_kernel: None };
        if sc.chaos_panic_every > 0 && k % sc.chaos_panic_every == sc.chaos_panic_every - 1 {
            opts.force_kernel = Some("chaos_panic".into());
        } else if sc.chaos_sleep_every > 0 && k % sc.chaos_sleep_every == sc.chaos_sleep_every - 1
        {
            opts.force_kernel = Some(format!("chaos_sleep:{}", sc.chaos_sleep_ms));
        } else if sc.chaos_sdc_every > 0 && k % sc.chaos_sdc_every == sc.chaos_sdc_every - 1 {
            opts.force_kernel = Some("chaos_sdc".into());
        }
        tally.submitted += 1;
        let pool_idx = k % pool.len();
        match server.submit_opts(pool[pool_idx].clone(), opts) {
            Ok(t) => tickets.push((t, pool_idx)),
            Err(_rejected) => tally.rejected += 1,
        }
    }
    for (t, pool_idx) in tickets {
        let resp = t.wait();
        match resp.result {
            Ok(out) => {
                tally.ok += 1;
                if resp.meta.verified {
                    tally.verified += 1;
                } else {
                    tally.unverified += 1;
                }
                if let Some(Some(golden)) = goldens.get(pool_idx) {
                    if !matches_golden(&out, golden) {
                        tally.corrupted_deliveries += 1;
                    }
                }
            }
            Err(ServeError::DeadlineExceeded { .. }) => tally.timed_out += 1,
            Err(ServeError::Rejected(_)) => tally.late_rejected += 1,
            Err(ServeError::Failed { .. }) => tally.failed += 1,
        }
    }
    tally.wall_s = started.elapsed().as_secs_f64();
    tally
}

/// End-to-end breaker drill: trips the `chaos_sdc_burst` kernel family with
/// a burst of guaranteed silent corruptions, then waits for the half-open
/// canary probes to observe the (now dry) kernel answering correctly and
/// close the breaker again. Returns `true` only if the breaker *tripped* and
/// subsequently *recovered* — the full open → half-open → closed arc.
///
/// Run this after the main load, on an otherwise idle server: the burst
/// counter is process-global, so only one drill per process is meaningful.
pub fn exercise_breaker_recovery(server: &Server) -> bool {
    let trip_threshold = server.breaker_trip_threshold();
    kernels::reset_chaos_sdc_counter();
    let a = Arc::new(uniform::matrix(32, 32, 160, 0xD1));
    let op = Op::Spgemm { a: a.clone(), b: a };
    // Exactly `trip_threshold` corruptions, then the hook runs dry — so the
    // breaker trips on the last forced request and every canary probe
    // afterwards sees correct answers.
    for _ in 0..trip_threshold {
        let opts = SubmitOpts {
            deadline: Some(Duration::from_secs(10)),
            force_kernel: Some(format!("chaos_sdc_burst:{trip_threshold}")),
        };
        match server.submit_opts(op.clone(), opts) {
            Ok(t) => {
                // Serial waits: each verification failure must land on the
                // breaker before the next request routes.
                let _ = t.wait();
            }
            Err(_) => return false,
        }
    }
    if server.breaker_state("chaos_sdc_burst") == "closed" {
        return false; // never tripped — the drill proved nothing
    }
    let give_up = Instant::now() + Duration::from_secs(5);
    while Instant::now() < give_up {
        if server.breaker_state("chaos_sdc_burst") == "closed" {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

impl ClientTally {
    /// Every submission came back as exactly one terminal outcome.
    pub fn accounted_ok(&self) -> bool {
        self.ok + self.failed + self.rejected + self.late_rejected + self.timed_out
            == self.submitted
    }
}

/// Assembles the run artifact: client tallies, server counters, and the
/// cross-check verdicts the CI gate greps for. Key order is fixed.
pub fn report_json(sc: &Scenario, tally: &ClientTally, snapshot: &Snapshot) -> Json {
    let throughput = if tally.wall_s > 0.0 { tally.ok as f64 / tally.wall_s } else { 0.0 };
    let scenario = Json::Obj(vec![
        ("requests".into(), Json::UInt(sc.requests as u64)),
        ("pool".into(), Json::UInt(sc.pool as u64)),
        ("scale".into(), Json::UInt(sc.scale as u64)),
        ("nnz".into(), Json::UInt(sc.nnz as u64)),
        ("spmv_fraction".into(), Json::Float(sc.spmv_fraction)),
        ("seed".into(), Json::UInt(sc.seed)),
        (
            "arrivals".into(),
            match sc.arrivals {
                Arrivals::Rate { rps } => Json::Obj(vec![("rps".into(), Json::Float(rps))]),
                Arrivals::Burst => Json::Str("burst".into()),
            },
        ),
        ("deadline_ms".into(), Json::Float(sc.deadline.as_secs_f64() * 1e3)),
        ("chaos_panic_every".into(), Json::UInt(sc.chaos_panic_every as u64)),
        ("chaos_sleep_every".into(), Json::UInt(sc.chaos_sleep_every as u64)),
        ("chaos_sleep_ms".into(), Json::UInt(sc.chaos_sleep_ms)),
        ("chaos_sdc_every".into(), Json::UInt(sc.chaos_sdc_every as u64)),
        ("golden_check".into(), Json::Bool(sc.golden_check)),
    ]);
    let client = Json::Obj(vec![
        ("submitted".into(), Json::UInt(tally.submitted)),
        ("ok".into(), Json::UInt(tally.ok)),
        ("rejected".into(), Json::UInt(tally.rejected)),
        ("late_rejected".into(), Json::UInt(tally.late_rejected)),
        ("failed".into(), Json::UInt(tally.failed)),
        ("timed_out".into(), Json::UInt(tally.timed_out)),
        ("verified".into(), Json::UInt(tally.verified)),
        ("unverified".into(), Json::UInt(tally.unverified)),
        ("corrupted_deliveries".into(), Json::UInt(tally.corrupted_deliveries)),
        ("wall_s".into(), Json::Float(tally.wall_s)),
        ("throughput_rps".into(), Json::Float(throughput)),
        ("accounted_ok".into(), Json::Bool(tally.accounted_ok())),
    ]);
    Json::Obj(vec![
        ("scenario".into(), scenario),
        ("client".into(), client),
        ("server".into(), snapshot.to_json()),
        (
            "accounted_ok".into(),
            Json::Bool(tally.accounted_ok() && snapshot.accounted_ok()),
        ),
    ])
}

/// Times the cheapest SpGEMM kernel on a pool-representative operand and
/// returns a request rate that oversubscribes `workers` by `factor` — the
/// "2× overload" dial of the chaos recipe.
pub fn overload_rate(sc: &Scenario, workers: usize, factor: f64) -> f64 {
    let a = Arc::new(uniform::matrix(sc.scale, sc.scale, sc.nnz, sc.seed));
    let started = Instant::now();
    let iters = 3;
    for _ in 0..iters {
        let _ = outerspace_baselines::gustavson::spgemm(&a, &a);
    }
    let per = started.elapsed().as_secs_f64() / iters as f64;
    (workers as f64 / per.max(1e-6)) * factor
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;

    #[test]
    fn pool_is_deterministic_and_mixed() {
        let sc = Scenario { pool: 8, spmv_fraction: 0.25, ..Scenario::default() };
        let p1 = make_pool(&sc);
        let p2 = make_pool(&sc);
        assert_eq!(p1.len(), 8);
        let spmv = p1.iter().filter(|o| o.kind() == "spmv").count();
        assert_eq!(spmv, 2);
        for (a, b) in p1.iter().zip(&p2) {
            assert_eq!(crate::rcache::op_material(a), crate::rcache::op_material(b));
        }
    }

    #[test]
    fn burst_run_accounts_every_request() {
        let server = Server::start(ServerConfig {
            workers: 2,
            queue_cap: 4,
            admission_guard: false,
            ..ServerConfig::default()
        });
        let sc = Scenario {
            requests: 24,
            pool: 4,
            scale: 48,
            nnz: 300,
            arrivals: Arrivals::Burst,
            ..Scenario::default()
        };
        let tally = run(&server, &sc);
        let snap = server.shutdown();
        assert!(tally.accounted_ok(), "client accounting broke: {tally:?}");
        assert!(snap.accounted_ok(), "server accounting broke");
        assert_eq!(tally.submitted, 24);
        let j = report_json(&sc, &tally, &snap);
        assert_eq!(j.get("accounted_ok"), Some(&Json::Bool(true)));
    }
}
