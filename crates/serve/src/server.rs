//! The service: a worker pool behind the bounded admission queue, with
//! per-request deadlines, retry-with-backoff around injected faults, a
//! degradation ladder, and structurally airtight accounting.
//!
//! Life of a request:
//!
//! 1. **Admission** ([`Server::submit`]): shed with a typed
//!    [`Rejected`] when the bounded queue is full, when the predicted
//!    queueing delay already exceeds the deadline (`Overloaded`), or when
//!    the server is stopping. Admitted requests get a [`Ticket`].
//! 2. **Pickup**: a worker pops the queue, refreshes the degradation flag
//!    from queue occupancy (high/low watermarks with hysteresis), and
//!    expires requests whose deadline passed while queued.
//! 3. **Cache**: a content-addressed hit returns immediately.
//! 4. **Routing**: the workload classifier picks a kernel — the cheapest
//!    known-good one when degraded.
//! 5. **Compute**: on a watchdogged thread (the PR-2 runner pattern —
//!    `spawn` + `recv_timeout`) so a hung or slow kernel times the request
//!    out instead of wedging the worker. Panics are caught. Transient
//!    injected faults retry with capped exponential backoff under a
//!    deterministic per-(request, attempt) fault seed; permanent
//!    accelerator failure falls back to the cheapest software kernel.
//! 6. **Delivery**: results are never delivered after the deadline — a late
//!    success is converted to `DeadlineExceeded`, keeping the
//!    `deadline_violations` counter at zero by construction.
//!
//! Every admitted request reaches exactly one terminal outcome even across
//! draining (`shutdown`) and aborting (`abort`) stops, so
//! [`Snapshot::accounted_ok`] holds whenever the server is quiescent.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use outerspace_sim::faults::split_seed;
use outerspace_sim::FaultModel;

use crate::breaker::{base_of, BreakerConfig, BreakerSnapshot, CircuitBreaker};
use crate::classify::Classifier;
use crate::kernels::{self, KernelError};
use crate::metrics::{Metrics, Snapshot};
use crate::queue::{AdmissionQueue, AdmitError, Popped};
use crate::rcache::{op_material, ResultCache};
use crate::request::{
    Op, OpOutput, Rejected, RejectReason, Response, ResponseMeta, ServeError, Ticket,
};
use crate::verifier::{self, Attested, VerifyPolicy};

/// Server tuning. [`ServerConfig::default`] is sized for tests and smoke
/// runs; the chaos harness scales it up.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the admission queue.
    pub workers: usize,
    /// Bounded admission-queue capacity.
    pub queue_cap: usize,
    /// Deadline applied when a submission does not carry its own.
    pub default_deadline: Duration,
    /// Transient-fault retries per request (attempts = retries + 1).
    pub max_retries: u32,
    /// First retry backoff; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Result-cache capacity in entries (0 disables).
    pub cache_cap: usize,
    /// Largest primary-operand nnz routed to the accelerator model.
    pub sim_nnz_cap: usize,
    /// Queue occupancy at or above which the degraded tier engages.
    pub degrade_hi: f64,
    /// Queue occupancy at or below which it disengages (hysteresis).
    pub degrade_lo: f64,
    /// When set, admission sheds `Overloaded` requests whose predicted
    /// queueing delay already exceeds their deadline.
    pub admission_guard: bool,
    /// Faults injected into the accelerator-model kernels. The seed is the
    /// *base*: each request attempt draws
    /// `split_seed(split_seed(base, request_id), attempt)`.
    pub fault_model: FaultModel,
    /// Result-verification tier: when and how hard to check delivered
    /// payloads against their operands.
    pub verify: VerifyPolicy,
    /// Per-kernel circuit breakers fed by verification failures.
    pub breaker: BreakerConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            queue_cap: 32,
            default_deadline: Duration::from_secs(2),
            max_retries: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(20),
            cache_cap: 256,
            sim_nnz_cap: 20_000,
            degrade_hi: 0.75,
            degrade_lo: 0.25,
            admission_guard: true,
            fault_model: FaultModel::default(),
            verify: VerifyPolicy::default(),
            breaker: BreakerConfig::default(),
        }
    }
}

/// Per-submission options beyond the op itself.
#[derive(Debug, Clone, Default)]
pub struct SubmitOpts {
    /// Deadline override (defaults to [`ServerConfig::default_deadline`]).
    pub deadline: Option<Duration>,
    /// Pin the kernel by name, bypassing the classifier (still subject to
    /// deadline, retries, and fallback). This is how the chaos harness
    /// reaches the `chaos_*` hooks.
    pub force_kernel: Option<String>,
}

struct Job {
    id: u64,
    op: Op,
    deadline: Duration,
    submitted_at: Instant,
    force_kernel: Option<String>,
    tx: mpsc::Sender<Response>,
}

struct Shared {
    cfg: ServerConfig,
    queue: AdmissionQueue<Job>,
    classifier: Classifier,
    cache: ResultCache,
    metrics: Metrics,
    breaker: CircuitBreaker,
    degraded: AtomicBool,
    stopping: AtomicBool,
    next_id: AtomicU64,
    /// EWMA of successful compute time, milliseconds, as f64 bits.
    ewma_ms_bits: AtomicU64,
}

impl Shared {
    fn ewma_ms(&self) -> f64 {
        f64::from_bits(self.ewma_ms_bits.load(Ordering::Relaxed))
    }

    fn observe_service_ms(&self, ms: f64) {
        // Lossy read-modify-write is fine: this is a smoothing estimate.
        let prev = self.ewma_ms();
        let next = if prev == 0.0 { ms } else { 0.7 * prev + 0.3 * ms };
        self.ewma_ms_bits.store(next.to_bits(), Ordering::Relaxed);
    }

    /// Predicted queueing delay for a request admitted now.
    fn predicted_wait(&self) -> Duration {
        let ewma = self.ewma_ms();
        if ewma == 0.0 {
            return Duration::ZERO;
        }
        let depth = self.queue.len() as f64;
        Duration::from_secs_f64((depth * ewma / self.cfg.workers.max(1) as f64) / 1e3)
    }

    fn retry_after_hint(&self) -> Duration {
        let est = self.predicted_wait();
        est.clamp(Duration::from_millis(1), Duration::from_secs(2))
    }
}

/// The running service. Dropping it without calling [`Server::shutdown`] /
/// [`Server::abort`] aborts outstanding work.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    canary: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.workers.len())
            .field("queue", &self.shared.queue)
            .finish()
    }
}

impl Server {
    /// Starts the worker pool with an untuned classifier.
    pub fn start(cfg: ServerConfig) -> Server {
        let classifier = Classifier::new(cfg.sim_nnz_cap);
        Server::start_with_classifier(cfg, classifier)
    }

    /// Starts the worker pool with a classifier the caller seeded (e.g. via
    /// [`Classifier::from_pareto_json`]).
    pub fn start_with_classifier(cfg: ServerConfig, classifier: Classifier) -> Server {
        let shared = Arc::new(Shared {
            queue: AdmissionQueue::new(cfg.queue_cap),
            cache: ResultCache::new(cfg.cache_cap),
            metrics: Metrics::new(),
            breaker: CircuitBreaker::new(cfg.breaker.clone()),
            degraded: AtomicBool::new(false),
            stopping: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
            ewma_ms_bits: AtomicU64::new(0f64.to_bits()),
            classifier,
            cfg,
        });
        let workers = (0..shared.cfg.workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn serve worker")
            })
            .collect();
        let canary = shared.cfg.breaker.enabled.then(|| {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("serve-canary".to_string())
                .spawn(move || canary_loop(&shared))
                .expect("spawn serve canary")
        });
        Server { shared, workers, canary }
    }

    /// Submits with the default deadline. See [`Server::submit_opts`].
    pub fn submit(&self, op: Op) -> Result<Ticket, Rejected> {
        self.submit_opts(op, SubmitOpts::default())
    }

    /// Submits a request. `Ok` carries a [`Ticket`] redeemable for exactly
    /// one [`Response`]; `Err` is a typed synchronous shed (the request
    /// never entered the queue).
    pub fn submit_opts(&self, op: Op, opts: SubmitOpts) -> Result<Ticket, Rejected> {
        let sh = &*self.shared;
        sh.metrics.on_submitted();
        let reject = |reason: RejectReason| {
            sh.metrics.on_rejected(reason);
            Rejected { reason, retry_after_hint: sh.retry_after_hint() }
        };
        if sh.stopping.load(Ordering::SeqCst) {
            return Err(reject(RejectReason::ShuttingDown));
        }
        let deadline = opts.deadline.unwrap_or(sh.cfg.default_deadline);
        if sh.cfg.admission_guard && sh.predicted_wait() > deadline {
            return Err(reject(RejectReason::Overloaded));
        }
        let id = sh.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        let job = Job {
            id,
            op,
            deadline,
            submitted_at: Instant::now(),
            force_kernel: opts.force_kernel,
            tx,
        };
        match sh.queue.try_push(job) {
            Ok(_) => Ok(Ticket { id, rx }),
            Err(AdmitError::Full(_)) => Err(reject(RejectReason::QueueFull)),
            Err(AdmitError::ShuttingDown(_)) => Err(reject(RejectReason::ShuttingDown)),
        }
    }

    /// True while the degradation ladder has the service on its cheapest
    /// tier.
    pub fn is_degraded(&self) -> bool {
        self.shared.degraded.load(Ordering::Relaxed)
    }

    /// Point-in-time counters (exact only when quiescent).
    pub fn metrics(&self) -> Snapshot {
        self.shared.metrics.snapshot()
    }

    /// Result-cache `(entries, hits, misses)`.
    pub fn cache_stats(&self) -> (usize, u64, u64) {
        self.shared.cache.stats()
    }

    /// Circuit-breaker counters and currently tripped kernel families.
    pub fn breaker_snapshot(&self) -> BreakerSnapshot {
        self.shared.breaker.snapshot()
    }

    /// `"closed"` / `"open"` / `"half_open"` for one base kernel name.
    pub fn breaker_state(&self, base: &str) -> &'static str {
        self.shared.breaker.state_of(base)
    }

    /// Consecutive verification failures that trip a kernel's breaker.
    pub fn breaker_trip_threshold(&self) -> u32 {
        self.shared.cfg.breaker.trip_threshold
    }

    /// Draining stop: no further admissions, queued requests run to a
    /// terminal outcome, workers join. Returns the final counters.
    pub fn shutdown(self) -> Snapshot {
        self.shared.stopping.store(true, Ordering::SeqCst);
        self.shared.queue.shutdown();
        for w in self.workers {
            let _ = w.join();
        }
        if let Some(c) = self.canary {
            let _ = c.join();
        }
        self.shared.metrics.snapshot()
    }

    /// Aborting stop: queued-but-unstarted requests are terminally rejected
    /// (`ShuttingDown`) instead of run; in-flight requests still finish.
    pub fn abort(self) -> Snapshot {
        self.shared.stopping.store(true, Ordering::SeqCst);
        let leftovers = self.shared.queue.abort();
        for job in leftovers {
            self.shared.metrics.on_rejected(RejectReason::ShuttingDown);
            let rejected = Rejected {
                reason: RejectReason::ShuttingDown,
                retry_after_hint: self.shared.retry_after_hint(),
            };
            deliver(
                &job,
                Err(ServeError::Rejected(rejected)),
                ResponseMeta {
                    impl_name: "none".into(),
                    degraded: false,
                    fallback: false,
                    cache_hit: false,
                    verified: false,
                    retries: 0,
                    queue_ms: job.submitted_at.elapsed().as_secs_f64() * 1e3,
                    total_ms: job.submitted_at.elapsed().as_secs_f64() * 1e3,
                },
            );
        }
        for w in self.workers {
            let _ = w.join();
        }
        if let Some(c) = self.canary {
            let _ = c.join();
        }
        self.shared.metrics.snapshot()
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Popped::Item(job) = shared.queue.pop() {
        process(shared, job);
    }
}

fn deliver(job: &Job, result: Result<Arc<OpOutput>, ServeError>, meta: ResponseMeta) {
    // A gone client (dropped Ticket) is not an error.
    let _ = job.tx.send(Response { id: job.id, result, meta });
}

fn meta(job: &Job, queue_ms: f64) -> ResponseMeta {
    ResponseMeta {
        impl_name: String::new(),
        degraded: false,
        fallback: false,
        cache_hit: false,
        verified: false,
        retries: 0,
        queue_ms,
        total_ms: job.submitted_at.elapsed().as_secs_f64() * 1e3,
    }
}

fn expire(shared: &Shared, job: &Job, queue_ms: f64) {
    shared.metrics.on_timed_out();
    let waited = job.submitted_at.elapsed();
    deliver(
        job,
        Err(ServeError::DeadlineExceeded { deadline: job.deadline, waited }),
        meta(job, queue_ms),
    );
}

/// What the watchdogged compute thread reports back.
struct ComputeOutcome {
    result: Result<OpOutput, String>,
    /// Verification witness for `result` when the tier checked it (present
    /// for every accelerator-class result); its presence is what authorizes
    /// a cache insert and sets `ResponseMeta::verified`.
    attested: Option<Attested>,
    kernel: String,
    retries: u32,
    fallback: bool,
    compute_ms: f64,
}

fn process(shared: &Arc<Shared>, job: Job) {
    let queue_ms = job.submitted_at.elapsed().as_secs_f64() * 1e3;

    // Degradation ladder: flip on the occupancy watermarks (hysteresis —
    // engage high, release low — so the tier doesn't flap at the boundary).
    let occ = shared.queue.occupancy();
    if occ >= shared.cfg.degrade_hi {
        shared.degraded.store(true, Ordering::Relaxed);
    } else if occ <= shared.cfg.degrade_lo {
        shared.degraded.store(false, Ordering::Relaxed);
    }

    // Expired while queued.
    if job.submitted_at.elapsed() >= job.deadline {
        expire(shared, &job, queue_ms);
        return;
    }

    // Content-addressed cache. A forced kernel bypasses it: the override
    // means "actually execute this kernel" (chaos injection, A/B probes),
    // and a hit would silently serve the result from whatever kernel ran
    // the operands first. Every cached entry carried an Attested witness at
    // insert time, so a hit is a verified delivery.
    let material = op_material(&job.op);
    if job.force_kernel.is_none() {
        if let Some(hit) = shared.cache.lookup(&material) {
            shared.metrics.on_cache_hit();
            let total_ms = job.submitted_at.elapsed().as_secs_f64() * 1e3;
            shared.metrics.on_completed_ok(total_ms);
            let m = ResponseMeta {
                impl_name: "cache".into(),
                cache_hit: true,
                verified: true,
                ..meta(&job, queue_ms)
            };
            deliver(&job, Ok(hit), m);
            return;
        }
    }

    // Route: forced kernel, or classifier (degraded tier short-circuits to
    // the cheapest known-good kernel inside `route`). Either choice is then
    // held against the circuit breakers: a kernel family tripped by repeated
    // verification failures is refused and the request reroutes down the
    // software ladder instead.
    let degraded = shared.degraded.load(Ordering::Relaxed);
    let mut route = shared.classifier.route(&job.op, degraded);
    let mut kernel = job.force_kernel.clone().unwrap_or_else(|| route.kernel.to_string());
    if !shared.breaker.check_route(&kernel) {
        let tripped = shared.breaker.snapshot().tripped;
        route = shared.classifier.route_avoiding(&job.op, degraded, &tripped);
        kernel = route.kernel.to_string();
    }
    if degraded {
        shared.metrics.on_degraded_served();
    }

    // Watchdogged compute (PR-2 pattern): the worker never blocks past the
    // request's remaining budget; a hung kernel strands only the abandoned
    // compute thread.
    let (tx, rx) = mpsc::channel();
    {
        let shared = shared.clone();
        let op = job.op.clone();
        let sim_config = route.sim_config.clone();
        let kernel = kernel.clone();
        let id = job.id;
        std::thread::Builder::new()
            .name(format!("serve-compute-{id}"))
            .spawn(move || {
                let _ = tx.send(compute_with_retries(&shared, id, &kernel, &op, sim_config));
            })
            .expect("spawn compute thread");
    }
    let remaining = job.deadline.saturating_sub(job.submitted_at.elapsed());
    let outcome = match rx.recv_timeout(remaining) {
        Ok(outcome) => outcome,
        Err(_) => {
            // Mid-compute expiry (or a hung kernel): abandon the thread.
            expire(shared, &job, queue_ms);
            return;
        }
    };

    let total = job.submitted_at.elapsed();
    let total_ms = total.as_secs_f64() * 1e3;
    // Never deliver a payload after the deadline: a late success becomes
    // DeadlineExceeded. This conversion is what keeps `deadline_violations`
    // at zero; the tripwire below catches the conversion ever being lost.
    if total >= job.deadline {
        if outcome.result.is_ok() {
            shared.metrics.on_deadline_violation();
        }
        expire(shared, &job, queue_ms);
        return;
    }
    let m = ResponseMeta {
        impl_name: outcome.kernel,
        degraded,
        fallback: outcome.fallback,
        cache_hit: false,
        verified: outcome.attested.is_some(),
        retries: outcome.retries,
        queue_ms,
        total_ms,
    };
    match outcome.result {
        Ok(out) => {
            shared.observe_service_ms(outcome.compute_ms);
            let out = Arc::new(out);
            // Verify-before-insert: only attested results may populate the
            // cache. A sampled scrub skip is delivered but never cached.
            if let Some(att) = &outcome.attested {
                shared.cache.insert(&material, out.clone(), att);
            }
            shared.metrics.on_completed_ok(total_ms);
            if outcome.attested.is_some() {
                shared.metrics.on_delivered_verified();
            } else {
                shared.metrics.on_delivered_unverified();
            }
            deliver(&job, Ok(out), m);
        }
        Err(message) => {
            shared.metrics.on_failed();
            deliver(&job, Err(ServeError::Failed { message }), m);
        }
    }
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn compute_once(
    kernel: &str,
    op: &Op,
    cfg: &outerspace_sim::OuterSpaceConfig,
) -> Result<OpOutput, KernelError> {
    catch_unwind(AssertUnwindSafe(|| kernels::run_op(kernel, op, cfg)))
        .unwrap_or_else(|p| Err(KernelError::Permanent(format!(
            "kernel panicked: {}",
            panic_message(p)
        ))))
}

fn compute_with_retries(
    shared: &Shared,
    request_id: u64,
    kernel: &str,
    op: &Op,
    sim_config: outerspace_sim::OuterSpaceConfig,
) -> ComputeOutcome {
    let started = Instant::now();
    let fault_base = split_seed(shared.cfg.fault_model.seed, request_id);
    let mut retries: u32 = 0;
    let mut fallback = false;
    let mut active = kernel.to_string();
    let result = loop {
        let mut cfg = sim_config.clone();
        if kernels::is_sim_kernel(&active) && shared.cfg.fault_model.is_active() {
            // Deterministic per-(request, attempt) fault stream: reruns of
            // the same request replay the same fault schedule, while
            // attempts within a request draw fresh faults.
            cfg.faults = shared.cfg.fault_model.clone();
            cfg.faults.seed = split_seed(fault_base, retries as u64);
        }
        match compute_once(&active, op, &cfg) {
            Ok(out) => break Ok(out),
            Err(KernelError::Transient(_)) if retries < shared.cfg.max_retries => {
                shared.metrics.on_retry();
                let exp = retries.min(16);
                let backoff = shared
                    .cfg
                    .backoff_base
                    .saturating_mul(1u32 << exp)
                    .min(shared.cfg.backoff_cap);
                std::thread::sleep(backoff);
                retries += 1;
            }
            Err(e) => {
                // Permanent accelerator failure (dead PEs, exhausted
                // retries, panic): one rung down to the cheapest software
                // kernel. Software failures are terminal.
                if kernels::is_sim_kernel(&active) && !fallback {
                    fallback = true;
                    shared.metrics.on_fallback();
                    active = match op {
                        Op::Spgemm { .. } => kernels::CHEAPEST_SPGEMM.to_string(),
                        Op::Spmv { .. } => kernels::CHEAPEST_SPMV.to_string(),
                    };
                    continue;
                }
                break Err(e.message().to_string());
            }
        }
    };
    // Verification tier: runs on the compute thread so probe time counts
    // against the request's deadline through the same recv_timeout watchdog,
    // and so an abandoned (timed-out) computation still feeds the breaker
    // and the detection counters without touching the delivery buckets
    // (those are bumped only at delivery, in `process`).
    let (result, attested, quarantine_fallback) = match result {
        Ok(out) => verify_outcome(shared, request_id, &active, op, out),
        Err(m) => (Err(m), None, false),
    };
    ComputeOutcome {
        result,
        attested,
        kernel: active,
        retries,
        fallback: fallback || quarantine_fallback,
        compute_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

/// Applies the [`VerifyPolicy`] to a computed result: pass it through
/// (sampled skip), attest it, or quarantine it — the corrupted payload is
/// dropped, the breaker fed, and the request re-executed on the cheapest
/// software kernel, whose result must itself verify before delivery.
/// Returns `(result, attested, fallback)`.
fn verify_outcome(
    shared: &Shared,
    request_id: u64,
    kernel: &str,
    op: &Op,
    out: OpOutput,
) -> (Result<OpOutput, String>, Option<Attested>, bool) {
    if !verifier::must_verify(&shared.cfg.verify, kernel, request_id) {
        return (Ok(out), None, false);
    }
    let vcfg = verifier::config_for(&shared.cfg.verify, request_id);
    let chaos_drill = base_of(kernel).starts_with("chaos_sdc");
    if chaos_drill {
        shared.metrics.on_chaos_sdc_executed();
    }
    match verifier::check(op, &out, &vcfg) {
        Ok(att) => {
            shared.breaker.on_verified_ok(kernel);
            (Ok(out), Some(att), false)
        }
        Err(e) => {
            // Quarantine: the corrupted result is never delivered and never
            // cached. `out` is dropped here, deliberately.
            shared.metrics.on_sdc_detected();
            if chaos_drill {
                shared.metrics.on_chaos_sdc_detected();
            }
            shared.breaker.on_verification_failure(kernel);
            let cheapest = match op {
                Op::Spgemm { .. } => kernels::CHEAPEST_SPGEMM,
                Op::Spmv { .. } => kernels::CHEAPEST_SPMV,
            };
            if base_of(kernel) == cheapest {
                // The quarantine tier itself produced a bad result: there is
                // no rung left to trust.
                return (
                    Err(format!("result failed verification on the fallback tier: {e}")),
                    None,
                    false,
                );
            }
            let recomputed = compute_once(cheapest, op, &outerspace_sim::OuterSpaceConfig::default());
            match recomputed {
                Ok(clean) => match verifier::check(op, &clean, &vcfg) {
                    Ok(att) => {
                        shared.metrics.on_quarantined_recovery();
                        (Ok(clean), Some(att), true)
                    }
                    Err(e2) => (
                        Err(format!(
                            "quarantined ({e}); software re-execution also failed verification: {e2}"
                        )),
                        None,
                        true,
                    ),
                },
                Err(e2) => (
                    Err(format!(
                        "quarantined ({e}); software re-execution failed: {}",
                        e2.message()
                    )),
                    None,
                    true,
                ),
            }
        }
    }
}

/// The canary thread: probes tripped kernel families with a known-answer
/// product once their cooldown elapses, closing a breaker only after the
/// configured number of consecutive correct answers. Probes run entirely
/// off the request path — no metrics buckets, no cache, a clean (fault-free)
/// accelerator config — so a flapping kernel cannot distort the service's
/// accounting while it convalesces.
fn canary_loop(shared: &Arc<Shared>) {
    use outerspace_gen::{uniform, vector};

    let a = Arc::new(uniform::matrix(24, 24, 90, 0xCA));
    let b = Arc::new(uniform::matrix(24, 24, 90, 0xFE));
    let mm_op = Op::Spgemm { a: a.clone(), b };
    let x = Arc::new(vector::sparse(24, 0.4, 0x0D));
    let mv_op = Op::Spmv { a, x };
    let clean_cfg = outerspace_sim::OuterSpaceConfig::default();
    let mm_golden = compute_once(kernels::CHEAPEST_SPGEMM, &mm_op, &clean_cfg).ok();
    let mv_golden = compute_once(kernels::CHEAPEST_SPMV, &mv_op, &clean_cfg).ok();

    while !shared.stopping.load(Ordering::SeqCst) {
        for kernel in shared.breaker.due_probes() {
            let (op, golden) = if kernel.contains("spmv") {
                (&mv_op, &mv_golden)
            } else {
                (&mm_op, &mm_golden)
            };
            let pass = match (compute_once(&kernel, op, &clean_cfg), golden) {
                (Ok(got), Some(want)) => canary_answer_matches(&got, want),
                _ => false,
            };
            if pass {
                shared.breaker.on_canary_pass(&kernel);
            } else {
                shared.breaker.on_canary_fail(&kernel);
            }
        }
        std::thread::sleep(Duration::from_millis(3));
    }
}

/// Known-answer comparison for canary probes.
fn canary_answer_matches(got: &OpOutput, want: &OpOutput) -> bool {
    match (got, want) {
        (OpOutput::Matrix(c), OpOutput::Matrix(g)) => c.approx_eq(g, 1e-9),
        (OpOutput::Vector(y), OpOutput::Vector(g)) => {
            let (yd, gd) = (y.to_dense(), g.to_dense());
            yd.len() == gd.len()
                && yd
                    .iter()
                    .zip(&gd)
                    .all(|(p, q)| (p - q).abs() <= 1e-9 * q.abs().max(1.0))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_gen::uniform;

    fn small_op(seed: u64) -> Op {
        let a = Arc::new(uniform::matrix(48, 48, 300, seed));
        Op::Spgemm { a: a.clone(), b: a }
    }

    #[test]
    fn serves_a_request_end_to_end() {
        let server = Server::start(ServerConfig { workers: 2, ..ServerConfig::default() });
        let ticket = server.submit(small_op(1)).unwrap();
        let resp = ticket.wait();
        let out = resp.result.expect("should compute");
        assert!(matches!(&*out, OpOutput::Matrix(_)));
        assert!(!resp.meta.cache_hit);
        // Same content again: served from the cache.
        let resp2 = server.submit(small_op(1)).unwrap().wait();
        assert!(resp2.meta.cache_hit);
        assert_eq!(resp2.meta.impl_name, "cache");
        assert_eq!(resp2.result.unwrap(), out);
        let snap = server.shutdown();
        assert!(snap.accounted_ok());
        assert_eq!(snap.completed_ok, 2);
        assert_eq!(snap.cache_hits, 1);
    }

    #[test]
    fn forced_kernel_and_fault_retries_are_deterministic() {
        let fm = FaultModel { seed: 42, ..FaultModel::default() };
        let cfg = ServerConfig { workers: 1, fault_model: fm, ..ServerConfig::default() };
        let server = Server::start(cfg);
        let resp = server
            .submit_opts(
                small_op(3),
                SubmitOpts { force_kernel: Some("outer_streaming".into()), ..Default::default() },
            )
            .unwrap()
            .wait();
        assert_eq!(resp.meta.impl_name, "outer_streaming");
        assert!(server.shutdown().accounted_ok());
    }
}
