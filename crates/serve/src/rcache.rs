//! Content-addressed result cache: identical products served without
//! recompute.
//!
//! The key is built from the *content* of the operands (dims, structure
//! arrays, value bits) plus the op kind — not from request ids — so two
//! clients submitting the same product share one entry. Storage is the
//! collision-guarded [`MemoMap`] generalized out of `dse::cache`, wrapped
//! here with a mutex and FIFO capacity eviction so a long-running service
//! cannot grow without bound. Results are `Arc`-shared: a hit is a clone of
//! the pointer, not of the matrix.
//!
//! Insertion is **verify-before-insert**: [`ResultCache::insert`] demands
//! the [`Attested`] token only [`crate::verifier::check`] can mint, so a
//! silently corrupted result cannot poison the cache — structurally, not by
//! reviewer diligence. A poisoned cache is the worst SDC amplifier a
//! service has (one bad compute served to every future client), which is
//! why the guarantee lives in the type system.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

use outerspace_dse::cache::content_hash;
use outerspace_dse::MemoMap;
use outerspace_sparse::{Csr, SparseVector};

use crate::request::{Op, OpOutput};
use crate::verifier::Attested;

fn push_usize(bytes: &mut Vec<u8>, v: usize) {
    bytes.extend_from_slice(&(v as u64).to_le_bytes());
}

fn csr_digest(m: &Csr) -> String {
    let mut bytes = Vec::with_capacity(16 + 8 * (m.row_ptr().len() + 2 * m.nnz()));
    push_usize(&mut bytes, m.nrows() as usize);
    push_usize(&mut bytes, m.ncols() as usize);
    for &p in m.row_ptr() {
        push_usize(&mut bytes, p);
    }
    for &c in m.col_indices() {
        push_usize(&mut bytes, c as usize);
    }
    for &v in m.values() {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    content_hash(&bytes)
}

fn vector_digest(x: &SparseVector) -> String {
    let mut bytes = Vec::with_capacity(8 + 16 * x.indices.len());
    push_usize(&mut bytes, x.len as usize);
    for &i in &x.indices {
        push_usize(&mut bytes, i as usize);
    }
    for &v in &x.values {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    content_hash(&bytes)
}

/// The full key material for one op — op kind plus per-operand content
/// digests. Human-readable on purpose: it doubles as the collision-guard
/// payload inside [`MemoMap`].
pub fn op_material(op: &Op) -> String {
    match op {
        Op::Spgemm { a, b } => format!("spgemm a={} b={}", csr_digest(a), csr_digest(b)),
        Op::Spmv { a, x } => format!("spmv a={} x={}", csr_digest(a), vector_digest(x)),
    }
}

struct Inner {
    map: MemoMap<Arc<OpOutput>>,
    fifo: VecDeque<String>,
    hits: u64,
    misses: u64,
}

/// Bounded, thread-safe, content-addressed result store.
pub struct ResultCache {
    inner: Mutex<Inner>,
    cap: usize,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (len, hits, misses) = self.stats();
        f.debug_struct("ResultCache")
            .field("cap", &self.cap)
            .field("len", &len)
            .field("hits", &hits)
            .field("misses", &misses)
            .finish()
    }
}

impl ResultCache {
    /// A cache holding at most `cap` results (0 disables caching).
    pub fn new(cap: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Inner {
                map: MemoMap::new(),
                fifo: VecDeque::new(),
                hits: 0,
                misses: 0,
            }),
            cap,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up a result by pre-computed key material (see [`op_material`]).
    pub fn lookup(&self, material: &str) -> Option<Arc<OpOutput>> {
        let mut inner = self.lock();
        match inner.map.lookup(material).cloned() {
            Some(v) => {
                inner.hits += 1;
                Some(v)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Stores a *verified* result, evicting the oldest entry when full. A
    /// no-op on a zero-capacity cache. The [`Attested`] witness is the
    /// verify-before-insert guarantee: only results that passed
    /// [`crate::verifier::check`] against their own operands can get here.
    pub fn insert(&self, material: &str, value: Arc<OpOutput>, _attested: &Attested) {
        if self.cap == 0 {
            return;
        }
        let mut inner = self.lock();
        if inner.map.insert(material, value).is_none() {
            inner.fifo.push_back(material.to_string());
        }
        while inner.fifo.len() > self.cap {
            if let Some(oldest) = inner.fifo.pop_front() {
                inner.map.remove(&oldest);
            }
        }
    }

    /// `(entries, hits, misses)` counters.
    pub fn stats(&self) -> (usize, u64, u64) {
        let inner = self.lock();
        (inner.map.len(), inner.hits, inner.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_gen::uniform;

    fn op(seed: u64) -> Op {
        let a = Arc::new(uniform::matrix(32, 32, 120, seed));
        Op::Spgemm { a: a.clone(), b: a }
    }

    /// The only way tests can mint an [`Attested`]: actually verify a
    /// result. `I × I = I` keeps it trivial.
    fn attested() -> Attested {
        let a = Arc::new(outerspace_sparse::Csr::identity(4));
        let op = Op::Spgemm { a: a.clone(), b: a.clone() };
        let out = OpOutput::Matrix(outerspace_sparse::Csr::identity(4));
        let policy = crate::verifier::VerifyPolicy::default();
        crate::verifier::check(&op, &out, &crate::verifier::config_for(&policy, 0))
            .expect("identity product must verify")
    }

    #[test]
    fn material_is_content_addressed() {
        // Same content in distinct allocations → same key.
        assert_eq!(op_material(&op(5)), op_material(&op(5)));
        // Different values → different key.
        assert_ne!(op_material(&op(5)), op_material(&op(6)));
        // SpGEMM and SpMV never collide even over identical matrices.
        let a = Arc::new(uniform::matrix(32, 32, 120, 5));
        let x = Arc::new(outerspace_gen::vector::sparse(32, 0.5, 1));
        let mm = op_material(&Op::Spgemm { a: a.clone(), b: a.clone() });
        let mv = op_material(&Op::Spmv { a, x });
        assert_ne!(mm, mv);
    }

    #[test]
    fn transposed_operands_do_not_collide() {
        let a = Arc::new(uniform::matrix(32, 32, 120, 5));
        let b = Arc::new(uniform::matrix(32, 32, 120, 6));
        let ab = op_material(&Op::Spgemm { a: a.clone(), b: b.clone() });
        let ba = op_material(&Op::Spgemm { a: b, b: a });
        assert_ne!(ab, ba);
    }

    #[test]
    fn hit_after_insert_and_fifo_eviction() {
        let cache = ResultCache::new(2);
        let att = attested();
        let out = |n| Arc::new(OpOutput::Matrix(outerspace_sparse::Csr::identity(n)));
        let (k1, k2, k3) = ("k1", "k2", "k3");
        assert!(cache.lookup(k1).is_none());
        cache.insert(k1, out(1), &att);
        cache.insert(k2, out(2), &att);
        assert!(cache.lookup(k1).is_some());
        cache.insert(k3, out(3), &att); // evicts k1, the oldest
        assert!(cache.lookup(k1).is_none());
        assert!(cache.lookup(k2).is_some());
        assert!(cache.lookup(k3).is_some());
        let (len, hits, misses) = cache.stats();
        assert_eq!(len, 2);
        assert_eq!(hits, 3);
        assert_eq!(misses, 2);
    }

    #[test]
    fn reinsert_does_not_double_count_fifo() {
        let cache = ResultCache::new(2);
        let att = attested();
        let out = Arc::new(OpOutput::Matrix(outerspace_sparse::Csr::identity(1)));
        cache.insert("k", out.clone(), &att);
        cache.insert("k", out.clone(), &att);
        cache.insert("j", out.clone(), &att);
        // Both still present: the duplicate insert must not have pushed a
        // second FIFO slot for "k" that would evict early.
        assert!(cache.lookup("k").is_some());
        assert!(cache.lookup("j").is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultCache::new(0);
        let att = attested();
        cache.insert("k", Arc::new(OpOutput::Matrix(outerspace_sparse::Csr::identity(1))), &att);
        assert!(cache.lookup("k").is_none());
    }
}
