//! Service counters and the accounting identities.
//!
//! Every submitted request must reach exactly one terminal bucket:
//!
//! ```text
//! submitted == completed_ok + failed + rejected + timed_out
//! ```
//!
//! and every *delivered* success must come out of exactly one provenance
//! bucket of the verification tier:
//!
//! ```text
//! completed_ok == verified_ok + unverified_pass + cache_hits
//! ```
//!
//! (cache hits are attested at insert time — see `rcache` — so the cache
//! bucket is verified by construction). [`Snapshot::accounted_ok`] and
//! [`Snapshot::delivery_accounted_ok`] check the identities; the chaos
//! harness and the CI gate assert both after every run, so a request — or a
//! result that skipped verification — silently dropped by a bug anywhere in
//! the pipeline turns into a loud failure instead of a missing row.
//! Counters are atomics (workers bump them lock-free); latency samples take
//! a mutex only at terminal-outcome time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use outerspace_json::Json;

use crate::request::RejectReason;

/// Live counters, shared by the server front door and its workers.
#[derive(Debug, Default)]
pub struct Metrics {
    submitted: AtomicU64,
    completed_ok: AtomicU64,
    failed: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_overloaded: AtomicU64,
    rejected_shutting_down: AtomicU64,
    timed_out: AtomicU64,
    retries: AtomicU64,
    fallbacks: AtomicU64,
    degraded_served: AtomicU64,
    cache_hits: AtomicU64,
    /// Results that were *delivered* after their deadline — the invariant
    /// the watchdog exists to keep at zero.
    deadline_violations: AtomicU64,
    verified_ok: AtomicU64,
    unverified_pass: AtomicU64,
    sdc_detected: AtomicU64,
    quarantined_recoveries: AtomicU64,
    chaos_sdc_executed: AtomicU64,
    chaos_sdc_detected: AtomicU64,
    latencies_ms: Mutex<Vec<f64>>,
}

impl Metrics {
    /// Fresh zeroed counters.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    pub(crate) fn on_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_rejected(&self, reason: RejectReason) {
        let c = match reason {
            RejectReason::QueueFull => &self.rejected_queue_full,
            RejectReason::Overloaded => &self.rejected_overloaded,
            RejectReason::ShuttingDown => &self.rejected_shutting_down,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_completed_ok(&self, total_ms: f64) {
        self.completed_ok.fetch_add(1, Ordering::Relaxed);
        self.latencies_ms.lock().unwrap_or_else(PoisonError::into_inner).push(total_ms);
    }

    pub(crate) fn on_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_timed_out(&self) {
        self.timed_out.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_fallback(&self) {
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_degraded_served(&self) {
        self.degraded_served.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_deadline_violation(&self) {
        self.deadline_violations.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_delivered_verified(&self) {
        self.verified_ok.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_delivered_unverified(&self) {
        self.unverified_pass.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_sdc_detected(&self) {
        self.sdc_detected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_quarantined_recovery(&self) {
        self.quarantined_recoveries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_chaos_sdc_executed(&self) {
        self.chaos_sdc_executed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_chaos_sdc_detected(&self) {
        self.chaos_sdc_detected.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent point-in-time copy. Take it only when the server is
    /// quiescent (drained) if the identity must hold exactly.
    pub fn snapshot(&self) -> Snapshot {
        let mut latencies =
            self.latencies_ms.lock().unwrap_or_else(PoisonError::into_inner).clone();
        latencies.sort_by(f64::total_cmp);
        Snapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed_ok: self.completed_ok.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_overloaded: self.rejected_overloaded.load(Ordering::Relaxed),
            rejected_shutting_down: self.rejected_shutting_down.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            degraded_served: self.degraded_served.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            deadline_violations: self.deadline_violations.load(Ordering::Relaxed),
            verified_ok: self.verified_ok.load(Ordering::Relaxed),
            unverified_pass: self.unverified_pass.load(Ordering::Relaxed),
            sdc_detected: self.sdc_detected.load(Ordering::Relaxed),
            quarantined_recoveries: self.quarantined_recoveries.load(Ordering::Relaxed),
            chaos_sdc_executed: self.chaos_sdc_executed.load(Ordering::Relaxed),
            chaos_sdc_detected: self.chaos_sdc_detected.load(Ordering::Relaxed),
            latencies_ms: latencies,
        }
    }
}

/// Point-in-time counter copy with derived statistics.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Requests that entered `submit`.
    pub submitted: u64,
    /// Delivered a successful payload before the deadline.
    pub completed_ok: u64,
    /// Terminal kernel failure (after retries/fallbacks).
    pub failed: u64,
    /// Shed at admission: bounded queue full.
    pub rejected_queue_full: u64,
    /// Shed at admission: predicted wait exceeds the deadline.
    pub rejected_overloaded: u64,
    /// Shed at or after admission because the server was stopping.
    pub rejected_shutting_down: u64,
    /// Deadline passed before a payload could be delivered.
    pub timed_out: u64,
    /// Transient-fault retries across all requests.
    pub retries: u64,
    /// Accelerator-path permanent failures served by a software kernel.
    pub fallbacks: u64,
    /// Requests served on the degraded (cheapest-kernel) tier.
    pub degraded_served: u64,
    /// Results served from the content-addressed cache.
    pub cache_hits: u64,
    /// Payloads delivered after their deadline (must stay 0).
    pub deadline_violations: u64,
    /// Deliveries whose payload passed verification against its operands.
    pub verified_ok: u64,
    /// Deliveries the scrub sampler skipped (software-kernel results only;
    /// accelerator-class results are never delivered unverified).
    pub unverified_pass: u64,
    /// Results that failed verification and were quarantined — never
    /// delivered, never cached.
    pub sdc_detected: u64,
    /// Quarantined requests rescued by a verified software re-execution.
    pub quarantined_recoveries: u64,
    /// `chaos_sdc*` hook executions whose result reached verification.
    pub chaos_sdc_executed: u64,
    /// `chaos_sdc*` hook results verification caught.
    pub chaos_sdc_detected: u64,
    /// Sorted completed-ok latencies, milliseconds.
    pub latencies_ms: Vec<f64>,
}

/// Nearest-rank percentile over an already-sorted sample (`q` in 0..=1).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl Snapshot {
    /// Total shed at admission, all reasons.
    pub fn rejected(&self) -> u64 {
        self.rejected_queue_full + self.rejected_overloaded + self.rejected_shutting_down
    }

    /// The accounting identity: every submission reached exactly one
    /// terminal bucket.
    pub fn accounted_ok(&self) -> bool {
        self.completed_ok + self.failed + self.rejected() + self.timed_out == self.submitted
    }

    /// The delivery identity: every successful delivery is verified, a
    /// sampled scrub skip, or an (attested-at-insert) cache hit.
    pub fn delivery_accounted_ok(&self) -> bool {
        self.verified_ok + self.unverified_pass + self.cache_hits == self.completed_ok
    }

    /// Detected-over-executed for the `chaos_sdc*` drills; 1.0 with no
    /// drill traffic (vacuously perfect detection).
    pub fn chaos_sdc_detection_rate(&self) -> f64 {
        if self.chaos_sdc_executed == 0 {
            return 1.0;
        }
        self.chaos_sdc_detected as f64 / self.chaos_sdc_executed as f64
    }

    /// Fraction of submissions shed at admission.
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        self.rejected() as f64 / self.submitted as f64
    }

    /// Median completed-ok latency, ms.
    pub fn p50_ms(&self) -> f64 {
        percentile(&self.latencies_ms, 0.50)
    }

    /// Tail completed-ok latency, ms.
    pub fn p99_ms(&self) -> f64 {
        percentile(&self.latencies_ms, 0.99)
    }

    /// Fixed-key-order JSON for reports and the CI gate.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("submitted".into(), Json::UInt(self.submitted)),
            ("completed_ok".into(), Json::UInt(self.completed_ok)),
            ("failed".into(), Json::UInt(self.failed)),
            (
                "rejected".into(),
                Json::Obj(vec![
                    ("queue_full".into(), Json::UInt(self.rejected_queue_full)),
                    ("overloaded".into(), Json::UInt(self.rejected_overloaded)),
                    ("shutting_down".into(), Json::UInt(self.rejected_shutting_down)),
                ]),
            ),
            ("timed_out".into(), Json::UInt(self.timed_out)),
            ("retries".into(), Json::UInt(self.retries)),
            ("fallbacks".into(), Json::UInt(self.fallbacks)),
            ("degraded_served".into(), Json::UInt(self.degraded_served)),
            ("cache_hits".into(), Json::UInt(self.cache_hits)),
            ("deadline_violations".into(), Json::UInt(self.deadline_violations)),
            ("verified_ok".into(), Json::UInt(self.verified_ok)),
            ("unverified_pass".into(), Json::UInt(self.unverified_pass)),
            ("sdc_detected".into(), Json::UInt(self.sdc_detected)),
            ("quarantined_recoveries".into(), Json::UInt(self.quarantined_recoveries)),
            ("chaos_sdc_executed".into(), Json::UInt(self.chaos_sdc_executed)),
            ("chaos_sdc_detected".into(), Json::UInt(self.chaos_sdc_detected)),
            ("shed_rate".into(), Json::Float(self.shed_rate())),
            ("p50_ms".into(), Json::Float(self.p50_ms())),
            ("p99_ms".into(), Json::Float(self.p99_ms())),
            ("accounted_ok".into(), Json::Bool(self.accounted_ok())),
            ("delivery_accounted_ok".into(), Json::Bool(self.delivery_accounted_ok())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_holds_when_every_request_terminates() {
        let m = Metrics::new();
        for _ in 0..10 {
            m.on_submitted();
        }
        for i in 0..4 {
            m.on_completed_ok(1.0 + i as f64);
        }
        m.on_failed();
        m.on_rejected(RejectReason::QueueFull);
        m.on_rejected(RejectReason::QueueFull);
        m.on_rejected(RejectReason::Overloaded);
        m.on_timed_out();
        m.on_timed_out();
        let s = m.snapshot();
        assert!(s.accounted_ok(), "identity must hold: {s:?}");
        assert_eq!(s.rejected(), 3);
        assert!((s.shed_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn identity_detects_a_dropped_request() {
        let m = Metrics::new();
        m.on_submitted();
        m.on_submitted();
        m.on_completed_ok(1.0);
        // The second request vanished — the identity must catch it.
        assert!(!m.snapshot().accounted_ok());
    }

    #[test]
    fn delivery_identity_partitions_successes() {
        let m = Metrics::new();
        for _ in 0..6 {
            m.on_submitted();
        }
        // 3 verified, 1 sampled skip, 1 cache hit, 1 quarantine-recovered
        // (which still delivers verified).
        for _ in 0..3 {
            m.on_completed_ok(1.0);
            m.on_delivered_verified();
        }
        m.on_completed_ok(1.0);
        m.on_delivered_unverified();
        m.on_cache_hit();
        m.on_completed_ok(0.1);
        m.on_sdc_detected();
        m.on_quarantined_recovery();
        m.on_completed_ok(2.0);
        m.on_delivered_verified();
        let s = m.snapshot();
        assert!(s.accounted_ok());
        assert!(s.delivery_accounted_ok(), "delivery identity must hold: {s:?}");
        assert_eq!(s.verified_ok, 4);
        assert_eq!(s.unverified_pass, 1);
        assert_eq!(s.sdc_detected, 1);
        // A delivery that skipped every provenance bucket breaks it.
        m.on_submitted();
        m.on_completed_ok(1.0);
        assert!(!m.snapshot().delivery_accounted_ok());
    }

    #[test]
    fn chaos_detection_rate_is_detected_over_executed() {
        let m = Metrics::new();
        assert_eq!(m.snapshot().chaos_sdc_detection_rate(), 1.0);
        for _ in 0..4 {
            m.on_chaos_sdc_executed();
        }
        for _ in 0..3 {
            m.on_chaos_sdc_detected();
        }
        assert!((m.snapshot().chaos_sdc_detection_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let m = Metrics::new();
        for i in 1..=100 {
            m.on_submitted();
            m.on_completed_ok(i as f64);
        }
        let s = m.snapshot();
        assert_eq!(s.p50_ms(), 50.0);
        assert_eq!(s.p99_ms(), 99.0);
        // Empty snapshot: percentiles degrade to 0, not a panic.
        let empty = Metrics::new().snapshot();
        assert_eq!(empty.p50_ms(), 0.0);
    }

    #[test]
    fn json_snapshot_carries_the_identity_verdict() {
        let m = Metrics::new();
        m.on_submitted();
        m.on_completed_ok(2.0);
        let j = m.snapshot().to_json();
        assert_eq!(j.get("accounted_ok"), Some(&Json::Bool(true)));
        assert_eq!(j.get("submitted").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("rejected").and_then(|r| r.get("queue_full")).and_then(Json::as_u64), Some(0));
    }
}
