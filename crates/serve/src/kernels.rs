//! The kernel table the router chooses from, with a transient/permanent
//! error split for the retry machinery.
//!
//! Every name here matches the differential-testing oracle's registry
//! (`crates/oracle`), so each choice the classifier can make is continuously
//! cross-checked against the reference kernels — the "known-good" in
//! "cheapest known-good implementation". (`crates/oracle` has a test pinning
//! this name correspondence.)
//!
//! Faults only reach the `sim`/`sim_spmv` entries: the accelerator model is
//! the path with an injected [`FaultModel`], so a transiently failing
//! simulation ([`SimError::MemoryFailure`], [`SimError::WatchdogTimeout`])
//! is retryable with a fresh per-attempt fault seed, while a dead array
//! ([`SimError::AllPesFailed`]) is permanent and triggers the software
//! fallback rung of the degradation ladder.

use std::sync::atomic::{AtomicU64, Ordering};

use outerspace_baselines as baselines;
use outerspace_outer as outer;
use outerspace_sim::{faults, OuterSpaceConfig, SimError, Simulator};
use outerspace_sparse::{Csr, SparseVector};

use crate::request::{Op, OpOutput};

/// Every SpGEMM kernel the router may choose, cheapest-first within tiers.
pub const SPGEMM_KERNELS: &[&str] = &[
    "mkl_gustavson",
    "mkl_gustavson_par",
    "outer_streaming",
    "outer_blocked",
    "outer_par",
    "outer_ws_par",
    "cusparse_hash",
    "sim",
];

/// Every SpMV kernel the router may choose.
pub const SPMV_KERNELS: &[&str] = &["outer_spmv", "mkl_spmv_densified", "sim_spmv"];

/// The cheapest known-good rung of the degradation ladder: serial Gustavson,
/// bounded memory, no worker threads, no simulated hardware to fault.
pub const CHEAPEST_SPGEMM: &str = "mkl_gustavson";
/// SpMV counterpart of [`CHEAPEST_SPGEMM`].
pub const CHEAPEST_SPMV: &str = "mkl_spmv_densified";

/// How a kernel failed, from the retry machinery's point of view.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelError {
    /// Worth retrying with a fresh fault seed (transient injected fault).
    Transient(String),
    /// Retrying cannot help: malformed operands, dead hardware model, or a
    /// caught kernel panic.
    Permanent(String),
}

impl KernelError {
    /// The failure message regardless of class.
    pub fn message(&self) -> &str {
        match self {
            KernelError::Transient(m) | KernelError::Permanent(m) => m,
        }
    }
}

fn classify_sim_error(e: SimError) -> KernelError {
    match e {
        // An exhausted HBM retry budget or a fired phase watchdog is a
        // transient episode: a re-run draws a fresh fault stream.
        SimError::MemoryFailure { .. } | SimError::WatchdogTimeout { .. } => {
            KernelError::Transient(e.to_string())
        }
        // Dead PEs stay dead, and config/shape rejections are deterministic.
        _ => KernelError::Permanent(e.to_string()),
    }
}

fn perm<E: std::fmt::Display>(e: E) -> KernelError {
    KernelError::Permanent(e.to_string())
}

/// Worker threads handed to the `*_par` kernels.
pub const PAR_THREADS: usize = 3;

/// Runs SpGEMM kernel `name`. `sim_config` only matters for `"sim"` (it
/// carries the per-request fault seed).
pub fn run_spgemm(
    name: &str,
    a: &Csr,
    b: &Csr,
    sim_config: &OuterSpaceConfig,
) -> Result<Csr, KernelError> {
    match name {
        "mkl_gustavson" => baselines::gustavson::spgemm(a, b).map(|(c, _)| c).map_err(perm),
        "mkl_gustavson_par" => baselines::gustavson::spgemm_parallel(a, b, PAR_THREADS)
            .map(|(c, _)| c)
            .map_err(perm),
        "outer_streaming" => outer::spgemm(a, b).map_err(perm),
        "outer_blocked" => outer::spgemm_blocked(a, b).map(|(c, _)| c).map_err(perm),
        "outer_par" => {
            outer::spgemm_parallel(a, b, PAR_THREADS).map(|(c, _)| c).map_err(perm)
        }
        "outer_ws_par" => {
            outer::spgemm_arena_parallel(a, b, PAR_THREADS).map(|(c, _)| c).map_err(perm)
        }
        "cusparse_hash" => baselines::hash::spgemm(a, b).map(|(c, _)| c).map_err(perm),
        "sim" => {
            let sim = Simulator::new(sim_config.clone()).map_err(perm)?;
            sim.spgemm(a, b).map(|(c, _)| c).map_err(classify_sim_error)
        }
        other => Err(KernelError::Permanent(format!("unknown spgemm kernel '{other}'"))),
    }
}

/// Runs SpMV kernel `name`; see [`run_spgemm`] for the `sim_config` rule.
pub fn run_spmv(
    name: &str,
    a: &Csr,
    x: &SparseVector,
    sim_config: &OuterSpaceConfig,
) -> Result<SparseVector, KernelError> {
    match name {
        "outer_spmv" => outer::spmv(&a.to_csc(), x).map(|(y, _)| y).map_err(perm),
        "mkl_spmv_densified" => baselines::spmv::spmv_dense_vector(a, x)
            .map(|(y, _)| SparseVector::from_dense(&y))
            .map_err(perm),
        "sim_spmv" => {
            let sim = Simulator::new(sim_config.clone()).map_err(perm)?;
            sim.spmv(&a.to_csc(), x).map(|(y, _)| y).map_err(classify_sim_error)
        }
        other => Err(KernelError::Permanent(format!("unknown spmv kernel '{other}'"))),
    }
}

/// Process-global execution counter for the `chaos_sdc*` hooks: the
/// `chaos_sdc_burst:<n>` variant corrupts only its first `n` executions, so
/// a drill can trip a breaker and then let the canary probes observe a
/// healthy kernel again.
static CHAOS_SDC_EXECUTIONS: AtomicU64 = AtomicU64::new(0);

/// Rewinds the [`chaos_sdc_burst`](run_op) execution counter so a fresh
/// drill gets a fresh corruption budget.
pub fn reset_chaos_sdc_counter() {
    CHAOS_SDC_EXECUTIONS.store(0, Ordering::SeqCst);
}

/// Flips one mantissa bit of the first value of non-negligible magnitude —
/// the exact corruption shape `FaultModel::ber_silent` produces, but
/// deterministic and guaranteed, so the verification tier's detection rate
/// can be asserted instead of sampled.
fn corrupt_one_value(values: &mut [f64], salt: u64) {
    match values.iter().position(|v| v.abs() >= 1e-3) {
        Some(i) => values[i] = faults::corrupt_value(values[i], salt),
        // All-tiny results: an additive hit keeps the corruption visible
        // above any magnitude-scaled tolerance.
        None => {
            if let Some(v) = values.first_mut() {
                *v += 1.0;
            }
        }
    }
}

/// Runs `op` through kernel `name`, normalizing the output.
///
/// Chaos hooks ride alongside the real kernels (reachable only by forcing
/// the kernel name — the classifier never routes to them): `"chaos_panic"`
/// panics unconditionally, exercising worker panic isolation;
/// `"chaos_sleep:<ms>"` stalls before delegating to the cheapest kernel,
/// exercising mid-compute deadline expiry; `"chaos_sdc"` computes the
/// correct product and then silently corrupts one value — the accelerator's
/// `ber_silent` failure mode made deterministic — exercising the
/// verification tier; `"chaos_sdc_burst:<n>"` does the same for its first
/// `n` executions process-wide and then runs clean, exercising breaker
/// recovery through half-open canary probes.
pub fn run_op(name: &str, op: &Op, sim_config: &OuterSpaceConfig) -> Result<OpOutput, KernelError> {
    if name == "chaos_panic" {
        panic!("chaos_panic kernel fired");
    }
    if let Some(ms) = name.strip_prefix("chaos_sleep:") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| KernelError::Permanent(format!("bad chaos_sleep kernel '{name}'")))?;
        std::thread::sleep(std::time::Duration::from_millis(ms));
        let cheapest = match op {
            Op::Spgemm { .. } => CHEAPEST_SPGEMM,
            Op::Spmv { .. } => CHEAPEST_SPMV,
        };
        return run_op(cheapest, op, sim_config);
    }
    if let Some(rest) = name.strip_prefix("chaos_sdc") {
        let burst: Option<u64> = match rest.strip_prefix("_burst:") {
            Some(n) => Some(n.parse().map_err(|_| {
                KernelError::Permanent(format!("bad chaos_sdc_burst kernel '{name}'"))
            })?),
            None if rest.is_empty() => None,
            None => return Err(KernelError::Permanent(format!("unknown kernel '{name}'"))),
        };
        let cheapest = match op {
            Op::Spgemm { .. } => CHEAPEST_SPGEMM,
            Op::Spmv { .. } => CHEAPEST_SPMV,
        };
        let mut out = run_op(cheapest, op, sim_config)?;
        // Only the burst variant consumes the process-global counter: the
        // plain hook corrupts unconditionally, so it must not race a
        // concurrent breaker drill's corruption budget.
        let (corrupt, salt) = match burst {
            None => (true, 0),
            Some(n) => {
                let k = CHAOS_SDC_EXECUTIONS.fetch_add(1, Ordering::SeqCst);
                (k < n, k)
            }
        };
        if corrupt {
            match &mut out {
                OpOutput::Matrix(c) => corrupt_one_value(c.values_mut(), salt),
                OpOutput::Vector(y) => corrupt_one_value(&mut y.values, salt),
            }
        }
        return Ok(out);
    }
    match op {
        Op::Spgemm { a, b } => run_spgemm(name, a, b, sim_config).map(OpOutput::Matrix),
        Op::Spmv { a, x } => run_spmv(name, a, x, sim_config).map(OpOutput::Vector),
    }
}

/// True when `name` models the accelerator (the only tier faults reach, and
/// the only tier with a software fallback rung below it).
pub fn is_sim_kernel(name: &str) -> bool {
    name == "sim" || name == "sim_spmv"
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn every_registered_kernel_computes_the_same_product() {
        let a = Arc::new(outerspace_gen::uniform::matrix(48, 48, 300, 7));
        let cfg = OuterSpaceConfig::default();
        let golden = run_spgemm(CHEAPEST_SPGEMM, &a, &a, &cfg).unwrap();
        for name in SPGEMM_KERNELS {
            let c = run_spgemm(name, &a, &a, &cfg)
                .unwrap_or_else(|e| panic!("{name}: {}", e.message()));
            assert!(c.approx_eq(&golden, 1e-9), "{name} diverged");
        }
        let x = Arc::new(outerspace_gen::vector::sparse(48, 0.3, 9));
        let golden_y = run_spmv(CHEAPEST_SPMV, &a, &x, &cfg).unwrap().to_dense();
        for name in SPMV_KERNELS {
            let y = run_spmv(name, &a, &x, &cfg)
                .unwrap_or_else(|e| panic!("{name}: {}", e.message()))
                .to_dense();
            assert_eq!(y.len(), golden_y.len(), "{name} length diverged");
            for (got, want) in y.iter().zip(&golden_y) {
                assert!((got - want).abs() < 1e-9, "{name} diverged");
            }
        }
    }

    #[test]
    fn dimension_mismatch_is_permanent() {
        let a = outerspace_gen::uniform::matrix(8, 8, 16, 1);
        let b = outerspace_gen::uniform::matrix(9, 9, 16, 1);
        let cfg = OuterSpaceConfig::default();
        for name in SPGEMM_KERNELS {
            match run_spgemm(name, &a, &b, &cfg) {
                Err(KernelError::Permanent(_)) => {}
                other => panic!("{name}: expected permanent rejection, got {other:?}"),
            }
        }
    }

    #[test]
    fn chaos_sdc_corrupts_and_burst_runs_dry() {
        let a = Arc::new(outerspace_gen::uniform::matrix(48, 48, 300, 5));
        let op = Op::Spgemm { a: a.clone(), b: a.clone() };
        let cfg = OuterSpaceConfig::default();
        let golden = run_op(CHEAPEST_SPGEMM, &op, &cfg).unwrap();
        reset_chaos_sdc_counter();
        // The plain hook corrupts every execution.
        for _ in 0..3 {
            let out = run_op("chaos_sdc", &op, &cfg).unwrap();
            assert_ne!(out, golden, "chaos_sdc must corrupt the result");
        }
        // The burst hook corrupts exactly its first n executions.
        reset_chaos_sdc_counter();
        for k in 0..5 {
            let out = run_op("chaos_sdc_burst:2", &op, &cfg).unwrap();
            if k < 2 {
                assert_ne!(out, golden, "execution {k} should be corrupted");
            } else {
                assert_eq!(out, golden, "execution {k} should be clean");
            }
        }
        reset_chaos_sdc_counter();
        assert!(matches!(
            run_op("chaos_sdc_burst:x", &op, &cfg),
            Err(KernelError::Permanent(_))
        ));
        // SpMV outputs are corrupted too.
        let x = Arc::new(outerspace_gen::vector::sparse(48, 0.3, 9));
        let mv = Op::Spmv { a, x };
        let clean = run_op(CHEAPEST_SPMV, &mv, &cfg).unwrap();
        assert_ne!(run_op("chaos_sdc", &mv, &cfg).unwrap(), clean);
        reset_chaos_sdc_counter();
    }

    #[test]
    fn unknown_kernel_is_permanent() {
        let a = Csr::identity(4);
        assert!(matches!(
            run_spgemm("nope", &a, &a, &OuterSpaceConfig::default()),
            Err(KernelError::Permanent(_))
        ));
    }
}
