//! `ospace-serve` — load-generator + chaos harness for the SpGEMM service.
//!
//! ```text
//! ospace-serve [--requests N] [--pool N] [--scale N] [--nnz N] [--seed S]
//!              [--workers N] [--queue-cap N] [--deadline-ms MS]
//!              [--rate RPS | --burst] [--overload FACTOR]
//!              [--faults] [--panic-every N] [--sleep-every N] [--sleep-ms MS]
//!              [--sdc-every N] [--pareto FILE] [--out FILE]
//!              [--chaos | --chaos-sdc]
//! ```
//!
//! `--chaos` is the CI preset: injected accelerator faults, forced worker
//! panics, forced mid-compute stalls, and 2× overload (open-loop rate
//! calibrated to twice what the worker pool can absorb). After the run the
//! binary *asserts* the service invariants — every request accounted for,
//! zero payloads delivered past their deadline — and exits non-zero if any
//! fail, so the gate needs no external checker. The full report is written
//! as JSON either way.
//!
//! `--chaos-sdc` is the silent-data-corruption gate: ECC-escape faults on
//! the accelerator path, forced `chaos_sdc` corruption traffic, sampled
//! scrubbing of software kernels, and 2× overload — with every delivered
//! payload judged against an independently computed golden answer. It then
//! runs a breaker drill (trip a kernel with a corruption burst, wait for the
//! half-open canary probes to restore it) and asserts: zero corrupted
//! deliveries, the delivery accounting identity, chaos detection ≥ 99%, at
//! least one breaker trip, and full breaker recovery.
//!
//! Exit status: 0 invariants hold; 1 an invariant broke; 2 bad usage.

use std::path::PathBuf;
use std::time::Duration;

use outerspace_json::{dump, Json};
use outerspace_serve::loadgen::{self, Arrivals, Scenario};
use outerspace_serve::{Classifier, Server, ServerConfig};
use outerspace_sim::FaultModel;

const USAGE: &str = "usage: ospace-serve [--requests N] [--pool N] [--scale N] [--nnz N] \
     [--seed S] [--workers N] [--queue-cap N] [--deadline-ms MS] [--rate RPS] [--burst] \
     [--overload FACTOR] [--faults] [--panic-every N] [--sleep-every N] [--sleep-ms MS] \
     [--sdc-every N] [--pareto FILE] [--out FILE] [--chaos] [--chaos-sdc]";

struct Cli {
    scenario: Scenario,
    server: ServerConfig,
    overload: Option<f64>,
    pareto: Option<PathBuf>,
    out: PathBuf,
    chaos: bool,
    chaos_sdc: bool,
}

fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Cli, String> {
    let mut cli = Cli {
        scenario: Scenario {
            requests: 120,
            pool: 16,
            scale: 96,
            nnz: 900,
            spmv_fraction: 0.25,
            seed: 42,
            arrivals: Arrivals::Burst,
            deadline: Duration::from_millis(2_000),
            chaos_panic_every: 0,
            chaos_sleep_every: 0,
            chaos_sleep_ms: 0,
            chaos_sdc_every: 0,
            golden_check: false,
        },
        server: ServerConfig::default(),
        overload: None,
        pareto: None,
        out: PathBuf::from("serve_results/serve.json"),
        chaos: false,
        chaos_sdc: false,
    };
    let mut args = args.into_iter();
    fn num<T: std::str::FromStr>(flag: &str, v: Option<String>) -> Result<T, String> {
        let v = v.ok_or_else(|| format!("{flag} needs a value"))?;
        v.parse().map_err(|_| format!("{flag}: '{v}' is not a valid value"))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--requests" => cli.scenario.requests = num("--requests", args.next())?,
            "--pool" => cli.scenario.pool = num("--pool", args.next())?,
            "--scale" => cli.scenario.scale = num("--scale", args.next())?,
            "--nnz" => cli.scenario.nnz = num("--nnz", args.next())?,
            "--seed" => cli.scenario.seed = num("--seed", args.next())?,
            "--workers" => cli.server.workers = num("--workers", args.next())?,
            "--queue-cap" => {
                cli.server.queue_cap = num("--queue-cap", args.next())?;
            }
            "--deadline-ms" => {
                let ms: u64 = num("--deadline-ms", args.next())?;
                cli.scenario.deadline = Duration::from_millis(ms);
            }
            "--rate" => {
                cli.scenario.arrivals = Arrivals::Rate { rps: num("--rate", args.next())? };
            }
            "--burst" => cli.scenario.arrivals = Arrivals::Burst,
            "--overload" => cli.overload = Some(num("--overload", args.next())?),
            "--faults" => cli.server.fault_model = chaos_fault_model(cli.scenario.seed),
            "--panic-every" => {
                cli.scenario.chaos_panic_every = num("--panic-every", args.next())?;
            }
            "--sleep-every" => {
                cli.scenario.chaos_sleep_every = num("--sleep-every", args.next())?;
            }
            "--sleep-ms" => cli.scenario.chaos_sleep_ms = num("--sleep-ms", args.next())?,
            "--sdc-every" => {
                cli.scenario.chaos_sdc_every = num("--sdc-every", args.next())?;
            }
            "--pareto" => {
                cli.pareto =
                    Some(PathBuf::from(args.next().ok_or("--pareto needs a file path")?));
            }
            "--out" => cli.out = PathBuf::from(args.next().ok_or("--out needs a file path")?),
            "--chaos" => cli.chaos = true,
            "--chaos-sdc" => cli.chaos_sdc = true,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if cli.chaos_sdc {
        // The SDC gate preset: silent ECC escapes on the accelerator path,
        // forced corruption traffic, sampled software scrubbing, fast
        // breaker timings (so the recovery drill finishes quickly), 2×
        // overload, and golden-answer judging of every delivery.
        cli.server.fault_model = FaultModel {
            seed: cli.scenario.seed,
            ber_silent: 3e-7,
            ..FaultModel::default()
        };
        cli.server.verify.scrub_every = 4;
        cli.server.breaker.cooldown = Duration::from_millis(150);
        cli.server.breaker.canary_interval = Duration::from_millis(25);
        if cli.scenario.chaos_sdc_every == 0 {
            cli.scenario.chaos_sdc_every = 5;
        }
        if cli.overload.is_none() {
            cli.overload = Some(2.0);
        }
        cli.scenario.golden_check = true;
    }
    if cli.chaos {
        // The CI preset: everything hostile at once, sized to finish fast.
        cli.server.fault_model = chaos_fault_model(cli.scenario.seed);
        if cli.scenario.chaos_panic_every == 0 {
            cli.scenario.chaos_panic_every = 7;
        }
        if cli.scenario.chaos_sleep_every == 0 {
            cli.scenario.chaos_sleep_every = 11;
            cli.scenario.chaos_sleep_ms =
                (3 * cli.scenario.deadline.as_millis() as u64).max(100);
        }
        if cli.overload.is_none() {
            cli.overload = Some(2.0);
        }
    }
    Ok(cli)
}

/// Injected memory + PE faults for chaos runs: ECC-correctable bit errors,
/// dropped responses with a tight retry budget (so some escalate to the
/// transient `MemoryFailure` the service retries), and one dead PE.
fn chaos_fault_model(seed: u64) -> FaultModel {
    FaultModel {
        seed,
        hbm_ber: 1e-7,
        drop_rate: 0.05,
        pe_kill_count: 1,
        pe_kill_cycle: 1_000,
        max_retries: 2,
        ..FaultModel::default()
    }
}

fn main() {
    let mut cli = match parse_args(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    // Overload converts to an open-loop rate the pool cannot absorb.
    if let Some(factor) = cli.overload {
        let rps = loadgen::overload_rate(&cli.scenario, cli.server.workers, factor);
        eprintln!("# calibrated open-loop rate: {rps:.1} rps ({factor}x capacity)");
        cli.scenario.arrivals = Arrivals::Rate { rps };
    }

    let classifier = match &cli.pareto {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {}: {e}", path.display());
                    std::process::exit(2);
                }
            };
            let json = match outerspace_json::parse(&text) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("error: {} is not valid JSON: {e}", path.display());
                    std::process::exit(2);
                }
            };
            match Classifier::from_pareto_json(&json, cli.server.sim_nnz_cap) {
                Ok(c) => {
                    eprintln!("# classifier tuned from {} ({} classes)", path.display(), c.tuned_classes());
                    c
                }
                Err(e) => {
                    eprintln!("error: bad pareto report {}: {e}", path.display());
                    std::process::exit(2);
                }
            }
        }
        None => Classifier::new(cli.server.sim_nnz_cap),
    };

    eprintln!(
        "# serving {} requests ({} distinct ops) on {} workers, queue cap {}, deadline {} ms",
        cli.scenario.requests,
        cli.scenario.pool,
        cli.server.workers,
        cli.server.queue_cap,
        cli.scenario.deadline.as_millis()
    );
    let server = Server::start_with_classifier(cli.server.clone(), classifier);
    let tally = loadgen::run(&server, &cli.scenario);
    // The breaker drill runs on the drained server, after the main load:
    // trip a kernel family with a corruption burst, then wait for the
    // half-open canary probes to prove it clean and close the breaker.
    let breaker_recovered = cli.chaos_sdc && loadgen::exercise_breaker_recovery(&server);
    let breaker = server.breaker_snapshot();
    let snapshot = server.shutdown();

    let mut report = loadgen::report_json(&cli.scenario, &tally, &snapshot);
    let sdc_containment_ok = tally.corrupted_deliveries == 0 && snapshot.delivery_accounted_ok();
    let detection_rate = snapshot.chaos_sdc_detection_rate();
    if let Json::Obj(fields) = &mut report {
        fields.push((
            "sdc".into(),
            Json::Obj(vec![
                ("detection_rate".into(), Json::Float(detection_rate)),
                ("sdc_containment_ok".into(), Json::Bool(sdc_containment_ok)),
                ("breaker_recovered".into(), Json::Bool(breaker_recovered)),
                ("breaker".into(), breaker.to_json()),
            ]),
        ));
    }
    if let Err(e) = dump::write_json_atomic(&cli.out, &report) {
        eprintln!("error: cannot write {}: {e}", cli.out.display());
        std::process::exit(1);
    }
    eprintln!("(report written to {})", cli.out.display());
    println!(
        "# {} submitted | {} ok ({} cached) | {} shed | {} timed out | {} failed | \
         {} retries | p50 {:.1} ms p99 {:.1} ms | {:.1} rps",
        snapshot.submitted,
        snapshot.completed_ok,
        snapshot.cache_hits,
        snapshot.rejected(),
        snapshot.timed_out,
        snapshot.failed,
        snapshot.retries,
        snapshot.p50_ms(),
        snapshot.p99_ms(),
        if tally.wall_s > 0.0 { tally.ok as f64 / tally.wall_s } else { 0.0 }
    );

    // --- Invariants: the chaos gate's teeth. ---
    let mut violations = Vec::new();
    if !snapshot.accounted_ok() {
        violations.push(format!(
            "server accounting broke: {} + {} + {} + {} != {}",
            snapshot.completed_ok,
            snapshot.failed,
            snapshot.rejected(),
            snapshot.timed_out,
            snapshot.submitted
        ));
    }
    if !tally.accounted_ok() {
        violations.push("client accounting broke: a ticket vanished".into());
    }
    if snapshot.deadline_violations > 0 {
        violations.push(format!(
            "{} payload(s) delivered past their deadline",
            snapshot.deadline_violations
        ));
    }
    if cli.scenario.chaos_panic_every > 0 && snapshot.failed == 0 {
        violations.push("panic injection was on but no request failed — hooks not exercised".into());
    }
    if cli.scenario.chaos_sleep_every > 0 && snapshot.timed_out == 0 {
        violations
            .push("stall injection was on but nothing timed out — watchdog not exercised".into());
    }
    if cli.chaos_sdc {
        if tally.corrupted_deliveries > 0 {
            violations.push(format!(
                "{} corrupted payload(s) escaped to clients",
                tally.corrupted_deliveries
            ));
        }
        if !snapshot.delivery_accounted_ok() {
            violations.push(format!(
                "delivery accounting broke: {} verified + {} unverified + {} cached != {} ok",
                snapshot.verified_ok,
                snapshot.unverified_pass,
                snapshot.cache_hits,
                snapshot.completed_ok
            ));
        }
        if snapshot.chaos_sdc_executed == 0 {
            violations.push(
                "SDC injection was on but no corruption drill executed — hooks not exercised"
                    .into(),
            );
        }
        if detection_rate < 0.99 {
            violations.push(format!(
                "SDC detection rate {:.4} below the 0.99 gate ({} detected / {} executed)",
                detection_rate, snapshot.chaos_sdc_detected, snapshot.chaos_sdc_executed
            ));
        }
        if breaker.counters.trips == 0 {
            violations.push("no circuit breaker ever tripped — breaker path not exercised".into());
        }
        if !breaker_recovered {
            violations.push(
                "breaker drill failed: tripped kernel was not restored by canary probes".into(),
            );
        }
        println!(
            "# sdc: {} detected / {} executed (rate {:.4}) | {} quarantine recoveries | \
             breaker trips {} closes {} | corrupted deliveries {}",
            snapshot.chaos_sdc_detected,
            snapshot.chaos_sdc_executed,
            detection_rate,
            snapshot.quarantined_recoveries,
            breaker.counters.trips,
            breaker.counters.closes,
            tally.corrupted_deliveries
        );
    }
    if violations.is_empty() {
        println!("# invariants: OK");
    } else {
        for v in &violations {
            eprintln!("INVARIANT VIOLATED: {v}");
        }
        std::process::exit(1);
    }
}
