//! Matrix-stats workload classifier: picks the kernel (and, for the
//! accelerator path, the hardware config) a request should run on.
//!
//! The class is read off [`outerspace_sparse::stats::Profile`] — row-length
//! Gini for skew, diagonal fraction for banded/stencil structure — and maps
//! to a routing table over the kernel names in [`crate::kernels`]. Per-class
//! accelerator configs are seeded from a DSE Pareto report's
//! `best_per_workload` table ([`Classifier::from_pareto_json`]): the winning
//! knob assignment for e.g. `rmat:*` workloads becomes the config the
//! `Skewed` class simulates with. A degradation request (`degraded = true`)
//! short-circuits the table to the cheapest known-good kernel.

use std::collections::HashMap;

use outerspace_json::Json;
use outerspace_sim::OuterSpaceConfig;
use outerspace_sparse::stats::{profile, Profile};

use crate::kernels::{CHEAPEST_SPGEMM, CHEAPEST_SPMV};
use crate::request::Op;

/// Coarse workload shape, as seen by the router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Too small for routing to matter — serial software wins outright.
    Tiny,
    /// Power-law row lengths (R-MAT / scale-free graphs).
    Skewed,
    /// Strong diagonal structure (banded / stencil operators).
    Regular,
    /// Flat row-length distribution.
    Uniform,
}

impl WorkloadClass {
    /// Stable lowercase name used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            WorkloadClass::Tiny => "tiny",
            WorkloadClass::Skewed => "skewed",
            WorkloadClass::Regular => "regular",
            WorkloadClass::Uniform => "uniform",
        }
    }
}

/// Classifies a matrix profile. Thresholds are deliberately coarse — the
/// router only needs the broad shape, and coarse bins keep the decision
/// stable under small perturbations.
pub fn classify(p: &Profile) -> WorkloadClass {
    if p.nrows <= 64 || p.nnz <= 256 {
        WorkloadClass::Tiny
    } else if p.row_gini >= 0.5 {
        WorkloadClass::Skewed
    } else if p.diagonal_fraction >= 0.7 {
        WorkloadClass::Regular
    } else {
        WorkloadClass::Uniform
    }
}

/// The classifier's verdict for one request.
#[derive(Debug, Clone)]
pub struct Route {
    /// Kernel to run (a name from [`crate::kernels`]).
    pub kernel: &'static str,
    /// The class the primary operand fell in.
    pub class: WorkloadClass,
    /// Accelerator config for the `sim`/`sim_spmv` kernels — the Pareto
    /// winner for this class when one was loaded, the paper default
    /// otherwise. Ignored by software kernels.
    pub sim_config: OuterSpaceConfig,
}

/// Routing table + per-class accelerator configs.
#[derive(Debug, Clone)]
pub struct Classifier {
    tuned: HashMap<WorkloadClass, OuterSpaceConfig>,
    /// Largest primary-operand nnz the cycle-accurate accelerator model is
    /// allowed to serve; bigger requests go to the software kernels.
    pub sim_nnz_cap: usize,
}

/// Maps a DSE workload-label kind prefix (`"rmat:512x4096"` → `"rmat"`) to
/// the class its Pareto-winning config should tune.
fn class_of_kind(kind: &str) -> Option<WorkloadClass> {
    match kind {
        "rmat" | "powerlaw" => Some(WorkloadClass::Skewed),
        "uniform" => Some(WorkloadClass::Uniform),
        "banded" | "stencil" => Some(WorkloadClass::Regular),
        _ => None,
    }
}

impl Classifier {
    /// An untuned classifier: every class simulates with the paper default.
    pub fn new(sim_nnz_cap: usize) -> Classifier {
        Classifier { tuned: HashMap::new(), sim_nnz_cap }
    }

    /// Seeds per-class accelerator configs from a `dse` Pareto report
    /// (`pareto.json` as emitted by `ParetoReport::to_json`): for each
    /// `best_per_workload` row, the winning config's knobs are re-applied to
    /// the paper default and installed for the class its workload kind maps
    /// to (first win per class; workloads of unknown kind are skipped).
    ///
    /// # Errors
    ///
    /// Malformed report shape, or a knob the registry rejects.
    pub fn from_pareto_json(report: &Json, sim_nnz_cap: usize) -> Result<Classifier, String> {
        let configs = report
            .get("configs")
            .and_then(Json::as_array)
            .ok_or("pareto report: missing 'configs' array")?;
        let mut knobs_by_id: HashMap<u64, Vec<(String, f64)>> = HashMap::new();
        for c in configs {
            let id = c
                .get("config_id")
                .and_then(Json::as_u64)
                .ok_or("pareto report: config without 'config_id'")?;
            let knob_obj = match c.get("knobs") {
                Some(Json::Obj(pairs)) => pairs,
                _ => return Err("pareto report: config without 'knobs' object".into()),
            };
            let mut knobs = Vec::with_capacity(knob_obj.len());
            for (k, v) in knob_obj {
                let v = v
                    .as_f64()
                    .ok_or_else(|| format!("pareto report: knob '{k}' is not numeric"))?;
                knobs.push((k.clone(), v));
            }
            knobs_by_id.insert(id, knobs);
        }

        let best = report
            .get("best_per_workload")
            .and_then(Json::as_array)
            .ok_or("pareto report: missing 'best_per_workload' array")?;
        let mut tuned: HashMap<WorkloadClass, OuterSpaceConfig> = HashMap::new();
        for row in best {
            let workload = row
                .get("workload")
                .and_then(Json::as_str)
                .ok_or("pareto report: best row without 'workload'")?;
            let kind = workload.split(':').next().unwrap_or(workload);
            let Some(class) = class_of_kind(kind) else { continue };
            if tuned.contains_key(&class) {
                continue;
            }
            let id = row
                .get("config_id")
                .and_then(Json::as_u64)
                .ok_or("pareto report: best row without 'config_id'")?;
            let knobs = knobs_by_id
                .get(&id)
                .ok_or_else(|| format!("pareto report: best row references unknown config {id}"))?;
            let mut cfg = OuterSpaceConfig::default();
            for (k, v) in knobs {
                outerspace_dse::knobs::apply(&mut cfg, k, *v)?;
            }
            tuned.insert(class, cfg);
        }
        Ok(Classifier { tuned, sim_nnz_cap })
    }

    /// Number of classes with a Pareto-tuned accelerator config.
    pub fn tuned_classes(&self) -> usize {
        self.tuned.len()
    }

    fn sim_config_for(&self, class: WorkloadClass) -> OuterSpaceConfig {
        self.tuned.get(&class).cloned().unwrap_or_default()
    }

    /// Routes `op`. With `degraded` set the request skips straight to the
    /// cheapest known-good kernel — the bottom rung of the degradation
    /// ladder — regardless of class.
    pub fn route(&self, op: &Op, degraded: bool) -> Route {
        let p = profile(op.primary());
        let class = classify(&p);
        let cheapest = match op {
            Op::Spgemm { .. } => CHEAPEST_SPGEMM,
            Op::Spmv { .. } => CHEAPEST_SPMV,
        };
        if degraded || class == WorkloadClass::Tiny {
            return Route { kernel: cheapest, class, sim_config: self.sim_config_for(class) };
        }
        // The cycle-accurate accelerator model only gets affordable sizes;
        // everything larger runs on the software kernel suited to the class.
        let kernel = match op {
            Op::Spgemm { .. } if p.nnz <= self.sim_nnz_cap => "sim",
            Op::Spmv { .. } if p.nnz <= self.sim_nnz_cap => "sim_spmv",
            Op::Spgemm { .. } => match class {
                // The work-stealing arena path: skew is exactly what range
                // stealing rebalances (hub columns make uneven k-spans).
                WorkloadClass::Skewed => "outer_ws_par",
                WorkloadClass::Regular => "mkl_gustavson_par",
                // Flat row lengths keep the cache-blocked merge's dense
                // accumulator hot — the fastest sequential outer path in the
                // kernels bench (see bench_results/BENCH_kernels.json).
                WorkloadClass::Uniform | WorkloadClass::Tiny => "outer_blocked",
            },
            Op::Spmv { .. } => match class {
                WorkloadClass::Regular => "mkl_spmv_densified",
                _ => "outer_spmv",
            },
        };
        Route { kernel, class, sim_config: self.sim_config_for(class) }
    }

    /// [`Classifier::route`], minus any kernel whose circuit breaker is
    /// open. `blocked` holds *base* kernel names (see
    /// [`crate::breaker::base_of`]). Falls from the preferred kernel to the
    /// class's software kernel to the cheapest known-good rung; the cheapest
    /// rung is never blocked — it is the quarantine re-execution tier, and
    /// its results are still verified before delivery.
    pub fn route_avoiding(&self, op: &Op, degraded: bool, blocked: &[String]) -> Route {
        let mut route = self.route(op, degraded);
        if blocked.is_empty() || !blocked.iter().any(|b| b == route.kernel) {
            return route;
        }
        // Preferred kernel is tripped: the class's software kernel.
        let software = match op {
            Op::Spgemm { .. } => match route.class {
                WorkloadClass::Skewed => "outer_ws_par",
                WorkloadClass::Regular => "mkl_gustavson_par",
                WorkloadClass::Uniform | WorkloadClass::Tiny => "outer_blocked",
            },
            Op::Spmv { .. } => match route.class {
                WorkloadClass::Regular => "mkl_spmv_densified",
                _ => "outer_spmv",
            },
        };
        route.kernel = if blocked.iter().any(|b| b == software) {
            match op {
                Op::Spgemm { .. } => CHEAPEST_SPGEMM,
                Op::Spmv { .. } => CHEAPEST_SPMV,
            }
        } else {
            software
        };
        route
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn op_for(m: outerspace_sparse::Csr) -> Op {
        let a = Arc::new(m);
        Op::Spgemm { a: a.clone(), b: a }
    }

    #[test]
    fn classes_match_generator_families() {
        let tiny = profile(&outerspace_gen::uniform::matrix(32, 32, 100, 1));
        assert_eq!(classify(&tiny), WorkloadClass::Tiny);
        let skew = profile(&outerspace_gen::rmat::graph500(512, 6000, 2));
        assert_eq!(classify(&skew), WorkloadClass::Skewed);
        let flat = profile(&outerspace_gen::uniform::matrix(512, 512, 6000, 3));
        assert_eq!(classify(&flat), WorkloadClass::Uniform);
        let diag = profile(&outerspace_sparse::Csr::identity(512));
        assert_eq!(classify(&diag), WorkloadClass::Regular);
    }

    #[test]
    fn tiny_and_degraded_go_to_the_cheapest_kernel() {
        let cl = Classifier::new(2_000);
        let tiny = op_for(outerspace_gen::uniform::matrix(32, 32, 100, 1));
        assert_eq!(cl.route(&tiny, false).kernel, CHEAPEST_SPGEMM);
        let big = op_for(outerspace_gen::rmat::graph500(512, 60_000, 2));
        assert_eq!(cl.route(&big, true).kernel, CHEAPEST_SPGEMM);
        assert_eq!(cl.route(&big, false).kernel, "outer_ws_par");
    }

    #[test]
    fn small_requests_ride_the_accelerator_model() {
        let cl = Classifier::new(10_000);
        let op = op_for(outerspace_gen::uniform::matrix(512, 512, 6_000, 3));
        let route = cl.route(&op, false);
        assert_eq!(route.kernel, "sim");
        assert_eq!(route.class, WorkloadClass::Uniform);
        let x = Arc::new(outerspace_gen::vector::sparse(512, 0.2, 4));
        let a = Arc::new(outerspace_gen::uniform::matrix(512, 512, 6_000, 3));
        assert_eq!(cl.route(&Op::Spmv { a, x }, false).kernel, "sim_spmv");
    }

    #[test]
    fn tripped_kernels_are_routed_around() {
        let cl = Classifier::new(10_000);
        let op = op_for(outerspace_gen::uniform::matrix(512, 512, 6_000, 3));
        assert_eq!(cl.route_avoiding(&op, false, &[]).kernel, "sim");
        let blocked = vec!["sim".to_string()];
        assert_eq!(cl.route_avoiding(&op, false, &blocked).kernel, "outer_blocked");
        let both = vec!["sim".to_string(), "outer_blocked".to_string()];
        assert_eq!(cl.route_avoiding(&op, false, &both).kernel, CHEAPEST_SPGEMM);
        // SpMV falls the same ladder.
        let a = Arc::new(outerspace_gen::uniform::matrix(512, 512, 6_000, 3));
        let x = Arc::new(outerspace_gen::vector::sparse(512, 0.2, 4));
        let mv = Op::Spmv { a, x };
        let spmv_blocked = vec!["sim_spmv".to_string()];
        assert_eq!(cl.route_avoiding(&mv, false, &spmv_blocked).kernel, "outer_spmv");
    }

    #[test]
    fn pareto_report_seeds_per_class_configs() {
        let report = outerspace_json::parse(
            r#"{
              "configs": [
                {"config_id": 0, "knobs": {"n_tiles": 32.0, "pes_per_tile": 8.0}},
                {"config_id": 1, "knobs": {"n_tiles": 4.0}}
              ],
              "best_per_workload": [
                {"workload": "rmat:512x4096", "config_id": 0, "cycles": 10, "power_w": 1.0},
                {"workload": "uniform:96x700", "config_id": 1, "cycles": 20, "power_w": 1.0},
                {"workload": "mystery:1x1", "config_id": 1, "cycles": 30, "power_w": 1.0}
              ]
            }"#,
        )
        .unwrap();
        let cl = Classifier::from_pareto_json(&report, 2_000).unwrap();
        assert_eq!(cl.tuned_classes(), 2);
        let skew = op_for(outerspace_gen::rmat::graph500(512, 4_000, 2));
        let route = cl.route(&skew, false);
        assert_eq!(route.class, WorkloadClass::Skewed);
        assert_eq!(route.sim_config.n_tiles, 32);
        assert_eq!(route.sim_config.pes_per_tile, 8);
        // Untuned classes fall back to the paper default.
        let diag = op_for(outerspace_sparse::Csr::identity(512));
        let d = cl.route(&diag, false);
        assert_eq!(d.sim_config, OuterSpaceConfig::default());
    }

    #[test]
    fn malformed_report_is_rejected() {
        let bad = outerspace_json::parse(r#"{"configs": 7}"#).unwrap();
        assert!(Classifier::from_pareto_json(&bad, 100).is_err());
        let dangling = outerspace_json::parse(
            r#"{"configs": [],
                "best_per_workload": [{"workload": "rmat:8x8", "config_id": 3,
                                       "cycles": 1, "power_w": 1.0}]}"#,
        )
        .unwrap();
        assert!(Classifier::from_pareto_json(&dangling, 100).is_err());
    }
}
