//! The bounded admission queue: load is shed at the door with a typed
//! rejection instead of queuing unboundedly.
//!
//! Semantics the service (and its tests) rely on:
//!
//! * [`AdmissionQueue::try_push`] never blocks: a full queue hands the item
//!   *back* inside the error, so the caller can build a typed
//!   [`Rejected`](crate::Rejected) without cloning the request.
//! * [`AdmissionQueue::pop`] blocks until an item arrives or shutdown is
//!   observed — but a **draining** shutdown keeps handing out queued items
//!   until the queue is empty, so nothing admitted is ever dropped on the
//!   floor.
//! * [`AdmissionQueue::abort`] is the non-draining variant: it returns the
//!   leftover items so the caller can terminally reject each one — again,
//!   zero silent drops.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Why an item could not be admitted. The item rides back in the error.
#[derive(Debug)]
pub enum AdmitError<T> {
    /// The queue is at capacity.
    Full(T),
    /// The queue has been shut down.
    ShuttingDown(T),
}

/// What a blocking [`AdmissionQueue::pop`] produced.
#[derive(Debug)]
pub enum Popped<T> {
    /// The next item, FIFO order.
    Item(T),
    /// Shutdown observed and the queue fully drained: the worker should exit.
    Shutdown,
}

struct State<T> {
    items: VecDeque<T>,
    shutdown: bool,
}

/// A bounded MPMC queue with draining shutdown.
pub struct AdmissionQueue<T> {
    state: Mutex<State<T>>,
    notify: Condvar,
    cap: usize,
}

impl<T> std::fmt::Debug for AdmissionQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionQueue")
            .field("cap", &self.cap)
            .field("len", &self.len())
            .finish()
    }
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `cap` items (clamped to at least 1).
    pub fn new(cap: usize) -> AdmissionQueue<T> {
        AdmissionQueue {
            state: Mutex::new(State { items: VecDeque::new(), shutdown: false }),
            notify: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admission capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Items currently queued (not counting in-flight work).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queue depth as a fraction of capacity — the pressure signal the
    /// degradation ladder reads.
    pub fn occupancy(&self) -> f64 {
        self.len() as f64 / self.cap as f64
    }

    /// Non-blocking admission. On success returns the depth *after* the
    /// push; on rejection the item comes back inside the error.
    pub fn try_push(&self, item: T) -> Result<usize, AdmitError<T>> {
        let mut st = self.lock();
        if st.shutdown {
            return Err(AdmitError::ShuttingDown(item));
        }
        if st.items.len() >= self.cap {
            return Err(AdmitError::Full(item));
        }
        st.items.push_back(item);
        let depth = st.items.len();
        drop(st);
        self.notify.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available or shutdown has drained the queue.
    pub fn pop(&self) -> Popped<T> {
        let mut st = self.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                return Popped::Item(item);
            }
            if st.shutdown {
                return Popped::Shutdown;
            }
            st = self.notify.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Draining shutdown: no further admissions, but queued items continue
    /// to be handed to [`AdmissionQueue::pop`] until the queue is empty.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.notify.notify_all();
    }

    /// Aborting shutdown: no further admissions, and the still-queued items
    /// are returned to the caller for terminal rejection.
    pub fn abort(&self) -> Vec<T> {
        let mut st = self.lock();
        st.shutdown = true;
        let leftovers = st.items.drain(..).collect();
        drop(st);
        self.notify.notify_all();
        leftovers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_when_full_and_returns_the_item() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(2);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        match q.try_push(3) {
            Err(AdmitError::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
        assert!((q.occupancy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pops_fifo_and_drains_on_shutdown() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(8);
        for i in 0..3 {
            q.try_push(i).unwrap();
        }
        q.shutdown();
        // Draining: the queued items still come out, in order, then Shutdown.
        for expect in 0..3 {
            match q.pop() {
                Popped::Item(i) => assert_eq!(i, expect),
                Popped::Shutdown => panic!("drained too early"),
            }
        }
        assert!(matches!(q.pop(), Popped::Shutdown));
        // And nothing new gets in.
        assert!(matches!(q.try_push(9), Err(AdmitError::ShuttingDown(9))));
    }

    #[test]
    fn abort_returns_leftovers_for_terminal_rejection() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(8);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        let leftovers = q.abort();
        assert_eq!(leftovers, vec![0, 1, 2, 3]);
        assert!(matches!(q.pop(), Popped::Shutdown));
    }

    #[test]
    fn blocked_workers_wake_on_shutdown() {
        let q: Arc<AdmissionQueue<u32>> = Arc::new(AdmissionQueue::new(4));
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || match q.pop() {
                    Popped::Item(_) => 1u32,
                    Popped::Shutdown => 0u32,
                })
            })
            .collect();
        q.try_push(7).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.shutdown();
        let got: u32 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        // Exactly one worker got the item; the rest observed shutdown.
        assert_eq!(got, 1);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(0);
        assert_eq!(q.cap(), 1);
        q.try_push(1).unwrap();
        assert!(matches!(q.try_push(2), Err(AdmitError::Full(2))));
    }
}
