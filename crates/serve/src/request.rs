//! Request/response vocabulary of the service: operations, typed rejection,
//! terminal errors, and the ticket a client waits on.
//!
//! Every submitted request reaches exactly one terminal outcome — a
//! [`Response`] carrying a result or a [`ServeError`], or a synchronous
//! [`Rejected`] at admission time — so the service's accounting identity
//! (`completed + rejected + timed_out == submitted`) is a structural
//! property, not a bookkeeping convention.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use outerspace_sparse::{Csr, SparseVector};

/// One sparse-kernel request. Operands are `Arc`-shared so repeated products
/// (the cache-hit traffic a service actually sees) cost no copies.
#[derive(Debug, Clone)]
pub enum Op {
    /// `C = A × B`.
    Spgemm {
        /// Left operand, CR.
        a: Arc<Csr>,
        /// Right operand, CR.
        b: Arc<Csr>,
    },
    /// `y = A × x` with sparse `x`.
    Spmv {
        /// The matrix, CR.
        a: Arc<Csr>,
        /// The sparse vector.
        x: Arc<SparseVector>,
    },
}

impl Op {
    /// Stable kind tag used in cache keys and per-impl metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            Op::Spgemm { .. } => "spgemm",
            Op::Spmv { .. } => "spmv",
        }
    }

    /// The matrix whose structure drives workload classification.
    pub fn primary(&self) -> &Csr {
        match self {
            Op::Spgemm { a, .. } => a,
            Op::Spmv { a, .. } => a,
        }
    }
}

/// A computed result.
#[derive(Debug, Clone, PartialEq)]
pub enum OpOutput {
    /// SpGEMM product.
    Matrix(Csr),
    /// SpMV product.
    Vector(SparseVector),
}

/// Why admission control turned a request away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded admission queue is at capacity.
    QueueFull,
    /// The estimated queueing delay already exceeds the request's deadline —
    /// accepting it would only burn a worker on a guaranteed timeout.
    Overloaded,
    /// The server is shutting down.
    ShuttingDown,
}

impl RejectReason {
    /// Stable lowercase name used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::Overloaded => "overloaded",
            RejectReason::ShuttingDown => "shutting_down",
        }
    }
}

/// Typed load-shed: the request was *not* admitted, and the client should
/// retry no sooner than `retry_after_hint` (derived from the current backlog
/// and the measured service time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected {
    /// Why the request was shed.
    pub reason: RejectReason,
    /// Client backoff hint.
    pub retry_after_hint: Duration,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rejected ({}); retry after {:.0} ms",
            self.reason.as_str(),
            self.retry_after_hint.as_secs_f64() * 1e3
        )
    }
}

impl std::error::Error for Rejected {}

/// Terminal failure of an *admitted* request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Shed after admission (abort-mode shutdown drained the queue).
    Rejected(Rejected),
    /// The deadline passed before a result could be delivered — whether the
    /// request was still queued, mid-compute, or its compute thread hung.
    /// The service never delivers a payload after its deadline.
    DeadlineExceeded {
        /// The request's deadline budget.
        deadline: Duration,
        /// How long the request had been in the system when it was cut off.
        waited: Duration,
    },
    /// The kernel rejected the operands or failed irrecoverably (after any
    /// retries and fallbacks).
    Failed {
        /// Human-readable cause.
        message: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected(r) => write!(f, "{r}"),
            ServeError::DeadlineExceeded { deadline, waited } => write!(
                f,
                "deadline exceeded: {:.0} ms budget, cut off after {:.0} ms",
                deadline.as_secs_f64() * 1e3,
                waited.as_secs_f64() * 1e3
            ),
            ServeError::Failed { message } => write!(f, "failed: {message}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// How a response was produced.
#[derive(Debug, Clone)]
pub struct ResponseMeta {
    /// Kernel that produced the result (`"cache"` for a cache hit).
    pub impl_name: String,
    /// True when the degradation ladder routed this request to the cheapest
    /// known-good kernel instead of the classifier's first choice.
    pub degraded: bool,
    /// True when the accelerator path failed permanently and a software
    /// kernel served the request instead.
    pub fallback: bool,
    /// True when the result came from the content-addressed cache.
    pub cache_hit: bool,
    /// True when the delivered payload passed result verification (Freivalds
    /// probes / residual recomputation) against its operands — directly, or
    /// at insert time for cache hits. False for sampled scrub skips and for
    /// error responses.
    pub verified: bool,
    /// Transient-fault retries spent on this request.
    pub retries: u32,
    /// Milliseconds spent queued before a worker picked the request up.
    pub queue_ms: f64,
    /// Milliseconds from submission to terminal outcome.
    pub total_ms: f64,
}

/// Terminal outcome delivered through a [`Ticket`].
#[derive(Debug, Clone)]
pub struct Response {
    /// The request id assigned at submission.
    pub id: u64,
    /// The result, or the terminal error.
    pub result: Result<Arc<OpOutput>, ServeError>,
    /// Provenance and timing.
    pub meta: ResponseMeta,
}

/// A claim on one admitted request's eventual [`Response`].
#[derive(Debug)]
pub struct Ticket {
    /// Request id (matches [`Response::id`]).
    pub id: u64,
    pub(crate) rx: mpsc::Receiver<Response>,
}

impl Ticket {
    /// Blocks until the terminal outcome arrives. The server guarantees a
    /// response for every admitted request; if its end of the channel is
    /// ever dropped without one (a bug), this degrades to a `Failed`
    /// response rather than a hang.
    pub fn wait(self) -> Response {
        let id = self.id;
        self.rx.recv().unwrap_or_else(|_| Response {
            id,
            result: Err(ServeError::Failed {
                message: "server dropped the request without a response".into(),
            }),
            meta: ResponseMeta {
                impl_name: "none".into(),
                degraded: false,
                fallback: false,
                cache_hit: false,
                verified: false,
                retries: 0,
                queue_ms: 0.0,
                total_ms: 0.0,
            },
        })
    }

    /// Waits up to `timeout`; `None` if no outcome arrived in time (the
    /// ticket remains valid).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Response> {
        self.rx.recv_timeout(timeout).ok()
    }
}
