//! Per-kernel circuit breakers driven by the verification tier.
//!
//! A kernel that keeps producing results that fail verification is worse
//! than a kernel that errors: every bad result burns a verification pass, a
//! quarantine, and a software re-execution. The breaker takes such a kernel
//! out of the routing table entirely:
//!
//! ```text
//! Closed ──(trip_threshold consecutive verification failures)──▶ Open
//! Open   ──(cooldown elapses; canary thread starts probing)────▶ HalfOpen
//! HalfOpen ──(canary_successes known-answer probes pass)───────▶ Closed
//! HalfOpen ──(a canary probe fails)─────────────────────────────▶ Open
//! ```
//!
//! Kernels are keyed by their *base* name (the part before `:`), so the
//! parameterized chaos hooks (`chaos_sdc_burst:3`) share one breaker per
//! family while remembering the full name for canary probes. While a
//! breaker is not closed, [`CircuitBreaker::check_route`] refuses the kernel
//! and the server reroutes to the software tier; the canary probes
//! (known-answer products run off the request path) are the only traffic
//! the kernel sees until it proves itself healthy again.

use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use outerspace_json::Json;

/// Breaker tuning.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Master switch. Off = verification failures still quarantine results
    /// but never remove a kernel from routing.
    pub enabled: bool,
    /// Consecutive verification failures that open the breaker.
    pub trip_threshold: u32,
    /// Time a breaker stays open before canary probing begins.
    pub cooldown: Duration,
    /// Consecutive canary passes that close a half-open breaker.
    pub canary_successes: u32,
    /// Spacing between canary probes of one half-open kernel.
    pub canary_interval: Duration,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            enabled: true,
            trip_threshold: 3,
            cooldown: Duration::from_millis(250),
            canary_successes: 2,
            canary_interval: Duration::from_millis(50),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Closed,
    Open { since: Instant },
    HalfOpen { passes: u32, last_probe: Instant },
}

#[derive(Debug)]
struct KernelEntry {
    state: State,
    consecutive_failures: u32,
    /// Full kernel name as last routed (`chaos_sdc_burst:3`), what the
    /// canary thread must actually execute to probe this family.
    full_name: String,
}

/// Monotonic counters, exposed for reports and the chaos gate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerCounters {
    /// Closed → Open transitions.
    pub trips: u64,
    /// HalfOpen → Open transitions (a canary probe failed).
    pub reopens: u64,
    /// HalfOpen → Closed transitions (recovery).
    pub closes: u64,
    /// Requests refused a non-closed kernel and rerouted.
    pub skips: u64,
    /// Canary probes executed.
    pub canary_probes: u64,
    /// Canary probes that passed.
    pub canary_passes: u64,
}

/// Point-in-time breaker view.
#[derive(Debug, Clone)]
pub struct BreakerSnapshot {
    /// The monotonic counters.
    pub counters: BreakerCounters,
    /// Base names currently not closed (open or half-open).
    pub tripped: Vec<String>,
}

impl BreakerSnapshot {
    /// Fixed-key-order JSON for reports.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("trips".into(), Json::UInt(self.counters.trips)),
            ("reopens".into(), Json::UInt(self.counters.reopens)),
            ("closes".into(), Json::UInt(self.counters.closes)),
            ("skips".into(), Json::UInt(self.counters.skips)),
            ("canary_probes".into(), Json::UInt(self.counters.canary_probes)),
            ("canary_passes".into(), Json::UInt(self.counters.canary_passes)),
            (
                "tripped".into(),
                Json::Arr(self.tripped.iter().map(|k| Json::Str(k.clone())).collect()),
            ),
        ])
    }
}

struct Inner {
    kernels: HashMap<String, KernelEntry>,
    counters: BreakerCounters,
}

/// The breaker bank: one state machine per kernel family.
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for CircuitBreaker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("CircuitBreaker")
            .field("cfg", &self.cfg)
            .field("counters", &snap.counters)
            .field("tripped", &snap.tripped)
            .finish()
    }
}

/// The breaker key for a kernel name: everything before the first `:`.
pub fn base_of(kernel: &str) -> &str {
    kernel.split(':').next().unwrap_or(kernel)
}

impl CircuitBreaker {
    /// A bank with every kernel implicitly closed.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            inner: Mutex::new(Inner { kernels: HashMap::new(), counters: BreakerCounters::default() }),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BreakerConfig {
        &self.cfg
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// May `kernel` serve a request right now? `false` counts a skip: the
    /// caller must reroute. Always `true` when the breaker is disabled.
    pub fn check_route(&self, kernel: &str) -> bool {
        if !self.cfg.enabled {
            return true;
        }
        let mut inner = self.lock();
        match inner.kernels.get(base_of(kernel)) {
            Some(e) if e.state != State::Closed => {
                inner.counters.skips += 1;
                false
            }
            _ => true,
        }
    }

    /// A verified-ok result from `kernel`: clears the consecutive-failure
    /// streak (only meaningful while closed; canary passes drive recovery).
    pub fn on_verified_ok(&self, kernel: &str) {
        let mut inner = self.lock();
        if let Some(e) = inner.kernels.get_mut(base_of(kernel)) {
            if e.state == State::Closed {
                e.consecutive_failures = 0;
            }
        }
    }

    /// A verification failure from `kernel`. Returns `true` when this
    /// failure tripped the breaker open.
    pub fn on_verification_failure(&self, kernel: &str) -> bool {
        if !self.cfg.enabled {
            return false;
        }
        let threshold = self.cfg.trip_threshold.max(1);
        let mut inner = self.lock();
        let e = inner
            .kernels
            .entry(base_of(kernel).to_string())
            .or_insert_with(|| KernelEntry {
                state: State::Closed,
                consecutive_failures: 0,
                full_name: kernel.to_string(),
            });
        e.full_name = kernel.to_string();
        if e.state != State::Closed {
            return false;
        }
        e.consecutive_failures += 1;
        if e.consecutive_failures >= threshold {
            e.state = State::Open { since: Instant::now() };
            e.consecutive_failures = 0;
            inner.counters.trips += 1;
            return true;
        }
        false
    }

    /// Full kernel names due for a canary probe: open breakers past their
    /// cooldown (transitioned to half-open here) and half-open breakers past
    /// their probe interval. Each returned name is charged as one probe.
    pub fn due_probes(&self) -> Vec<String> {
        if !self.cfg.enabled {
            return Vec::new();
        }
        let now = Instant::now();
        let mut inner = self.lock();
        let mut due = Vec::new();
        for e in inner.kernels.values_mut() {
            let ready = match e.state {
                State::Open { since } => now.duration_since(since) >= self.cfg.cooldown,
                State::HalfOpen { last_probe, .. } => {
                    now.duration_since(last_probe) >= self.cfg.canary_interval
                }
                State::Closed => false,
            };
            if ready {
                let passes = match e.state {
                    State::HalfOpen { passes, .. } => passes,
                    _ => 0,
                };
                e.state = State::HalfOpen { passes, last_probe: now };
                due.push(e.full_name.clone());
            }
        }
        inner.counters.canary_probes += due.len() as u64;
        due
    }

    /// A canary probe of `kernel` returned the known answer. Returns `true`
    /// when this pass closed the breaker.
    pub fn on_canary_pass(&self, kernel: &str) -> bool {
        let needed = self.cfg.canary_successes.max(1);
        let mut inner = self.lock();
        inner.counters.canary_passes += 1;
        let Some(e) = inner.kernels.get_mut(base_of(kernel)) else { return false };
        if let State::HalfOpen { passes, last_probe } = e.state {
            let passes = passes + 1;
            if passes >= needed {
                e.state = State::Closed;
                e.consecutive_failures = 0;
                inner.counters.closes += 1;
                return true;
            }
            e.state = State::HalfOpen { passes, last_probe };
        }
        false
    }

    /// A canary probe of `kernel` failed: back to fully open, cooldown
    /// restarts.
    pub fn on_canary_fail(&self, kernel: &str) {
        let mut inner = self.lock();
        if let Some(e) = inner.kernels.get_mut(base_of(kernel)) {
            if matches!(e.state, State::HalfOpen { .. }) {
                e.state = State::Open { since: Instant::now() };
                inner.counters.reopens += 1;
            }
        }
    }

    /// `"closed"`, `"open"`, or `"half_open"` for a base kernel name
    /// (kernels never seen are closed).
    pub fn state_of(&self, base: &str) -> &'static str {
        match self.lock().kernels.get(base).map(|e| e.state) {
            None | Some(State::Closed) => "closed",
            Some(State::Open { .. }) => "open",
            Some(State::HalfOpen { .. }) => "half_open",
        }
    }

    /// Counters plus the currently tripped kernel families.
    pub fn snapshot(&self) -> BreakerSnapshot {
        let inner = self.lock();
        let mut tripped: Vec<String> = inner
            .kernels
            .iter()
            .filter(|(_, e)| e.state != State::Closed)
            .map(|(k, _)| k.clone())
            .collect();
        tripped.sort();
        BreakerSnapshot { counters: inner.counters, tripped }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> BreakerConfig {
        BreakerConfig {
            trip_threshold: 3,
            cooldown: Duration::from_millis(1),
            canary_successes: 2,
            canary_interval: Duration::from_millis(1),
            ..BreakerConfig::default()
        }
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let br = CircuitBreaker::new(fast_cfg());
        assert!(br.check_route("sim"));
        assert!(!br.on_verification_failure("sim"));
        assert!(!br.on_verification_failure("sim"));
        // A verified-ok result resets the streak.
        br.on_verified_ok("sim");
        assert!(!br.on_verification_failure("sim"));
        assert!(!br.on_verification_failure("sim"));
        assert!(br.on_verification_failure("sim"), "third consecutive failure must trip");
        assert_eq!(br.state_of("sim"), "open");
        assert!(!br.check_route("sim"), "open kernel must be refused");
        let snap = br.snapshot();
        assert_eq!(snap.counters.trips, 1);
        assert_eq!(snap.counters.skips, 1);
        assert_eq!(snap.tripped, vec!["sim".to_string()]);
    }

    #[test]
    fn half_open_recovery_needs_consecutive_canary_passes() {
        let br = CircuitBreaker::new(fast_cfg());
        for _ in 0..3 {
            br.on_verification_failure("chaos_sdc_burst:3");
        }
        assert_eq!(br.state_of("chaos_sdc_burst"), "open");
        std::thread::sleep(Duration::from_millis(2));
        let due = br.due_probes();
        assert_eq!(due, vec!["chaos_sdc_burst:3".to_string()], "probe uses the full name");
        assert_eq!(br.state_of("chaos_sdc_burst"), "half_open");
        assert!(!br.on_canary_pass("chaos_sdc_burst:3"));
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(br.due_probes().len(), 1);
        assert!(br.on_canary_pass("chaos_sdc_burst:3"), "second pass closes");
        assert_eq!(br.state_of("chaos_sdc_burst"), "closed");
        assert!(br.check_route("chaos_sdc_burst:3"));
        assert_eq!(br.snapshot().counters.closes, 1);
    }

    #[test]
    fn canary_failure_reopens_and_restarts_cooldown() {
        let br = CircuitBreaker::new(fast_cfg());
        for _ in 0..3 {
            br.on_verification_failure("sim");
        }
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(br.due_probes().len(), 1);
        br.on_canary_fail("sim");
        assert_eq!(br.state_of("sim"), "open");
        assert_eq!(br.snapshot().counters.reopens, 1);
        // Immediately after reopening, the cooldown has not elapsed.
        assert!(br.due_probes().is_empty());
    }

    #[test]
    fn failures_while_open_do_not_restack() {
        let br = CircuitBreaker::new(fast_cfg());
        for _ in 0..3 {
            br.on_verification_failure("sim");
        }
        assert!(!br.on_verification_failure("sim"), "already open: no second trip");
        assert_eq!(br.snapshot().counters.trips, 1);
    }

    #[test]
    fn disabled_breaker_never_blocks() {
        let br = CircuitBreaker::new(BreakerConfig { enabled: false, ..fast_cfg() });
        for _ in 0..10 {
            br.on_verification_failure("sim");
        }
        assert!(br.check_route("sim"));
        assert_eq!(br.snapshot().counters.trips, 0);
        assert!(br.due_probes().is_empty());
    }

    #[test]
    fn base_name_splits_parameterized_kernels() {
        assert_eq!(base_of("chaos_sdc_burst:3"), "chaos_sdc_burst");
        assert_eq!(base_of("sim"), "sim");
        assert_eq!(base_of("chaos_sleep:500"), "chaos_sleep");
    }
}
