//! `ospace serve`: a fault-tolerant SpGEMM/SpMV request service.
//!
//! This crate turns the repository's kernels into a long-running service
//! with the robustness furniture a real deployment needs, built entirely on
//! `std`:
//!
//! * **Bounded admission** ([`queue`]): a full queue sheds load with a typed
//!   [`Rejected`] carrying a `retry_after_hint`, instead of queueing
//!   unboundedly.
//! * **Per-request deadlines** ([`server`]): a watchdogged compute thread
//!   (`spawn` + `recv_timeout`, the same pattern as the bench runner)
//!   converts hangs and overruns into [`ServeError::DeadlineExceeded`]
//!   without wedging the worker pool, and a late success is never delivered.
//! * **Retry with capped backoff**: transient injected faults from
//!   `outerspace_sim::faults` retry under deterministic per-(request,
//!   attempt) fault seeds; permanent accelerator failure falls back to
//!   software.
//! * **Graceful degradation** ([`classify`]): a matrix-stats workload
//!   classifier routes each request to a kernel from the differential-tested
//!   registry — and to the cheapest known-good one when queue occupancy
//!   crosses the degradation watermark. Per-class accelerator configs can be
//!   seeded from a DSE Pareto report.
//! * **Result verification** ([`verifier`]): accelerator-class results are
//!   checked against their own operands (Freivalds probes for SpGEMM, a
//!   residual recomputation for SpMV) before delivery; failures are
//!   quarantined and re-executed on the software tier, never delivered.
//! * **Kernel circuit breakers** ([`breaker`]): kernels that repeatedly fail
//!   verification are removed from routing, then restored only after
//!   half-open known-answer canary probes pass.
//! * **Content-addressed caching** ([`rcache`]): identical products are
//!   served from an `Arc`-shared bounded cache; inserts are
//!   verify-before-insert (the [`Attested`] witness), so a corrupted result
//!   can never poison the cache.
//! * **Airtight accounting** ([`metrics`]): `completed + rejected +
//!   timed_out == submitted` is checked after every run — chaos included.
//!
//! The [`loadgen`] module drives open-loop traffic with injected panics,
//! stalls, and overload; the `ospace-serve` binary wraps it into the chaos
//! harness the CI gate runs.
//!
//! ```
//! use outerspace_serve::{Op, Server, ServerConfig};
//! use std::sync::Arc;
//!
//! let server = Server::start(ServerConfig::default());
//! let a = Arc::new(outerspace_gen::uniform::matrix(64, 64, 400, 7));
//! let ticket = server.submit(Op::Spgemm { a: a.clone(), b: a }).unwrap();
//! let response = ticket.wait();
//! assert!(response.result.is_ok());
//! assert!(server.shutdown().accounted_ok());
//! ```

#![warn(missing_docs)]

pub mod breaker;
pub mod classify;
pub mod kernels;
pub mod loadgen;
pub mod metrics;
pub mod queue;
pub mod rcache;
pub mod request;
pub mod server;
pub mod verifier;

pub use breaker::{BreakerConfig, BreakerSnapshot, CircuitBreaker};
pub use classify::{classify, Classifier, Route, WorkloadClass};
pub use metrics::{Metrics, Snapshot};
pub use queue::{AdmissionQueue, AdmitError, Popped};
pub use rcache::{op_material, ResultCache};
pub use request::{
    Op, OpOutput, Rejected, RejectReason, Response, ResponseMeta, ServeError, Ticket,
};
pub use server::{Server, ServerConfig, SubmitOpts};
pub use verifier::{Attested, VerifyPolicy};
