//! Result verification tier: Freivalds probes for SpGEMM, residual
//! recomputation for SpMV, and the [`Attested`] token that makes
//! verify-before-insert a type-level property of the result cache.
//!
//! Policy ([`VerifyPolicy`]): results produced by accelerator-class kernels
//! (the `sim`/`sim_spmv` hardware models plus the `chaos_sdc*` drill hooks —
//! the only tiers the [`FaultModel`](outerspace_sim::FaultModel)'s silent
//! ECC-escape knob can corrupt) are **always** verified before delivery;
//! software kernels are scrubbed on a sampling schedule (`scrub_every`).
//! A result that fails verification is quarantined by the server: never
//! delivered, never cached, re-executed on the software fallback.
//!
//! The check itself lives in `crates/verify`; this module binds it to the
//! service vocabulary ([`Op`]/[`OpOutput`]) and to per-request probe seeds,
//! so replaying a request replays its exact probe vectors.

use outerspace_sim::faults::split_seed;
use outerspace_verify::{freivalds_spgemm, spmv_residual, VerifyConfig, VerifyError, DEFAULT_ROUNDS};

use crate::kernels;
use crate::request::{Op, OpOutput};

/// When and how hard the service verifies results.
#[derive(Debug, Clone)]
pub struct VerifyPolicy {
    /// Master switch. Off = the pre-verification service (no probes, every
    /// delivery counts as unverified).
    pub enabled: bool,
    /// Freivalds rounds per SpGEMM check (worst-case false-negative `2⁻ʳ`).
    pub rounds: u32,
    /// Base probe seed; each request derives `split_seed(seed, request_id)`.
    pub seed: u64,
    /// Scrub sampling for software-kernel results: verify when
    /// `request_id % scrub_every == 0` (0 disables sampling entirely;
    /// accelerator-class results are always verified regardless).
    pub scrub_every: u64,
}

impl Default for VerifyPolicy {
    fn default() -> VerifyPolicy {
        VerifyPolicy {
            enabled: true,
            rounds: DEFAULT_ROUNDS,
            seed: 0xa77e_57ed,
            scrub_every: 1,
        }
    }
}

/// Proof that an [`OpOutput`] passed verification against its operands.
///
/// The only constructor is [`check`]; [`crate::rcache::ResultCache::insert`]
/// demands one, so an unverified result cannot be cached — cache poisoning
/// by a silently corrupted kernel is ruled out at the type level.
#[derive(Debug)]
pub struct Attested(());

/// True for kernels whose results silent hardware faults can reach: the
/// accelerator models (the tier the [`outerspace_sim::FaultModel`] injects
/// into) and the `chaos_sdc*` corruption drills.
pub fn is_accelerator_class(kernel: &str) -> bool {
    kernels::is_sim_kernel(kernel) || kernel.starts_with("chaos_sdc")
}

/// Does `policy` require verifying this request's result?
pub fn must_verify(policy: &VerifyPolicy, kernel: &str, request_id: u64) -> bool {
    policy.enabled
        && (is_accelerator_class(kernel)
            || (policy.scrub_every > 0 && request_id % policy.scrub_every == 0))
}

/// The per-request probe configuration: deterministic in `(policy, id)`.
pub fn config_for(policy: &VerifyPolicy, request_id: u64) -> VerifyConfig {
    VerifyConfig {
        rounds: policy.rounds,
        seed: split_seed(policy.seed, request_id),
        ..VerifyConfig::default()
    }
}

/// Verifies `out` as the product of `op`'s operands. `Ok` returns the
/// [`Attested`] token that unlocks cache insertion.
///
/// # Errors
///
/// The [`VerifyError`] describing the first failed probe (or shape
/// violation) when the result is not the claimed product.
pub fn check(op: &Op, out: &OpOutput, cfg: &VerifyConfig) -> Result<Attested, VerifyError> {
    match (op, out) {
        (Op::Spgemm { a, b }, OpOutput::Matrix(c)) => freivalds_spgemm(a, b, c, cfg)?,
        (Op::Spmv { a, x }, OpOutput::Vector(y)) => spmv_residual(a, x, y, cfg)?,
        // A kind mismatch can only come from a server bug; surface it as the
        // strongest shape violation rather than panicking in a worker.
        (Op::Spgemm { a, b }, OpOutput::Vector(y)) => {
            return Err(VerifyError::Shape {
                expected: (a.nrows(), b.ncols()),
                got: (y.len, 1),
            })
        }
        (Op::Spmv { a, .. }, OpOutput::Matrix(c)) => {
            return Err(VerifyError::Shape {
                expected: (a.nrows(), 1),
                got: (c.nrows(), c.ncols()),
            })
        }
    }
    Ok(Attested(()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_gen::{uniform, vector};
    use outerspace_sparse::ops;
    use std::sync::Arc;

    fn spgemm_case(seed: u64) -> (Op, OpOutput) {
        let a = Arc::new(uniform::matrix(48, 48, 300, seed));
        let b = Arc::new(uniform::matrix(48, 48, 300, seed ^ 0x9e37));
        let c = ops::spgemm_reference(&a, &b).unwrap();
        (Op::Spgemm { a, b }, OpOutput::Matrix(c))
    }

    #[test]
    fn clean_results_attest_and_corrupted_ones_do_not() {
        let cfg = config_for(&VerifyPolicy::default(), 3);
        let (op, out) = spgemm_case(1);
        assert!(check(&op, &out, &cfg).is_ok());
        let OpOutput::Matrix(mut c) = out else { unreachable!() };
        c.values_mut()[0] += 1.0;
        assert!(check(&op, &OpOutput::Matrix(c), &cfg).is_err());
    }

    #[test]
    fn spmv_results_are_checked_by_residual() {
        let a = Arc::new(uniform::matrix(32, 32, 160, 5));
        let x = Arc::new(vector::sparse(32, 0.4, 6));
        let yd = ops::spmv_reference(&a, &x.to_dense()).unwrap();
        let y = outerspace_sparse::SparseVector::from_dense(&yd);
        let op = Op::Spmv { a, x };
        let cfg = config_for(&VerifyPolicy::default(), 9);
        assert!(check(&op, &OpOutput::Vector(y.clone()), &cfg).is_ok());
        let mut bad = y;
        let last = bad.values.len() - 1;
        bad.values[last] *= -2.0;
        assert!(check(&op, &OpOutput::Vector(bad), &cfg).is_err());
    }

    #[test]
    fn kind_mismatch_is_a_shape_error_not_a_panic() {
        let (op, _) = spgemm_case(2);
        let y = outerspace_sparse::SparseVector::from_dense(&[1.0; 48]);
        let cfg = config_for(&VerifyPolicy::default(), 1);
        assert!(matches!(
            check(&op, &OpOutput::Vector(y), &cfg),
            Err(VerifyError::Shape { .. })
        ));
    }

    #[test]
    fn policy_always_verifies_accelerator_class_and_samples_the_rest() {
        let p = VerifyPolicy { scrub_every: 4, ..VerifyPolicy::default() };
        for id in 0..16 {
            assert!(must_verify(&p, "sim", id));
            assert!(must_verify(&p, "sim_spmv", id));
            assert!(must_verify(&p, "chaos_sdc", id));
            assert!(must_verify(&p, "chaos_sdc_burst:3", id));
            assert_eq!(must_verify(&p, "mkl_gustavson", id), id % 4 == 0);
        }
        let off = VerifyPolicy { enabled: false, ..VerifyPolicy::default() };
        assert!(!must_verify(&off, "sim", 0));
        let no_scrub = VerifyPolicy { scrub_every: 0, ..VerifyPolicy::default() };
        assert!(!must_verify(&no_scrub, "outer_par", 0));
        assert!(must_verify(&no_scrub, "sim", 1));
    }

    #[test]
    fn probe_seeds_are_deterministic_per_request() {
        let p = VerifyPolicy::default();
        assert_eq!(config_for(&p, 7), config_for(&p, 7));
        assert_ne!(config_for(&p, 7).seed, config_for(&p, 8).seed);
    }
}
