//! # OuterSPACE reproduction
//!
//! A from-scratch Rust reproduction of *OuterSPACE: An Outer Product based
//! Sparse Matrix Multiplication Accelerator* (Pal et al., HPCA 2018): the
//! outer-product SpGEMM/SpMV algorithms, the CPU/GPU baselines the paper
//! compares against, a transaction-level timing simulator of the
//! accelerator, and its power/area model.
//!
//! This crate is the umbrella: it re-exports every sub-crate under a short
//! name and adds the high-level linear-algebra conveniences the paper's
//! motivation section appeals to (chained multiplication, matrix powers,
//! §4.3).
//!
//! ## Quick start
//!
//! ```
//! use outerspace::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Generate a power-law graph and square its adjacency matrix, both in
//! // portable software and on the simulated accelerator.
//! let a = outerspace::gen::rmat::graph500(512, 4_000, 42);
//! let c_soft = outerspace::outer::spgemm(&a, &a)?;
//!
//! let sim = Simulator::new(OuterSpaceConfig::default())?;
//! let (c_hw, report) = sim.spgemm(&a, &a)?;
//! assert!(c_soft.approx_eq(&c_hw, 1e-9));
//! println!("simulated time: {:.3} ms", report.seconds() * 1e3);
//! # Ok(())
//! # }
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`sparse`] | CR/CC/COO/dense formats, Matrix Market I/O, reference kernels |
//! | [`gen`] | Uniform, R-MAT, stencil, power-law generators; Table 4 stand-ins |
//! | [`outer`] | The outer-product multiply/merge algorithm (§4) |
//! | [`baselines`] | MKL / cuSPARSE / CUSP analogs |
//! | [`sim`] | The accelerator timing simulator (§5–§6) + CPU/GPU models |
//! | [`energy`] | Power & area model (Table 6) |
//! | [`dse`] | Design-space exploration: sweeps, memo cache, Pareto frontier |
//! | [`serve`] | Fault-tolerant request service: admission control, deadlines, degradation |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub use outerspace_baselines as baselines;
pub use outerspace_dse as dse;
pub use outerspace_energy as energy;
pub use outerspace_gen as gen;
pub use outerspace_json as json;
pub use outerspace_outer as outer;
pub use outerspace_serve as serve;
pub use outerspace_sim as sim;
pub use outerspace_sparse as sparse;

mod linalg;

pub use linalg::{chain_multiply, matrix_power};

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use crate::energy::AreaPowerModel;
    pub use crate::gen::suite::TABLE4;
    pub use crate::outer::{spgemm, spgemm_parallel, spmv};
    pub use crate::sim::{ConfigError, FaultModel, OuterSpaceConfig, SimError, SimReport, Simulator};
    pub use crate::sparse::{Coo, Csc, Csr, Dense, SparseError, SparseVector};
    pub use crate::{chain_multiply, matrix_power};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_workflow() {
        let a = Csr::identity(8);
        let c = crate::outer::spgemm(&a, &a).unwrap();
        assert_eq!(c.nnz(), 8);
        let sim = Simulator::new(OuterSpaceConfig::default()).unwrap();
        let (_, rep) = sim.spgemm(&a, &a).unwrap();
        let model = AreaPowerModel::tsmc32nm();
        assert!(model.gflops_per_watt(sim.config(), &rep) >= 0.0);
        assert_eq!(TABLE4.len(), 20);
    }
}
