//! `ospace` — command-line front end for the OuterSPACE reproduction.
//!
//! ```text
//! ospace info      <matrix>                      structural profile
//! ospace spgemm    <A> [B] [--algo NAME] [--out C.mtx]
//! ospace simulate  <A> [B]                       accelerator timing report
//! ospace spmv      <A> [--density R]             SpMV on the accelerator
//! ospace generate  <kind> <n> <nnz> --out F.mtx  uniform|rmat|powerlaw|road
//! ospace suite                                   list the Table 4 matrices
//! ```
//!
//! `simulate` and `spmv` accept fault-injection knobs (all default off):
//! `--fault-seed N` (RNG seed), `--hbm-ber R` (per-bit HBM error rate),
//! `--drop-rate R` (per-read response-drop probability), `--ber-silent R`
//! (per-bit ECC-escape rate: corrupts result values, raises no error), and
//! `--pe-kill N[@CYCLE]` (hard-fail N PEs at CYCLE, default cycle 0).
//!
//! Matrix files: `.mtx` (Matrix Market) or anything else is parsed as a
//! SNAP-style edge list (`src dst` per line, `#` comments).

use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use outerspace::prelude::*;
use outerspace::sparse::{io, stats};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("info") => cmd_info(&args[1..]),
        Some("spgemm") => cmd_spgemm(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("spmv") => cmd_spmv(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("suite") => cmd_suite(),
        _ => {
            eprintln!(
                "usage: ospace <info|spgemm|simulate|spmv|generate|suite> [args]\n\
                 see the module docs (`cargo doc`) or README for details"
            );
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Loads `.mtx` as Matrix Market, anything else as a SNAP edge list.
fn load(path: &str) -> Result<Csr, String> {
    let p = Path::new(path);
    let file = std::fs::File::open(p).map_err(|e| format!("{path}: {e}"))?;
    if p.extension().and_then(|e| e.to_str()) == Some("mtx") {
        Ok(io::read_coo(file).map_err(|e| format!("{path}: {e}"))?.to_csr())
    } else {
        Ok(io::read_edge_list(file, false).map_err(|e| format!("{path}: {e}"))?.to_csr())
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn positional(args: &[String]) -> Vec<&str> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = true; // all our flags take one value
            continue;
        }
        out.push(a.as_str());
    }
    out
}

/// Parses the fault-injection flags into a [`FaultModel`] (all off when no
/// flag is given, which keeps the simulation cycle-identical to baseline).
fn fault_model(args: &[String]) -> Result<FaultModel, String> {
    let mut m = FaultModel::default();
    if let Some(s) = flag_value(args, "--fault-seed") {
        m.seed = s.parse().map_err(|_| "--fault-seed needs an integer")?;
    }
    if let Some(s) = flag_value(args, "--hbm-ber") {
        m.hbm_ber = s.parse().map_err(|_| "--hbm-ber needs a number")?;
    }
    if let Some(s) = flag_value(args, "--drop-rate") {
        m.drop_rate = s.parse().map_err(|_| "--drop-rate needs a number")?;
    }
    if let Some(s) = flag_value(args, "--ber-silent") {
        m.ber_silent = s.parse().map_err(|_| "--ber-silent needs a number")?;
    }
    if let Some(s) = flag_value(args, "--pe-kill") {
        let (count, cycle) = match s.split_once('@') {
            Some((c, at)) => (c, at.parse().map_err(|_| "--pe-kill cycle must be an integer")?),
            None => (s, 0),
        };
        m.pe_kill_count = count.parse().map_err(|_| "--pe-kill needs N or N@CYCLE")?;
        m.pe_kill_cycle = cycle;
    }
    Ok(m)
}

/// Prints the fault/recovery counters of a report when fault injection ran.
fn print_fault_summary(rep: &SimReport) {
    if !rep.config.faults.is_active() {
        return;
    }
    let phases = [("convert", rep.convert.as_ref()), ("multiply", Some(&rep.multiply)), ("merge", Some(&rep.merge))];
    println!("fault injection (seed {}):", rep.config.faults.seed);
    for (name, p) in phases.into_iter().filter_map(|(n, p)| p.map(|p| (n, p))) {
        println!(
            "  {name:<8}: {} ECC retries, {} dropped responses, {} penalty cycles, {} PEs killed, {} work items requeued",
            p.ecc_retries, p.dropped_responses, p.fault_penalty_cycles, p.killed_pes, p.requeued_work_items
        );
    }
    let silent = rep.silent_corruptions();
    if silent > 0 {
        println!(
            "  WARNING: {silent} silent (ECC-escaped) corruption(s) — result values are \
             unreliable; timing is unaffected"
        );
    }
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let path = pos.first().ok_or("info needs a matrix file")?;
    let m = load(path)?;
    let p = stats::profile(&m);
    println!("{path}: {} x {}, {} non-zeros", p.nrows, p.ncols, p.nnz);
    println!("  density            {:.6e}", p.density);
    println!("  nnz/row            mean {:.2}, max {}, std {:.2}", p.nnz_per_row_mean, p.nnz_per_row_max, p.nnz_per_row_std);
    println!("  row-length gini    {:.3} (0 = uniform, 1 = hub-dominated)", p.row_gini);
    println!("  diagonal fraction  {:.3}", p.diagonal_fraction);
    println!("  empty rows         {:.1} %", p.empty_row_fraction * 100.0);
    Ok(())
}

fn cmd_spgemm(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let a = load(pos.first().ok_or("spgemm needs at least one matrix")?)?;
    let b = match pos.get(1) {
        Some(p) => load(p)?,
        None => a.clone(),
    };
    let algo = flag_value(args, "--algo").unwrap_or("outer");
    let t0 = Instant::now();
    let c = match algo {
        "outer" => outerspace::outer::spgemm_parallel(&a, &b, 4).map_err(|e| e.to_string())?.0,
        "gustavson" => outerspace::baselines::gustavson::spgemm_parallel(&a, &b, 4)
            .map_err(|e| e.to_string())?
            .0,
        "hash" => outerspace::baselines::hash::spgemm(&a, &b).map_err(|e| e.to_string())?.0,
        "esc" => outerspace::baselines::esc::spgemm(&a, &b).map_err(|e| e.to_string())?.0,
        other => return Err(format!("unknown --algo '{other}' (outer|gustavson|hash|esc)")),
    };
    let dt = t0.elapsed();
    println!("C = A x B: {} x {}, {} non-zeros ({algo}, {dt:?})", c.nrows(), c.ncols(), c.nnz());
    if let Some(out) = flag_value(args, "--out") {
        let f = std::fs::File::create(out).map_err(|e| format!("{out}: {e}"))?;
        io::write_csr(f, &c).map_err(|e| e.to_string())?;
        println!("wrote {out}");
    }
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let a = load(pos.first().ok_or("simulate needs at least one matrix")?)?;
    let b = match pos.get(1) {
        Some(p) => load(p)?,
        None => a.clone(),
    };
    let cfg = OuterSpaceConfig { faults: fault_model(args)?, ..Default::default() };
    let sim = Simulator::new(cfg).map_err(|e| e.to_string())?;
    let (c, rep) = sim.spgemm(&a, &b).map_err(|e| e.to_string())?;
    println!("result: {} non-zeros", c.nnz());
    println!(
        "simulated OuterSPACE time: {:.6} s ({:.2} GFLOPS)",
        rep.seconds(),
        rep.gflops()
    );
    if let Some(conv) = rep.convert {
        println!(
            "  convert : {:>12} cycles",
            conv.cycles
        );
    }
    for (name, p) in [("multiply", &rep.multiply), ("merge", &rep.merge)] {
        println!(
            "  {name:<8}: {:>12} cycles, BW {:>5.1} %, L0 hit {:.3}",
            p.cycles,
            p.bandwidth_utilization(&rep.config) * 100.0,
            p.l0_hit_rate()
        );
    }
    print_fault_summary(&rep);
    let t6 = outerspace::energy::AreaPowerModel::tsmc32nm().table6(&rep.config, Some(&rep));
    println!(
        "energy: {:.2} W -> {:.3} GFLOPS/W",
        t6.total_power_w(),
        rep.gflops() / t6.total_power_w()
    );
    Ok(())
}

fn cmd_spmv(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let a = load(pos.first().ok_or("spmv needs a matrix file")?)?;
    let r: f64 = flag_value(args, "--density").unwrap_or("0.1").parse().map_err(|_| "--density needs a number")?;
    let x = outerspace::gen::vector::sparse(a.ncols(), r, 1);
    let cfg = OuterSpaceConfig { faults: fault_model(args)?, ..Default::default() };
    let sim = Simulator::new(cfg).map_err(|e| e.to_string())?;
    let (y, rep) = sim.spmv(&a.to_csc(), &x).map_err(|e| e.to_string())?;
    println!(
        "y = A x (r = {r}): {} non-zeros in, {} out; simulated {:.3} us",
        x.nnz(),
        y.nnz(),
        rep.seconds() * 1e6
    );
    print_fault_summary(&rep);
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let (kind, n, nnz) = match pos.as_slice() {
        [kind, n, nnz, ..] => (*kind, *n, *nnz),
        _ => return Err("generate needs: <kind> <n> <nnz> --out FILE".into()),
    };
    let n: u32 = n.parse().map_err(|_| "n must be an integer")?;
    let nnz: usize = nnz.parse().map_err(|_| "nnz must be an integer")?;
    let seed = flag_value(args, "--seed").unwrap_or("42").parse().map_err(|_| "--seed needs an integer")?;
    let m = match kind {
        "uniform" => outerspace::gen::uniform::matrix(n, n, nnz, seed),
        "rmat" => outerspace::gen::rmat::graph500(n, nnz / 2, seed),
        "powerlaw" => outerspace::gen::powerlaw::graph(n, nnz, seed),
        "road" => outerspace::gen::road::network(n, nnz, seed),
        other => return Err(format!("unknown kind '{other}' (uniform|rmat|powerlaw|road)")),
    };
    let out = flag_value(args, "--out").ok_or("generate needs --out FILE")?;
    let f = std::fs::File::create(out).map_err(|e| format!("{out}: {e}"))?;
    io::write_csr(f, &m).map_err(|e| e.to_string())?;
    println!("wrote {out}: {} x {}, {} non-zeros", m.nrows(), m.ncols(), m.nnz());
    Ok(())
}

fn cmd_suite() -> Result<(), String> {
    println!("{:<16} {:>9} {:>10} {:>7}  kind", "matrix", "dim", "nnz", "nnz/row");
    for e in outerspace::gen::suite::TABLE4 {
        println!(
            "{:<16} {:>9} {:>10} {:>7.1}  {}",
            e.name,
            e.dim,
            e.nnz,
            e.nnz_per_row(),
            e.kind
        );
    }
    Ok(())
}
