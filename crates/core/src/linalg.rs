//! High-level chained operations built on the outer-product pipeline.
//!
//! §4.3 of the paper: format conversion is "a one-time requirement for
//! chained multiplication operations of the type A×B×C…, since OuterSPACE
//! can output the result in either CR or CC formats", and powers `Aᴺ`
//! decompose into a logarithmic number of squarings (`A² = A×A`,
//! `A⁴ = A²×A²`, …). These helpers realize both schemes in software.

use outerspace_outer as outer;
use outerspace_sparse::{Csr, SparseError};

/// Multiplies a chain `M₁ × M₂ × … × Mₖ` left to right with the
/// outer-product algorithm.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if the chain is empty or any
/// adjacent pair has incompatible shapes.
///
/// # Example
///
/// ```
/// use outerspace::chain_multiply;
/// use outerspace::sparse::Csr;
///
/// # fn main() -> Result<(), outerspace::sparse::SparseError> {
/// let eye = Csr::identity(4);
/// let c = chain_multiply(&[&eye, &eye, &eye])?;
/// assert!(c.approx_eq(&eye, 0.0));
/// # Ok(())
/// # }
/// ```
pub fn chain_multiply(mats: &[&Csr]) -> Result<Csr, SparseError> {
    let (first, rest) = mats.split_first().ok_or(SparseError::ShapeMismatch {
        left: (0, 0),
        right: (0, 0),
        op: "chain_multiply",
    })?;
    let mut acc = (*first).clone();
    for m in rest {
        acc = outer::spgemm(&acc, m)?;
    }
    Ok(acc)
}

/// Computes `A^n` for `n ≥ 1` with logarithmically many squarings (§4.3).
///
/// Matrix powers are the workhorse of reachability and Markov-style graph
/// analyses; the decomposition means only `O(log n)` format conversions are
/// ever needed.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `a` is not square or `n == 0`.
pub fn matrix_power(a: &Csr, n: u32) -> Result<Csr, SparseError> {
    if a.nrows() != a.ncols() || n == 0 {
        return Err(SparseError::ShapeMismatch {
            left: (a.nrows() as u64, a.ncols() as u64),
            right: (n as u64, n as u64),
            op: "matrix_power",
        });
    }
    // Exponentiation by squaring.
    let mut base = a.clone();
    let mut result: Option<Csr> = None;
    let mut exp = n;
    while exp > 0 {
        if exp & 1 == 1 {
            result = Some(match result {
                None => base.clone(),
                Some(r) => outer::spgemm(&r, &base)?,
            });
        }
        exp >>= 1;
        if exp > 0 {
            base = outer::spgemm(&base, &base)?;
        }
    }
    Ok(result.expect("n >= 1 guarantees at least one factor"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_gen::uniform;
    use outerspace_sparse::ops;

    #[test]
    fn chain_matches_pairwise_reference() {
        let a = uniform::matrix(24, 32, 150, 1);
        let b = uniform::matrix(32, 16, 150, 2);
        let c = uniform::matrix(16, 24, 100, 3);
        let chained = chain_multiply(&[&a, &b, &c]).unwrap();
        let want = ops::spgemm_reference(&ops::spgemm_reference(&a, &b).unwrap(), &c).unwrap();
        assert!(chained.approx_eq(&want, 1e-9));
    }

    #[test]
    fn empty_chain_rejected() {
        assert!(chain_multiply(&[]).is_err());
    }

    #[test]
    fn power_one_is_identity_operation() {
        let a = uniform::matrix(16, 16, 64, 4);
        assert!(matrix_power(&a, 1).unwrap().approx_eq(&a, 0.0));
    }

    #[test]
    fn power_four_matches_repeated_squaring() {
        // Use a pruned stochastic-ish matrix to keep values bounded.
        let a = uniform::matrix(24, 24, 72, 5);
        let a2 = ops::spgemm_reference(&a, &a).unwrap();
        let a4 = ops::spgemm_reference(&a2, &a2).unwrap();
        assert!(matrix_power(&a, 4).unwrap().approx_eq(&a4, 1e-6));
    }

    #[test]
    fn odd_power() {
        let a = uniform::matrix(16, 16, 48, 6);
        let a2 = ops::spgemm_reference(&a, &a).unwrap();
        let a3 = ops::spgemm_reference(&a2, &a).unwrap();
        assert!(matrix_power(&a, 3).unwrap().approx_eq(&a3, 1e-7));
    }

    #[test]
    fn zero_power_and_rectangular_rejected() {
        let a = uniform::matrix(8, 8, 16, 7);
        assert!(matrix_power(&a, 0).is_err());
        let r = uniform::matrix(4, 6, 8, 8);
        assert!(matrix_power(&r, 2).is_err());
    }
}
