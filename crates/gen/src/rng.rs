//! A small, dependency-free pseudo-random number generator.
//!
//! This replaces the `rand` crate so the workspace builds without network
//! access. [`SmallRng`] is an xorshift64\* generator seeded through a
//! splitmix64 scramble (so seed 0 is usable and nearby seeds decorrelate);
//! the [`Rng`] trait mirrors the subset of `rand::Rng` the generators use:
//! `gen::<f64>()` and `gen_range` over integer ranges.
//!
//! The streams are *not* identical to `rand::rngs::SmallRng` — generated
//! workloads changed once, deterministically, when the shim landed. Every
//! generator remains a pure function of its seed.

use std::ops::{Range, RangeInclusive};

/// Types that can be drawn uniformly from a generator ([`Rng::gen`]).
pub trait Draw {
    /// Draws one value from `rng`.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Draw for f64 {
    /// Uniform in `[0, 1)`, using the top 53 bits of one output word.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Draw for u64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range. Panics if the range is empty.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Draws uniformly from `[0, bound)` with Lemire's multiply-shift method
/// (rejection on the low product word keeps it unbiased). The scaling uses
/// the *high* bits of the stream — important for xorshift-family generators,
/// whose low bits are the weakest.
fn bounded<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let mut m = u128::from(rng.next_u64()) * u128::from(bound);
    if (m as u64) < bound {
        let threshold = bound.wrapping_neg() % bound;
        while (m as u64) < threshold {
            m = u128::from(rng.next_u64()) * u128::from(bound);
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + bounded(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize);

/// The subset of `rand::Rng` used by the workload generators.
pub trait Rng {
    /// Returns the next 64 raw bits from the stream.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of type `T` uniformly (currently `f64` in `[0, 1)` or a
    /// raw `u64`).
    fn gen<T: Draw>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws uniformly from an integer range; panics on empty ranges.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// A fast xorshift64\* generator. Deterministic, `Copy`-cheap, and good
/// enough for workload synthesis (not cryptography).
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Seeds the generator. Any seed (including 0) is valid: the seed is
    /// passed through splitmix64 so the xorshift state is never zero.
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        SmallRng {
            state: if z == 0 { 0x9e37_79b9_7f4a_7c15 } else { z },
        }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

impl Rng for &mut SmallRng {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = SmallRng::seed_from_u64(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = r.gen_range(5u64..17);
            assert!((5..17).contains(&v));
            let w = r.gen_range(0usize..=3);
            assert!(w <= 3);
            let u = r.gen_range(9u32..10);
            assert_eq!(u, 9);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
