//! Banded matrices: non-zeros concentrated at fixed diagonal offsets.
//!
//! These model the "regular" matrices the paper calls out (filter3D,
//! cop20k_A, scircuit): most non-zeros sit on or near the diagonal, which is
//! the structure that favours the index-matching baselines (MKL/cuSPARSE) and
//! therefore bounds OuterSPACE's speedup from below in Fig. 7.

use outerspace_sparse::{Coo, Csr, Index};
use crate::rng::Rng;

use crate::{draw_value, rng_from_seed};

/// Generates an `n` × `n` banded matrix.
///
/// For every row, an entry is placed at each diagonal offset in `offsets`
/// (clipped at the matrix edge) with probability `fill`. With `fill = 1.0`
/// each interior row gets exactly `offsets.len()` entries.
///
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `fill` is outside `[0, 1]` or `offsets` is empty.
pub fn matrix(n: Index, offsets: &[i64], fill: f64, seed: u64) -> Csr {
    assert!((0.0..=1.0).contains(&fill), "fill must be in [0, 1]");
    assert!(!offsets.is_empty(), "offsets must be non-empty");
    let mut rng = rng_from_seed(seed);
    let mut coo = Coo::with_capacity(n, n, (n as usize) * offsets.len());
    for r in 0..n as i64 {
        for &d in offsets {
            let c = r + d;
            if c < 0 || c >= n as i64 {
                continue;
            }
            if fill >= 1.0 || rng.gen::<f64>() < fill {
                coo.push(r as Index, c as Index, draw_value(&mut rng));
            }
        }
    }
    coo.to_csr()
}

/// Derives a quasi-symmetric offset set with `k` offsets spread over a band
/// of half-width `half_band`: `{0, ±1, ±2, …}` padded with strided offsets
/// (`±half_band/2`, `±half_band`) once the near-diagonal is exhausted.
///
/// This mimics the offset pattern of finite-element/finite-difference
/// matrices whose stencils couple neighbouring unknowns plus a few
/// longer-range strides.
pub fn spread_offsets(k: usize, half_band: i64) -> Vec<i64> {
    let mut offsets = vec![0i64];
    let mut d = 1i64;
    // Alternate +d, -d near the diagonal.
    while offsets.len() < k && d <= half_band.max(1) {
        offsets.push(d);
        if offsets.len() < k {
            offsets.push(-d);
        }
        // Grow the stride once past the immediate neighbours, as stencil
        // matrices do (unit stride, then row stride, then plane stride).
        d = if d < 4 { d + 1 } else { d * 2 };
    }
    // If the band was too narrow to supply k offsets, fill linearly.
    let mut extra = half_band.max(1) + 1;
    while offsets.len() < k {
        offsets.push(extra);
        if offsets.len() < k {
            offsets.push(-extra);
        }
        extra += 1;
    }
    offsets.truncate(k);
    offsets.sort_unstable();
    offsets.dedup();
    offsets
}

/// Generates an `n` × `n` circulant matrix with exactly `k` entries in
/// *every* row and *every* column, at pseudo-random wrap-around offsets —
/// the stand-in for fixed-degree combinatorial matrices like `m133-b3`
/// (exactly 4 non-zeros per row; §7.3 notes this makes its outer-product
/// allocation fully static, a property that requires the fixed degree on
/// both axes).
///
/// # Panics
///
/// Panics if `k > n`.
pub fn circulant(n: Index, k: usize, seed: u64) -> Csr {
    assert!(k as u64 <= n as u64, "cannot place {k} distinct offsets in dimension {n}");
    let mut rng = rng_from_seed(seed);
    // Distinct offsets spread over the full index range.
    let mut offsets: Vec<u64> = Vec::with_capacity(k);
    while offsets.len() < k {
        let o = rng.gen_range(0..n as u64);
        if !offsets.contains(&o) {
            offsets.push(o);
        }
    }
    let mut coo = Coo::with_capacity(n, n, n as usize * k);
    for r in 0..n as u64 {
        for &o in &offsets {
            coo.push(r as Index, ((r + o) % n as u64) as Index, draw_value(&mut rng));
        }
    }
    coo.to_csr()
}

/// Generates an `n` × `n` matrix with `nnz` non-zeros (approximately) whose
/// per-row count is exactly `per_row` for interior rows.
///
/// Columns are chosen uniformly at random, distinct within each row (column
/// counts vary; use [`circulant`] when both axes must be fixed-degree).
pub fn fixed_per_row(n: Index, per_row: usize, seed: u64) -> Csr {
    let mut rng = rng_from_seed(seed);
    let mut coo = Coo::with_capacity(n, n, n as usize * per_row);
    let mut picked: Vec<Index> = Vec::with_capacity(per_row);
    for r in 0..n {
        picked.clear();
        while picked.len() < per_row.min(n as usize) {
            let c = rng.gen_range(0..n);
            if !picked.contains(&c) {
                picked.push(c);
                coo.push(r, c, draw_value(&mut rng));
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_sparse::stats;

    #[test]
    fn full_fill_gives_exact_band() {
        let m = matrix(16, &[-1, 0, 1], 1.0, 0);
        // Tridiagonal: 3n - 2 entries.
        assert_eq!(m.nnz(), 3 * 16 - 2);
        assert_eq!(stats::diagonal_fraction(&m, 1), 1.0);
    }

    #[test]
    fn partial_fill_reduces_nnz() {
        let full = matrix(128, &[-2, -1, 0, 1, 2], 1.0, 1);
        let half = matrix(128, &[-2, -1, 0, 1, 2], 0.5, 1);
        assert!(half.nnz() < full.nnz());
        assert!(half.nnz() > full.nnz() / 4);
    }

    #[test]
    fn spread_offsets_contains_diagonal_and_is_sorted() {
        let offs = spread_offsets(7, 100);
        assert!(offs.contains(&0));
        assert!(offs.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(offs.len(), 7);
    }

    #[test]
    fn spread_offsets_narrow_band_fills_linearly() {
        let offs = spread_offsets(9, 2);
        assert_eq!(offs.len(), 9);
        assert!(offs.iter().all(|&d| d.unsigned_abs() <= 8));
    }

    #[test]
    fn circulant_is_fixed_degree_on_both_axes() {
        let m = circulant(97, 4, 3);
        for r in 0..97 {
            assert_eq!(m.row_nnz(r), 4, "row {r}");
        }
        let t = m.transpose();
        for c in 0..97 {
            assert_eq!(t.row_nnz(c), 4, "col {c}");
        }
    }

    #[test]
    #[should_panic(expected = "distinct offsets")]
    fn circulant_rejects_oversized_k() {
        let _ = circulant(3, 4, 0);
    }

    #[test]
    fn fixed_per_row_is_exact() {
        let m = fixed_per_row(64, 4, 5);
        for r in 0..64 {
            assert_eq!(m.row_nnz(r), 4, "row {r}");
        }
        let p = stats::profile(&m);
        assert!(p.row_gini < 1e-9);
    }

    #[test]
    fn offsets_outside_matrix_are_clipped() {
        let m = matrix(4, &[-10, 0, 10], 1.0, 0);
        assert_eq!(m.nnz(), 4); // only the main diagonal survives
    }

    #[test]
    #[should_panic(expected = "fill must be")]
    fn bad_fill_panics() {
        let _ = matrix(4, &[0], 1.5, 0);
    }
}
