//! Finite-difference stencil matrices on 2-D and 3-D grids.
//!
//! Stand-ins for the PDE/EM matrices of Table 4 (2cubes_sphere, offshore,
//! poisson3Da, mario002): symmetric, strongly diagonal, with strided
//! off-diagonals at the grid strides. These are the "regular" matrices on
//! which the paper reports MKL/cuSPARSE performing comparatively well.

use outerspace_sparse::{Coo, Csr, Index};
use crate::rng::Rng;

use crate::{draw_value, rng_from_seed};

/// Generates the 5-point Laplacian-pattern matrix of an `nx` × `ny` grid
/// (dimension `nx · ny`), with random values and optional random `fill`
/// thinning (probability of keeping each off-diagonal entry).
///
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `fill` is outside `[0, 1]`.
pub fn grid2d(nx: Index, ny: Index, fill: f64, seed: u64) -> Csr {
    assert!((0.0..=1.0).contains(&fill), "fill must be in [0, 1]");
    let n = nx as usize * ny as usize;
    let mut rng = rng_from_seed(seed);
    let mut coo = Coo::with_capacity(n as Index, n as Index, n * 5);
    let idx = |x: Index, y: Index| -> Index { y * nx + x };
    for y in 0..ny {
        for x in 0..nx {
            let me = idx(x, y);
            coo.push(me, me, draw_value(&mut rng) + 4.0); // diagonally dominant
            let mut neighbour = |other: Index, rng: &mut crate::rng::SmallRng| {
                if fill >= 1.0 || rng.gen::<f64>() < fill {
                    coo.push(me, other, -draw_value(rng));
                }
            };
            if x > 0 {
                neighbour(idx(x - 1, y), &mut rng);
            }
            if x + 1 < nx {
                neighbour(idx(x + 1, y), &mut rng);
            }
            if y > 0 {
                neighbour(idx(x, y - 1), &mut rng);
            }
            if y + 1 < ny {
                neighbour(idx(x, y + 1), &mut rng);
            }
        }
    }
    coo.to_csr()
}

/// Generates the 7-point Laplacian-pattern matrix of an `nx` × `ny` × `nz`
/// grid (dimension `nx · ny · nz`), with `fill` thinning as in [`grid2d`].
///
/// # Panics
///
/// Panics if `fill` is outside `[0, 1]`.
pub fn grid3d(nx: Index, ny: Index, nz: Index, fill: f64, seed: u64) -> Csr {
    assert!((0.0..=1.0).contains(&fill), "fill must be in [0, 1]");
    let n = nx as usize * ny as usize * nz as usize;
    let mut rng = rng_from_seed(seed);
    let mut coo = Coo::with_capacity(n as Index, n as Index, n * 7);
    let idx = |x: Index, y: Index, z: Index| -> Index { (z * ny + y) * nx + x };
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let me = idx(x, y, z);
                coo.push(me, me, draw_value(&mut rng) + 6.0);
                let mut neighbour = |other: Index, rng: &mut crate::rng::SmallRng| {
                    if fill >= 1.0 || rng.gen::<f64>() < fill {
                        coo.push(me, other, -draw_value(rng));
                    }
                };
                if x > 0 {
                    neighbour(idx(x - 1, y, z), &mut rng);
                }
                if x + 1 < nx {
                    neighbour(idx(x + 1, y, z), &mut rng);
                }
                if y > 0 {
                    neighbour(idx(x, y - 1, z), &mut rng);
                }
                if y + 1 < ny {
                    neighbour(idx(x, y + 1, z), &mut rng);
                }
                if z > 0 {
                    neighbour(idx(x, y, z - 1), &mut rng);
                }
                if z + 1 < nz {
                    neighbour(idx(x, y, z + 1), &mut rng);
                }
            }
        }
    }
    coo.to_csr()
}

/// Picks grid dimensions `(nx, ny, nz)` whose product is close to `n`
/// (within rounding) with near-cubic aspect, for use with [`grid3d`].
pub fn near_cubic_dims(n: usize) -> (Index, Index, Index) {
    let side = (n as f64).cbrt().round().max(1.0) as usize;
    let nx = side;
    let ny = side;
    let nz = n.div_ceil(nx * ny);
    (nx as Index, ny as Index, nz.max(1) as Index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_sparse::stats;

    #[test]
    fn grid2d_full_pattern_counts() {
        // 4x4 grid: 16 diagonal + interior edges. Edge count (directed):
        // horizontal 2*3*4 = 24, vertical 24 -> total nnz = 16 + 48... wait:
        // each of 4 rows has 3 horizontal adjacencies, stored both ways: 2*3*4=24.
        let m = grid2d(4, 4, 1.0, 0);
        assert_eq!(m.nnz(), 16 + 24 + 24);
        assert!(m.iter().all(|(r, c, _)| r < 16 && c < 16));
    }

    #[test]
    fn grid2d_pattern_is_structurally_symmetric() {
        let m = grid2d(5, 3, 1.0, 1);
        let t = m.transpose();
        for (r, c, _) in m.iter() {
            assert_ne!(t.get(r, c), 0.0, "missing transposed entry ({c},{r})");
        }
    }

    #[test]
    fn grid3d_interior_row_has_seven_entries() {
        let m = grid3d(3, 3, 3, 1.0, 0);
        // Center cell of the 3x3x3 cube: index (1,1,1) = (1*3+1)*3+1 = 13.
        assert_eq!(m.row_nnz(13), 7);
        assert_eq!(m.nrows(), 27);
    }

    #[test]
    fn grids_are_diagonal_heavy() {
        let m = grid3d(8, 8, 8, 1.0, 2);
        let p = stats::profile(&m);
        assert!(p.diagonal_fraction > 0.5, "got {}", p.diagonal_fraction);
        assert!(p.row_gini < 0.1);
    }

    #[test]
    fn fill_thins_offdiagonals_only() {
        let m = grid2d(10, 10, 0.0, 3);
        assert_eq!(m.nnz(), 100); // only diagonals survive
    }

    #[test]
    fn near_cubic_dims_cover_n() {
        for n in [27, 100, 14_000, 1_000_000] {
            let (x, y, z) = near_cubic_dims(n);
            assert!((x as usize) * (y as usize) * (z as usize) >= n);
        }
    }
}
