//! Uniformly random sparse matrices with an exact non-zero budget.
//!
//! This is the workload of Fig. 3, Fig. 4, Table 1 and Table 5: "uniformly
//! random matrices with increasing dimension and decreasing density, keeping
//! the number of non-zeros constant".

use std::collections::HashSet;

use outerspace_sparse::{Coo, Csr, Index};
use crate::rng::Rng;

use crate::{draw_value, rng_from_seed};

/// Generates an `nrows` × `ncols` matrix with exactly `nnz` non-zeros placed
/// uniformly at random (without replacement), values uniform in `[0.5, 1.5)`.
///
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `nnz > nrows * ncols` (the budget cannot be placed).
pub fn matrix(nrows: Index, ncols: Index, nnz: usize, seed: u64) -> Csr {
    let mut rng = rng_from_seed(seed);
    matrix_with(nrows, ncols, nnz, &mut rng)
}

/// [`matrix`] with a caller-provided random source.
///
/// # Panics
///
/// Panics if `nnz > nrows * ncols`.
pub fn matrix_with<R: Rng>(nrows: Index, ncols: Index, nnz: usize, rng: &mut R) -> Csr {
    let cells = nrows as u64 * ncols as u64;
    assert!(
        nnz as u64 <= cells,
        "cannot place {nnz} non-zeros in a {nrows} x {ncols} matrix"
    );
    let mut coo = Coo::with_capacity(nrows, ncols, nnz);
    if nnz as u64 * 2 > cells {
        // Dense-ish regime: permutation sampling (reservoir over all cells)
        // avoids rejection stalls.
        let mut chosen: Vec<u64> = (0..cells).collect();
        for i in 0..nnz as u64 {
            let j = rng.gen_range(i..cells);
            chosen.swap(i as usize, j as usize);
        }
        for &cell in &chosen[..nnz] {
            let (r, c) = ((cell / ncols as u64) as Index, (cell % ncols as u64) as Index);
            coo.push(r, c, draw_value(rng));
        }
    } else {
        let mut seen: HashSet<u64> = HashSet::with_capacity(nnz * 2);
        while seen.len() < nnz {
            let r = rng.gen_range(0..nrows as u64);
            let c = rng.gen_range(0..ncols as u64);
            if seen.insert(r * ncols as u64 + c) {
                coo.push(r as Index, c as Index, draw_value(rng));
            }
        }
    }
    coo.to_csr()
}

/// Generates a square matrix of dimension `n` whose density is `density`
/// (i.e. `nnz = round(density · n²)`).
pub fn square_with_density(n: Index, density: f64, seed: u64) -> Csr {
    let nnz = (density * n as f64 * n as f64).round() as usize;
    matrix(n, n, nnz, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_sparse::stats;

    #[test]
    fn exact_nnz_budget() {
        let m = matrix(100, 100, 500, 7);
        assert_eq!(m.nnz(), 500);
        assert_eq!(m.nrows(), 100);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = matrix(64, 64, 200, 42);
        let b = matrix(64, 64, 200, 42);
        assert_eq!(a, b);
        let c = matrix(64, 64, 200, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn dense_regime_uses_permutation_path() {
        let m = matrix(16, 16, 200, 3); // 200 / 256 > half
        assert_eq!(m.nnz(), 200);
    }

    #[test]
    fn full_matrix_possible() {
        let m = matrix(8, 8, 64, 3);
        assert_eq!(m.nnz(), 64);
        assert_eq!(m.density(), 1.0);
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn over_budget_panics() {
        let _ = matrix(4, 4, 17, 0);
    }

    #[test]
    fn rows_are_roughly_uniform() {
        let m = matrix(256, 256, 8192, 11);
        let p = stats::profile(&m);
        // Uniform placement: Gini of row counts must be small.
        assert!(p.row_gini < 0.25, "row gini {} too high for uniform", p.row_gini);
        // And no diagonal concentration.
        assert!(p.diagonal_fraction < 0.25);
    }

    #[test]
    fn density_helper_rounds() {
        let m = square_with_density(100, 0.01, 5);
        assert_eq!(m.nnz(), 100);
    }

    #[test]
    fn values_in_expected_range() {
        let m = matrix(32, 32, 100, 9);
        assert!(m.values().iter().all(|&v| (0.5..1.5).contains(&v)));
    }
}
