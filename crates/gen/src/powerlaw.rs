//! Power-law (scale-free) graph generator.
//!
//! Stand-ins for the social/web/citation networks of Table 4 (email-Enron,
//! facebook, wiki-Vote, web-Google, cit-Patents, …): a heavy-tailed degree
//! distribution with hub rows. §7.1.2 of the paper observes MKL performs
//! particularly badly on such matrices (email-Enron) while OuterSPACE's
//! speedups are largest on "smeared" irregular structures.

use outerspace_sparse::{Coo, Csr, Index};
use crate::rng::Rng;

use crate::{draw_value, rng_from_seed};

/// Configuration for the power-law generator.
#[derive(Debug, Clone)]
pub struct PowerLawConfig {
    n: Index,
    nnz_target: usize,
    exponent: f64,
    symmetric: bool,
}

impl PowerLawConfig {
    /// A graph on `n` vertices aiming for `nnz_target` stored entries, with
    /// degree-distribution exponent `2.1` (typical of web/social graphs),
    /// directed.
    pub fn new(n: Index, nnz_target: usize) -> Self {
        PowerLawConfig { n, nnz_target, exponent: 2.1, symmetric: false }
    }

    /// Sets the degree-distribution exponent (must be > 1).
    ///
    /// # Panics
    ///
    /// Panics if `exponent <= 1.0`.
    pub fn exponent(mut self, exponent: f64) -> Self {
        assert!(exponent > 1.0, "power-law exponent must exceed 1");
        self.exponent = exponent;
        self
    }

    /// Mirror every edge, producing a symmetric pattern (friendship and
    /// collaboration networks).
    pub fn symmetric(mut self, yes: bool) -> Self {
        self.symmetric = yes;
        self
    }

    /// Generates the adjacency matrix, deterministic in `seed`.
    ///
    /// Each vertex draws an out-degree from a bounded power-law, degrees are
    /// scaled so their sum matches the target, and each row then picks that
    /// many distinct targets — mostly uniform, with one third of the picks
    /// Zipf-biased toward hub vertices so in-degrees are heavy-tailed too.
    /// Duplicate mirrored edges merge, so symmetric graphs realize slightly
    /// under the target.
    pub fn generate(&self, seed: u64) -> Csr {
        let mut rng = rng_from_seed(seed);
        let n = self.n;
        // Random permutation so hub vertices are scattered over the index
        // space (a sorted hub block would be unrealistically cache-friendly).
        let mut perm: Vec<Index> = (0..n).collect();
        for i in (1..n as usize).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        // Draw raw power-law degrees, then rescale to hit the edge budget.
        // Zero-degree vertices are kept (dangling pages and isolated users
        // are a real feature of these graphs, and the empty rows keep the
        // realized distribution heavy-tailed).
        let edge_budget =
            if self.symmetric { self.nnz_target / 2 } else { self.nnz_target };
        let mut degrees: Vec<f64> = (0..n).map(|_| self.zipf(&mut rng) as f64).collect();
        let total: f64 = degrees.iter().sum::<f64>().max(1.0);
        let cap = (n as usize - 1).min((n as usize / 8).max(4)) as f64;
        // Water-fill the scale: hub degrees saturate at the cap, so a plain
        // budget/total ratio under-realizes the target whenever one vertex
        // draws a huge degree. Redistribute the truncated mass onto the
        // uncapped bulk until the expected total meets the budget.
        let mut scale = edge_budget as f64 / total;
        for _ in 0..8 {
            let realized: f64 = degrees.iter().map(|d| (d * scale).min(cap)).sum();
            if realized >= edge_budget as f64 * 0.995 {
                break;
            }
            let uncapped: f64 =
                degrees.iter().filter(|&&d| d * scale < cap).sum();
            if uncapped * scale <= 0.0 {
                break;
            }
            scale *= 1.0 + (edge_budget as f64 - realized) / (uncapped * scale);
        }
        let mut coo = Coo::with_capacity(n, n, self.nnz_target + self.nnz_target / 8);
        let mut picked: std::collections::HashSet<Index> = std::collections::HashSet::new();
        for (src_rank, d) in degrees.iter_mut().enumerate() {
            let mut deg = (*d * scale).floor() as usize;
            // Stochastic rounding keeps the expected total on budget.
            if rng.gen::<f64>() < (*d * scale).fract() {
                deg += 1;
            }
            // Cap hubs at n/8 neighbours: even the densest suite rows
            // (facebook) stay far below full fan-out.
            let deg = deg.min(cap as usize);
            let src = perm[src_rank];
            picked.clear();
            let mut attempts = 0usize;
            while picked.len() < deg && attempts < deg * 8 {
                attempts += 1;
                // A modest fraction of targets is hub-biased, the rest
                // uniform: heavy-tailed in-degree without the unrealistic
                // hub-hub product blow-up (real web/social matrices have
                // intermediate-product counts of ~10-100x nnz).
                let dst = if rng.gen::<f64>() < 0.15 {
                    perm[self.zipf(&mut rng) as usize]
                } else {
                    rng.gen_range(0..n)
                };
                if dst != src && picked.insert(dst) {
                    let w = draw_value(&mut rng);
                    coo.push(src, dst, w);
                    if self.symmetric {
                        coo.push(dst, src, w);
                    }
                }
            }
        }
        coo.to_csr()
    }

    /// Samples a vertex rank in `[0, n)` from an (approximate) Zipf
    /// distribution with the configured exponent, via inversion of the
    /// continuous bounded-Pareto CDF.
    fn zipf<R: Rng>(&self, rng: &mut R) -> Index {
        let alpha = self.exponent;
        let n = self.n as f64;
        // Bounded Pareto on [1, n+1): F^-1(u) = (1 - u (1 - (n+1)^(1-a)))^(1/(1-a))
        let a1 = 1.0 - alpha;
        let u: f64 = rng.gen();
        let x = (1.0 - u * (1.0 - (n + 1.0).powf(a1))).powf(1.0 / a1);
        ((x - 1.0) as Index).min(self.n - 1)
    }
}

/// Convenience wrapper: directed power-law graph with exponent 2.1.
pub fn graph(n: Index, nnz_target: usize, seed: u64) -> Csr {
    PowerLawConfig::new(n, nnz_target).generate(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_sparse::stats;

    #[test]
    fn nnz_close_to_target() {
        let g = graph(4096, 40_000, 1);
        let ratio = g.nnz() as f64 / 40_000.0;
        assert!((0.8..=1.1).contains(&ratio), "realized ratio {ratio}");
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = graph(4096, 40_000, 2);
        let p = stats::profile(&g);
        assert!(p.row_gini > 0.5, "gini {} not heavy-tailed", p.row_gini);
        assert!(p.nnz_per_row_max as f64 > 10.0 * p.nnz_per_row_mean);
    }

    #[test]
    fn symmetric_mode_mirrors() {
        let g = PowerLawConfig::new(1024, 10_000).symmetric(true).generate(3);
        assert_eq!(g, g.transpose());
    }

    #[test]
    fn deterministic() {
        assert_eq!(graph(256, 2000, 7), graph(256, 2000, 7));
    }

    #[test]
    fn zipf_values_in_range() {
        let cfg = PowerLawConfig::new(100, 10);
        let mut rng = crate::rng_from_seed(0);
        for _ in 0..10_000 {
            let v = cfg.zipf(&mut rng);
            assert!(v < 100);
        }
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn exponent_validation() {
        let _ = PowerLawConfig::new(4, 4).exponent(0.9);
    }
}
