//! Graph500 R-MAT (recursive matrix) graph generator.
//!
//! Fig. 6 of the paper evaluates on R-MAT graphs produced with the Graph500
//! reference generator's default parameters `(A, B, C) = (0.57, 0.19, 0.19)`
//! for undirected power-law graphs, `nEdges = 100 000`, and the vertex count
//! swept from 5 000 to 80 000. This module reproduces that generator,
//! extended to arbitrary (non-power-of-two) vertex counts by splitting index
//! ranges instead of bit positions.

use outerspace_sparse::{Coo, Csr, Index};
use crate::rng::Rng;

use crate::{draw_value, rng_from_seed};

/// Configuration for the R-MAT generator (builder-style).
///
/// # Example
///
/// ```
/// use outerspace_gen::rmat::RmatConfig;
///
/// let g = RmatConfig::new(5_000, 100_000).undirected(true).generate(1);
/// assert_eq!(g.nrows(), 5_000);
/// assert!(g.nnz() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct RmatConfig {
    n_vertices: Index,
    n_edges: usize,
    a: f64,
    b: f64,
    c: f64,
    undirected: bool,
    noise: f64,
}

impl RmatConfig {
    /// A generator for `n_vertices` vertices and `n_edges` sampled edges,
    /// with the Graph500 default quadrant probabilities
    /// `(A, B, C, D) = (0.57, 0.19, 0.19, 0.05)`, undirected.
    ///
    /// Duplicate edges are merged (summed), so the resulting matrix may have
    /// fewer than `n_edges` (or, undirected, `2·n_edges`) stored entries —
    /// exactly like the Graph500 reference code.
    pub fn new(n_vertices: Index, n_edges: usize) -> Self {
        RmatConfig {
            n_vertices,
            n_edges,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            undirected: true,
            noise: 0.1,
        }
    }

    /// Overrides the quadrant probabilities `(a, b, c)`; `d = 1 - a - b - c`.
    ///
    /// # Panics
    ///
    /// Panics unless `a + b + c < 1` and all are non-negative.
    pub fn probabilities(mut self, a: f64, b: f64, c: f64) -> Self {
        assert!(a >= 0.0 && b >= 0.0 && c >= 0.0 && a + b + c < 1.0, "need a+b+c < 1");
        self.a = a;
        self.b = b;
        self.c = c;
        self
    }

    /// Whether each sampled edge `(u, v)` also inserts `(v, u)`.
    pub fn undirected(mut self, yes: bool) -> Self {
        self.undirected = yes;
        self
    }

    /// Per-level multiplicative noise on the quadrant probabilities, as used
    /// by the Graph500 reference implementation to avoid exact self-similar
    /// artifacts. `0.0` disables it. Default `0.1`.
    ///
    /// # Panics
    ///
    /// Panics if `noise` is not in `[0, 1)`.
    pub fn noise(mut self, noise: f64) -> Self {
        assert!((0.0..1.0).contains(&noise), "noise must be in [0, 1)");
        self.noise = noise;
        self
    }

    /// Generates the adjacency matrix, deterministic in `seed`.
    pub fn generate(&self, seed: u64) -> Csr {
        let mut rng = rng_from_seed(seed);
        self.generate_with(&mut rng)
    }

    /// [`RmatConfig::generate`] with a caller-provided random source.
    pub fn generate_with<R: Rng>(&self, rng: &mut R) -> Csr {
        let cap = if self.undirected { self.n_edges * 2 } else { self.n_edges };
        let mut coo = Coo::with_capacity(self.n_vertices, self.n_vertices, cap);
        for _ in 0..self.n_edges {
            let (u, v) = self.sample_edge(rng);
            let w = draw_value(rng);
            coo.push(u, v, w);
            if self.undirected && u != v {
                coo.push(v, u, w);
            }
        }
        coo.to_csr()
    }

    /// Samples one edge by recursive quadrant descent over the index ranges
    /// `[r0, r1) × [c0, c1)`.
    fn sample_edge<R: Rng>(&self, rng: &mut R) -> (Index, Index) {
        let (mut r0, mut r1) = (0u64, self.n_vertices as u64);
        let (mut c0, mut c1) = (0u64, self.n_vertices as u64);
        while r1 - r0 > 1 || c1 - c0 > 1 {
            // Jitter the probabilities per level (Graph500 "noise").
            let jit = |p: f64, rng: &mut R| -> f64 {
                if self.noise == 0.0 {
                    p
                } else {
                    p * (1.0 - self.noise + 2.0 * self.noise * rng.gen::<f64>())
                }
            };
            let (pa, pb, pc) = (jit(self.a, rng), jit(self.b, rng), jit(self.c, rng));
            let pd = jit(1.0 - self.a - self.b - self.c, rng);
            let total = pa + pb + pc + pd;
            let x = rng.gen::<f64>() * total;
            let (top, left) = if x < pa {
                (true, true)
            } else if x < pa + pb {
                (true, false)
            } else if x < pa + pb + pc {
                (false, true)
            } else {
                (false, false)
            };
            let rm = r0 + (r1 - r0).div_ceil(2);
            let cm = c0 + (c1 - c0).div_ceil(2);
            if r1 - r0 > 1 {
                if top {
                    r1 = rm;
                } else {
                    r0 = rm;
                }
            }
            if c1 - c0 > 1 {
                if left {
                    c1 = cm;
                } else {
                    c0 = cm;
                }
            }
        }
        (r0 as Index, c0 as Index)
    }
}

/// Convenience wrapper: the paper's Fig. 6 configuration — undirected R-MAT,
/// Graph500 default probabilities, `n_edges` sampled edges.
pub fn graph500(n_vertices: Index, n_edges: usize, seed: u64) -> Csr {
    RmatConfig::new(n_vertices, n_edges).generate(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_sparse::stats;

    #[test]
    fn shape_and_determinism() {
        let a = graph500(1000, 5000, 3);
        let b = graph500(1000, 5000, 3);
        assert_eq!(a, b);
        assert_eq!(a.nrows(), 1000);
        assert_eq!(a.ncols(), 1000);
        assert!(a.nnz() > 0 && a.nnz() <= 10_000);
    }

    #[test]
    fn undirected_graph_is_symmetric_in_pattern() {
        let g = graph500(512, 2000, 5);
        let t = g.transpose();
        // Values are shared between (u,v) and (v,u), so full symmetry holds.
        assert_eq!(g, t);
    }

    #[test]
    fn directed_graph_not_symmetric() {
        let g = RmatConfig::new(512, 4000).undirected(false).generate(5);
        assert!(!g.is_symmetric());
    }

    #[test]
    fn rmat_is_more_skewed_than_uniform() {
        let g = RmatConfig::new(2048, 20_000).undirected(false).generate(1);
        let u = crate::uniform::matrix(2048, 2048, g.nnz(), 1);
        let gp = stats::profile(&g);
        let up = stats::profile(&u);
        assert!(
            gp.row_gini > up.row_gini + 0.2,
            "rmat gini {} should exceed uniform gini {}",
            gp.row_gini,
            up.row_gini
        );
    }

    #[test]
    fn non_power_of_two_dimensions() {
        let g = graph500(5000, 10_000, 9);
        assert_eq!(g.nrows(), 5000);
        assert!(g.iter().all(|(r, c, _)| r < 5000 && c < 5000));
    }

    #[test]
    fn zero_noise_still_works() {
        let g = RmatConfig::new(256, 1000).noise(0.0).generate(2);
        assert!(g.nnz() > 0);
    }

    #[test]
    #[should_panic(expected = "a+b+c < 1")]
    fn invalid_probabilities_panic() {
        let _ = RmatConfig::new(4, 1).probabilities(0.5, 0.5, 0.5);
    }

    #[test]
    fn single_vertex_graph() {
        let g = graph500(1, 3, 0);
        assert_eq!(g.nrows(), 1);
        assert_eq!(g.nnz(), 1); // all edges collapse to the self-loop
    }
}
