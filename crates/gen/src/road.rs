//! Road-network-like graphs: planar, low-degree, near-diagonal.
//!
//! Stand-in for `roadNet-CA` (2 M vertices, 2.8 nnz/row): vertices laid out
//! on a 2-D grid with most edges between geometric neighbours and a small
//! fraction of longer "highway" links. Symmetric, very sparse, and largely
//! banded once vertices are numbered row-major — the structure on which the
//! paper reports one of the smaller (but still >5×) Fig. 7 speedups.

use outerspace_sparse::{Coo, Csr, Index};
use crate::rng::Rng;

use crate::{draw_value, rng_from_seed};

/// Generates a road-like network on `n` vertices targeting `nnz_target`
/// stored entries (realized count is within a few percent).
///
/// Vertices sit on a `⌈√n⌉`-wide grid; candidate edges join horizontal and
/// vertical neighbours and are kept with the probability that meets the
/// non-zero budget; 2% of the budget becomes uniformly random long links.
/// The pattern is symmetric. Deterministic in `seed`.
pub fn network(n: Index, nnz_target: usize, seed: u64) -> Csr {
    let mut rng = rng_from_seed(seed);
    let width = (n as f64).sqrt().ceil() as u64;
    let mut coo = Coo::with_capacity(n, n, nnz_target + nnz_target / 8);

    // Count candidate neighbour pairs to derive the keep probability.
    // Each vertex has up to 2 forward neighbours (right, down); each kept
    // pair stores 2 entries.
    let long_budget = nnz_target / 50; // 2% long links (stored twice)
    let grid_budget_pairs = (nnz_target.saturating_sub(2 * long_budget)) / 2;
    let candidate_pairs = 2 * n as usize; // upper bound; edges off-grid clip
    let keep = (grid_budget_pairs as f64 / candidate_pairs as f64).min(1.0);

    for v in 0..n as u64 {
        let (x, y) = (v % width, v / width);
        for (dx, dy) in [(1u64, 0u64), (0, 1)] {
            let (nx, ny) = (x + dx, y + dy);
            if nx >= width {
                continue;
            }
            let u = ny * width + nx;
            if u >= n as u64 {
                continue;
            }
            if rng.gen::<f64>() < keep {
                let w = draw_value(&mut rng);
                coo.push(v as Index, u as Index, w);
                coo.push(u as Index, v as Index, w);
            }
        }
    }
    for _ in 0..long_budget {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            let w = draw_value(&mut rng);
            coo.push(a, b, w);
            coo.push(b, a, w);
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_sparse::stats;

    #[test]
    fn nnz_near_target() {
        let g = network(10_000, 28_000, 1);
        let ratio = g.nnz() as f64 / 28_000.0;
        assert!((0.7..=1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn symmetric_pattern() {
        let g = network(2_500, 7_000, 2);
        assert_eq!(g, g.transpose());
    }

    #[test]
    fn low_uniform_degree() {
        let g = network(10_000, 28_000, 3);
        let p = stats::profile(&g);
        assert!(p.nnz_per_row_max <= 16, "max degree {}", p.nnz_per_row_max);
        assert!(p.row_gini < 0.5);
    }

    #[test]
    fn mostly_near_diagonal() {
        let g = network(10_000, 28_000, 4);
        // Grid neighbours are within `width` of the diagonal.
        let frac = stats::diagonal_fraction(&g, 110);
        assert!(frac > 0.85, "diagonal fraction {frac}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(network(1000, 2800, 9), network(1000, 2800, 9));
    }
}
