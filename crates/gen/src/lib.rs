//! Workload generators for the OuterSPACE reproduction.
//!
//! The paper evaluates on three families of inputs, all reproduced here:
//!
//! * **Uniformly random** matrices with a fixed non-zero budget and swept
//!   dimension (Figs. 3, 4; Tables 1, 5) — [`uniform`].
//! * **Graph500 R-MAT** power-law graphs with the default parameters
//!   `(A, B, C) = (0.57, 0.19, 0.19)` (Fig. 6) — [`rmat`].
//! * **Real-world matrices** from SuiteSparse/SNAP (Table 4, Fig. 7). The
//!   collections are not redistributable inside this repository, so
//!   [`suite`] provides deterministic *synthetic stand-ins* that match each
//!   matrix's dimension, non-zero count and structure class; genuine `.mtx`
//!   files can be substituted through `outerspace_sparse::io`.
//!
//! Additional structural generators ([`stencil`], [`banded`], [`powerlaw`],
//! [`road`]) back the stand-ins. Everything is seeded and deterministic.
//!
//! # Example
//!
//! ```
//! use outerspace_gen::uniform;
//!
//! // 1024 x 1024, exactly 4096 non-zeros, uniformly placed.
//! let m = uniform::matrix(1024, 1024, 4096, 1);
//! assert_eq!(m.nnz(), 4096);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod banded;
pub mod powerlaw;
pub mod rmat;
pub mod rng;
pub mod road;
pub mod stencil;
pub mod suite;
pub mod uniform;
pub mod vector;

pub use rng::{Rng, SmallRng};

pub(crate) fn rng_from_seed(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Draws a non-zero value for a generated entry: uniform in `[0.5, 1.5)`.
///
/// Keeping magnitudes near 1 avoids cancellation to exact zero in products
/// and keeps accumulated values well-conditioned for comparison tests.
pub(crate) fn draw_value<R: Rng>(rng: &mut R) -> f64 {
    0.5 + rng.gen::<f64>()
}
