//! Sparse and dense vector generators for the SpMV experiments (Table 5).

use outerspace_sparse::{Index, SparseVector, Value};
use crate::rng::Rng;

use crate::{draw_value, rng_from_seed};

/// Generates a sparse vector of length `len` with `round(r · len)` non-zeros
/// at uniformly random positions. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `r` is outside `[0, 1]`.
pub fn sparse(len: Index, r: f64, seed: u64) -> SparseVector {
    assert!((0.0..=1.0).contains(&r), "density must be in [0, 1]");
    let mut rng = rng_from_seed(seed);
    let nnz = ((r * len as f64).round() as usize).min(len as usize);
    // Partial Fisher-Yates over positions.
    let mut pos: Vec<Index> = (0..len).collect();
    for i in 0..nnz {
        let j = rng.gen_range(i..len as usize);
        pos.swap(i, j);
    }
    let mut indices: Vec<Index> = pos[..nnz].to_vec();
    indices.sort_unstable();
    let values = indices.iter().map(|_| draw_value(&mut rng)).collect();
    SparseVector { len, indices, values }
}

/// Generates a fully dense random vector of length `len`.
pub fn dense(len: Index, seed: u64) -> Vec<Value> {
    let mut rng = rng_from_seed(seed);
    (0..len).map(|_| draw_value(&mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_realized_exactly() {
        let v = sparse(1000, 0.1, 1);
        assert_eq!(v.nnz(), 100);
        assert!((v.density() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn indices_sorted_and_unique() {
        let v = sparse(500, 0.5, 2);
        assert!(v.indices.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn full_density_is_dense() {
        let v = sparse(64, 1.0, 3);
        assert_eq!(v.nnz(), 64);
        assert_eq!(v.indices, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn zero_density_is_empty() {
        let v = sparse(64, 0.0, 4);
        assert_eq!(v.nnz(), 0);
        assert_eq!(v.to_dense(), vec![0.0; 64]);
    }

    #[test]
    fn to_dense_round_trip() {
        let v = sparse(128, 0.25, 5);
        let d = v.to_dense();
        for (&i, &val) in v.indices.iter().zip(&v.values) {
            assert_eq!(d[i as usize], val);
        }
        assert_eq!(d.iter().filter(|&&x| x != 0.0).count(), v.nnz());
    }

    #[test]
    fn dense_generator_length() {
        assert_eq!(dense(37, 0).len(), 37);
    }
}
