//! Synthetic stand-ins for the Table 4 evaluation suite.
//!
//! The paper's Fig. 7 / Table 4 matrices come from the University of Florida
//! SuiteSparse collection and SNAP. Those collections cannot ship in this
//! repository, so each matrix gets a deterministic synthetic stand-in that
//! matches its *dimension*, *non-zero count* and *structure class* (regular
//! stencil / banded, power-law, road network, fixed-degree combinatorial).
//! DESIGN.md §3 documents the substitution; EXPERIMENTS.md reports results
//! on the stand-ins. Genuine `.mtx` files can be loaded instead through
//! [`outerspace_sparse::io::read_csr`].

use outerspace_sparse::{Csr, Index};

use crate::{banded, powerlaw, road, stencil};

/// The structural family used to synthesize a stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructureClass {
    /// PDE/EM stencil on a 3-D grid: symmetric, diagonal-dominant.
    Stencil3d,
    /// Banded with spread offsets (circuit/model-reduction style).
    Banded,
    /// Heavy-tailed scale-free graph (social / web / citation).
    PowerLaw,
    /// Symmetric heavy-tailed graph (collaboration / friendship).
    PowerLawSymmetric,
    /// Planar low-degree near-diagonal network.
    Road,
    /// Exactly `nnz/row` entries in every row (combinatorial).
    FixedPerRow,
}

/// One row of Table 4: a matrix identity plus the parameters needed to
/// synthesize its stand-in.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// SuiteSparse / SNAP matrix name.
    pub name: &'static str,
    /// Square dimension.
    pub dim: Index,
    /// Non-zero count of the original matrix.
    pub nnz: usize,
    /// Problem-domain note from Table 4.
    pub kind: &'static str,
    /// Structure family used for the stand-in.
    pub class: StructureClass,
}

impl SuiteEntry {
    /// Average non-zeros per row (`nnzav` in Table 4).
    pub fn nnz_per_row(&self) -> f64 {
        self.nnz as f64 / self.dim as f64
    }

    /// Synthesizes the stand-in at full scale. See [`SuiteEntry::generate_scaled`].
    pub fn generate(&self, seed: u64) -> Csr {
        self.generate_scaled(1, seed)
    }

    /// Synthesizes the stand-in with dimension and nnz divided by `scale`
    /// (keeping nnz/row constant), so the full Fig. 7 sweep can run quickly
    /// at `scale > 1` while preserving each matrix's structure and density
    /// regime. Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `scale == 0` or the scaled dimension would reach zero.
    pub fn generate_scaled(&self, scale: u32, seed: u64) -> Csr {
        assert!(scale > 0, "scale must be positive");
        let dim = self.dim / scale;
        assert!(dim > 0, "scale {scale} collapses {}", self.name);
        let nnz = self.nnz / scale as usize;
        let per_row = self.nnz_per_row().round().max(1.0) as usize;
        match self.class {
            StructureClass::Stencil3d => {
                // Choose a grid whose 7-point stencil we thin/extend to hit
                // the nnz target: fill = target_per_row/7 when <=7, else a
                // banded spread pattern approximating a larger stencil.
                if self.nnz_per_row() <= 7.5 {
                    let (nx, ny, nz) = stencil::near_cubic_dims(dim as usize);
                    let fill = ((self.nnz_per_row() - 1.0) / 6.0).clamp(0.0, 1.0);
                    stencil::grid3d(nx, ny, nz, fill, seed)
                } else {
                    let offs =
                        banded::spread_offsets(per_row, (dim as i64 / 64).max(8));
                    banded::matrix(dim, &offs, 1.0, seed)
                }
            }
            StructureClass::Banded => {
                let offs = banded::spread_offsets(per_row, (dim as i64 / 64).max(8));
                banded::matrix(dim, &offs, (self.nnz_per_row() / per_row as f64).min(1.0), seed)
            }
            StructureClass::PowerLaw => powerlaw::graph(dim, nnz, seed),
            StructureClass::PowerLawSymmetric => {
                powerlaw::PowerLawConfig::new(dim, nnz).symmetric(true).generate(seed)
            }
            StructureClass::Road => road::network(dim, nnz, seed),
            StructureClass::FixedPerRow => banded::circulant(dim, per_row, seed),
        }
    }
}

/// The twenty matrices of Table 4, in the paper's order.
pub const TABLE4: &[SuiteEntry] = &[
    SuiteEntry { name: "2cubes_sphere", dim: 101_492, nnz: 1_647_264, kind: "EM problem", class: StructureClass::Stencil3d },
    SuiteEntry { name: "amazon0312", dim: 400_727, nnz: 3_200_440, kind: "co-purchase network", class: StructureClass::PowerLaw },
    SuiteEntry { name: "ca-CondMat", dim: 23_133, nnz: 186_936, kind: "condensed matter", class: StructureClass::PowerLawSymmetric },
    SuiteEntry { name: "cage12", dim: 130_228, nnz: 2_032_536, kind: "directed weighted graph", class: StructureClass::Stencil3d },
    SuiteEntry { name: "cit-Patents", dim: 3_774_768, nnz: 16_518_948, kind: "patent citation network", class: StructureClass::PowerLaw },
    SuiteEntry { name: "cop20k_A", dim: 121_192, nnz: 2_624_331, kind: "accelerator design", class: StructureClass::Banded },
    SuiteEntry { name: "email-Enron", dim: 36_692, nnz: 367_662, kind: "Enron email network", class: StructureClass::PowerLawSymmetric },
    SuiteEntry { name: "facebook", dim: 4_039, nnz: 176_468, kind: "friendship network", class: StructureClass::PowerLawSymmetric },
    SuiteEntry { name: "filter3D", dim: 106_437, nnz: 2_707_179, kind: "reduction problem", class: StructureClass::Banded },
    SuiteEntry { name: "m133-b3", dim: 200_200, nnz: 800_800, kind: "combinatorial problem", class: StructureClass::FixedPerRow },
    SuiteEntry { name: "mario002", dim: 389_874, nnz: 2_101_242, kind: "2D/3D problem", class: StructureClass::Stencil3d },
    SuiteEntry { name: "offshore", dim: 259_789, nnz: 4_242_673, kind: "EM problem", class: StructureClass::Stencil3d },
    SuiteEntry { name: "p2p-Gnutella31", dim: 62_586, nnz: 147_892, kind: "p2p network", class: StructureClass::PowerLaw },
    SuiteEntry { name: "patents_main", dim: 240_547, nnz: 560_943, kind: "directed weighted graph", class: StructureClass::PowerLaw },
    SuiteEntry { name: "poisson3Da", dim: 13_514, nnz: 352_762, kind: "fluid dynamics", class: StructureClass::Stencil3d },
    SuiteEntry { name: "roadNet-CA", dim: 1_971_281, nnz: 5_533_214, kind: "road network", class: StructureClass::Road },
    SuiteEntry { name: "scircuit", dim: 170_998, nnz: 958_936, kind: "circuit simulation", class: StructureClass::Banded },
    SuiteEntry { name: "webbase-1M", dim: 1_000_005, nnz: 3_105_536, kind: "directed weighted graph", class: StructureClass::PowerLaw },
    SuiteEntry { name: "web-Google", dim: 916_428, nnz: 5_105_039, kind: "Google web graph", class: StructureClass::PowerLaw },
    SuiteEntry { name: "wiki-Vote", dim: 8_297, nnz: 103_689, kind: "Wikipedia network", class: StructureClass::PowerLaw },
];

/// Looks up a Table 4 entry by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<&'static SuiteEntry> {
    TABLE4.iter().find(|e| e.name.eq_ignore_ascii_case(name))
}

/// One matrix of the bundled fetch-free `.mtx` corpus.
///
/// Unlike the [`TABLE4`] stand-ins — which are *synthesized* to match a
/// SuiteSparse matrix's shape — these are genuine Matrix Market files baked
/// into the binary at compile time (`crates/gen/fixtures/`), exercising the
/// real `.mtx` parse path (general and symmetric storage, duplicate
/// coalescing) with zero network or filesystem dependencies. They are small
/// SuiteSparse-like structures: bands, a grid Laplacian, hub graphs,
/// cliques, unstructured scatter, and a triangular solve pattern. The DSE
/// `suite`-kind workload axis resolves fixture names through
/// [`fixture_by_name`] before falling back to the synthesized stand-ins.
#[derive(Debug, Clone)]
pub struct FixtureEntry {
    /// Corpus name (file stem under `crates/gen/fixtures/`).
    pub name: &'static str,
    /// Structure-class note, in the spirit of Table 4's "kind" column.
    pub kind: &'static str,
    /// The raw Matrix Market file contents.
    pub mtx: &'static str,
}

impl FixtureEntry {
    /// Parses the embedded `.mtx` into CSR (symmetric storage expanded,
    /// duplicates coalesced). Infallible for the bundled corpus — the
    /// embedded files are validated by this crate's tests.
    ///
    /// # Panics
    ///
    /// Panics if the embedded bytes are not valid Matrix Market data,
    /// which would be a build-time corruption of the corpus.
    pub fn load(&self) -> Csr {
        outerspace_sparse::io::read_coo(self.mtx.as_bytes())
            .unwrap_or_else(|e| panic!("bundled fixture {} is corrupt: {e}", self.name))
            .to_csr()
    }
}

/// The bundled fixture corpus, alphabetical by name.
pub const FIXTURES: &[FixtureEntry] = &[
    FixtureEntry {
        name: "band96",
        kind: "tridiagonal + distance-8 couplings (circuit-style)",
        mtx: include_str!("../fixtures/band96.mtx"),
    },
    FixtureEntry {
        name: "grid100",
        kind: "5-point 2-D grid Laplacian (symmetric storage)",
        mtx: include_str!("../fixtures/grid100.mtx"),
    },
    FixtureEntry {
        name: "kite48",
        kind: "dense 12-clique head with a sparse tail chain",
        mtx: include_str!("../fixtures/kite48.mtx"),
    },
    FixtureEntry {
        name: "ringhubs128",
        kind: "ring lattice with two broadcast hubs (heavy-tailed)",
        mtx: include_str!("../fixtures/ringhubs128.mtx"),
    },
    FixtureEntry {
        name: "scatter120",
        kind: "LCG-scattered fill plus full diagonal (unstructured)",
        mtx: include_str!("../fixtures/scatter120.mtx"),
    },
    FixtureEntry {
        name: "triband64",
        kind: "lower-triangular widening band (solver-style)",
        mtx: include_str!("../fixtures/triband64.mtx"),
    },
];

/// Looks up a bundled fixture by (case-insensitive) name.
pub fn fixture_by_name(name: &str) -> Option<&'static FixtureEntry> {
    FIXTURES.iter().find(|e| e.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_sparse::stats;

    #[test]
    fn table4_has_twenty_entries() {
        assert_eq!(TABLE4.len(), 20);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("WIKI-vote").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn stand_ins_match_nnz_within_tolerance() {
        // Run the small matrices at full scale, big ones scaled down.
        for e in TABLE4 {
            let scale = (e.dim / 20_000).max(1);
            let m = e.generate_scaled(scale, 42);
            let target = (e.nnz / scale as usize) as f64;
            let ratio = m.nnz() as f64 / target;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "{}: realized nnz ratio {ratio:.2} (got {}, want ~{})",
                e.name,
                m.nnz(),
                target
            );
            // Grid-based stand-ins round the dimension up to a full grid.
            let dim_ratio = m.nrows() as f64 / (e.dim / scale) as f64;
            assert!(
                (1.0..1.1).contains(&dim_ratio),
                "{}: dimension ratio {dim_ratio:.3}",
                e.name
            );
        }
    }

    #[test]
    fn regular_standins_are_diagonal_heavy() {
        let filter3d = by_name("filter3D").unwrap().generate_scaled(8, 1);
        let p = stats::profile(&filter3d);
        assert!(p.diagonal_fraction > 0.75, "filter3D frac {}", p.diagonal_fraction);
    }

    #[test]
    fn powerlaw_standins_are_skewed() {
        let enron = by_name("email-Enron").unwrap().generate(1);
        let p = stats::profile(&enron);
        assert!(p.row_gini > 0.5, "email-Enron gini {}", p.row_gini);
    }

    #[test]
    fn m133_b3_has_exactly_four_per_row() {
        let e = by_name("m133-b3").unwrap();
        let m = e.generate_scaled(16, 3);
        for r in 0..m.nrows() {
            assert_eq!(m.row_nnz(r), 4);
        }
    }

    #[test]
    fn nnz_per_row_matches_table() {
        let e = by_name("facebook").unwrap();
        assert!((e.nnz_per_row() - 43.7).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "collapses")]
    fn over_scaling_panics() {
        let e = by_name("facebook").unwrap();
        let _ = e.generate_scaled(10_000, 0);
    }

    #[test]
    fn fixtures_parse_square_and_nonempty() {
        assert_eq!(FIXTURES.len(), 6);
        for f in FIXTURES {
            let m = f.load();
            assert_eq!(m.nrows(), m.ncols(), "{} not square", f.name);
            assert!(m.nnz() > 100, "{} suspiciously empty ({} nnz)", f.name, m.nnz());
            assert!(m.nrows() >= 48, "{} too small ({})", f.name, m.nrows());
        }
    }

    #[test]
    fn fixture_loads_are_deterministic() {
        let a = fixture_by_name("ringhubs128").unwrap().load();
        let b = fixture_by_name("RINGHUBS128").unwrap().load();
        assert_eq!(a.row_ptr(), b.row_ptr());
        assert_eq!(a.col_indices(), b.col_indices());
        assert_eq!(a.values(), b.values());
        assert!(fixture_by_name("missing").is_none());
    }

    #[test]
    fn symmetric_fixture_expands_to_general() {
        // grid100 ships in lower-triangular symmetric storage; the loader
        // must mirror it into a structurally symmetric general matrix.
        let m = fixture_by_name("grid100").unwrap().load();
        assert_eq!(m.nrows(), 100);
        let mc = m.to_csc();
        for i in 0..m.nrows() {
            assert_eq!(m.row_nnz(i), mc.col_nnz(i), "row/col {i} asymmetric");
        }
    }
}
