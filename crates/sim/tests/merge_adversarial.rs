//! Merge-phase timing model under adversarial intermediate layouts.
//!
//! The in-tree merge tests drive the model through `simulate_multiply`, so
//! the chunk layouts they exercise are always "reasonable". Here the
//! [`IntermediateLayout`] is constructed directly, which lets the tests pin
//! down degenerate shapes the multiply phase rarely produces: rows with no
//! chunks at all, fan-in made of single-element chunks, every chunk of a row
//! colliding on the same output entries, zero-length chunks, and seeded
//! random layouts far outside the generator envelope.

use outerspace_gen::{Rng, SmallRng};
use outerspace_sim::layout::{IntermediateLayout, ELEM_BYTES};
use outerspace_sim::phases::merge::{simulate_merge, RowMergeInfo};
use outerspace_sim::OuterSpaceConfig;

/// Row info for a row whose chunks hold `elems` total entries merging down
/// to `out` output entries (the rest are index collisions).
fn info(elems: u64, out: u32) -> RowMergeInfo {
    RowMergeInfo { out_len: out, collisions: (elems as u32).saturating_sub(out) }
}

#[test]
fn sparse_row_population_skips_empty_rows() {
    // 1 row in 16 has work; empty rows must cost nothing and not confuse
    // dispatch accounting.
    let mut layout = IntermediateLayout::new(256);
    let mut rows = vec![RowMergeInfo::default(); 256];
    for i in (0..256u32).step_by(16) {
        layout.alloc_chunk(i, 8);
        layout.alloc_chunk(i, 8);
        rows[i as usize] = info(16, 12);
    }
    let cfg = OuterSpaceConfig::default();
    let stats = simulate_merge(&cfg, &layout, &rows).unwrap();
    assert_eq!(stats.work_items, 16, "only populated rows are dispatched");
    assert_eq!(stats.flops, 16 * 4);
    assert!(stats.cycles > 0);
}

#[test]
fn single_element_chunk_fanin_beyond_head_capacity() {
    // One row made of 400 one-element chunks: fan-in far beyond the 170-head
    // scratchpad, with the pathological chunk-to-data ratio (every head
    // element is also the whole chunk). Must trigger the recursive sub-merge
    // and re-read intermediate runs.
    let cfg = OuterSpaceConfig::default();
    let fanin = 400u32;
    assert!(fanin as usize > cfg.merge_head_capacity());
    let mut layout = IntermediateLayout::new(1);
    for _ in 0..fanin {
        layout.alloc_chunk(0, 1);
    }
    let rows = vec![info(fanin as u64, fanin)]; // all-distinct indices
    let stats = simulate_merge(&cfg, &layout, &rows).unwrap();
    assert_eq!(stats.flops, 0, "distinct indices collide nowhere");
    // Sub-merge traffic: the 400 elements are read, written as runs, and
    // read again, so traffic exceeds one pass over the arena.
    assert!(
        stats.hbm_read_bytes > layout.total_elements() * ELEM_BYTES,
        "recursive sub-merge must re-read intermediate runs (read {} bytes)",
        stats.hbm_read_bytes
    );
}

#[test]
fn all_rows_collide_to_single_entry() {
    // Every chunk of every row lands on the same output index: maximum
    // collision count, minimum output. Exercises the flops accounting at
    // its upper extreme.
    let mut layout = IntermediateLayout::new(32);
    let mut rows = Vec::new();
    for i in 0..32u32 {
        for _ in 0..8 {
            layout.alloc_chunk(i, 4);
        }
        rows.push(info(32, 1)); // 32 entries merge into 1
    }
    let cfg = OuterSpaceConfig::default();
    let stats = simulate_merge(&cfg, &layout, &rows).unwrap();
    assert_eq!(stats.flops, 32 * 31);
    assert_eq!(stats.work_items, 32);
    // Output writes shrink to one entry per row; reads still cover the arena.
    assert!(stats.hbm_read_bytes >= layout.total_elements() * ELEM_BYTES / 2);
}

#[test]
fn zero_length_chunks_are_tolerated() {
    // The multiply model never allocates empty chunks, but the layout type
    // permits them; the merge loader must skip them without issuing reads
    // for zero bytes or panicking on address arithmetic.
    let mut layout = IntermediateLayout::new(4);
    layout.alloc_chunk(0, 0);
    layout.alloc_chunk(0, 5);
    layout.alloc_chunk(0, 0);
    layout.alloc_chunk(2, 0);
    let rows =
        vec![info(5, 5), RowMergeInfo::default(), info(0, 0), RowMergeInfo::default()];
    let cfg = OuterSpaceConfig::default();
    let stats = simulate_merge(&cfg, &layout, &rows).unwrap();
    // Row 0 has data; row 2 is all-empty chunks but still dispatches.
    assert_eq!(stats.work_items, 2);
    assert!(stats.cycles > 0);
}

#[test]
fn seeded_random_layouts_uphold_invariants() {
    // Random layouts across three orders of magnitude of fan-in and chunk
    // size: the model must stay panic-free and keep its accounting
    // identities regardless of shape.
    let cfg = OuterSpaceConfig::default();
    for case in 0..24u64 {
        let mut rng = SmallRng::seed_from_u64(0x3e5a_11f0 ^ case);
        let nrows = rng.gen_range(1u32..64);
        let mut layout = IntermediateLayout::new(nrows);
        let mut rows = Vec::with_capacity(nrows as usize);
        let mut want_flops = 0u64;
        for i in 0..nrows {
            let nchunks = rng.gen_range(0u32..40);
            let mut elems = 0u64;
            for _ in 0..nchunks {
                let len = rng.gen_range(0u32..30);
                layout.alloc_chunk(i, len);
                elems += len as u64;
            }
            let out = if elems == 0 { 0 } else { rng.gen_range(1u64..=elems) as u32 };
            rows.push(info(elems, out));
            if nchunks > 0 {
                want_flops += elems - out as u64;
            }
        }
        let stats = simulate_merge(&cfg, &layout, &rows).unwrap();
        assert_eq!(stats.flops, want_flops, "case {case}");
        let populated = (0..nrows).filter(|&i| !layout.row(i).is_empty()).count() as u64;
        assert_eq!(stats.work_items, populated, "case {case}");
        assert!(stats.active_pes <= 64, "case {case}: merge uses worker pairs only");
        // Determinism: the same layout simulates to the same cycle count.
        let again = simulate_merge(&cfg, &layout, &rows).unwrap();
        assert_eq!(stats.cycles, again.cycles, "case {case}");
    }
}

#[test]
fn submerge_layouts_survive_pe_kills() {
    // Deep fan-in plus PE kills: the recursive sub-merge path must also
    // requeue dead workers' rows instead of hanging or failing spuriously.
    let cfg_base = OuterSpaceConfig::default();
    let mut layout = IntermediateLayout::new(8);
    let mut rows = Vec::new();
    for i in 0..8u32 {
        for _ in 0..256 {
            layout.alloc_chunk(i, 2);
        }
        rows.push(info(512, 300));
    }
    let clean = simulate_merge(&cfg_base, &layout, &rows).unwrap();
    let mut cfg = OuterSpaceConfig::default();
    cfg.faults.seed = 5;
    cfg.faults.pe_kill_count = 16; // a quarter of the 64 worker pairs
    cfg.faults.pe_kill_cycle = 100;
    let faulty = simulate_merge(&cfg, &layout, &rows).unwrap();
    // Kills are reaped lazily: only condemned workers whose clocks actually
    // crossed the kill cycle die observably, and with 8 rows over 64 workers
    // many condemned workers stay idle at cycle 0 forever.
    assert!(
        faulty.killed_pes > 0 && faulty.killed_pes <= 16,
        "expected 1..=16 observed deaths, got {}",
        faulty.killed_pes
    );
    assert_eq!(faulty.flops, clean.flops, "kills must not change the work");
    assert!(faulty.cycles >= clean.cycles, "fewer workers cannot be faster");
}
