//! Ad-hoc wall-clock profile of the interval estimator's cost components
//! against a full model run. Ignored by default: timing assertions don't
//! belong in CI; run manually with
//! `cargo test --release -p outerspace-sim --test interval_profile -- --ignored --nocapture`.

use std::time::Instant;

use outerspace_gen::{powerlaw, rmat, uniform};
use outerspace_outer as outer;
use outerspace_sim::interval::{estimate_spgemm, IntervalOpts, NoAbortProbe};
use outerspace_sim::{MachineKind, OuterSpaceConfig};
use outerspace_sparse::Csr;

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64() * 1e3)
}

#[test]
#[ignore = "wall-clock profiling aid, not a correctness test"]
fn profile_interval_components() {
    let n = 1024;
    let nnz = 16000;
    let mats: Vec<(&str, Csr)> = vec![
        ("rmat", rmat::graph500(n, nnz, 42)),
        ("uniform", uniform::matrix(n, n, nnz, 42)),
        ("powerlaw", powerlaw::graph(n, nnz, 42)),
    ];
    let opts = IntervalOpts::default();
    for machine in [MachineKind::OuterSpace, MachineKind::SpArch] {
        for (name, a) in &mats {
            let cfg = OuterSpaceConfig { machine, ..OuterSpaceConfig::default() };
            let (_, func_ms) = time(|| {
                let (a_cc, _) = outer::csr_to_csc_via_outer(a);
                let (pp, _) = outer::multiply(&a_cc, a).unwrap();
                outer::merge(pp, outer::MergeKind::Streaming)
            });
            let (_, sparch_plan_ms) =
                time(|| outer::spgemm_sparch_with_plan(a, a, 16).unwrap());
            let (full, full_ms) =
                time(|| outerspace_sim::model::for_kind(machine).spgemm(&cfg, a, a).unwrap());
            let (est, est_ms) =
                time(|| estimate_spgemm(&cfg, a, a, &opts, &mut NoAbortProbe).unwrap());
            let full_cyc = full.convert.as_ref().map_or(0, |s| s.cycles)
                + full.multiply.cycles
                + full.merge.cycles;
            let phase_ratio = |e: u64, f: u64| e as f64 / f.max(1) as f64;
            println!(
                "{machine:?} {name}: full {full_ms:.1}ms | est {est_ms:.1}ms ({:.1}x) | \
                 func {func_ms:.1}ms sparch_plan {sparch_plan_ms:.1}ms | \
                 est/full cycles {:.3} [conv {:.2} mult {:.2} merge {:.2}; \
                 full split c/m/g {}/{}/{}]",
                full_ms / est_ms,
                est.report.total_cycles() as f64 / full_cyc as f64,
                phase_ratio(
                    est.report.convert.as_ref().map_or(0, |s| s.cycles),
                    full.convert.as_ref().map_or(0, |s| s.cycles),
                ),
                phase_ratio(est.report.multiply.cycles, full.multiply.cycles),
                phase_ratio(est.report.merge.cycles, full.merge.cycles),
                full.convert.as_ref().map_or(0, |s| s.cycles),
                full.multiply.cycles,
                full.merge.cycles,
            );
        }
    }
}
