//! Golden cycle-regression snapshots.
//!
//! Each scenario runs a fixed-seed workload through the public simulator
//! entry points and pins the resulting [`PhaseStats`] (cycles plus the
//! per-level hit/traffic counters) against numbers captured from the seed
//! timing model. Cycle counts may drift by at most 0.5%; the functional
//! counters (hits, misses, bytes, flops, work items) are scheduling-order
//! dependent only through cache state, so they get the same tolerance.
//!
//! If a deliberate timing-model change moves these numbers, re-capture by
//! running with `GOLDEN_CAPTURE=1 cargo test -p outerspace-sim --test
//! golden_cycles -- --nocapture` and paste the printed tables.

use outerspace_gen::{rmat, uniform, vector};
use outerspace_sim::{MachineKind, OuterSpaceConfig, PhaseStats, Simulator};

/// One pinned phase snapshot.
#[derive(Debug, Clone, Copy)]
struct Golden {
    cycles: u64,
    l0_hits: u64,
    l0_misses: u64,
    l1_hits: u64,
    l1_misses: u64,
    hbm_read_bytes: u64,
    hbm_write_bytes: u64,
    flops: u64,
    work_items: u64,
}

const DRIFT: f64 = 0.005;

fn capture_mode() -> bool {
    std::env::var("GOLDEN_CAPTURE").is_ok_and(|v| v == "1")
}

fn print_golden(scenario: &str, phase: &str, s: &PhaseStats) {
    println!(
        "({scenario}/{phase}) Golden {{ cycles: {}, l0_hits: {}, l0_misses: {}, \
         l1_hits: {}, l1_misses: {}, hbm_read_bytes: {}, hbm_write_bytes: {}, \
         flops: {}, work_items: {} }},",
        s.cycles,
        s.l0_hits,
        s.l0_misses,
        s.l1_hits,
        s.l1_misses,
        s.hbm_read_bytes,
        s.hbm_write_bytes,
        s.flops,
        s.work_items
    );
}

fn assert_close(scenario: &str, phase: &str, field: &str, got: u64, want: u64) {
    let tol = (want as f64 * DRIFT).max(0.0);
    let drift = (got as f64 - want as f64).abs();
    assert!(
        drift <= tol,
        "{scenario}/{phase}: {field} drifted beyond 0.5%: got {got}, golden {want} \
         (|Δ| = {drift}, tolerance {tol:.1})"
    );
}

fn check(scenario: &str, phase: &str, s: &PhaseStats, g: &Golden) {
    if capture_mode() {
        print_golden(scenario, phase, s);
        return;
    }
    assert_close(scenario, phase, "cycles", s.cycles, g.cycles);
    assert_close(scenario, phase, "l0_hits", s.l0_hits, g.l0_hits);
    assert_close(scenario, phase, "l0_misses", s.l0_misses, g.l0_misses);
    assert_close(scenario, phase, "l1_hits", s.l1_hits, g.l1_hits);
    assert_close(scenario, phase, "l1_misses", s.l1_misses, g.l1_misses);
    assert_close(scenario, phase, "hbm_read_bytes", s.hbm_read_bytes, g.hbm_read_bytes);
    assert_close(scenario, phase, "hbm_write_bytes", s.hbm_write_bytes, g.hbm_write_bytes);
    assert_close(scenario, phase, "flops", s.flops, g.flops);
    assert_close(scenario, phase, "work_items", s.work_items, g.work_items);
}

fn sim() -> Simulator {
    Simulator::new(OuterSpaceConfig::default()).expect("default config valid")
}

fn sparch_sim() -> Simulator {
    let cfg =
        OuterSpaceConfig { machine: MachineKind::SpArch, ..OuterSpaceConfig::default() };
    Simulator::new(cfg).expect("SpArch config valid")
}

/// Symmetric R-MAT product: conversion skipped, multiply + merge pinned.
#[test]
fn golden_rmat_spgemm() {
    let g = rmat::graph500(512, 8000, 4);
    let (_, rep) = sim().spgemm(&g, &g).unwrap();
    assert!(rep.convert.is_none(), "graph500 input is symmetric");
    check(
        "rmat_spgemm",
        "multiply",
        &rep.multiply,
        &Golden {
            cycles: 99152,
            l0_hits: 125313,
            l0_misses: 11150,
            l1_hits: 7325,
            l1_misses: 3825,
            hbm_read_bytes: 244800,
            hbm_write_bytes: 8095744,
            flops: 627471,
            work_items: 9357,
        },
    );
    check(
        "rmat_spgemm",
        "merge",
        &rep.merge,
        &Golden {
            cycles: 224343,
            l0_hits: 19,
            l0_misses: 129389,
            l1_hits: 27,
            l1_misses: 129362,
            hbm_read_bytes: 8279168,
            hbm_write_bytes: 1779328,
            flops: 497054,
            work_items: 461,
        },
    );
}

/// Asymmetric uniform product: all three SpGEMM phases pinned.
#[test]
fn golden_uniform_spgemm() {
    let a = uniform::matrix(384, 384, 6000, 7);
    let b = uniform::matrix(384, 384, 6000, 11);
    let (_, rep) = sim().spgemm(&a, &b).unwrap();
    let conv = rep.convert.expect("uniform input is asymmetric");
    check(
        "uniform_spgemm",
        "convert",
        &conv,
        &Golden {
            cycles: 4538,
            l0_hits: 264,
            l0_misses: 2706,
            l1_hits: 456,
            l1_misses: 2250,
            hbm_read_bytes: 144000,
            hbm_write_bytes: 190080,
            flops: 0,
            work_items: 6000,
        },
    );
    check(
        "uniform_spgemm",
        "multiply",
        &rep.multiply,
        &Golden {
            cycles: 20038,
            l0_hits: 25744,
            l0_misses: 4255,
            l1_hits: 1771,
            l1_misses: 2484,
            hbm_read_bytes: 158976,
            hbm_write_bytes: 1484736,
            flops: 93625,
            work_items: 6000,
        },
    );
    check(
        "uniform_spgemm",
        "merge",
        &rep.merge,
        &Golden {
            cycles: 28074,
            l0_hits: 5,
            l0_misses: 23194,
            l1_hits: 134,
            l1_misses: 23060,
            hbm_read_bytes: 1475840,
            hbm_write_bytes: 857472,
            flops: 24059,
            work_items: 384,
        },
    );
}

/// Outer-product SpMV: both passes fold into one report; multiply + merge
/// phases pinned.
#[test]
fn golden_spmv() {
    let a = uniform::matrix(1024, 1024, 16384, 8).to_csc();
    let x = vector::sparse(1024, 0.1, 9);
    let (_, rep) = sim().spmv(&a, &x).unwrap();
    check(
        "spmv",
        "multiply",
        &rep.multiply,
        &Golden {
            cycles: 825,
            l0_hits: 102,
            l0_misses: 431,
            l1_hits: 0,
            l1_misses: 431,
            hbm_read_bytes: 27584,
            hbm_write_bytes: 25536,
            flops: 1641,
            work_items: 102,
        },
    );
    check(
        "spmv",
        "merge",
        &rep.merge,
        &Golden {
            cycles: 512,
            l0_hits: 0,
            l0_misses: 360,
            l1_hits: 60,
            l1_misses: 300,
            hbm_read_bytes: 19200,
            hbm_write_bytes: 13824,
            flops: 821,
            work_items: 820,
        },
    );
}

/// SpArch machine model on the symmetric R-MAT workload: condensed multiply
/// and merge tree pinned. Same operands as `golden_rmat_spgemm`, so any
/// cross-machine drift shows up side by side.
#[test]
fn golden_sparch_rmat_spgemm() {
    let g = rmat::graph500(512, 8000, 4);
    let (_, rep) = sparch_sim().spgemm(&g, &g).unwrap();
    assert!(rep.convert.is_none(), "SpArch never charges conversion");
    check(
        "sparch_rmat",
        "multiply",
        &rep.multiply,
        &Golden {
            cycles: 147408,
            l0_hits: 59366,
            l0_misses: 76339,
            l1_hits: 12072,
            l1_misses: 64267,
            hbm_read_bytes: 4113088,
            hbm_write_bytes: 8090048,
            flops: 627471,
            work_items: 9357,
        },
    );
    check(
        "sparch_rmat",
        "merge",
        &rep.merge,
        &Golden {
            cycles: 435057,
            l0_hits: 39,
            l0_misses: 127693,
            l1_hits: 18,
            l1_misses: 127675,
            hbm_read_bytes: 8171200,
            hbm_write_bytes: 2194240,
            flops: 497054,
            work_items: 5,
        },
    );
}

/// SpArch machine model on the asymmetric uniform workload: no conversion
/// phase exists (SpArch consumes CSR directly), unlike the OuterSPACE pin
/// for the same operands.
#[test]
fn golden_sparch_uniform_spgemm() {
    let a = uniform::matrix(384, 384, 6000, 7);
    let b = uniform::matrix(384, 384, 6000, 11);
    let (_, rep) = sparch_sim().spgemm(&a, &b).unwrap();
    assert!(rep.convert.is_none(), "SpArch never charges conversion");
    check(
        "sparch_uniform",
        "multiply",
        &rep.multiply,
        &Golden {
            cycles: 12251,
            l0_hits: 7607,
            l0_misses: 21652,
            l1_hits: 6666,
            l1_misses: 14986,
            hbm_read_bytes: 959104,
            hbm_write_bytes: 0,
            flops: 93625,
            work_items: 6000,
        },
    );
    check(
        "sparch_uniform",
        "merge",
        &rep.merge,
        &Golden {
            cycles: 36458,
            l0_hits: 0,
            l0_misses: 0,
            l1_hits: 0,
            l1_misses: 0,
            hbm_read_bytes: 0,
            hbm_write_bytes: 834816,
            flops: 24059,
            work_items: 1,
        },
    );
}

/// N-way element-wise sum riding the merge datapath.
#[test]
fn golden_elementwise() {
    let mats: Vec<_> =
        (0..4).map(|s| uniform::matrix(256, 256, 3000, 20 + s)).collect();
    let refs: Vec<&_> = mats.iter().collect();
    let (_, rep) = sim().elementwise_sum(&refs).unwrap();
    check(
        "elementwise",
        "merge",
        &rep.merge,
        &Golden {
            cycles: 3688,
            l0_hits: 0,
            l0_misses: 3219,
            l1_hits: 946,
            l1_misses: 2273,
            hbm_read_bytes: 145472,
            hbm_write_bytes: 149504,
            flops: 790,
            work_items: 256,
        },
    );
}
