//! Record → replay round-trip determinism for `sim::trace`.
//!
//! The DSE trace-replay tier caches recorded traces on disk and replays
//! them from worker threads, so the whole chain — record, JSON round-trip,
//! replay — must be byte-for-byte reproducible across runs and across
//! thread counts. These tests pin that contract.

use outerspace_gen::{rmat, uniform};
use outerspace_sim::trace::{record_multiply, replay_multiply, MultiplyTrace};
use outerspace_sim::{OuterSpaceConfig, PhaseStats};
use outerspace_sparse::Csr;

fn operands() -> Vec<(&'static str, Csr)> {
    vec![
        ("uniform", uniform::matrix(192, 192, 2200, 42)),
        ("rmat", rmat::graph500(256, 3000, 7)),
    ]
}

/// Recording the same operands twice yields identical traces, and replaying
/// a trace reproduces the recording run's stats exactly on the same config.
#[test]
fn record_is_deterministic_and_replay_matches_recording() {
    let cfg = OuterSpaceConfig::default();
    for (name, a) in operands() {
        let a_cc = a.to_csc();
        let (live1, _, t1) = record_multiply(&cfg, &a_cc, &a).unwrap();
        let (live2, _, t2) = record_multiply(&cfg, &a_cc, &a).unwrap();
        assert_eq!(
            t1.to_json().to_string_compact(),
            t2.to_json().to_string_compact(),
            "{name}: two recordings diverged"
        );
        assert_eq!(live1, live2, "{name}: live stats diverged between runs");
        let r1 = replay_multiply(&cfg, &t1);
        let r2 = replay_multiply(&cfg, &t2);
        assert_eq!(r1, r2, "{name}: replays of identical traces diverged");
        // Replay reproduces the live run's performance counters exactly;
        // only the stall/idle *attribution* fields differ (the live engine
        // reports those through CycleBreakdown instead).
        assert_eq!(r1.cycles, live1.cycles, "{name}: cycles");
        assert_eq!(r1.flops, live1.flops, "{name}: flops");
        assert_eq!(r1.hbm_read_bytes, live1.hbm_read_bytes, "{name}: hbm reads");
        assert_eq!(r1.hbm_write_bytes, live1.hbm_write_bytes, "{name}: hbm writes");
        assert_eq!(r1.l0_hits, live1.l0_hits, "{name}: l0 hits");
        assert_eq!(r1.l0_misses, live1.l0_misses, "{name}: l0 misses");
        assert_eq!(r1.l1_hits, live1.l1_hits, "{name}: l1 hits");
        assert_eq!(r1.l1_misses, live1.l1_misses, "{name}: l1 misses");
        assert_eq!(r1.work_items, live1.work_items, "{name}: work items");
        assert_eq!(r1.busy_pe_cycles, live1.busy_pe_cycles, "{name}: busy cycles");
    }
}

/// The JSON round-trip is lossless: a trace serialized and re-parsed
/// replays to byte-identical `PhaseStats`.
#[test]
fn json_round_trip_preserves_replay() {
    let cfg = OuterSpaceConfig::default();
    let a = rmat::graph500(256, 3000, 11);
    let a_cc = a.to_csc();
    let (_, _, trace) = record_multiply(&cfg, &a_cc, &a).unwrap();
    let json = trace.to_json().to_string_compact();
    let parsed =
        MultiplyTrace::from_json(&outerspace_json::parse(&json).unwrap()).unwrap();
    assert_eq!(parsed.chunk_count(), trace.chunk_count());
    assert_eq!(parsed.total_macs(), trace.total_macs());
    let a1 = replay_multiply(&cfg, &trace);
    let a2 = replay_multiply(&cfg, &parsed);
    assert_eq!(format!("{a1:?}"), format!("{a2:?}"));
}

/// Replaying one shared trace from many threads concurrently — the DSE
/// sweep's access pattern — produces byte-identical `PhaseStats` on every
/// thread, including on what-if configs that differ from the recording one.
#[test]
fn replay_is_identical_across_thread_counts() {
    let base = OuterSpaceConfig::default();
    let a = uniform::matrix(192, 192, 2200, 23);
    let a_cc = a.to_csc();
    let (_, _, trace) = record_multiply(&base, &a_cc, &a).unwrap();
    let what_if = OuterSpaceConfig {
        hbm_channels: base.hbm_channels * 2,
        l0_multiply_bytes: base.l0_multiply_bytes / 2,
        ..base.clone()
    };

    for cfg in [&base, &what_if] {
        let reference = replay_multiply(cfg, &trace);
        for n_threads in [1usize, 2, 4, 8] {
            let results: Vec<PhaseStats> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..n_threads)
                    .map(|_| s.spawn(|| replay_multiply(cfg, &trace)))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for r in &results {
                assert_eq!(
                    format!("{r:?}"),
                    format!("{reference:?}"),
                    "replay diverged at {n_threads} threads"
                );
            }
        }
    }
}
