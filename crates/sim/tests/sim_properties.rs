//! Property-based tests over the simulator's primitives: cache behaviour,
//! timeline monotonicity, channel bandwidth conservation, and end-to-end
//! determinism.

use proptest::prelude::*;

use outerspace_sim::machine::PeTimeline;
use outerspace_sim::mem::{CacheModel, MemorySystem};
use outerspace_sim::{OuterSpaceConfig, Simulator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A block accessed twice in a row always hits the second time.
    #[test]
    fn cache_immediate_rereference_hits(blocks in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut c = CacheModel::new(16 * 1024, 4, 64);
        for b in blocks {
            let _ = c.access(b);
            prop_assert!(c.access(b), "block {b} must hit immediately after access");
        }
    }

    /// LRU with W ways retains the last W distinct blocks of a set.
    #[test]
    fn cache_retains_ways_most_recent(set_blocks in proptest::collection::vec(0u64..4, 1..50)) {
        // One-set cache (4 blocks, 4 ways): any 4 distinct blocks all fit.
        let mut c = CacheModel::new(256, 4, 64);
        let mut seen = Vec::new();
        for &b in &set_blocks {
            let _ = c.access(b);
            seen.retain(|&x| x != b);
            seen.push(b);
        }
        // Everything in the (<=4-entry) recency window must still hit.
        for &b in seen.iter().rev().take(4) {
            prop_assert!(c.access(b), "recent block {b} evicted too early");
        }
    }

    /// PE timelines never move backwards, and busy time never exceeds
    /// elapsed time.
    #[test]
    fn pe_timeline_is_monotone(ops in proptest::collection::vec((0u8..4, 0u64..1000), 1..300)) {
        let mut pe = PeTimeline::new(8);
        let mut prev = 0u64;
        for (kind, arg) in ops {
            match kind {
                0 => { let _ = pe.issue(); }
                1 => pe.track(arg),
                2 => pe.advance(arg % 64),
                _ => pe.wait_until(arg),
            }
            prop_assert!(pe.time >= prev, "time went backwards");
            prop_assert!(pe.busy <= pe.time, "busy {} > time {}", pe.busy, pe.time);
            prev = pe.time;
        }
        pe.drain();
        prop_assert!(pe.time >= prev);
    }

    /// Reads complete no earlier than their issue time plus the L0 hit
    /// latency, and counters account for every access.
    #[test]
    fn memory_reads_respect_causality(addrs in proptest::collection::vec(0u64..1_000_000, 1..300)) {
        let cfg = OuterSpaceConfig::default();
        let mut mem = MemorySystem::for_multiply(&cfg);
        let mut now = 0u64;
        let mut n = 0u64;
        for addr in addrs {
            let (done, _) = mem.read((addr % 16) as usize, addr, now);
            prop_assert!(done >= now + cfg.l0_hit_cycles, "completion before issue");
            now += 1;
            n += 1;
        }
        let c = mem.take_counters();
        prop_assert_eq!(c.l0_hits + c.l0_misses, n);
        prop_assert_eq!(c.l1_hits + c.l1_misses, c.l0_misses);
        prop_assert_eq!(c.hbm_read_bytes, c.l1_misses * 64);
    }

    /// End-to-end bandwidth conservation: a simulated phase can never move
    /// meaningfully more bytes than the HBM's peak rate times its makespan
    /// (small overshoot allowed for the bounded backfill window).
    #[test]
    fn simulated_runs_conserve_bandwidth(seed in 0u64..40, nnz in 200usize..3000) {
        let a = outerspace_gen::uniform::matrix(256, 256, nnz, seed);
        let sim = Simulator::new(OuterSpaceConfig::default()).unwrap();
        let (_, rep) = sim.spgemm(&a, &a).unwrap();
        for phase in [&rep.multiply, &rep.merge] {
            let util = phase.bandwidth_utilization(&rep.config);
            prop_assert!(util <= 1.15, "utilization {util} breaks conservation");
        }
    }

    /// The simulator is a pure function of (config, inputs).
    #[test]
    fn simulation_is_deterministic(seed in 0u64..40) {
        let a = outerspace_gen::uniform::matrix(128, 128, 900, seed);
        let sim = Simulator::new(OuterSpaceConfig::default()).unwrap();
        let (c1, r1) = sim.spgemm(&a, &a).unwrap();
        let (c2, r2) = sim.spgemm(&a, &a).unwrap();
        prop_assert_eq!(c1, c2);
        prop_assert_eq!(r1, r2);
    }

    /// Channel bookings under random arrival jitter stay work-conserving:
    /// total completions spread at least as wide as the per-channel service.
    #[test]
    fn channel_bookings_serialize_per_channel(arrivals in proptest::collection::vec(0u64..200, 2..100)) {
        let cfg = OuterSpaceConfig::default();
        let mut mem = MemorySystem::for_multiply(&cfg);
        // All to one channel (stride 16 blocks), distinct L0 domains so
        // every read misses to HBM.
        let mut completions: Vec<u64> = Vec::new();
        for (i, &t) in arrivals.iter().enumerate() {
            let addr = (i as u64) * 64 * 16 + 64 * 1024 * 1024;
            let (done, _) = mem.read(i % 16, addr, t);
            completions.push(done);
        }
        completions.sort_unstable();
        // n blocks on one channel need at least (n - window) * service time.
        let n = completions.len() as u64;
        let service = cfg.hbm_cycles_per_block() as u64;
        let span = completions.last().unwrap() - completions.first().unwrap();
        let window = 96; // BACKFILL_WINDOW_SLOTS
        if n > window + 1 {
            prop_assert!(span >= (n - window - 1) * service, "span {span} too tight for {n} blocks");
        }
    }
}
