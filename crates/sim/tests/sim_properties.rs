//! Property tests over the simulator's primitives: cache behaviour,
//! timeline monotonicity, channel bandwidth conservation, and end-to-end
//! determinism.
//!
//! Randomized inputs come from the in-repo [`SmallRng`] over a fixed seed
//! range (no external property-testing framework), so every case is
//! reproducible from its loop index.

use outerspace_gen::{Rng, SmallRng};
use outerspace_sim::machine::PeTimeline;
use outerspace_sim::mem::{CacheModel, MemorySystem};
use outerspace_sim::{OuterSpaceConfig, Simulator};

const CASES: u64 = 48;

fn rng_for(case: u64) -> SmallRng {
    SmallRng::seed_from_u64(0x51b3_7a11 ^ case)
}

fn random_vec(rng: &mut SmallRng, len_range: std::ops::Range<usize>, max: u64) -> Vec<u64> {
    let n = rng.gen_range(len_range.start..len_range.end);
    (0..n).map(|_| rng.gen_range(0u64..max)).collect()
}

/// A block accessed twice in a row always hits the second time.
#[test]
fn cache_immediate_rereference_hits() {
    for case in 0..CASES {
        let mut rng = rng_for(case);
        let blocks = random_vec(&mut rng, 1..200, 10_000);
        let mut c = CacheModel::new(16 * 1024, 4, 64);
        for b in blocks {
            let _ = c.access(b);
            assert!(c.access(b), "block {b} must hit immediately after access");
        }
    }
}

/// LRU with W ways retains the last W distinct blocks of a set.
#[test]
fn cache_retains_ways_most_recent() {
    for case in 0..CASES {
        let mut rng = rng_for(case);
        let set_blocks = random_vec(&mut rng, 1..50, 4);
        // One-set cache (4 blocks, 4 ways): any 4 distinct blocks all fit.
        let mut c = CacheModel::new(256, 4, 64);
        let mut seen = Vec::new();
        for &b in &set_blocks {
            let _ = c.access(b);
            seen.retain(|&x| x != b);
            seen.push(b);
        }
        // Everything in the (<=4-entry) recency window must still hit.
        for &b in seen.iter().rev().take(4) {
            assert!(c.access(b), "recent block {b} evicted too early");
        }
    }
}

/// PE timelines never move backwards, and busy time never exceeds elapsed
/// time.
#[test]
fn pe_timeline_is_monotone() {
    for case in 0..CASES {
        let mut rng = rng_for(case);
        let n_ops = rng.gen_range(1usize..300);
        let mut pe = PeTimeline::new(8);
        let mut prev = 0u64;
        for _ in 0..n_ops {
            let kind = rng.gen_range(0u32..4);
            let arg = rng.gen_range(0u64..1000);
            match kind {
                0 => {
                    let _ = pe.issue();
                }
                1 => pe.track(arg),
                2 => pe.advance(arg % 64),
                _ => pe.wait_until(arg),
            }
            assert!(pe.time >= prev, "time went backwards");
            assert!(pe.busy <= pe.time, "busy {} > time {}", pe.busy, pe.time);
            prev = pe.time;
        }
        pe.drain();
        assert!(pe.time >= prev);
    }
}

/// Reads complete no earlier than their issue time plus the L0 hit latency,
/// and counters account for every access.
#[test]
fn memory_reads_respect_causality() {
    for case in 0..CASES {
        let mut rng = rng_for(case);
        let addrs = random_vec(&mut rng, 1..300, 1_000_000);
        let cfg = OuterSpaceConfig::default();
        let mut mem = MemorySystem::for_multiply(&cfg);
        let mut n = 0u64;
        for (now, addr) in addrs.into_iter().enumerate() {
            let now = now as u64;
            let (done, _) = mem.read((addr % 16) as usize, addr, now);
            assert!(done >= now + cfg.l0_hit_cycles, "completion before issue");
            n += 1;
        }
        let c = mem.take_counters();
        assert_eq!(c.l0_hits + c.l0_misses, n);
        assert_eq!(c.l1_hits + c.l1_misses, c.l0_misses);
        assert_eq!(c.hbm_read_bytes, c.l1_misses * 64);
    }
}

/// End-to-end bandwidth conservation: a simulated phase can never move
/// meaningfully more bytes than the HBM's peak rate times its makespan
/// (small overshoot allowed for the bounded backfill window).
#[test]
fn simulated_runs_conserve_bandwidth() {
    for seed in 0..40u64 {
        let mut rng = rng_for(seed);
        let nnz = rng.gen_range(200usize..3000);
        let a = outerspace_gen::uniform::matrix(256, 256, nnz, seed);
        let sim = Simulator::new(OuterSpaceConfig::default()).unwrap();
        let (_, rep) = sim.spgemm(&a, &a).unwrap();
        for phase in [&rep.multiply, &rep.merge] {
            let util = phase.bandwidth_utilization(&rep.config);
            assert!(util <= 1.15, "utilization {util} breaks conservation");
        }
    }
}

/// The simulator is a pure function of (config, inputs).
#[test]
fn simulation_is_deterministic() {
    for seed in 0..40u64 {
        let a = outerspace_gen::uniform::matrix(128, 128, 900, seed);
        let sim = Simulator::new(OuterSpaceConfig::default()).unwrap();
        let (c1, r1) = sim.spgemm(&a, &a).unwrap();
        let (c2, r2) = sim.spgemm(&a, &a).unwrap();
        assert_eq!(c1, c2);
        assert_eq!(r1, r2);
    }
}

/// Channel bookings under random arrival jitter stay work-conserving:
/// total completions spread at least as wide as the per-channel service.
#[test]
fn channel_bookings_serialize_per_channel() {
    for case in 0..CASES {
        let mut rng = rng_for(case);
        let n_arrivals = rng.gen_range(2usize..100);
        let arrivals: Vec<u64> = (0..n_arrivals).map(|_| rng.gen_range(0u64..200)).collect();
        let cfg = OuterSpaceConfig::default();
        let mut mem = MemorySystem::for_multiply(&cfg);
        // All to one channel (stride 16 blocks), distinct L0 domains so
        // every read misses to HBM.
        let mut completions: Vec<u64> = Vec::new();
        for (i, &t) in arrivals.iter().enumerate() {
            let addr = (i as u64) * 64 * 16 + 64 * 1024 * 1024;
            let (done, _) = mem.read(i % 16, addr, t);
            completions.push(done);
        }
        completions.sort_unstable();
        // n blocks on one channel need at least (n - window) * service time.
        let n = completions.len() as u64;
        let service = cfg.hbm_cycles_per_block() as u64;
        let span = completions.last().unwrap() - completions.first().unwrap();
        let window = 96; // BACKFILL_WINDOW_SLOTS
        if n > window + 1 {
            assert!(span >= (n - window - 1) * service, "span {span} too tight for {n} blocks");
        }
    }
}
