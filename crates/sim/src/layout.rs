//! Simulated address-space layout.
//!
//! The simulator assigns disjoint address regions to the operand matrices,
//! the Fig. 2 intermediate structure, and the result. Blocks interleave
//! across HBM pseudo-channels by address, so the layout determines channel
//! load balance exactly as it would in hardware. Chunks of the intermediate
//! are bump-allocated in creation order — the paper's static region plus
//! spillover stack collapse to one contiguous arena here, since the timing
//! difference (the spillover atomic) is modeled separately in
//! [`crate::alloc`].

use outerspace_sparse::Index;

/// Bytes per stored element: double-precision value + 32-bit index (§5.3's
/// "12 B per access for double-precision value and index pair").
pub const ELEM_BYTES: u64 = 12;

/// Base address of matrix `A`'s element data.
pub const A_BASE: u64 = 0x0000_0000_0000;
/// Base address of matrix `B`'s element data.
pub const B_BASE: u64 = 0x1000_0000_0000;
/// Base address of `A`'s column-pointer array.
pub const A_PTR_BASE: u64 = 0x2000_0000_0000;
/// Base address of `B`'s row-pointer array.
pub const B_PTR_BASE: u64 = 0x2100_0000_0000;
/// Base address of the vector operand (SpMV).
pub const X_BASE: u64 = 0x2200_0000_0000;
/// Base address of the intermediate partial-product arena.
pub const INTER_BASE: u64 = 0x3000_0000_0000;
/// Base address of merge-phase intermediate (recursive sub-merge) buffers.
pub const SCRATCH_BASE: u64 = 0x4000_0000_0000;
/// Base address of the result matrix.
pub const OUT_BASE: u64 = 0x5000_0000_0000;

/// A chunk of the intermediate structure: one outer product's contribution
/// to one result row, resident at `addr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkRef {
    /// Simulated byte address of the chunk's first element.
    pub addr: u64,
    /// Elements in the chunk.
    pub len: u32,
}

/// The simulated placement of the whole intermediate structure: per result
/// row, the chunks the multiply phase produced (in production order).
#[derive(Debug, Clone)]
pub struct IntermediateLayout {
    rows: Vec<Vec<ChunkRef>>,
    bump: u64,
}

impl IntermediateLayout {
    /// An empty layout for `nrows` result rows.
    pub fn new(nrows: Index) -> Self {
        IntermediateLayout { rows: vec![Vec::new(); nrows as usize], bump: INTER_BASE }
    }

    /// Allocates a chunk of `len` elements for row `i`, returning its
    /// address.
    pub fn alloc_chunk(&mut self, i: Index, len: u32) -> u64 {
        let addr = self.bump;
        self.bump += len as u64 * ELEM_BYTES;
        self.rows[i as usize].push(ChunkRef { addr, len });
        addr
    }

    /// The chunks of row `i`.
    pub fn row(&self, i: Index) -> &[ChunkRef] {
        &self.rows[i as usize]
    }

    /// Number of result rows.
    pub fn nrows(&self) -> Index {
        self.rows.len() as Index
    }

    /// Total elements across all chunks.
    pub fn total_elements(&self) -> u64 {
        self.rows.iter().flatten().map(|c| c.len as u64).sum()
    }

    /// Total bytes occupied by the intermediate arena.
    pub fn arena_bytes(&self) -> u64 {
        self.bump - INTER_BASE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_are_contiguous_in_allocation_order() {
        let mut l = IntermediateLayout::new(4);
        let a0 = l.alloc_chunk(2, 10);
        let a1 = l.alloc_chunk(0, 3);
        assert_eq!(a0, INTER_BASE);
        assert_eq!(a1, INTER_BASE + 10 * ELEM_BYTES);
        assert_eq!(l.row(2), &[ChunkRef { addr: a0, len: 10 }]);
        assert_eq!(l.total_elements(), 13);
        assert_eq!(l.arena_bytes(), 13 * ELEM_BYTES);
    }

    #[test]
    fn regions_do_not_overlap() {
        let bases =
            [A_BASE, B_BASE, A_PTR_BASE, B_PTR_BASE, X_BASE, INTER_BASE, SCRATCH_BASE, OUT_BASE];
        for w in bases.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
