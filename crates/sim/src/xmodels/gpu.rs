//! Analytic model of the NVIDIA K40 + cuSPARSE/CUSP baselines (Table 3).

use outerspace_baselines::esc::EscStats;
use outerspace_baselines::hash::HashStats;
use outerspace_sparse::Csr;

use crate::engine::UtilizationShares;

/// Ratio of the heaviest output row's elementary products to the mean — the
/// warp load-imbalance input to [`GpuModel::cusparse_time`]. Power-law
/// matrices score in the hundreds; uniform matrices near 1.
pub fn row_imbalance(a: &Csr, b: &Csr) -> f64 {
    let mut max_p = 0u64;
    let mut total = 0u64;
    for i in 0..a.nrows() {
        let (cols, _) = a.row(i);
        let p: u64 = cols.iter().map(|&k| b.row_nnz(k) as u64).sum();
        max_p = max_p.max(p);
        total += p;
    }
    if total == 0 {
        return 1.0;
    }
    max_p as f64 / (total as f64 / a.nrows().max(1) as f64)
}

/// SIMT roofline model: memory bandwidth with per-pattern coalescing
/// efficiency, compute with per-pattern SIMD (warp) efficiency capturing the
/// divergence serialization of §4.4.2, per-row scheduling overhead, and
/// kernel-launch latency.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuModel {
    /// CUDA cores.
    pub cores: u32,
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// Peak memory bandwidth in GB/s.
    pub mem_bw_gbps: f64,
    /// Warp width (lockstep granularity).
    pub warp: u32,
    /// Kernel launch overhead in microseconds.
    pub launch_us: f64,
    /// Per-output-row overhead in nanoseconds (row scheduling, hash-table
    /// setup in cuSPARSE).
    pub row_overhead_ns: f64,
    /// Aggregate scattered-access throughput in giga-accesses/s: the rate at
    /// which latency-bound, uncoalesced reads/updates retire once occupancy
    /// is exhausted. Hash probes and random gathers are charged here.
    pub scatter_gaps: f64,
    /// End-to-end sort throughput in giga-triples/s for the ESC sort step,
    /// calibrated to published thrust/CUSP sort rates on Kepler (the sort is
    /// run as multiple key passes plus a stable value shuffle, so this is
    /// well below raw bandwidth).
    pub sort_gtps: f64,
}

/// Predicted phase split of a GPU SpGEMM, seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GpuTime {
    /// Expansion / multiply-side time.
    pub expand: f64,
    /// Sort / merge-side time.
    pub merge: f64,
    /// Fixed overheads (launches).
    pub overhead: f64,
    /// Seconds of `expand + merge` where the memory/latency side of the
    /// roofline binds (recorded by the constructors when each `max` is
    /// taken) — the GPU analog of the engine's stall cycles.
    pub mem_bound: f64,
}

impl GpuTime {
    /// Total predicted seconds.
    pub fn total(&self) -> f64 {
        self.expand + self.merge + self.overhead
    }

    /// Maps the prediction onto the engine's utilization-share axes: the
    /// memory/latency-bound kernel seconds are memory, launch and
    /// scheduling overheads are idle (no kernel resident), the rest —
    /// compute and divergence serialization — is busy.
    pub fn shares(&self) -> UtilizationShares {
        let total = self.total();
        if total <= 0.0 {
            return UtilizationShares::default();
        }
        let memory = (self.mem_bound / total).clamp(0.0, 1.0);
        let idle = (self.overhead / total).clamp(0.0, 1.0 - memory);
        UtilizationShares { busy: (1.0 - memory - idle).max(0.0), memory, idle }
    }
}

impl GpuModel {
    /// The paper's GPU: Tesla K40, 2880 CUDA cores @ 745 MHz, 288 GB/s
    /// GDDR5 (Table 3).
    pub fn tesla_k40() -> Self {
        GpuModel {
            cores: 2880,
            freq_ghz: 0.745,
            mem_bw_gbps: 288.0,
            warp: 32,
            launch_us: 10.0,
            row_overhead_ns: 40.0,
            scatter_gaps: 0.6,
            sort_gtps: 0.18,
        }
    }

    /// Warp load-imbalance penalty: rows are mapped to warps, so a hub row
    /// serializes its warp while the rest idle. `imbalance` is the ratio of
    /// the heaviest row's elementary products to the mean; the penalty
    /// saturates at the warp width (a fully serialized warp).
    fn imbalance_penalty(&self, imbalance: f64) -> f64 {
        imbalance.max(1.0).sqrt().clamp(1.0, self.warp as f64 / 2.0)
    }

    fn mem_seconds(&self, bytes: f64, coalescing: f64) -> f64 {
        bytes / (self.mem_bw_gbps * 1e9 * coalescing)
    }

    fn compute_seconds(&self, ops: f64, warp_efficiency: f64) -> f64 {
        ops / (self.cores as f64 * self.freq_ghz * 1e9 * warp_efficiency)
    }

    /// Predicted CUSP (expansion–sort–compression) time from the ESC
    /// analog's counters.
    ///
    /// Expansion streams coalesced; the sort is a multi-pass radix over the
    /// 16 B triples (bandwidth-heavy); compression is a segmented scan. The
    /// paper's Fig. 4 finding — merge-side dominates at low density because
    /// of branch divergence — appears here as the sort's low warp efficiency
    /// and extra passes.
    pub fn cusp_time(&self, stats: &EscStats, n_rows: u64) -> GpuTime {
        // ESC is insensitive to row imbalance (§10: CUSP is "insensitive to
        // the irregularity of sparse matrices"): the triple buffer is sorted
        // globally, so no imbalance penalty applies here.
        let triples = stats.expanded_triples as f64;
        let expand_bytes = stats.traffic.bytes_touched as f64 + 16.0 * triples;
        let expand_mem = self.mem_seconds(expand_bytes, 0.55);
        let expand_cmp = self.compute_seconds(triples, 0.5);
        let expand = expand_mem.max(expand_cmp);
        // Radix sort over the (row, col) keys — CUSP sorts the triple
        // buffer by row and again (stably) by column, so the staging
        // traffic is ~5 pass-equivalents. Bandwidth floor plus the
        // calibrated end-to-end sort rate, whichever binds; either way the
        // sort is a memory-system operation, never ALU-bound.
        let sort_bytes = 2.0 * 5.0 * 16.0 * triples;
        let sort = self
            .mem_seconds(sort_bytes, 0.45)
            .max(triples / (self.sort_gtps * 1e9));
        // Compression: segmented reduction with divergent segment ends.
        let compress_mem = self.mem_seconds(16.0 * triples, 0.45);
        let compress_cmp = self.compute_seconds(triples, 0.125);
        let compress = compress_mem.max(compress_cmp);
        GpuTime {
            expand,
            merge: sort + compress,
            overhead: 6.0 * self.launch_us * 1e-6 + n_rows as f64 * 2e-9,
            mem_bound: sort
                + if expand_mem >= expand_cmp { expand } else { 0.0 }
                + if compress_mem >= compress_cmp { compress } else { 0.0 },
        }
    }

    /// Predicted cuSPARSE (row-parallel hash) time from the hash analog's
    /// counters.
    ///
    /// Hash probes are scatter/gather (poorly coalesced) and
    /// collision-chain control flow diverges within warps; each output row
    /// pays a scheduling/table-setup cost — which is why cuSPARSE improves
    /// with *density* (more work per row, Fig. 6) and degrades on irregular
    /// matrices (Fig. 7).
    pub fn cusparse_time(&self, stats: &HashStats, n_rows: u64, imbalance: f64) -> GpuTime {
        let expand_mem = self.mem_seconds(stats.traffic.bytes_touched as f64, 0.40);
        let expand_cmp = self.compute_seconds(stats.traffic.multiplies as f64, 0.5);
        let expand = expand_mem.max(expand_cmp);
        // Hash probes are latency-bound scattered accesses; hub rows
        // serialize their warps on top of that (the penalty scales the
        // bound side, so it stays with that side's attribution).
        let t_scatter = stats.probes as f64 / (self.scatter_gaps * 1e9);
        let probe_cmp = self.compute_seconds(stats.probes as f64, 0.125);
        let merge = t_scatter.max(probe_cmp) * self.imbalance_penalty(imbalance);
        GpuTime {
            expand,
            merge,
            overhead: 2.0 * self.launch_us * 1e-6
                + n_rows as f64 * self.row_overhead_ns * 1e-9,
            mem_bound: (if expand_mem >= expand_cmp { expand } else { 0.0 })
                + if t_scatter >= probe_cmp { merge } else { 0.0 },
        }
    }

    /// Predicted time for the paper's own CUDA outer-product port (§4.4.2,
    /// Fig. 4): the multiply phase streams beautifully, but the merge
    /// phase's data-dependent branches serialize within warps ("many threads
    /// within a given warp diverge and must be executed serially").
    ///
    /// `multiply_bytes`/`products` describe the multiply phase;
    /// `merge_elems` is the intermediate element count and `avg_fanin` the
    /// mean chunks per row.
    pub fn outer_product_time(
        &self,
        multiply_bytes: u64,
        products: u64,
        merge_elems: u64,
        avg_fanin: f64,
    ) -> GpuTime {
        let expand_mem =
            self.mem_seconds(multiply_bytes as f64 + 12.0 * products as f64, 0.55);
        let expand_cmp = self.compute_seconds(products as f64, 0.5);
        let expand = expand_mem.max(expand_cmp);
        // Merge: each element's insertion branches on comparisons; with
        // fan-in f, roughly log2(f) divergent branches per element, executed
        // at ~1/warp efficiency. On top of that, the k-way merge is a
        // sorting-class operation — dependent scattered refills plus warp
        // serialization cap it at the same end-to-end rate as CUSP's sort
        // (slightly worse: the comparisons diverge where radix digits do
        // not). This is the paper's Fig. 4 negative result: "the SIMD
        // nature of the GPU's processing elements prevent an overall win".
        let branches = merge_elems as f64 * (avg_fanin.max(2.0)).log2();
        let merge_mem = self.mem_seconds(2.0 * 12.0 * merge_elems as f64, 0.30);
        let merge_cmp = self.compute_seconds(branches, 1.0 / self.warp as f64);
        let merge_sort = 1.15 * merge_elems as f64 / (self.sort_gtps * 1e9);
        let merge = merge_mem.max(merge_cmp).max(merge_sort);
        // Divergent branch serialization is execution, not a memory stall;
        // the bandwidth floor and the sort-class rate cap are.
        GpuTime {
            expand,
            merge,
            overhead: 4.0 * self.launch_us * 1e-6,
            mem_bound: (if expand_mem >= expand_cmp { expand } else { 0.0 })
                + if merge_cmp >= merge_mem.max(merge_sort) { 0.0 } else { merge },
        }
    }

    /// Predicted cuSPARSE SpMV time: the whole matrix is streamed; compute
    /// scales with the vector density (§7.2). CSR-scalar SpMV sustains only
    /// ~20 % of peak bandwidth on Kepler (one thread walks each row, so
    /// consecutive threads read strided addresses).
    pub fn spmv_time(&self, matrix_bytes: u64, macs: u64, n_rows: u64) -> f64 {
        let t = self
            .mem_seconds(matrix_bytes as f64, 0.20)
            .max(self.compute_seconds(macs as f64, 0.25));
        t + self.launch_us * 1e-6 + n_rows as f64 * 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_baselines::{esc, hash};
    use outerspace_gen::uniform;

    #[test]
    fn merge_dominates_cusp_at_low_density() {
        // Fig. 4's headline: the sort/compress side dwarfs expansion.
        let a = uniform::matrix(4096, 4096, 50_000, 1);
        let (_, stats) = esc::spgemm(&a, &a).unwrap();
        let t = GpuModel::tesla_k40().cusp_time(&stats, 4096);
        assert!(t.merge > t.expand, "merge {} <= expand {}", t.merge, t.expand);
    }

    #[test]
    fn cusparse_improves_with_density() {
        // Fig. 6: cuSPARSE performs better as density rises (same nnz,
        // smaller dimension).
        let k40 = GpuModel::tesla_k40();
        let sparse = uniform::matrix(8192, 8192, 60_000, 2);
        let dense = uniform::matrix(1024, 1024, 60_000, 2);
        let (_, s1) = hash::spgemm(&sparse, &sparse).unwrap();
        let (_, s2) = hash::spgemm(&dense, &dense).unwrap();
        let t1 = k40.cusparse_time(&s1, 8192, row_imbalance(&sparse, &sparse)).total();
        let t2 = k40.cusparse_time(&s2, 1024, row_imbalance(&dense, &dense)).total();
        let f1 = s1.traffic.flops() as f64 / t1;
        let f2 = s2.traffic.flops() as f64 / t2;
        assert!(f2 > f1, "denser should achieve higher flop rate");
    }

    #[test]
    fn sub_gflops_at_very_low_density() {
        // §2: "fewer than 1 GFLOPS" below 0.1% density on synthetic loads.
        let a = uniform::matrix(65_536, 65_536, 1_000_000 / 4, 3); // ~0.006%
        let (_, stats) = hash::spgemm(&a, &a).unwrap();
        let t = GpuModel::tesla_k40().cusparse_time(&stats, 65_536, row_imbalance(&a, &a)).total();
        let gflops = stats.traffic.flops() as f64 / t / 1e9;
        assert!(gflops < 1.0, "got {gflops} GFLOPS");
    }

    #[test]
    fn outer_product_merge_is_divergence_bound() {
        let k40 = GpuModel::tesla_k40();
        let t = k40.outer_product_time(12_000_000, 1_000_000, 16_000_000, 16.0);
        assert!(t.merge > t.expand);
    }

    #[test]
    fn shares_are_a_partition_of_total_time() {
        let a = uniform::matrix(4096, 4096, 50_000, 1);
        let (_, stats) = esc::spgemm(&a, &a).unwrap();
        let t = GpuModel::tesla_k40().cusp_time(&stats, 4096);
        let s = t.shares();
        assert!((s.busy + s.memory + s.idle - 1.0).abs() < 1e-12);
        assert!(s.memory > 0.0, "the sort side is always memory-bound");
        assert!(s.idle > 0.0, "launch overhead must surface as idle");
        assert!(t.mem_bound <= t.expand + t.merge);
        assert_eq!(GpuTime::default().shares(), UtilizationShares::default());
    }

    #[test]
    fn spmv_scales_with_matrix_size() {
        let k40 = GpuModel::tesla_k40();
        let t1 = k40.spmv_time(12_000_000, 1_000_000, 65_536);
        let t2 = k40.spmv_time(120_000_000, 10_000_000, 65_536);
        assert!(t2 > 5.0 * t1);
    }
}
