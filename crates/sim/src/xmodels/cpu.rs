//! Analytic model of the Xeon E5-1650V4 + MKL baseline (Table 3).

use outerspace_baselines::TrafficStats;

use crate::engine::UtilizationShares;

/// The decomposed terms of [`CpuModel::spgemm_seconds`]: the four time
/// components in seconds plus the dimensionless cache-thrash multiplier.
/// [`CpuPhaseTimes::total`] recombines them with the exact overlap formula
/// the scalar entry point has always used, so timing one workload through
/// either path yields the same number.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuPhaseTimes {
    /// DRAM streaming time (after LLC residency discounting).
    pub t_mem: f64,
    /// Raw multiply/add time across the cores.
    pub t_compute: f64,
    /// Accumulator gather-scatter latency (the term that keeps MKL's
    /// bandwidth utilization below peak, Table 1).
    pub t_acc: f64,
    /// Per-output-row bookkeeping time.
    pub t_rows: f64,
    /// Cache-thrash multiplier (≥ 1) applied to the overlapped core terms.
    pub thrash: f64,
}

impl CpuPhaseTimes {
    /// Total predicted seconds: compute and memory overlap imperfectly on
    /// an OoO core, the latency-bound accumulator term does not overlap,
    /// and row bookkeeping rides after the thrash-scaled core time.
    pub fn total(&self) -> f64 {
        (self.t_mem.max(self.t_compute) + 0.3 * self.t_mem.min(self.t_compute)
            + self.t_acc)
            * self.thrash
            + self.t_rows
    }

    /// Maps the terms onto the engine's utilization-share axes. Pure flop
    /// and row-bookkeeping time is busy; everything else — DRAM streaming,
    /// accumulator latency, thrash-induced re-reads — is memory. The model
    /// has no idle component: an OoO core always has an instruction to
    /// retire or a miss to wait on.
    pub fn shares(&self) -> UtilizationShares {
        let total = self.total();
        if total <= 0.0 {
            return UtilizationShares::default();
        }
        // `total >= t_compute + t_rows` holds because `thrash >= 1`, so the
        // memory share is never negative.
        let busy = ((self.t_compute + self.t_rows) / total).min(1.0);
        UtilizationShares { busy, memory: 1.0 - busy, idle: 0.0 }
    }
}

/// Roofline-style CPU model: compute rate, DRAM bandwidth with an
/// efficiency factor, LLC residency discounting, and per-row overhead.
///
/// # Example
///
/// ```
/// use outerspace_sim::xmodels::CpuModel;
///
/// let xeon = CpuModel::xeon_e5_1650_v4();
/// assert_eq!(xeon.cores, 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CpuModel {
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// Physical cores used.
    pub cores: u32,
    /// Sustained useful flops per cycle per core on sparse kernels. MKL's
    /// SpGEMM gathers/scatters defeat most of AVX, so this is far below the
    /// peak 16 DP flops/cycle.
    pub flops_per_cycle: f64,
    /// Peak DRAM bandwidth in GB/s.
    pub mem_bw_gbps: f64,
    /// Fraction of peak bandwidth sparse streams sustain.
    pub mem_efficiency: f64,
    /// Last-level cache in bytes (reused rows of `B` may live here).
    pub llc_bytes: u64,
    /// Per-output-row bookkeeping overhead in nanoseconds (row pointer
    /// chasing, accumulator reset).
    pub row_overhead_ns: f64,
}

impl CpuModel {
    /// The paper's CPU: Xeon E5-1650V4, 3.6 GHz, 6 cores, ~60 GB/s DDR4,
    /// 15 MB LLC (Table 3).
    pub fn xeon_e5_1650_v4() -> Self {
        CpuModel {
            freq_ghz: 3.6,
            cores: 6,
            flops_per_cycle: 1.0,
            mem_bw_gbps: 60.0,
            mem_efficiency: 0.62, // Table 1's measured average utilization
            llc_bytes: 15 * 1024 * 1024,
            row_overhead_ns: 30.0,
        }
    }

    /// Predicted MKL SpGEMM time in seconds, from the traffic counters of
    /// the Gustavson analog plus the structure of the operands.
    ///
    /// Beyond the roofline terms, the model charges each elementary product
    /// one accumulator access: Gustavson's scatter into an `ncols`-wide
    /// dense accumulator hits L2 / LLC / DRAM depending on the output-row
    /// width, and this gather-scatter latency — not raw bandwidth — is what
    /// keeps MKL's measured bandwidth utilization at 44–62 % (Table 1).
    ///
    /// `b_bytes` is the size of `B`'s data (reused rows may be LLC
    /// resident); `out_cols` the result's column count (accumulator width);
    /// `n_rows` the number of output rows; `regularity` in [0, 1] expresses
    /// how diagonal/banded the matrix is (regular matrices keep both their
    /// reused rows and their accumulator working set cache-resident; the
    /// paper's filter3D/roadNet cases).
    pub fn spgemm_seconds(
        &self,
        traffic: &TrafficStats,
        b_bytes: u64,
        out_cols: u64,
        n_rows: u64,
        regularity: f64,
    ) -> f64 {
        self.spgemm_times(traffic, b_bytes, out_cols, n_rows, regularity).total()
    }

    /// The decomposed terms behind [`CpuModel::spgemm_seconds`] — same
    /// inputs, same math, but the components stay visible so harnesses can
    /// report a busy/memory split ([`CpuPhaseTimes::shares`]) alongside the
    /// accelerator's [`crate::engine::CycleBreakdown`].
    pub fn spgemm_times(
        &self,
        traffic: &TrafficStats,
        b_bytes: u64,
        out_cols: u64,
        n_rows: u64,
        regularity: f64,
    ) -> CpuPhaseTimes {
        let reg = regularity.clamp(0.0, 1.0);
        // Fraction of B the LLC can retain; regular access patterns make the
        // retained fraction effective, irregular ones thrash (§4.4.3's
        // explanation of why large CPU caches matter for MKL).
        let resident = (self.llc_bytes as f64 / b_bytes.max(1) as f64).min(1.0);
        let hit_discount = 0.95 * resident.max(reg * 0.8);
        let dram_bytes = traffic.bytes_touched as f64 * (1.0 - hit_discount.min(0.95));
        let t_mem = dram_bytes / (self.mem_bw_gbps * 1e9 * self.mem_efficiency);
        let t_compute = traffic.flops() as f64
            / (self.cores as f64 * self.flops_per_cycle * self.freq_ghz * 1e9);
        // Accumulator scatter: per-product access latency tiered by where
        // the accumulator lives, discounted when regularity clusters the
        // touched columns.
        let acc_bytes = out_cols as f64 * 8.0;
        let acc_ns = if acc_bytes <= 256.0 * 1024.0 {
            8.0 // L2-resident
        } else if acc_bytes <= self.llc_bytes as f64 {
            25.0 // LLC-resident
        } else {
            100.0 // DRAM
        };
        let t_acc = traffic.multiplies as f64 * acc_ns * (1.0 - 0.5 * reg) * 1e-9
            / self.cores as f64;
        let t_rows = n_rows as f64 * self.row_overhead_ns * 1e-9 / self.cores as f64;
        // Cache-thrash penalty: §4.4.1 measures mean L2 hit rates of 0.14
        // for irregular sparse workloads — redundant re-reads whose working
        // set exceeds the LLC evict each other, degrading accesses toward
        // DRAM latency. Modeled as LLC pressure (touched bytes vs capacity)
        // gated by irregularity; regular banded patterns (`reg` -> 1)
        // prefetch cleanly and escape it.
        let pressure = (traffic.bytes_touched as f64 / self.llc_bytes as f64).min(3.0);
        let thrash = 1.0 + 1.2 * (1.0 - reg) * pressure;
        CpuPhaseTimes { t_mem, t_compute, t_acc, t_rows, thrash }
    }

    /// Predicted DRAM bandwidth utilization (achieved/peak) for the same
    /// SpGEMM the model times — the quantity Table 1 reports from VTune.
    /// Utilization is below 1 exactly because the latency-bound accumulator
    /// and thrash terms do not move bytes.
    pub fn spgemm_bandwidth_utilization(
        &self,
        traffic: &TrafficStats,
        b_bytes: u64,
        out_cols: u64,
        n_rows: u64,
        regularity: f64,
    ) -> f64 {
        let total = self.spgemm_seconds(traffic, b_bytes, out_cols, n_rows, regularity);
        let reg = regularity.clamp(0.0, 1.0);
        // Every miss moves a whole 64 B line for ~12 B of payload, so DRAM
        // traffic is line-amplified. Miss fractions follow residency: B rows
        // by LLC share, the accumulator by its own footprint.
        let resident_b = (self.llc_bytes as f64 / b_bytes.max(1) as f64).min(1.0);
        let miss_b = (1.0 - 0.95 * resident_b.max(reg * 0.8)).max(0.02);
        let acc_bytes = out_cols as f64 * 8.0;
        let miss_acc = if acc_bytes > self.llc_bytes as f64 {
            0.9
        } else if acc_bytes > 1.5 * 1024.0 * 1024.0 {
            0.25
        } else {
            0.02
        };
        let pressure = (traffic.bytes_touched as f64 / self.llc_bytes as f64).min(3.0);
        let thrash_amplification = 1.0 + 1.2 * (1.0 - reg) * pressure;
        let elems = traffic.bytes_touched as f64 / 12.0;
        let moved = 64.0
            * (traffic.multiplies as f64 * miss_acc + elems * miss_b)
            * thrash_amplification;
        ((moved / total) / (self.mem_bw_gbps * 1e9)).min(0.9)
    }

    /// Predicted MKL SpMV time in seconds. MKL treats the vector as dense
    /// (§7.2), so the whole matrix is streamed regardless of `x`'s density —
    /// a pure unit-stride stream, which sustains ~85 % of peak (unlike the
    /// gather-heavy SpGEMM).
    pub fn spmv_seconds(&self, matrix_bytes: u64, n_rows: u64) -> f64 {
        let t_mem = matrix_bytes as f64 / (self.mem_bw_gbps * 1e9 * 0.85);
        let t_rows = n_rows as f64 * self.row_overhead_ns * 1e-9 / self.cores as f64;
        t_mem + t_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traffic(bytes: u64, flops: u64) -> TrafficStats {
        TrafficStats {
            bytes_touched: bytes,
            bytes_written: 0,
            multiplies: flops / 2,
            additions: flops / 2,
        }
    }

    #[test]
    fn memory_bound_when_traffic_dominates() {
        let m = CpuModel::xeon_e5_1650_v4();
        let slow = m.spgemm_seconds(&traffic(10_000_000_000, 1_000_000), 1 << 30, 4096, 1000, 0.0);
        let fast = m.spgemm_seconds(&traffic(100_000_000, 1_000_000), 1 << 30, 4096, 1000, 0.0);
        assert!(slow > 10.0 * fast);
    }

    #[test]
    fn cache_resident_b_is_faster() {
        let m = CpuModel::xeon_e5_1650_v4();
        let big_b = m.spgemm_seconds(&traffic(1_000_000_000, 1_000_000), 1 << 30, 4096, 1000, 0.0);
        let small_b = m.spgemm_seconds(&traffic(1_000_000_000, 1_000_000), 1 << 20, 4096, 1000, 0.0);
        assert!(small_b < big_b);
    }

    #[test]
    fn regular_matrices_run_faster() {
        let m = CpuModel::xeon_e5_1650_v4();
        let irregular = m.spgemm_seconds(&traffic(1_000_000_000, 1_000_000), 1 << 30, 4096, 1000, 0.0);
        let regular = m.spgemm_seconds(&traffic(1_000_000_000, 1_000_000), 1 << 30, 4096, 1000, 1.0);
        assert!(regular < irregular * 0.5);
    }

    #[test]
    fn spmv_flat_in_vector_density() {
        // The model has no vector-density input at all: Table 5's constant
        // MKL performance is structural.
        let m = CpuModel::xeon_e5_1650_v4();
        let t = m.spmv_seconds(12_000_000, 65_536);
        assert!(t > 0.0);
    }

    #[test]
    fn decomposed_terms_recombine_to_the_scalar_time() {
        let m = CpuModel::xeon_e5_1650_v4();
        let t = traffic(1_000_000_000, 50_000_000);
        let times = m.spgemm_times(&t, 1 << 30, 4096, 1000, 0.3);
        assert_eq!(times.total(), m.spgemm_seconds(&t, 1 << 30, 4096, 1000, 0.3));
    }

    #[test]
    fn shares_sum_to_one_and_track_the_bound_resource() {
        let m = CpuModel::xeon_e5_1650_v4();
        // Traffic-heavy, flop-light: memory share dominates.
        let mem_bound =
            m.spgemm_times(&traffic(10_000_000_000, 1_000_000), 1 << 30, 1 << 24, 1000, 0.0);
        let s = mem_bound.shares();
        assert!((s.busy + s.memory + s.idle - 1.0).abs() < 1e-12);
        assert_eq!(s.idle, 0.0);
        assert!(s.memory > s.busy, "memory {} busy {}", s.memory, s.busy);
        // Flop-heavy, cache-resident: busy share grows.
        let cmp_bound =
            m.spgemm_times(&traffic(1_000_000, 10_000_000_000), 1 << 20, 32, 1000, 1.0);
        assert!(cmp_bound.shares().busy > s.busy);
    }

    #[test]
    fn row_overhead_matters_for_hypersparse() {
        let m = CpuModel::xeon_e5_1650_v4();
        let few_rows = m.spgemm_seconds(&traffic(1_000_000, 100_000), 1 << 20, 4096, 1_000, 0.0);
        let many_rows =
            m.spgemm_seconds(&traffic(1_000_000, 100_000), 1 << 20, 4096, 8_000_000, 0.0);
        assert!(many_rows > 5.0 * few_rows);
    }
}
