//! Analytic machine models of the paper's baseline hardware (Table 3).
//!
//! The paper measures real machines: a Xeon E5-1650V4 running Intel MKL and
//! an NVIDIA K40 running cuSPARSE/CUSP. Neither is available here, so these
//! first-order roofline models — compute rate, memory bandwidth with an
//! efficiency factor, per-row scheduling overhead, and (for the GPU) SIMT
//! divergence serialization — stand in for them. They consume the *measured
//! operation counts* of the re-implemented baseline algorithms
//! (`outerspace-baselines`), so the algorithmic term is exact and only the
//! hardware mapping is modeled. DESIGN.md §3 documents the substitution.

pub mod cpu;
pub mod gpu;

pub use cpu::CpuModel;
pub use gpu::GpuModel;
