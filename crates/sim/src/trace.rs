//! PE instruction traces — the paper's simulation methodology made explicit.
//!
//! §6: "We built an instruction trace generator for the PEs and ran the
//! generated traces through our gem5 model in order to process large
//! matrices." This module provides the same two artifacts for the multiply
//! phase:
//!
//! * [`record_multiply`] — runs the multiply-phase timing model while
//!   recording every PE work item (operand reads, MAC counts, chunk store)
//!   in dispatch order, producing a [`MultiplyTrace`];
//! * [`replay_multiply`] — re-times a recorded trace on a (possibly
//!   different) configuration without touching matrix data.
//!
//! Replaying on the *same* configuration reproduces the direct simulation
//! cycle-for-cycle (asserted in tests). Replaying on a different
//! configuration is a fast what-if study — note that the schedule is frozen
//! at recording time, so PE-count changes are not meaningful in replay;
//! cache, queue, latency and bandwidth changes are.
//!
//! Traces serialize to JSON through [`MultiplyTrace::to_json`] /
//! [`MultiplyTrace::from_json`], so they can be exported for external
//! analysis without any serialization dependency.

use outerspace_json::Json;
use outerspace_sparse::{Csc, Csr};

use crate::config::OuterSpaceConfig;
use crate::engine::{self, KernelObserver, PeCtx};
use crate::error::SimError;
use crate::layout::IntermediateLayout;
use crate::machine::PeArray;
use crate::mem::MemorySystem;
use crate::phases::collect_stats;
use crate::phases::multiply::{chunk_script, ChunkItem, MultiplyKernel};
use crate::stats::PhaseStats;

/// One entry of a multiply-phase trace, in global dispatch order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceRecord {
    /// A control-processor pointer-array read (scheduling stream).
    PtrRead {
        /// Tile whose L0 services the read.
        tile: u32,
        /// Byte address of the pointer entry.
        addr: u64,
    },
    /// One chunk computation on one PE: load an element of the column-of-A,
    /// stream the paired row-of-B, multiply, store the chunk.
    Chunk {
        /// Global PE index chosen by the greedy scheduler at record time.
        pe: u32,
        /// Tile (L0 domain) the PE belongs to.
        tile: u32,
        /// Address of the column-of-A element.
        a_addr: u64,
        /// Base address of the row-of-B.
        b_addr: u64,
        /// Bytes in the row-of-B (12 per element).
        b_bytes: u64,
        /// Elements in the row (MAC count).
        macs: u32,
        /// Destination address of the produced chunk.
        store_addr: u64,
    },
}

/// A recorded multiply phase: the dispatch-ordered record stream.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiplyTrace {
    /// Records in global dispatch order.
    pub records: Vec<TraceRecord>,
    /// The configuration active at record time.
    pub recorded_on: OuterSpaceConfig,
}

impl TraceRecord {
    fn to_json(&self) -> Json {
        match *self {
            TraceRecord::PtrRead { tile, addr } => Json::Obj(vec![
                ("kind".to_string(), Json::Str("ptr_read".to_string())),
                ("tile".to_string(), Json::UInt(tile as u64)),
                ("addr".to_string(), Json::UInt(addr)),
            ]),
            TraceRecord::Chunk { pe, tile, a_addr, b_addr, b_bytes, macs, store_addr } => {
                Json::Obj(vec![
                    ("kind".to_string(), Json::Str("chunk".to_string())),
                    ("pe".to_string(), Json::UInt(pe as u64)),
                    ("tile".to_string(), Json::UInt(tile as u64)),
                    ("a_addr".to_string(), Json::UInt(a_addr)),
                    ("b_addr".to_string(), Json::UInt(b_addr)),
                    ("b_bytes".to_string(), Json::UInt(b_bytes)),
                    ("macs".to_string(), Json::UInt(macs as u64)),
                    ("store_addr".to_string(), Json::UInt(store_addr)),
                ])
            }
        }
    }

    fn from_json(j: &Json) -> Option<TraceRecord> {
        let u = |key: &str| j.get(key).and_then(Json::as_u64);
        match j.get("kind")?.as_str()? {
            "ptr_read" => Some(TraceRecord::PtrRead { tile: u("tile")? as u32, addr: u("addr")? }),
            "chunk" => Some(TraceRecord::Chunk {
                pe: u("pe")? as u32,
                tile: u("tile")? as u32,
                a_addr: u("a_addr")?,
                b_addr: u("b_addr")?,
                b_bytes: u("b_bytes")?,
                macs: u("macs")? as u32,
                store_addr: u("store_addr")?,
            }),
            _ => None,
        }
    }
}

impl MultiplyTrace {
    /// Serializes the trace to a JSON value.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "records".to_string(),
                Json::Arr(self.records.iter().map(TraceRecord::to_json).collect()),
            ),
            ("recorded_on".to_string(), outerspace_json::ToJson::to_json(&self.recorded_on)),
        ])
    }

    /// Decodes a trace previously produced by [`MultiplyTrace::to_json`].
    /// Returns `None` on any missing or mistyped field.
    pub fn from_json(j: &Json) -> Option<MultiplyTrace> {
        let records = j
            .get("records")?
            .as_array()?
            .iter()
            .map(TraceRecord::from_json)
            .collect::<Option<Vec<_>>>()?;
        let recorded_on = OuterSpaceConfig::from_json(j.get("recorded_on")?)?;
        Some(MultiplyTrace { records, recorded_on })
    }
    /// Number of chunk work items in the trace.
    pub fn chunk_count(&self) -> usize {
        self.records.iter().filter(|r| matches!(r, TraceRecord::Chunk { .. })).count()
    }

    /// Total MACs across all chunks.
    pub fn total_macs(&self) -> u64 {
        self.records
            .iter()
            .map(|r| match r {
                TraceRecord::Chunk { macs, .. } => *macs as u64,
                TraceRecord::PtrRead { .. } => 0,
            })
            .sum()
    }
}

/// Observer that mirrors the engine's dispatch stream into trace records.
#[derive(Debug, Default)]
struct TraceObserver {
    records: Vec<TraceRecord>,
}

impl KernelObserver<ChunkItem> for TraceObserver {
    fn on_control_read(&mut self, group: usize, addr: u64) {
        self.records.push(TraceRecord::PtrRead { tile: group as u32, addr });
    }

    fn on_item(&mut self, pe: usize, group: usize, item: &ChunkItem) {
        self.records.push(TraceRecord::Chunk {
            pe: pe as u32,
            tile: group as u32,
            a_addr: item.a_addr,
            b_addr: item.b_addr,
            b_bytes: item.b_bytes,
            macs: item.macs as u32,
            store_addr: item.store_addr,
        });
    }
}

/// Runs the multiply phase exactly like
/// [`crate::phases::multiply::simulate_multiply`] while recording the
/// trace: the same [`MultiplyKernel`] runs through the same engine loop,
/// with an observer tapping the dispatch stream.
///
/// # Errors
///
/// Fault injection only, as `simulate_multiply`.
///
/// # Panics
///
/// Panics if `a.ncols() != b.nrows()`.
pub fn record_multiply(
    cfg: &OuterSpaceConfig,
    a: &Csc,
    b: &Csr,
) -> Result<(PhaseStats, IntermediateLayout, MultiplyTrace), SimError> {
    assert_eq!(a.ncols(), b.nrows(), "driver must validate shapes");
    let mut mem = MemorySystem::for_multiply(cfg);
    let mut pes = PeArray::new(
        cfg.n_tiles as usize,
        cfg.pes_per_tile as usize,
        cfg.outstanding_requests as usize,
    );
    let mut layout = IntermediateLayout::new(a.nrows());
    let kernel = MultiplyKernel::new(a, b, &mut layout);
    let mut obs = TraceObserver::default();
    let (stats, _) = engine::run_kernel_observed(cfg, &mut mem, &mut pes, kernel, &mut obs)?;
    Ok((stats, layout, MultiplyTrace { records: obs.records, recorded_on: cfg.clone() }))
}

/// Re-times a recorded trace on `cfg` (frozen schedule; see module docs).
/// Each chunk record replays the same [`chunk_script`] the live simulation
/// runs, on a standalone [`PeCtx`].
pub fn replay_multiply(cfg: &OuterSpaceConfig, trace: &MultiplyTrace) -> PhaseStats {
    let mut mem = MemorySystem::for_multiply(cfg);
    let n_tiles = cfg.n_tiles as usize;
    let block = cfg.block_bytes as u64;
    let mut pes = PeArray::new(
        n_tiles,
        cfg.pes_per_tile as usize,
        cfg.outstanding_requests as usize,
    );
    let mut flops = 0u64;
    let mut work_items = 0u64;
    for rec in &trace.records {
        match *rec {
            TraceRecord::PtrRead { tile, addr } => {
                let tile = (tile as usize).min(n_tiles - 1);
                let t = pes.group_min_time(tile);
                let _ = mem.read(tile, addr, t);
            }
            TraceRecord::Chunk { pe, tile, a_addr, b_addr, b_bytes, macs, store_addr } => {
                let tile = (tile as usize).min(n_tiles - 1);
                let pe = (pe as usize).min(pes.len() - 1);
                work_items += 1;
                flops += macs as u64;
                let item = ChunkItem {
                    a_addr,
                    b_addr,
                    b_bytes,
                    macs: macs as u64,
                    store_addr,
                };
                let mut ctx = PeCtx::new(&mut mem, pes.pe_mut(pe), tile, block);
                chunk_script(&item, &mut ctx);
            }
        }
    }
    let mut stats = collect_stats(cfg, &mut mem, &mut pes, flops);
    stats.work_items = work_items;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::multiply::simulate_multiply;
    use outerspace_gen::{powerlaw, uniform};

    #[test]
    fn replay_on_same_config_is_cycle_exact() {
        let cfg = OuterSpaceConfig::default();
        for seed in [1u64, 2] {
            let a = uniform::matrix(256, 256, 3000, seed);
            let (direct, _) = simulate_multiply(&cfg, &a.to_csc(), &a).unwrap();
            let (recorded, _, trace) = record_multiply(&cfg, &a.to_csc(), &a).unwrap();
            assert_eq!(direct.cycles, recorded.cycles, "recording must not perturb timing");
            let replayed = replay_multiply(&cfg, &trace);
            assert_eq!(replayed.cycles, direct.cycles, "replay must be cycle-exact");
            assert_eq!(replayed.hbm_read_bytes, direct.hbm_read_bytes);
            assert_eq!(replayed.flops, direct.flops);
        }
    }

    #[test]
    fn trace_counts_match_algorithm() {
        let cfg = OuterSpaceConfig::default();
        let a = powerlaw::graph(512, 6000, 3);
        let (_, _, trace) = record_multiply(&cfg, &a.to_csc(), &a).unwrap();
        let (_, soft) = outerspace_outer::multiply(&a.to_csc(), &a).unwrap();
        assert_eq!(trace.chunk_count() as u64, soft.chunks);
        assert_eq!(trace.total_macs(), soft.elementary_products);
    }

    #[test]
    fn replay_under_halved_bandwidth_is_slower() {
        let cfg = OuterSpaceConfig::default();
        let a = uniform::matrix(1024, 1024, 12_000, 4);
        let (_, _, trace) = record_multiply(&cfg, &a.to_csc(), &a).unwrap();
        let base = replay_multiply(&cfg, &trace);
        let mut slow = cfg.clone();
        slow.hbm_channel_mb_per_sec /= 4;
        let slowed = replay_multiply(&slow, &trace);
        assert!(slowed.cycles > base.cycles);
    }

    #[test]
    fn replay_under_bigger_l0_hits_more() {
        let cfg = OuterSpaceConfig::default();
        let a = powerlaw::graph(2048, 30_000, 5);
        let (_, _, trace) = record_multiply(&cfg, &a.to_csc(), &a).unwrap();
        let base = replay_multiply(&cfg, &trace);
        let mut big = cfg.clone();
        big.l0_multiply_bytes *= 8;
        let bigger = replay_multiply(&big, &trace);
        assert!(bigger.l0_hit_rate() >= base.l0_hit_rate());
    }

    #[test]
    fn trace_round_trips_through_json() {
        let cfg = OuterSpaceConfig::default();
        let a = uniform::matrix(64, 64, 400, 6);
        let (_, _, trace) = record_multiply(&cfg, &a.to_csc(), &a).unwrap();
        let json = trace.to_json().to_string_compact();
        let back = MultiplyTrace::from_json(&outerspace_json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, trace);
        let s1 = replay_multiply(&cfg, &trace);
        let s2 = replay_multiply(&cfg, &back);
        assert_eq!(s1.cycles, s2.cycles);
    }
}
