//! Timing model of element-wise matrix operations (§5.6).
//!
//! "Element-wise matrix operations follow a similar procedure as the merge
//! phase of the matrix-matrix multiplication algorithm ... Given N matrices
//! A₁ … A_N with the same dimensions, the data can be reorganized into a
//! data structure similar to the one illustrated in Figure 2 and
//! element-wise operations (+, −, ×, /, ==) can be performed on it. There
//! is close to a one-to-one correspondence between data operations in each
//! of the typical element-wise matrix routines and the merge phase."
//!
//! This model realizes exactly that correspondence: each operand
//! contributes one chunk per row to a synthetic intermediate layout, and
//! the merge-phase timing model consumes it.

use outerspace_sparse::Csr;

use crate::config::OuterSpaceConfig;
use crate::error::SimError;
use crate::layout::IntermediateLayout;
use crate::phases::merge::{simulate_merge, RowMergeInfo};
use crate::stats::PhaseStats;

/// Simulates an N-way element-wise combination of `mats` (all equal shape),
/// given the functional result `out` (for per-row output sizes).
///
/// # Errors
///
/// Fault injection only: every PE dead, an access out of retries, or a
/// watchdog timeout ([`SimError`]). Fault-free configurations cannot fail.
///
/// # Panics
///
/// Panics if `mats` is empty or shapes are inconsistent — the driver
/// validates before calling.
pub fn simulate_elementwise(
    cfg: &OuterSpaceConfig,
    mats: &[&Csr],
    out: &Csr,
) -> Result<PhaseStats, SimError> {
    let first = mats.first().expect("driver validates non-empty input");
    assert!(
        mats.iter().all(|m| m.nrows() == first.nrows() && m.ncols() == first.ncols()),
        "driver validates equal shapes"
    );
    // Reorganize: one chunk per operand per row (Fig. 2 layout). Chunk
    // addresses reuse each operand's natural location; the layout's bump
    // allocator is only used for address assignment, so relative placement
    // (distinct regions per operand) is what matters for the channel model.
    let mut layout = IntermediateLayout::new(first.nrows());
    for m in mats {
        for i in 0..m.nrows() {
            let len = m.row_nnz(i) as u32;
            if len > 0 {
                layout.alloc_chunk(i, len);
            }
        }
    }
    let rows: Vec<RowMergeInfo> = (0..first.nrows())
        .map(|i| {
            let produced: u64 = mats.iter().map(|m| m.row_nnz(i) as u64).sum();
            let out_len = out.row_nnz(i) as u64;
            RowMergeInfo {
                out_len: out_len as u32,
                collisions: produced.saturating_sub(out_len) as u32,
            }
        })
        .collect();
    simulate_merge(cfg, &layout, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_gen::uniform;
    use outerspace_sparse::ops;

    #[test]
    fn elementwise_cost_resembles_merge_of_same_volume() {
        let cfg = OuterSpaceConfig::default();
        let a = uniform::matrix(512, 512, 8000, 1);
        let b = uniform::matrix(512, 512, 8000, 2);
        let sum = ops::add(&a, &b).unwrap();
        let stats = simulate_elementwise(&cfg, &[&a, &b], &sum).unwrap();
        assert!(stats.cycles > 0);
        // Reads cover both operands at block granularity.
        assert!(stats.hbm_read_bytes >= 12 * (a.nnz() + b.nnz()) as u64 / 2);
        // Collisions = overlap of the two patterns.
        let overlap = (a.nnz() + b.nnz() - sum.nnz()) as u64;
        assert_eq!(stats.flops, overlap);
    }

    #[test]
    fn n_way_combination_scales_with_operand_count() {
        let cfg = OuterSpaceConfig::default();
        let mats: Vec<Csr> = (0..6).map(|s| uniform::matrix(256, 256, 4000, s)).collect();
        let two: Vec<&Csr> = mats[..2].iter().collect();
        let six: Vec<&Csr> = mats.iter().collect();
        let out2 = ops::add(&mats[0], &mats[1]).unwrap();
        let mut out6 = out2.clone();
        for m in &mats[2..] {
            out6 = ops::add(&out6, m).unwrap();
        }
        let s2 = simulate_elementwise(&cfg, &two, &out2).unwrap();
        let s6 = simulate_elementwise(&cfg, &six, &out6).unwrap();
        assert!(s6.cycles > s2.cycles);
        assert!(s6.hbm_read_bytes > 2 * s2.hbm_read_bytes);
    }

    #[test]
    fn disjoint_patterns_have_no_flops() {
        let cfg = OuterSpaceConfig::default();
        let a = outerspace_sparse::Csr::identity(64);
        // Shift the identity one column right: patterns are disjoint.
        let b = outerspace_sparse::Csr::new(
            64,
            64,
            (0..=64usize).map(|i| i.min(63)).collect(),
            (1..64).collect(),
            vec![1.0; 63],
        )
        .unwrap();
        let sum = ops::add(&a, &b).unwrap();
        let stats = simulate_elementwise(&cfg, &[&a, &b], &sum).unwrap();
        assert_eq!(stats.flops, 0);
    }
}
