//! Timing model of format conversion (§4.3): `I_CC × A_CR → A_CC`.
//!
//! Both conversion phases are pure streams through the PEs: the
//! *conversion-load* pass reads `A` row by row and scatters entries into
//! per-column lists (the multiply phase's write pattern with the identity as
//! the left operand); the *conversion-merge* pass gathers each column list
//! into the final CC arrays. No arithmetic is performed, so the phase is
//! bandwidth-bound — which is why the paper amortizes it over chained
//! multiplications.

use outerspace_sparse::Csr;

use crate::config::OuterSpaceConfig;
use crate::error::SimError;
use crate::layout::{A_BASE, ELEM_BYTES, SCRATCH_BASE};
use crate::machine::PeArray;
use crate::mem::MemorySystem;
use crate::phases::{run_stream_phase, StreamItem};
use crate::stats::PhaseStats;

/// Simulates converting `a` (CR) to CC, returning the combined statistics of
/// the conversion-load and conversion-merge passes.
///
/// # Errors
///
/// Fault injection only: every PE dead, an access out of retries, or a
/// watchdog timeout ([`SimError`]). Fault-free configurations cannot fail.
pub fn simulate_convert(cfg: &OuterSpaceConfig, a: &Csr) -> Result<PhaseStats, SimError> {
    // --- Conversion-load: stream rows, scatter to column lists. ---
    let mut mem = MemorySystem::for_multiply(cfg);
    let mut pes = PeArray::new(
        cfg.n_tiles as usize,
        cfg.pes_per_tile as usize,
        cfg.outstanding_requests as usize,
    );
    let row_ptr = a.row_ptr();
    let load_items = (0..a.nrows() as usize).filter_map(|r| {
        let len = (row_ptr[r + 1] - row_ptr[r]) as u64;
        if len == 0 {
            return None;
        }
        Some(StreamItem {
            read_addr: A_BASE + row_ptr[r] as u64 * ELEM_BYTES,
            read_bytes: len * ELEM_BYTES,
            write_addr: SCRATCH_BASE + row_ptr[r] as u64 * ELEM_BYTES,
            write_bytes: len * ELEM_BYTES,
            compute_cycles: len, // one list-append per entry
        })
    });
    let load = run_stream_phase("convert", cfg, &mut mem, &mut pes, load_items)?;

    // --- Conversion-merge: gather each column list into the CC arrays. ---
    // Column lengths come from the transposed pointer structure; the
    // per-column lists are pre-sorted by row (rows streamed in order), so
    // the merge is a gather with one cycle of bookkeeping per entry.
    let mut mem2 = MemorySystem::for_merge(cfg);
    let n_workers = (cfg.n_tiles * cfg.merge_pairs_per_tile()) as usize;
    let mut workers = PeArray::new(n_workers, 1, cfg.outstanding_requests as usize);
    let at = a.transpose();
    let col_ptr = at.row_ptr();
    let merge_items = (0..at.nrows() as usize).filter_map(|c| {
        let len = (col_ptr[c + 1] - col_ptr[c]) as u64;
        if len == 0 {
            return None;
        }
        Some(StreamItem {
            read_addr: SCRATCH_BASE + col_ptr[c] as u64 * ELEM_BYTES,
            read_bytes: len * ELEM_BYTES,
            write_addr: A_BASE + col_ptr[c] as u64 * ELEM_BYTES,
            write_bytes: len * ELEM_BYTES,
            compute_cycles: len,
        })
    });
    let merge = run_stream_phase("convert", cfg, &mut mem2, &mut workers, merge_items)?;

    let mut total = load;
    total.cycles += merge.cycles; // the passes are sequential
    total.flops += merge.flops;
    total.hbm_read_bytes += merge.hbm_read_bytes;
    total.hbm_write_bytes += merge.hbm_write_bytes;
    total.l0_hits += merge.l0_hits;
    total.l0_misses += merge.l0_misses;
    total.l1_hits += merge.l1_hits;
    total.l1_misses += merge.l1_misses;
    total.work_items = a.nnz() as u64;
    total.busy_pe_cycles += merge.busy_pe_cycles;
    total.ecc_retries += merge.ecc_retries;
    total.dropped_responses += merge.dropped_responses;
    total.fault_penalty_cycles += merge.fault_penalty_cycles;
    total.silent_corruptions += merge.silent_corruptions;
    total.requeued_work_items += merge.requeued_work_items;
    total.killed_pes += merge.killed_pes;
    total.stall_l0_cycles += merge.stall_l0_cycles;
    total.stall_l1_cycles += merge.stall_l1_cycles;
    total.stall_hbm_cycles += merge.stall_hbm_cycles;
    total.idle_pe_cycles += merge.idle_pe_cycles;
    total.lost_pe_cycles += merge.lost_pe_cycles;
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_gen::uniform;

    #[test]
    fn traffic_is_linear_in_nnz() {
        let cfg = OuterSpaceConfig::default();
        let a1 = uniform::matrix(256, 256, 2000, 1);
        let a2 = uniform::matrix(256, 256, 8000, 1);
        let s1 = simulate_convert(&cfg, &a1).unwrap();
        let s2 = simulate_convert(&cfg, &a2).unwrap();
        let ratio = s2.hbm_bytes() as f64 / s1.hbm_bytes() as f64;
        assert!((2.0..8.0).contains(&ratio), "traffic ratio {ratio}");
        assert!(s2.cycles > s1.cycles);
    }

    #[test]
    fn no_flops_charged() {
        let cfg = OuterSpaceConfig::default();
        let a = uniform::matrix(64, 64, 500, 2);
        let s = simulate_convert(&cfg, &a).unwrap();
        assert_eq!(s.flops, 0);
        assert_eq!(s.work_items, 500);
    }

    #[test]
    fn empty_matrix_costs_nothing() {
        let cfg = OuterSpaceConfig::default();
        let s = simulate_convert(&cfg, &outerspace_sparse::Csr::zero(64, 64)).unwrap();
        assert_eq!(s.hbm_bytes(), 0);
    }

    #[test]
    fn conversion_is_cheaper_than_multiply_for_dense_work() {
        // For a matrix with meaningful fill, conversion (O(nnz)) should be
        // far cheaper than the multiply phase (O(nnz^2/N)).
        let cfg = OuterSpaceConfig::default();
        let a = uniform::matrix(256, 256, 8000, 3);
        let conv = simulate_convert(&cfg, &a).unwrap();
        let (mul, _) = crate::phases::multiply::simulate_multiply(&cfg, &a.to_csc(), &a).unwrap();
        assert!(conv.cycles < mul.cycles);
    }
}
