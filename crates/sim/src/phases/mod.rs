//! Phase execution models: multiply, merge, conversion, SpMV.

pub mod convert;
pub mod elementwise;
pub mod merge;
pub mod multiply;
pub mod sparch;
pub mod spmv;

use outerspace_json::impl_to_json;

use crate::config::OuterSpaceConfig;
use crate::engine::{self, Batch, PeCtx, PhaseKernel, Step};
use crate::error::SimError;
use crate::machine::PeArray;
use crate::mem::MemorySystem;
use crate::stats::PhaseStats;

/// One unit of streaming work for [`run_stream_phase`]: read a contiguous
/// region, compute, write a contiguous region.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamItem {
    /// Source address.
    pub read_addr: u64,
    /// Bytes to read.
    pub read_bytes: u64,
    /// Destination address.
    pub write_addr: u64,
    /// Bytes to write.
    pub write_bytes: u64,
    /// Compute cycles consumed after the data arrives.
    pub compute_cycles: u64,
}

impl_to_json!(StreamItem {
    read_addr,
    read_bytes,
    write_addr,
    write_bytes,
    compute_cycles,
});

/// Engine kernel for pure read→compute→write streams: one batch of
/// independent items, greedily dispatched ([`engine::Dispatch::PerItem`]).
#[derive(Debug, Clone)]
pub(crate) struct StreamKernel {
    phase: &'static str,
    items: Option<Vec<StreamItem>>,
}

impl StreamKernel {
    pub(crate) fn new(phase: &'static str, items: Vec<StreamItem>) -> Self {
        StreamKernel { phase, items: Some(items) }
    }
}

impl PhaseKernel for StreamKernel {
    type Item = StreamItem;

    fn phase(&self) -> &'static str {
        self.phase
    }

    fn pe_class(&self) -> &'static str {
        "stream_pe"
    }

    fn next(&mut self, _fb: &engine::Feedback) -> Step<StreamItem> {
        match self.items.take() {
            Some(items) => Step::Batch(Batch { items, min_start: 0 }),
            None => Step::Done,
        }
    }

    fn execute(&mut self, item: &StreamItem, ctx: &mut PeCtx<'_>) {
        ctx.read_stream(item.read_addr, item.read_bytes);
        ctx.wait_for_data();
        ctx.compute(item.compute_cycles);
        ctx.store_stream(item.write_addr, item.write_bytes);
    }
}

/// Condemns the configuration's kill set before a phase starts: every phase
/// rebuilds its PE array, and a hard failure persists across phases, so the
/// same deterministic indices die in each.
pub(crate) fn apply_fault_model(cfg: &OuterSpaceConfig, pes: &mut PeArray) {
    for p in crate::faults::kill_set(&cfg.faults, pes.len()) {
        pes.schedule_kill(p, cfg.faults.pe_kill_cycle);
    }
}

/// Aborts a phase when fault recovery has already failed (retry budget
/// exhausted) or the dispatch frontier passed the watchdog limit.
pub(crate) fn check_phase_health(
    phase: &'static str,
    cfg: &OuterSpaceConfig,
    mem: &MemorySystem,
    pes: &PeArray,
) -> Result<(), SimError> {
    if let Some(fault) = mem.failure() {
        return Err(SimError::MemoryFailure { phase, addr: fault.addr, attempts: fault.attempts });
    }
    let limit = cfg.faults.watchdog_cycles;
    if limit > 0 {
        let frontier = pes.min_live_time();
        if frontier != u64::MAX && frontier > limit {
            return Err(SimError::WatchdogTimeout { phase, frontier, limit });
        }
    }
    Ok(())
}

/// Executes a set of independent streaming work items over `pes` with greedy
/// dispatch, charging reads/writes through `mem`. Used by the conversion and
/// SpMV models, whose phases are pure streams (§4.3, §5.6).
///
/// # Errors
///
/// Fault injection only: every PE dead, an access out of retries, or a
/// watchdog timeout.
pub fn run_stream_phase(
    phase: &'static str,
    cfg: &OuterSpaceConfig,
    mem: &mut MemorySystem,
    pes: &mut PeArray,
    items: impl IntoIterator<Item = StreamItem>,
) -> Result<PhaseStats, SimError> {
    let kernel = StreamKernel::new(phase, items.into_iter().collect());
    let (stats, _) = engine::run_kernel(cfg, mem, pes, kernel)?;
    Ok(stats)
}

/// Finalizes a phase: drains PEs and channels, snapshots counters.
pub(crate) fn collect_stats(
    _cfg: &OuterSpaceConfig,
    mem: &mut MemorySystem,
    pes: &mut PeArray,
    flops: u64,
) -> PhaseStats {
    let makespan = pes.finish().max(mem.quiesce_cycle());
    let c = mem.take_counters();
    PhaseStats {
        cycles: makespan,
        flops,
        hbm_read_bytes: c.hbm_read_bytes,
        hbm_write_bytes: c.hbm_write_bytes,
        l0_hits: c.l0_hits,
        l0_misses: c.l0_misses,
        l1_hits: c.l1_hits,
        l1_misses: c.l1_misses,
        work_items: 0,
        active_pes: pes.active_count(),
        busy_pe_cycles: pes.total_busy(),
        ecc_retries: c.ecc_retries,
        dropped_responses: c.dropped_responses,
        fault_penalty_cycles: c.fault_penalty_cycles,
        silent_corruptions: c.silent_corruptions,
        requeued_work_items: pes.requeued,
        killed_pes: pes.killed,
        stall_l0_cycles: 0,
        stall_l1_cycles: 0,
        stall_hbm_cycles: 0,
        idle_pe_cycles: 0,
        lost_pe_cycles: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_phase_moves_all_bytes() {
        let cfg = OuterSpaceConfig::default();
        let mut mem = MemorySystem::for_multiply(&cfg);
        let mut pes = PeArray::new(16, 16, 64);
        let items = (0..100).map(|i| StreamItem {
            read_addr: i * 6400,
            read_bytes: 640,
            write_addr: crate::layout::OUT_BASE + i * 640,
            write_bytes: 640,
            compute_cycles: 10,
        });
        let stats = run_stream_phase("test", &cfg, &mut mem, &mut pes, items).unwrap();
        assert_eq!(stats.hbm_read_bytes, 100 * 640);
        assert_eq!(stats.hbm_write_bytes, 100 * 640);
        assert!(stats.cycles > 0);
        assert!(stats.active_pes > 1, "work should spread over PEs");
    }

    #[test]
    fn more_pes_reduce_makespan() {
        let cfg = OuterSpaceConfig::default();
        let items = |n: u64| {
            (0..n).map(|i| StreamItem {
                read_addr: i * 64000,
                read_bytes: 6400,
                compute_cycles: 500,
                ..Default::default()
            })
        };
        let mut mem1 = MemorySystem::for_multiply(&cfg);
        let mut few = PeArray::new(1, 2, 64);
        let s1 = run_stream_phase("test", &cfg, &mut mem1, &mut few, items(64)).unwrap();
        let mut mem2 = MemorySystem::for_multiply(&cfg);
        let mut many = PeArray::new(16, 16, 64);
        let s2 = run_stream_phase("test", &cfg, &mut mem2, &mut many, items(64)).unwrap();
        assert!(
            s2.cycles * 4 < s1.cycles,
            "256 PEs ({}) should be >4x faster than 2 ({})",
            s2.cycles,
            s1.cycles
        );
    }
}
