//! Timing model of outer-product SpMV (§5.6, Table 5).
//!
//! `y = Σ_k x_k · col_k(A)`: only columns of `A` matching non-zeros of `x`
//! are fetched — the traffic (and therefore time) scales with the vector
//! density, which is the effect Table 5 sweeps. Partial products need no
//! sorting, so the merge phase is plain accumulation and no scratchpad is
//! used.

use outerspace_sparse::{Csc, SparseVector};

use crate::config::OuterSpaceConfig;
use crate::error::SimError;
use crate::layout::{A_BASE, ELEM_BYTES, INTER_BASE, OUT_BASE, X_BASE};
use crate::machine::PeArray;
use crate::mem::MemorySystem;
use crate::phases::{run_stream_phase, StreamItem};
use crate::stats::SimReport;

/// Simulates `y = A × x` on OuterSPACE, returning multiply/merge phase
/// statistics packaged as a [`SimReport`] (no conversion: `A` is consumed
/// column-wise, i.e. already CC).
///
/// `out_nnz` is the number of non-zeros in the result (from the functional
/// execution), which sizes the merge phase's output traffic.
///
/// # Errors
///
/// Fault injection only: every PE dead, an access out of retries, or a
/// watchdog timeout ([`SimError`]). Fault-free configurations cannot fail.
///
/// # Panics
///
/// Panics if `x.len != a.ncols()` — the driver validates shapes first.
pub fn simulate_spmv(
    cfg: &OuterSpaceConfig,
    a: &Csc,
    x: &SparseVector,
    out_nnz: u64,
) -> Result<SimReport, SimError> {
    assert_eq!(x.len, a.ncols(), "driver must validate shapes");
    let col_ptr = a.col_ptr();

    // --- Multiply: one work item per non-zero of x (reduced per-PE work,
    // §5.6: "the amount of work assigned to each PE is reduced"). ---
    let mut mem = MemorySystem::for_multiply(cfg);
    let mut pes = PeArray::new(
        cfg.n_tiles as usize,
        cfg.pes_per_tile as usize,
        cfg.outstanding_requests as usize,
    );
    let mut flops = 0u64;
    let mut partial_elems = 0u64;
    let items: Vec<StreamItem> = x
        .indices
        .iter()
        .enumerate()
        .filter_map(|(pos, &k)| {
            let len = a.col_nnz(k) as u64;
            if len == 0 {
                return None;
            }
            flops += len; // one multiply per column element
            let item = StreamItem {
                read_addr: A_BASE + col_ptr[k as usize] as u64 * ELEM_BYTES,
                read_bytes: len * ELEM_BYTES + ELEM_BYTES, // column + x entry
                write_addr: INTER_BASE + partial_elems * ELEM_BYTES,
                write_bytes: len * ELEM_BYTES,
                compute_cycles: len,
            };
            // The x entry itself lives in its own region; fold its read into
            // the stream by touching X_BASE too (one extra block at most).
            let _ = pos;
            partial_elems += len;
            Some(item)
        })
        .collect();
    // Touch the vector region once per entry (cheap, cached).
    for (i, _) in x.indices.iter().enumerate() {
        let _ = mem.read(0, X_BASE + i as u64 * ELEM_BYTES, 0);
    }
    let mut multiply = run_stream_phase("spmv", cfg, &mut mem, &mut pes, items)?;
    multiply.flops = flops;
    multiply.work_items = x.nnz() as u64;

    // --- Merge: stream partial products back and accumulate (no sort). ---
    let mut mem2 = MemorySystem::for_merge(cfg);
    let n_workers = (cfg.n_tiles * cfg.merge_pairs_per_tile()) as usize;
    let mut workers = PeArray::new(n_workers, 1, cfg.outstanding_requests as usize);
    // Partial products are consumed in row-segments; model as a balanced
    // stream split across workers.
    let seg = (partial_elems / n_workers as u64).max(1);
    let merge_items = (0..n_workers as u64).filter_map(|w| {
        let lo = w * seg;
        if lo >= partial_elems {
            return None;
        }
        let hi = ((w + 1) * seg).min(partial_elems);
        let out_share = out_nnz / n_workers as u64 + 1;
        Some(StreamItem {
            read_addr: INTER_BASE + lo * ELEM_BYTES,
            read_bytes: (hi - lo) * ELEM_BYTES,
            write_addr: OUT_BASE + w * out_share * ELEM_BYTES,
            write_bytes: out_share.min(out_nnz) * ELEM_BYTES,
            compute_cycles: hi - lo, // one accumulate per element
        })
    });
    let mut merge = run_stream_phase("spmv", cfg, &mut mem2, &mut workers, merge_items)?;
    merge.flops = partial_elems.saturating_sub(out_nnz); // additions
    merge.work_items = out_nnz;

    Ok(SimReport { convert: None, multiply, merge, config: cfg.clone() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_gen::{uniform, vector};

    fn run(n: u32, nnz: usize, r: f64) -> SimReport {
        let a = uniform::matrix(n, n, nnz, 1).to_csc();
        let x = vector::sparse(n, r, 2);
        let (y, _) = outerspace_outer::spmv(&a, &x).unwrap();
        simulate_spmv(&OuterSpaceConfig::default(), &a, &x, y.nnz() as u64).unwrap()
    }

    #[test]
    fn time_scales_with_vector_density() {
        let dense = run(4096, 65_536, 1.0);
        let sparse = run(4096, 65_536, 0.01);
        let ratio = dense.total_cycles() as f64 / sparse.total_cycles() as f64;
        // Table 5: a 100x density reduction gives roughly a 100x speedup.
        assert!(ratio > 20.0, "cycle ratio {ratio} too small");
    }

    #[test]
    fn traffic_proportional_to_touched_columns() {
        let r01 = run(2048, 32_768, 0.1);
        let r10 = run(2048, 32_768, 1.0);
        let ratio = r10.hbm_bytes() as f64 / r01.hbm_bytes() as f64;
        assert!((5.0..20.0).contains(&ratio), "traffic ratio {ratio}");
    }

    #[test]
    fn empty_vector_is_free() {
        let rep = run(256, 1024, 0.0);
        assert_eq!(rep.multiply.flops, 0);
    }

    #[test]
    fn flops_match_functional_macs() {
        let a = uniform::matrix(512, 512, 4096, 1).to_csc();
        let x = vector::sparse(512, 0.25, 2);
        let (y, stats) = outerspace_outer::spmv(&a, &x).unwrap();
        let rep = simulate_spmv(&OuterSpaceConfig::default(), &a, &x, y.nnz() as u64).unwrap();
        assert_eq!(rep.multiply.flops, stats.macs);
    }
}
