//! Timing model of the merge phase (§5.4.2).
//!
//! The system reconfigures: half the PEs per tile power-gate, the remainder
//! form loader/sorter pairs, and each pair's slice of the L0 becomes a
//! private cache plus a scratchpad holding the streaming merge's working set
//! (one head element per chunk). Rows are dispatched greedily to pairs; the
//! loader streams chunk data while the sorter inserts heads into the sorted
//! working set, so a row's duration is the max of its load and sort times.
//!
//! When a row has more chunks than the scratchpad can hold heads for, the
//! model performs the paper's recursive sub-merge: subsets of chunks are
//! merged into intermediate runs (extra HBM round trips) until the fan-in
//! fits.
//!
//! The phase is an engine kernel: [`MergeKernel`] yields one batch per
//! sub-merge pass (gated on the previous pass through
//! [`crate::engine::Batch::min_start`], fed back via
//! [`crate::engine::Feedback::batch_done`]) and one final batch per row;
//! the shared loop in [`crate::engine`] owns worker dispatch, fault hooks
//! and stat collection.

use crate::config::OuterSpaceConfig;
use crate::engine::{self, Batch, CycleBreakdown, Feedback, PeCtx, PhaseKernel, Step};
use crate::error::SimError;
use crate::layout::{ChunkRef, IntermediateLayout, ELEM_BYTES, OUT_BASE, SCRATCH_BASE};
use crate::machine::PeArray;
use crate::mem::MemorySystem;
use crate::stats::PhaseStats;

const PHASE: &str = "merge";

/// Per-row merge work description: what the multiply phase produced and
/// what the merged row looks like (from the functional execution).
#[derive(Debug, Clone, Copy, Default)]
pub struct RowMergeInfo {
    /// Entries in the merged result row.
    pub out_len: u32,
    /// Index collisions accumulated while merging this row.
    pub collisions: u32,
}

/// One merge pass on one worker pair: stream `chunks` in, sort, write
/// `out_elems` to `out_addr`.
#[derive(Debug, Clone)]
pub(crate) struct MergePassItem {
    chunks: Vec<ChunkRef>,
    out_addr: u64,
    out_elems: u64,
}

/// The pass's memory script. The loader PE streams every chunk's blocks
/// through the private cache; the sorter PE runs concurrently, so the
/// pair's occupancy for the pass is max(load-issue time, sort time) — not
/// their sum. The sorted-list insert is log-depth in the fan-in (the
/// swizzle-switch comparator network). The pair does not stall for the
/// final block to arrive: the dependency rides in the outstanding queue
/// ([`PeCtx::track_tail`]), back-pressuring only when 64 rows are in flight
/// (§5.4.2: the scratchpad buffer "can help hide the latency of inserting
/// elements ... under the latency of grabbing a new element from main
/// memory").
fn merge_pass_script(item: &MergePassItem, ctx: &mut PeCtx<'_>) {
    let t0 = ctx.time();
    let total_elems: u64 = item.chunks.iter().map(|c| c.len as u64).sum();
    for c in &item.chunks {
        if c.len == 0 {
            continue;
        }
        ctx.read_stream(c.addr, c.len as u64 * ELEM_BYTES);
    }
    let insert_cost = (u64::BITS - (item.chunks.len() as u64).leading_zeros()) as u64;
    ctx.wait_busy_until(t0 + total_elems * insert_cost.max(1));
    // Store the merged run (posted, after the operands exist).
    ctx.store_stream(item.out_addr, item.out_elems * ELEM_BYTES);
    ctx.track_tail();
}

/// Engine kernel for the merge phase. Walks rows of the intermediate
/// layout; for each non-empty row it emits recursive sub-merge passes until
/// the fan-in fits the scratchpad, then the final pass that writes the
/// merged result row. Groups within a pass are independent, so they fan out
/// across worker pairs; the next pass cannot start before all of them
/// finish — expressed as the batch's `min_start`, fed from the engine's
/// `batch_done` feedback.
#[derive(Debug)]
pub(crate) struct MergeKernel<'a> {
    layout: &'a IntermediateLayout,
    rows: &'a [RowMergeInfo],
    head_cap: usize,
    n_workers: u32,
    row: usize,
    in_row: bool,
    current: Vec<ChunkRef>,
    out_len: u64,
    row_ready: u64,
    awaiting_pass: bool,
    scratch_bump: u64,
    out_cursor: u64,
    flops: u64,
    work_items: u64,
}

impl<'a> MergeKernel<'a> {
    pub(crate) fn new(
        cfg: &OuterSpaceConfig,
        layout: &'a IntermediateLayout,
        rows: &'a [RowMergeInfo],
        n_workers: usize,
    ) -> Self {
        MergeKernel {
            layout,
            rows,
            head_cap: cfg.merge_head_capacity().max(2),
            n_workers: n_workers as u32,
            row: 0,
            in_row: false,
            current: Vec::new(),
            out_len: 0,
            row_ready: 0,
            awaiting_pass: false,
            scratch_bump: SCRATCH_BASE,
            out_cursor: OUT_BASE,
            flops: 0,
            work_items: 0,
        }
    }
}

impl PhaseKernel for MergeKernel<'_> {
    type Item = MergePassItem;

    fn phase(&self) -> &'static str {
        PHASE
    }

    fn pe_class(&self) -> &'static str {
        "merge_worker"
    }

    fn next(&mut self, fb: &Feedback) -> Step<MergePassItem> {
        if self.awaiting_pass {
            // The sub-merge pass just finished; its runs exist from
            // `batch_done` on.
            self.row_ready = fb.batch_done;
            self.awaiting_pass = false;
        }
        if !self.in_row {
            while self.row < self.rows.len() {
                let i = self.row;
                self.row += 1;
                let chunks = self.layout.row(i as u32);
                if chunks.is_empty() {
                    continue;
                }
                self.current = chunks.to_vec();
                self.out_len = self.rows[i].out_len as u64;
                self.row_ready = 0;
                self.work_items += 1;
                self.flops += self.rows[i].collisions as u64;
                self.in_row = true;
                break;
            }
            if !self.in_row {
                return Step::Done;
            }
        }
        if self.current.len() > self.head_cap {
            // Sub-merge pass: groups of head_cap chunks collapse into
            // intermediate runs in the scratch arena.
            let n_groups = self.current.len() / self.head_cap + 1;
            let mut items = Vec::with_capacity(n_groups);
            let mut next_refs = Vec::with_capacity(n_groups);
            for group in self.current.chunks(self.head_cap) {
                let total: u64 = group.iter().map(|c| c.len as u64).sum();
                items.push(MergePassItem {
                    chunks: group.to_vec(),
                    out_addr: self.scratch_bump,
                    out_elems: total,
                });
                next_refs.push(ChunkRef { addr: self.scratch_bump, len: total as u32 });
                self.scratch_bump += total * ELEM_BYTES;
            }
            self.current = next_refs;
            self.awaiting_pass = true;
            return Step::Batch(Batch { items, min_start: self.row_ready });
        }
        // Final pass writes the merged result row.
        let item = MergePassItem {
            chunks: std::mem::take(&mut self.current),
            out_addr: self.out_cursor,
            out_elems: self.out_len,
        };
        self.out_cursor += self.out_len * ELEM_BYTES;
        self.in_row = false;
        Step::Batch(Batch { items: vec![item], min_start: self.row_ready })
    }

    fn execute(&mut self, item: &MergePassItem, ctx: &mut PeCtx<'_>) {
        merge_pass_script(item, ctx);
    }

    fn finish(&mut self, stats: &mut PhaseStats) {
        stats.flops = self.flops;
        stats.work_items = self.work_items;
        stats.active_pes = stats.active_pes.min(self.n_workers);
    }
}

/// Simulates the merge phase over the intermediate `layout`, with per-row
/// output shapes in `rows` (index-aligned with the layout's rows).
///
/// # Errors
///
/// Fault injection only: every PE dead, an access out of retries, or a
/// watchdog timeout ([`SimError`]). Fault-free configurations cannot fail.
///
/// # Panics
///
/// Panics if `rows.len() != layout.nrows()`.
pub fn simulate_merge(
    cfg: &OuterSpaceConfig,
    layout: &IntermediateLayout,
    rows: &[RowMergeInfo],
) -> Result<PhaseStats, SimError> {
    simulate_merge_with_breakdown(cfg, layout, rows).map(|(stats, _)| stats)
}

/// [`simulate_merge`] plus the hierarchical [`CycleBreakdown`] for the
/// merge-worker class (the Fig. 12 utilization accounting).
///
/// # Errors
///
/// As [`simulate_merge`].
///
/// # Panics
///
/// As [`simulate_merge`].
pub fn simulate_merge_with_breakdown(
    cfg: &OuterSpaceConfig,
    layout: &IntermediateLayout,
    rows: &[RowMergeInfo],
) -> Result<(PhaseStats, CycleBreakdown), SimError> {
    assert_eq!(rows.len(), layout.nrows() as usize, "row info must align with layout");
    let mut mem = MemorySystem::for_merge(cfg);
    let n_workers = (cfg.n_tiles * cfg.merge_pairs_per_tile()) as usize;
    // Each worker pair acts as one dispatchable unit.
    let mut pes = PeArray::new(n_workers, 1, cfg.outstanding_requests as usize);
    let kernel = MergeKernel::new(cfg, layout, rows, n_workers);
    engine::run_kernel(cfg, &mut mem, &mut pes, kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::multiply::simulate_multiply;
    use outerspace_gen::uniform;
    use outerspace_outer::{merge, multiply, MergeKind};

    /// Runs the functional pipeline and derives per-row merge info.
    fn setup(n: u32, nnz: usize, seed: u64) -> (IntermediateLayout, Vec<RowMergeInfo>) {
        let a = uniform::matrix(n, n, nnz, seed);
        let cfg = OuterSpaceConfig::default();
        let (_, layout) = simulate_multiply(&cfg, &a.to_csc(), &a).unwrap();
        let (pp, _) = multiply(&a.to_csc(), &a).unwrap();
        let (c, _) = merge(pp, MergeKind::Streaming);
        let rows = row_infos(&layout, &c);
        (layout, rows)
    }

    fn row_infos(
        layout: &IntermediateLayout,
        c: &outerspace_sparse::Csr,
    ) -> Vec<RowMergeInfo> {
        (0..layout.nrows())
            .map(|i| {
                let e: u64 = layout.row(i).iter().map(|ch| ch.len as u64).sum();
                let out = c.row_nnz(i) as u32;
                RowMergeInfo { out_len: out, collisions: (e as u32).saturating_sub(out) }
            })
            .collect()
    }

    #[test]
    fn merge_reads_what_multiply_wrote() {
        let (layout, rows) = setup(128, 1000, 1);
        let cfg = OuterSpaceConfig::default();
        let stats = simulate_merge(&cfg, &layout, &rows).unwrap();
        // Block-granular reads must cover the intermediate arena.
        assert!(stats.hbm_read_bytes >= layout.total_elements() * ELEM_BYTES / 2);
        assert!(stats.cycles > 0);
    }

    #[test]
    fn collisions_become_merge_flops() {
        let (layout, rows) = setup(64, 800, 2);
        let cfg = OuterSpaceConfig::default();
        let stats = simulate_merge(&cfg, &layout, &rows).unwrap();
        let want: u64 = rows.iter().map(|r| r.collisions as u64).sum();
        assert_eq!(stats.flops, want);
    }

    #[test]
    fn deep_fanin_triggers_recursive_submerge() {
        // One row receiving many chunks: force fan-in beyond the 170-head
        // scratchpad via a dense column of A.
        let n = 512u32;
        let mut coo = outerspace_sparse::Coo::new(n, n);
        for i in 0..n {
            coo.push(i, 0, 1.0); // col 0 dense
            coo.push(0, i, 1.0); // row 0 dense
        }
        let a = coo.to_csr();
        let cfg = OuterSpaceConfig::default();
        let (_, layout) = simulate_multiply(&cfg, &a.to_csc(), &a).unwrap();
        assert!(layout.row(0).len() > cfg.merge_head_capacity());
        let (pp, _) = multiply(&a.to_csc(), &a).unwrap();
        let (c, _) = merge(pp, MergeKind::Streaming);
        let rows = row_infos(&layout, &c);
        let stats = simulate_merge(&cfg, &layout, &rows).unwrap();
        // Sub-merge passes re-read intermediate data: traffic must exceed a
        // single pass over the arena.
        assert!(stats.hbm_read_bytes > layout.total_elements() * ELEM_BYTES);
    }

    #[test]
    fn empty_layout_is_free() {
        let layout = IntermediateLayout::new(16);
        let rows = vec![RowMergeInfo::default(); 16];
        let cfg = OuterSpaceConfig::default();
        let stats = simulate_merge(&cfg, &layout, &rows).unwrap();
        assert_eq!(stats.cycles, 0);
        assert_eq!(stats.work_items, 0);
    }

    #[test]
    fn worker_count_respects_power_gating() {
        let (layout, rows) = setup(256, 4000, 3);
        let cfg = OuterSpaceConfig::default();
        let stats = simulate_merge(&cfg, &layout, &rows).unwrap();
        // 16 tiles x 4 pairs = 64 workers maximum.
        assert!(stats.active_pes <= 64);
        assert!(stats.active_pes > 16);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_row_info_panics() {
        let layout = IntermediateLayout::new(4);
        let cfg = OuterSpaceConfig::default();
        let _ = simulate_merge(&cfg, &layout, &[]);
    }

    #[test]
    fn submerge_dependency_shows_up_as_idle_cycles() {
        // The deep-fanin workload serializes passes per row: workers gated
        // on min_start must accumulate idle cycles in the breakdown.
        let n = 512u32;
        let mut coo = outerspace_sparse::Coo::new(n, n);
        for i in 0..n {
            coo.push(i, 0, 1.0);
            coo.push(0, i, 1.0);
        }
        let a = coo.to_csr();
        let cfg = OuterSpaceConfig::default();
        let (_, layout) = simulate_multiply(&cfg, &a.to_csc(), &a).unwrap();
        let (pp, _) = multiply(&a.to_csc(), &a).unwrap();
        let (c, _) = merge(pp, MergeKind::Streaming);
        let rows = row_infos(&layout, &c);
        let (stats, bd) = simulate_merge_with_breakdown(&cfg, &layout, &rows).unwrap();
        assert_eq!(bd.pe_class, "merge_worker");
        assert_eq!(bd.n_pes, 64);
        assert_eq!(bd.makespan, stats.cycles);
        assert_eq!(
            bd.busy_cycles + bd.stall_cycles() + bd.idle_cycles,
            bd.total_pe_cycles()
        );
        assert!(bd.idle_cycles > 0, "pass gating must leave workers idle");
    }
}
