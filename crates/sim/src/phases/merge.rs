//! Timing model of the merge phase (§5.4.2).
//!
//! The system reconfigures: half the PEs per tile power-gate, the remainder
//! form loader/sorter pairs, and each pair's slice of the L0 becomes a
//! private cache plus a scratchpad holding the streaming merge's working set
//! (one head element per chunk). Rows are dispatched greedily to pairs; the
//! loader streams chunk data while the sorter inserts heads into the sorted
//! working set, so a row's duration is the max of its load and sort times.
//!
//! When a row has more chunks than the scratchpad can hold heads for, the
//! model performs the paper's recursive sub-merge: subsets of chunks are
//! merged into intermediate runs (extra HBM round trips) until the fan-in
//! fits.

use crate::config::OuterSpaceConfig;
use crate::error::SimError;
use crate::layout::{ChunkRef, IntermediateLayout, ELEM_BYTES, OUT_BASE, SCRATCH_BASE};
use crate::machine::PeArray;
use crate::mem::MemorySystem;
use crate::phases::{apply_fault_model, check_phase_health, collect_stats};
use crate::stats::PhaseStats;

const PHASE: &str = "merge";

/// Per-row merge work description: what the multiply phase produced and
/// what the merged row looks like (from the functional execution).
#[derive(Debug, Clone, Copy, Default)]
pub struct RowMergeInfo {
    /// Entries in the merged result row.
    pub out_len: u32,
    /// Index collisions accumulated while merging this row.
    pub collisions: u32,
}

/// Simulates the merge phase over the intermediate `layout`, with per-row
/// output shapes in `rows` (index-aligned with the layout's rows).
///
/// # Errors
///
/// Fault injection only: every PE dead, an access out of retries, or a
/// watchdog timeout ([`SimError`]). Fault-free configurations cannot fail.
///
/// # Panics
///
/// Panics if `rows.len() != layout.nrows()`.
pub fn simulate_merge(
    cfg: &OuterSpaceConfig,
    layout: &IntermediateLayout,
    rows: &[RowMergeInfo],
) -> Result<PhaseStats, SimError> {
    assert_eq!(rows.len(), layout.nrows() as usize, "row info must align with layout");
    let mut mem = MemorySystem::for_merge(cfg);
    let n_workers = (cfg.n_tiles * cfg.merge_pairs_per_tile()) as usize;
    // Each worker pair acts as one dispatchable unit.
    let mut pes = PeArray::new(n_workers, 1, cfg.outstanding_requests as usize);
    apply_fault_model(cfg, &mut pes);
    let head_cap = cfg.merge_head_capacity().max(2);
    let mut scratch_bump = SCRATCH_BASE;
    let mut out_cursor = OUT_BASE;
    let mut flops = 0u64;
    let mut work_items = 0u64;

    for (i, info) in rows.iter().enumerate() {
        let chunks = layout.row(i as u32);
        if chunks.is_empty() {
            continue;
        }
        check_phase_health(PHASE, cfg, &mem, &pes)?;
        work_items += 1;
        flops += info.collisions as u64;

        // Recursive sub-merge until the fan-in fits the scratchpad. Groups
        // within a pass are independent, so they fan out across worker
        // pairs; the next pass cannot start before all of them finish.
        let mut current: Vec<ChunkRef> = chunks.to_vec();
        let mut row_ready: u64 = 0;
        while current.len() > head_cap {
            let mut next: Vec<ChunkRef> = Vec::with_capacity(current.len() / head_cap + 1);
            let mut pass_done: u64 = 0;
            for group in current.chunks(head_cap) {
                let total: u64 = group.iter().map(|c| c.len as u64).sum();
                let w =
                    pes.try_earliest_group().ok_or(SimError::AllPesFailed { phase: PHASE })?;
                pes.pe_mut(w).wait_until(row_ready);
                merge_pass(cfg, &mut mem, &mut pes, w, group, scratch_bump, total);
                pass_done = pass_done.max(pes.pe_mut(w).time);
                next.push(ChunkRef { addr: scratch_bump, len: total as u32 });
                scratch_bump += total * ELEM_BYTES;
            }
            row_ready = pass_done;
            current = next;
        }

        // Final pass writes the merged result row.
        let worker = pes.try_earliest_group().ok_or(SimError::AllPesFailed { phase: PHASE })?;
        pes.pe_mut(worker).wait_until(row_ready);
        merge_pass(cfg, &mut mem, &mut pes, worker, &current, out_cursor, info.out_len as u64);
        out_cursor += info.out_len as u64 * ELEM_BYTES;
    }

    check_phase_health(PHASE, cfg, &mem, &pes)?;
    let mut stats = collect_stats(cfg, &mut mem, &mut pes, flops);
    stats.work_items = work_items;
    stats.active_pes = stats.active_pes.min(n_workers as u32);
    Ok(stats)
}

/// One merge pass on one worker pair: stream `group` in, sort, write
/// `out_elems` to `out_addr`.
fn merge_pass(
    cfg: &OuterSpaceConfig,
    mem: &mut MemorySystem,
    pes: &mut PeArray,
    worker: usize,
    group: &[ChunkRef],
    out_addr: u64,
    out_elems: u64,
) {
    let block = cfg.block_bytes as u64;
    let pe = pes.pe_mut(worker);
    let t0 = pe.time;
    let total_elems: u64 = group.iter().map(|c| c.len as u64).sum();

    // Loader PE: stream every chunk's blocks through the private cache.
    let mut last_data = t0;
    for c in group {
        if c.len == 0 {
            continue;
        }
        let bytes = c.len as u64 * ELEM_BYTES;
        let first = c.addr / block;
        let last = (c.addr + bytes - 1) / block;
        for b in first..=last {
            let t = pe.issue();
            let (done, _) = mem.read(worker, b * block, t);
            pe.track(done);
            last_data = last_data.max(done);
        }
    }

    // Sorter PE runs concurrently with the loader, so the pair's occupancy
    // for this row is max(load-issue time, sort time) — not their sum. The
    // sorted-list insert is log-depth in the fan-in (the swizzle-switch
    // comparator network). The pair does not stall for the final block to
    // arrive: the dependency rides in the outstanding queue, back-pressuring
    // only when 64 rows are in flight (§5.4.2: the scratchpad buffer "can
    // help hide the latency of inserting elements ... under the latency of
    // grabbing a new element from main memory").
    let insert_cost = (u64::BITS - (group.len() as u64).leading_zeros()) as u64;
    let sort_end = t0 + total_elems * insert_cost.max(1);
    pe.wait_until(sort_end);

    // Store the merged run (posted, after the operands exist).
    let out_bytes = out_elems * ELEM_BYTES;
    if out_bytes > 0 {
        mem.write_stream(out_addr, out_bytes, pe.time.max(last_data));
        pe.advance(out_bytes.div_ceil(block));
    }
    pe.track(last_data);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::multiply::simulate_multiply;
    use outerspace_gen::uniform;
    use outerspace_outer::{merge, multiply, MergeKind};

    /// Runs the functional pipeline and derives per-row merge info.
    fn setup(n: u32, nnz: usize, seed: u64) -> (IntermediateLayout, Vec<RowMergeInfo>) {
        let a = uniform::matrix(n, n, nnz, seed);
        let cfg = OuterSpaceConfig::default();
        let (_, layout) = simulate_multiply(&cfg, &a.to_csc(), &a).unwrap();
        let (pp, _) = multiply(&a.to_csc(), &a).unwrap();
        let (c, _) = merge(pp, MergeKind::Streaming);
        let rows = row_infos(&layout, &c);
        (layout, rows)
    }

    fn row_infos(
        layout: &IntermediateLayout,
        c: &outerspace_sparse::Csr,
    ) -> Vec<RowMergeInfo> {
        (0..layout.nrows())
            .map(|i| {
                let e: u64 = layout.row(i).iter().map(|ch| ch.len as u64).sum();
                let out = c.row_nnz(i) as u32;
                RowMergeInfo { out_len: out, collisions: (e as u32).saturating_sub(out) }
            })
            .collect()
    }

    #[test]
    fn merge_reads_what_multiply_wrote() {
        let (layout, rows) = setup(128, 1000, 1);
        let cfg = OuterSpaceConfig::default();
        let stats = simulate_merge(&cfg, &layout, &rows).unwrap();
        // Block-granular reads must cover the intermediate arena.
        assert!(stats.hbm_read_bytes >= layout.total_elements() * ELEM_BYTES / 2);
        assert!(stats.cycles > 0);
    }

    #[test]
    fn collisions_become_merge_flops() {
        let (layout, rows) = setup(64, 800, 2);
        let cfg = OuterSpaceConfig::default();
        let stats = simulate_merge(&cfg, &layout, &rows).unwrap();
        let want: u64 = rows.iter().map(|r| r.collisions as u64).sum();
        assert_eq!(stats.flops, want);
    }

    #[test]
    fn deep_fanin_triggers_recursive_submerge() {
        // One row receiving many chunks: force fan-in beyond the 170-head
        // scratchpad via a dense column of A.
        let n = 512u32;
        let mut coo = outerspace_sparse::Coo::new(n, n);
        for i in 0..n {
            coo.push(i, 0, 1.0); // col 0 dense
            coo.push(0, i, 1.0); // row 0 dense
        }
        let a = coo.to_csr();
        let cfg = OuterSpaceConfig::default();
        let (_, layout) = simulate_multiply(&cfg, &a.to_csc(), &a).unwrap();
        assert!(layout.row(0).len() > cfg.merge_head_capacity());
        let (pp, _) = multiply(&a.to_csc(), &a).unwrap();
        let (c, _) = merge(pp, MergeKind::Streaming);
        let rows = row_infos(&layout, &c);
        let stats = simulate_merge(&cfg, &layout, &rows).unwrap();
        // Sub-merge passes re-read intermediate data: traffic must exceed a
        // single pass over the arena.
        assert!(stats.hbm_read_bytes > layout.total_elements() * ELEM_BYTES);
    }

    #[test]
    fn empty_layout_is_free() {
        let layout = IntermediateLayout::new(16);
        let rows = vec![RowMergeInfo::default(); 16];
        let cfg = OuterSpaceConfig::default();
        let stats = simulate_merge(&cfg, &layout, &rows).unwrap();
        assert_eq!(stats.cycles, 0);
        assert_eq!(stats.work_items, 0);
    }

    #[test]
    fn worker_count_respects_power_gating() {
        let (layout, rows) = setup(256, 4000, 3);
        let cfg = OuterSpaceConfig::default();
        let stats = simulate_merge(&cfg, &layout, &rows).unwrap();
        // 16 tiles x 4 pairs = 64 workers maximum.
        assert!(stats.active_pes <= 64);
        assert!(stats.active_pes > 16);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_row_info_panics() {
        let layout = IntermediateLayout::new(4);
        let cfg = OuterSpaceConfig::default();
        let _ = simulate_merge(&cfg, &layout, &[]);
    }
}
