//! Timing model of the multiply phase (§5.4.1).
//!
//! Work is dispatched at the granularity the paper describes: one PE
//! multiplies one non-zero of a column-of-`A` against the entire paired
//! row-of-`B`. All chunks of one outer product go to PEs of the same tile
//! (in groups of `pes_per_tile`), so the tile's shared L0 retains the
//! row-of-`B` while the tile works through the column — the multiply-phase
//! sharing pattern the reconfigurable cache exists for. Results are stored
//! with write-no-allocate so they never evict `B` blocks.
//!
//! The phase is expressed as an engine kernel: [`MultiplyKernel`] generates
//! one control step (pointer-stream reads) plus one tile-batched chunk batch
//! per outer product, and [`chunk_script`] is the per-chunk memory script.
//! The shared loop in [`crate::engine`] owns dispatch, fault hooks and stat
//! collection; the trace recorder taps the same kernel through an observer,
//! so recording is cycle-exact by construction.

use outerspace_json::impl_to_json;
use outerspace_sparse::{Csc, Csr};

use crate::config::OuterSpaceConfig;
use crate::engine::{
    self, Batch, CycleBreakdown, Dispatch, Feedback, PeCtx, PhaseKernel, Step,
};
use crate::error::SimError;
use crate::layout::{IntermediateLayout, A_BASE, A_PTR_BASE, B_BASE, B_PTR_BASE, ELEM_BYTES};
use crate::machine::PeArray;
use crate::mem::MemorySystem;
use crate::stats::PhaseStats;

const PHASE: &str = "multiply";

/// One multiply work item: load a column-of-A element, stream the paired
/// row-of-B, multiply, store the chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ChunkItem {
    /// Address of the column-of-A element.
    pub a_addr: u64,
    /// Base address of the row-of-B.
    pub b_addr: u64,
    /// Length of the row-of-B in bytes.
    pub b_bytes: u64,
    /// Multiply-accumulate cycles (= row-of-B non-zeros).
    pub macs: u64,
    /// Destination of the produced chunk in the intermediate arena.
    pub store_addr: u64,
}

impl_to_json!(ChunkItem {
    a_addr,
    b_addr,
    b_bytes,
    macs,
    store_addr,
});

/// One chunk's memory script: load the column-of-A element, stream the
/// row-of-B, multiply, post the chunk store. The PE does not block on the
/// loads — with its 64-entry outstanding queue it computes the current
/// chunk while prefetching the next; the data dependency rides in the queue
/// as a token ([`PeCtx::track_tail`]), so a PE only runs ahead of memory
/// until the queue fills. Shared with the trace replayer (`crate::trace`).
pub(crate) fn chunk_script(item: &ChunkItem, ctx: &mut PeCtx<'_>) {
    ctx.read(item.a_addr);
    ctx.read_stream(item.b_addr, item.b_bytes);
    ctx.compute(item.macs);
    // Write-no-allocate, posted: the store stream cannot start before its
    // operands arrived.
    ctx.store_stream(item.store_addr, item.b_bytes);
    ctx.track_tail();
}

/// Engine kernel for the multiply phase: one control step (the control
/// processors stream both pointer arrays to discover non-empty pairs) and
/// one tile-batched chunk batch per outer product.
#[derive(Debug)]
pub(crate) struct MultiplyKernel<'a> {
    a: &'a Csc,
    b: &'a Csr,
    layout: &'a mut IntermediateLayout,
    k: u32,
    pending: Option<Vec<ChunkItem>>,
    flops: u64,
    work_items: u64,
}

impl<'a> MultiplyKernel<'a> {
    pub(crate) fn new(a: &'a Csc, b: &'a Csr, layout: &'a mut IntermediateLayout) -> Self {
        MultiplyKernel { a, b, layout, k: 0, pending: None, flops: 0, work_items: 0 }
    }
}

impl PhaseKernel for MultiplyKernel<'_> {
    type Item = ChunkItem;

    fn phase(&self) -> &'static str {
        PHASE
    }

    fn pe_class(&self) -> &'static str {
        "tile_pe"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::TileBatched
    }

    fn next(&mut self, _fb: &Feedback) -> Step<ChunkItem> {
        if let Some(items) = self.pending.take() {
            return Step::Batch(Batch { items, min_start: 0 });
        }
        if self.k >= self.a.ncols() {
            return Step::Done;
        }
        let k = self.k;
        self.k += 1;

        let ca = self.a.col_nnz(k);
        let cb = self.b.row_nnz(k);
        if ca != 0 && cb != 0 {
            let (a_rows, _) = self.a.col(k);
            let a_col_base = A_BASE + self.a.col_ptr()[k as usize] as u64 * ELEM_BYTES;
            let b_row_base = B_BASE + self.b.row_ptr()[k as usize] as u64 * ELEM_BYTES;
            let b_row_bytes = cb as u64 * ELEM_BYTES;
            let items = (0..ca)
                .map(|idx| ChunkItem {
                    a_addr: a_col_base + idx as u64 * ELEM_BYTES,
                    b_addr: b_row_base,
                    b_bytes: b_row_bytes,
                    macs: cb as u64,
                    store_addr: self.layout.alloc_chunk(a_rows[idx], cb as u32),
                })
                .collect();
            self.flops += ca as u64 * cb as u64;
            self.work_items += ca as u64;
            self.pending = Some(items);
        }
        // Fig. 2: for an empty pair no outer product is formed; only the
        // pointer reads are charged.
        Step::Control {
            reads: vec![A_PTR_BASE + k as u64 * 8, B_PTR_BASE + k as u64 * 8],
        }
    }

    fn execute(&mut self, item: &ChunkItem, ctx: &mut PeCtx<'_>) {
        chunk_script(item, ctx);
    }

    fn finish(&mut self, stats: &mut PhaseStats) {
        stats.flops = self.flops;
        stats.work_items = self.work_items;
    }
}

/// Simulates the multiply phase for `Cᵢ = aᵢ · bᵢ` over all outer products,
/// returning timing statistics and the intermediate-structure layout the
/// merge phase will consume.
///
/// `a` must be in CC and `b` in CR format (§4's operand layouts).
///
/// # Errors
///
/// Fault injection only: every PE dead, an access out of retries, or a
/// watchdog timeout ([`SimError`]). Fault-free configurations cannot fail.
///
/// # Panics
///
/// Panics if `a.ncols() != b.nrows()` — the driver validates shapes first.
pub fn simulate_multiply(
    cfg: &OuterSpaceConfig,
    a: &Csc,
    b: &Csr,
) -> Result<(PhaseStats, IntermediateLayout), SimError> {
    simulate_multiply_with_breakdown(cfg, a, b).map(|(stats, layout, _)| (stats, layout))
}

/// [`simulate_multiply`] plus the hierarchical [`CycleBreakdown`] for the
/// tile-PE class (the Fig. 12 utilization accounting).
///
/// # Errors
///
/// As [`simulate_multiply`].
///
/// # Panics
///
/// As [`simulate_multiply`].
pub fn simulate_multiply_with_breakdown(
    cfg: &OuterSpaceConfig,
    a: &Csc,
    b: &Csr,
) -> Result<(PhaseStats, IntermediateLayout, CycleBreakdown), SimError> {
    assert_eq!(a.ncols(), b.nrows(), "driver must validate shapes");
    let mut mem = MemorySystem::for_multiply(cfg);
    let mut pes = PeArray::new(
        cfg.n_tiles as usize,
        cfg.pes_per_tile as usize,
        cfg.outstanding_requests as usize,
    );
    let mut layout = IntermediateLayout::new(a.nrows());
    let kernel = MultiplyKernel::new(a, b, &mut layout);
    let (stats, breakdown) = engine::run_kernel(cfg, &mut mem, &mut pes, kernel)?;
    Ok((stats, layout, breakdown))
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_gen::uniform;

    fn sim(n: u32, nnz: usize, seed: u64) -> (PhaseStats, IntermediateLayout) {
        let a = uniform::matrix(n, n, nnz, seed);
        let cfg = OuterSpaceConfig::default();
        simulate_multiply(&cfg, &a.to_csc(), &a).unwrap()
    }

    #[test]
    fn layout_matches_algorithm_structure() {
        let a = uniform::matrix(64, 64, 400, 1);
        let cfg = OuterSpaceConfig::default();
        let (stats, layout) = simulate_multiply(&cfg, &a.to_csc(), &a).unwrap();
        // Total intermediate elements = elementary products = flops.
        let (_, soft) = outerspace_outer::multiply(&a.to_csc(), &a).unwrap();
        assert_eq!(layout.total_elements(), soft.elementary_products);
        assert_eq!(stats.flops, soft.elementary_products);
        assert_eq!(stats.work_items, soft.chunks);
    }

    #[test]
    fn intermediate_is_written_to_hbm() {
        let (stats, layout) = sim(128, 1000, 2);
        // Written bytes at block granularity must cover the arena.
        assert!(stats.hbm_write_bytes >= layout.total_elements() * 12 / 2);
        assert!(stats.hbm_write_bytes > 0);
    }

    #[test]
    fn shared_rows_give_l0_hits() {
        // A dense column of A means every PE in a tile re-reads the same
        // row of B: hits after the first fetch.
        let mut coo = outerspace_sparse::Coo::new(64, 64);
        for i in 0..64 {
            coo.push(i, 0, 1.0);
            coo.push(0, i, 1.0);
        }
        let a = coo.to_csr();
        let cfg = OuterSpaceConfig::default();
        let (stats, _) = simulate_multiply(&cfg, &a.to_csc(), &a).unwrap();
        assert!(
            stats.l0_hit_rate() > 0.5,
            "expected heavy B-row sharing, hit rate {}",
            stats.l0_hit_rate()
        );
    }

    #[test]
    fn cycles_scale_with_work() {
        let (small, _) = sim(256, 2_000, 3);
        let (big, _) = sim(256, 8_000, 3);
        assert!(big.cycles > small.cycles);
        assert!(big.flops > 10 * small.flops); // quadratic in density
    }

    #[test]
    fn all_tiles_participate_on_balanced_input() {
        let (stats, _) = sim(512, 8_000, 4);
        assert!(stats.active_pes > 200, "only {} PEs active", stats.active_pes);
    }

    #[test]
    fn empty_matrix_is_cheap() {
        let a = outerspace_sparse::Csr::zero(32, 32);
        let cfg = OuterSpaceConfig::default();
        let (stats, layout) = simulate_multiply(&cfg, &a.to_csc(), &a).unwrap();
        assert_eq!(layout.total_elements(), 0);
        assert_eq!(stats.flops, 0);
    }

    #[test]
    fn breakdown_accounts_for_every_tile_pe_cycle() {
        let a = uniform::matrix(256, 256, 4000, 5);
        let cfg = OuterSpaceConfig::default();
        let (stats, _, bd) =
            simulate_multiply_with_breakdown(&cfg, &a.to_csc(), &a).unwrap();
        assert_eq!(bd.pe_class, "tile_pe");
        assert_eq!(bd.n_pes as u64, cfg.total_pes());
        assert_eq!(bd.makespan, stats.cycles);
        assert_eq!(
            bd.busy_cycles + bd.stall_cycles() + bd.idle_cycles,
            bd.total_pe_cycles()
        );
        assert!(bd.busy_cycles > 0 && bd.stall_cycles() > 0);
        assert_eq!(stats.stall_hbm_cycles, bd.stall_hbm_cycles);
    }
}
