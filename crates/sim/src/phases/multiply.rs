//! Timing model of the multiply phase (§5.4.1).
//!
//! Work is dispatched at the granularity the paper describes: one PE
//! multiplies one non-zero of a column-of-`A` against the entire paired
//! row-of-`B`. All chunks of one outer product go to PEs of the same tile
//! (in groups of `pes_per_tile`), so the tile's shared L0 retains the
//! row-of-`B` while the tile works through the column — the multiply-phase
//! sharing pattern the reconfigurable cache exists for. Results are stored
//! with write-no-allocate so they never evict `B` blocks.

use outerspace_sparse::{Csc, Csr};

use crate::config::OuterSpaceConfig;
use crate::error::SimError;
use crate::layout::{IntermediateLayout, A_BASE, A_PTR_BASE, B_BASE, B_PTR_BASE, ELEM_BYTES};
use crate::machine::PeArray;
use crate::mem::MemorySystem;
use crate::phases::{apply_fault_model, check_phase_health, collect_stats};
use crate::stats::PhaseStats;

const PHASE: &str = "multiply";

/// Simulates the multiply phase for `Cᵢ = aᵢ · bᵢ` over all outer products,
/// returning timing statistics and the intermediate-structure layout the
/// merge phase will consume.
///
/// `a` must be in CC and `b` in CR format (§4's operand layouts).
///
/// # Errors
///
/// Fault injection only: every PE dead, an access out of retries, or a
/// watchdog timeout ([`SimError`]). Fault-free configurations cannot fail.
///
/// # Panics
///
/// Panics if `a.ncols() != b.nrows()` — the driver validates shapes first.
pub fn simulate_multiply(
    cfg: &OuterSpaceConfig,
    a: &Csc,
    b: &Csr,
) -> Result<(PhaseStats, IntermediateLayout), SimError> {
    assert_eq!(a.ncols(), b.nrows(), "driver must validate shapes");
    let mut mem = MemorySystem::for_multiply(cfg);
    let mut pes = PeArray::new(
        cfg.n_tiles as usize,
        cfg.pes_per_tile as usize,
        cfg.outstanding_requests as usize,
    );
    apply_fault_model(cfg, &mut pes);
    let mut layout = IntermediateLayout::new(a.nrows());

    let group_size = cfg.pes_per_tile as usize;
    let mut flops = 0u64;
    let mut work_items = 0u64;

    let a_ptr = a.col_ptr();
    let b_ptr = b.row_ptr();
    for k in 0..a.ncols() {
        check_phase_health(PHASE, cfg, &mem, &pes)?;
        // The control processors stream both pointer arrays to discover
        // non-empty pairs; charge those reads to the earliest tile.
        let sched_tile =
            pes.try_earliest_group().ok_or(SimError::AllPesFailed { phase: PHASE })?;
        let t_sched = pes.group_min_time(sched_tile);
        let _ = mem.read(sched_tile, A_PTR_BASE + k as u64 * 8, t_sched);
        let _ = mem.read(sched_tile, B_PTR_BASE + k as u64 * 8, t_sched);

        let ca = a.col_nnz(k);
        let cb = b.row_nnz(k);
        if ca == 0 || cb == 0 {
            continue; // Fig. 2: no outer product is formed; no element data fetched.
        }
        let (a_rows, _) = a.col(k);
        let a_col_base = A_BASE + a_ptr[k as usize] as u64 * ELEM_BYTES;
        let b_row_base = B_BASE + b_ptr[k as usize] as u64 * ELEM_BYTES;
        let b_row_bytes = cb as u64 * ELEM_BYTES;

        // Distribute the column's chunks over tiles in tile-sized groups so
        // one tile shares one row-of-B at a time.
        let mut idx = 0usize;
        while idx < ca {
            check_phase_health(PHASE, cfg, &mem, &pes)?;
            let tile =
                pes.try_earliest_group().ok_or(SimError::AllPesFailed { phase: PHASE })?;
            let end = (idx + group_size).min(ca);
            while idx < end {
                // The tile can lose its last PE mid-column; fall back to the
                // outer loop to re-select a live tile for the rest.
                let Some(pe_idx) = pes.try_earliest_pe_in_group(tile) else {
                    break;
                };
                work_items += 1;
                let a_addr = a_col_base + idx as u64 * ELEM_BYTES;
                let row = a_rows[idx];
                let chunk_addr = layout.alloc_chunk(row, cb as u32);
                flops += cb as u64;
                execute_chunk(
                    cfg, &mut mem, &mut pes, pe_idx, tile, a_addr, b_row_base, b_row_bytes,
                    cb as u64, chunk_addr,
                );
                idx += 1;
            }
        }
    }

    check_phase_health(PHASE, cfg, &mem, &pes)?;
    let mut stats = collect_stats(cfg, &mut mem, &mut pes, flops);
    stats.work_items = work_items;
    Ok((stats, layout))
}

/// One chunk's execution: load the column-of-A element, stream the
/// row-of-B, multiply, post the chunk store. The PE does not block on the
/// loads — with its 64-entry outstanding queue it computes the current
/// chunk while prefetching the next; the data dependency rides in the queue
/// as a token, so a PE only runs ahead of memory until the queue fills.
/// Shared with the trace recorder/replayer (`crate::trace`) so trace replay
/// is cycle-exact by construction.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_chunk(
    cfg: &OuterSpaceConfig,
    mem: &mut MemorySystem,
    pes: &mut PeArray,
    pe_idx: usize,
    tile: usize,
    a_addr: u64,
    b_addr: u64,
    b_bytes: u64,
    macs: u64,
    store_addr: u64,
) {

    let block = cfg.block_bytes as u64;
    let pe = pes.pe_mut(pe_idx);
    let t = pe.issue();
    let (c_a, _) = mem.read(tile, a_addr, t);
    pe.track(c_a);
    let mut last_data = c_a;
    if b_bytes > 0 {
        let first = b_addr / block;
        let last = (b_addr + b_bytes - 1) / block;
        for blk in first..=last {
            let t = pe.issue();
            let (c, _) = mem.read(tile, blk * block, t);
            pe.track(c);
            last_data = last_data.max(c);
        }
    }
    pe.advance(macs);
    // Write-no-allocate, posted: the store stream cannot start before its
    // operands arrived.
    mem.write_stream(store_addr, b_bytes, pe.time.max(last_data));
    pe.advance(b_bytes.div_ceil(block));
    pe.track(last_data);
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_gen::uniform;

    fn sim(n: u32, nnz: usize, seed: u64) -> (PhaseStats, IntermediateLayout) {
        let a = uniform::matrix(n, n, nnz, seed);
        let cfg = OuterSpaceConfig::default();
        simulate_multiply(&cfg, &a.to_csc(), &a).unwrap()
    }

    #[test]
    fn layout_matches_algorithm_structure() {
        let a = uniform::matrix(64, 64, 400, 1);
        let cfg = OuterSpaceConfig::default();
        let (stats, layout) = simulate_multiply(&cfg, &a.to_csc(), &a).unwrap();
        // Total intermediate elements = elementary products = flops.
        let (_, soft) = outerspace_outer::multiply(&a.to_csc(), &a).unwrap();
        assert_eq!(layout.total_elements(), soft.elementary_products);
        assert_eq!(stats.flops, soft.elementary_products);
        assert_eq!(stats.work_items, soft.chunks);
    }

    #[test]
    fn intermediate_is_written_to_hbm() {
        let (stats, layout) = sim(128, 1000, 2);
        // Written bytes at block granularity must cover the arena.
        assert!(stats.hbm_write_bytes >= layout.total_elements() * 12 / 2);
        assert!(stats.hbm_write_bytes > 0);
    }

    #[test]
    fn shared_rows_give_l0_hits() {
        // A dense column of A means every PE in a tile re-reads the same
        // row of B: hits after the first fetch.
        let mut coo = outerspace_sparse::Coo::new(64, 64);
        for i in 0..64 {
            coo.push(i, 0, 1.0);
            coo.push(0, i, 1.0);
        }
        let a = coo.to_csr();
        let cfg = OuterSpaceConfig::default();
        let (stats, _) = simulate_multiply(&cfg, &a.to_csc(), &a).unwrap();
        assert!(
            stats.l0_hit_rate() > 0.5,
            "expected heavy B-row sharing, hit rate {}",
            stats.l0_hit_rate()
        );
    }

    #[test]
    fn cycles_scale_with_work() {
        let (small, _) = sim(256, 2_000, 3);
        let (big, _) = sim(256, 8_000, 3);
        assert!(big.cycles > small.cycles);
        assert!(big.flops > 10 * small.flops); // quadratic in density
    }

    #[test]
    fn all_tiles_participate_on_balanced_input() {
        let (stats, _) = sim(512, 8_000, 4);
        assert!(stats.active_pes > 200, "only {} PEs active", stats.active_pes);
    }

    #[test]
    fn empty_matrix_is_cheap() {
        let a = outerspace_sparse::Csr::zero(32, 32);
        let cfg = OuterSpaceConfig::default();
        let (stats, layout) = simulate_multiply(&cfg, &a.to_csc(), &a).unwrap();
        assert_eq!(layout.total_elements(), 0);
        assert_eq!(stats.flops, 0);
    }
}
