//! Timing model of the SpArch-analog pipeline (see PAPERS.md): a condensed
//! outer-product multiply feeding a pipelined comparator-array merge tree.
//!
//! Two kernels ride the shared engine loop:
//!
//! - [`CondensedMultiplyKernel`]: matrix `A` is condensed (each row's
//!   non-zeros pushed left), so no CSC conversion phase exists. One work
//!   item scales one row-of-`B` by one condensed-`A` entry — the same
//!   granularity as the OuterSPACE multiply, but dispatched over the small
//!   multiplier array (`sparch_mul_pes`). When the condensed width fits the
//!   merge tree (`width ≤ merge_tree_ways`), partial products stream
//!   straight into the comparators and never touch DRAM; otherwise every
//!   leaf spills to the intermediate arena, exactly the regime the Huffman
//!   scheduler exists to make cheap.
//! - [`MergeTreeKernel`]: one merge-tree unit replays the
//!   [`SparchPlan`]'s Huffman schedule. Spilled streams are re-read from
//!   DRAM; the comparator array retires [`merge-tree
//!   throughput`](OuterSpaceConfig::merge_tree_throughput) elements per
//!   cycle after a pipeline-depth fill; intermediate runs bounce through
//!   the scratch arena and the final op writes the result matrix.
//!
//! Both kernels carry full [`CycleBreakdown`] attribution and the standard
//! fault hooks (the engine applies PE kills and the memory fault model the
//! same way it does for the OuterSPACE kernels).

use outerspace_outer::{CondensedA, SparchPlan};
use outerspace_sparse::Csr;

use crate::config::OuterSpaceConfig;
use crate::engine::{self, Batch, CycleBreakdown, Dispatch, Feedback, PeCtx, PhaseKernel, Step};
use crate::error::SimError;
use crate::layout::{A_PTR_BASE, B_BASE, ELEM_BYTES, INTER_BASE, OUT_BASE, SCRATCH_BASE};
use crate::machine::PeArray;
use crate::mem::MemorySystem;
use crate::stats::PhaseStats;

const MULTIPLY_PHASE: &str = "sparch_multiply";
const MERGE_PHASE: &str = "sparch_merge";

/// Condensed-`A` element data lives at the front of the `A` region, stored
/// column-major in condensed order.
const COND_A_BASE: u64 = crate::layout::A_BASE;

/// One condensed-multiply work item: load a condensed-`A` entry, stream the
/// paired row-of-`B`, multiply, and either stream into the merge tree (no
/// store) or spill the partial to the intermediate arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CondensedItem {
    /// Address of the condensed-`A` entry.
    a_addr: u64,
    /// Base address of the row-of-`B`.
    b_addr: u64,
    /// Length of the row-of-`B` in bytes.
    b_bytes: u64,
    /// Multiply cycles (= row-of-`B` non-zeros).
    macs: u64,
    /// Spill destination in the intermediate arena; `None` when the
    /// partials stream straight into the merge tree.
    spill_addr: Option<u64>,
}

/// Engine kernel for the condensed multiply: one control step per condensed
/// column (the condensed pointer stream) plus one batch of per-entry items.
#[derive(Debug)]
pub(crate) struct CondensedMultiplyKernel<'a> {
    condensed: &'a CondensedA,
    b: &'a Csr,
    spill: bool,
    k: usize,
    a_cursor: u64,
    spill_cursor: u64,
    pending: Option<Vec<CondensedItem>>,
    flops: u64,
    work_items: u64,
}

impl<'a> CondensedMultiplyKernel<'a> {
    /// A kernel over the condensed operand. `spill` mirrors
    /// [`SparchPlan::spilled`]: partials are stored to DRAM only when the
    /// condensed width exceeds the merge tree's arity.
    pub(crate) fn new(condensed: &'a CondensedA, b: &'a Csr, spill: bool) -> Self {
        CondensedMultiplyKernel {
            condensed,
            b,
            spill,
            k: 0,
            a_cursor: COND_A_BASE,
            spill_cursor: INTER_BASE,
            pending: None,
            flops: 0,
            work_items: 0,
        }
    }
}

impl PhaseKernel for CondensedMultiplyKernel<'_> {
    type Item = CondensedItem;

    fn phase(&self) -> &'static str {
        MULTIPLY_PHASE
    }

    fn pe_class(&self) -> &'static str {
        "mul_pe"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::PerItem
    }

    fn next(&mut self, _fb: &Feedback) -> Step<CondensedItem> {
        if let Some(items) = self.pending.take() {
            return Step::Batch(Batch { items, min_start: 0 });
        }
        if self.k >= self.condensed.width() {
            return Step::Done;
        }
        let k = self.k;
        self.k += 1;

        let mut items = Vec::with_capacity(self.condensed.col(k).len());
        for e in self.condensed.col(k) {
            let a_addr = self.a_cursor;
            self.a_cursor += ELEM_BYTES;
            let cb = self.b.row_nnz(e.col);
            if cb == 0 {
                continue;
            }
            let b_bytes = cb as u64 * ELEM_BYTES;
            let spill_addr = self.spill.then(|| {
                let addr = self.spill_cursor;
                self.spill_cursor += b_bytes;
                addr
            });
            items.push(CondensedItem {
                a_addr,
                b_addr: B_BASE + self.b.row_ptr()[e.col as usize] as u64 * ELEM_BYTES,
                b_bytes,
                macs: cb as u64,
                spill_addr,
            });
            self.flops += cb as u64;
            self.work_items += 1;
        }
        if !items.is_empty() {
            self.pending = Some(items);
        }
        // The condensed pointer array is the per-column scheduling stream.
        Step::Control { reads: vec![A_PTR_BASE + k as u64 * 8] }
    }

    fn execute(&mut self, item: &CondensedItem, ctx: &mut PeCtx<'_>) {
        ctx.read(item.a_addr);
        ctx.read_stream(item.b_addr, item.b_bytes);
        ctx.compute(item.macs);
        if let Some(addr) = item.spill_addr {
            // Write-no-allocate, posted: the spilled partial cannot leave
            // before its operands arrived.
            ctx.store_stream(addr, item.b_bytes);
        }
        ctx.track_tail();
    }

    fn finish(&mut self, stats: &mut PhaseStats) {
        stats.flops = self.flops;
        stats.work_items = self.work_items;
    }
}

/// One merge-tree step: stream the scheduled inputs through the comparator
/// array and emit the merged run.
#[derive(Debug, Clone)]
pub(crate) struct TreeOpItem {
    /// Spilled input streams to re-read: `(addr, bytes)`.
    reads: Vec<(u64, u64)>,
    /// Total input elements entering the comparators.
    in_elems: u64,
    /// Destination and length of the merged run.
    out_addr: u64,
    out_elems: u64,
}

/// Engine kernel replaying a [`SparchPlan`]'s Huffman schedule on one
/// merge-tree unit.
///
/// The scheduler state is reconstructed exactly as the functional planner
/// built it: live streams ordered by `(elements, creation order)`, the
/// `ways` smallest merged first. Leaf streams sit in the intermediate arena
/// (when spilled), intermediate runs bounce through the scratch arena, and
/// the final op writes the result matrix.
#[derive(Debug)]
pub(crate) struct MergeTreeKernel<'a> {
    plan: &'a SparchPlan,
    ways: usize,
    depth: u64,
    throughput: u64,
    /// Live streams: `(creation seq, elements, Some(addr) when in DRAM)`.
    live: Vec<(usize, u64, Option<u64>)>,
    seq: usize,
    op: usize,
    scratch_cursor: u64,
    flops: u64,
    work_items: u64,
}

impl<'a> MergeTreeKernel<'a> {
    /// A kernel replaying `plan` at the configured tree arity.
    pub(crate) fn new(cfg: &OuterSpaceConfig, plan: &'a SparchPlan) -> Self {
        let ways = (cfg.merge_tree_ways as usize).max(2);
        let mut cursor = INTER_BASE;
        let live = plan
            .leaf_elems
            .iter()
            .enumerate()
            .map(|(s, &elems)| {
                let addr = plan.spilled.then_some(cursor);
                cursor += elems * ELEM_BYTES;
                (s, elems, addr)
            })
            .collect();
        MergeTreeKernel {
            plan,
            ways,
            depth: (usize::BITS - ways.leading_zeros()) as u64,
            throughput: cfg.merge_tree_throughput(),
            live,
            seq: plan.leaf_elems.len(),
            op: 0,
            scratch_cursor: SCRATCH_BASE,
            flops: 0,
            work_items: 0,
        }
    }
}

impl PhaseKernel for MergeTreeKernel<'_> {
    type Item = TreeOpItem;

    fn phase(&self) -> &'static str {
        MERGE_PHASE
    }

    fn pe_class(&self) -> &'static str {
        "merge_tree"
    }

    fn next(&mut self, _fb: &Feedback) -> Step<TreeOpItem> {
        let Some(op) = self.plan.ops.get(self.op) else {
            return Step::Done;
        };
        self.op += 1;
        let last = self.op == self.plan.ops.len();

        // Re-run the planner's selection: the `ways` smallest live streams,
        // ties broken by creation order.
        self.live.sort_by_key(|&(s, elems, _)| (elems, s));
        let take = self.ways.min(self.live.len());
        let picked: Vec<(usize, u64, Option<u64>)> = self.live.drain(..take).collect();
        debug_assert_eq!(
            picked.iter().map(|&(_, e, _)| e).sum::<u64>(),
            op.input_elems.iter().sum::<u64>(),
            "timing replay diverged from the functional schedule"
        );
        let in_elems: u64 = picked.iter().map(|&(_, e, _)| e).sum();
        let reads = picked
            .iter()
            .filter_map(|&(_, elems, addr)| Some((addr?, elems * ELEM_BYTES)))
            .collect();
        let out_addr = if last {
            OUT_BASE
        } else {
            let addr = self.scratch_cursor;
            self.scratch_cursor += op.out_elems * ELEM_BYTES;
            addr
        };
        // Every non-final run spills: a later op re-reads it from scratch.
        self.live.push((self.seq, op.out_elems, (!last).then_some(out_addr)));
        self.seq += 1;
        self.flops += op.collisions();
        self.work_items += 1;
        let item = TreeOpItem { reads, in_elems, out_addr, out_elems: op.out_elems };
        Step::Batch(Batch { items: vec![item], min_start: 0 })
    }

    fn execute(&mut self, item: &TreeOpItem, ctx: &mut PeCtx<'_>) {
        let t0 = ctx.time();
        for &(addr, bytes) in &item.reads {
            ctx.read_stream(addr, bytes);
        }
        // The comparator array is pipelined: after a depth-of-tree fill it
        // retires `throughput` elements per cycle regardless of fan-in.
        ctx.wait_busy_until(t0 + self.depth + item.in_elems.div_ceil(self.throughput));
        ctx.store_stream(item.out_addr, item.out_elems * ELEM_BYTES);
        ctx.track_tail();
    }

    fn finish(&mut self, stats: &mut PhaseStats) {
        stats.flops = self.flops;
        stats.work_items = self.work_items;
    }
}

/// Simulates the condensed multiply over `condensed × b`, spilling partials
/// per `plan`, returning timing statistics and the mul-PE cycle breakdown.
///
/// # Errors
///
/// Fault injection only: every PE dead, an access out of retries, or a
/// watchdog timeout ([`SimError`]). Fault-free configurations cannot fail.
pub fn simulate_condensed_multiply(
    cfg: &OuterSpaceConfig,
    condensed: &CondensedA,
    b: &Csr,
    plan: &SparchPlan,
) -> Result<(PhaseStats, CycleBreakdown), SimError> {
    let mut mem = MemorySystem::for_multiply(cfg);
    let mut pes = PeArray::new(
        cfg.sparch_mul_pes.max(1) as usize,
        1,
        cfg.outstanding_requests as usize,
    );
    let kernel = CondensedMultiplyKernel::new(condensed, b, plan.spilled);
    engine::run_kernel(cfg, &mut mem, &mut pes, kernel)
}

/// Simulates the merge tree replaying `plan`'s Huffman schedule, returning
/// timing statistics and the merge-tree cycle breakdown.
///
/// # Errors
///
/// Fault injection only, as [`simulate_condensed_multiply`].
pub fn simulate_merge_tree(
    cfg: &OuterSpaceConfig,
    plan: &SparchPlan,
) -> Result<(PhaseStats, CycleBreakdown), SimError> {
    let mut mem = MemorySystem::for_merge(cfg);
    // The comparator array is one dispatchable unit.
    let mut pes = PeArray::new(1, 1, cfg.outstanding_requests as usize);
    let kernel = MergeTreeKernel::new(cfg, plan);
    engine::run_kernel(cfg, &mut mem, &mut pes, kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineKind;
    use outerspace_gen::uniform;
    use outerspace_outer::{condense, spgemm_sparch_with_plan};

    fn sparch_cfg() -> OuterSpaceConfig {
        OuterSpaceConfig { machine: MachineKind::SpArch, ..Default::default() }
    }

    fn pipeline(
        cfg: &OuterSpaceConfig,
        n: u32,
        nnz: usize,
        seed: u64,
    ) -> (PhaseStats, CycleBreakdown, PhaseStats, CycleBreakdown, SparchPlan) {
        let a = uniform::matrix(n, n, nnz, seed);
        let (_, plan) =
            spgemm_sparch_with_plan(&a, &a, cfg.merge_tree_ways as usize).unwrap();
        let condensed = condense(&a);
        let (ms, mb) = simulate_condensed_multiply(cfg, &condensed, &a, &plan).unwrap();
        let (gs, gb) = simulate_merge_tree(cfg, &plan).unwrap();
        (ms, mb, gs, gb, plan)
    }

    #[test]
    fn no_spill_regime_keeps_partials_off_dram() {
        let cfg = sparch_cfg();
        let (ms, _, gs, _, plan) = pipeline(&cfg, 64, 400, 1);
        assert!(!plan.spilled);
        assert_eq!(plan.ops.len(), 1);
        // Multiply writes nothing; the only merge traffic is the result.
        assert_eq!(ms.hbm_write_bytes, 0);
        assert_eq!(gs.hbm_read_bytes, 0);
        assert!(gs.hbm_write_bytes > 0);
        assert_eq!(ms.flops, plan.total_products());
        assert_eq!(gs.flops, plan.total_collisions());
    }

    #[test]
    fn narrow_tree_spills_and_rereads() {
        let cfg = OuterSpaceConfig { merge_tree_ways: 2, ..sparch_cfg() };
        let (ms, _, gs, _, plan) = pipeline(&cfg, 64, 600, 2);
        assert!(plan.spilled);
        // Spilled leaves hit DRAM on the way out and back in.
        assert!(ms.hbm_write_bytes >= plan.total_products() * ELEM_BYTES / 2);
        assert!(gs.hbm_read_bytes > 0);
        assert_eq!(gs.work_items, plan.ops.len() as u64);
    }

    #[test]
    fn breakdown_accounts_for_every_cycle() {
        let cfg = sparch_cfg();
        let (ms, mb, gs, gb, _) = pipeline(&cfg, 128, 1200, 3);
        assert_eq!(mb.pe_class, "mul_pe");
        assert_eq!(mb.n_pes, cfg.sparch_mul_pes);
        assert_eq!(mb.makespan, ms.cycles);
        assert_eq!(
            mb.busy_cycles + mb.stall_cycles() + mb.idle_cycles,
            mb.total_pe_cycles()
        );
        assert_eq!(gb.pe_class, "merge_tree");
        assert_eq!(gb.n_pes, 1);
        assert_eq!(gb.makespan, gs.cycles);
        assert_eq!(
            gb.busy_cycles + gb.stall_cycles() + gb.idle_cycles,
            gb.total_pe_cycles()
        );
    }

    #[test]
    fn wider_tree_is_never_slower_on_skewed_work() {
        // Skew forces many merge ops on a narrow tree; a wide tree folds
        // them into few high-throughput passes.
        let a = uniform::matrix(96, 96, 1500, 4);
        let total = |ways: u32| {
            let cfg = OuterSpaceConfig { merge_tree_ways: ways, ..sparch_cfg() };
            let (_, plan) = spgemm_sparch_with_plan(&a, &a, ways as usize).unwrap();
            let condensed = condense(&a);
            let (ms, _) =
                simulate_condensed_multiply(&cfg, &condensed, &a, &plan).unwrap();
            let (gs, _) = simulate_merge_tree(&cfg, &plan).unwrap();
            ms.cycles + gs.cycles
        };
        assert!(total(64) <= total(2));
    }

    #[test]
    fn empty_plan_is_free() {
        let cfg = sparch_cfg();
        let a = outerspace_sparse::Csr::zero(16, 16);
        let (_, plan) = spgemm_sparch_with_plan(&a, &a, 64).unwrap();
        let condensed = condense(&a);
        let (ms, _) = simulate_condensed_multiply(&cfg, &condensed, &a, &plan).unwrap();
        let (gs, _) = simulate_merge_tree(&cfg, &plan).unwrap();
        assert_eq!(ms.cycles, 0);
        assert_eq!(gs.cycles, 0);
    }

    #[test]
    fn pe_kill_degrades_but_completes() {
        let mut cfg = sparch_cfg();
        cfg.faults.pe_kill_count = 4;
        cfg.faults.pe_kill_cycle = 50;
        let a = uniform::matrix(64, 64, 500, 5);
        let (_, plan) = spgemm_sparch_with_plan(&a, &a, 64).unwrap();
        let condensed = condense(&a);
        let healthy = {
            let clean = sparch_cfg();
            simulate_condensed_multiply(&clean, &condensed, &a, &plan).unwrap().0
        };
        let (hurt, _) = simulate_condensed_multiply(&cfg, &condensed, &a, &plan).unwrap();
        assert!(hurt.cycles >= healthy.cycles);
        assert_eq!(hurt.flops, healthy.flops);
    }
}
