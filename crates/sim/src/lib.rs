//! Transaction-level timing simulator of the OuterSPACE accelerator.
//!
//! This crate reproduces the simulation methodology of the OuterSPACE paper
//! (§6): the real outer-product algorithm executes functionally (via
//! [`outerspace_outer`]) while its memory-access stream drives timing models
//! of the paper's hardware — 16 tiles × 16 PEs with 64-entry
//! outstanding-request queues, per-tile reconfigurable L0 caches (shared in
//! the multiply phase, private cache + scratchpad pairs in the merge phase),
//! four L1 victim caches, crossbars and a 16-pseudo-channel HBM (Table 2).
//! Start-up and scheduling delays are ignored, matching the paper.
//!
//! The top-level entry point is [`Simulator`]:
//!
//! ```
//! use outerspace_sim::{OuterSpaceConfig, SimError, Simulator};
//! use outerspace_sparse::Csr;
//!
//! # fn main() -> Result<(), SimError> {
//! let sim = Simulator::new(OuterSpaceConfig::default())?;
//! let a = Csr::identity(64);
//! let (c, report) = sim.spgemm(&a, &a)?;
//! assert_eq!(c.nnz(), 64);
//! assert!(report.seconds() > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! Analytic models of the paper's baseline hardware (Xeon + MKL, K40 +
//! cuSPARSE/CUSP) live in [`xmodels`]; the dynamic-allocation analysis of
//! §7.3 lives in [`alloc`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alloc;
mod config;
pub mod engine;
mod error;
pub mod faults;
pub mod interval;
pub mod layout;
pub mod machine;
pub mod mem;
pub mod model;
pub mod phases;
mod stats;
pub mod trace;
pub mod xmodels;

pub use config::{ConfigError, FaultModel, MachineKind, OuterSpaceConfig};
pub use error::SimError;
pub use stats::{PhaseStats, SimReport};

use outerspace_outer as outer;
use outerspace_sparse::{Csc, Csr, SparseVector};

use model::SpgemmPipeline;

/// Seed-stream consumers for silent-corruption application, one per kernel
/// so identical fault seeds corrupt SpGEMM and SpMV results independently.
const SILENT_CONSUMER_SPGEMM: u64 = 0x51;
const SILENT_CONSUMER_ELEMENTWISE: u64 = 0x52;
const SILENT_CONSUMER_SPMV: u64 = 0x53;

/// The OuterSPACE system simulator.
///
/// Construction validates the configuration once; every simulation both
/// *executes* the kernel (returning real results, validated in tests against
/// the reference implementations) and *times* it on the modeled hardware.
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: OuterSpaceConfig,
}

impl Simulator {
    /// Creates a simulator for `cfg`.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] describing the violated hardware
    /// invariant if `cfg` is inconsistent.
    pub fn new(cfg: OuterSpaceConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        Ok(Simulator { cfg })
    }

    /// The configuration in use.
    pub fn config(&self) -> &OuterSpaceConfig {
        &self.cfg
    }

    /// The machine model this simulator runs (selected by
    /// [`OuterSpaceConfig::machine`]).
    pub fn machine_model(&self) -> &'static dyn model::MachineModel {
        model::for_kind(self.cfg.machine)
    }

    /// Simulates `C = A × B` (both CR in, CR out) on the configured machine
    /// model. Under [`MachineKind::OuterSpace`] format conversion is
    /// charged for non-symmetric `A` as the paper's evaluation does (§7.1:
    /// "we account for format conversion overheads for non-symmetric
    /// matrices ... to model the worst-case scenario"); under
    /// [`MachineKind::SpArch`] no conversion phase exists.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Sparse`] if `a.ncols() != b.nrows()`, or a
    /// fault-injection failure ([`SimError::AllPesFailed`],
    /// [`SimError::MemoryFailure`], [`SimError::WatchdogTimeout`]) when the
    /// configured [`FaultModel`] overwhelms the machine.
    pub fn spgemm(&self, a: &Csr, b: &Csr) -> Result<(Csr, SimReport), SimError> {
        // Reject malformed operands before simulating (and charging) any
        // phase — the same guard every software kernel uses.
        outerspace_sparse::ops::check_spgemm_dims(
            (a.nrows(), a.ncols()),
            (b.nrows(), b.ncols()),
        )
        .map_err(outerspace_sparse::SparseError::from)?;
        let pipe = self.machine_model().spgemm(&self.cfg, a, b)?;
        Ok(self.deliver(pipe))
    }

    /// Simulates `C = A × B` with `A` already in the machine's preferred
    /// operand format (no preprocessing charged) — the steady state of
    /// chained multiplications (§4.3).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Sparse`] if `a.ncols() != b.nrows()`, or a
    /// fault-injection failure under an overwhelming [`FaultModel`].
    pub fn spgemm_cc_operand(
        &self,
        a: &Csc,
        b: &Csr,
    ) -> Result<(Csr, SimReport), SimError> {
        let pipe = self.machine_model().spgemm_preconverted(&self.cfg, a, b)?;
        Ok(self.deliver(pipe))
    }

    /// Wraps a machine-model pipeline into the delivered result: builds the
    /// [`SimReport`] and materializes any silently-corrupted reads in the
    /// functional values.
    fn deliver(&self, pipe: SpgemmPipeline) -> (Csr, SimReport) {
        let SpgemmPipeline { mut c, convert, multiply, merge, .. } = pipe;
        let report = SimReport { convert, multiply, merge, config: self.cfg.clone() };
        self.apply_silent_corruption(
            c.values_mut(),
            report.silent_corruptions(),
            SILENT_CONSUMER_SPGEMM,
        );
        (c, report)
    }

    /// Materializes ECC-escaped bit flips in the functional result: the
    /// timing models tally how many reads were silently corrupted, and the
    /// same count of deterministic value corruptions is applied here so
    /// downstream verification layers see exactly what faulty hardware would
    /// have delivered. Zero events (the fault-free common case) is a no-op.
    fn apply_silent_corruption(&self, values: &mut [f64], events: u64, consumer: u64) {
        if events > 0 {
            faults::corrupt_values(
                values,
                events,
                faults::split_seed(self.cfg.faults.seed, consumer),
            );
        }
    }

    /// Simulates an N-way element-wise sum `A₁ + A₂ + … + A_N` (§5.6's
    /// element-wise routines reuse the merge-phase datapath). Returns the
    /// functional result and a report whose merge phase carries the timing
    /// (no multiply/convert phases run).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Sparse`] on inconsistent shapes or an empty
    /// operand list, or a fault-injection failure under an overwhelming
    /// [`FaultModel`].
    pub fn elementwise_sum(&self, mats: &[&Csr]) -> Result<(Csr, SimReport), SimError> {
        let (mut out, _) = outer::sum_all(mats)?;
        let merge = phases::elementwise::simulate_elementwise(&self.cfg, mats, &out)?;
        self.apply_silent_corruption(
            out.values_mut(),
            merge.silent_corruptions,
            SILENT_CONSUMER_ELEMENTWISE,
        );
        Ok((
            out,
            SimReport {
                convert: None,
                multiply: PhaseStats::default(),
                merge,
                config: self.cfg.clone(),
            },
        ))
    }

    /// Simulates `y = A × x` with the outer-product SpMV (§5.6). `A` is
    /// consumed column-wise (CC); no conversion is charged, matching the
    /// paper's SpMV evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Sparse`] if `x.len != a.ncols()`, or a
    /// fault-injection failure under an overwhelming [`FaultModel`].
    pub fn spmv(
        &self,
        a: &Csc,
        x: &SparseVector,
    ) -> Result<(SparseVector, SimReport), SimError> {
        let (mut y, _) = outer::spmv(a, x)?;
        let report = phases::spmv::simulate_spmv(&self.cfg, a, x, y.nnz() as u64)?;
        self.apply_silent_corruption(
            &mut y.values,
            report.silent_corruptions(),
            SILENT_CONSUMER_SPMV,
        );
        Ok((y, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_gen::{rmat, uniform, vector};
    use outerspace_sparse::ops;

    fn sim() -> Simulator {
        Simulator::new(OuterSpaceConfig::default()).expect("default config valid")
    }

    #[test]
    fn functional_result_matches_reference() {
        let a = uniform::matrix(96, 96, 800, 1);
        let b = uniform::matrix(96, 96, 800, 2);
        let (c, _) = sim().spgemm(&a, &b).unwrap();
        assert!(c.approx_eq(&ops::spgemm_reference(&a, &b).unwrap(), 1e-9));
    }

    #[test]
    fn report_has_all_phases_for_asymmetric_input() {
        let a = uniform::matrix(128, 128, 1000, 3);
        let (_, rep) = sim().spgemm(&a, &a).unwrap();
        assert!(rep.convert.is_some(), "asymmetric input must charge conversion");
        assert!(rep.multiply.cycles > 0);
        assert!(rep.merge.cycles > 0);
        assert!(rep.seconds() > 0.0);
        assert!(rep.gflops() > 0.0);
    }

    #[test]
    fn symmetric_input_skips_conversion() {
        let g = rmat::graph500(256, 2000, 4); // undirected = symmetric
        let (_, rep) = sim().spgemm(&g, &g).unwrap();
        assert!(rep.convert.is_none());
    }

    #[test]
    fn preconverted_operand_skips_conversion() {
        let a = uniform::matrix(64, 64, 400, 5);
        let (c1, rep) = sim().spgemm_cc_operand(&a.to_csc(), &a).unwrap();
        assert!(rep.convert.is_none());
        let (c2, _) = sim().spgemm(&a, &a).unwrap();
        assert!(c1.approx_eq(&c2, 0.0));
    }

    #[test]
    fn denser_work_achieves_higher_gflops() {
        // OuterSPACE's throughput grows with arithmetic intensity.
        let sparse = uniform::matrix(2048, 2048, 8_000, 6);
        let dense = uniform::matrix(512, 512, 8_000, 6);
        let (_, r1) = sim().spgemm(&sparse, &sparse).unwrap();
        let (_, r2) = sim().spgemm(&dense, &dense).unwrap();
        assert!(r2.gflops() > r1.gflops());
    }

    #[test]
    fn bandwidth_utilization_is_sane() {
        let a = uniform::matrix(4096, 4096, 60_000, 7);
        let (_, rep) = sim().spgemm(&a, &a).unwrap();
        let mult_bw = rep.multiply.bandwidth_utilization(&rep.config);
        let merge_bw = rep.merge.bandwidth_utilization(&rep.config);
        assert!((0.05..=1.0).contains(&mult_bw), "multiply bw {mult_bw}");
        assert!((0.05..=1.0).contains(&merge_bw), "merge bw {merge_bw}");
    }

    #[test]
    fn spmv_functional_and_timed() {
        let a = uniform::matrix(1024, 1024, 16_384, 8).to_csc();
        let x = vector::sparse(1024, 0.1, 9);
        let (y, rep) = sim().spmv(&a, &x).unwrap();
        assert!(y.nnz() > 0);
        assert!(rep.total_cycles() > 0);
    }

    #[test]
    fn silent_faults_corrupt_results_without_changing_timing() {
        let a = uniform::matrix(96, 96, 800, 21);
        let b = uniform::matrix(96, 96, 800, 22);
        let clean = sim().spgemm(&a, &b).unwrap();
        let faulty_sim = Simulator::new(OuterSpaceConfig {
            faults: FaultModel { ber_silent: 2e-6, seed: 77, ..Default::default() },
            ..Default::default()
        })
        .unwrap();
        let (c, rep) = faulty_sim.spgemm(&a, &b).unwrap();
        assert!(rep.silent_corruptions() > 0, "silent events must be tallied");
        assert_eq!(
            rep.total_cycles(),
            clean.1.total_cycles(),
            "escaped faults are undetected: timing must match the clean run"
        );
        assert_eq!(rep.fault_events(), 0, "no detected fault events");
        let reference = ops::spgemm_reference(&a, &b).unwrap();
        assert!(clean.0.approx_eq(&reference, 1e-9));
        assert!(
            !c.approx_eq(&reference, 1e-9),
            "the delivered result must actually be corrupted"
        );
        assert_eq!(c.nnz(), reference.nnz(), "corruption flips values, not structure");
        assert!(c.values().iter().all(|v| v.is_finite()));
        // Deterministic: same config, same corruption.
        let (c2, _) = faulty_sim.spgemm(&a, &b).unwrap();
        assert!(c.approx_eq(&c2, 0.0));
    }

    #[test]
    fn silent_faults_corrupt_spmv_results() {
        let a = uniform::matrix(512, 512, 8_192, 23).to_csc();
        let x = vector::sparse(512, 0.2, 24);
        let faulty_sim = Simulator::new(OuterSpaceConfig {
            faults: FaultModel { ber_silent: 5e-6, seed: 78, ..Default::default() },
            ..Default::default()
        })
        .unwrap();
        let (y, rep) = faulty_sim.spmv(&a, &x).unwrap();
        assert!(rep.silent_corruptions() > 0);
        let (y_clean, _) = sim().spmv(&a, &x).unwrap();
        assert_eq!(y.indices, y_clean.indices);
        assert_ne!(y.values, y_clean.values, "SpMV values must be corrupted");
    }

    #[test]
    fn invalid_config_rejected() {
        let cfg = OuterSpaceConfig { n_tiles: 0, ..Default::default() };
        assert!(Simulator::new(cfg).is_err());
    }

    #[test]
    fn shape_mismatch_propagates() {
        let a = uniform::matrix(8, 9, 20, 1);
        let b = uniform::matrix(8, 8, 20, 2);
        assert!(sim().spgemm(&a, &b).is_err());
    }
}
