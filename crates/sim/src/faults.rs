//! Deterministic fault injection (transient HBM faults, PE hard failures).
//!
//! The paper's reliability story is implicit — OuterSPACE inherits HBM's ECC
//! and the tiles are independent SPMD islands — so this module makes the
//! failure modes explicit and measurable:
//!
//! * **Transient read corruption**: each HBM block transfer is corrupted
//!   with probability `hbm_ber × block_bits`; ECC detects the error and the
//!   controller re-reads the block, charging `ecc_retry_cycles` plus a fresh
//!   channel booking.
//! * **Dropped responses**: a read response vanishes with probability
//!   `drop_rate`; the PE times out after `timeout_cycles` (doubling per
//!   attempt, exponential backoff) and re-issues. After `max_retries`
//!   consecutive drops the access is declared failed and the phase aborts
//!   with [`crate::SimError::MemoryFailure`].
//! * **PE hard failures**: `pe_kill_count` PEs (chosen deterministically
//!   from `seed`) die once their local clock passes `pe_kill_cycle`; the
//!   greedy scheduler detects the death at the next dispatch, requeues the
//!   in-flight work onto the earliest surviving PE of the same group
//!   (extending the §6 load-balancing argument to partial arrays) and
//!   excludes the corpse from further scheduling.
//!
//! All randomness is *counter-based*: an event is a pure hash of
//! `(seed, stream, access index, attempt)` compared against the configured
//! probability. Two consequences the tests rely on: a run with all fault
//! knobs at zero consumes no entropy and is cycle-identical to a build
//! without this module, and raising a probability only grows the event set
//! (the underlying uniform draws are unchanged), so degradation is monotone.

use crate::config::FaultModel;

/// Stream tags decorrelate the per-purpose hash sequences.
const STREAM_ECC: u64 = 0x45cc_0000_0000_0001;
const STREAM_DROP: u64 = 0xd809_0000_0000_0002;
const STREAM_KILL: u64 = 0x1c11_0000_0000_0003;
const STREAM_SPLIT: u64 = 0x5717_0000_0000_0004;
const STREAM_SILENT: u64 = 0x51e7_0000_0000_0005;

/// Cap on the exponential-backoff shift so `timeout << attempt` cannot
/// overflow with adversarial retry counts.
const MAX_BACKOFF_SHIFT: u32 = 16;

/// An HBM access that exhausted its retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFault {
    /// Byte address of the failed read.
    pub addr: u64,
    /// Delivery attempts made (initial + retries) before giving up.
    pub attempts: u32,
}

/// splitmix64 finalizer: a high-quality 64-bit mixing function.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives an independent fault seed for consumer `consumer` of a shared
/// base seed. Two consumers of the same base (e.g. concurrent service
/// workers, or a sim sweep running beside a server) get decorrelated but
/// individually deterministic fault streams: `split_seed(base, i)` is a pure
/// function of `(base, i)`, and drawing from one derived stream never
/// perturbs another. Splits compose — a per-request seed can itself be split
/// per retry attempt.
pub fn split_seed(base: u64, consumer: u64) -> u64 {
    mix(base ^ mix(consumer ^ STREAM_SPLIT))
}

/// Stateless fault-event source for the memory system.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    seed: u64,
    /// Per-block corruption probability (`hbm_ber × block_bits`, clamped).
    ecc_p: f64,
    /// Per-delivery drop probability.
    drop_p: f64,
    /// Per-block *silent* corruption probability (`ber_silent × block_bits`,
    /// clamped): the bit flip escapes ECC, so no error is raised, no latency
    /// is charged, and the delivered value is simply wrong.
    silent_p: f64,
    /// Retries allowed after the initial delivery attempt.
    pub max_retries: u32,
    /// Latency of one ECC detect-and-correct re-read.
    pub ecc_retry_cycles: u64,
    /// Base response timeout before a re-issue (doubles per attempt).
    pub timeout_cycles: u64,
}

impl FaultInjector {
    /// Builds the memory-fault source for `model`, or `None` when both
    /// memory-fault knobs are zero (the hot path then skips injection
    /// entirely, keeping fault-free runs cycle-identical to the baseline).
    pub fn for_memory(model: &FaultModel, block_bytes: u32) -> Option<Self> {
        if model.hbm_ber <= 0.0 && model.drop_rate <= 0.0 && model.ber_silent <= 0.0 {
            return None;
        }
        let block_bits = f64::from(block_bytes) * 8.0;
        Some(FaultInjector {
            seed: model.seed,
            ecc_p: (model.hbm_ber * block_bits).clamp(0.0, 1.0),
            drop_p: model.drop_rate.clamp(0.0, 1.0),
            silent_p: (model.ber_silent * block_bits).clamp(0.0, 1.0),
            max_retries: model.max_retries,
            ecc_retry_cycles: model.ecc_retry_cycles,
            timeout_cycles: model.timeout_cycles,
        })
    }

    /// Re-seeds this injector for an independent consumer: the returned
    /// injector keeps every probability and latency knob but draws from the
    /// fault stream of [`split_seed`]`(self.seed, consumer)`. Use one split
    /// per concurrent consumer so their event sequences neither share nor
    /// interleave a single counter sequence.
    pub fn split(&self, consumer: u64) -> FaultInjector {
        FaultInjector { seed: split_seed(self.seed, consumer), ..self.clone() }
    }

    /// Uniform draw in [0, 1) for `(stream, a, b)` — pure in all arguments.
    fn unit(&self, stream: u64, a: u64, b: u64) -> f64 {
        let h = mix(self.seed ^ mix(stream ^ mix(a ^ mix(b))));
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Whether HBM read number `read_idx` arrives corrupted (ECC detects it).
    pub fn ecc_corrupted(&self, read_idx: u64) -> bool {
        self.ecc_p > 0.0 && self.unit(STREAM_ECC, read_idx, 0) < self.ecc_p
    }

    /// Whether delivery `attempt` of HBM read `read_idx` is dropped.
    pub fn response_dropped(&self, read_idx: u64, attempt: u32) -> bool {
        self.drop_p > 0.0 && self.unit(STREAM_DROP, read_idx, u64::from(attempt)) < self.drop_p
    }

    /// Backoff delay before re-issuing after `attempt` consecutive drops.
    pub fn backoff_cycles(&self, attempt: u32) -> u64 {
        self.timeout_cycles << attempt.min(MAX_BACKOFF_SHIFT)
    }

    /// Whether HBM read number `read_idx` is corrupted *silently*: the flip
    /// escapes ECC, so the memory system raises no error and charges no
    /// retry — the event is only tallied so the functional result can be
    /// corrupted to match. Independent of [`Self::ecc_corrupted`] by stream
    /// separation: `ber_silent` models the post-ECC escape rate, not a
    /// fraction of the detected-error rate.
    pub fn silent_escape(&self, read_idx: u64) -> bool {
        self.silent_p > 0.0 && self.unit(STREAM_SILENT, read_idx, 1) < self.silent_p
    }
}

/// Deterministically corrupts `v` the way an escaped DRAM bit flip would:
/// one mantissa bit in the 44..=51 range (relative error between 2⁻⁸ and
/// 2⁻¹) chosen by hashing `salt` is XOR-flipped. Exponent and sign bits are
/// left alone so finite values stay finite — the corruption is *silent*,
/// never a NaN/Inf a downstream range check would catch for free.
pub fn corrupt_value(v: f64, salt: u64) -> f64 {
    let bit = 44 + (mix(salt ^ STREAM_SILENT) % 8);
    f64::from_bits(v.to_bits() ^ (1u64 << bit))
}

/// Applies `events` deterministic single-value corruptions (seeded by
/// `seed`) to `values`, returning how many were actually applied (0 when
/// the slice is empty). Used by the simulator to make silent escapes
/// visible in the functional result, and by the serve layer's chaos hooks.
pub fn corrupt_values(values: &mut [f64], events: u64, seed: u64) -> u64 {
    if values.is_empty() {
        return 0;
    }
    for e in 0..events {
        let h = mix(seed ^ mix(STREAM_SILENT ^ e));
        let idx = (h % values.len() as u64) as usize;
        values[idx] = corrupt_value(values[idx], h);
    }
    events
}

/// The deterministic set of PEs (indices into a `total`-sized array) that
/// `model` condemns to hard failure: a seeded partial Fisher–Yates draw of
/// `pe_kill_count` distinct indices.
pub fn kill_set(model: &FaultModel, total: usize) -> Vec<usize> {
    let count = (model.pe_kill_count as usize).min(total);
    if count == 0 {
        return Vec::new();
    }
    let mut pool: Vec<usize> = (0..total).collect();
    let mut picked = Vec::with_capacity(count);
    for i in 0..count {
        let h = mix(model.seed ^ mix(STREAM_KILL ^ mix(i as u64)));
        let j = (h % pool.len() as u64) as usize;
        picked.push(pool.swap_remove(j));
    }
    picked.sort_unstable();
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(ber: f64, drop: f64) -> FaultModel {
        FaultModel { seed: 7, hbm_ber: ber, drop_rate: drop, ..FaultModel::default() }
    }

    #[test]
    fn inactive_model_builds_no_injector() {
        assert!(FaultInjector::for_memory(&model(0.0, 0.0), 64).is_none());
        assert!(FaultInjector::for_memory(&model(1e-6, 0.0), 64).is_some());
        assert!(FaultInjector::for_memory(&model(0.0, 0.1), 64).is_some());
    }

    #[test]
    fn events_are_deterministic_and_seed_sensitive() {
        let a = FaultInjector::for_memory(&model(1e-3, 0.2), 64).unwrap();
        let b = FaultInjector::for_memory(&model(1e-3, 0.2), 64).unwrap();
        let mut c_model = model(1e-3, 0.2);
        c_model.seed = 8;
        let c = FaultInjector::for_memory(&c_model, 64).unwrap();
        let pat =
            |inj: &FaultInjector| (0..512).map(|i| inj.ecc_corrupted(i)).collect::<Vec<_>>();
        assert_eq!(pat(&a), pat(&b));
        assert_ne!(pat(&a), pat(&c));
    }

    #[test]
    fn event_sets_grow_monotonically_with_probability() {
        // The same uniform draw underlies every probability, so any event
        // fired at a low rate also fires at every higher rate.
        let lo = FaultInjector::for_memory(&model(1e-4, 0.05), 64).unwrap();
        let hi = FaultInjector::for_memory(&model(1e-2, 0.40), 64).unwrap();
        for i in 0..4096 {
            if lo.ecc_corrupted(i) {
                assert!(hi.ecc_corrupted(i));
            }
            if lo.response_dropped(i, 0) {
                assert!(hi.response_dropped(i, 0));
            }
        }
    }

    #[test]
    fn event_rate_tracks_probability() {
        let inj = FaultInjector::for_memory(&model(0.0, 0.25), 64).unwrap();
        let n = 20_000;
        let hits = (0..n).filter(|&i| inj.response_dropped(i, 0)).count();
        let rate = hits as f64 / n as f64;
        assert!((0.22..0.28).contains(&rate), "observed drop rate {rate}");
    }

    #[test]
    fn backoff_is_exponential_and_overflow_safe() {
        let inj = FaultInjector::for_memory(&model(0.0, 0.1), 64).unwrap();
        assert_eq!(inj.backoff_cycles(0), inj.timeout_cycles);
        assert_eq!(inj.backoff_cycles(3), inj.timeout_cycles << 3);
        // Saturates instead of overflowing for absurd attempt counts.
        assert_eq!(inj.backoff_cycles(200), inj.timeout_cycles << 16);
    }

    /// Determinism regression for the split API: derived streams are pure
    /// functions of `(base seed, consumer)`, distinct consumers decorrelate,
    /// and drawing from one split never perturbs a sibling — the property
    /// that lets service workers and sim sweeps share one configured seed.
    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let base = FaultInjector::for_memory(&model(1e-3, 0.2), 64).unwrap();
        let pat = |inj: &FaultInjector| {
            (0..1024)
                .map(|i| (inj.ecc_corrupted(i), inj.response_dropped(i, 0)))
                .collect::<Vec<_>>()
        };

        // Same consumer twice: identical stream (pure in its inputs).
        assert_eq!(pat(&base.split(1)), pat(&base.split(1)));
        // Distinct consumers: decorrelated streams, and none inherits the
        // parent's sequence.
        assert_ne!(pat(&base.split(1)), pat(&base.split(2)));
        assert_ne!(pat(&base.split(1)), pat(&base));
        // Interleaved consumption cannot perturb a sibling: replaying one
        // split after heavy draws on another reproduces the same events.
        let a = base.split(7);
        let before = pat(&a);
        let b = base.split(8);
        for i in 0..10_000 {
            let _ = b.ecc_corrupted(i);
        }
        assert_eq!(pat(&a), before);
        // Splits compose (per-request seed re-split per retry attempt).
        assert_ne!(pat(&base.split(1).split(0)), pat(&base.split(1).split(1)));
        // The scalar helper agrees with the injector-level split.
        assert_eq!(split_seed(7, 3), split_seed(7, 3));
        assert_ne!(split_seed(7, 3), split_seed(7, 4));
        assert_ne!(split_seed(7, 3), split_seed(8, 3));
    }

    #[test]
    fn silent_escapes_activate_the_injector_and_stay_finite() {
        // A silent-only model must still build an injector (the timing knobs
        // all zero keeps detected-fault paths dormant).
        let m = FaultModel { seed: 7, ber_silent: 1e-4, ..FaultModel::default() };
        let inj = FaultInjector::for_memory(&m, 64).expect("silent-only model is active");
        // Deterministic, and decorrelated from the ECC stream.
        let pat: Vec<bool> = (0..50_000).map(|i| inj.silent_escape(i)).collect();
        let again: Vec<bool> = (0..50_000).map(|i| inj.silent_escape(i)).collect();
        assert_eq!(pat, again);
        let hits = pat.iter().filter(|&&b| b).count();
        // p = 1e-4 * 512 bits ≈ 5.1e-2 per block.
        let rate = hits as f64 / 50_000.0;
        assert!((0.04..0.065).contains(&rate), "observed silent rate {rate}");
        // No detected events leak out of a silent-only model.
        assert!((0..50_000).all(|i| !inj.ecc_corrupted(i) && !inj.response_dropped(i, 0)));

        // Corruption perturbs measurably, finitely, and deterministically.
        for salt in 0..256 {
            let v = 1.234_567_f64;
            let c = corrupt_value(v, salt);
            assert!(c.is_finite());
            assert_ne!(c, v);
            let rel = ((c - v) / v).abs();
            assert!((1e-4..0.6).contains(&rel), "relative change {rel}");
            assert_eq!(c, corrupt_value(v, salt));
        }
        let mut vals = vec![1.0, 2.0, 3.0, 4.0];
        let mut vals2 = vals.clone();
        assert_eq!(corrupt_values(&mut vals, 3, 99), 3);
        corrupt_values(&mut vals2, 3, 99);
        assert_eq!(vals, vals2);
        assert_ne!(vals, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(corrupt_values(&mut [], 5, 99), 0);
    }

    #[test]
    fn kill_set_is_deterministic_distinct_and_bounded() {
        let mut m = FaultModel { pe_kill_count: 5, ..FaultModel::default() };
        m.seed = 3;
        let a = kill_set(&m, 256);
        let b = kill_set(&m, 256);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        let mut uniq = a.clone();
        uniq.dedup();
        assert_eq!(uniq.len(), 5, "indices must be distinct: {a:?}");
        assert!(a.iter().all(|&p| p < 256));
        // Requesting more kills than PEs exist clamps to the array size.
        m.pe_kill_count = 9999;
        assert_eq!(kill_set(&m, 16).len(), 16);
        m.pe_kill_count = 0;
        assert!(kill_set(&m, 16).is_empty());
    }
}
