//! Simulation outputs: per-phase counters and derived metrics.

use outerspace_json::impl_to_json;

use crate::config::OuterSpaceConfig;

/// Counters for one simulated phase (multiply, merge, conversion, …).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseStats {
    /// Phase length in PE cycles (makespan over all PEs).
    pub cycles: u64,
    /// Useful floating-point operations (multiplies + additions; the paper's
    /// GFLOPS basis excludes bookkeeping).
    pub flops: u64,
    /// Bytes read from HBM.
    pub hbm_read_bytes: u64,
    /// Bytes written to HBM.
    pub hbm_write_bytes: u64,
    /// L0 lookups that hit.
    pub l0_hits: u64,
    /// L0 lookups that missed.
    pub l0_misses: u64,
    /// L1 lookups that hit.
    pub l1_hits: u64,
    /// L1 lookups that missed.
    pub l1_misses: u64,
    /// Work items executed (chunks in multiply, rows in merge).
    pub work_items: u64,
    /// PEs that did any work.
    pub active_pes: u32,
    /// Busy cycles summed over PEs (for utilization).
    pub busy_pe_cycles: u64,
    /// ECC detect-and-retry events on HBM reads (fault injection).
    pub ecc_retries: u64,
    /// HBM read responses dropped and recovered by timeout + retry.
    pub dropped_responses: u64,
    /// Extra latency cycles charged by fault recovery (ECC retries plus
    /// backoff timeouts), summed over all faulted accesses.
    pub fault_penalty_cycles: u64,
    /// HBM bit flips that escaped ECC (`ber_silent`). Deliberately *not*
    /// part of [`PhaseStats::fault_events`]: the hardware never detected
    /// them, so they surface only here and as value corruption in the
    /// functional result.
    pub silent_corruptions: u64,
    /// Work items requeued from a failed PE onto survivors in its group.
    pub requeued_work_items: u64,
    /// PEs that failed hard during this phase.
    pub killed_pes: u32,
    /// PE cycles stalled waiting on L0-serviced data, summed over PEs.
    pub stall_l0_cycles: u64,
    /// PE cycles stalled waiting on L1-serviced data.
    pub stall_l1_cycles: u64,
    /// PE cycles stalled waiting on HBM-serviced data.
    pub stall_hbm_cycles: u64,
    /// PE cycles idle (before first dispatch, between work items, or after
    /// a PE's last item while stragglers finish).
    pub idle_pe_cycles: u64,
    /// PE cycles lost to hard-failure recovery: survivors waiting for a
    /// death to become observable, re-executed overshoot, and dead PEs'
    /// post-kill tails. 0 in fault-free runs.
    pub lost_pe_cycles: u64,
}

impl PhaseStats {
    /// L0 hit rate in [0, 1]; 0 when there were no lookups.
    pub fn l0_hit_rate(&self) -> f64 {
        ratio(self.l0_hits, self.l0_hits + self.l0_misses)
    }

    /// L1 hit rate in [0, 1]; 0 when there were no lookups.
    pub fn l1_hit_rate(&self) -> f64 {
        ratio(self.l1_hits, self.l1_hits + self.l1_misses)
    }

    /// Total HBM traffic in bytes.
    pub fn hbm_bytes(&self) -> u64 {
        self.hbm_read_bytes + self.hbm_write_bytes
    }

    /// Total fault-recovery events (ECC retries + dropped responses +
    /// requeued work items) in this phase.
    pub fn fault_events(&self) -> u64 {
        self.ecc_retries + self.dropped_responses + self.requeued_work_items
    }

    /// Achieved HBM bandwidth as a fraction of peak, given `cfg`.
    pub fn bandwidth_utilization(&self, cfg: &OuterSpaceConfig) -> f64 {
        let secs = cfg.cycles_to_seconds(self.cycles);
        if secs == 0.0 {
            return 0.0;
        }
        (self.hbm_bytes() as f64 / secs) / cfg.hbm_total_bandwidth_bytes_per_sec() as f64
    }

    /// Accumulates another phase's counters (cycles take the max: phases on
    /// disjoint PEs overlap; same-phase shards are summed by the caller).
    pub fn absorb_parallel(&mut self, o: &PhaseStats) {
        self.cycles = self.cycles.max(o.cycles);
        self.flops += o.flops;
        self.hbm_read_bytes += o.hbm_read_bytes;
        self.hbm_write_bytes += o.hbm_write_bytes;
        self.l0_hits += o.l0_hits;
        self.l0_misses += o.l0_misses;
        self.l1_hits += o.l1_hits;
        self.l1_misses += o.l1_misses;
        self.work_items += o.work_items;
        self.active_pes = self.active_pes.max(o.active_pes);
        self.busy_pe_cycles += o.busy_pe_cycles;
        self.ecc_retries += o.ecc_retries;
        self.dropped_responses += o.dropped_responses;
        self.fault_penalty_cycles += o.fault_penalty_cycles;
        self.silent_corruptions += o.silent_corruptions;
        self.requeued_work_items += o.requeued_work_items;
        self.killed_pes += o.killed_pes;
        self.stall_l0_cycles += o.stall_l0_cycles;
        self.stall_l1_cycles += o.stall_l1_cycles;
        self.stall_hbm_cycles += o.stall_hbm_cycles;
        self.idle_pe_cycles += o.idle_pe_cycles;
        self.lost_pe_cycles += o.lost_pe_cycles;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl_to_json!(PhaseStats {
    cycles,
    flops,
    hbm_read_bytes,
    hbm_write_bytes,
    l0_hits,
    l0_misses,
    l1_hits,
    l1_misses,
    work_items,
    active_pes,
    busy_pe_cycles,
    ecc_retries,
    dropped_responses,
    fault_penalty_cycles,
    silent_corruptions,
    requeued_work_items,
    killed_pes,
    stall_l0_cycles,
    stall_l1_cycles,
    stall_hbm_cycles,
    idle_pe_cycles,
    lost_pe_cycles,
});

/// Complete report for one simulated kernel invocation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimReport {
    /// Format-conversion phase, when one ran (§4.3).
    pub convert: Option<PhaseStats>,
    /// Multiply phase.
    pub multiply: PhaseStats,
    /// Merge phase.
    pub merge: PhaseStats,
    /// The configuration the run used (embedded so reports are
    /// self-describing when serialized).
    pub config: OuterSpaceConfig,
}

impl_to_json!(SimReport {
    convert,
    multiply,
    merge,
    config,
});

impl SimReport {
    /// Total simulated cycles across phases (phases are sequential: the
    /// merge cannot start before every partial product exists).
    pub fn total_cycles(&self) -> u64 {
        self.convert.map_or(0, |c| c.cycles) + self.multiply.cycles + self.merge.cycles
    }

    /// Total simulated wall-clock seconds.
    pub fn seconds(&self) -> f64 {
        self.config.cycles_to_seconds(self.total_cycles())
    }

    /// Useful flops across phases.
    pub fn flops(&self) -> u64 {
        self.convert.map_or(0, |c| c.flops) + self.multiply.flops + self.merge.flops
    }

    /// Achieved throughput in GFLOPS (the paper reports 2.9 GFLOPS mean on
    /// the Table 4 suite).
    pub fn gflops(&self) -> f64 {
        let s = self.seconds();
        if s == 0.0 {
            0.0
        } else {
            self.flops() as f64 / s / 1e9
        }
    }

    /// Total HBM traffic in bytes.
    pub fn hbm_bytes(&self) -> u64 {
        self.convert.map_or(0, |c| c.hbm_bytes())
            + self.multiply.hbm_bytes()
            + self.merge.hbm_bytes()
    }

    /// Total fault-recovery events across phases.
    pub fn fault_events(&self) -> u64 {
        self.convert.map_or(0, |c| c.fault_events())
            + self.multiply.fault_events()
            + self.merge.fault_events()
    }

    /// Total extra cycles charged by fault recovery across phases.
    pub fn fault_penalty_cycles(&self) -> u64 {
        self.convert.map_or(0, |c| c.fault_penalty_cycles)
            + self.multiply.fault_penalty_cycles
            + self.merge.fault_penalty_cycles
    }

    /// Total silent (ECC-escaped) corruptions across phases. When nonzero,
    /// the functional result was corrupted to match — this is the ground
    /// truth the serve layer's verification tier is tested against.
    pub fn silent_corruptions(&self) -> u64 {
        self.convert.map_or(0, |c| c.silent_corruptions)
            + self.multiply.silent_corruptions
            + self.merge.silent_corruptions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_json::ToJson;

    fn phase(cycles: u64, read: u64, write: u64) -> PhaseStats {
        PhaseStats { cycles, hbm_read_bytes: read, hbm_write_bytes: write, ..Default::default() }
    }

    #[test]
    fn hit_rates_guard_division() {
        let p = PhaseStats::default();
        assert_eq!(p.l0_hit_rate(), 0.0);
        let p = PhaseStats { l0_hits: 3, l0_misses: 1, ..Default::default() };
        assert_eq!(p.l0_hit_rate(), 0.75);
    }

    #[test]
    fn bandwidth_utilization_math() {
        let cfg = OuterSpaceConfig::default();
        // 1.5e9 cycles = 1 s; 64 GB moved over 128 GB/s peak = 50%.
        let p = phase(1_500_000_000, 32_000_000_000, 32_000_000_000);
        assert!((p.bandwidth_utilization(&cfg) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn report_totals_are_sequential() {
        let r = SimReport {
            multiply: phase(100, 0, 0),
            merge: phase(50, 0, 0),
            convert: Some(phase(25, 0, 0)),
            ..Default::default()
        };
        assert_eq!(r.total_cycles(), 175);
    }

    #[test]
    fn gflops_computation() {
        let r = SimReport {
            multiply: PhaseStats {
                cycles: 1_500_000_000,
                flops: 3_000_000_000,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!((r.gflops() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn absorb_parallel_maxes_cycles() {
        let mut a = phase(10, 5, 5);
        a.absorb_parallel(&phase(20, 1, 1));
        assert_eq!(a.cycles, 20);
        assert_eq!(a.hbm_read_bytes, 6);
    }

    #[test]
    fn fault_counters_accumulate_and_report() {
        let mut a = PhaseStats { ecc_retries: 2, dropped_responses: 1, ..Default::default() };
        let b = PhaseStats {
            ecc_retries: 3,
            requeued_work_items: 4,
            fault_penalty_cycles: 100,
            killed_pes: 1,
            ..Default::default()
        };
        a.absorb_parallel(&b);
        assert_eq!(a.ecc_retries, 5);
        assert_eq!(a.fault_events(), 5 + 1 + 4);
        assert_eq!(a.fault_penalty_cycles, 100);
        assert_eq!(a.killed_pes, 1);
        let r = SimReport { multiply: a, ..Default::default() };
        assert_eq!(r.fault_events(), 10);
        assert_eq!(r.fault_penalty_cycles(), 100);
    }

    #[test]
    fn report_serializes_with_fault_counters() {
        let r = SimReport::default();
        let json = r.to_json().to_string_compact();
        assert!(json.contains("\"ecc_retries\":0"));
        assert!(json.contains("\"convert\":null"));
    }
}
