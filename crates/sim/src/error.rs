//! The simulator's typed error, covering configuration, functional, and
//! injected-fault failure modes.

use outerspace_sparse::SparseError;

use crate::config::ConfigError;

/// Everything that can abort a simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The configuration violated a hardware invariant.
    Config(ConfigError),
    /// The functional kernel rejected the operands (shape mismatch, …).
    Sparse(SparseError),
    /// Fault injection killed every PE: no survivor can absorb the
    /// requeued work, so the phase cannot complete.
    AllPesFailed {
        /// Phase that ran out of processing elements.
        phase: &'static str,
    },
    /// An HBM access exhausted its retry budget (every delivery attempt of
    /// a read response was dropped).
    MemoryFailure {
        /// Phase in which the access failed.
        phase: &'static str,
        /// Byte address of the failed read.
        addr: u64,
        /// Delivery attempts made before giving up.
        attempts: u32,
    },
    /// A phase's dispatch frontier passed the configured watchdog limit
    /// without completing (runaway degradation guard).
    WatchdogTimeout {
        /// Phase the watchdog aborted.
        phase: &'static str,
        /// Earliest live-PE time when the watchdog fired.
        frontier: u64,
        /// The configured `watchdog_cycles` limit.
        limit: u64,
    },
    /// An observer's [`poll_abort`](crate::engine::KernelObserver::poll_abort)
    /// hook asked the engine to stop — the DSE dominance early-abort path:
    /// the run's partial lower bound is already Pareto-dominated, so
    /// finishing it cannot change the frontier.
    Aborted {
        /// Phase that was cut short.
        phase: &'static str,
        /// Earliest live-PE time when the abort fired (a lower bound on the
        /// makespan the full run would have had).
        frontier: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "invalid configuration: {e}"),
            SimError::Sparse(e) => write!(f, "functional kernel failed: {e}"),
            SimError::AllPesFailed { phase } => {
                write!(f, "{phase} phase: every PE has failed; no survivor to requeue onto")
            }
            SimError::MemoryFailure { phase, addr, attempts } => write!(
                f,
                "{phase} phase: HBM read of {addr:#x} failed after {attempts} delivery attempts"
            ),
            SimError::WatchdogTimeout { phase, frontier, limit } => write!(
                f,
                "{phase} phase: watchdog fired at cycle {frontier} (limit {limit})"
            ),
            SimError::Aborted { phase, frontier } => write!(
                f,
                "{phase} phase: aborted by observer at cycle {frontier} (dominance early-abort)"
            ),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            SimError::Sparse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl From<SparseError> for SimError {
    fn from(e: SparseError) -> Self {
        SimError::Sparse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_and_convert() {
        let e: SimError = ConfigError::NoProcessingElements.into();
        assert!(e.to_string().contains("invalid configuration"));
        let e: SimError =
            SparseError::ShapeMismatch { op: "spgemm", left: (2, 3), right: (4, 5) }.into();
        assert!(e.to_string().contains("functional kernel"));
        let e = SimError::MemoryFailure { phase: "multiply", addr: 0x40, attempts: 5 };
        assert!(e.to_string().contains("0x40"), "{e}");
        let e = SimError::WatchdogTimeout { phase: "merge", frontier: 10, limit: 5 };
        assert!(e.to_string().contains("watchdog"));
        let e = SimError::Aborted { phase: "multiply", frontier: 42 };
        assert!(e.to_string().contains("early-abort"), "{e}");
        assert!(SimError::AllPesFailed { phase: "multiply" }.to_string().contains("every PE"));
    }
}
