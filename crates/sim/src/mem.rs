//! Timing model of the OuterSPACE memory hierarchy (§5.3).
//!
//! Functional set-associative tag arrays give exact hit/miss classification,
//! while timing uses resource-availability accounting: every HBM
//! pseudo-channel tracks the cycle at which it is next free, so bandwidth
//! contention emerges from the access stream (the same fidelity class as the
//! paper's trace-driven gem5 models). Latencies are charged per level; MSHR
//! effects are approximated by the PEs' bounded outstanding-request queues
//! (`Machine`), which limit memory-level parallelism the same way.

use crate::config::OuterSpaceConfig;
use crate::faults::{FaultInjector, MemoryFault};

/// Hit/miss classification of one read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Serviced by the first-level (L0) cache or scratchpad.
    L0Hit,
    /// Missed L0, hit the shared L1 victim cache.
    L1Hit,
    /// Went all the way to HBM.
    Hbm,
}

/// A functional set-associative cache with LRU replacement.
#[derive(Debug, Clone)]
pub struct CacheModel {
    // Per set: resident block addresses, most recently used last.
    sets: Vec<Vec<u64>>,
    ways: usize,
    n_sets: u64,
}

impl CacheModel {
    /// Builds a cache of `size_bytes` with `ways` ways and `block_bytes`
    /// blocks. Degenerate sizes clamp to one set.
    pub fn new(size_bytes: u32, ways: u32, block_bytes: u32) -> Self {
        let blocks = (size_bytes / block_bytes).max(1) as u64;
        let n_sets = (blocks / ways.max(1) as u64).max(1);
        CacheModel {
            sets: vec![Vec::with_capacity(ways as usize); n_sets as usize],
            ways: ways.max(1) as usize,
            n_sets,
        }
    }

    /// Looks up `block` (a block-granular address), inserting it on miss.
    /// Returns true on hit.
    pub fn access(&mut self, block: u64) -> bool {
        let set = &mut self.sets[(block % self.n_sets) as usize];
        if let Some(pos) = set.iter().position(|&b| b == block) {
            let b = set.remove(pos);
            set.push(b);
            return true;
        }
        if set.len() == self.ways {
            set.remove(0);
        }
        set.push(block);
        false
    }

    /// Inserts `block` without counting an access (used for victim fills).
    pub fn fill(&mut self, block: u64) {
        let set = &mut self.sets[(block % self.n_sets) as usize];
        if set.contains(&block) {
            return;
        }
        if set.len() == self.ways {
            set.remove(0);
        }
        set.push(block);
    }

    /// Empties the cache (phase transitions reconfigure and flush, §5.4).
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

/// Counter bundle the memory system updates on every access.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemCounters {
    /// L0 hits / misses.
    pub l0_hits: u64,
    /// L0 misses.
    pub l0_misses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// Bytes read from HBM (block granular).
    pub hbm_read_bytes: u64,
    /// Bytes written to HBM (block granular).
    pub hbm_write_bytes: u64,
    /// ECC detect-and-retry events (fault injection).
    pub ecc_retries: u64,
    /// Read responses dropped and re-issued (fault injection).
    pub dropped_responses: u64,
    /// Extra completion-latency cycles charged by fault recovery.
    pub fault_penalty_cycles: u64,
    /// Bit flips that escaped ECC (fault injection, `ber_silent`). Unlike
    /// every other fault counter these events are *undetected* by the
    /// simulated hardware: no retry, no latency, no error — the functional
    /// result is silently corrupted to match (see `Simulator`).
    pub silent_corruptions: u64,
}

impl MemCounters {
    /// Accumulates `delta` into `slot` without wrapping: long sweeps
    /// saturate at `u64::MAX` in release builds, and debug builds assert
    /// that the counter stayed monotone (i.e. never needed to saturate).
    pub fn accumulate(slot: &mut u64, delta: u64) {
        debug_assert!(
            slot.checked_add(delta).is_some(),
            "memory counter would overflow: {slot} + {delta}"
        );
        *slot = slot.saturating_add(delta);
    }
}

/// One HBM pseudo-channel's booking state.
///
/// The simulator dispatches work units one at a time, so requests from
/// concurrently-running PEs arrive at the model out of time order. A naive
/// `next_free` counter would serialize them behind each other's idle gaps;
/// instead the channel tracks the idle time it has accumulated
/// (`idle_credit`) and lets a later-dispatched request with an early arrival
/// *backfill* into those holes — work-conserving bandwidth accounting, as a
/// real FCFS channel interleaving the PEs would achieve.
#[derive(Debug, Clone, Copy, Default)]
struct Channel {
    free: u64,
    idle_credit: u64,
    /// Total service cycles booked (occupancy, for bandwidth breakdowns).
    busy: u64,
}

/// How much recorded idle time a channel may later backfill, in multiples
/// of the block service time. This mirrors the reordering capacity of an
/// FR-FCFS memory controller with a deep (~100-entry) per-channel request
/// queue: holes older than the window are lost bandwidth. The value is the
/// model's utilization-calibration knob — 96 slots lands the simulated
/// suite in the paper's measured utilization bands (59.5-68.9 % multiply,
/// 46.5-64.8 % merge, §7.1.2).
const BACKFILL_WINDOW_SLOTS: u64 = 96;

impl Channel {
    /// Books `service` cycles for a request arriving at `arrival`; returns
    /// the cycle when the transfer completes (excluding access latency).
    fn book(&mut self, arrival: u64, service: u64) -> u64 {
        let credit_cap = BACKFILL_WINDOW_SLOTS * service;
        self.busy += service;
        if arrival >= self.free {
            // The channel has been idle since `free`: record the hole, up to
            // the scheduler's reordering window.
            self.idle_credit = (self.idle_credit + (arrival - self.free)).min(credit_cap);
            self.free = arrival + service;
            arrival + service
        } else if self.idle_credit >= service {
            // Backfill into previously-recorded idle time.
            self.idle_credit -= service;
            arrival + service
        } else {
            self.idle_credit = 0;
            self.free += service;
            self.free
        }
    }
}

/// The reconfigurable L0 arrangement (§5.4): multiply mode shares one large
/// L0 per tile; merge mode splits the same SRAM into private per-worker-pair
/// domains. Both legacy constructors are expressed through this one
/// description, so ablations can explore other splits uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L0Mode {
    /// Independent L0 domains (tiles in multiply mode, worker pairs in
    /// merge mode).
    pub domains: usize,
    /// Capacity of each domain in bytes.
    pub bytes_per_domain: u32,
    /// Associativity of each domain.
    pub ways: u32,
}

impl L0Mode {
    /// The multiply-phase split: one shared L0 per tile.
    pub fn multiply(cfg: &OuterSpaceConfig) -> Self {
        L0Mode {
            domains: cfg.n_tiles as usize,
            bytes_per_domain: cfg.l0_multiply_bytes,
            ways: cfg.l0_ways,
        }
    }

    /// The merge-phase split: one private cache per worker pair (§5.4.2).
    pub fn merge(cfg: &OuterSpaceConfig) -> Self {
        L0Mode {
            domains: (cfg.n_tiles * cfg.merge_pairs_per_tile()) as usize,
            bytes_per_domain: cfg.l0_merge_bytes,
            ways: cfg.l0_ways,
        }
    }
}

/// The shared memory system: L0 caches (one per tile in multiply mode, one
/// per worker pair in merge mode), L1 victim caches, and HBM channels.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    l0: Vec<CacheModel>,
    l1: Vec<CacheModel>,
    /// Booking state of each HBM pseudo-channel.
    chan: Vec<Channel>,
    /// Counters for the current phase.
    pub counters: MemCounters,
    block_bytes: u64,
    hbm_cycles_per_block: u64,
    hbm_latency: u64,
    l0_hit_cycles: u64,
    l1_hit_cycles: u64,
    xbar_cycles: u64,
    n_l1: u64,
    /// Fault source for transient HBM faults; `None` keeps the read path
    /// byte-for-byte identical to the fault-free model.
    injector: Option<FaultInjector>,
    /// Monotone index of HBM reads (the fault hash's access counter).
    read_index: u64,
    /// First access that exhausted its retry budget, if any.
    failure: Option<MemoryFault>,
}

impl MemorySystem {
    /// Builds the multiply-phase configuration: one shared L0 per tile.
    pub fn for_multiply(cfg: &OuterSpaceConfig) -> Self {
        Self::with_mode(cfg, L0Mode::multiply(cfg))
    }

    /// Builds the merge-phase configuration: one private cache per worker
    /// pair (the reconfigured state of §5.4.2).
    pub fn for_merge(cfg: &OuterSpaceConfig) -> Self {
        Self::with_mode(cfg, L0Mode::merge(cfg))
    }

    /// Builds the memory system with an explicit L0 split.
    pub fn with_mode(cfg: &OuterSpaceConfig, mode: L0Mode) -> Self {
        MemorySystem {
            l0: (0..mode.domains)
                .map(|_| CacheModel::new(mode.bytes_per_domain, mode.ways, cfg.block_bytes))
                .collect(),
            l1: (0..cfg.n_l1)
                .map(|_| CacheModel::new(cfg.l1_bytes, cfg.l1_ways, cfg.block_bytes))
                .collect(),
            chan: vec![Channel::default(); cfg.hbm_channels as usize],
            counters: MemCounters::default(),
            block_bytes: cfg.block_bytes as u64,
            hbm_cycles_per_block: cfg.hbm_cycles_per_block().round() as u64,
            hbm_latency: cfg.hbm_latency_cycles().round() as u64,
            l0_hit_cycles: cfg.l0_hit_cycles,
            l1_hit_cycles: cfg.l1_hit_cycles,
            xbar_cycles: cfg.xbar_cycles,
            n_l1: cfg.n_l1 as u64,
            injector: FaultInjector::for_memory(&cfg.faults, cfg.block_bytes),
            read_index: 0,
            failure: None,
        }
    }

    /// Number of L0 domains (tiles or worker pairs).
    pub fn n_l0(&self) -> usize {
        self.l0.len()
    }

    /// Block address containing byte address `addr`.
    pub fn block_of(&self, addr: u64) -> u64 {
        addr / self.block_bytes
    }

    /// Reads the block containing `addr` from L0 domain `l0_idx` at cycle
    /// `now`; returns the data-ready cycle and the level that serviced it.
    pub fn read(&mut self, l0_idx: usize, addr: u64, now: u64) -> (u64, AccessOutcome) {
        let block = self.block_of(addr);
        if self.l0[l0_idx].access(block) {
            MemCounters::accumulate(&mut self.counters.l0_hits, 1);
            return (now + self.l0_hit_cycles, AccessOutcome::L0Hit);
        }
        MemCounters::accumulate(&mut self.counters.l0_misses, 1);
        // L1 selection: blocks are interleaved over the L1s by address, the
        // same striping the crossbar implements.
        let l1_idx = (block % self.n_l1) as usize;
        if self.l1[l1_idx].access(block) {
            MemCounters::accumulate(&mut self.counters.l1_hits, 1);
            return (now + self.l0_hit_cycles + self.l1_hit_cycles, AccessOutcome::L1Hit);
        }
        MemCounters::accumulate(&mut self.counters.l1_misses, 1);
        MemCounters::accumulate(&mut self.counters.hbm_read_bytes, self.block_bytes);
        let arrival = now + self.l0_hit_cycles + self.l1_hit_cycles + self.xbar_cycles;
        let ch = (block % self.chan.len() as u64) as usize;
        let mut done = self.chan[ch].book(arrival, self.hbm_cycles_per_block);
        if let Some(inj) = self.injector.clone() {
            done = self.inject_read_faults(&inj, ch, addr, done);
        }
        (done + self.hbm_latency, AccessOutcome::Hbm)
    }

    /// Applies transient-fault recovery to an HBM read completing at `done`;
    /// returns the (possibly delayed) delivery cycle.
    fn inject_read_faults(&mut self, inj: &FaultInjector, ch: usize, addr: u64, done: u64) -> u64 {
        let idx = self.read_index;
        self.read_index += 1;
        let base = done;
        let mut done = done;
        // Dropped responses: the PE times out (exponential backoff) and
        // re-issues; each retry is a fresh block transfer on the channel.
        let mut attempt = 0u32;
        while inj.response_dropped(idx, attempt) {
            MemCounters::accumulate(&mut self.counters.dropped_responses, 1);
            if attempt >= inj.max_retries {
                self.failure.get_or_insert(MemoryFault { addr, attempts: attempt + 1 });
                break;
            }
            let wait = inj.backoff_cycles(attempt);
            MemCounters::accumulate(&mut self.counters.hbm_read_bytes, self.block_bytes);
            done = self.chan[ch].book(done + wait, self.hbm_cycles_per_block);
            attempt += 1;
        }
        // ECC: corruption is detected on delivery and corrected by a
        // re-read, costing the detect latency plus another transfer.
        if inj.ecc_corrupted(idx) {
            MemCounters::accumulate(&mut self.counters.ecc_retries, 1);
            MemCounters::accumulate(&mut self.counters.hbm_read_bytes, self.block_bytes);
            done = self.chan[ch].book(done + inj.ecc_retry_cycles, self.hbm_cycles_per_block);
        }
        // Silent escapes: the flip sails past ECC, so the *only* effect is
        // the tally — no retry, no extra traffic, no latency. The simulator
        // corrupts the functional result to match after the phase completes;
        // timing stays identical to a run without the escape.
        if inj.silent_escape(idx) {
            MemCounters::accumulate(&mut self.counters.silent_corruptions, 1);
        }
        MemCounters::accumulate(&mut self.counters.fault_penalty_cycles, done - base);
        done
    }

    /// First access that exhausted its retry budget, if any (the phase
    /// driver turns this into [`crate::SimError::MemoryFailure`]).
    pub fn failure(&self) -> Option<MemoryFault> {
        self.failure
    }

    /// Reads `bytes` of *streaming* data starting at `addr` (touches every
    /// block in the range). Returns the cycle when the last block arrives.
    pub fn read_stream(&mut self, l0_idx: usize, addr: u64, bytes: u64, now: u64) -> u64 {
        if bytes == 0 {
            return now;
        }
        let first = self.block_of(addr);
        let last = self.block_of(addr + bytes - 1);
        let mut done = now;
        for b in first..=last {
            let (t, _) = self.read(l0_idx, b * self.block_bytes, now);
            done = done.max(t);
        }
        done
    }

    /// Writes `bytes` starting at `addr` with the multiply phase's
    /// write-no-allocate policy (§5.4.1): the stores bypass the caches and
    /// occupy HBM channel bandwidth, but the PE does not wait for them
    /// (posted writes through the outstanding-request queue).
    pub fn write_stream(&mut self, addr: u64, bytes: u64, now: u64) {
        if bytes == 0 {
            return;
        }
        let first = self.block_of(addr);
        let last = self.block_of(addr + bytes - 1);
        for b in first..=last {
            MemCounters::accumulate(&mut self.counters.hbm_write_bytes, self.block_bytes);
            let ch = (b % self.chan.len() as u64) as usize;
            let _ = self.chan[ch].book(now, self.hbm_cycles_per_block);
        }
    }

    /// Drains the counters, returning the snapshot and resetting to zero.
    pub fn take_counters(&mut self) -> MemCounters {
        std::mem::take(&mut self.counters)
    }

    /// The cycle when all HBM channels are drained (end-of-phase barrier).
    pub fn quiesce_cycle(&self) -> u64 {
        self.chan.iter().map(|c| c.free).max().unwrap_or(0)
    }

    /// Service cycles booked on each HBM pseudo-channel so far (occupancy
    /// numerators for the per-channel bandwidth breakdown).
    pub fn channel_busy(&self) -> Vec<u64> {
        self.chan.iter().map(|c| c.busy).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> OuterSpaceConfig {
        OuterSpaceConfig::default()
    }

    #[test]
    fn cache_lru_within_set() {
        // 4 blocks, 2 ways -> 2 sets. Blocks 0 and 2 map to set 0.
        let mut c = CacheModel::new(256, 2, 64);
        assert!(!c.access(0));
        assert!(!c.access(2));
        assert!(c.access(0)); // still resident
        assert!(!c.access(4)); // evicts 2 (LRU after 0 was touched)
        assert!(c.access(0));
        assert!(!c.access(2)); // was evicted
    }

    #[test]
    fn repeated_read_hits_l0() {
        let mut m = MemorySystem::for_multiply(&cfg());
        let (_, first) = m.read(0, 0x1000, 0);
        assert_eq!(first, AccessOutcome::Hbm);
        let (t, second) = m.read(0, 0x1008, 100);
        assert_eq!(second, AccessOutcome::L0Hit);
        assert_eq!(t, 100 + cfg().l0_hit_cycles);
    }

    #[test]
    fn cross_tile_sharing_goes_through_l1() {
        let mut m = MemorySystem::for_multiply(&cfg());
        let (_, a) = m.read(0, 0x2000, 0);
        assert_eq!(a, AccessOutcome::Hbm);
        // A different tile misses its own L0 but finds the block in L1.
        let (_, b) = m.read(1, 0x2000, 10);
        assert_eq!(b, AccessOutcome::L1Hit);
    }

    #[test]
    fn channel_contention_serializes() {
        let mut m = MemorySystem::for_multiply(&cfg());
        let stride = 64 * 16; // same channel every time (16 channels)
        // Ten simultaneous arrivals on one channel: after the small initial
        // idle credit (the 15-cycle L0+L1+crossbar traversal) is consumed,
        // completions must serialize at the 12-cycle block service time.
        let times: Vec<u64> =
            (0..10).map(|i| m.read(i as usize % 16, stride * i, 0).0).collect();
        let diffs: Vec<u64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        // Steady-state spacing equals the service time.
        assert!(diffs[5..].iter().all(|&d| d == 12), "tail spacing {diffs:?}");
        // Aggregate: 10 blocks cannot complete faster than 10 service slots
        // minus the initial credit.
        assert!(times[9] - times[0] >= 8 * 12);
    }

    #[test]
    fn channel_backfill_conserves_bandwidth() {
        // A late-dispatched request with an early arrival may slot into a
        // recorded idle hole, but total service never exceeds wall time.
        let mut ch = Channel::default();
        let a = ch.book(100, 12); // leaves a 100-cycle hole behind it
        assert_eq!(a, 112);
        let b = ch.book(0, 12); // backfills into the hole
        assert_eq!(b, 12);
        // Credit shrinks: after 8 more backfills the hole is used up.
        for _ in 0..7 {
            ch.book(0, 12);
        }
        let late = ch.book(0, 12);
        assert!(late > 112, "credit exhausted, must queue: {late}");
    }

    #[test]
    fn different_channels_do_not_contend() {
        let mut m = MemorySystem::for_multiply(&cfg());
        let (t1, _) = m.read(0, 0, 0);
        let (t2, _) = m.read(1, 64, 0); // next block -> next channel
        assert_eq!(t1, t2);
    }

    #[test]
    fn stream_reads_touch_every_block() {
        let mut m = MemorySystem::for_multiply(&cfg());
        m.read_stream(0, 0, 64 * 10, 0);
        assert_eq!(m.counters.hbm_read_bytes, 64 * 10);
        // Re-reading the same range hits in L0 (fits in 16 kB).
        let c0 = m.counters;
        m.read_stream(0, 0, 64 * 10, 1000);
        assert_eq!(m.counters.hbm_read_bytes, c0.hbm_read_bytes);
        assert_eq!(m.counters.l0_hits, 10);
    }

    #[test]
    fn writes_charge_bandwidth_but_not_caches() {
        let mut m = MemorySystem::for_multiply(&cfg());
        m.write_stream(0, 128, 0);
        assert_eq!(m.counters.hbm_write_bytes, 128);
        assert_eq!(m.counters.l0_hits + m.counters.l0_misses, 0);
        assert!(m.quiesce_cycle() > 0);
    }

    #[test]
    fn merge_mode_has_private_domains() {
        let m = MemorySystem::for_merge(&cfg());
        assert_eq!(m.n_l0(), 16 * 4); // 16 tiles x 4 pairs
    }

    /// The config-driven constructor must reproduce both legacy L0 shapes
    /// exactly: same domain counts, and behaviorally identical timing and
    /// counters over a deterministic access stream.
    #[test]
    fn l0_mode_reproduces_legacy_shapes_exactly() {
        let c = cfg();
        assert_eq!(
            L0Mode::multiply(&c),
            L0Mode { domains: 16, bytes_per_domain: c.l0_multiply_bytes, ways: c.l0_ways }
        );
        assert_eq!(
            L0Mode::merge(&c),
            L0Mode { domains: 64, bytes_per_domain: c.l0_merge_bytes, ways: c.l0_ways }
        );
        for (mut legacy, mut modal) in [
            (MemorySystem::for_multiply(&c), MemorySystem::with_mode(&c, L0Mode::multiply(&c))),
            (MemorySystem::for_merge(&c), MemorySystem::with_mode(&c, L0Mode::merge(&c))),
        ] {
            assert_eq!(legacy.n_l0(), modal.n_l0());
            let n = legacy.n_l0() as u64;
            for i in 0..4096u64 {
                // Strided + re-visited addresses exercise hits at every
                // level across every domain.
                let addr = (i % 97) * 64 * 7 + (i / 97) * 4096;
                let dom = (i % n) as usize;
                assert_eq!(legacy.read(dom, addr, i), modal.read(dom, addr, i));
            }
            let (a, b) = (legacy.take_counters(), modal.take_counters());
            assert_eq!(
                (a.l0_hits, a.l0_misses, a.l1_hits, a.l1_misses, a.hbm_read_bytes),
                (b.l0_hits, b.l0_misses, b.l1_hits, b.l1_misses, b.hbm_read_bytes)
            );
        }
    }

    #[test]
    fn counter_accumulation_saturates_instead_of_wrapping() {
        let mut w = 7u64;
        MemCounters::accumulate(&mut w, 3);
        assert_eq!(w, 10);
        if cfg!(debug_assertions) {
            // Debug builds flag the (would-be) wrap loudly.
            let r = std::panic::catch_unwind(|| {
                let mut v = u64::MAX - 1;
                MemCounters::accumulate(&mut v, 5);
                v
            });
            assert!(r.is_err(), "debug builds must assert on saturation");
        } else {
            // Release builds clamp instead of wrapping around.
            let mut v = u64::MAX - 1;
            MemCounters::accumulate(&mut v, 5);
            assert_eq!(v, u64::MAX);
        }
    }

    #[test]
    fn channel_busy_tracks_booked_service() {
        let mut m = MemorySystem::for_multiply(&cfg());
        // 10 blocks on consecutive channels: 12 service cycles each.
        m.read_stream(0, 0, 64 * 10, 0);
        let busy = m.channel_busy();
        assert_eq!(busy.len(), 16);
        assert_eq!(busy.iter().filter(|&&b| b == 12).count(), 10);
        // Writes book bandwidth too.
        m.write_stream(0, 64 * 16, 100);
        assert!(m.channel_busy().iter().all(|&b| b >= 12));
    }

    #[test]
    fn zero_byte_stream_is_noop() {
        let mut m = MemorySystem::for_multiply(&cfg());
        assert_eq!(m.read_stream(0, 64, 0, 7), 7);
        m.write_stream(64, 0, 7);
        assert_eq!(m.counters.hbm_write_bytes, 0);
    }

    fn faulty_cfg(ber: f64, drop: f64) -> OuterSpaceConfig {
        let mut c = cfg();
        c.faults.seed = 11;
        c.faults.hbm_ber = ber;
        c.faults.drop_rate = drop;
        c
    }

    /// Distinct blocks, so every read goes to HBM and rolls the fault dice.
    fn sweep(m: &mut MemorySystem, n: u64) -> u64 {
        (0..n).map(|i| m.read(0, i * 64 * 1024, i).0).max().unwrap_or(0)
    }

    #[test]
    fn zero_fault_config_is_byte_identical_to_baseline() {
        let mut plain = MemorySystem::for_multiply(&cfg());
        let mut zeroed = MemorySystem::for_multiply(&faulty_cfg(0.0, 0.0));
        for i in 0..200u64 {
            assert_eq!(plain.read(0, i * 4096, i * 3), zeroed.read(0, i * 4096, i * 3));
        }
        assert_eq!(plain.counters.fault_penalty_cycles, 0);
        assert_eq!(zeroed.counters.fault_penalty_cycles, 0);
    }

    #[test]
    fn ecc_retries_charge_latency_and_traffic() {
        let mut m = MemorySystem::for_multiply(&faulty_cfg(1e-3, 0.0));
        let last = sweep(&mut m, 2000);
        assert!(m.counters.ecc_retries > 0, "1e-3 BER must corrupt some of 2000 blocks");
        assert_eq!(m.counters.dropped_responses, 0);
        assert!(m.counters.fault_penalty_cycles >= m.counters.ecc_retries * 173);
        // Each retry re-reads the block.
        assert_eq!(
            m.counters.hbm_read_bytes,
            (2000 + m.counters.ecc_retries) * 64
        );
        let mut clean = MemorySystem::for_multiply(&cfg());
        assert!(last > sweep(&mut clean, 2000), "faults must not speed reads up");
        assert!(m.failure().is_none());
    }

    #[test]
    fn silent_escapes_corrupt_without_ecc_retries_or_latency() {
        // ber_silent alone: escapes are tallied but the simulated hardware
        // never notices — no ECC retries, no penalty cycles, no extra
        // traffic, and cycle timing identical to a fault-free run.
        let mut c = cfg();
        c.faults.seed = 11;
        c.faults.ber_silent = 1e-4;
        let mut m = MemorySystem::for_multiply(&c);
        let last = sweep(&mut m, 2000);
        assert!(m.counters.silent_corruptions > 0, "1e-4 silent BER over 2000 blocks");
        assert_eq!(m.counters.ecc_retries, 0);
        assert_eq!(m.counters.dropped_responses, 0);
        assert_eq!(m.counters.fault_penalty_cycles, 0);
        assert_eq!(m.counters.hbm_read_bytes, 2000 * 64);
        let mut clean = MemorySystem::for_multiply(&cfg());
        assert_eq!(last, sweep(&mut clean, 2000), "silent escapes must not perturb timing");
        assert!(m.failure().is_none());
        // Detected and silent faults coexist without stealing each other's
        // event streams: adding hbm_ber does not change the escape tally.
        let mut both_cfg = c.clone();
        both_cfg.faults.hbm_ber = 1e-3;
        let mut both = MemorySystem::for_multiply(&both_cfg);
        sweep(&mut both, 2000);
        assert_eq!(both.counters.silent_corruptions, m.counters.silent_corruptions);
        assert!(both.counters.ecc_retries > 0);
    }

    #[test]
    fn dropped_responses_back_off_and_eventually_fail() {
        let mut m = MemorySystem::for_multiply(&faulty_cfg(0.0, 0.3));
        sweep(&mut m, 400);
        assert!(m.counters.dropped_responses > 0);
        assert!(m.counters.fault_penalty_cycles > 512 * m.counters.dropped_responses / 2);
        // With drop rate 1.0 every attempt dies; the retry budget exhausts
        // on the very first read and the failure is latched.
        let mut dead = MemorySystem::for_multiply(&faulty_cfg(0.0, 1.0));
        dead.read(0, 0xabc0, 0);
        let f = dead.failure().expect("retry budget must exhaust");
        assert_eq!(f.addr, 0xabc0);
        assert_eq!(f.attempts, cfg().faults.max_retries + 1);
    }

    #[test]
    fn fault_penalty_is_monotone_in_rate() {
        let mut spans = Vec::new();
        for ber in [0.0, 1e-4, 1e-2] {
            let mut m = MemorySystem::for_multiply(&faulty_cfg(ber, 0.0));
            spans.push(sweep(&mut m, 1500));
        }
        assert!(spans[0] <= spans[1] && spans[1] <= spans[2], "spans {spans:?}");
    }
}
