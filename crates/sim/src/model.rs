//! The machine-model abstraction: which phase kernels run, in what order,
//! with which memory scripts.
//!
//! [`Simulator`](crate::Simulator) and the DSE executor do not hard-wire
//! the OuterSPACE pipeline any more — they ask [`for_kind`] for a
//! [`MachineModel`] and run whatever phase sequence it owns. Two machines
//! are implemented:
//!
//! - [`MachineKind::OuterSpace`]: format conversion (charged for
//!   asymmetric operands), tiled outer-product multiply into the chunked
//!   intermediate, streaming multi-way merge — the original pipeline,
//!   retrofitted with **zero drift** against the pinned golden cycle counts
//!   (`tests/golden_cycles.rs` asserts the pins byte-for-byte).
//! - [`MachineKind::SpArch`]: condensed multiply + pipelined merge tree
//!   (see [`crate::phases::sparch`]). No conversion phase exists — SpArch
//!   streams CSR `A` directly; that saving is part of the design's win and
//!   shows up as `convert: None` in every report.
//!
//! A model returns the full [`SpgemmPipeline`] — functional result, phase
//! stats, and per-class [`CycleBreakdown`]s — so callers can build
//! [`SimReport`](crate::SimReport)s, energy estimates, and utilization
//! plots without knowing which machine ran.

use outerspace_outer as outer;
use outerspace_sparse::{Csc, Csr};

use crate::config::{MachineKind, OuterSpaceConfig};
use crate::engine::CycleBreakdown;
use crate::error::SimError;
use crate::phases::merge::RowMergeInfo;
use crate::phases::{convert, merge, multiply, sparch};
use crate::stats::PhaseStats;

/// Everything one SpGEMM run through a machine model produces: the
/// functional product plus per-phase timing and attribution.
#[derive(Debug, Clone)]
pub struct SpgemmPipeline {
    /// The functional product `C = A × B`.
    pub c: Csr,
    /// Conversion-phase stats, when the machine charged one.
    pub convert: Option<PhaseStats>,
    /// Multiply-phase stats.
    pub multiply: PhaseStats,
    /// Merge-phase stats.
    pub merge: PhaseStats,
    /// Cycle attribution for the multiply-phase PE class.
    pub multiply_breakdown: CycleBreakdown,
    /// Cycle attribution for the merge-phase PE class.
    pub merge_breakdown: CycleBreakdown,
}

/// A machine model: owns the phase pipeline (which kernels run, in what
/// order, with which memory scripts) for one simulated design.
pub trait MachineModel: std::fmt::Debug + Sync {
    /// Which machine this is.
    fn kind(&self) -> MachineKind;

    /// Runs the full SpGEMM pipeline on CR operands, charging whatever
    /// preprocessing the machine needs (OuterSPACE: format conversion for
    /// asymmetric `A`; SpArch: nothing).
    ///
    /// Operand shapes must already be validated (`a.ncols() == b.nrows()`).
    ///
    /// # Errors
    ///
    /// Fault injection only: every PE dead, an access out of retries, or a
    /// watchdog timeout ([`SimError`]).
    fn spgemm(&self, cfg: &OuterSpaceConfig, a: &Csr, b: &Csr)
        -> Result<SpgemmPipeline, SimError>;

    /// Runs the pipeline with `A` already in the machine's preferred
    /// operand format — the steady state of chained multiplications. No
    /// preprocessing is charged.
    ///
    /// # Errors
    ///
    /// As [`MachineModel::spgemm`].
    fn spgemm_preconverted(
        &self,
        cfg: &OuterSpaceConfig,
        a_cc: &Csc,
        b: &Csr,
    ) -> Result<SpgemmPipeline, SimError>;
}

/// The OuterSPACE pipeline (§4–§5 of the paper).
#[derive(Debug)]
pub struct OuterSpaceModel;

impl OuterSpaceModel {
    fn run(
        &self,
        cfg: &OuterSpaceConfig,
        a_cc: &Csc,
        b: &Csr,
        convert: Option<PhaseStats>,
    ) -> Result<SpgemmPipeline, SimError> {
        // Functional execution (the result and per-row merge shapes).
        let (pp, _) = outer::multiply(a_cc, b)?;
        let (c, _) = outer::merge(pp, outer::MergeKind::Streaming);

        // Timing.
        let (multiply, intermediate, multiply_breakdown) =
            multiply::simulate_multiply_with_breakdown(cfg, a_cc, b)?;
        let rows: Vec<RowMergeInfo> = (0..intermediate.nrows())
            .map(|i| {
                let produced: u64 =
                    intermediate.row(i).iter().map(|ch| ch.len as u64).sum();
                let out = c.row_nnz(i) as u64;
                RowMergeInfo {
                    out_len: out as u32,
                    collisions: produced.saturating_sub(out) as u32,
                }
            })
            .collect();
        let (merge, merge_breakdown) =
            merge::simulate_merge_with_breakdown(cfg, &intermediate, &rows)?;
        Ok(SpgemmPipeline { c, convert, multiply, merge, multiply_breakdown, merge_breakdown })
    }
}

impl MachineModel for OuterSpaceModel {
    fn kind(&self) -> MachineKind {
        MachineKind::OuterSpace
    }

    fn spgemm(
        &self,
        cfg: &OuterSpaceConfig,
        a: &Csr,
        b: &Csr,
    ) -> Result<SpgemmPipeline, SimError> {
        // §7.1: conversion is charged for non-symmetric matrices to model
        // the worst case; symmetric operands already are their own CC form.
        let (a_cc, conv_soft) = outer::csr_to_csc_via_outer(a);
        let convert_stats = if conv_soft.skipped_symmetric {
            None
        } else {
            Some(convert::simulate_convert(cfg, a)?)
        };
        self.run(cfg, &a_cc, b, convert_stats)
    }

    fn spgemm_preconverted(
        &self,
        cfg: &OuterSpaceConfig,
        a_cc: &Csc,
        b: &Csr,
    ) -> Result<SpgemmPipeline, SimError> {
        self.run(cfg, a_cc, b, None)
    }
}

/// The SpArch-analog pipeline: condensed multiply + Huffman-scheduled merge
/// tree (see `crate::phases::sparch` and PAPERS.md).
#[derive(Debug)]
pub struct SpArchModel;

impl SpArchModel {
    fn run(&self, cfg: &OuterSpaceConfig, a: &Csr, b: &Csr) -> Result<SpgemmPipeline, SimError> {
        // Functional execution records the dataflow plan the timing model
        // replays: leaf stream sizes plus the Huffman merge schedule.
        let (c, plan) =
            outer::spgemm_sparch_with_plan(a, b, cfg.merge_tree_ways as usize)?;
        let condensed = outer::condense(a);
        let (multiply, multiply_breakdown) =
            sparch::simulate_condensed_multiply(cfg, &condensed, b, &plan)?;
        let (merge, merge_breakdown) = sparch::simulate_merge_tree(cfg, &plan)?;
        Ok(SpgemmPipeline {
            c,
            convert: None,
            multiply,
            merge,
            multiply_breakdown,
            merge_breakdown,
        })
    }
}

impl MachineModel for SpArchModel {
    fn kind(&self) -> MachineKind {
        MachineKind::SpArch
    }

    fn spgemm(
        &self,
        cfg: &OuterSpaceConfig,
        a: &Csr,
        b: &Csr,
    ) -> Result<SpgemmPipeline, SimError> {
        self.run(cfg, a, b)
    }

    fn spgemm_preconverted(
        &self,
        cfg: &OuterSpaceConfig,
        a_cc: &Csc,
        b: &Csr,
    ) -> Result<SpgemmPipeline, SimError> {
        // SpArch condenses CSR directly; a CC operand is simply handed back
        // in row form (no phase is charged either way).
        self.run(cfg, &a_cc.to_csr(), b)
    }
}

static OUTERSPACE_MODEL: OuterSpaceModel = OuterSpaceModel;
static SPARCH_MODEL: SpArchModel = SpArchModel;

/// The machine model for `kind`.
pub fn for_kind(kind: MachineKind) -> &'static dyn MachineModel {
    match kind {
        MachineKind::OuterSpace => &OUTERSPACE_MODEL,
        MachineKind::SpArch => &SPARCH_MODEL,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_gen::uniform;
    use outerspace_sparse::ops;

    #[test]
    fn both_machines_compute_the_same_product() {
        let a = uniform::matrix(96, 96, 900, 31);
        let b = uniform::matrix(96, 96, 900, 32);
        let cfg = OuterSpaceConfig::default();
        let want = ops::spgemm_reference(&a, &b).unwrap();
        for kind in [MachineKind::OuterSpace, MachineKind::SpArch] {
            let model = for_kind(kind);
            assert_eq!(model.kind(), kind);
            let pipe = model.spgemm(&cfg, &a, &b).unwrap();
            assert!(pipe.c.approx_eq(&want, 1e-9), "{kind} product diverged");
            assert!(pipe.multiply.cycles > 0);
            assert!(pipe.merge.cycles > 0);
        }
    }

    #[test]
    fn sparch_never_charges_conversion() {
        let a = uniform::matrix(64, 64, 500, 33);
        let cfg = OuterSpaceConfig::default();
        let pipe = for_kind(MachineKind::SpArch).spgemm(&cfg, &a, &a).unwrap();
        assert!(pipe.convert.is_none());
        // OuterSPACE charges it for the same (asymmetric) operand.
        let pipe = for_kind(MachineKind::OuterSpace).spgemm(&cfg, &a, &a).unwrap();
        assert!(pipe.convert.is_some());
    }

    #[test]
    fn preconverted_paths_agree_with_direct_runs() {
        let a = uniform::matrix(64, 64, 450, 34);
        let b = uniform::matrix(64, 64, 450, 35);
        let cfg = OuterSpaceConfig::default();
        for kind in [MachineKind::OuterSpace, MachineKind::SpArch] {
            let model = for_kind(kind);
            let direct = model.spgemm(&cfg, &a, &b).unwrap();
            let pre = model.spgemm_preconverted(&cfg, &a.to_csc(), &b).unwrap();
            assert!(pre.convert.is_none());
            assert!(pre.c.approx_eq(&direct.c, 1e-9));
        }
    }

    #[test]
    fn breakdown_classes_identify_the_machine() {
        let a = uniform::matrix(64, 64, 500, 36);
        let cfg = OuterSpaceConfig::default();
        let o = for_kind(MachineKind::OuterSpace).spgemm(&cfg, &a, &a).unwrap();
        assert_eq!(o.multiply_breakdown.pe_class, "tile_pe");
        assert_eq!(o.merge_breakdown.pe_class, "merge_worker");
        let s = for_kind(MachineKind::SpArch).spgemm(&cfg, &a, &a).unwrap();
        assert_eq!(s.multiply_breakdown.pe_class, "mul_pe");
        assert_eq!(s.merge_breakdown.pe_class, "merge_tree");
    }
}
