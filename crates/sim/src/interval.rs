//! Interval (sampled-window) simulation — the fast-path estimator behind
//! the DSE interval tier.
//!
//! A full simulation is dominated by two O(flops) costs: the functional
//! software SpGEMM that materialises every partial product, and the
//! multiply-phase engine that walks one item per operand element through
//! the cache and HBM models. The merge and convert engines, by contrast,
//! replay coarse *metadata* — stream lengths and collision counts — and
//! are cheap at any problem size. The estimator therefore avoids all
//! O(flops) work:
//!
//! 1. **Merge metadata is computed structurally, never functionally.**
//!    Per-row output lengths come from stamp-array unions of `B`-row
//!    patterns over `A`'s rows (a couple of machine ops per elementary
//!    product, no allocation or sorting); the SpArch-analog merge schedule
//!    is synthesised from exact structural leaf sizes by replaying the
//!    planner's Huffman policy with a survival-rate shrink model fitted
//!    (by bisection) so the final stream matches the structural result
//!    estimate. The real merge kernels then replay that metadata exactly.
//! 2. **Sampled work runs in the full run's regime, not a miniature of
//!    it.** The OuterSPACE merge replays a row sample on a machine shrunk
//!    to match ([`structural_merge_outerspace`]) so utilization and HBM
//!    contention stay representative and the sampled makespan estimates
//!    the full makespan directly. OuterSPACE multiply column windows are
//!    sampled every [`IntervalOpts::stride`]-th and extrapolated by exact
//!    work weight — except heavy (hub-column) windows, which are always
//!    simulated, row-subsampled down to roughly one mean window's work
//!    and extrapolated within themselves. Leaving hubs to the stride
//!    lottery is a classic ratio-estimator skew: a sampled hub
//!    extrapolates its superlinear cost to the whole population, a
//!    skipped one vanishes from it (observed as 2-3x swings on RMAT).
//!    The SpArch-analog multiply instead samples `A` *rows* (interleaved
//!    groups of every stride-th non-empty row) against the full `B`:
//!    condensed column `k` of a row sample is a row-subset of the full
//!    condensed column `k`, so the leaf widths, per-entry `B`-row stream
//!    lengths and the spill regime all survive sampling — a re-condensed
//!    k-column slice preserves none of them (observed as a spill-regime
//!    dependent 20% underestimate on wide merge trees).
//!
//! The result is a synthetic [`SimReport`] whose counters feed the same
//! area/power/energy models as a full run. Residual systematic bias
//! (window-boundary cache warm-up, the shrink-model schedule) is absorbed
//! by the DSE tier's calibration factor, validated against full runs on a
//! held-out sample (see `DESIGN.md` §16).
//!
//! The estimate is a pure function of `(cfg, operands, opts)`: window
//! boundaries, strata and the sampled subsets are deterministic, so DSE
//! reports built from it stay byte-identical across runs and threads.
//!
//! An [`AbortProbe`] threads the DSE dominance early-abort through the
//! estimator: the exact convert + merge cycles seed the lower bound before
//! any multiply window runs, and between windows (plus inside the multiply
//! engine loop via [`KernelObserver::poll_abort`]) the probe sees a
//! monotone lower bound on the final estimated cycle count and may stop
//! the point with [`SimError::Aborted`].

use outerspace_outer as outer;
use outerspace_outer::{SparchMergeOp, SparchPlan};
use outerspace_sparse::{Csc, Csr, Index};

use crate::config::{MachineKind, OuterSpaceConfig};
use crate::engine::{self, KernelObserver};
use crate::error::SimError;
use crate::layout::IntermediateLayout;
use crate::machine::PeArray;
use crate::mem::MemorySystem;
use crate::phases::merge::RowMergeInfo;
use crate::phases::multiply::MultiplyKernel;
use crate::phases::sparch::{simulate_merge_tree, CondensedMultiplyKernel};
use crate::phases::{convert, merge};
use crate::stats::{PhaseStats, SimReport};

/// A multiply window is "heavy" when it carries at least this many times
/// the mean non-empty window's work. Heavy windows are always simulated
/// (row-subsampled down to roughly one mean window's work) instead of
/// being left to the stride lottery: a skipped hub window extrapolates to
/// a large bias, a sampled one to a large overshoot.
const HEAVY_WINDOW_FACTOR: u128 = 4;

/// Sampling parameters of the interval estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalOpts {
    /// Number of equal column windows the shared dimension is split into.
    pub windows: u32,
    /// Every `stride`-th *light* window is simulated (1 = all of them,
    /// i.e. a full-fidelity multiply paid window by window); heavy
    /// windows are always simulated regardless of the stride.
    /// OuterSPACE's merge rows are sub-sampled at `min(stride, 4)` on a
    /// proportionally shrunken machine.
    pub stride: u32,
}

impl Default for IntervalOpts {
    fn default() -> Self {
        // 64 windows / stride 16 simulates ~1/16 of the light work plus
        // every heavy unit: comfortably past the 10x points-per-CPU-hour
        // target while keeping >= 4 sampled windows for the error bar.
        IntervalOpts { windows: 64, stride: 16 }
    }
}

/// Early-abort probe: consulted with monotone lower bounds on the final
/// estimated total cycles while the estimate is being built.
pub trait AbortProbe {
    /// Return `true` to abort the run ([`SimError::Aborted`]).
    fn should_abort(&mut self, cycles_lower_bound: u64) -> bool;
}

/// The probe that never aborts.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoAbortProbe;

impl AbortProbe for NoAbortProbe {
    fn should_abort(&mut self, _cycles_lower_bound: u64) -> bool {
        false
    }
}

/// Everything one interval estimate produces.
#[derive(Debug, Clone)]
pub struct IntervalEstimate {
    /// Per-phase counters: convert exact, merge replayed from structural
    /// metadata (heavy rows exact, light rows extrapolated), multiply
    /// extrapolated from the sampled windows.
    pub report: SimReport,
    /// Result non-zeros — structural estimate from row-pattern unions
    /// (exact when `stride == 1` covers every row).
    pub result_nnz: u64,
    /// Relative 95% half-width of the cycle estimate from window-to-window
    /// multiply sampling variance alone (calibration spread is layered on
    /// by the DSE tier).
    pub rel_err: f64,
    /// Total sampling units: multiply column windows for OuterSPACE,
    /// interleaved `A`-row groups for the SpArch analog.
    pub windows_total: u32,
    /// Non-empty sampling units (positive work weight).
    pub windows_nonempty: u32,
    /// Units actually simulated (all heavy + every stride-th light).
    pub windows_sampled: u32,
    /// Exact total elementary products (= flops of the full run).
    pub work_total: u64,
    /// Elementary products covered by the simulated windows.
    pub work_sampled: u64,
    /// Busy share of the multiply-phase PE class over the sampled windows.
    pub multiply_busy_share: f64,
    /// Busy share of the merge-phase PE class (structural-metadata replay).
    pub merge_busy_share: f64,
    /// Work-weighted mean HBM channel occupancy over the sampled windows.
    pub hbm_mean_occupancy: f64,
}

/// Bridges the engine's [`KernelObserver::poll_abort`] hook to an
/// [`AbortProbe`], offsetting the in-phase frontier by the cycles already
/// accounted from the exact phases and earlier windows.
struct EngineAbort<'p> {
    offset: u64,
    probe: &'p mut dyn AbortProbe,
}

impl<T> KernelObserver<T> for EngineAbort<'_> {
    fn poll_abort(&mut self, frontier: u64) -> bool {
        self.probe.should_abort(self.offset.saturating_add(frontier))
    }
}

/// Columns `lo..hi` of `a` as a standalone `nrows x (hi-lo)` matrix.
fn csc_col_window(a: &Csc, lo: Index, hi: Index) -> Csc {
    let cp = a.col_ptr();
    let (s, e) = (cp[lo as usize], cp[hi as usize]);
    let col_ptr: Vec<usize> = cp[lo as usize..=hi as usize].iter().map(|p| p - s).collect();
    Csc::from_raw_parts_unchecked(
        a.nrows(),
        hi - lo,
        col_ptr,
        a.row_indices()[s..e].to_vec(),
        a.values()[s..e].to_vec(),
    )
}

/// `a` with only every `r`-th row's entries kept (same shape): the interior
/// row-subsample used to shrink a heavy window's work while preserving its
/// column (hub) structure.
fn csc_filter_rows(a: &Csc, r: u32) -> Csc {
    let mut col_ptr = Vec::with_capacity(a.ncols() as usize + 1);
    let mut rows = Vec::new();
    let mut vals = Vec::new();
    col_ptr.push(0);
    for k in 0..a.ncols() {
        let (ri, vi) = a.col(k);
        for (&i, &v) in ri.iter().zip(vi) {
            if i % r == 0 {
                rows.push(i);
                vals.push(v);
            }
        }
        col_ptr.push(rows.len());
    }
    Csc::from_raw_parts_unchecked(a.nrows(), a.ncols(), col_ptr, rows, vals)
}

/// Rows `lo..hi` of `b` as a standalone `(hi-lo) x ncols` matrix.
fn csr_row_window(b: &Csr, lo: Index, hi: Index) -> Csr {
    let rp = b.row_ptr();
    let (s, e) = (rp[lo as usize], rp[hi as usize]);
    let row_ptr: Vec<usize> = rp[lo as usize..=hi as usize].iter().map(|p| p - s).collect();
    Csr::from_raw_parts_unchecked(
        hi - lo,
        b.ncols(),
        row_ptr,
        b.col_indices()[s..e].to_vec(),
        b.values()[s..e].to_vec(),
    )
}

/// `a` with only the listed rows' entries kept (same shape). `keep` must
/// be sorted ascending. Used by the SpArch-analog multiply sampler, where
/// preserving the row indices keeps the condensed structure a faithful
/// row-subset of the full operand's.
fn csr_keep_rows(a: &Csr, keep: &[Index]) -> Csr {
    let mut row_ptr = Vec::with_capacity(a.nrows() as usize + 1);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    row_ptr.push(0);
    let mut it = keep.iter().peekable();
    for i in 0..a.nrows() {
        if it.peek() == Some(&&i) {
            it.next();
            let (ci, vi) = a.row(i);
            cols.extend_from_slice(ci);
            vals.extend_from_slice(vi);
        }
        row_ptr.push(cols.len());
    }
    Csr::from_raw_parts_unchecked(a.nrows(), a.ncols(), row_ptr, cols, vals)
}

/// Element-wise sum of phase counters across sequential sub-simulations
/// (unlike [`PhaseStats::absorb_parallel`], cycles add: the pieces would
/// run back to back).
fn add_stats(acc: &mut PhaseStats, s: &PhaseStats) {
    acc.cycles += s.cycles;
    acc.flops += s.flops;
    acc.hbm_read_bytes += s.hbm_read_bytes;
    acc.hbm_write_bytes += s.hbm_write_bytes;
    acc.l0_hits += s.l0_hits;
    acc.l0_misses += s.l0_misses;
    acc.l1_hits += s.l1_hits;
    acc.l1_misses += s.l1_misses;
    acc.work_items += s.work_items;
    acc.active_pes = acc.active_pes.max(s.active_pes);
    acc.busy_pe_cycles += s.busy_pe_cycles;
    acc.ecc_retries += s.ecc_retries;
    acc.dropped_responses += s.dropped_responses;
    acc.fault_penalty_cycles += s.fault_penalty_cycles;
    acc.silent_corruptions += s.silent_corruptions;
    acc.requeued_work_items += s.requeued_work_items;
    acc.killed_pes = acc.killed_pes.max(s.killed_pes);
    acc.stall_l0_cycles += s.stall_l0_cycles;
    acc.stall_l1_cycles += s.stall_l1_cycles;
    acc.stall_hbm_cycles += s.stall_hbm_cycles;
    acc.idle_pe_cycles += s.idle_pe_cycles;
    acc.lost_pe_cycles += s.lost_pe_cycles;
}

/// `v * num / den` in u128, rounded to nearest.
fn scale_u64(v: u64, num: u64, den: u64) -> u64 {
    if den == 0 {
        return 0;
    }
    ((v as u128 * num as u128 + den as u128 / 2) / den as u128) as u64
}

/// Scales every extensive counter by `num/den` (u128 intermediate, round to
/// nearest), leaving the intensive fields (`active_pes`, `killed_pes`)
/// untouched.
fn scale_stats(s: &PhaseStats, num: u64, den: u64) -> PhaseStats {
    let sc = |v: u64| scale_u64(v, num, den);
    PhaseStats {
        cycles: sc(s.cycles),
        flops: sc(s.flops),
        hbm_read_bytes: sc(s.hbm_read_bytes),
        hbm_write_bytes: sc(s.hbm_write_bytes),
        l0_hits: sc(s.l0_hits),
        l0_misses: sc(s.l0_misses),
        l1_hits: sc(s.l1_hits),
        l1_misses: sc(s.l1_misses),
        work_items: sc(s.work_items),
        active_pes: s.active_pes,
        busy_pe_cycles: sc(s.busy_pe_cycles),
        ecc_retries: sc(s.ecc_retries),
        dropped_responses: sc(s.dropped_responses),
        fault_penalty_cycles: sc(s.fault_penalty_cycles),
        silent_corruptions: sc(s.silent_corruptions),
        requeued_work_items: sc(s.requeued_work_items),
        killed_pes: s.killed_pes,
        stall_l0_cycles: sc(s.stall_l0_cycles),
        stall_l1_cycles: sc(s.stall_l1_cycles),
        stall_hbm_cycles: sc(s.stall_hbm_cycles),
        idle_pe_cycles: sc(s.idle_pe_cycles),
        lost_pe_cycles: sc(s.lost_pe_cycles),
    }
}

/// Reusable stamp array for row-pattern unions: the output length of `C`'s
/// row `i` is `|union over k in A.row(i) of pattern(B.row(k))|`, computed
/// in O(produced_i) with no allocation per row.
struct StampUnion {
    stamp: Vec<u32>,
    epoch: u32,
}

impl StampUnion {
    fn new(ncols: Index) -> Self {
        StampUnion { stamp: vec![0; ncols as usize], epoch: 0 }
    }

    fn row_out_len(&mut self, a_row_cols: &[Index], b: &Csr) -> u64 {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        let mut out = 0u64;
        for &k in a_row_cols {
            let (cols, _) = b.row(k);
            for &c in cols {
                let slot = &mut self.stamp[c as usize];
                if *slot != self.epoch {
                    *slot = self.epoch;
                    out += 1;
                }
            }
        }
        out
    }
}

/// Every `stride`-th non-empty product row, with the elementary-product
/// totals needed to extrapolate back to the full population.
struct RowSample {
    rows: Vec<Index>,
    produced_total: u64,
    produced_sampled: u64,
}

fn sample_rows(a: &Csr, b: &Csr, stride: u32) -> RowSample {
    let mut rows = Vec::new();
    let mut produced_total = 0u64;
    let mut produced_sampled = 0u64;
    let mut idx = 0usize;
    for i in 0..a.nrows() {
        let (cols, _) = a.row(i);
        let p: u64 = cols.iter().map(|&k| b.row_nnz(k) as u64).sum();
        if p == 0 {
            continue;
        }
        produced_total += p;
        if idx % stride.max(1) as usize == 0 {
            rows.push(i);
            produced_sampled += p;
        }
        idx += 1;
    }
    RowSample { rows, produced_total, produced_sampled }
}

/// The structurally derived non-multiply phases of one estimate.
struct ExactPhases {
    merge: PhaseStats,
    merge_busy: u64,
    merge_total_pe: u64,
    result_nnz: u64,
    /// SpArch only: whether the full run's leaf streams spill to DRAM —
    /// the sampled multiply windows must run in the same regime.
    spilled: bool,
}

/// Merge rows are sampled at most this coarsely, whatever the multiply
/// stride: the machine shrinks with the sample (see
/// [`structural_merge_outerspace`]), and below `n_tiles / 4` tiles the HBM
/// channel count can no longer scale down proportionally, which distorts
/// the contention regime the shrunken run is supposed to preserve.
const MERGE_STRIDE_CAP: u32 = 4;

/// OuterSPACE merge from structural metadata: every `stride`-th non-empty
/// product row (complete cross-window chunk lists in the multiply kernel's
/// k-major allocation order, output lengths from stamp unions) replayed on
/// a machine shrunk to match — `n_tiles / stride` tiles and the HBM
/// channel count scaled the same way.
///
/// Shrinking the machine with the sample keeps the per-worker row load and
/// the worker:channel ratio — and therefore both the utilization and the
/// contention regime — equal to the full run's, so the simulated makespan
/// estimates the full makespan *directly*: in the throughput-bound regime
/// `1/stride` of the work on `1/stride` of the machine takes the same
/// time, and in the straggler-bound regime the sampled straggler costs
/// what it costs in the full run. (Scaling a small-sample makespan by work
/// instead was observed to overestimate skewed matrices ~3x — a
/// near-empty worker pool is latency-bound where the full pool is not —
/// and a shrunken pool on a full-size HBM underestimates bandwidth-bound
/// merges ~3x.) Cycles are corrected only by the residual factor
/// `work_ratio x tiles' / n_tiles`, which is 1 when the stride divides the
/// tile count evenly; the extensive counters scale by the work ratio.
fn structural_merge_outerspace(
    cfg: &OuterSpaceConfig,
    a: &Csr,
    a_cc: &Csc,
    b: &Csr,
    stride: u32,
) -> Result<ExactPhases, SimError> {
    let stride = stride.min(MERGE_STRIDE_CAP);
    let sample = sample_rows(a, b, stride);
    if sample.rows.is_empty() {
        return Ok(ExactPhases {
            merge: PhaseStats::default(),
            merge_busy: 0,
            merge_total_pe: 0,
            result_nnz: 0,
            spilled: false,
        });
    }
    // Chunk lengths per sampled row, in MultiplyKernel allocation order
    // (k-major over the shared dimension).
    let mut slot = vec![u32::MAX; a_cc.nrows() as usize];
    for (si, &i) in sample.rows.iter().enumerate() {
        slot[i as usize] = si as u32;
    }
    let mut chunk_lists: Vec<Vec<u32>> = vec![Vec::new(); sample.rows.len()];
    for k in 0..a_cc.ncols() {
        let cb = b.row_nnz(k);
        if cb == 0 {
            continue;
        }
        let (rows_k, _) = a_cc.col(k);
        for &i in rows_k {
            let si = slot[i as usize];
            if si != u32::MAX {
                chunk_lists[si as usize].push(cb as u32);
            }
        }
    }
    let mut union = StampUnion::new(b.ncols());
    let mut layout = IntermediateLayout::new(sample.rows.len() as Index);
    let mut rows_info = Vec::with_capacity(sample.rows.len());
    let mut out_nnz = 0u64;
    for (si, &i) in sample.rows.iter().enumerate() {
        let mut prod = 0u64;
        for &len in &chunk_lists[si] {
            layout.alloc_chunk(si as Index, len);
            prod += len as u64;
        }
        let out = union.row_out_len(a.row(i).0, b);
        out_nnz += out;
        rows_info.push(RowMergeInfo {
            out_len: out as u32,
            collisions: prod.saturating_sub(out) as u32,
        });
    }

    let tiles = (cfg.n_tiles / stride).max(1);
    let channels = (cfg.hbm_channels * tiles / cfg.n_tiles).max(1);
    let shrunk = OuterSpaceConfig { n_tiles: tiles, hbm_channels: channels, ..cfg.clone() };
    let (m, bd) = merge::simulate_merge_with_breakdown(&shrunk, &layout, &rows_info)?;

    let (num, den) = (sample.produced_total, sample.produced_sampled.max(1));
    let mut merged = scale_stats(&m, num, den);
    merged.cycles = ((m.cycles as u128 * num as u128 * tiles as u128
        + (den as u128 * cfg.n_tiles as u128) / 2)
        / (den as u128 * cfg.n_tiles as u128)) as u64;
    // The shrunken pool saw fewer workers; project occupancy back onto
    // the full machine, capped at its worker count.
    merged.active_pes = (m.active_pes.saturating_mul(cfg.n_tiles / tiles))
        .min(cfg.n_tiles * cfg.merge_pairs_per_tile());
    Ok(ExactPhases {
        merge: merged,
        merge_busy: bd.busy_cycles,
        merge_total_pe: bd.total_pe_cycles(),
        result_nnz: scale_u64(out_nnz, num, den),
        spilled: false,
    })
}

/// Replays the SpArch planner's Huffman policy (`ways` smallest live
/// streams, ties by creation order) over the structural leaf sizes, with a
/// survival-rate shrink model for each op's output:
/// `out = clamp(round(in * survival), max_input, in)`. Returns the ops and
/// the final stream size.
fn synth_sparch_ops(
    leaf_elems: &[u64],
    ways: usize,
    survival: f64,
) -> (Vec<SparchMergeOp>, u64) {
    let mut live: Vec<(usize, u64)> =
        leaf_elems.iter().enumerate().map(|(s, &e)| (s, e)).collect();
    let mut seq = live.len();
    let mut ops = Vec::new();
    while live.len() > 1 {
        live.sort_by_key(|&(s, e)| (e, s));
        let take = ways.min(live.len());
        let picked: Vec<(usize, u64)> = live.drain(..take).collect();
        let in_sum: u64 = picked.iter().map(|&(_, e)| e).sum();
        let max_in: u64 = picked.iter().map(|&(_, e)| e).max().unwrap_or(0);
        let out = ((in_sum as f64 * survival).round() as u64).clamp(max_in, in_sum);
        ops.push(SparchMergeOp {
            input_elems: picked.iter().map(|&(_, e)| e).collect(),
            out_elems: out,
        });
        live.push((seq, out));
        seq += 1;
    }
    (ops, live.pop().map_or(0, |(_, e)| e))
}

/// Bisects the survival rate so the synthetic schedule's final stream hits
/// `target` (the structural result estimate) as closely as the shrink
/// model allows. The final size is monotone non-decreasing in the survival
/// rate, so 50 halvings pin it to the model's granularity.
fn fit_sparch_ops(leaf_elems: &[u64], ways: usize, target: u64) -> (Vec<SparchMergeOp>, u64) {
    if leaf_elems.len() <= 1 {
        return (Vec::new(), leaf_elems.first().copied().unwrap_or(0));
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..50 {
        let mid = 0.5 * (lo + hi);
        let (_, fin) = synth_sparch_ops(leaf_elems, ways, mid);
        if fin < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    synth_sparch_ops(leaf_elems, ways, hi)
}

/// SpArch merge from structural metadata: exact leaf sizes (one pass over
/// the condensed operand), the spill regime from the leaf count, and a
/// synthetic Huffman schedule whose shrink rate is fitted to the
/// structural result-size estimate. The real merge-tree kernel replays the
/// synthetic plan — its internal selection re-derivation matches because
/// the synthesis mirrors the planner's policy exactly.
fn structural_merge_sparch(
    cfg: &OuterSpaceConfig,
    a: &Csr,
    b: &Csr,
    sample: &RowSample,
    stride: u32,
) -> Result<ExactPhases, SimError> {
    let condensed = outer::condense(a);
    let leaf_elems: Vec<u64> = (0..condensed.width())
        .map(|k| condensed.col(k).iter().map(|e| b.row_nnz(e.col) as u64).sum())
        .collect();
    let ways = (cfg.merge_tree_ways as usize).max(2);
    let spilled = leaf_elems.len() > ways;
    let total_products: u64 = leaf_elems.iter().sum();
    let max_leaf: u64 = leaf_elems.iter().copied().max().unwrap_or(0);

    // Structural result-size estimate from sampled row unions. The true
    // result holds every key of the largest leaf, so clamp from below.
    let mut union = StampUnion::new(b.ncols());
    let out_sampled: u64 =
        sample.rows.iter().map(|&i| union.row_out_len(a.row(i).0, b)).sum();
    let target = scale_u64(out_sampled, sample.produced_total, sample.produced_sampled.max(1))
        .clamp(max_leaf, total_products.max(max_leaf));

    // Above stride 1, replay the tree on leaf *sizes* shrunk by `s` and
    // scale the cycles back up: the leaf count, the spill regime and the
    // Huffman schedule's shape are all size-ratio driven, and the tree's
    // steady-state throughput is bandwidth-bound, so the replay cost is
    // linear in the stream volume. The elementwise `div_ceil` keeps every
    // non-empty leaf alive.
    let s = stride.clamp(1, MERGE_STRIDE_CAP) as u64;
    let leaf_scaled: Vec<u64> = leaf_elems.iter().map(|&e| e.div_ceil(s)).collect();
    let total_scaled: u64 = leaf_scaled.iter().sum();
    let max_scaled: u64 = leaf_scaled.iter().copied().max().unwrap_or(0);
    let target_scaled =
        scale_u64(target, 1, s).clamp(max_scaled, total_scaled.max(max_scaled));

    let (ops, fin) = fit_sparch_ops(&leaf_scaled, ways, target_scaled);
    let plan = SparchPlan {
        condensed_width: leaf_scaled.len(),
        leaf_elems: leaf_scaled,
        spilled,
        ops,
        result_nnz: fin,
    };
    let (m, bd) = simulate_merge_tree(cfg, &plan)?;
    Ok(ExactPhases {
        merge: scale_stats(&m, s, 1),
        merge_busy: bd.busy_cycles.saturating_mul(s),
        merge_total_pe: bd.total_pe_cycles().saturating_mul(s),
        result_nnz: scale_u64(fin, s, 1),
        spilled,
    })
}

/// Shared inputs of the machine-specific multiply samplers.
struct MultiplyCtx<'x> {
    cfg: &'x OuterSpaceConfig,
    b: &'x Csr,
    /// Exact total elementary products (= flops of the full run).
    total_ep: u64,
    opts: &'x IntervalOpts,
    /// Cycles already accounted (convert + merge): offsets the abort probe.
    base_cycles: u64,
}

/// What a multiply sampler hands back for extrapolation: heavy units
/// already extrapolated within themselves, light units raw with their
/// sampled work and per-unit cycle ratios for the error bar.
#[derive(Default)]
struct MultiplySample {
    heavy: PhaseStats,
    light: PhaseStats,
    heavy_ep_sim: u64,
    light_ep_sampled: u64,
    light_ep_total: u64,
    windows_total: u32,
    windows_nonempty: u32,
    windows_sampled: u32,
    busy: u64,
    total_pe: u64,
    occ_weighted: f64,
    occ_ep: u64,
    ratios: Vec<f64>,
}

/// OuterSPACE multiply from sampled column windows of the shared
/// dimension: heavy (>= [`HEAVY_WINDOW_FACTOR`] x the mean non-empty
/// window's work) windows are always simulated, row-subsampled down to
/// roughly one mean window's work and extrapolated within the window;
/// light ones every stride-th, extrapolated by work weight. At stride 1
/// everything runs at full fidelity, so no window is split out.
fn sample_multiply_outerspace(
    ctx: &MultiplyCtx<'_>,
    a_cc: &Csc,
    probe: &mut dyn AbortProbe,
) -> Result<MultiplySample, SimError> {
    let (cfg, b, opts) = (ctx.cfg, ctx.b, ctx.opts);
    let k_dim = a_cc.ncols();
    let width = k_dim.div_ceil(opts.windows.min(k_dim.max(1))).max(1);
    let mut windows: Vec<(Index, Index, u64)> = Vec::new();
    let mut lo = 0u32;
    while lo < k_dim {
        let hi = (lo + width).min(k_dim);
        let mut ep = 0u64;
        for k in lo..hi {
            ep += a_cc.col_nnz(k) as u64 * b.row_nnz(k) as u64;
        }
        windows.push((lo, hi, ep));
        lo = hi;
    }

    struct WinPlan {
        lo: Index,
        hi: Index,
        ep: u64,
        heavy: bool,
        /// Row-subsample factor (keep every r-th row of `A`); 1 = whole window.
        r: u32,
        simulate: bool,
    }
    let nonempty_ct = windows.iter().filter(|w| w.2 > 0).count() as u128;
    let mut ms =
        MultiplySample { windows_total: windows.len() as u32, ..MultiplySample::default() };
    let mut plan: Vec<WinPlan> = Vec::new();
    let mut light_idx = 0usize;
    for &(w_lo, w_hi, ep) in &windows {
        if ep == 0 {
            continue;
        }
        ms.windows_nonempty += 1;
        let heavy = opts.stride > 1
            && ep as u128 * nonempty_ct >= HEAVY_WINDOW_FACTOR * ctx.total_ep as u128;
        let r = if heavy {
            ((ep as u128 * nonempty_ct).div_ceil(ctx.total_ep.max(1) as u128)) as u32
        } else {
            1
        };
        let simulate = heavy || {
            let pick = light_idx % opts.stride as usize == 0;
            light_idx += 1;
            pick
        };
        if !heavy {
            ms.light_ep_total += ep;
        }
        plan.push(WinPlan { lo: w_lo, hi: w_hi, ep, heavy, r, simulate });
    }

    for w in &plan {
        if !w.simulate {
            continue;
        }
        let so_far = ctx.base_cycles + ms.heavy.cycles + ms.light.cycles;
        if probe.should_abort(so_far) {
            return Err(SimError::Aborted { phase: "interval", frontier: so_far });
        }
        let b_w = csr_row_window(b, w.lo, w.hi);
        let a_w_full = csc_col_window(a_cc, w.lo, w.hi);
        // Heavy windows keep every r-th row of A: the work shrinks ~r-fold
        // while the hub columns keep their relative weight. Falls back to
        // the whole window if the filter would leave it empty.
        let (a_w, ep_sim) = if w.r > 1 {
            let f = csc_filter_rows(&a_w_full, w.r);
            let ep_sub: u64 = (0..f.ncols())
                .map(|j| f.col_nnz(j) as u64 * b_w.row_nnz(j) as u64)
                .sum();
            if ep_sub == 0 { (a_w_full, w.ep) } else { (f, ep_sub) }
        } else {
            (a_w_full, w.ep)
        };
        let mut mem = MemorySystem::for_multiply(cfg);
        let mut obs = EngineAbort { offset: so_far, probe: &mut *probe };
        let mut pes = PeArray::new(
            cfg.n_tiles as usize,
            cfg.pes_per_tile as usize,
            cfg.outstanding_requests as usize,
        );
        let mut layout = IntermediateLayout::new(a_w.nrows());
        let kernel = MultiplyKernel::new(&a_w, &b_w, &mut layout);
        let (stats, bd) = engine::run_kernel_observed(cfg, &mut mem, &mut pes, kernel, &mut obs)?;
        ms.windows_sampled += 1;
        ms.busy += bd.busy_cycles;
        ms.total_pe += bd.total_pe_cycles();
        ms.occ_weighted += bd.mean_channel_occupancy() * w.ep as f64;
        ms.occ_ep += w.ep;
        if w.heavy {
            ms.heavy_ep_sim += ep_sim;
            // Extrapolate within the window: its own exact work over the
            // work the row-subsample kept.
            add_stats(&mut ms.heavy, &scale_stats(&stats, w.ep, ep_sim));
        } else {
            ms.ratios.push(stats.cycles as f64 / w.ep as f64);
            ms.light_ep_sampled += ep_sim;
            add_stats(&mut ms.light, &stats);
        }
    }
    Ok(ms)
}

/// SpArch-analog multiply from row-sampled operands: the shared
/// [`RowSample`] (every stride-th non-empty `A` row) split into a few
/// interleaved row groups, each run against the *full* `B` and
/// extrapolated by exact work weight, with the group-to-group cycle
/// ratios feeding the error bar.
///
/// Row sampling preserves what makes the SpArch multiply expensive:
/// condensed column `k` of a row sample is a row-subset of the full
/// operand's condensed column `k`, so the leaf widths, the per-entry
/// `B`-row stream lengths and the spill regime all survive. A k-column
/// window — the OuterSPACE sampler's unit — preserves none of them once
/// re-condensed, which was observed as a spill-regime-dependent ~20%
/// underestimate on wide merge trees. Hub rows need no heavy stratum
/// here: a hub's products spread across its condensed columns and
/// parallelise like any other work, so systematic row sampling carries
/// no ratio-estimator skew.
fn sample_multiply_sparch(
    ctx: &MultiplyCtx<'_>,
    a: &Csr,
    sample: &RowSample,
    spilled: bool,
    probe: &mut dyn AbortProbe,
) -> Result<MultiplySample, SimError> {
    let (cfg, b, opts) = (ctx.cfg, ctx.b, ctx.opts);
    // At stride 1 a single group replays the full multiply exactly;
    // otherwise enough groups for a spread, capped by the sample size.
    let groups = if opts.stride == 1 {
        1
    } else {
        // 2..=6 groups: enough sizes for the intercept fit, and the
        // geometric weight pattern would starve further groups anyway.
        ((opts.windows / opts.stride).max(2) as usize)
            .min(6)
            .min(sample.rows.len().max(1))
    };
    // Interleaved assignment with geometric (1:2:4:...) group weights:
    // rows cycle through a pattern that gives group g twice group g-1's
    // share, so the group runs span a ~2^groups size range while staying
    // compositionally homogeneous. Distinct sizes let the post-loop fit
    // separate the per-run fill/drain intercept from the marginal cost.
    let period = (1usize << groups) - 1;
    let mut group_rows: Vec<Vec<Index>> = vec![Vec::new(); groups];
    let mut group_ep: Vec<u64> = vec![0; groups];
    for (si, &i) in sample.rows.iter().enumerate() {
        let p: u64 = a.row(i).0.iter().map(|&k| b.row_nnz(k) as u64).sum();
        let g = ((si % period) + 1).ilog2() as usize;
        group_rows[g].push(i);
        group_ep[g] += p;
    }
    let mut ms = MultiplySample {
        windows_total: groups as u32,
        light_ep_total: ctx.total_ep,
        ..MultiplySample::default()
    };
    let mut fit_pts: Vec<(f64, f64)> = Vec::with_capacity(groups);
    for (rows, &ep) in group_rows.iter().zip(&group_ep) {
        if ep == 0 {
            continue;
        }
        ms.windows_nonempty += 1;
        let so_far = ctx.base_cycles + ms.light.cycles;
        if probe.should_abort(so_far) {
            return Err(SimError::Aborted { phase: "interval", frontier: so_far });
        }
        let a_g = csr_keep_rows(a, rows);
        let condensed = outer::condense(&a_g);
        let mut mem = MemorySystem::for_multiply(cfg);
        let mut obs = EngineAbort { offset: so_far, probe: &mut *probe };
        let mut pes = PeArray::new(
            cfg.sparch_mul_pes.max(1) as usize,
            1,
            cfg.outstanding_requests as usize,
        );
        // Run in the full run's spill regime: partials round-trip DRAM
        // iff the full leaf set exceeds the tree.
        let kernel = CondensedMultiplyKernel::new(&condensed, b, spilled);
        let (stats, bd) = engine::run_kernel_observed(cfg, &mut mem, &mut pes, kernel, &mut obs)?;
        ms.windows_sampled += 1;
        ms.busy += bd.busy_cycles;
        ms.total_pe += bd.total_pe_cycles();
        ms.occ_weighted += bd.mean_channel_occupancy() * ep as f64;
        ms.occ_ep += ep;
        ms.ratios.push(stats.cycles as f64 / ep as f64);
        ms.light_ep_sampled += ep;
        fit_pts.push((ep as f64, stats.cycles as f64));
        add_stats(&mut ms.light, &stats);
    }

    // Intercept-corrected cycle extrapolation: each group run pays a
    // fill/drain cost the full (single-kernel) run pays only once, and
    // plain ratio scaling multiplies it by the sampling factor (observed
    // as a ~1.7x overshoot on light workloads). The geometric group sizes
    // span a wide enough range to fit `cycles = c0 + m * work` by least
    // squares; the full multiply is then `c0 + m * total_work`, encoded by
    // adjusting `light.cycles` so the caller's work-ratio scaling lands on
    // exactly that value. Degenerate fits (non-positive slope or
    // intercept) keep the plain conservative scaling.
    if fit_pts.len() >= 2 && ms.light_ep_sampled < ctx.total_ep {
        let n = fit_pts.len() as f64;
        let wbar = fit_pts.iter().map(|p| p.0).sum::<f64>() / n;
        let cbar = fit_pts.iter().map(|p| p.1).sum::<f64>() / n;
        let sxx: f64 = fit_pts.iter().map(|p| (p.0 - wbar) * (p.0 - wbar)).sum();
        let sxy: f64 = fit_pts.iter().map(|p| (p.0 - wbar) * (p.1 - cbar)).sum();
        if sxx > 0.0 {
            let slope = sxy / sxx;
            let c0 = cbar - slope * wbar;
            if slope > 0.0 && c0 >= 0.0 {
                let fit = (c0 + slope * ctx.total_ep as f64).round() as u64;
                ms.light.cycles = scale_u64(fit, ms.light_ep_sampled, ctx.total_ep);
            }
        }
    }
    Ok(ms)
}

/// Estimates a full `C = A x B` run on `cfg` from structurally derived
/// non-multiply phases plus a sampled multiply: column windows (all heavy
/// windows, every stride-th light window) for OuterSPACE, interleaved
/// `A`-row groups for the SpArch analog.
///
/// See the module docs for the methodology. `probe` receives monotone
/// lower bounds on the final estimated total cycles and may abort the
/// point; pass [`NoAbortProbe`] to disable.
///
/// # Errors
///
/// Shape mismatch ([`SimError::Sparse`]), fault-injection failures from
/// the underlying phase simulations, or [`SimError::Aborted`] from the
/// probe.
///
/// # Panics
///
/// Panics if `opts.windows` or `opts.stride` is zero.
pub fn estimate_spgemm(
    cfg: &OuterSpaceConfig,
    a: &Csr,
    b: &Csr,
    opts: &IntervalOpts,
    probe: &mut dyn AbortProbe,
) -> Result<IntervalEstimate, SimError> {
    assert!(opts.windows > 0 && opts.stride > 0, "interval opts must be positive");
    outerspace_sparse::ops::check_spgemm_dims((a.nrows(), a.ncols()), (b.nrows(), b.ncols()))
        .map_err(outerspace_sparse::SparseError::from)?;
    let k_dim = a.ncols();

    // Shared-dimension work weights: ep(k) = nnz(A[:,k]) * nnz(B[k,:]).
    let (a_cc, conv) = outer::csr_to_csc_via_outer(a);
    let total_ep: u64 = (0..k_dim).map(|k| a_cc.col_nnz(k) as u64 * b.row_nnz(k) as u64).sum();

    // Conversion is cheap relative to multiply: simulate it exactly
    // (OuterSPACE only, and only when a full run would charge it).
    let convert_stats = if cfg.machine == MachineKind::OuterSpace && !conv.skipped_symmetric {
        Some(convert::simulate_convert(cfg, a)?)
    } else {
        None
    };
    let convert_cycles = convert_stats.as_ref().map_or(0, |s| s.cycles);

    // Structural non-multiply phases seed the abort lower bound before
    // any engine run; multiply is then sampled machine-specifically
    // (column windows for OuterSPACE, row groups for the SpArch analog).
    let (exact, ms) = match cfg.machine {
        MachineKind::OuterSpace => {
            let exact = structural_merge_outerspace(cfg, a, &a_cc, b, opts.stride)?;
            let base_cycles = convert_cycles + exact.merge.cycles;
            if probe.should_abort(base_cycles) {
                return Err(SimError::Aborted { phase: "interval", frontier: base_cycles });
            }
            let ctx = MultiplyCtx { cfg, b, total_ep, opts, base_cycles };
            let ms = sample_multiply_outerspace(&ctx, &a_cc, probe)?;
            (exact, ms)
        }
        MachineKind::SpArch => {
            let sample = sample_rows(a, b, opts.stride);
            let exact = structural_merge_sparch(cfg, a, b, &sample, opts.stride)?;
            let base_cycles = convert_cycles + exact.merge.cycles;
            if probe.should_abort(base_cycles) {
                return Err(SimError::Aborted { phase: "interval", frontier: base_cycles });
            }
            let ctx = MultiplyCtx { cfg, b, total_ep, opts, base_cycles };
            let ms = sample_multiply_sparch(&ctx, a, &sample, exact.spilled, probe)?;
            (exact, ms)
        }
    };
    let work_sampled = ms.heavy_ep_sim + ms.light_ep_sampled;

    // Extrapolate the light tail by work weight; heavy windows were
    // already extrapolated within themselves. An all-empty matrix
    // short-circuits to a zero-work (convert-only) report.
    let (num, den) = if ms.light_ep_sampled == 0 {
        (0, 1)
    } else {
        (ms.light_ep_total, ms.light_ep_sampled)
    };
    let light_scaled = scale_stats(&ms.light, num, den);
    let mut multiply = ms.heavy;
    add_stats(&mut multiply, &light_scaled);

    // Sampling error bar: spread of multiply cycles-per-product across the
    // sampled light units, weighted by the extrapolated (light) share of
    // the total estimate — heavy windows, convert and the heavy merge rows
    // carry no sampling error. Full coverage means no extrapolation, hence
    // no sampling error.
    let total_est = convert_cycles + multiply.cycles + exact.merge.cycles;
    let m = ms.ratios.len();
    let rel_err = if work_sampled == total_ep {
        0.0
    } else if m >= 2 && ms.light.cycles > 0 && total_est > 0 {
        let r_hat = ms.light.cycles as f64 / ms.light_ep_sampled as f64;
        let var = ms.ratios.iter().map(|r| (r - r_hat) * (r - r_hat)).sum::<f64>()
            / (m as f64 - 1.0);
        let mult_rel = 1.96 * var.sqrt() / (r_hat * (m as f64).sqrt());
        mult_rel * light_scaled.cycles as f64 / total_est as f64
    } else {
        0.0
    };

    Ok(IntervalEstimate {
        report: SimReport {
            convert: convert_stats,
            multiply,
            merge: exact.merge,
            config: cfg.clone(),
        },
        result_nnz: exact.result_nnz,
        rel_err,
        windows_total: ms.windows_total,
        windows_nonempty: ms.windows_nonempty,
        windows_sampled: ms.windows_sampled,
        work_total: total_ep,
        work_sampled,
        multiply_busy_share: ms.busy as f64 / ms.total_pe.max(1) as f64,
        merge_busy_share: exact.merge_busy as f64 / exact.merge_total_pe.max(1) as f64,
        hbm_mean_occupancy: if ms.occ_ep == 0 {
            0.0
        } else {
            ms.occ_weighted / ms.occ_ep as f64
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::for_kind;
    use outerspace_gen::{rmat, uniform};

    fn full_cycles(cfg: &OuterSpaceConfig, a: &Csr) -> u64 {
        let pipe = for_kind(cfg.machine).spgemm(cfg, a, a).unwrap();
        let conv = pipe.convert.as_ref().map_or(0, |s| s.cycles);
        conv + pipe.multiply.cycles + pipe.merge.cycles
    }

    #[test]
    fn stride_one_covers_all_work_exactly() {
        let cfg = OuterSpaceConfig::default();
        let a = uniform::matrix(256, 256, 3000, 11);
        let opts = IntervalOpts { windows: 16, stride: 1 };
        let est = estimate_spgemm(&cfg, &a, &a, &opts, &mut NoAbortProbe).unwrap();
        assert_eq!(est.work_sampled, est.work_total);
        assert_eq!(est.windows_sampled, est.windows_nonempty);
        // All work simulated => flops are exact.
        assert_eq!(est.report.multiply.flops, est.work_total);
        assert_eq!(est.rel_err, 0.0, "no extrapolation, but spread still reported");
    }

    #[test]
    fn result_nnz_tracks_the_true_pattern() {
        for machine in [MachineKind::OuterSpace, MachineKind::SpArch] {
            let cfg = OuterSpaceConfig { machine, ..OuterSpaceConfig::default() };
            let a = rmat::graph500(256, 3000, 5);
            let pipe = for_kind(machine).spgemm(&cfg, &a, &a).unwrap();
            let exact_nnz = pipe.c.nnz() as u64;

            // Stride 1 unions every row: OuterSPACE is exact; SpArch lands
            // within the shrink-model granularity of the exact count.
            let full = estimate_spgemm(
                &cfg,
                &a,
                &a,
                &IntervalOpts { windows: 32, stride: 1 },
                &mut NoAbortProbe,
            )
            .unwrap();
            match machine {
                MachineKind::OuterSpace => assert_eq!(full.result_nnz, exact_nnz),
                MachineKind::SpArch => {
                    let err = (full.result_nnz as f64 - exact_nnz as f64).abs()
                        / exact_nnz as f64;
                    assert!(err < 0.02, "{machine:?} result off by {err}");
                }
            }

            // Sampled rows still extrapolate close to the true count.
            let sampled = estimate_spgemm(
                &cfg,
                &a,
                &a,
                &IntervalOpts { windows: 32, stride: 8 },
                &mut NoAbortProbe,
            )
            .unwrap();
            let err =
                (sampled.result_nnz as f64 - exact_nnz as f64).abs() / exact_nnz as f64;
            assert!(err < 0.25, "{machine:?} sampled result off by {err}");
        }
    }

    #[test]
    fn estimate_is_deterministic_and_within_2x_of_full() {
        for machine in [MachineKind::OuterSpace, MachineKind::SpArch] {
            let cfg = OuterSpaceConfig { machine, ..OuterSpaceConfig::default() };
            let a = rmat::graph500(512, 8000, 7);
            let opts = IntervalOpts { windows: 32, stride: 4 };
            let e1 = estimate_spgemm(&cfg, &a, &a, &opts, &mut NoAbortProbe).unwrap();
            let e2 = estimate_spgemm(&cfg, &a, &a, &opts, &mut NoAbortProbe).unwrap();
            assert_eq!(format!("{:?}", e1.report), format!("{:?}", e2.report));
            let est = e1.report.total_cycles() as f64;
            let full = full_cycles(&cfg, &a) as f64;
            let ratio = est / full;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "{machine:?}: estimate {est} vs full {full} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn sampled_work_tracks_stride() {
        let cfg = OuterSpaceConfig::default();
        let a = uniform::matrix(512, 512, 6000, 13);
        let coarse = estimate_spgemm(
            &cfg,
            &a,
            &a,
            &IntervalOpts { windows: 64, stride: 16 },
            &mut NoAbortProbe,
        )
        .unwrap();
        // Uniform work has no heavy windows, so systematic 1-in-16
        // sampling covers roughly 1/16 of the products.
        let frac = coarse.work_sampled as f64 / coarse.work_total as f64;
        assert!((0.02..=0.2).contains(&frac), "sampled fraction {frac}");
        assert!(coarse.rel_err > 0.0);
        // The extrapolated flops still land on the exact total (+- rounding).
        let err = (coarse.report.multiply.flops as f64 - coarse.work_total as f64).abs()
            / coarse.work_total as f64;
        assert!(err < 0.02, "flops extrapolation off by {err}");
    }

    #[test]
    fn heavy_windows_survive_any_stride() {
        // A power-law matrix concentrates work in hub columns: those
        // windows must be simulated even when the stride would skip them.
        let cfg = OuterSpaceConfig::default();
        let a = rmat::graph500(512, 8000, 23);
        let est = estimate_spgemm(
            &cfg,
            &a,
            &a,
            &IntervalOpts { windows: 32, stride: 1000 },
            &mut NoAbortProbe,
        )
        .unwrap();
        // Stride >> window count keeps one light window plus every heavy
        // one; the heavy set alone must carry a meaningful work share.
        assert!(est.windows_sampled >= 1);
        let frac = est.work_sampled as f64 / est.work_total as f64;
        assert!(frac > 0.05, "heavy windows cover only {frac} of the work");
    }

    #[test]
    fn synthetic_sparch_schedule_matches_planner_shape() {
        // The synthetic Huffman replay must mirror the functional planner:
        // same op count, same per-op input sizes when fed the real leaf
        // sizes, and a final stream that hits the fitted target.
        let a = rmat::graph500(256, 3000, 29);
        let (_, plan) = outer::spgemm_sparch_with_plan(&a, &a, 16).unwrap();
        let (ops, fin) = fit_sparch_ops(&plan.leaf_elems, 16, plan.result_nnz);
        assert_eq!(ops.len(), plan.ops.len(), "op count diverged");
        assert_eq!(
            ops[0].input_elems.iter().sum::<u64>(),
            plan.ops[0].input_elems.iter().sum::<u64>(),
            "first-op inputs diverged from the planner's selection"
        );
        let err = (fin as f64 - plan.result_nnz as f64).abs() / plan.result_nnz as f64;
        assert!(err < 0.05, "fitted final stream off by {err}");
    }

    #[test]
    fn abort_probe_stops_the_estimate() {
        struct Trip(u64);
        impl AbortProbe for Trip {
            fn should_abort(&mut self, lb: u64) -> bool {
                lb > self.0
            }
        }
        let cfg = OuterSpaceConfig::default();
        let a = uniform::matrix(512, 512, 6000, 17);
        let opts = IntervalOpts { windows: 16, stride: 1 };
        let full = estimate_spgemm(&cfg, &a, &a, &opts, &mut NoAbortProbe).unwrap();
        let budget = full.report.total_cycles() / 20;
        let err = estimate_spgemm(&cfg, &a, &a, &opts, &mut Trip(budget)).unwrap_err();
        match err {
            SimError::Aborted { frontier, .. } => {
                assert!(frontier > budget, "abort fired below its threshold")
            }
            other => panic!("expected Aborted, got {other}"),
        }
    }

    #[test]
    fn window_slices_partition_the_work() {
        let a = uniform::matrix(128, 128, 900, 19);
        let a_cc = a.to_csc();
        let w1 = csc_col_window(&a_cc, 0, 64);
        let w2 = csc_col_window(&a_cc, 64, 128);
        assert_eq!(w1.nnz() + w2.nnz(), a.nnz());
        assert_eq!(w1.ncols(), 64);
        let r1 = csr_row_window(&a, 0, 64);
        let r2 = csr_row_window(&a, 64, 128);
        assert_eq!(r1.nnz() + r2.nnz(), a.nnz());
        assert_eq!(r2.nrows(), 64);
        assert_eq!(r2.ncols(), 128);
    }
}
