//! Dynamic memory-allocation model (§5.5, §7.3).
//!
//! Every outer product gets a static allocation of `α ×` the average product
//! size (computable from the compressed pointers before the phase begins);
//! a product larger than its static slot sends one atomic increment to the
//! global spill-over stack pointer. §7.3 sweeps `α` and reports the count of
//! these dynamic requests — near zero for `α ≥ 2` on most matrices, and
//! exactly zero for `m133-b3` (whose rows all have the same size) even at
//! `α = 1`.

use outerspace_sparse::{Csc, Csr};

/// Result of an allocation analysis at one `α`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocReport {
    /// The static multiplier analyzed.
    pub alpha: f64,
    /// Outer products whose size exceeded the static slot — each sends one
    /// atomic spill-over request.
    pub dynamic_requests: u64,
    /// Total statically allocated elements (`α · nnz_a·nnz_b/N`, §7.3's
    /// `α·nnz²/N` for square self-multiplication).
    pub static_elements: u64,
    /// Elements that landed in the spill-over region.
    pub spilled_elements: u64,
    /// Statically allocated elements that went unused (the storage side of
    /// the performance-storage trade-off).
    pub wasted_elements: u64,
}

/// Analyzes the static/spill-over allocation scheme for `C = A × B` at the
/// given `α` values.
///
/// # Panics
///
/// Panics if any `alpha` is non-positive, or shapes are incompatible.
pub fn analyze(a: &Csc, b: &Csr, alphas: &[f64]) -> Vec<AllocReport> {
    assert_eq!(a.ncols(), b.nrows(), "shape mismatch");
    let n = a.ncols();
    // Product sizes per outer product k.
    let sizes: Vec<u64> = (0..n)
        .map(|k| a.col_nnz(k) as u64 * b.row_nnz(k) as u64)
        .collect();
    let total: u64 = sizes.iter().sum();
    let avg = total as f64 / n.max(1) as f64;

    alphas
        .iter()
        .map(|&alpha| {
            assert!(alpha > 0.0, "alpha must be positive");
            // Static slot per product: ceil(α · average size).
            let slot = (alpha * avg).ceil() as u64;
            let mut dynamic_requests = 0u64;
            let mut spilled = 0u64;
            let mut wasted = 0u64;
            for &s in &sizes {
                if s > slot {
                    dynamic_requests += 1;
                    spilled += s - slot;
                } else {
                    wasted += slot - s;
                }
            }
            AllocReport {
                alpha,
                dynamic_requests,
                static_elements: slot * n as u64,
                spilled_elements: spilled,
                wasted_elements: wasted,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use outerspace_gen::{banded, powerlaw, uniform};

    #[test]
    fn fixed_size_rows_never_spill_at_alpha_one() {
        // m133-b3 stand-in: exactly 4 non-zeros per row and column.
        let a = banded::matrix(128, &[-2, -1, 1, 2], 1.0, 1);
        // Use a circulant-like band so interior sizes are uniform; edges of
        // the band clip, so restrict the check to the paper's claim shape:
        // products never exceed the average slot by more than the clip.
        let reports = analyze(&a.to_csc(), &a, &[1.0, 2.0]);
        // Edge rows are *smaller* than average, so nothing exceeds the slot.
        assert_eq!(reports[0].dynamic_requests, 0);
        assert_eq!(reports[1].dynamic_requests, 0);
    }

    #[test]
    fn uniform_matrices_settle_by_alpha_two() {
        let a = uniform::matrix(1024, 1024, 16_384, 2);
        let reports = analyze(&a.to_csc(), &a, &[1.0, 2.0, 4.0]);
        assert!(reports[0].dynamic_requests > reports[1].dynamic_requests);
        assert!(reports[1].dynamic_requests > reports[2].dynamic_requests);
        // §7.3: for uniformly distributed matrices α=2 eliminates most
        // dynamic requests.
        let frac = reports[1].dynamic_requests as f64 / 1024.0;
        assert!(frac < 0.15, "α=2 spill fraction {frac}");
    }

    #[test]
    fn power_law_spills_more_than_uniform() {
        let p = powerlaw::graph(1024, 16_384, 3);
        let u = uniform::matrix(1024, 1024, p.nnz(), 3);
        let rp = analyze(&p.to_csc(), &p, &[2.0]);
        let ru = analyze(&u.to_csc(), &u, &[2.0]);
        assert!(
            rp[0].spilled_elements > ru[0].spilled_elements,
            "power-law should spill more: {} vs {}",
            rp[0].spilled_elements,
            ru[0].spilled_elements
        );
    }

    #[test]
    fn bigger_alpha_wastes_more() {
        let a = uniform::matrix(512, 512, 4096, 4);
        let reports = analyze(&a.to_csc(), &a, &[1.0, 4.0]);
        assert!(reports[1].wasted_elements > reports[0].wasted_elements);
        assert!(reports[1].static_elements > reports[0].static_elements);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn zero_alpha_rejected() {
        let a = uniform::matrix(8, 8, 16, 1);
        let _ = analyze(&a.to_csc(), &a, &[0.0]);
    }
}
