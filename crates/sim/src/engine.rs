//! The shared phase-execution engine.
//!
//! Every simulated phase used to carry its own copy of the same loop: pick
//! a PE with the greedy scheduler, walk a per-work-item memory script
//! through [`MemorySystem`], apply the fault model, collect [`PhaseStats`].
//! This module extracts that loop once. A phase now implements
//! [`PhaseKernel`] — a work *generator* ([`PhaseKernel::next`]) plus a
//! per-item memory *script* ([`PhaseKernel::execute`] over [`PeCtx`]) — and
//! [`run_kernel`] owns PE/tile iteration, memory access, fault-injection
//! hooks and stat collection for all of them.
//!
//! Because the engine sits on the issue/track path of every request, it can
//! attribute every PE cycle: busy, stalled on an L0/L1/HBM completion, or
//! idle. The result is a hierarchical [`CycleBreakdown`] (per PE class,
//! plus per-HBM-channel occupancy) — the accounting behind the paper's
//! Fig. 12 utilization and bandwidth plots. Every run satisfies
//! `busy + stalls + idle + lost == makespan × n_pes` exactly (asserted in
//! tests): the reap/requeue recovery path advances survivor clocks outside
//! the script wrappers, so those cycles — recovery waits, re-executed
//! overshoot, and each corpse's dead-silicon tail — land in the explicit
//! `lost` bucket rather than polluting busy or idle. Fault-free runs have
//! `lost == 0` and the classic three-way identity.
//!
//! [`KernelObserver`] taps the same loop for tracing: the multiply-phase
//! trace recorder is an observer, and [`EventLog`] serializes every engine
//! action as JSON lines through [`outerspace_json::dump`]'s append-safe
//! writer.

use std::collections::VecDeque;
use std::io;
use std::path::Path;

use outerspace_json::{impl_to_json, Json, ToJson};

use crate::config::OuterSpaceConfig;
use crate::error::SimError;
use crate::machine::{PeArray, PeTimeline};
use crate::mem::{AccessOutcome, MemorySystem};
use crate::phases::{apply_fault_model, check_phase_health, collect_stats};
use crate::stats::PhaseStats;

/// How a batch's items map onto PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// Each item goes to the globally earliest live PE (merge workers,
    /// stream phases).
    PerItem,
    /// Items are dealt to tiles in `pes_per_group`-sized runs so one tile
    /// shares one working set at a time (the multiply phase's B-row
    /// affinity, §5.4.1).
    TileBatched,
}

/// A run of independent work items released together.
#[derive(Debug, Clone)]
pub struct Batch<T> {
    /// The items, executed in order.
    pub items: Vec<T>,
    /// No item may start before this cycle (inter-pass dependencies: a
    /// merge sub-pass cannot start before the previous pass's runs exist).
    pub min_start: u64,
}

/// One step of a kernel's work stream.
#[derive(Debug, Clone)]
pub enum Step<T> {
    /// Control-processor reads (scheduling streams), charged to the
    /// earliest group's L0 at its current frontier.
    Control {
        /// Byte addresses to read.
        reads: Vec<u64>,
    },
    /// A batch of PE work items.
    Batch(Batch<T>),
    /// The kernel has no more work.
    Done,
}

/// What the engine reports back to the kernel between steps.
#[derive(Debug, Clone, Copy, Default)]
pub struct Feedback {
    /// Max PE completion time over the previous batch's items (0 before
    /// any batch ran) — the barrier a dependent pass waits on.
    pub batch_done: u64,
}

/// A phase model: a work generator plus a per-item memory script.
///
/// The contract mirrors the hand-rolled loops it replaced:
/// [`next`](Self::next) is called repeatedly and yields control reads,
/// batches, or [`Step::Done`]; [`execute`](Self::execute) runs one item on
/// the PE the engine selected, touching memory only through [`PeCtx`];
/// [`finish`](Self::finish) patches phase-specific fields (flops, work
/// items) into the collected stats.
pub trait PhaseKernel {
    /// One unit of PE work.
    type Item;

    /// Phase name for error reporting.
    fn phase(&self) -> &'static str;

    /// PE-class label for the [`CycleBreakdown`].
    fn pe_class(&self) -> &'static str {
        "pe"
    }

    /// How batches map onto PEs.
    fn dispatch(&self) -> Dispatch {
        Dispatch::PerItem
    }

    /// Produces the next step. `fb` carries the previous batch's
    /// completion frontier.
    fn next(&mut self, fb: &Feedback) -> Step<Self::Item>;

    /// Executes one item's memory script on the selected PE.
    fn execute(&mut self, item: &Self::Item, ctx: &mut PeCtx<'_>);

    /// Patches phase-specific fields into the collected stats.
    fn finish(&mut self, _stats: &mut PhaseStats) {}
}

/// Observer hooks on the engine loop (tracing, event logs). All hooks fire
/// *before* the corresponding timing action, in dispatch order.
pub trait KernelObserver<Item> {
    /// A control-processor read is about to be charged to `group`.
    fn on_control_read(&mut self, _group: usize, _addr: u64) {}
    /// `item` is about to execute on `pe` (global index) in `group`.
    fn on_item(&mut self, _pe: usize, _group: usize, _item: &Item) {}
    /// Polled at every dispatch step with the earliest live-PE cycle — a
    /// monotone lower bound on the phase's final makespan. Returning `true`
    /// stops the run with [`SimError::Aborted`]; the default never aborts,
    /// so observers that only trace see identical behavior to before the
    /// hook existed. This is the engine half of the DSE dominance
    /// early-abort: once the lower bound crosses a Pareto-dominated
    /// threshold, finishing the simulation cannot change any frontier.
    fn poll_abort(&mut self, _frontier: u64) -> bool {
        false
    }
}

/// The do-nothing observer [`run_kernel`] uses.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoObserver;

impl<T> KernelObserver<T> for NoObserver {}

const LEVEL_L0: usize = 0;
const LEVEL_L1: usize = 1;
const LEVEL_HBM: usize = 2;

fn level_of(outcome: AccessOutcome) -> usize {
    match outcome {
        AccessOutcome::L0Hit => LEVEL_L0,
        AccessOutcome::L1Hit => LEVEL_L1,
        AccessOutcome::Hbm => LEVEL_HBM,
    }
}

/// Per-PE attribution state: a shadow of the PE's outstanding-request queue
/// annotated with the level that serviced each completion, plus the stall
/// and idle tallies.
#[derive(Debug, Clone, Default)]
struct PeAttribution {
    shadow: VecDeque<(u64, usize)>,
    stall: [u64; 3],
    idle: u64,
}

/// The memory-script surface a kernel's [`PhaseKernel::execute`] runs on:
/// one PE, one L0 domain, and the shared memory system. Each primitive
/// reproduces the timing idiom of the hand-rolled phase loops exactly while
/// recording where the PE's waits came from.
#[derive(Debug)]
pub struct PeCtx<'a> {
    mem: &'a mut MemorySystem,
    pe: &'a mut PeTimeline,
    l0: usize,
    block: u64,
    last_data: u64,
    last_level: usize,
    attr: Option<&'a mut PeAttribution>,
}

impl<'a> PeCtx<'a> {
    /// A standalone context (no cycle attribution) — the trace replayer
    /// drives frozen schedules through this.
    pub fn new(
        mem: &'a mut MemorySystem,
        pe: &'a mut PeTimeline,
        l0: usize,
        block_bytes: u64,
    ) -> Self {
        PeCtx {
            last_data: pe.time,
            last_level: LEVEL_HBM,
            mem,
            pe,
            l0,
            block: block_bytes,
            attr: None,
        }
    }

    /// Mirrors the queue pop `issue`/`track` will perform when the
    /// outstanding queue is full, attributing the induced stall to the
    /// popped completion's service level.
    fn pre_op(&mut self) {
        let Some(attr) = self.attr.as_deref_mut() else { return };
        if attr.shadow.len() == self.pe.queue_cap() {
            if let Some((c, lvl)) = attr.shadow.pop_front() {
                if c > self.pe.time {
                    attr.stall[lvl] += c - self.pe.time;
                }
            }
        }
    }

    fn note_completion(&mut self, completion: u64, level: usize) {
        if let Some(attr) = self.attr.as_deref_mut() {
            attr.shadow.push_back((completion, level));
        }
    }

    /// Issues one read of the block containing `addr` (one issue cycle,
    /// completion tracked in the outstanding queue). Returns the data-ready
    /// cycle.
    pub fn read(&mut self, addr: u64) -> u64 {
        self.pre_op();
        let t = self.pe.issue();
        let (c, outcome) = self.mem.read(self.l0, addr, t);
        self.pre_op();
        self.pe.track(c);
        let level = level_of(outcome);
        self.note_completion(c, level);
        if c > self.last_data {
            self.last_data = c;
            self.last_level = level;
        }
        c
    }

    /// Streams `bytes` starting at `addr`: one [`read`](Self::read) per
    /// touched block. No-op for zero bytes.
    pub fn read_stream(&mut self, addr: u64, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let first = addr / self.block;
        let last = (addr + bytes - 1) / self.block;
        for b in first..=last {
            self.read(b * self.block);
        }
    }

    /// Spends `cycles` computing.
    pub fn compute(&mut self, cycles: u64) {
        self.pe.advance(cycles);
    }

    /// Blocks until every read issued so far has delivered, attributing the
    /// wait to the slowest read's service level.
    pub fn wait_for_data(&mut self) {
        if self.last_data > self.pe.time {
            if let Some(attr) = self.attr.as_deref_mut() {
                attr.stall[self.last_level] += self.last_data - self.pe.time;
            }
            self.pe.wait_until(self.last_data);
        }
    }

    /// Occupies the PE until cycle `t` (counted busy in the breakdown —
    /// the merge sorter's insertion network runs concurrently with the
    /// loader's issue stream).
    pub fn wait_busy_until(&mut self, t: u64) {
        self.pe.wait_until(t);
    }

    /// Posts a write-no-allocate store stream: it cannot start before the
    /// operands arrived, and the PE spends one issue cycle per block but
    /// does not wait for completion.
    pub fn store_stream(&mut self, addr: u64, bytes: u64) {
        self.mem.write_stream(addr, bytes, self.pe.time.max(self.last_data));
        self.pe.advance(bytes.div_ceil(self.block));
    }

    /// Parks the data dependency in the outstanding queue: the PE moves on
    /// and only stalls when the queue fills (the §5.4 latency-hiding idiom
    /// closing the multiply-chunk and merge-pass scripts).
    pub fn track_tail(&mut self) {
        self.pre_op();
        self.pe.track(self.last_data);
        let (c, lvl) = (self.last_data, self.last_level);
        self.note_completion(c, lvl);
    }

    /// The PE's current local cycle.
    pub fn time(&self) -> u64 {
        self.pe.time
    }
}

/// Runs `kernel` to completion on caller-owned machine state, returning the
/// phase statistics and the per-component cycle breakdown.
///
/// # Errors
///
/// Fault injection only: every PE dead, an access out of retries, or a
/// watchdog timeout. Fault-free configurations cannot fail.
pub fn run_kernel<K: PhaseKernel>(
    cfg: &OuterSpaceConfig,
    mem: &mut MemorySystem,
    pes: &mut PeArray,
    kernel: K,
) -> Result<(PhaseStats, CycleBreakdown), SimError> {
    run_kernel_observed(cfg, mem, pes, kernel, &mut NoObserver)
}

/// [`run_kernel`] with an observer tapped into the dispatch stream.
///
/// # Errors
///
/// Fault injection only, as [`run_kernel`].
pub fn run_kernel_observed<K, O>(
    cfg: &OuterSpaceConfig,
    mem: &mut MemorySystem,
    pes: &mut PeArray,
    mut kernel: K,
    obs: &mut O,
) -> Result<(PhaseStats, CycleBreakdown), SimError>
where
    K: PhaseKernel,
    O: KernelObserver<K::Item>,
{
    let phase = kernel.phase();
    let block = cfg.block_bytes as u64;
    apply_fault_model(cfg, pes);
    let n = pes.len();
    let group_size = if pes.n_groups() == 0 { 1 } else { n / pes.n_groups() };
    let mut attrs: Vec<PeAttribution> = vec![PeAttribution::default(); n];
    let mut fb = Feedback::default();

    loop {
        match kernel.next(&fb) {
            Step::Done => break,
            Step::Control { reads } => {
                check_phase_health(phase, cfg, mem, pes)?;
                let frontier = pes.min_live_time();
                if obs.poll_abort(frontier) {
                    return Err(SimError::Aborted { phase, frontier });
                }
                let g = pes.try_earliest_group().ok_or(SimError::AllPesFailed { phase })?;
                let l0 = g.min(mem.n_l0() - 1);
                let t = pes.group_min_time(g);
                for addr in reads {
                    obs.on_control_read(g, addr);
                    let _ = mem.read(l0, addr, t);
                }
            }
            Step::Batch(batch) => {
                let frontier = pes.min_live_time();
                if obs.poll_abort(frontier) {
                    return Err(SimError::Aborted { phase, frontier });
                }
                let mut done = 0u64;
                match kernel.dispatch() {
                    Dispatch::PerItem => {
                        for item in &batch.items {
                            check_phase_health(phase, cfg, mem, pes)?;
                            let (g, pe_idx) =
                                pes.try_dispatch().ok_or(SimError::AllPesFailed { phase })?;
                            run_one(
                                &mut kernel,
                                obs,
                                mem,
                                pes,
                                &mut attrs,
                                block,
                                batch.min_start,
                                g,
                                pe_idx,
                                item,
                            );
                            done = done.max(pes.pe(pe_idx).time);
                        }
                    }
                    Dispatch::TileBatched => {
                        let mut idx = 0usize;
                        while idx < batch.items.len() {
                            check_phase_health(phase, cfg, mem, pes)?;
                            let tile = pes
                                .try_earliest_group()
                                .ok_or(SimError::AllPesFailed { phase })?;
                            let end = (idx + group_size).min(batch.items.len());
                            while idx < end {
                                // The tile can lose its last PE mid-run;
                                // fall back to re-select a live tile.
                                let Some(pe_idx) = pes.try_earliest_pe_in_group(tile) else {
                                    break;
                                };
                                run_one(
                                    &mut kernel,
                                    obs,
                                    mem,
                                    pes,
                                    &mut attrs,
                                    block,
                                    batch.min_start,
                                    tile,
                                    pe_idx,
                                    &batch.items[idx],
                                );
                                done = done.max(pes.pe(pe_idx).time);
                                idx += 1;
                            }
                        }
                    }
                }
                fb.batch_done = done;
            }
        }
    }

    check_phase_health(phase, cfg, mem, pes)?;
    // Pre-drain attribution: the end-of-phase drain will jump each PE over
    // its remaining completions; classify those jumps now, while the level
    // annotations are still paired with the queue entries. A corpse is
    // different: its timeline was rolled back to the kill cycle and its
    // in-flight responses abandoned, so the jumps its shadow describes
    // never happen — drop the entries instead of booking phantom stalls.
    for (i, attr) in attrs.iter_mut().enumerate() {
        if pes.is_dead(i) {
            attr.shadow.clear();
            continue;
        }
        let mut t = pes.pe(i).time;
        while let Some((c, lvl)) = attr.shadow.pop_front() {
            if c > t {
                attr.stall[lvl] += c - t;
                t = c;
            }
        }
    }
    let mut stats = collect_stats(cfg, mem, pes, 0);
    let makespan = stats.cycles;
    let mut stall = [0u64; 3];
    let mut idle = 0u64;
    // Recovery waits and re-executed work already tallied by the reaper,
    // plus each corpse's post-death tail: a dead PE contributes no useful,
    // stalled, or idle cycles after its kill cycle — that silicon is lost.
    let mut lost = pes.recovery_lost();
    for (i, attr) in attrs.iter().enumerate() {
        for (acc, s) in stall.iter_mut().zip(attr.stall) {
            *acc += s;
        }
        let tail = makespan.saturating_sub(pes.pe(i).time);
        if pes.is_dead(i) {
            lost += tail;
            idle += attr.idle;
        } else {
            idle += attr.idle + tail;
        }
    }
    stats.stall_l0_cycles = stall[LEVEL_L0];
    stats.stall_l1_cycles = stall[LEVEL_L1];
    stats.stall_hbm_cycles = stall[LEVEL_HBM];
    stats.idle_pe_cycles = idle;
    stats.lost_pe_cycles = lost;
    kernel.finish(&mut stats);

    let busy = (makespan * n as u64)
        .saturating_sub(stall.iter().sum::<u64>())
        .saturating_sub(idle)
        .saturating_sub(lost);
    let breakdown = CycleBreakdown {
        pe_class: kernel.pe_class().to_string(),
        n_pes: n as u32,
        makespan,
        busy_cycles: busy,
        stall_l0_cycles: stall[LEVEL_L0],
        stall_l1_cycles: stall[LEVEL_L1],
        stall_hbm_cycles: stall[LEVEL_HBM],
        idle_cycles: idle,
        lost_cycles: lost,
        channel_busy_cycles: mem.channel_busy(),
    };
    Ok((stats, breakdown))
}

/// One item's dispatch: honor the batch's release gate (idle time), notify
/// the observer, and run the kernel's script on the selected PE.
#[allow(clippy::too_many_arguments)]
fn run_one<K, O>(
    kernel: &mut K,
    obs: &mut O,
    mem: &mut MemorySystem,
    pes: &mut PeArray,
    attrs: &mut [PeAttribution],
    block: u64,
    min_start: u64,
    g: usize,
    pe_idx: usize,
    item: &K::Item,
) where
    K: PhaseKernel,
    O: KernelObserver<K::Item>,
{
    let attr = &mut attrs[pe_idx];
    {
        let pe = pes.pe_mut(pe_idx);
        if min_start > pe.time {
            attr.idle += min_start - pe.time;
            pe.wait_until(min_start);
        }
    }
    obs.on_item(pe_idx, g, item);
    let l0 = g.min(mem.n_l0() - 1);
    let pe = pes.pe_mut(pe_idx);
    let mut ctx = PeCtx {
        last_data: pe.time,
        last_level: LEVEL_HBM,
        mem,
        pe,
        l0,
        block,
        attr: Some(attr),
    };
    kernel.execute(item, &mut ctx);
}

/// Hierarchical cycle attribution for one phase: where every PE cycle of
/// one PE class went, plus per-HBM-channel occupancy. Every phase satisfies
/// `busy + stall_* + idle + lost == makespan × n_pes` exactly: PE-kill
/// recovery (survivor waits, re-executed overshoot, dead-silicon tails) is
/// routed into [`lost_cycles`](Self::lost_cycles), which is 0 for
/// fault-free phases.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CycleBreakdown {
    /// PE class label ("tile_pe", "merge_worker", …).
    pub pe_class: String,
    /// PEs of this class.
    pub n_pes: u32,
    /// Phase makespan in cycles.
    pub makespan: u64,
    /// Cycles spent issuing, computing, or sorting.
    pub busy_cycles: u64,
    /// Cycles stalled on an L0-serviced completion.
    pub stall_l0_cycles: u64,
    /// Cycles stalled on an L1-serviced completion.
    pub stall_l1_cycles: u64,
    /// Cycles stalled on an HBM-serviced completion.
    pub stall_hbm_cycles: u64,
    /// Cycles idle (pass-dependency gates, post-work tail).
    pub idle_cycles: u64,
    /// Cycles consumed by PE-kill recovery: survivors waiting for a death
    /// to become observable, re-executed overshoot and re-issued requests,
    /// and each corpse's dead-silicon tail. 0 in fault-free runs.
    pub lost_cycles: u64,
    /// Service cycles booked per HBM pseudo-channel.
    pub channel_busy_cycles: Vec<u64>,
}

impl_to_json!(CycleBreakdown {
    pe_class,
    n_pes,
    makespan,
    busy_cycles,
    stall_l0_cycles,
    stall_l1_cycles,
    stall_hbm_cycles,
    idle_cycles,
    lost_cycles,
    channel_busy_cycles,
});

impl CycleBreakdown {
    /// Total PE cycles in the phase (`makespan × n_pes`).
    pub fn total_pe_cycles(&self) -> u64 {
        self.makespan * self.n_pes as u64
    }

    /// Total memory-stall cycles across levels.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_l0_cycles + self.stall_l1_cycles + self.stall_hbm_cycles
    }

    /// Normalized busy/memory/idle shares (each in [0, 1], summing to 1
    /// for fault-free phases).
    pub fn shares(&self) -> UtilizationShares {
        let total = self.total_pe_cycles();
        if total == 0 {
            return UtilizationShares::default();
        }
        let t = total as f64;
        UtilizationShares {
            busy: self.busy_cycles as f64 / t,
            memory: self.stall_cycles() as f64 / t,
            idle: self.idle_cycles as f64 / t,
        }
    }

    /// Per-channel occupancy (service cycles / makespan), in [0, 1] per
    /// channel for fault-free phases.
    pub fn channel_occupancy(&self) -> Vec<f64> {
        if self.makespan == 0 {
            return vec![0.0; self.channel_busy_cycles.len()];
        }
        self.channel_busy_cycles
            .iter()
            .map(|&b| b as f64 / self.makespan as f64)
            .collect()
    }

    /// Mean occupancy over all channels.
    pub fn mean_channel_occupancy(&self) -> f64 {
        let occ = self.channel_occupancy();
        if occ.is_empty() {
            0.0
        } else {
            occ.iter().sum::<f64>() / occ.len() as f64
        }
    }

    /// Peak single-channel occupancy.
    pub fn peak_channel_occupancy(&self) -> f64 {
        self.channel_occupancy().into_iter().fold(0.0, f64::max)
    }
}

/// Where a processor's time goes, normalized: actively computing,
/// stalled on the memory system, or idle. The accelerator's breakdowns
/// ([`CycleBreakdown::shares`]) and the CPU/GPU analytic models
/// ([`crate::xmodels`]) report through this one type so Fig. 12-style
/// comparisons line up.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UtilizationShares {
    /// Fraction of time doing useful work.
    pub busy: f64,
    /// Fraction stalled on memory.
    pub memory: f64,
    /// Fraction idle (load imbalance, launch gaps, dependency waits).
    pub idle: f64,
}

impl_to_json!(UtilizationShares { busy, memory, idle });

/// An observer that serializes every engine action as one JSON event, for
/// export as JSON lines through [`outerspace_json::dump::append_jsonl`].
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<Json>,
    seq: u64,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events, in dispatch order.
    pub fn events(&self) -> &[Json] {
        &self.events
    }

    /// Appends every event to `path` in the append-safe JSONL format
    /// (readable back with [`outerspace_json::dump::read_jsonl`]).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_jsonl(&self, path: &Path) -> io::Result<()> {
        for e in &self.events {
            outerspace_json::dump::append_jsonl(path, e)?;
        }
        Ok(())
    }

    fn push(&mut self, kind: &str, mut fields: Vec<(String, Json)>) {
        let mut obj = vec![
            ("seq".to_string(), Json::UInt(self.seq)),
            ("kind".to_string(), Json::Str(kind.to_string())),
        ];
        obj.append(&mut fields);
        self.events.push(Json::Obj(obj));
        self.seq += 1;
    }
}

impl<T: ToJson> KernelObserver<T> for EventLog {
    fn on_control_read(&mut self, group: usize, addr: u64) {
        self.push(
            "control_read",
            vec![
                ("group".to_string(), Json::UInt(group as u64)),
                ("addr".to_string(), Json::UInt(addr)),
            ],
        );
    }

    fn on_item(&mut self, pe: usize, group: usize, item: &T) {
        self.push(
            "item",
            vec![
                ("pe".to_string(), Json::UInt(pe as u64)),
                ("group".to_string(), Json::UInt(group as u64)),
                ("item".to_string(), item.to_json()),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::StreamItem;

    fn cfg() -> OuterSpaceConfig {
        OuterSpaceConfig::default()
    }

    fn stream_items(n: u64) -> Vec<StreamItem> {
        (0..n)
            .map(|i| StreamItem {
                read_addr: i * 6400,
                read_bytes: 640,
                write_addr: crate::layout::OUT_BASE + i * 640,
                write_bytes: 640,
                compute_cycles: 10,
            })
            .collect()
    }

    fn run_stream(
        c: &OuterSpaceConfig,
        items: Vec<StreamItem>,
    ) -> (PhaseStats, CycleBreakdown) {
        let mut mem = MemorySystem::for_multiply(c);
        let mut pes = PeArray::new(16, 16, 64);
        let kernel = crate::phases::StreamKernel::new("engine_test", items);
        run_kernel(c, &mut mem, &mut pes, kernel).unwrap()
    }

    #[test]
    fn fault_free_breakdown_is_exhaustive() {
        let c = cfg();
        let (stats, bd) = run_stream(&c, stream_items(200));
        assert_eq!(bd.makespan, stats.cycles);
        assert_eq!(
            bd.busy_cycles + bd.stall_cycles() + bd.idle_cycles,
            bd.total_pe_cycles(),
            "fault-free attribution must cover every PE cycle"
        );
        // The same attribution flows into PhaseStats.
        assert_eq!(stats.stall_hbm_cycles, bd.stall_hbm_cycles);
        assert_eq!(stats.idle_pe_cycles, bd.idle_cycles);
        assert!(bd.stall_hbm_cycles > 0, "cold streams must stall on HBM");
        let s = bd.shares();
        assert!((s.busy + s.memory + s.idle - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pe_kill_recovery_lands_in_the_lost_bucket() {
        let mut c = cfg();
        c.faults.seed = 11;
        c.faults.pe_kill_count = 6;
        c.faults.pe_kill_cycle = 40;
        let mut mem = MemorySystem::for_multiply(&c);
        let mut pes = PeArray::new(16, 16, 64);
        let kernel = crate::phases::StreamKernel::new("engine_test", stream_items(400));
        let (stats, bd) = run_kernel(&c, &mut mem, &mut pes, kernel).unwrap();
        assert!(stats.killed_pes > 0, "the kill set must fire");
        assert!(bd.lost_cycles > 0, "recovery must surface as lost cycles");
        assert_eq!(
            bd.busy_cycles + bd.stall_cycles() + bd.idle_cycles + bd.lost_cycles,
            bd.total_pe_cycles(),
            "the four-way identity must hold under PE-kill injection"
        );
        assert_eq!(stats.lost_pe_cycles, bd.lost_cycles);
        // Fault-free runs keep the bucket empty.
        let (s2, bd2) = run_stream(&cfg(), stream_items(400));
        assert_eq!(bd2.lost_cycles, 0);
        assert_eq!(s2.lost_pe_cycles, 0);
    }

    #[test]
    fn channel_occupancy_is_bounded() {
        let c = cfg();
        let (_, bd) = run_stream(&c, stream_items(400));
        assert_eq!(bd.channel_busy_cycles.len(), c.hbm_channels as usize);
        let mean = bd.mean_channel_occupancy();
        let peak = bd.peak_channel_occupancy();
        assert!(mean > 0.0 && mean <= peak, "mean {mean}, peak {peak}");
        assert!(peak <= 1.0, "no channel can exceed wall time: {peak}");
    }

    #[test]
    fn min_start_gates_become_idle_cycles() {
        struct Gated {
            emitted: bool,
        }
        impl PhaseKernel for Gated {
            type Item = ();
            fn phase(&self) -> &'static str {
                "gated"
            }
            fn next(&mut self, _fb: &Feedback) -> Step<()> {
                if self.emitted {
                    return Step::Done;
                }
                self.emitted = true;
                Step::Batch(Batch { items: vec![()], min_start: 1000 })
            }
            fn execute(&mut self, _item: &(), ctx: &mut PeCtx<'_>) {
                ctx.compute(5);
            }
        }
        let c = cfg();
        let mut mem = MemorySystem::for_multiply(&c);
        let mut pes = PeArray::new(1, 1, 4);
        let (stats, bd) =
            run_kernel(&c, &mut mem, &mut pes, Gated { emitted: false }).unwrap();
        assert_eq!(stats.cycles, 1005);
        assert_eq!(bd.idle_cycles, 1000);
        assert_eq!(bd.busy_cycles, 5);
    }

    #[test]
    fn event_log_round_trips_through_jsonl() {
        let c = cfg();
        let mut mem = MemorySystem::for_multiply(&c);
        let mut pes = PeArray::new(16, 16, 64);
        let kernel = crate::phases::StreamKernel::new("engine_test", stream_items(5));
        let mut log = EventLog::new();
        run_kernel_observed(&c, &mut mem, &mut pes, kernel, &mut log).unwrap();
        assert_eq!(log.events().len(), 5);
        let dir = std::env::temp_dir()
            .join(format!("outerspace-engine-events-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("events.jsonl");
        log.write_jsonl(&path).unwrap();
        let back = outerspace_json::dump::read_jsonl(&path).unwrap();
        assert_eq!(back.len(), 5);
        assert_eq!(back[0].get("kind").and_then(Json::as_str), Some("item"));
        assert!(back[0].get("item").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn breakdown_serializes() {
        let (_, bd) = run_stream(&cfg(), stream_items(10));
        let json = bd.to_json().to_string_compact();
        assert!(json.contains("\"pe_class\""));
        assert!(json.contains("\"channel_busy_cycles\""));
    }
}
